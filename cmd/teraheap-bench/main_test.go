package main

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/carv-repro/teraheap-go/internal/perf"
)

func TestUnknownExperiment(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"fig99"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if stdout.Len() != 0 {
		t.Errorf("unknown experiment wrote to stdout: %q", stdout.String())
	}
	msg := stderr.String()
	if !strings.Contains(msg, `unknown experiment "fig99"`) {
		t.Errorf("stderr missing unknown-experiment message:\n%s", msg)
	}
	// The error must list the valid subcommands.
	for _, want := range []string{"fig6-spark", "fig13b", "table5", "ablation-sizeseg", "all"} {
		if !strings.Contains(msg, want) {
			t.Errorf("stderr usage missing subcommand %q:\n%s", want, msg)
		}
	}
}

func TestUnknownWorkloadArg(t *testing.T) {
	for _, sub := range []string{"fig6-spark", "fig6-giraph"} {
		var stdout, stderr strings.Builder
		if code := run([]string{sub, "BOGUS"}, &stdout, &stderr); code != 2 {
			t.Fatalf("%s BOGUS: exit code = %d, want 2", sub, code)
		}
		if !strings.Contains(stderr.String(), `unknown`) || !strings.Contains(stderr.String(), "BOGUS") {
			t.Errorf("%s BOGUS: stderr missing workload error:\n%s", sub, stderr.String())
		}
	}
}

func TestNoArgsUsage(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "usage: teraheap-bench") {
		t.Errorf("stderr missing usage:\n%s", stderr.String())
	}
}

func TestBadFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-nosuchflag", "fig7"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestNegativeJobsRejected pins the -j validation: negative worker counts
// are a usage error, not a silent reset, so typos fail fast.
func TestNegativeJobsRejected(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-j", "-2", "fig7"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr:\n%s)", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("-j -2 ran the experiment anyway: %q", stdout.String())
	}
	if !strings.Contains(stderr.String(), "-j -2") {
		t.Errorf("stderr missing -j error:\n%s", stderr.String())
	}
}

// TestNegativeGCWorkersRejected mirrors the -j validation for the gang
// size: values below 1 are a usage error, not a silent normalization.
func TestNegativeGCWorkersRejected(t *testing.T) {
	for _, bad := range []string{"0", "-3"} {
		var stdout, stderr strings.Builder
		if code := run([]string{"-gc-workers", bad, "fig7"}, &stdout, &stderr); code != 2 {
			t.Fatalf("-gc-workers %s: exit code = %d, want 2 (stderr:\n%s)", bad, code, stderr.String())
		}
		if stdout.Len() != 0 {
			t.Errorf("-gc-workers %s ran the experiment anyway: %q", bad, stdout.String())
		}
		if !strings.Contains(stderr.String(), "-gc-workers "+bad) {
			t.Errorf("stderr missing -gc-workers error:\n%s", stderr.String())
		}
	}
}

// TestNegativeWritebackDepthRejected pins the -wb-depth validation.
func TestNegativeWritebackDepthRejected(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-wb-depth", "-1", "fig7"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr:\n%s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-wb-depth -1") {
		t.Errorf("stderr missing -wb-depth error:\n%s", stderr.String())
	}
}

// TestGCWorkersOneIsDefaultOutput pins the byte-identity contract: an
// explicit -gc-workers 1 produces exactly the default fig7 output.
func TestGCWorkersOneIsDefaultOutput(t *testing.T) {
	var plain, explicit strings.Builder
	var stderr strings.Builder
	if code := run([]string{"fig7"}, &plain, &stderr); code != 0 {
		t.Fatalf("plain fig7 exit = %d (stderr:\n%s)", code, stderr.String())
	}
	if code := run([]string{"-gc-workers", "1", "fig7"}, &explicit, &stderr); code != 0 {
		t.Fatalf("-gc-workers 1 fig7 exit = %d (stderr:\n%s)", code, stderr.String())
	}
	if plain.String() != explicit.String() {
		t.Errorf("-gc-workers 1 diverged from default output")
	}
}

// TestGCWorkersDeterministicAcrossRuns pins same-seed byte-identity at a
// parallel gang, with the verifier on and again under fault injection.
func TestGCWorkersDeterministicAcrossRuns(t *testing.T) {
	cases := [][]string{
		{"-gc-workers", "4", "-verify", "fig7"},
		{"-gc-workers", "4", "-fault", "seed=7,dev-err=0.05,max-retries=3", "fig7"},
	}
	for _, args := range cases {
		var a, b, stderr strings.Builder
		codeA := run(args, &a, &stderr)
		codeB := run(args, &b, &stderr)
		if codeA != codeB {
			t.Fatalf("%v: exit codes diverged %d vs %d", args, codeA, codeB)
		}
		if a.String() != b.String() {
			t.Errorf("%v: output not deterministic across runs", args)
		}
		if a.Len() == 0 {
			t.Errorf("%v: no output", args)
		}
	}
}

// TestSuiteCoversRegisteredExperiments pins that each suite entry is
// reachable as a subcommand spelled exactly like its "all" entry.
func TestSuiteNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range suite {
		if seen[e.name] {
			t.Errorf("duplicate suite entry %q", e.name)
		}
		seen[e.name] = true
	}
}

func TestBadFaultPlan(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-fault", "seed=1,bogus=3", "fig7"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-fault") {
		t.Errorf("stderr missing -fault error:\n%s", stderr.String())
	}
}

// TestDuplicateFaultPlanKey pins the duplicate-key contract: a plan that
// repeats a key is a usage error (exit 2) whose message names the
// offending token, never a silent last-one-wins.
func TestDuplicateFaultPlanKey(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-fault", "seed=1,dev-err=0.1,seed=2", "fig7"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "duplicate plan key") || !strings.Contains(stderr.String(), `"seed=2"`) {
		t.Errorf("stderr does not name the duplicate token:\n%s", stderr.String())
	}
}

// TestFig7CleanExitsZero pins the no-fault contract: a healthy fig7 run
// prints its report and exits 0.
func TestFig7CleanExitsZero(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"fig7"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr:\n%s)", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Fig 7") {
		t.Errorf("stdout missing Fig 7 report:\n%s", stdout.String())
	}
}

// TestFig7UnderFatalFaultsExitsOneWithResults drives fig7 into a latched
// persistent device failure: the run must not panic, the table must still
// print (partial results), and the exit code must be 1.
func TestFig7UnderFatalFaultsExitsOneWithResults(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-verify", "-fault", "seed=1,dev-err=0.9,max-retries=2", "fig7"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr:\n%s)", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Fig 7") {
		t.Errorf("stdout missing partial Fig 7 report:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "OOM/faulted/panicked") {
		t.Errorf("stderr missing degraded-suite notice:\n%s", stderr.String())
	}
}

// TestBenchDiffSubcommand exercises the diff mode end-to-end: write two
// BENCH files, diff them report-only (exit 0) and strict (exit 1).
func TestBenchDiffSubcommand(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "BENCH_old.json")
	newPath := filepath.Join(dir, "BENCH_new.json")
	oldRep := &perf.Report{Schema: perf.Schema, Rev: "old", Jobs: 1, TotalNS: 100,
		Benchmarks: []perf.Benchmark{{Name: "minor_gc_scavenge", NsPerOp: 100, AllocsPerOp: 0}}}
	newRep := &perf.Report{Schema: perf.Schema, Rev: "new", Jobs: 1, TotalNS: 100,
		Benchmarks: []perf.Benchmark{{Name: "minor_gc_scavenge", NsPerOp: 100, AllocsPerOp: 3}}}
	if err := oldRep.WriteFile(oldPath); err != nil {
		t.Fatal(err)
	}
	if err := newRep.WriteFile(newPath); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr strings.Builder
	if code := run([]string{"bench", "diff", oldPath, newPath}, &stdout, &stderr); code != 0 {
		t.Fatalf("report-only diff exit = %d, want 0 (stderr:\n%s)", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "bench-allocs") {
		t.Errorf("diff output missing bench-allocs regression:\n%s", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-strict", "bench", "diff", oldPath, newPath}, &stdout, &stderr); code != 1 {
		t.Fatalf("strict diff exit = %d, want 1", code)
	}

	// Identical files: clean both ways.
	stdout.Reset()
	if code := run([]string{"-strict", "bench", "diff", oldPath, oldPath}, &stdout, &stderr); code != 0 {
		t.Fatalf("self-diff exit = %d, want 0", code)
	}
	if !strings.Contains(stdout.String(), "no regressions") {
		t.Errorf("self-diff output:\n%s", stdout.String())
	}
}

// TestBenchDiffUsageErrors: missing operands and unreadable files are
// usage errors (exit 2), not panics.
func TestBenchDiffUsageErrors(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"bench", "diff"}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing operands exit = %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"bench", "diff", "/nonexistent/a.json", "/nonexistent/b.json"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unreadable files exit = %d, want 2", code)
	}
}

// TestChaosSubcommand runs the chaos schedule under a survivable plan: it
// must exit 0 (faulted runs are expected; only panics fail it) and print
// the outcome summary.
func TestChaosSubcommand(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-fault", "seed=1,dev-err=0.02,wb-fail=0.05,torn=0.05,h2-exhaust=0.02", "chaos"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr:\n%s\nstdout:\n%s)", code, stderr.String(), stdout.String())
	}
	out := stdout.String()
	for _, want := range []string{"== chaos:", "verifier on", "panicked=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("chaos report missing %q:\n%s", want, out)
		}
	}
}

// TestChaosRecoveredOnlyExitsZero pins the chaos exit contract from the
// self-healing side: a schedule whose runs end RECOVERED (faults absorbed
// by salvage, no panic, no OOM) is a robustness success and exits 0 —
// recovery working as designed must not read as a CI failure.
func TestChaosRecoveredOnlyExitsZero(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-fault", "seed=1,region-fail=0.02,wb-fail=0.05,torn=0.05", "chaos"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 for a recovered-only schedule (stderr:\n%s)", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "RECOVERED") {
		t.Fatalf("schedule did not exercise recovery:\n%s", out)
	}
	if !strings.Contains(out, "panicked=0") || !strings.Contains(out, "oom=0") {
		t.Errorf("summary missing zero panic/OOM counters:\n%s", out)
	}
}

// TestServeMalformedConfigExitsTwo: serve config errors are usage errors
// (exit 2) naming the offending knob, mirroring -fault plan parsing.
func TestServeMalformedConfigExitsTwo(t *testing.T) {
	for _, dsl := range []string{"speed=1", "rate=60000,rate=1", "zipf=NaN", "deadline=-2ms"} {
		var stdout, stderr strings.Builder
		if code := run([]string{"serve", dsl}, &stdout, &stderr); code != 2 {
			t.Errorf("serve %q: exit code = %d, want 2 (stderr:\n%s)", dsl, code, stderr.String())
		}
		if !strings.Contains(stderr.String(), "server:") {
			t.Errorf("serve %q: stderr missing config error:\n%s", dsl, stderr.String())
		}
	}
}

// TestPretenureUnknownKindExitsTwo: the placement figure validates its
// kind list against the registry and fails usage-style, naming the full
// valid set, before any run starts.
func TestPretenureUnknownKindExitsTwo(t *testing.T) {
	for _, arg := range []string{"bogus", "ps:warp", "ps::th"} {
		var stdout, stderr strings.Builder
		if code := run([]string{"pretenure", arg}, &stdout, &stderr); code != 2 {
			t.Fatalf("pretenure %q: exit code = %d, want 2 (stderr:\n%s)", arg, code, stderr.String())
		}
		if stdout.Len() != 0 {
			t.Errorf("pretenure %q: wrote to stdout before failing: %q", arg, stdout.String())
		}
		msg := stderr.String()
		if !strings.Contains(msg, "unknown runtime kind") ||
			!strings.Contains(msg, "valid: ps th g1 mo panthera g1+th ng2c deca") {
			t.Errorf("pretenure %q: stderr must name the bad kind and the valid set:\n%s", arg, msg)
		}
	}
}

// TestServeUnknownKindExitsTwo: the serve kinds= filter goes through the
// same registry validation.
func TestServeUnknownKindExitsTwo(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"serve", "kinds=ps:warp"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr:\n%s)", code, stderr.String())
	}
	msg := stderr.String()
	if !strings.Contains(msg, `unknown kind "warp"`) ||
		!strings.Contains(msg, "valid: ps th g1 mo panthera g1+th ng2c deca") {
		t.Errorf("stderr must name the bad kind and the valid set:\n%s", msg)
	}
}

// TestServeSubcommandDeterministic: a reduced sweep prints the SLO table
// and two invocations in one process are byte-identical (the CI job pins
// the cross-process half).
func TestServeSubcommandDeterministic(t *testing.T) {
	runServe := func() (string, int) {
		var stdout, stderr strings.Builder
		code := run([]string{"serve", "reqs=2000,keys=1024,clients=50000"}, &stdout, &stderr)
		if stderr.Len() != 0 {
			t.Fatalf("unexpected stderr:\n%s", stderr.String())
		}
		return stdout.String(), code
	}
	a, codeA := runServe()
	b, codeB := runServe()
	if codeA != 0 || codeB != 0 {
		t.Fatalf("exit codes = %d, %d, want 0", codeA, codeB)
	}
	if a != b {
		t.Fatalf("same-seed serve runs diverged:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	for _, want := range []string{"== serve:", "sloViol", "serve/th/", "serve/g1+th/"} {
		if !strings.Contains(a, want) {
			t.Errorf("serve report missing %q:\n%s", want, a)
		}
	}
}

// TestChaosServeSubcommand: the serve chaos schedule completes with zero
// panics, visible shedding, and a recovered-throughput verdict, and obeys
// the pinned exit contract (0 unless panic/OOM).
func TestChaosServeSubcommand(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"chaos-serve"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr:\n%s\nstdout:\n%s)", code, stderr.String(), stdout.String())
	}
	out := stdout.String()
	for _, want := range []string{"== chaos-serve:", "verifier on", "panicked=0", "throughput: recovered", "totals: shed="} {
		if !strings.Contains(out, want) {
			t.Errorf("chaos-serve report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "totals: shed=0 ") {
		t.Errorf("chaos-serve shed nothing under the default plan:\n%s", out)
	}
}
