package main

import (
	"strings"
	"testing"
)

func TestUnknownExperiment(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"fig99"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if stdout.Len() != 0 {
		t.Errorf("unknown experiment wrote to stdout: %q", stdout.String())
	}
	msg := stderr.String()
	if !strings.Contains(msg, `unknown experiment "fig99"`) {
		t.Errorf("stderr missing unknown-experiment message:\n%s", msg)
	}
	// The error must list the valid subcommands.
	for _, want := range []string{"fig6-spark", "fig13b", "table5", "ablation-sizeseg", "all"} {
		if !strings.Contains(msg, want) {
			t.Errorf("stderr usage missing subcommand %q:\n%s", want, msg)
		}
	}
}

func TestUnknownWorkloadArg(t *testing.T) {
	for _, sub := range []string{"fig6-spark", "fig6-giraph"} {
		var stdout, stderr strings.Builder
		if code := run([]string{sub, "BOGUS"}, &stdout, &stderr); code != 2 {
			t.Fatalf("%s BOGUS: exit code = %d, want 2", sub, code)
		}
		if !strings.Contains(stderr.String(), `unknown`) || !strings.Contains(stderr.String(), "BOGUS") {
			t.Errorf("%s BOGUS: stderr missing workload error:\n%s", sub, stderr.String())
		}
	}
}

func TestNoArgsUsage(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "usage: teraheap-bench") {
		t.Errorf("stderr missing usage:\n%s", stderr.String())
	}
}

func TestBadFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-nosuchflag", "fig7"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestSuiteCoversRegisteredExperiments pins that each suite entry is
// reachable as a subcommand spelled exactly like its "all" entry.
func TestSuiteNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range suite {
		if seen[e.name] {
			t.Errorf("duplicate suite entry %q", e.name)
		}
		seen[e.name] = true
	}
}
