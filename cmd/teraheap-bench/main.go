// Command teraheap-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	teraheap-bench [-csv] [-j N] [-verify] [-fault PLAN] <experiment> [workload]
//
// Experiments: fig6-spark, fig6-giraph, fig7, fig8, fig9a, fig9b, fig10,
// fig11a, fig11b, fig12a, fig12b, fig12c, fig13a, fig13b, table5,
// barrier, ablation-*, workers, chaos, all.
//
// -gc-workers N sets the simulated GC gang size on PS-based runtimes
// (work items dealt round-robin onto N workers, pause charged
// max-over-workers); 1 is the legacy serial charge and the default, so
// default output is byte-identical to before the knob existed. "workers"
// runs the worker-scaling figure (the Figure 7 pair at gangs 1/2/4/8)
// and is deliberately not part of "all".
//
// -j N sets the experiment executor's worker count (default: GOMAXPROCS).
// Results merge in submission order, so figure output on stdout is
// byte-identical for every -j; "all" additionally reports per-figure
// wall-clock times on stderr.
//
// -fault installs a deterministic fault-injection plan (see internal/fault)
// into every run; the same seed yields byte-identical output. The exit code
// is 1 when any run ended OOM/faulted/panicked — the results table still
// prints in full, so scripts get partial results plus a failure signal.
//
// "bench" records the performance trajectory: it times every figure of the
// suite, measures the hot-loop microbenchmarks (ns/op + allocs/op), and
// writes BENCH_<rev>.json. "bench diff OLD NEW" compares two trajectory
// files and reports regressions past -threshold (report-only unless
// -strict).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/carv-repro/teraheap-go/internal/experiments"
	"github.com/carv-repro/teraheap-go/internal/fault"
	"github.com/carv-repro/teraheap-go/internal/metrics"
	"github.com/carv-repro/teraheap-go/internal/perf"
	"github.com/carv-repro/teraheap-go/internal/runner"
	"github.com/carv-repro/teraheap-go/internal/server"
	"github.com/carv-repro/teraheap-go/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// suite lists every experiment of the §6-§7 evaluation in "all" order.
var suite = []struct {
	name string
	fn   func() string
}{
	{"fig6-spark", experiments.Fig6SparkAll},
	{"fig6-giraph", experiments.Fig6GiraphAll},
	{"fig7", func() string { return experiments.Fig7().Format() }},
	{"fig8", experiments.Fig8},
	{"fig9a", experiments.Fig9a},
	{"fig9b", experiments.Fig9b},
	{"fig10", experiments.Fig10},
	{"fig11a", experiments.Fig11a},
	{"fig11b", experiments.Fig11b},
	{"fig12a", experiments.Fig12a},
	{"fig12b", experiments.Fig12b},
	{"fig12c", experiments.Fig12c},
	{"fig13a", experiments.Fig13a},
	{"fig13b", experiments.Fig13b},
	{"table5", experiments.Table5},
	{"barrier", experiments.BarrierOverhead},
	{"ablation-groups", experiments.AblationGroupMode},
	{"ablation-striping", experiments.AblationStriping},
	{"ablation-hugepages", experiments.AblationHugePages},
	{"ablation-dynamic", experiments.AblationDynamicThresholds},
	{"ablation-sizeseg", experiments.AblationSizeSegregation},
	{"ablation-g1th", experiments.AblationG1TeraHeap},
}

// run executes the CLI and returns its exit code (testable main).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("teraheap-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	csvOut := fs.Bool("csv", false, "emit fig6/fig7 results as CSV instead of tables")
	jobs := fs.Int("j", 0, "parallel experiment runs (0 = GOMAXPROCS)")
	compare := fs.Bool("compare", false, "with \"all\": rerun the suite at -j 1 and report the speedup")
	verify := fs.Bool("verify", false, "run the heap invariant verifier before and after every GC")
	faultSpec := fs.String("fault", "", "fault-injection plan, e.g. seed=1,dev-err=0.01,wb-fail=0.05")
	gcWorkers := fs.Int("gc-workers", 1, "simulated GC gang size on PS-based runtimes (1 = serial charge)")
	wbDepth := fs.Int("wb-depth", 0, "async writeback queue depth on the H2 device (0 = legacy flat discount)")
	benchOut := fs.String("o", "", "with \"bench\": output path (default BENCH_<rev>.json)")
	trajectory := fs.String("trajectory", "", "with \"bench\": trajectory directory — append this run's point and diff against the previous one")
	benchRev := fs.String("rev", "dev", "with \"bench\": revision label recorded in the report")
	threshold := fs.Float64("threshold", 0.25, "with \"bench diff\": regression threshold (fraction)")
	strict := fs.Bool("strict", false, "with \"bench diff\": exit 1 on regressions instead of report-only")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jobs < 0 {
		fmt.Fprintf(stderr, "teraheap-bench: -j %d: worker count must be >= 0 (0 = GOMAXPROCS)\n", *jobs)
		return 2
	}
	if *gcWorkers < 1 {
		fmt.Fprintf(stderr, "teraheap-bench: -gc-workers %d: gang size must be >= 1 (1 = serial charge)\n", *gcWorkers)
		return 2
	}
	if *wbDepth < 0 {
		fmt.Fprintf(stderr, "teraheap-bench: -wb-depth %d: queue depth must be >= 0 (0 = disabled)\n", *wbDepth)
		return 2
	}
	if fs.NArg() < 1 {
		usage(stderr)
		return 2
	}
	var plan *fault.Plan
	if *faultSpec != "" {
		p, err := fault.ParsePlan(*faultSpec)
		if err != nil {
			fmt.Fprintf(stderr, "teraheap-bench: -fault: %v\n", err)
			return 2
		}
		plan = p
	}
	prev := runner.SetDefaultWorkers(*jobs)
	defer runner.SetDefaultWorkers(prev)
	prevVerify := experiments.SetVerify(*verify)
	defer experiments.SetVerify(prevVerify)
	prevPlan := experiments.SetFaultPlan(plan)
	defer experiments.SetFaultPlan(prevPlan)
	prevGW := experiments.SetGCWorkers(*gcWorkers)
	defer experiments.SetGCWorkers(prevGW)
	prevWB := experiments.SetWritebackDepth(*wbDepth)
	defer experiments.SetWritebackDepth(prevWB)
	experiments.ResetBadRuns()

	what := fs.Arg(0)
	arg := fs.Arg(1)
	switch what {
	case "fig6-spark":
		if arg != "" {
			if !contains(experiments.SparkWorkloads(), arg) {
				fmt.Fprintf(stderr, "teraheap-bench: unknown Spark workload %q (valid: %v)\n", arg, experiments.SparkWorkloads())
				return 2
			}
			r := experiments.Fig6Spark(arg)
			if *csvOut {
				fmt.Fprint(stdout, metrics.CSVBreakdown(r.Rows))
			} else {
				fmt.Fprint(stdout, metrics.FormatBreakdown("Fig 6 Spark-"+arg, r.Rows, true))
			}
		} else if *csvOut {
			for _, w := range experiments.SparkWorkloads() {
				fmt.Fprint(stdout, metrics.CSVBreakdown(experiments.Fig6Spark(w).Rows))
			}
		} else {
			fmt.Fprint(stdout, experiments.Fig6SparkAll())
		}
	case "fig6-giraph":
		if arg != "" {
			if !contains(experiments.GiraphWorkloads(), arg) {
				fmt.Fprintf(stderr, "teraheap-bench: unknown Giraph workload %q (valid: %v)\n", arg, experiments.GiraphWorkloads())
				return 2
			}
			r := experiments.Fig6Giraph(arg)
			if *csvOut {
				fmt.Fprint(stdout, metrics.CSVBreakdown(r.Rows))
			} else {
				fmt.Fprint(stdout, metrics.FormatBreakdown("Fig 6 Giraph-"+arg, r.Rows, true))
			}
		} else if *csvOut {
			for _, w := range experiments.GiraphWorkloads() {
				fmt.Fprint(stdout, metrics.CSVBreakdown(experiments.Fig6Giraph(w).Rows))
			}
		} else {
			fmt.Fprint(stdout, experiments.Fig6GiraphAll())
		}
	case "fig7":
		r := experiments.Fig7()
		if *csvOut {
			fmt.Fprint(stdout, r.CSV())
		} else {
			fmt.Fprint(stdout, r.Format())
		}
	case "chaos":
		// The chaos exit-code contract: exit 0 when every run completed —
		// healthy, DEGRADED, or RECOVERED are all acceptable outcomes under
		// an aggressive plan — and exit 1 only when a run panicked (a fault
		// escaped the typed-error paths) or OOMed (the schedule's sizing is
		// meant to survive its plan; an OOM means it no longer does).
		// Faulted runs stay exit 0: a latched persistent failure is the
		// fault plane's expected output on kinds without a recovery layer.
		r := experiments.RunChaos(plan)
		fmt.Fprint(stdout, r.Format())
		return chaosExit("chaos", r, stderr)
	case "serve":
		cfg, ok := parseServeConfig(arg, stderr)
		if !ok {
			return 2
		}
		r := experiments.ServeSweep(cfg, nil)
		if *csvOut {
			fmt.Fprint(stdout, r.CSV())
		} else {
			fmt.Fprint(stdout, r.Format())
		}
	case "chaos-serve":
		// Same exit contract as chaos: the schedule proves degraded-but-
		// serving, so shed/retried/SLO-violating runs are the point, not a
		// failure. A nil -fault plan uses the default brownout+region-fail
		// schedule.
		cfg, ok := parseServeConfig(arg, stderr)
		if !ok {
			return 2
		}
		r := experiments.ChaosServe(plan, cfg)
		fmt.Fprint(stdout, r.Format())
		return chaosExit("chaos-serve", r.ChaosResult, stderr)
	case "pretenure":
		// The placement-policy figure sweeps every registered runtime kind
		// (or the colon-separated subset in the argument) over one Spark
		// configuration. Like "workers" it is not part of "all": its point
		// is the 8-way kind comparison, which grows with the registry.
		var names []string
		if arg != "" {
			names = strings.Split(arg, ":")
		}
		kinds, err := experiments.PretenureKinds(names)
		if err != nil {
			fmt.Fprintf(stderr, "teraheap-bench: pretenure: %v\n", err)
			return 2
		}
		r := experiments.Pretenure(kinds)
		if *csvOut {
			fmt.Fprint(stdout, r.CSV())
		} else {
			fmt.Fprint(stdout, r.Format())
		}
	case "workers":
		// The worker-scaling figure is deliberately not part of the "all"
		// suite: it varies GCWorkers, and "all" output stays byte-identical
		// for every flag combination except the model knobs themselves.
		r := experiments.WorkerScaling(nil)
		if *csvOut {
			fmt.Fprint(stdout, r.CSV())
		} else {
			fmt.Fprint(stdout, r.Format())
		}
	case "bench":
		if fs.Arg(1) == "diff" {
			return runBenchDiff(fs.Arg(2), fs.Arg(3), *threshold, *strict, stdout, stderr)
		}
		return runBench(*benchOut, *benchRev, *trajectory, *threshold, *strict, stdout, stderr)
	case "all":
		parallel := runAll(stdout, stderr)
		if *compare {
			runner.SetDefaultWorkers(1)
			workloads.ResetCaches() // serial rerun regenerates datasets too
			fmt.Fprintf(stderr, "# rerunning at -j 1 for comparison\n")
			serial := runAll(io.Discard, stderr)
			fmt.Fprintf(stderr, "# speedup vs -j 1: %.2fx (parallel %v, serial %v)\n",
				float64(serial)/float64(parallel), parallel.Round(time.Millisecond),
				serial.Round(time.Millisecond))
		}
	default:
		ran := false
		for _, e := range suite {
			if e.name == what {
				fmt.Fprint(stdout, e.fn())
				ran = true
				break
			}
		}
		if !ran {
			fmt.Fprintf(stderr, "teraheap-bench: unknown experiment %q\n\n", what)
			usage(stderr)
			return 2
		}
	}
	// Degraded results still print in full above; the exit code tells
	// scripts the table contains OOM/faulted/panicked runs.
	if n := experiments.BadRuns(); n > 0 {
		fmt.Fprintf(stderr, "teraheap-bench: %d run(s) ended OOM/faulted/panicked (results above are partial)\n", n)
		return 1
	}
	return 0
}

// runBench records the performance trajectory: it runs the full suite
// (figure text discarded — the product is the timings), measures the
// hot-loop microbenchmarks, and writes BENCH_<rev>.json. Unlike "all",
// OOM-by-design runs (the paper's native-JVM OOM bars) do not affect the
// exit code: the subcommand's contract is the JSON file.
func runBench(outPath, rev, trajectory string, threshold float64, strict bool, stdout, stderr io.Writer) int {
	report := &perf.Report{
		Schema:    perf.Schema,
		Rev:       rev,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Jobs:      runner.DefaultWorkers(),
	}

	start := time.Now()
	for _, e := range suite {
		figStart := time.Now()
		e.fn()
		wall := time.Since(figStart)
		report.Figures = append(report.Figures, perf.Figure{Name: e.name, WallNS: wall.Nanoseconds()})
		fmt.Fprintf(stderr, "# %-18s %10v\n", e.name, wall.Round(time.Millisecond))
	}
	report.TotalNS = time.Since(start).Nanoseconds()
	fmt.Fprintf(stderr, "# %-18s %10v (-j %d)\n", "total", time.Duration(report.TotalNS).Round(time.Millisecond), report.Jobs)
	if n := experiments.BadRuns(); n > 0 {
		fmt.Fprintf(stderr, "# %d run(s) ended OOM/faulted/panicked (expected for native-JVM OOM bars)\n", n)
	}

	fmt.Fprintf(stderr, "# measuring microbenchmarks\n")
	report.Benchmarks = perf.RunMicros()

	if outPath == "" {
		outPath = fmt.Sprintf("BENCH_%s.json", rev)
	}
	if err := report.WriteFile(outPath); err != nil {
		fmt.Fprintf(stderr, "teraheap-bench: bench: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s (total %v, %d figures, %d benchmarks)\n",
		outPath, time.Duration(report.TotalNS).Round(time.Millisecond),
		len(report.Figures), len(report.Benchmarks))

	// With a trajectory directory, every bench run persists one per-rev
	// point and diffs against the previous one, so the history accumulates
	// without any separate wiring in CI.
	if trajectory != "" {
		prev, prevPath, err := perf.LatestReport(trajectory)
		if err != nil {
			fmt.Fprintf(stderr, "teraheap-bench: bench: %v\n", err)
			return 1
		}
		point, err := perf.AppendToTrajectory(trajectory, report)
		if err != nil {
			fmt.Fprintf(stderr, "teraheap-bench: bench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "appended %s\n", point)
		if prev == nil {
			fmt.Fprintf(stdout, "trajectory was empty; no previous point to diff against\n")
			return 0
		}
		fmt.Fprintf(stdout, "diff vs %s (rev %s):\n", prevPath, prev.Rev)
		regs := perf.Diff(prev, report, threshold)
		fmt.Fprint(stdout, perf.FormatRegressions(regs, threshold))
		if strict && len(regs) > 0 {
			return 1
		}
	}
	return 0
}

// runBenchDiff compares two BENCH files. Report-only by default (CI runs
// it against the checked-in baseline without failing the build); -strict
// turns regressions into exit 1.
func runBenchDiff(oldPath, newPath string, threshold float64, strict bool, stdout, stderr io.Writer) int {
	if oldPath == "" || newPath == "" {
		fmt.Fprintln(stderr, "teraheap-bench: usage: bench diff OLD.json NEW.json")
		return 2
	}
	old, err := perf.ReadFile(oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "teraheap-bench: bench diff: %v\n", err)
		return 2
	}
	cur, err := perf.ReadFile(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "teraheap-bench: bench diff: %v\n", err)
		return 2
	}
	regs := perf.Diff(old, cur, threshold)
	fmt.Fprint(stdout, perf.FormatRegressions(regs, threshold))
	if strict && len(regs) > 0 {
		return 1
	}
	return 0
}

// runAll runs the whole suite, streaming figure text to stdout and
// per-figure wall-clock timings to stderr, and returns the total
// wall-clock time.
func runAll(stdout, stderr io.Writer) time.Duration {
	start := time.Now()
	for _, e := range suite {
		figStart := time.Now()
		out := e.fn()
		fmt.Fprint(stdout, out)
		fmt.Fprintf(stderr, "# %-18s %10v\n", e.name, time.Since(figStart).Round(time.Millisecond))
	}
	total := time.Since(start)
	fmt.Fprintf(stderr, "# %-18s %10v (-j %d)\n", "total", total.Round(time.Millisecond), runner.DefaultWorkers())
	return total
}

// parseServeConfig resolves the serve subcommands' optional config DSL
// argument (empty = defaults); malformed input is a usage error.
func parseServeConfig(arg string, stderr io.Writer) (server.Config, bool) {
	cfg, err := server.ParseConfig(arg)
	if err != nil {
		fmt.Fprintf(stderr, "teraheap-bench: serve config: %v\n", err)
		return cfg, false
	}
	return cfg, true
}

// chaosExit pins the chaos-family exit contract: 0 when every run
// completed (healthy/degraded/recovered/faulted), 1 on panic or OOM.
func chaosExit(what string, r experiments.ChaosResult, stderr io.Writer) int {
	_, _, _, _, oom, panicked := r.Counts()
	if panicked > 0 {
		fmt.Fprintf(stderr, "teraheap-bench: %s: %d run(s) panicked\n", what, panicked)
		return 1
	}
	if oom > 0 {
		fmt.Fprintf(stderr, "teraheap-bench: %s: %d run(s) OOMed\n", what, oom)
		return 1
	}
	return 0
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: teraheap-bench [-csv] [-j N] [-compare] [-verify] [-fault PLAN] [-gc-workers N] [-wb-depth N] <experiment> [workload]
       teraheap-bench serve [CONFIG]
       teraheap-bench [-fault PLAN] chaos-serve [CONFIG]
       teraheap-bench bench [-o FILE] [-rev REV] [-trajectory DIR]
       teraheap-bench bench diff OLD.json NEW.json [-threshold F] [-strict]

experiments:
  fig6-spark [PR|CC|SSSP|SVD|TR|LR|LgR|SVM|BC|RL]
  fig6-giraph [PR|CDLP|WCC|BFS|SSSP]
  fig7 fig8 fig9a fig9b fig10 fig11a fig11b
  fig12a fig12b fig12c fig13a fig13b
  table5 barrier workers serve chaos-serve all chaos bench
  pretenure [KIND:KIND:...]
  ablation-groups ablation-striping ablation-hugepages
  ablation-dynamic ablation-sizeseg ablation-g1th

pretenure is the placement-policy figure: every registered runtime kind
(ps th g1 mo panthera g1+th ng2c deca, or the colon-separated subset
given as the argument) runs one Spark PageRank configuration; the tables
compare GC pause composition and H2 traffic, plus the NG2C allocation-
site profile and Deca epoch-region counters. Unknown kinds are usage
errors naming the valid set. Not part of "all"; byte-identical for
every -j.

serve is the server-mode workload plane: an open-loop KV/analytics request
stream (Zipf keys, session churn, per-request deadlines, a bounded
admission queue, client retries with exponential backoff) swept over
arrival rate x runtime kind. CONFIG is a comma-separated key=value DSL:
  seed=N rate=R reqs=N clients=N keys=N zipf=S vwords=N deadline=DUR
  queue=N retries=N backoff=DUR reads=F scan=F scanlen=N churn=F hot=F
e.g. 'rate=60000,deadline=2ms,queue=64' (empty = defaults; unknown or
duplicate keys and out-of-range knobs are usage errors). Like "workers",
serve is deliberately not part of "all". Same seed => byte-identical
output. chaos-serve runs the serve schedule (TeraHeap at 1x and 3x
overload around the PS baseline) under -fault, defaulting to a brownout +
region-fail + corrupt plan, with the verifier forced on.

flags:
  -j N       run N experiment configurations in parallel (0 = GOMAXPROCS,
             N < 0 is a usage error); output is byte-identical for every -j
  -compare   with "all": rerun at -j 1 and report the measured speedup
  -csv       emit fig6/fig7 results as CSV
  -verify    run the heap invariant verifier before and after every GC
             (the VerifyBeforeGC/VerifyAfterGC analog; panics on the first
             violation; TH_VERIFY=1 in the environment does the same)
  -fault PLAN
             deterministic fault-injection plan, a comma-separated DSL:
             seed=N,dev-err=P,max-retries=N,backoff=DUR,spike=P[xF],
             brownout=EVERY:LEN[xF],wb-fail=P,torn=P,h2-exhaust=P,
             region-fail=P,corrupt=P
             (same seed => byte-identical results; empty = no faults;
             duplicate keys are a usage error)
  -gc-workers N
             simulated GC gang size on PS-based runtimes: work items are
             dealt round-robin onto N workers and the pause is charged
             max-over-workers plus a per-barrier sync cost (1 = the legacy
             serial charge, byte-identical to before the knob; N < 1 is a
             usage error). "workers" runs the scaling figure at 1/2/4/8.
  -wb-depth N
             async writeback queue depth on the H2/off-heap device: H2
             promotion and page-cache writeback submit batches that drain
             at safepoints (0 = legacy flat overlap discount; N < 0 is a
             usage error)
  -o FILE    with "bench": output path (default BENCH_<rev>.json)
  -rev REV   with "bench": revision label recorded in the report
  -trajectory DIR
             with "bench": append this run's point to the persisted
             trajectory in DIR and diff against the previous point
  -threshold F
             with "bench diff": wall-clock/ns regression threshold as a
             fraction (default 0.25; allocs/op regress on any increase)
  -strict    with "bench diff": exit 1 on regressions (default report-only)

exit status: 0 clean; 1 when any run ended OOM/faulted/panicked (the full
results table still prints); 2 usage errors. "chaos" runs a fixed schedule
(fig7 pair, reduced-DRAM LR, fig9a hint pair) with the verifier forced on.
The chaos/chaos-serve exit contract: exit 0 when every run completed —
healthy, DEGRADED, RECOVERED, and FAULTED are all expected under an
aggressive plan — and exit 1 only when a run panicked or OOMed.
A RECOVERED status marks a TeraHeap run whose self-healing layer salvaged
failed H2 regions (region-fail/corrupt plans) and still produced the
correct result; recovered runs exit 0.
"bench" writes the BENCH_<rev>.json perf trajectory (per-figure wall-clock
+ hot-loop microbenchmarks) and exits 0 even for OOM-by-design runs.`)
}
