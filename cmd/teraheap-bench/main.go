// Command teraheap-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	teraheap-bench <experiment> [workload]
//
// Experiments: fig6-spark, fig6-giraph, fig7, fig8, fig9a, fig9b, fig10,
// fig11a, fig11b, fig12a, fig12b, fig12c, fig13a, fig13b, table5,
// barrier, ablation-groups, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/carv-repro/teraheap-go/internal/experiments"
	"github.com/carv-repro/teraheap-go/internal/metrics"
)

var csvOut = flag.Bool("csv", false, "emit fig6 results as CSV instead of tables")

func main() {
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	what := flag.Arg(0)
	arg := flag.Arg(1)
	switch what {
	case "fig6-spark":
		if arg != "" {
			r := experiments.Fig6Spark(arg)
			if *csvOut {
				fmt.Print(metrics.CSVBreakdown(r.Rows))
			} else {
				fmt.Print(metrics.FormatBreakdown("Fig 6 Spark-"+arg, r.Rows, true))
			}
		} else if *csvOut {
			for _, w := range experiments.SparkWorkloads() {
				fmt.Print(metrics.CSVBreakdown(experiments.Fig6Spark(w).Rows))
			}
		} else {
			fmt.Print(experiments.Fig6SparkAll())
		}
	case "fig6-giraph":
		if arg != "" {
			r := experiments.Fig6Giraph(arg)
			if *csvOut {
				fmt.Print(metrics.CSVBreakdown(r.Rows))
			} else {
				fmt.Print(metrics.FormatBreakdown("Fig 6 Giraph-"+arg, r.Rows, true))
			}
		} else if *csvOut {
			for _, w := range experiments.GiraphWorkloads() {
				fmt.Print(metrics.CSVBreakdown(experiments.Fig6Giraph(w).Rows))
			}
		} else {
			fmt.Print(experiments.Fig6GiraphAll())
		}
	case "fig7":
		r := experiments.Fig7()
		if *csvOut {
			fmt.Print(r.CSV())
		} else {
			fmt.Print(r.Format())
		}
	case "fig8":
		fmt.Print(experiments.Fig8())
	case "fig9a":
		fmt.Print(experiments.Fig9a())
	case "fig9b":
		fmt.Print(experiments.Fig9b())
	case "fig10":
		fmt.Print(experiments.Fig10())
	case "fig11a":
		fmt.Print(experiments.Fig11a())
	case "fig11b":
		fmt.Print(experiments.Fig11b())
	case "fig12a":
		fmt.Print(experiments.Fig12a())
	case "fig12b":
		fmt.Print(experiments.Fig12b())
	case "fig12c":
		fmt.Print(experiments.Fig12c())
	case "fig13a":
		fmt.Print(experiments.Fig13a())
	case "fig13b":
		fmt.Print(experiments.Fig13b())
	case "table5":
		fmt.Print(experiments.Table5())
	case "barrier":
		fmt.Print(experiments.BarrierOverhead())
	case "ablation-groups":
		fmt.Print(experiments.AblationGroupMode())
	case "ablation-striping":
		fmt.Print(experiments.AblationStriping())
	case "ablation-hugepages":
		fmt.Print(experiments.AblationHugePages())
	case "ablation-dynamic":
		fmt.Print(experiments.AblationDynamicThresholds())
	case "ablation-sizeseg":
		fmt.Print(experiments.AblationSizeSegregation())
	case "ablation-g1th":
		fmt.Print(experiments.AblationG1TeraHeap())
	case "all":
		fmt.Print(experiments.Fig6SparkAll())
		fmt.Print(experiments.Fig6GiraphAll())
		fmt.Print(experiments.Fig7().Format())
		fmt.Print(experiments.Fig8())
		fmt.Print(experiments.Fig9a())
		fmt.Print(experiments.Fig9b())
		fmt.Print(experiments.Fig10())
		fmt.Print(experiments.Fig11a())
		fmt.Print(experiments.Fig11b())
		fmt.Print(experiments.Fig12a())
		fmt.Print(experiments.Fig12b())
		fmt.Print(experiments.Fig12c())
		fmt.Print(experiments.Fig13a())
		fmt.Print(experiments.Fig13b())
		fmt.Print(experiments.Table5())
		fmt.Print(experiments.BarrierOverhead())
		fmt.Print(experiments.AblationGroupMode())
		fmt.Print(experiments.AblationStriping())
		fmt.Print(experiments.AblationHugePages())
		fmt.Print(experiments.AblationDynamicThresholds())
		fmt.Print(experiments.AblationSizeSegregation())
		fmt.Print(experiments.AblationG1TeraHeap())
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: teraheap-bench [-csv] <experiment> [workload]

experiments:
  fig6-spark [PR|CC|SSSP|SVD|TR|LR|LgR|SVM|BC|RL]
  fig6-giraph [PR|CDLP|WCC|BFS|SSSP]
  fig7 fig8 fig9a fig9b fig10 fig11a fig11b
  fig12a fig12b fig12c fig13a fig13b
  table5 barrier all
  ablation-groups ablation-striping ablation-hugepages
  ablation-dynamic ablation-sizeseg ablation-g1th`)
}
