// Command giraphrun executes a single Giraph workload under Giraph-OOC or
// TeraHeap and prints its execution-time breakdown and engine statistics.
//
// Usage:
//
//	giraphrun -workload PR -mode th -dram 85 [-threads 8] [-scale 1.0]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/carv-repro/teraheap-go/internal/experiments"
	"github.com/carv-repro/teraheap-go/internal/giraph"
	"github.com/carv-repro/teraheap-go/internal/simclock"
)

func main() {
	workload := flag.String("workload", "PR", "Giraph workload: PR CDLP WCC BFS SSSP")
	mode := flag.String("mode", "th", "mode: ooc or th")
	dram := flag.Float64("dram", 85, "DRAM budget in paper-GB")
	threads := flag.Int("threads", 8, "compute threads")
	scale := flag.Float64("scale", 1, "dataset scale factor")
	flag.Parse()

	m := giraph.ModeTH
	if *mode == "ooc" {
		m = giraph.ModeOOC
	}
	r := experiments.RunGiraph(experiments.GiraphRun{
		Workload: *workload, Mode: m, DramGB: *dram,
		Threads: *threads, DatasetScale: *scale,
	})
	if r.OOM {
		fmt.Printf("%s: OUT OF MEMORY\n", r.Name)
		os.Exit(1)
	}
	fmt.Printf("%s\n", r.Name)
	fmt.Printf("  total    %12v\n", r.B.Total().Round(time.Microsecond))
	fmt.Printf("  other    %12v\n", r.B.Get(simclock.Other).Round(time.Microsecond))
	fmt.Printf("  s/d+io   %12v\n", r.B.Get(simclock.SerDesIO).Round(time.Microsecond))
	fmt.Printf("  minorGC  %12v  (%d cycles)\n", r.B.Get(simclock.MinorGC).Round(time.Microsecond), r.GCStats.MinorCount)
	fmt.Printf("  majorGC  %12v  (%d cycles)\n", r.B.Get(simclock.MajorGC).Round(time.Microsecond), r.GCStats.MajorCount)
	fmt.Printf("  device   reads %d (%d KB)  writes %d (%d KB)\n",
		r.DevStats.ReadOps, r.DevStats.BytesRead/1024, r.DevStats.WriteOps, r.DevStats.BytesWritten/1024)
	if r.THStats != nil {
		fmt.Printf("  teraheap moved %d objects (%d KB), regions %d allocated / %d reclaimed, threshold trips %d\n",
			r.THStats.ObjectsMoved, r.THStats.BytesMoved/1024,
			r.THStats.RegionsAllocated, r.THStats.RegionsReclaimed, r.THStats.HighThresholdTrips)
	}
	fmt.Printf("  checksum %g\n", r.Checksum)
}
