// Command sparkrun executes a single Spark workload under a chosen
// runtime configuration and prints its execution-time breakdown, GC
// statistics, and device traffic.
//
// Usage:
//
//	sparkrun -workload PR -runtime th -dram 80 [-device nvme|nvm]
//	         [-threads 8] [-scale 1.0]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/carv-repro/teraheap-go/internal/experiments"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
)

func main() {
	workload := flag.String("workload", "PR", "Spark workload: PR CC SSSP SVD TR LR LgR SVM BC RL KM")
	runtime := flag.String("runtime", "th", "runtime: "+strings.Join(rt.KindNames(), " "))
	dram := flag.Float64("dram", 80, "DRAM budget in paper-GB")
	device := flag.String("device", "nvme", "H2/off-heap device: nvme or nvm")
	threads := flag.Int("threads", 8, "executor mutator threads")
	scale := flag.Float64("scale", 1, "dataset scale factor")
	flag.Parse()

	kind, ok := rt.KindByName(*runtime)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown runtime %q (valid: %s)\n",
			*runtime, strings.Join(rt.KindNames(), " "))
		os.Exit(2)
	}
	dev := storage.NVMeSSD
	if *device == "nvm" {
		dev = storage.NVM
	}

	r := experiments.RunSpark(experiments.SparkRun{
		Workload: *workload, Runtime: kind, DramGB: *dram,
		Device: dev, Threads: *threads, DatasetScale: *scale,
	})
	if r.OOM {
		fmt.Printf("%s: OUT OF MEMORY\n", r.Name)
		os.Exit(1)
	}
	fmt.Printf("%s\n", r.Name)
	fmt.Printf("  total    %12v\n", r.B.Total().Round(time.Microsecond))
	fmt.Printf("  other    %12v\n", r.B.Get(simclock.Other).Round(time.Microsecond))
	fmt.Printf("  s/d+io   %12v\n", r.B.Get(simclock.SerDesIO).Round(time.Microsecond))
	fmt.Printf("  minorGC  %12v  (%d cycles)\n", r.B.Get(simclock.MinorGC).Round(time.Microsecond), r.GCStats.MinorCount)
	fmt.Printf("  majorGC  %12v  (%d cycles)\n", r.B.Get(simclock.MajorGC).Round(time.Microsecond), r.GCStats.MajorCount)
	fmt.Printf("  device   reads %d (%d KB)  writes %d (%d KB)\n",
		r.DevStats.ReadOps, r.DevStats.BytesRead/1024, r.DevStats.WriteOps, r.DevStats.BytesWritten/1024)
	if r.THStats != nil {
		fmt.Printf("  teraheap moved %d objects (%d KB), regions %d allocated / %d reclaimed\n",
			r.THStats.ObjectsMoved, r.THStats.BytesMoved/1024,
			r.THStats.RegionsAllocated, r.THStats.RegionsReclaimed)
	}
	fmt.Printf("  checksum %g\n", r.Checksum)
}
