// Package g1 implements the Garbage-First collector baseline of Fig 8: a
// region-based generational collector with young evacuation, concurrent
// marking (charged at a concurrency discount), garbage-first mixed
// collections that evacuate the old regions with the least live data, and
// humongous objects allocated in contiguous region runs — one object per
// run, with the resulting fragmentation and OOM behaviour the paper
// reports for SVM, BC, and RL (§7.1).
//
// It implements rt.Runtime so the Spark simulation runs over it unchanged.
package g1

import (
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/carv-repro/teraheap-go/internal/gc"
	"github.com/carv-repro/teraheap-go/internal/placement"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// regionKind classifies a heap region.
type regionKind int

const (
	regFree regionKind = iota
	regEden
	regSurvivor
	regOld
	regHumongousStart
	regHumongousCont
)

// Config sizes the G1 heap.
type Config struct {
	H1Size     int64
	RegionSize int64 // 0 → H1Size/256, clamped to [4KB, 32MB]
	// YoungTarget is the number of eden regions allocated before a young
	// collection runs (0 → 1/4 of the regions).
	YoungTarget int
	// IHOP is the old-space occupancy fraction that starts concurrent
	// marking (G1 default 0.45).
	IHOP float64
	// MixedLiveThreshold: old regions with a lower live fraction are
	// eligible for mixed collections (G1's garbage-first policy).
	MixedLiveThreshold float64
	TenureAge          int
	CardSize           int
	// ConcurrencyDiscount scales marking cost (concurrent with mutator).
	ConcurrencyDiscount float64
	GCThreads           int
	Costs               gc.CostParams
	// Verify runs the full-heap invariant verifier before and after every
	// collection (the TH_VERIFY=1 environment variable also forces it on).
	Verify bool
}

// DefaultConfig returns G1-like defaults for the heap size.
func DefaultConfig(h1Size int64) Config {
	rs := h1Size / 256
	if rs < 4<<10 {
		rs = 4 << 10
	}
	if rs > 32<<20 {
		rs = 32 << 20
	}
	// Round to a power of two.
	p := int64(1)
	for p*2 <= rs {
		p *= 2
	}
	return Config{
		H1Size:              h1Size / p * p,
		RegionSize:          p,
		IHOP:                0.45,
		MixedLiveThreshold:  0.65,
		TenureAge:           3,
		CardSize:            512,
		ConcurrencyDiscount: 0.25,
		GCThreads:           8,
		Costs:               gc.DefaultCostParams(),
	}
}

// region is one G1 heap region.
type region struct {
	id    int
	kind  regionKind
	start vm.Addr
	end   vm.Addr
	top   vm.Addr

	liveBytes int64 // from the last marking cycle
	// humRegions is the run length for a humongous start region.
	humRegions int
}

func (r *region) used() int64 { return int64(r.top - r.start) }

// G1 is the collector and runtime.
type G1 struct {
	cfg     Config
	clock   *simclock.Clock
	classes *vm.ClassTable
	as      *vm.AddressSpace
	mem     *vm.Mem
	roots   *vm.RootSet

	regions []*region
	free    []int // free region ids (sorted)

	eden     []int
	survivor []int
	old      []int
	hum      []int // humongous start regions

	curEden *region

	cards     []byte // global card table: clean/dirty
	cardsBase vm.Addr
	// startArr maps each card to the first object starting in it (old and
	// humongous regions only).
	startArr    []vm.Addr
	stats       gc.Stats
	oom         *gc.OOMError
	youngTarget int
	// markCooldown counts young GCs to skip before the next concurrent
	// marking cycle may start.
	markCooldown int

	// th is the optional second heap (TeraHeap-under-G1, §7.1); inert by
	// default.
	th gc.SecondHeap

	// hooks is the collector lifecycle-hook plane (same contract as
	// gc.Collector's); vhook is the registered verifier hook, if any.
	hooks gc.Hooks
	vhook *verifyHook

	// policy is the placement-policy seam for young-evacuation promotion
	// decisions; placement.Default reproduces the legacy age threshold.
	policy placement.Policy
}

var _ = fmt.Sprintf // keep fmt imported for panics below

// debugG1 enables progress tracing for slow-run diagnosis.
var debugG1 = os.Getenv("G1_DEBUG") != ""

// New builds a G1 runtime.
func New(cfg Config, classes *vm.ClassTable, clock *simclock.Clock) *G1 {
	if clock == nil {
		clock = simclock.New()
	}
	if classes == nil {
		classes = vm.NewClassTable()
	}
	n := int(cfg.H1Size / cfg.RegionSize)
	if n < 8 {
		panic("g1: need at least 8 regions")
	}
	g := &G1{cfg: cfg, clock: clock, classes: classes, as: &vm.AddressSpace{}, roots: vm.NewRootSet(), th: gc.NoSecondHeap{}, policy: placement.Default{}}
	if cfg.Verify || os.Getenv("TH_VERIFY") == "1" {
		g.SetVerify(true)
	}
	ram := vm.NewRAM(vm.H1Base, cfg.H1Size)
	g.as.Map(vm.H1Base, vm.H1Base+vm.Addr(cfg.H1Size), ram)
	g.mem = vm.NewMem(g.as, classes)
	for i := 0; i < n; i++ {
		start := vm.H1Base + vm.Addr(int64(i)*cfg.RegionSize)
		g.regions = append(g.regions, &region{
			id: i, kind: regFree, start: start, end: start + vm.Addr(cfg.RegionSize), top: start,
		})
		g.free = append(g.free, i)
	}
	g.cardsBase = vm.H1Base
	g.cards = make([]byte, (cfg.H1Size+int64(cfg.CardSize)-1)/int64(cfg.CardSize))
	g.youngTarget = cfg.YoungTarget
	if g.youngTarget <= 0 {
		g.youngTarget = n / 4
		if g.youngTarget < 2 {
			g.youngTarget = 2
		}
	}
	return g
}

// regionOf returns the region containing a.
func (g *G1) regionOf(a vm.Addr) *region {
	i := int(int64(a-vm.H1Base) / g.cfg.RegionSize)
	if i < 0 || i >= len(g.regions) {
		return nil
	}
	return g.regions[i]
}

func (g *G1) takeFree(kind regionKind) *region {
	if len(g.free) == 0 {
		return nil
	}
	id := g.free[0]
	g.free = g.free[1:]
	r := g.regions[id]
	r.kind = kind
	r.top = r.start
	switch kind {
	case regEden:
		g.eden = append(g.eden, id)
	case regSurvivor:
		g.survivor = append(g.survivor, id)
	case regOld:
		g.old = append(g.old, id)
	}
	return r
}

func (g *G1) releaseRegion(r *region) {
	if r.kind == regFree {
		panic(fmt.Sprintf("g1: double free of region %d", r.id))
	}
	r.kind = regFree
	r.top = r.start
	r.liveBytes = 0
	r.humRegions = 0
	g.free = append(g.free, r.id)
	sort.Ints(g.free)
}

// inYoung reports whether a is in an eden or survivor region.
func (g *G1) inYoung(a vm.Addr) bool {
	r := g.regionOf(a)
	return r != nil && (r.kind == regEden || r.kind == regSurvivor)
}

// humongousWords is the threshold above which an object is humongous.
func (g *G1) humongousWords() int {
	return int(g.cfg.RegionSize / 2 / vm.WordSize)
}

func (g *G1) chargeGC(cat simclock.Category, d time.Duration) {
	g.clock.Charge(cat, d/time.Duration(g.cfg.GCThreads))
}

func (g *G1) markCard(a vm.Addr) {
	g.cards[int64(a-g.cardsBase)/int64(g.cfg.CardSize)] = 1
}

// latchOOM records the out-of-memory condition (subsequent allocations
// fail fast on it) and fires the on-OOM lifecycle event exactly once.
func (g *G1) latchOOM(e *gc.OOMError) *gc.OOMError {
	g.oom = e
	g.hooks.OnOOM(e)
	return e
}

// AddressSpace exposes the G1 heap's address space so a second heap can
// be mapped into it.
func (g *G1) AddressSpace() *vm.AddressSpace { return g.as }

// AttachSecondHeap wires a TeraHeap into the collector (TeraHeap-under-
// G1). Must be called before any allocation.
func (g *G1) AttachSecondHeap(th gc.SecondHeap) { g.th = th }

// SetPlacementPolicy installs a placement policy; nil restores the
// default (legacy) policy. Must be called before any allocation.
func (g *G1) SetPlacementPolicy(p placement.Policy) {
	if p == nil {
		p = placement.Default{}
	}
	g.policy = p
}
