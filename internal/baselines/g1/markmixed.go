package g1

import (
	"fmt"
	"sort"
	"time"

	"github.com/carv-repro/teraheap-go/internal/gc"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// MarkingCycle forces a concurrent-marking + mixed-collection cycle
// (exposed for TeraHeap-under-G1 users who want movement at a known
// point, and for tests).
func (g *G1) MarkingCycle() error {
	if g.oom != nil {
		return g.oom
	}
	// Marking assumes an empty-ish young generation; evacuate it first.
	if err := g.youngGCNoMark(); err != nil {
		return err
	}
	_, err := g.markAndMixed()
	return err
}

// markAndMixed runs a (concurrent) marking cycle followed by mixed
// collections of the old regions with the least live data — the
// garbage-first policy. It must run right after a young GC, with the
// young generation empty. It returns the number of regions it managed to
// reclaim so the caller can back off when marking stops paying (old data
// that is simply live, e.g. a cached dataset).
func (g *G1) markAndMixed() (int, error) {
	g.hooks.BeforeGC(gc.PhaseMixed)
	prev := g.clock.SetContext(simclock.MajorGC)
	defer g.clock.SetContext(prev)
	before := g.clock.Breakdown()

	g.th.BeginMajorMark(g.usedBytes(), g.cfg.H1Size)
	objects, refs := g.markAll()
	// TeraHeap-under-G1: move advised closures out during the marking
	// cycle (§7.1); this also frees humongous runs whose objects left.
	movedToH2 := g.moveClosuresToH2()
	// Concurrent marking: most of the traversal overlaps the mutator.
	cpu := time.Duration(float64(time.Duration(objects)*g.cfg.Costs.MarkPerObject+
		time.Duration(refs)*g.cfg.Costs.ScanPerRef) * g.cfg.ConcurrencyDiscount)
	g.chargeGC(simclock.MajorGC, cpu)

	// Reclaim wholly-dead humongous runs and old regions eagerly.
	var reclaimed int64
	regionsFreed := 0
	for _, id := range append([]int(nil), g.hum...) {
		r := g.regions[id]
		if r.liveBytes == 0 {
			reclaimed += r.used()
			regionsFreed += r.humRegions
			g.freeHumongous(r)
		}
	}
	newOld := g.old[:0]
	for _, id := range g.old {
		r := g.regions[id]
		if r.liveBytes == 0 {
			reclaimed += r.used()
			regionsFreed++
			g.clearStartRange(r)
			g.releaseRegion(r)
			continue
		}
		newOld = append(newOld, id)
	}
	g.old = newOld

	// Mixed collection: evacuate the sparsest old regions.
	moved, freedByMixed, err := g.mixedEvacuate()
	if err != nil {
		return 0, err
	}
	regionsFreed += freedByMixed

	// Clear mark bits.
	g.forEachLiveRegionObject(func(a vm.Addr) {
		if g.mem.Marked(a) {
			g.mem.SetMarked(a, false)
		}
	})

	g.clock.Charge(simclock.MajorGC, g.cfg.Costs.PausePerGC)
	delta := g.clock.Breakdown().Sub(before)
	g.th.FinishMajor(g.usedBytes(), g.cfg.H1Size)
	g.stats.Cycles = append(g.stats.Cycles, gc.Cycle{
		Kind: gc.Major, At: g.clock.Now(), Duration: delta.Get(simclock.MajorGC),
		BytesCopied: moved, ReclaimedBytes: reclaimed, BytesMovedToH2: movedToH2,
		OldOccupancyAfter: g.oldOccupancy(),
	})
	g.stats.MajorCount++
	g.stats.MajorTime += delta.Get(simclock.MajorGC)
	g.hooks.AfterGC(gc.PhaseMixed)
	return regionsFreed, nil
}

// markAll marks live objects from the roots and refreshes per-region live
// byte counts. Young regions must be empty.
func (g *G1) markAll() (objects, refs int64) {
	for _, r := range g.regions {
		r.liveBytes = 0
	}
	var stack []vm.Addr
	g.roots.ForEach(func(h *vm.Handle) {
		if a := h.Addr(); !a.IsNull() {
			stack = append(stack, a)
		}
	})
	g.th.ScanBackwardRefs(true, func(_ uint64, t vm.Addr) vm.Addr {
		stack = append(stack, t)
		return t
	}, g.inYoung)
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if g.th.Contains(a) {
			// Fence: record the forward reference, never scan H2.
			g.th.NoteForwardRef(a)
			continue
		}
		if g.mem.Marked(a) {
			continue
		}
		g.mem.SetMarked(a, true)
		objects++
		size := int64(g.mem.SizeWords(a)) * vm.WordSize
		if r := g.regionOf(a); r != nil {
			if r.kind == regHumongousCont {
				r = g.regions[g.humStartOf(r.id)]
			}
			r.liveBytes += size
		}
		n := g.mem.NumRefs(a)
		for i := 0; i < n; i++ {
			if t := g.mem.RefAt(a, i); !t.IsNull() {
				refs++
				stack = append(stack, t)
			}
		}
	}
	return objects, refs
}

// humStartOf finds the start region id of a humongous continuation.
func (g *G1) humStartOf(id int) int {
	for id > 0 && g.regions[id].kind == regHumongousCont {
		id--
	}
	return id
}

func (g *G1) freeHumongous(r *region) {
	n := r.humRegions
	out := g.hum[:0]
	for _, id := range g.hum {
		if id != r.id {
			out = append(out, id)
		}
	}
	g.hum = out
	g.clearStartRange(r)
	for i := 0; i < n; i++ {
		rr := g.regions[r.id+i]
		g.clearStartRange(rr)
		g.releaseRegion(rr)
	}
}

// mixedEvacuate moves the live objects of sparse old regions into fresh
// regions, freeing the sources. Cost is proportional to the (small) live
// volume — the garbage-first payoff.
func (g *G1) mixedEvacuate() (int64, int, error) {
	type cand struct {
		id   int
		live int64
	}
	var cands []cand
	for _, id := range g.old {
		r := g.regions[id]
		if float64(r.liveBytes) < g.cfg.MixedLiveThreshold*float64(g.cfg.RegionSize) {
			cands = append(cands, cand{id, r.liveBytes})
		}
	}
	if len(cands) == 0 {
		return 0, 0, nil
	}
	// Sort with an id tie-break so equal-liveness regions keep a stable
	// order and the whole simulation stays deterministic.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].live != cands[j].live {
			return cands[i].live < cands[j].live
		}
		return cands[i].id < cands[j].id
	})
	// Bound the collection set by free-region capacity (keep 4 in
	// reserve) and by an eighth of the old regions per cycle.
	maxCS := len(g.old)/4 + 1
	var csLive int64
	cs := make(map[int]bool)
	var csIDs []int // selection order; evacuation must not depend on map order
	for _, c := range cands {
		if len(cs) >= maxCS {
			break
		}
		csLive += c.live
		if csLive > int64(len(g.free)-4)*g.cfg.RegionSize {
			break
		}
		cs[c.id] = true
		csIDs = append(csIDs, c.id)
	}
	if len(cs) == 0 {
		return 0, 0, nil
	}

	// Evacuate live (marked) objects.
	var moved int64
	var dst *region
	for _, id := range csIDs {
		r := g.regions[id]
		for a := r.start; a < r.top; {
			if g.mem.Forwarded(a) {
				a += vm.Addr(int(uint32(g.mem.Shape(a))) * vm.WordSize)
				continue
			}
			size := g.mem.SizeWords(a)
			if g.mem.Marked(a) {
				var d vm.Addr
				ok := false
				if dst != nil {
					d, ok = g.bump(dst, size)
				}
				if !ok {
					dst = g.takeFree(regOld)
					if dst == nil {
						return moved, 0, fmt.Errorf("g1: no destination region for mixed GC")
					}
					d, ok = g.bump(dst, size)
					if !ok {
						return moved, 0, fmt.Errorf("g1: object larger than region in mixed GC")
					}
				}
				g.mem.CopyObject(d, a, size)
				g.noteObjStart(d)
				g.mem.SetForwardee(a, d)
				moved += int64(size) * vm.WordSize
				// Preserve old-to-young card information for the new
				// location (survivor regions stay populated between
				// young collections).
				nr := g.mem.NumRefs(d)
				for f := 0; f < nr; f++ {
					if t := g.mem.RefAt(d, f); !t.IsNull() && g.inYoung(t) {
						g.markCard(d)
						break
					}
				}
			}
			a += vm.Addr(size * vm.WordSize)
		}
	}
	g.chargeGC(simclock.MajorGC, time.Duration(moved)*g.cfg.Costs.CopyPerByte)

	// Fix references everywhere (modelled remembered-set cost: charged
	// proportional to the moved volume, already covered above; the walk
	// itself is simulator work).
	fix := func(a vm.Addr) {
		n := g.mem.NumRefs(a)
		for i := 0; i < n; i++ {
			t := g.mem.RefAt(a, i)
			if t.IsNull() {
				continue
			}
			if r := g.regionOf(t); r != nil && cs[r.id] && g.mem.Forwarded(t) {
				g.mem.SetRefAt(a, i, g.mem.Forwardee(t))
			}
		}
	}
	g.forEachLiveRegionObjectExcept(cs, fix)
	g.roots.ForEach(func(h *vm.Handle) {
		a := h.Addr()
		if a.IsNull() {
			return
		}
		if r := g.regionOf(a); r != nil && cs[r.id] && g.mem.Forwarded(a) {
			h.Set(g.mem.Forwardee(a))
		}
	})
	// H2 backward references into the collection set must follow the
	// evacuated objects like every other reference, or they dangle once
	// the source regions are freed (young collections only consult these
	// via the H2 card table, which never sees the stale target again).
	g.th.ScanBackwardRefs(true, func(_ uint64, t vm.Addr) vm.Addr {
		if r := g.regionOf(t); r != nil && cs[r.id] && g.mem.Forwarded(t) {
			return g.mem.Forwardee(t)
		}
		return t
	}, g.inYoung)

	// Free the collection set.
	newOld := g.old[:0]
	for _, id := range g.old {
		if cs[id] {
			r := g.regions[id]
			g.clearStartRange(r)
			g.releaseRegion(r)
			continue
		}
		newOld = append(newOld, id)
	}
	g.old = newOld
	return moved, len(cs), nil
}

// forEachLiveRegionObject walks every object in old, humongous, eden and
// survivor regions.
func (g *G1) forEachLiveRegionObject(fn func(a vm.Addr)) {
	g.forEachLiveRegionObjectExcept(nil, fn)
}

func (g *G1) forEachLiveRegionObjectExcept(skip map[int]bool, fn func(a vm.Addr)) {
	for _, r := range g.regions {
		if skip != nil && skip[r.id] {
			continue
		}
		switch r.kind {
		case regOld, regEden, regSurvivor:
			for a := r.start; a < r.top; {
				if g.mem.Forwarded(a) {
					// Husk of an object moved to H2 (shape preserved).
					a += vm.Addr(int(uint32(g.mem.Shape(a))) * vm.WordSize)
					continue
				}
				size := g.mem.SizeWords(a)
				if size < vm.HeaderWords {
					panic(fmt.Sprintf("g1: corrupt object at %v in region %d (kind %d, size %d, start %v, top %v)",
						a, r.id, r.kind, size, r.start, r.top))
				}
				fn(a)
				a += vm.Addr(size * vm.WordSize)
			}
		case regHumongousStart:
			if r.top > r.start {
				fn(r.start)
			}
		}
	}
}
