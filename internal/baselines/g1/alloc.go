package g1

import (
	"fmt"

	"github.com/carv-repro/teraheap-go/internal/gc"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// noteObjStart records an object header position for card scanning.
func (g *G1) noteObjStart(a vm.Addr) {
	i := int64(a-g.cardsBase) / int64(g.cfg.CardSize)
	if g.startArr == nil {
		g.startArr = make([]vm.Addr, len(g.cards))
	}
	if g.startArr[i].IsNull() || a < g.startArr[i] {
		g.startArr[i] = a
	}
}

func (g *G1) clearStartRange(r *region) {
	if g.startArr == nil {
		return
	}
	lo := int64(r.start-g.cardsBase) / int64(g.cfg.CardSize)
	hi := int64(r.end-1-g.cardsBase) / int64(g.cfg.CardSize)
	for i := lo; i <= hi; i++ {
		g.startArr[i] = vm.NullAddr
	}
}

// allocWords is the G1 allocation slow path.
func (g *G1) allocWords(sizeWords int) (vm.Addr, error) {
	if g.oom != nil {
		return vm.NullAddr, g.oom
	}
	if sizeWords > g.humongousWords() {
		return g.allocHumongous(sizeWords)
	}
	for attempt := 0; attempt < 3; attempt++ {
		if g.curEden != nil {
			if a, ok := g.bump(g.curEden, sizeWords); ok {
				return a, nil
			}
		}
		// Need a new eden region. The young target adapts to free space:
		// under occupancy pressure G1 shrinks the young generation rather
		// than thrashing full collections.
		target := g.youngTarget
		if cap := (len(g.free) - 4) / 2; cap < target {
			target = cap
			if target < 1 {
				target = 1
			}
		}
		if len(g.eden) >= target {
			if err := g.youngGC(); err != nil {
				return vm.NullAddr, err
			}
		}
		if r := g.takeFree(regEden); r != nil {
			g.curEden = r
			continue
		}
		if err := g.fullGC(); err != nil {
			return vm.NullAddr, err
		}
	}
	return vm.NullAddr, g.latchOOM(&gc.OOMError{Requested: int64(sizeWords) * vm.WordSize, Where: "g1 allocation"})
}

func (g *G1) bump(r *region, sizeWords int) (vm.Addr, bool) {
	need := vm.Addr(sizeWords * vm.WordSize)
	if r.top+need > r.end {
		return vm.NullAddr, false
	}
	a := r.top
	r.top += need
	return a, true
}

// allocHumongous places one object in a run of contiguous free regions —
// G1's humongous allocation. The tail of the last region is wasted, and a
// failure to find a contiguous run after a full GC is the fragmentation
// OOM the paper observes for SVM, BC, and RL.
func (g *G1) allocHumongous(sizeWords int) (vm.Addr, error) {
	need := int((int64(sizeWords)*vm.WordSize + g.cfg.RegionSize - 1) / g.cfg.RegionSize)
	for attempt := 0; attempt < 3; attempt++ {
		// Humongous runs must not eat the evacuation reserve.
		if len(g.free)-need < g.evacReserve() {
			if attempt == 0 {
				if err := g.youngGC(); err != nil {
					return vm.NullAddr, err
				}
			} else if err := g.fullGC(); err != nil {
				return vm.NullAddr, err
			}
			if len(g.free)-need < g.evacReserve() {
				continue
			}
		}
		if start := g.findRun(need); start >= 0 {
			r := g.regions[start]
			r.kind = regHumongousStart
			r.humRegions = need
			r.top = r.start + vm.Addr(sizeWords*vm.WordSize)
			g.hum = append(g.hum, start)
			g.removeFree(start, need)
			for i := 1; i < need; i++ {
				g.regions[start+i].kind = regHumongousCont
			}
			g.noteObjStart(r.start)
			return r.start, nil
		}
		if err := g.fullGC(); err != nil {
			return vm.NullAddr, err
		}
	}
	return vm.NullAddr, g.latchOOM(&gc.OOMError{
		Requested: int64(sizeWords) * vm.WordSize,
		Where:     fmt.Sprintf("g1 humongous allocation (%d contiguous regions)", need),
	})
}

// evacReserve is the number of free regions the next young evacuation
// may need in the worst case.
func (g *G1) evacReserve() int {
	return len(g.eden) + len(g.survivor) + 3
}

// findRun returns the first id of a run of n contiguous free regions, or
// -1.
func (g *G1) findRun(n int) int {
	runStart, runLen := -1, 0
	prev := -2
	for _, id := range g.free {
		if id == prev+1 {
			runLen++
		} else {
			runStart, runLen = id, 1
		}
		prev = id
		if runLen >= n {
			return runStart
		}
	}
	return -1
}

// removeFree removes ids [start, start+n) from the free list.
func (g *G1) removeFree(start, n int) {
	out := g.free[:0]
	for _, id := range g.free {
		if id < start || id >= start+n {
			out = append(out, id)
		}
	}
	g.free = out
}
