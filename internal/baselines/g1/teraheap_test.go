package g1_test

import (
	"testing"

	"github.com/carv-repro/teraheap-go/internal/baselines/g1"
	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

func newG1TH(t *testing.T, h1Size int64) (*g1.G1, *core.TeraHeap, *vm.Class, *vm.Class) {
	t.Helper()
	classes := vm.NewClassTable()
	node := classes.MustFixed("Node", 2, 1)
	parr := classes.MustPrimArray("long[]")
	thCfg := core.DefaultConfig(64 * storage.MB)
	thCfg.RegionSize = 32 * storage.KB
	g, th := g1.NewWithTeraHeap(g1.DefaultConfig(h1Size), thCfg, nil, classes, simclock.New())
	return g, th, node, parr
}

// buildGroup makes a partition-shaped group behind a rooted handle.
func buildGroup(t *testing.T, g *g1.G1, node *vm.Class, n int) *vm.Handle {
	t.Helper()
	arr := g.Classes().ByName("Object[]")
	if arr == nil {
		arr = g.Classes().MustRefArray("Object[]")
	}
	root, err := g.AllocRefArray(arr, n)
	if err != nil {
		t.Fatal(err)
	}
	h := g.NewHandle(root)
	for i := 0; i < n; i++ {
		a, err := g.Alloc(node)
		if err != nil {
			t.Fatal(err)
		}
		g.WritePrim(a, 0, uint64(i))
		g.WriteRef(h.Addr(), i, a)
	}
	return h
}

func TestG1THMovesClosureDuringMarking(t *testing.T) {
	g, th, node, _ := newG1TH(t, 1<<21)
	h := buildGroup(t, g, node, 200)
	g.TagRoot(h, 7)
	g.MoveHint(7)
	if err := g.MarkingCycle(); err != nil {
		t.Fatal(err)
	}
	if !g.InSecondHeap(h.Addr()) {
		t.Fatal("group never moved to H2 under G1")
	}
	// Still directly readable, whole closure travelled.
	for i := 0; i < 200; i++ {
		el := g.ReadRef(h.Addr(), i)
		if !g.InSecondHeap(el) {
			t.Fatalf("element %d stayed in H1", i)
		}
		if v := g.ReadPrim(el, 0); v != uint64(i) {
			t.Fatalf("element %d = %d", i, v)
		}
	}
	if th.Stats().ObjectsMoved < 201 {
		t.Fatalf("moved %d objects", th.Stats().ObjectsMoved)
	}
}

func TestG1THHumongousMovesFreeRuns(t *testing.T) {
	g, th, _, parr := newG1TH(t, 1<<21)
	cfg := g1.DefaultConfig(1 << 21)
	humWords := int(cfg.RegionSize/8) * 3 / 2 // 1.5 regions
	a, err := g.AllocPrimArray(parr, humWords)
	if err != nil {
		t.Fatal(err)
	}
	h := g.NewHandle(a)
	g.WritePrim(a, 0, 42)
	g.WritePrim(a, humWords-1, 99)
	g.TagRoot(h, 3)
	g.MoveHint(3)
	used0, _ := g.HeapUsed()
	if err := g.MarkingCycle(); err != nil {
		t.Fatal(err)
	}
	if !g.InSecondHeap(h.Addr()) {
		t.Fatal("humongous object never moved to H2")
	}
	if g.ReadPrim(h.Addr(), 0) != 42 || g.ReadPrim(h.Addr(), humWords-1) != 99 {
		t.Fatal("humongous contents corrupted by move")
	}
	used1, _ := g.HeapUsed()
	if used1 >= used0 {
		t.Fatalf("humongous run not freed: %d -> %d", used0, used1)
	}
	if th.UsedBytes() == 0 {
		t.Fatal("H2 empty after humongous move")
	}
}

func TestG1THBackwardRefsSurvive(t *testing.T) {
	g, _, node, _ := newG1TH(t, 1<<21)
	h := buildGroup(t, g, node, 50)
	g.TagRoot(h, 5)
	g.MoveHint(5)
	if err := g.MarkingCycle(); err != nil {
		t.Fatal(err)
	}
	if !g.InSecondHeap(h.Addr()) {
		t.Fatal("group not moved")
	}
	// Mutate an H2 element to reference a fresh H1 object; young GCs must
	// keep it alive via the H2 card table.
	el := g.ReadRef(h.Addr(), 10)
	young, err := g.Alloc(node)
	if err != nil {
		t.Fatal(err)
	}
	g.WritePrim(young, 0, 777)
	g.WriteRef(el, 0, young)
	for i := 0; i < 10; i++ {
		tmp := buildGroup(t, g, node, 400)
		g.Release(tmp)
	}
	back := g.ReadRef(el, 0)
	if back.IsNull() || g.InSecondHeap(back) {
		t.Fatalf("backward ref wrong: %v", back)
	}
	if v := g.ReadPrim(back, 0); v != 777 {
		t.Fatalf("backward target = %d", v)
	}
	// And across a full GC (the target is packed to a new address).
	if err := g.FullGC(); err != nil {
		t.Fatal(err)
	}
	if v := g.ReadPrim(g.ReadRef(el, 0), 0); v != 777 {
		t.Fatal("backward ref broken by full GC")
	}
}

func TestG1THRegionReclamation(t *testing.T) {
	g, th, node, _ := newG1TH(t, 1<<21)
	h := buildGroup(t, g, node, 150)
	g.TagRoot(h, 9)
	g.MoveHint(9)
	if err := g.MarkingCycle(); err != nil {
		t.Fatal(err)
	}
	if !g.InSecondHeap(h.Addr()) {
		t.Fatal("group not moved")
	}
	g.Release(h)
	// The next marking cycle reclaims the dead regions in bulk.
	if err := g.MarkingCycle(); err != nil {
		t.Fatal(err)
	}
	if th.UsedBytes() != 0 {
		t.Fatalf("H2 still holds %d bytes", th.UsedBytes())
	}
}
