package g1

import (
	"fmt"

	"github.com/carv-repro/teraheap-go/internal/check"
	"github.com/carv-repro/teraheap-go/internal/gc"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// This file adapts the check package's invariant rules to G1's region
// layout. The differences from the Parallel Scavenge walk:
//
//   - objects live in fixed-size regions classified by kind, and the
//     region lists (free/eden/survivor/old/hum) must agree with the kinds;
//   - husks — objects moved to H2 during a marking cycle — legitimately
//     keep their forwarding pointer outside a pause, but only when the
//     forwardee is in H2 and the shape word still parses;
//   - humongous regions hold exactly one object whose extent may span the
//     whole contiguous run, past the start region's end;
//   - the card table is one-bit (clean/dirty) over the whole heap, and the
//     dirty requirement applies to the card of the holder's START (that is
//     what the write barrier and the evacuation walks mark);
//   - startArr is allocated lazily and covers old and humongous-start
//     addresses only; entries elsewhere must be null.

// verifyHook adapts the verifier to the lifecycle-hook plane with G1's
// phase labels (young / mixed cycle / full GC).
type verifyHook struct {
	gc.BaseHook
	g *G1
}

func g1PhaseName(p gc.Phase) string {
	switch p {
	case gc.PhaseMinor:
		return "young GC"
	case gc.PhaseMixed:
		return "mixed cycle"
	}
	return "full GC"
}

func (h *verifyHook) BeforeGC(p gc.Phase) { h.g.runVerify("before " + g1PhaseName(p)) }
func (h *verifyHook) AfterGC(p gc.Phase)  { h.g.runVerify("after " + g1PhaseName(p)) }

// Hooks returns the collector's lifecycle-hook plane.
func (g *G1) Hooks() *gc.Hooks { return &g.hooks }

// SetVerify toggles before/after-collection heap verification: a shim that
// registers (or removes) the verifier hook at the front of the hook plane.
func (g *G1) SetVerify(v bool) {
	if v == (g.vhook != nil) {
		return
	}
	if v {
		g.vhook = &verifyHook{g: g}
		g.hooks.RegisterFirst(g.vhook)
		return
	}
	g.hooks.Remove(g.vhook)
	g.vhook = nil
}

// VerifyEnabled reports whether the verifier hook is registered.
func (g *G1) VerifyEnabled() bool { return g.vhook != nil }

// VerifyNow runs every invariant rule against the quiescent heap and
// returns all violations found.
func (g *G1) VerifyNow() []check.Failure {
	var failures []check.Failure
	report := func(f check.Failure) { failures = append(failures, f) }

	live, husks := g.walkRegions(report)
	starts := make(map[vm.Addr]*g1obj, len(live))
	for i := range live {
		starts[live[i].addr] = &live[i]
	}

	g.verifyRegionLists(report)
	g.verifyReachable(starts, report)
	g.verifyCards(live, report)
	g.verifyStartArr(live, husks, report)

	if h2, ok := g.th.(check.H2); ok {
		h2.VerifySelf(g.inYoung, func(a vm.Addr) bool {
			_, ok := starts[a]
			return ok
		}, report)
	}
	check.VerifyClock(g.clock, report)
	return failures
}

func (g *G1) runVerify(when string) {
	if failures := g.VerifyNow(); len(failures) > 0 {
		panic(check.Report(when, failures))
	}
}

// g1obj is one parsed live object.
type g1obj struct {
	addr    vm.Addr
	size    int // words
	numRefs int
	region  *region
}

func kindName(k regionKind) string {
	switch k {
	case regFree:
		return "free"
	case regEden:
		return "eden"
	case regSurvivor:
		return "survivor"
	case regOld:
		return "old"
	case regHumongousStart:
		return "humongous"
	case regHumongousCont:
		return "humongous-cont"
	}
	return "?"
}

// walkRegions parse-walks every region, validating headers, husks,
// humongous run shapes and per-region accounting. It returns the live
// objects and the husk start addresses (husks matter for startArr).
func (g *G1) walkRegions(report func(check.Failure)) (live []g1obj, husks []vm.Addr) {
	humCovered := make(map[int]bool)
	for _, r := range g.regions {
		switch r.kind {
		case regFree:
			if r.top != r.start {
				report(check.Failure{Rule: "g1-free-region-not-empty", Space: "free", Region: r.id,
					Card: -1, Field: -1,
					Detail: fmt.Sprintf("free region top %v != start %v", r.top, r.start)})
			}
		case regEden, regSurvivor, regOld:
			live = append(live, g.walkLinearRegion(r, &husks, report)...)
		case regHumongousStart:
			live = append(live, g.walkHumongous(r, humCovered, report)...)
		}
	}
	for _, r := range g.regions {
		if r.kind == regHumongousCont && !humCovered[r.id] {
			report(check.Failure{Rule: "g1-orphan-humongous-cont", Space: "humongous-cont",
				Region: r.id, Card: -1, Field: -1,
				Detail: "continuation region not covered by any humongous run"})
		}
	}
	return live, husks
}

// walkLinearRegion parses one bump-allocated region [start, top).
func (g *G1) walkLinearRegion(r *region, husks *[]vm.Addr, report func(check.Failure)) []g1obj {
	name := kindName(r.kind)
	var objs []g1obj
	var sumWords int64
	a := r.start
	for a < r.top {
		status := g.as.Peek(a)
		if vm.StatusForwarded(status) {
			// Husk of an object moved to H2: legal outside a pause only if
			// the forwardee actually is in H2 and the shape still parses.
			fw := vm.StatusForwardee(status)
			if !g.th.Contains(fw) {
				report(check.Failure{Rule: "g1-forwarding-outside-pause", Space: name, Region: r.id,
					Card: -1, Holder: a, Field: -1,
					Detail: fmt.Sprintf("forwarding pointer to non-H2 address %v survives outside a GC pause", fw)})
				return objs
			}
			size := vm.ShapeSizeWords(g.as.Peek(a + vm.WordSize))
			if size < vm.HeaderWords {
				report(check.Failure{Rule: "g1-bad-husk-shape", Space: name, Region: r.id,
					Card: -1, Holder: a, Field: -1,
					Detail: fmt.Sprintf("husk shape size %d words below header size", size)})
				return objs
			}
			*husks = append(*husks, a)
			sumWords += int64(size)
			a += vm.Addr(size * vm.WordSize)
			continue
		}
		o, ok := g.parseObject(r, a, name, r.top, report)
		if !ok {
			return objs
		}
		objs = append(objs, o)
		sumWords += int64(o.size)
		a += vm.Addr(o.size * vm.WordSize)
	}
	if got, want := sumWords*vm.WordSize, r.used(); got != want {
		report(check.Failure{Rule: "g1-accounting", Space: name, Region: r.id, Card: -1, Field: -1,
			Detail: fmt.Sprintf("walked object bytes %d != used() %d", got, want)})
	}
	return objs
}

// walkHumongous parses a humongous run: exactly one object at the start
// region's start, extending to top (which may lie past the start region's
// end, inside a continuation region of the run).
func (g *G1) walkHumongous(r *region, humCovered map[int]bool, report func(check.Failure)) []g1obj {
	if r.humRegions < 1 {
		report(check.Failure{Rule: "g1-humongous-run", Space: "humongous", Region: r.id,
			Card: -1, Field: -1,
			Detail: fmt.Sprintf("humongous start region has run length %d", r.humRegions)})
		return nil
	}
	for i := 1; i < r.humRegions; i++ {
		id := r.id + i
		if id >= len(g.regions) || g.regions[id].kind != regHumongousCont {
			report(check.Failure{Rule: "g1-humongous-run", Space: "humongous", Region: r.id,
				Card: -1, Field: -1,
				Detail: fmt.Sprintf("run of %d regions is not continued at region %d", r.humRegions, id)})
			return nil
		}
		humCovered[id] = true
	}
	if r.top <= r.start {
		report(check.Failure{Rule: "g1-humongous-empty", Space: "humongous", Region: r.id,
			Card: -1, Field: -1, Detail: "humongous start region holds no object"})
		return nil
	}
	runEnd := r.start + vm.Addr(int64(r.humRegions)*g.cfg.RegionSize)
	status := g.as.Peek(r.start)
	if vm.StatusForwarded(status) {
		// Runs whose object moved to H2 are freed within the marking pause;
		// a humongous husk must never survive to a quiescent point.
		report(check.Failure{Rule: "g1-forwarding-outside-pause", Space: "humongous", Region: r.id,
			Card: -1, Holder: r.start, Field: -1,
			Detail: fmt.Sprintf("humongous object forwarded to %v outside a GC pause", vm.StatusForwardee(status))})
		return nil
	}
	o, ok := g.parseObject(r, r.start, "humongous", runEnd, report)
	if !ok {
		return nil
	}
	if end := r.start + vm.Addr(o.size*vm.WordSize); end != r.top {
		report(check.Failure{Rule: "g1-accounting", Space: "humongous", Region: r.id,
			Card: -1, Holder: r.start, Field: -1,
			Detail: fmt.Sprintf("humongous object end %v != region top %v", end, r.top)})
	}
	return []g1obj{o}
}

// parseObject validates one non-forwarded object header at a, bounded by
// limit.
func (g *G1) parseObject(r *region, a vm.Addr, name string, limit vm.Addr, report func(check.Failure)) (g1obj, bool) {
	status := g.as.Peek(a)
	if status&(vm.FlagMark|vm.FlagClosure) != 0 {
		report(check.Failure{Rule: "g1-stale-gc-bits", Space: name, Region: r.id,
			Card: -1, Holder: a, Field: -1,
			Detail: fmt.Sprintf("mark/closure bits 0x%x set outside a GC pause", status&(vm.FlagMark|vm.FlagClosure))})
	}
	cid := vm.StatusClassID(status)
	if cid == 0 || int(cid) >= g.classes.Len() {
		report(check.Failure{Rule: "g1-bad-class", Space: name, Region: r.id,
			Card: -1, Holder: a, Field: -1,
			Detail: fmt.Sprintf("class id %d out of range [1, %d)", cid, g.classes.Len())})
		return g1obj{}, false
	}
	shape := g.as.Peek(a + vm.WordSize)
	size := vm.ShapeSizeWords(shape)
	numRefs := vm.ShapeNumRefs(shape)
	if size < vm.HeaderWords || vm.HeaderWords+numRefs > size {
		report(check.Failure{Rule: "g1-bad-shape", Space: name, Region: r.id,
			Card: -1, Holder: a, Field: -1,
			Detail: fmt.Sprintf("size %d words, %d refs is not a valid shape", size, numRefs)})
		return g1obj{}, false
	}
	if end := a + vm.Addr(size*vm.WordSize); end > limit {
		report(check.Failure{Rule: "g1-object-overruns-top", Space: name, Region: r.id,
			Card: -1, Holder: a, Field: -1,
			Detail: fmt.Sprintf("object end %v exceeds limit %v", end, limit)})
		return g1obj{}, false
	}
	return g1obj{addr: a, size: size, numRefs: numRefs, region: r}, true
}

// verifyRegionLists checks that the free/eden/survivor/old/hum id lists
// agree exactly with the region kinds, with no duplicates.
func (g *G1) verifyRegionLists(report func(check.Failure)) {
	listed := make(map[int]regionKind, len(g.regions))
	note := func(ids []int, kind regionKind, listName string) {
		for _, id := range ids {
			if prev, dup := listed[id]; dup {
				report(check.Failure{Rule: "g1-region-list", Space: listName, Region: id,
					Card: -1, Field: -1,
					Detail: fmt.Sprintf("region listed twice (also on the %s list)", kindName(prev))})
				continue
			}
			listed[id] = kind
			if id < 0 || id >= len(g.regions) {
				report(check.Failure{Rule: "g1-region-list", Space: listName, Region: id,
					Card: -1, Field: -1, Detail: "region id out of range"})
				continue
			}
			if got := g.regions[id].kind; got != kind {
				report(check.Failure{Rule: "g1-region-list", Space: listName, Region: id,
					Card: -1, Field: -1,
					Detail: fmt.Sprintf("region is on the %s list but has kind %s", listName, kindName(got))})
			}
		}
	}
	note(g.free, regFree, "free")
	note(g.eden, regEden, "eden")
	note(g.survivor, regSurvivor, "survivor")
	note(g.old, regOld, "old")
	note(g.hum, regHumongousStart, "humongous")
	for _, r := range g.regions {
		if r.kind == regHumongousCont {
			continue // continuation regions are tracked via their run
		}
		if _, ok := listed[r.id]; !ok {
			report(check.Failure{Rule: "g1-region-list", Space: kindName(r.kind), Region: r.id,
				Card: -1, Field: -1,
				Detail: fmt.Sprintf("region of kind %s is on no list", kindName(r.kind))})
		}
	}
	if g.curEden != nil && g.curEden.kind != regEden {
		report(check.Failure{Rule: "g1-region-list", Space: "eden", Region: g.curEden.id,
			Card: -1, Field: -1,
			Detail: fmt.Sprintf("current eden region has kind %s", kindName(g.curEden.kind))})
	}
}

// verifyReachable BFS-walks the object graph from the root set: every
// reference must target null, a live (non-husk) H1 object start, or an
// allocated H2 address.
func (g *G1) verifyReachable(starts map[vm.Addr]*g1obj, report func(check.Failure)) {
	h2, hasH2 := g.th.(check.H2)
	visited := make(map[vm.Addr]bool)
	var queue []vm.Addr
	push := func(a vm.Addr) {
		if !visited[a] {
			visited[a] = true
			queue = append(queue, a)
		}
	}
	rootIdx := 0
	g.roots.ForEach(func(h *vm.Handle) {
		a := h.Addr()
		switch {
		case a.IsNull():
		case g.th.Contains(a):
			if hasH2 && !h2.ContainsAllocated(a) {
				report(check.Failure{Rule: "root-dangling-h2", Space: "roots", Region: -1,
					Card: -1, Field: rootIdx,
					Detail: fmt.Sprintf("root handle %d targets unallocated H2 address %v", rootIdx, a)})
			}
		default:
			if _, ok := starts[a]; !ok {
				report(check.Failure{Rule: "root-dangling", Space: "roots", Region: -1,
					Card: -1, Field: rootIdx,
					Detail: fmt.Sprintf("root handle %d targets %v, not a live H1 object start", rootIdx, a)})
			} else {
				push(a)
			}
		}
		rootIdx++
	})
	for len(queue) > 0 {
		a := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		o := starts[a]
		for i := 0; i < o.numRefs; i++ {
			t := vm.Addr(g.as.Peek(a + vm.Addr((vm.HeaderWords+i)*vm.WordSize)))
			if t.IsNull() {
				continue
			}
			if g.th.Contains(t) {
				if hasH2 && !h2.ContainsAllocated(t) {
					report(check.Failure{Rule: "ref-dangling-h2", Space: kindName(o.region.kind),
						Region: o.region.id, Card: -1, Holder: a, Field: i,
						Detail: fmt.Sprintf("reference targets unallocated H2 address %v", t)})
				}
				continue // H2 interiors are verified by H2.VerifySelf
			}
			if _, ok := starts[t]; !ok {
				rule := "ref-dangling"
				detail := fmt.Sprintf("reference targets %v, not a live object start", t)
				if g.as.Resolve(t) == nil {
					rule = "ref-unmapped"
					detail = fmt.Sprintf("reference targets unmapped address %v", t)
				}
				report(check.Failure{Rule: rule, Space: kindName(o.region.kind),
					Region: o.region.id, Card: -1, Holder: a, Field: i, Detail: detail})
				continue
			}
			push(t)
		}
	}
}

// verifyCards checks the one-bit card table: every old or humongous object
// holding a young reference must have the card of its START dirty — that
// is the card the write barrier and the evacuation walks mark, and the
// card scan parses forward from the start array, so a holder is found iff
// its start's card is dirty.
func (g *G1) verifyCards(live []g1obj, report func(check.Failure)) {
	for i := range live {
		o := &live[i]
		if o.region.kind != regOld && o.region.kind != regHumongousStart {
			continue
		}
		for f := 0; f < o.numRefs; f++ {
			t := vm.Addr(g.as.Peek(o.addr + vm.Addr((vm.HeaderWords+f)*vm.WordSize)))
			if t.IsNull() || !g.inYoung(t) {
				continue
			}
			ci := int(int64(o.addr-g.cardsBase) / int64(g.cfg.CardSize))
			if g.cards[ci] == 0 {
				report(check.Failure{Rule: "g1-card-missing-dirty", Space: kindName(o.region.kind),
					Region: o.region.id, Card: ci, Holder: o.addr, Field: f,
					Detail: fmt.Sprintf("object holds young reference %v but the card of its start is clean", t)})
			}
			break // one young ref suffices to require the card
		}
	}
}

// verifyStartArr checks that startArr[i] is exactly the lowest object
// header (live or husk) starting in card i within old and humongous-start
// regions, and null everywhere else. A nil startArr means no old or
// humongous object was ever noted, so every expectation must be null too.
func (g *G1) verifyStartArr(live []g1obj, husks []vm.Addr, report func(check.Failure)) {
	want := make([]vm.Addr, len(g.cards))
	note := func(a vm.Addr) {
		r := g.regionOf(a)
		if r == nil || (r.kind != regOld && r.kind != regHumongousStart) {
			return
		}
		i := int64(a-g.cardsBase) / int64(g.cfg.CardSize)
		if want[i].IsNull() || a < want[i] {
			want[i] = a
		}
	}
	for i := range live {
		note(live[i].addr)
	}
	for _, a := range husks {
		note(a)
	}
	for i := range want {
		var got vm.Addr
		if g.startArr != nil {
			got = g.startArr[i]
		}
		if got != want[i] {
			report(check.Failure{Rule: "g1-start-array", Space: "old", Region: -1, Card: i,
				Holder: got, Field: -1,
				Detail: fmt.Sprintf("startArr[%d]=%v but lowest object header in card is %v", i, got, want[i])})
		}
	}
}
