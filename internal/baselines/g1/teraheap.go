package g1

import (
	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/gc"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// TeraHeap-under-G1: the integration §7.1 sketches ("TeraHeap can also be
// used with G1 to eliminate S/D cost and reduce the amount of data
// subject to GC, by moving long-lived, humongous objects to H2").
//
// The G1 collector gains the same SecondHeap hooks as Parallel Scavenge:
//
//   - the post-write barrier's reference range check (WriteRef);
//   - fencing: neither young evacuation nor marking ever scans H2;
//   - the H2 card table supplies young-collection roots and is kept
//     adjusted when objects move;
//   - during a marking cycle, the transitive closures of advised tagged
//     roots move to H2 — humongous objects included, which frees whole
//     contiguous region runs and directly attacks G1's fragmentation.
//
// Movement happens at marking cycles (G1 has no moment when everything is
// compacted, so moved objects are copied out and the references to them
// are fixed in the same pass that mixed evacuation already uses).

// moveClosuresToH2 selects and moves advised closures during a marking
// cycle. Must run right after markAll (mark bits valid), before mark bits
// are cleared. Returns the bytes moved.
func (g *G1) moveClosuresToH2() int64 {
	th := g.th
	if _, none := th.(gc.NoSecondHeap); none {
		return 0
	}
	// Select closures (advised labels only; G1 integration does not use
	// the forced-threshold path). Traversal is breadth-first in reference
	// order, so the H2 layout matches the order readers will stream the
	// group in — G1's evacuations scramble H1 addresses, so unlike
	// Parallel Scavenge there is no address order worth preserving.
	var queue []vm.Addr
	var selected []vm.Addr
	var selectedWords int64
	for _, tr := range th.TaggedRoots() {
		a := tr.Handle.Addr()
		if a.IsNull() || th.Contains(a) {
			continue
		}
		if !th.Advised(tr.Label) || !th.ShouldMoveLabel(tr.Label, selectedWords) {
			continue
		}
		queue = append(queue[:0], a)
		for len(queue) > 0 {
			o := queue[0]
			queue = queue[1:]
			if o.IsNull() || th.Contains(o) || g.mem.InClosure(o) {
				continue
			}
			if th.ExcludeClass(g.mem.ClassOf(o)) {
				continue
			}
			g.mem.SetInClosure(o, true)
			g.mem.SetLabel(o, tr.Label)
			selected = append(selected, o)
			selectedWords += int64(g.mem.SizeWords(o))
			n := g.mem.NumRefs(o)
			for i := 0; i < n; i++ {
				if t := g.mem.RefAt(o, i); !t.IsNull() && !th.Contains(t) {
					queue = append(queue, t)
				}
			}
		}
	}
	if len(selected) == 0 {
		return 0
	}

	// Reserve H2 space and set forwarding pointers.
	kept := selected[:0]
	dsts := make(map[vm.Addr]vm.Addr, len(selected))
	for _, o := range selected {
		size := g.mem.SizeWords(o)
		dst, ok := th.PrepareMove(g.mem.Label(o), size)
		if !ok {
			g.mem.SetInClosure(o, false) // H2 exhausted: stays in H1
			continue
		}
		dsts[o] = dst
		kept = append(kept, o)
	}
	selected = kept

	// Commit images with references adjusted: targets inside the moved
	// set map to their H2 destinations; H1 targets become backward refs;
	// H2 targets become cross-region refs.
	var moved int64
	for _, o := range selected {
		size := g.mem.SizeWords(o)
		status := g.mem.Status(o)
		image := make([]uint64, size)
		image[0] = status &^ uint64(vm.FlagMark|vm.FlagClosure)
		image[1] = g.mem.Shape(o)
		image[2] = g.mem.Label(o)
		dst := dsts[o]
		n := g.mem.NumRefs(o)
		for i := 0; i < n; i++ {
			t := g.mem.RefAt(o, i)
			switch {
			case t.IsNull():
			case th.Contains(t):
				th.NoteCrossRegionRef(dst, t)
			default:
				if nd, movedToo := dsts[t]; movedToo {
					t = nd
					th.NoteCrossRegionRef(dst, nd)
				} else {
					th.NoteBackwardRef(dst, g.inYoung(t))
				}
			}
			image[vm.HeaderWords+i] = uint64(t)
		}
		for i := vm.HeaderWords + n; i < size; i++ {
			image[i] = g.mem.AS.Load(o + vm.Addr(i*vm.WordSize))
		}
		th.CommitMove(dst, image)
		g.mem.SetForwardee(o, dst)
		moved += int64(size) * vm.WordSize

		// Account the vacated space so mixed collections see the region
		// emptier; humongous runs are freed outright below.
		if r := g.regionOf(o); r != nil && r.kind == regOld {
			r.liveBytes -= int64(size) * vm.WordSize
			if r.liveBytes < 0 {
				r.liveBytes = 0
			}
		}
	}
	th.FlushBuffers()

	// Fix every reference to a moved object (same walk mixed evacuation
	// uses), including roots and H2 backward references.
	fix := func(a vm.Addr) {
		n := g.mem.NumRefs(a)
		for i := 0; i < n; i++ {
			t := g.mem.RefAt(a, i)
			if t.IsNull() || th.Contains(t) {
				continue
			}
			if nd, ok := dsts[t]; ok {
				g.mem.SetRefAt(a, i, nd)
			}
		}
	}
	g.forEachLiveRegionObject(fix)
	g.roots.ForEach(func(h *vm.Handle) {
		if nd, ok := dsts[h.Addr()]; ok {
			h.Set(nd)
		}
	})
	th.ScanBackwardRefs(true, func(_ uint64, t vm.Addr) vm.Addr {
		if nd, ok := dsts[t]; ok {
			return nd
		}
		return t
	}, g.inYoung)

	// Free humongous runs whose single object moved to H2 — the
	// fragmentation payoff of the paper's suggestion.
	for _, id := range append([]int(nil), g.hum...) {
		r := g.regions[id]
		if r.top > r.start && g.mem.Forwarded(r.start) {
			g.freeHumongous(r)
		}
	}
	g.stats.TotalBytesMovedH2 += moved
	return moved
}

var _ = gc.NoSecondHeap{}

// NewWithTeraHeap builds a G1 runtime with an attached second heap: the
// §7.1 "TeraHeap can also be used with G1" configuration. It returns both
// so callers can reach the TeraHeap statistics.
func NewWithTeraHeap(cfg Config, thCfg core.Config, dev *storage.Device,
	classes *vm.ClassTable, clock *simclock.Clock) (*G1, *core.TeraHeap) {
	g := New(cfg, classes, clock)
	if dev == nil {
		dev = storage.NewDevice(storage.NVMeSSD, g.clock)
	}
	th := core.New(thCfg, dev, g.as, g.clock)
	th.AttachMem(g.mem)
	g.AttachSecondHeap(th)
	return g, th
}
