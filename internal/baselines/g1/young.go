package g1

import (
	"fmt"
	"time"

	"github.com/carv-repro/teraheap-go/internal/gc"
	"github.com/carv-repro/teraheap-go/internal/placement"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// youngGC evacuates the eden and survivor regions: live objects copy to
// fresh survivor regions (or old regions once tenured), references are
// fixed through forwarding pointers, and the collection set is freed.
// It then starts a marking cycle (and mixed collections) when old-space
// occupancy crosses the IHOP threshold.
func (g *G1) youngGC() error {
	if err := g.youngGCNoMark(); err != nil {
		return err
	}
	// Start a marking cycle under occupancy pressure. Like real G1, a
	// completed marking cycle is followed by a cooldown: re-marking after
	// every single young collection would dwarf the collections
	// themselves.
	if g.oldOccupancy() > g.cfg.IHOP {
		if g.markCooldown > 0 {
			g.markCooldown--
		} else {
			freed, err := g.markAndMixed()
			if err != nil {
				return err
			}
			// Productive cycles repeat soon; futile ones (the old data is
			// simply live) back off hard, as real G1 does when mixed
			// collections stop meeting their efficiency goal.
			if freed >= 2 {
				g.markCooldown = 4
			} else {
				g.markCooldown = 64
			}
		}
	}
	return nil
}

// youngGCNoMark evacuates the young generation without considering a
// marking cycle afterwards.
func (g *G1) youngGCNoMark() error {
	if g.oom != nil {
		return g.oom
	}
	// Evacuation needs destination regions: in the worst case one per
	// young region plus partially-filled survivor/old tails. When the
	// free list cannot cover that, fall back to the in-place full GC
	// (which needs no free regions and empties the young generation).
	if len(g.free) < len(g.eden)+len(g.survivor)+3 {
		return g.fullGC()
	}
	g.hooks.BeforeGC(gc.PhaseMinor)
	prev := g.clock.SetContext(simclock.MinorGC)
	defer g.clock.SetContext(prev)
	before := g.clock.Breakdown()

	cs := make(map[int]bool) // collection set: current young regions
	for _, id := range g.eden {
		cs[id] = true
	}
	for _, id := range g.survivor {
		cs[id] = true
	}
	oldEden, oldSurvivor := g.eden, g.survivor
	g.eden, g.survivor = nil, nil
	g.curEden = nil

	var curSurv, curOld *region
	var bytesCopied, bytesPromoted int64
	var refsScanned, cardsScanned, cardObjects int64
	var worklist []vm.Addr

	inCS := func(a vm.Addr) bool {
		r := g.regionOf(a)
		return r != nil && cs[r.id]
	}

	evac := func(a vm.Addr) vm.Addr {
		if g.mem.Forwarded(a) {
			return g.mem.Forwardee(a)
		}
		size := g.mem.SizeWords(a)
		status := g.mem.Status(a)
		site := placement.SiteFromStatus(status)
		age := vm.StatusAge(status) + 1
		var dst vm.Addr
		var ok bool
		promoted := false
		place := func(r **region, kind regionKind) bool {
			if *r != nil {
				if d, fits := g.bump(*r, size); fits {
					dst, ok = d, true
					return true
				}
			}
			nr := g.takeFree(kind)
			if nr == nil {
				return false
			}
			*r = nr
			if d, fits := g.bump(nr, size); fits {
				dst, ok = d, true
				return true
			}
			return false
		}
		if g.policy.Promote(site, age, g.cfg.TenureAge) {
			promoted = place(&curOld, regOld)
		}
		if !ok {
			place(&curSurv, regSurvivor)
		}
		if !ok {
			promoted = place(&curOld, regOld)
		}
		if !ok {
			// The reserve invariant makes this unreachable.
			panic(fmt.Sprintf("g1: evacuation failure for %v (%d words)", a, size))
		}
		g.mem.CopyObject(dst, a, size)
		g.mem.SetAge(dst, age)
		g.mem.SetForwardee(a, dst)
		if promoted {
			bytesPromoted += int64(size) * vm.WordSize
			g.noteObjStart(dst)
		} else {
			bytesCopied += int64(size) * vm.WordSize
		}
		worklist = append(worklist, dst)
		g.policy.NoteScavenge(site, age, promoted)
		return dst
	}

	// Roots 1: handles (H2-resident targets are fenced: they are in no
	// collection-set region).
	g.roots.ForEach(func(h *vm.Handle) {
		if a := h.Addr(); !a.IsNull() && inCS(a) {
			h.Set(evac(a))
		}
	})

	// Roots 2: backward references from the second heap.
	g.th.ScanBackwardRefs(false, func(_ uint64, t vm.Addr) vm.Addr {
		if inCS(t) {
			return evac(t)
		}
		return t
	}, g.inYoung)

	// Roots 3: dirty cards over old and humongous regions.
	for ci := range g.cards {
		cardsScanned++
		if g.cards[ci] == 0 {
			continue
		}
		g.cards[ci] = 0
		lo := g.cardsBase + vm.Addr(int64(ci)*int64(g.cfg.CardSize))
		hi := lo + vm.Addr(g.cfg.CardSize)
		var obj vm.Addr
		if g.startArr != nil {
			obj = g.startArr[ci]
		}
		anyYoung := false
		for !obj.IsNull() && obj < hi {
			r := g.regionOf(obj)
			if r == nil || obj >= r.top || (r.kind != regOld && r.kind != regHumongousStart) {
				break
			}
			if g.mem.Forwarded(obj) {
				// Husk of an object moved to H2; shape is preserved.
				obj += vm.Addr(int(uint32(g.mem.Shape(obj))) * vm.WordSize)
				continue
			}
			cardObjects++
			n := g.mem.NumRefs(obj)
			for f := 0; f < n; f++ {
				t := g.mem.RefAt(obj, f)
				refsScanned++
				if !t.IsNull() && inCS(t) {
					nt := evac(t)
					g.mem.SetRefAt(obj, f, nt)
					if g.inYoung(nt) {
						anyYoung = true
					}
				}
			}
			obj += vm.Addr(g.mem.SizeWords(obj) * vm.WordSize)
		}
		if anyYoung {
			g.cards[ci] = 1
		}
	}

	// Transitive copy. Refs into H2 are naturally outside every CS
	// region, so the scan is already fenced from the second heap.
	for len(worklist) > 0 {
		dst := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		n := g.mem.NumRefs(dst)
		anyYoung := false
		for i := 0; i < n; i++ {
			t := g.mem.RefAt(dst, i)
			refsScanned++
			if t.IsNull() || !inCS(t) {
				continue
			}
			nt := evac(t)
			g.mem.SetRefAt(dst, i, nt)
			if g.inYoung(nt) {
				anyYoung = true
			}
		}
		if anyYoung {
			if r := g.regionOf(dst); r != nil && r.kind == regOld {
				g.markCard(dst)
			}
		}
	}

	// Free the collection set.
	for _, id := range oldEden {
		g.releaseRegion(g.regions[id])
	}
	for _, id := range oldSurvivor {
		g.releaseRegion(g.regions[id])
	}

	cpu := time.Duration(bytesCopied+bytesPromoted)*g.cfg.Costs.CopyPerByte +
		time.Duration(refsScanned)*g.cfg.Costs.ScanPerRef +
		time.Duration(cardsScanned)*g.cfg.Costs.PerCard +
		time.Duration(cardObjects)*g.cfg.Costs.PerCardObject
	g.chargeGC(simclock.MinorGC, cpu)
	g.clock.Charge(simclock.MinorGC, g.cfg.Costs.PausePerGC)

	delta := g.clock.Breakdown().Sub(before)
	g.stats.Cycles = append(g.stats.Cycles, gc.Cycle{
		Kind: gc.Minor, At: g.clock.Now(), Duration: delta.Get(simclock.MinorGC),
		BytesCopied: bytesCopied, BytesPromoted: bytesPromoted,
		OldOccupancyAfter: g.oldOccupancy(), CardsScanned: cardsScanned,
	})
	g.stats.MinorCount++
	g.stats.MinorTime += delta.Get(simclock.MinorGC)
	if debugG1 && g.stats.MinorCount%2000 == 0 {
		println("g1 debug: minors", g.stats.MinorCount, "majors", g.stats.MajorCount,
			"free", len(g.free), "old", len(g.old), "eden", len(g.eden), "hum", len(g.hum))
	}
	g.hooks.AfterGC(gc.PhaseMinor)
	return nil
}

// oldOccupancy returns the fraction of heap regions holding old or
// humongous data.
func (g *G1) oldOccupancy() float64 {
	used := 0
	for _, r := range g.regions {
		switch r.kind {
		case regOld, regHumongousStart, regHumongousCont:
			used++
		}
	}
	return float64(used) / float64(len(g.regions))
}
