package g1

import (
	"sort"
	"time"

	"github.com/carv-repro/teraheap-go/internal/gc"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// fullGC is G1's expensive fallback: a stop-the-world mark-compact over
// every non-humongous region. Live objects (young and old alike) are
// packed into the lowest-id regions, never spanning region boundaries and
// skipping humongous runs, which stay in place — that immobility is the
// fragmentation the paper's G1 OOMs stem from.
func (g *G1) fullGC() error {
	if g.oom != nil {
		return g.oom
	}
	g.hooks.BeforeGC(gc.PhaseMajor)
	prev := g.clock.SetContext(simclock.MajorGC)
	defer g.clock.SetContext(prev)
	before := g.clock.Breakdown()
	usedBefore := g.usedBytes()

	g.th.BeginMajorMark(g.usedBytes(), g.cfg.H1Size)
	objects, refs := g.markAll()

	// Reclaim dead humongous runs first (more contiguous space).
	for _, id := range append([]int(nil), g.hum...) {
		if r := g.regions[id]; r.liveBytes == 0 {
			g.freeHumongous(r)
		}
	}

	// Collect live non-humongous objects in ascending address order,
	// skipping the husks of objects already moved to H2.
	var src []vm.Addr
	for _, r := range g.regions {
		switch r.kind {
		case regEden, regSurvivor, regOld:
			for a := r.start; a < r.top; {
				if g.mem.Forwarded(a) {
					a += vm.Addr(int(uint32(g.mem.Shape(a))) * vm.WordSize)
					continue
				}
				size := g.mem.SizeWords(a)
				if g.mem.Marked(a) {
					src = append(src, a)
				}
				a += vm.Addr(size * vm.WordSize)
			}
		}
	}

	// Assign destinations: pack ascending, skipping humongous regions and
	// region boundaries (objects never span regions).
	dst := make([]vm.Addr, len(src))
	ri := 0 // destination region index
	var cur vm.Addr
	advance := func() bool {
		for ri < len(g.regions) {
			k := g.regions[ri].kind
			if k != regHumongousStart && k != regHumongousCont {
				cur = g.regions[ri].start
				return true
			}
			ri++
		}
		return false
	}
	if !advance() {
		return g.latchOOM(&gc.OOMError{Requested: 0, Where: "g1 full GC (no packable region)"})
	}
	var packedBytes int64
	// packTop records each destination region's true allocation top:
	// packing skips a region's tail when the next object does not fit, so
	// "full to the brim" would leave unwalkable gaps.
	packTop := make(map[int]vm.Addr)
	for i, a := range src {
		size := vm.Addr(g.mem.SizeWords(a) * vm.WordSize)
		for cur+size > g.regions[ri].end {
			ri++
			if !advance() {
				return g.latchOOM(&gc.OOMError{Requested: int64(size), Where: "g1 full GC compaction"})
			}
		}
		dst[i] = cur
		cur += size
		packTop[ri] = cur
		packedBytes += int64(size)
	}
	lastUsedRegion := ri

	// Adjust references (live objects, humongous objects, roots).
	adjust := func(t vm.Addr) vm.Addr {
		i := sort.Search(len(src), func(i int) bool { return src[i] >= t })
		if i < len(src) && src[i] == t {
			return dst[i]
		}
		return t // humongous or dangling (dangling would be a bug)
	}
	var adjRefs int64
	fixObj := func(a vm.Addr) {
		n := g.mem.NumRefs(a)
		for i := 0; i < n; i++ {
			if t := g.mem.RefAt(a, i); !t.IsNull() {
				adjRefs++
				g.mem.SetRefAt(a, i, adjust(t))
			}
		}
	}
	for _, a := range src {
		fixObj(a)
	}
	for _, id := range g.hum {
		r := g.regions[id]
		if r.top > r.start {
			fixObj(r.start)
		}
	}
	g.roots.ForEach(func(h *vm.Handle) {
		if a := h.Addr(); !a.IsNull() && !g.th.Contains(a) {
			h.Set(adjust(a))
		}
	})
	// H2 backward references follow the packed objects.
	g.th.ScanBackwardRefs(true, func(_ uint64, t vm.Addr) vm.Addr {
		return adjust(t)
	}, func(vm.Addr) bool { return false })

	// Move (ascending: dst_i <= src_i, so sliding never clobbers).
	for i, a := range src {
		size := g.mem.SizeWords(a)
		if dst[i] != a {
			g.mem.CopyObject(dst[i], a, size)
		}
		g.mem.SetMarked(dst[i], false)
	}
	for _, id := range g.hum {
		r := g.regions[id]
		if r.top > r.start && g.mem.Marked(r.start) {
			g.mem.SetMarked(r.start, false)
		}
	}

	// Rebuild region bookkeeping.
	g.eden, g.survivor, g.old, g.free = nil, nil, nil, nil
	g.curEden = nil
	for i := range g.cards {
		g.cards[i] = 0
		if g.startArr != nil {
			g.startArr[i] = vm.NullAddr
		}
	}
	for _, r := range g.regions {
		switch r.kind {
		case regHumongousStart:
			g.noteObjStart(r.start)
			continue
		case regHumongousCont:
			continue
		}
		if top, used := packTop[r.id]; used && r.id <= lastUsedRegion {
			r.kind = regOld
			r.top = top
			g.old = append(g.old, r.id)
		} else {
			r.kind = regFree
			r.top = r.start
			g.free = append(g.free, r.id)
		}
		r.liveBytes = 0
	}
	sort.Ints(g.free)
	// Restore object-start info for packed regions.
	for i := range src {
		g.noteObjStart(dst[i])
	}

	// Full GC is single-threaded and expensive.
	cpu := time.Duration(objects)*g.cfg.Costs.MarkPerObject +
		time.Duration(refs+adjRefs)*g.cfg.Costs.ScanPerRef +
		time.Duration(packedBytes)*g.cfg.Costs.CopyPerByte
	g.clock.Charge(simclock.MajorGC, cpu)
	g.clock.Charge(simclock.MajorGC, g.cfg.Costs.PausePerGC)

	delta := g.clock.Breakdown().Sub(before)
	g.th.FinishMajor(g.usedBytes(), g.cfg.H1Size)
	g.stats.Cycles = append(g.stats.Cycles, gc.Cycle{
		Kind: gc.Major, At: g.clock.Now(), Duration: delta.Get(simclock.MajorGC),
		BytesCopied: packedBytes, ReclaimedBytes: usedBefore - g.usedBytes(),
		OldOccupancyAfter: g.oldOccupancy(),
	})
	g.stats.MajorCount++
	g.stats.MajorTime += delta.Get(simclock.MajorGC)
	g.hooks.AfterGC(gc.PhaseMajor)
	return nil
}

// usedBytes sums allocated bytes across all regions.
func (g *G1) usedBytes() int64 {
	var t int64
	for _, r := range g.regions {
		if r.kind == regHumongousStart {
			// The whole run is reserved.
			t += int64(r.humRegions) * g.cfg.RegionSize
		} else if r.kind != regHumongousCont {
			t += r.used()
		}
	}
	return t
}
