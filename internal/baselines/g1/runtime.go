package g1

import (
	"github.com/carv-repro/teraheap-go/internal/gc"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// G1 implements rt.Runtime; the assertion lives in runtime_iface_test.go
// (external test package) because rt's Session factory imports this
// package, so asserting here would be an import cycle.

// Classes returns the class table.
func (g *G1) Classes() *vm.ClassTable { return g.classes }

// Mem returns the object accessors.
func (g *G1) Mem() *vm.Mem { return g.mem }

// Clock returns the simulation clock.
func (g *G1) Clock() *simclock.Clock { return g.clock }

// Alloc allocates a fixed-layout instance.
func (g *G1) Alloc(c *vm.Class) (vm.Addr, error) {
	return g.allocObject(c, c.NumRefs, c.InstanceWords())
}

// AllocRefArray allocates a reference array.
func (g *G1) AllocRefArray(c *vm.Class, n int) (vm.Addr, error) {
	return g.allocObject(c, n, vm.HeaderWords+n)
}

// AllocPrimArray allocates a primitive array.
func (g *G1) AllocPrimArray(c *vm.Class, n int) (vm.Addr, error) {
	return g.allocObject(c, 0, vm.HeaderWords+n)
}

// AllocCold is a plain allocation on G1 (no pretenuring).
func (g *G1) AllocCold(c *vm.Class) (vm.Addr, error) { return g.Alloc(c) }

// AllocColdRefArray is a plain reference-array allocation.
func (g *G1) AllocColdRefArray(c *vm.Class, n int) (vm.Addr, error) {
	return g.AllocRefArray(c, n)
}

// AllocColdPrimArray is a plain primitive-array allocation.
func (g *G1) AllocColdPrimArray(c *vm.Class, n int) (vm.Addr, error) {
	return g.AllocPrimArray(c, n)
}

func (g *G1) allocObject(c *vm.Class, numRefs, sizeWords int) (vm.Addr, error) {
	a, err := g.allocWords(sizeWords)
	if err != nil {
		return vm.NullAddr, err
	}
	g.mem.InitObject(a, c, numRefs, sizeWords)
	g.stats.BytesAllocated += int64(sizeWords) * vm.WordSize
	g.stats.ObjectsAllocated++
	return a, nil
}

// WriteRef stores a reference with G1's post-write barrier, extended with
// the H2 reference range check when a second heap is attached.
func (g *G1) WriteRef(obj vm.Addr, field int, val vm.Addr) {
	g.clock.Charge(simclock.Other, g.cfg.Costs.BarrierCost)
	g.stats.BarrierExecutions++
	if g.th.Contains(obj) {
		g.mem.SetRefAt(obj, field, val)
		g.th.DirtyCard(obj)
		return
	}
	g.mem.SetRefAt(obj, field, val)
	if val.IsNull() {
		return
	}
	if r := g.regionOf(obj); r != nil && (r.kind == regOld || r.kind == regHumongousStart) {
		g.markCard(obj)
	}
}

// ReadRef loads a reference field.
func (g *G1) ReadRef(obj vm.Addr, field int) vm.Addr { return g.mem.RefAt(obj, field) }

// WritePrim stores a primitive word.
func (g *G1) WritePrim(obj vm.Addr, i int, v uint64) { g.mem.SetPrimAt(obj, i, v) }

// ReadPrim loads a primitive word.
func (g *G1) ReadPrim(obj vm.Addr, i int) uint64 { return g.mem.PrimAt(obj, i) }

// NewHandle roots a handle.
func (g *G1) NewHandle(a vm.Addr) *vm.Handle { return g.roots.Create(a) }

// Release unroots a handle.
func (g *G1) Release(h *vm.Handle) { g.roots.Release(h) }

// TagRoot applies h2_tag_root when a TeraHeap is attached.
func (g *G1) TagRoot(h *vm.Handle, label uint64) {
	if tagger, ok := g.th.(interface {
		TagRoot(*vm.Handle, uint64)
	}); ok {
		tagger.TagRoot(h, label)
	}
}

// MoveHint applies h2_move when a TeraHeap is attached.
func (g *G1) MoveHint(label uint64) {
	if mover, ok := g.th.(interface{ Move(uint64) }); ok {
		mover.Move(label)
	}
}

// InSecondHeap reports whether a resides in the attached second heap.
func (g *G1) InSecondHeap(a vm.Addr) bool { return g.th.Contains(a) }

// HeapUsed returns used and capacity bytes.
func (g *G1) HeapUsed() (int64, int64) { return g.usedBytes(), g.cfg.H1Size }

// FullGC forces a full collection.
func (g *G1) FullGC() error { return g.fullGC() }

// OOM returns the latched out-of-memory error.
func (g *G1) OOM() error {
	if g.oom != nil {
		return g.oom
	}
	return nil
}

// GCStats returns collector statistics.
func (g *G1) GCStats() *gc.Stats { return &g.stats }

// Breakdown snapshots the execution-time breakdown.
func (g *G1) Breakdown() simclock.Breakdown { return g.clock.Breakdown() }
