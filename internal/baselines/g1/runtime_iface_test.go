package g1_test

import (
	"github.com/carv-repro/teraheap-go/internal/baselines/g1"
	"github.com/carv-repro/teraheap-go/internal/rt"
)

// G1 must satisfy the full runtime surface (including the lifecycle-hook
// plane accessors) so the rt.Session factory can hand it out as an
// rt.Runtime. The assertion is external because rt imports this package.
var _ rt.Runtime = (*g1.G1)(nil)
