package g1_test

import (
	"testing"

	"github.com/carv-repro/teraheap-go/internal/baselines/g1"
	"github.com/carv-repro/teraheap-go/internal/gc"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

type env struct {
	g    *g1.G1
	node *vm.Class
	arr  *vm.Class
	parr *vm.Class
}

func newEnv(t *testing.T, h1Size int64) *env {
	t.Helper()
	classes := vm.NewClassTable()
	e := &env{
		node: classes.MustFixed("Node", 2, 1),
		arr:  classes.MustRefArray("Object[]"),
		parr: classes.MustPrimArray("long[]"),
	}
	e.g = g1.New(g1.DefaultConfig(h1Size), classes, simclock.New())
	return e
}

func (e *env) node3(t *testing.T, left, right vm.Addr, v uint64) vm.Addr {
	t.Helper()
	a, err := e.g.Alloc(e.node)
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	e.g.WriteRef(a, 0, left)
	e.g.WriteRef(a, 1, right)
	e.g.WritePrim(a, 0, v)
	return a
}

func (e *env) list(t *testing.T, n int) *vm.Handle {
	t.Helper()
	h := e.g.NewHandle(vm.NullAddr)
	for i := n - 1; i >= 0; i-- {
		// Allocate first, then read the handle: the allocation may trigger
		// a GC, and a raw address captured before it would be stale.
		a := e.node3(t, vm.NullAddr, vm.NullAddr, uint64(i))
		e.g.WriteRef(a, 0, h.Addr())
		h.Set(a)
	}
	return h
}

func (e *env) check(t *testing.T, h *vm.Handle, n int) {
	t.Helper()
	a := h.Addr()
	for i := 0; i < n; i++ {
		if a.IsNull() {
			t.Fatalf("list truncated at %d", i)
		}
		if v := e.g.ReadPrim(a, 0); v != uint64(i) {
			t.Fatalf("node %d = %d", i, v)
		}
		a = e.g.ReadRef(a, 0)
	}
}

func TestG1SurvivesYoungCollections(t *testing.T) {
	e := newEnv(t, 1<<20)
	h := e.list(t, 100)
	// Churn garbage to force several young GCs.
	for i := 0; i < 20; i++ {
		g := e.list(t, 500)
		e.g.Release(g)
	}
	if e.g.GCStats().MinorCount == 0 {
		t.Fatal("no young GCs ran")
	}
	e.check(t, h, 100)
}

func TestG1FullGCPreservesGraph(t *testing.T) {
	e := newEnv(t, 1<<20)
	h := e.list(t, 200)
	g := e.list(t, 1000)
	e.g.Release(g)
	if err := e.g.FullGC(); err != nil {
		t.Fatalf("full GC: %v", err)
	}
	e.check(t, h, 200)
}

func TestG1MixedCollectionsReclaim(t *testing.T) {
	e := newEnv(t, 1<<21)
	// Small young target → frequent young GCs → fast tenuring into old
	// regions, driving occupancy past the IHOP.
	cfg := g1.DefaultConfig(1 << 21)
	cfg.YoungTarget = 8
	cfg.IHOP = 0.25
	classes := vm.NewClassTable()
	e.node = classes.MustFixed("Node", 2, 1)
	e.arr = classes.MustRefArray("Object[]")
	e.parr = classes.MustPrimArray("long[]")
	e.g = g1.New(cfg, classes, simclock.New())
	h := e.list(t, 100)
	// Create long-lived garbage in old regions: tenure lists, then drop.
	var dead []*vm.Handle
	for i := 0; i < 32; i++ {
		dead = append(dead, e.list(t, 800))
		// Churn to age them into old regions.
		for j := 0; j < 4; j++ {
			tmp := e.list(t, 400)
			e.g.Release(tmp)
		}
	}
	for _, d := range dead {
		e.g.Release(d)
	}
	// Keep allocating: IHOP-triggered marking + mixed GCs reclaim.
	for i := 0; i < 30; i++ {
		tmp := e.list(t, 800)
		e.g.Release(tmp)
	}
	if e.g.OOM() != nil {
		t.Fatalf("unexpected OOM: %v", e.g.OOM())
	}
	e.check(t, h, 100)
	if e.g.GCStats().MajorCount == 0 {
		t.Fatal("no marking/mixed cycles ran")
	}
}

func TestG1HumongousAllocAndReclaim(t *testing.T) {
	e := newEnv(t, 1<<21) // region size 8KB → humongous > 4KB
	cfg := g1.DefaultConfig(1 << 21)
	humWords := int(cfg.RegionSize) // definitely humongous
	a, err := e.g.AllocPrimArray(e.parr, humWords)
	if err != nil {
		t.Fatalf("humongous alloc: %v", err)
	}
	h := e.g.NewHandle(a)
	e.g.WritePrim(a, 0, 99)
	e.g.WritePrim(a, humWords-1, 77)
	// Survive a full GC in place.
	if err := e.g.FullGC(); err != nil {
		t.Fatal(err)
	}
	if h.Addr() != a {
		t.Fatalf("humongous object moved: %v -> %v", a, h.Addr())
	}
	if e.g.ReadPrim(a, 0) != 99 || e.g.ReadPrim(a, humWords-1) != 77 {
		t.Fatal("humongous contents corrupted")
	}
	// Release and confirm the space comes back.
	used1, _ := e.g.HeapUsed()
	e.g.Release(h)
	if err := e.g.FullGC(); err != nil {
		t.Fatal(err)
	}
	used2, _ := e.g.HeapUsed()
	if used2 >= used1 {
		t.Fatalf("humongous run not reclaimed: %d -> %d", used1, used2)
	}
}

func TestG1HumongousFragmentationOOM(t *testing.T) {
	e := newEnv(t, 1<<20) // 128 regions of 8KB (wait: 1MB/256=4KB regions)
	cfg := g1.DefaultConfig(1 << 20)
	humWords := int(cfg.RegionSize/vm.WordSize) * 3 / 4 // ~0.75 region each
	var held []*vm.Handle
	var sawOOM bool
	for i := 0; i < 4096; i++ {
		a, err := e.g.AllocPrimArray(e.parr, humWords)
		if err != nil {
			if _, ok := err.(*gc.OOMError); !ok {
				t.Fatalf("unexpected error type %T", err)
			}
			sawOOM = true
			break
		}
		held = append(held, e.g.NewHandle(a))
	}
	if !sawOOM {
		t.Fatal("expected humongous fragmentation OOM")
	}
	// Each humongous object wasted ~25% of its region: held objects must
	// number fewer than perfect packing would allow.
	if len(held) == 0 {
		t.Fatal("no humongous allocations succeeded")
	}
}

func TestG1SharedStructure(t *testing.T) {
	e := newEnv(t, 1<<20)
	// Root every node while allocating: each allocation may move the others.
	hs := e.g.NewHandle(e.node3(t, vm.NullAddr, vm.NullAddr, 5))
	ha := e.g.NewHandle(e.node3(t, vm.NullAddr, vm.NullAddr, 1))
	hb := e.g.NewHandle(e.node3(t, vm.NullAddr, vm.NullAddr, 2))
	e.g.WriteRef(ha.Addr(), 0, hs.Addr())
	e.g.WriteRef(hb.Addr(), 0, hs.Addr())
	e.g.Release(hs)
	for i := 0; i < 10; i++ {
		tmp := e.list(t, 400)
		e.g.Release(tmp)
	}
	if err := e.g.FullGC(); err != nil {
		t.Fatal(err)
	}
	sa, sb := e.g.ReadRef(ha.Addr(), 0), e.g.ReadRef(hb.Addr(), 0)
	if sa != sb {
		t.Fatalf("shared object duplicated: %v vs %v", sa, sb)
	}
	if e.g.ReadPrim(sa, 0) != 5 {
		t.Fatal("shared value corrupted")
	}
}

func TestG1CardTableOldToYoung(t *testing.T) {
	e := newEnv(t, 1<<20)
	h := e.list(t, 1)
	// Tenure the node.
	for i := 0; i < 8; i++ {
		tmp := e.list(t, 400)
		e.g.Release(tmp)
	}
	// Allocate the young node before reading the old node's address: the
	// allocation may move the (not yet tenured) holder.
	hy := e.g.NewHandle(e.node3(t, vm.NullAddr, vm.NullAddr, 321))
	e.g.WriteRef(h.Addr(), 1, hy.Addr())
	e.g.Release(hy) // now kept alive only by the old-to-young edge
	// Force young GCs via churn.
	for i := 0; i < 8; i++ {
		tmp := e.list(t, 400)
		e.g.Release(tmp)
	}
	got := e.g.ReadRef(h.Addr(), 1)
	if got.IsNull() {
		t.Fatal("young target lost")
	}
	if v := e.g.ReadPrim(got, 0); v != 321 {
		t.Fatalf("young target = %d", v)
	}
}
