package giraph

import "math"

// Program is a vertex program in the Pregel/Giraph model: Init sets the
// initial vertex value and activity; Compute consumes incoming messages,
// produces the new value, and decides whether (and what) to send to the
// out-neighbours this superstep.
type Program interface {
	Name() string
	MaxSupersteps() int
	Init(v, degree, n int) (value float64, active bool)
	Compute(superstep, v int, value float64, msgs []float64, degree int) (newValue float64, send bool, msgVal float64)
}

// EdgeWeightUser marks programs whose messages add the traversed edge's
// weight (SSSP): the engine reads the weight from the edge entry and adds
// it to the program's base message value.
type EdgeWeightUser interface {
	UseEdgeWeights()
}

// Combiner collapses the messages bound for one vertex into a single
// combined value, as Giraph message combiners do (sum for PageRank, min
// for the distance/label propagations). Programs with a combiner use a
// dense combined message store: one slot per vertex.
type Combiner interface {
	// CombineIdentity is the neutral element; a slot still holding it
	// received no message.
	CombineIdentity() float64
	// Combine merges a new message into the accumulated value.
	Combine(acc, msg float64) float64
}

// PageRank is the Graphalytics PR workload: fixed-iteration PageRank.
type PageRank struct {
	Iterations int
	N          int
}

// Name implements Program.
func (p *PageRank) Name() string { return "PR" }

// MaxSupersteps implements Program.
func (p *PageRank) MaxSupersteps() int { return p.Iterations }

// Init implements Program.
func (p *PageRank) Init(v, degree, n int) (float64, bool) {
	return 1.0 / float64(n), true
}

// Compute implements Program.
func (p *PageRank) Compute(s, v int, value float64, msgs []float64, degree int) (float64, bool, float64) {
	nv := value
	if s > 0 {
		var sum float64
		for _, m := range msgs {
			sum += m
		}
		nv = 0.15/float64(p.N) + 0.85*sum
	}
	if degree == 0 {
		return nv, false, 0
	}
	return nv, s < p.Iterations-1, nv / float64(degree)
}

// CDLP is community detection by label propagation: each vertex adopts
// the most frequent label among its incoming messages.
type CDLP struct {
	Iterations int
}

// Name implements Program.
func (c *CDLP) Name() string { return "CDLP" }

// MaxSupersteps implements Program.
func (c *CDLP) MaxSupersteps() int { return c.Iterations }

// Init implements Program.
func (c *CDLP) Init(v, degree, n int) (float64, bool) { return float64(v), true }

// Compute implements Program.
func (c *CDLP) Compute(s, v int, value float64, msgs []float64, degree int) (float64, bool, float64) {
	nv := value
	if s > 0 && len(msgs) > 0 {
		counts := make(map[float64]int, len(msgs))
		best, bestN := value, 0
		for _, m := range msgs {
			counts[m]++
			if n := counts[m]; n > bestN || (n == bestN && m < best) {
				best, bestN = m, n
			}
		}
		nv = best
	}
	return nv, s < c.Iterations-1, nv
}

// WCC computes weakly connected components by min-label propagation.
type WCC struct {
	MaxIters int
}

// Name implements Program.
func (w *WCC) Name() string { return "WCC" }

// MaxSupersteps implements Program.
func (w *WCC) MaxSupersteps() int { return w.MaxIters }

// Init implements Program.
func (w *WCC) Init(v, degree, n int) (float64, bool) { return float64(v), true }

// Compute implements Program.
func (w *WCC) Compute(s, v int, value float64, msgs []float64, degree int) (float64, bool, float64) {
	nv := value
	for _, m := range msgs {
		if m < nv {
			nv = m
		}
	}
	changed := nv != value || s == 0
	return nv, changed, nv
}

// BFS computes hop distances from a source vertex.
type BFS struct {
	Source   int
	MaxIters int
}

// Name implements Program.
func (b *BFS) Name() string { return "BFS" }

// MaxSupersteps implements Program.
func (b *BFS) MaxSupersteps() int { return b.MaxIters }

// Init implements Program.
func (b *BFS) Init(v, degree, n int) (float64, bool) {
	if v == b.Source {
		return 0, true
	}
	return math.Inf(1), false
}

// Compute implements Program.
func (b *BFS) Compute(s, v int, value float64, msgs []float64, degree int) (float64, bool, float64) {
	nv := value
	for _, m := range msgs {
		if m < nv {
			nv = m
		}
	}
	improved := nv < value || (s == 0 && v == b.Source)
	return nv, improved, nv + 1
}

// SSSP computes shortest paths with per-vertex deterministic edge weights
// (the message carries dist + w(v)).
type SSSP struct {
	Source   int
	MaxIters int
}

// Name implements Program.
func (p *SSSP) Name() string { return "SSSP" }

// MaxSupersteps implements Program.
func (p *SSSP) MaxSupersteps() int { return p.MaxIters }

// Init implements Program.
func (p *SSSP) Init(v, degree, n int) (float64, bool) {
	if v == p.Source {
		return 0, true
	}
	return math.Inf(1), false
}

// Compute implements Program. The engine adds the per-edge weight to the
// base message value (UseEdgeWeights).
func (p *SSSP) Compute(s, v int, value float64, msgs []float64, degree int) (float64, bool, float64) {
	nv := value
	for _, m := range msgs {
		if m < nv {
			nv = m
		}
	}
	improved := nv < value || (s == 0 && v == p.Source)
	return nv, improved, nv
}

// UseEdgeWeights marks SSSP as edge-weighted.
func (p *SSSP) UseEdgeWeights() {}

// CombineIdentity implements Combiner (sum).
func (p *PageRank) CombineIdentity() float64 { return 0 }

// Combine implements Combiner (sum).
func (p *PageRank) Combine(acc, msg float64) float64 { return acc + msg }

// CombineIdentity implements Combiner (min).
func (w *WCC) CombineIdentity() float64 { return math.Inf(1) }

// Combine implements Combiner (min).
func (w *WCC) Combine(acc, msg float64) float64 { return math.Min(acc, msg) }

// CombineIdentity implements Combiner (min).
func (b *BFS) CombineIdentity() float64 { return math.Inf(1) }

// Combine implements Combiner (min).
func (b *BFS) Combine(acc, msg float64) float64 { return math.Min(acc, msg) }

// CombineIdentity implements Combiner (min).
func (p *SSSP) CombineIdentity() float64 { return math.Inf(1) }

// Combine implements Combiner (min).
func (p *SSSP) Combine(acc, msg float64) float64 { return math.Min(acc, msg) }
