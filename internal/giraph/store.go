package giraph

import (
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// store is one offloadable object group: a partition's out-edge arrays or
// one of its message stores.
type store struct {
	dense   bool
	h       *vm.Handle
	objects int64
	words   int64

	offloaded bool
	blob      storage.BlobID
	rebuild   func() error
	lastUse   int64

	err error
}

// oocScheduler is Giraph's out-of-core scheduler: it monitors heap
// pressure after processing each partition and offloads the least
// recently used stores to the device (§5).
type oocScheduler struct {
	e     *Engine
	dev   *storage.Device
	blobs *storage.ByteStore
	tick  int64
}

func newOOCScheduler(e *Engine, dev *storage.Device, cacheBytes int64) *oocScheduler {
	// tick starts at 1 so untouched stores (lastUse 0) are immediately
	// eligible victims during graph loading.
	return &oocScheduler{e: e, dev: dev, blobs: storage.NewByteStore(dev, cacheBytes), tick: 1}
}

// touch marks a store recently used.
func (o *oocScheduler) touch(st *store) {
	o.tick++
	st.lastUse = o.tick
}

// heapPressure returns used/capacity of H1.
func (o *oocScheduler) heapPressure() float64 {
	used, capacity := o.e.RT.HeapUsed()
	if capacity == 0 {
		return 0
	}
	return float64(used) / float64(capacity)
}

// maybeOffload serializes LRU stores to the device while heap usage
// exceeds the high-water mark.
func (o *oocScheduler) maybeOffload() {
	for o.heapPressure() > o.e.Conf.OOCHighWater {
		victim := o.pickVictim()
		if victim == nil {
			return
		}
		if err := o.offload(victim); err != nil {
			return
		}
	}
}

// pickVictim returns the least recently used resident store.
func (o *oocScheduler) pickVictim() *store {
	var victim *store
	for _, pt := range o.e.partitions {
		for _, st := range []*store{pt.edges, pt.inMsgs} {
			if st == nil || st.offloaded || st.h == nil || st.rebuild == nil {
				continue
			}
			if st.words < 64 {
				continue // not worth the I/O
			}
			if st.lastUse == o.tick {
				continue // in use by the current wave
			}
			if victim == nil || st.lastUse < victim.lastUse {
				victim = st
			}
		}
	}
	return victim
}

// offload serializes st to the device and releases its heap copy.
func (o *oocScheduler) offload(st *store) error {
	clock := o.e.RT.Clock()
	prev := clock.SetContext(simclock.SerDesIO)
	defer clock.SetContext(prev)
	sz, err := o.e.Ser.Serialize(st.h.Addr())
	if err != nil {
		return err
	}
	st.blob = o.blobs.Put(sz)
	o.e.RT.Release(st.h)
	st.h = nil
	st.offloaded = true
	o.e.Stats.OOCOffloads++
	// A full GC is not forced; the next natural collection reclaims the
	// released objects.
	return nil
}

// reload brings an offloaded store back on heap: device read,
// deserialization charges, and graph reconstruction.
func (o *oocScheduler) reload(st *store) error {
	clock := o.e.RT.Clock()
	prev := clock.SetContext(simclock.SerDesIO)
	defer clock.SetContext(prev)
	o.blobs.Get(st.blob)
	if err := o.e.Ser.ChargeDeserialize(st.objects, st.words); err != nil {
		return err
	}
	if err := st.rebuild(); err != nil {
		return err
	}
	o.blobs.Delete(st.blob)
	st.offloaded = false
	o.e.Stats.OOCReloads++
	o.touch(st)
	return nil
}

// forget drops any device copy of st.
func (o *oocScheduler) forget(st *store) {
	if st.offloaded {
		o.blobs.Delete(st.blob)
		st.offloaded = false
	}
}
