// Package giraph simulates the Apache Giraph BSP engine the paper's second
// half evaluates (§5, Fig 5): vertex-centric supersteps with a partition
// store, incoming/current message stores, an out-of-core (OOC) scheduler
// that offloads partitions under memory pressure (Giraph-OOC), and the
// TeraHeap mode that tags out-edge maps at the input superstep and message
// stores per superstep.
package giraph

import (
	"fmt"
	"math"
	"time"

	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/serde"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
	"github.com/carv-repro/teraheap-go/internal/workloads"
)

// Mode selects the Giraph memory configuration.
type Mode int

// Giraph configurations (Table 2).
const (
	// ModeOOC is Giraph-OOC: heap in DRAM, partitions offloaded to the
	// device under pressure via the out-of-core scheduler.
	ModeOOC Mode = iota
	// ModeTH is Giraph over TeraHeap.
	ModeTH
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeOOC {
		return "giraph-ooc"
	}
	return "teraheap"
}

// Conf configures an engine.
type Conf struct {
	RT      rt.Runtime
	Mode    Mode
	Threads int

	// OOCDev backs offloaded partition data in ModeOOC.
	OOCDev *storage.Device
	// OOCCacheBytes is the page-cache share for offloaded data.
	OOCCacheBytes int64
	// OOCHighWater is the H1 usage fraction that triggers offloading.
	OOCHighWater float64

	ComputePerElem time.Duration
}

// Engine runs BSP computations over a partitioned graph.
type Engine struct {
	Conf  Conf
	RT    rt.Runtime
	Ser   *serde.Serializer
	Graph *workloads.Graph
	Parts int

	clsPart *vm.Class // ref array
	clsData *vm.Class // prim array

	partitions []*partition
	ooc        *oocScheduler

	superstep int
	comb      Combiner // non-nil when the program has a message combiner
	// Label space: input-superstep edges use label 1; the message store of
	// superstep s uses label msgLabelBase+s.
	Stats EngineStats
}

// EngineStats counts engine activity.
type EngineStats struct {
	Supersteps   int
	MessagesSent int64
	ActiveAtEnd  int
	OOCOffloads  int64
	OOCReloads   int64
}

const (
	edgesLabel   uint64 = 1
	msgLabelBase uint64 = 16
)

// partition holds one graph partition's stores.
type partition struct {
	id     int
	lo, hi int

	edges  *store // out-edge arrays; immutable after input superstep
	values *vm.Handle
	inMsgs *store // incoming messages (immutable)
	cur    *store // current messages (mutable this superstep)

	// Go-side mirrors for rebuild and verification.
	vals   []float64
	active []bool
	// curData mirrors the chunks materialized into cur this superstep
	// (uncombined programs): per source partition, pairs of (local target
	// index, message bits).
	curData [][]msgPair
	// curDense mirrors the dense combined store (programs with a
	// Combiner): one combined value per local vertex.
	curDense []float64
}

type msgPair struct {
	local int32
	val   float64
}

// packMsg packs a message into one heap word: local index in the high 32
// bits, the value as float32 bits in the low 32 — Giraph's compact
// serialized message representation (§5: messages are byte arrays).
func packMsg(local int32, val float64) uint64 {
	return uint64(uint32(local))<<32 | uint64(math.Float32bits(float32(val)))
}

func unpackMsg(w uint64) (int32, float64) {
	return int32(uint32(w >> 32)), float64(math.Float32frombits(uint32(w)))
}

// NewEngine partitions the graph and loads it (the input superstep):
// out-edge arrays are materialized on the heap and, in TeraHeap mode,
// tagged with the input-superstep label and move-advised at the end of
// loading (Fig 5 steps 1-2).
func NewEngine(conf Conf, g *workloads.Graph, parts int) (*Engine, error) {
	if conf.Threads <= 0 {
		conf.Threads = 8
	}
	if conf.ComputePerElem == 0 {
		conf.ComputePerElem = 60 * time.Nanosecond
	}
	if conf.OOCHighWater == 0 {
		// Relative to the whole heap; the old generation is 2/3 of it, so
		// offloading must start well before the heap looks full.
		conf.OOCHighWater = 0.50
	}
	classes := conf.RT.Classes()
	cls := func(name string, mk func() *vm.Class) *vm.Class {
		if c := classes.ByName(name); c != nil {
			return c
		}
		return mk()
	}
	e := &Engine{
		Conf:  conf,
		RT:    conf.RT,
		Graph: g,
		Parts: parts,
		clsPart: cls("giraph.Partition", func() *vm.Class {
			return classes.MustRefArray("giraph.Partition")
		}),
		clsData: cls("giraph.Data", func() *vm.Class {
			return classes.MustPrimArray("giraph.Data")
		}),
	}
	e.Ser = serde.New(conf.RT, serde.Kryo)
	e.Ser.Parallelism = conf.Threads
	if conf.Mode == ModeOOC {
		dev := conf.OOCDev
		if dev == nil {
			dev = storage.NewDevice(storage.NVMeSSD, conf.RT.Clock())
		}
		e.ooc = newOOCScheduler(e, dev, conf.OOCCacheBytes)
	}

	per := (g.N + parts - 1) / parts
	for p := 0; p < parts; p++ {
		lo := p * per
		hi := lo + per
		if hi > g.N {
			hi = g.N
		}
		pt := &partition{id: p, lo: lo, hi: hi}
		pt.vals = make([]float64, hi-lo)
		pt.active = make([]bool, hi-lo)
		e.partitions = append(e.partitions, pt)
	}

	// Input superstep: load edges and values. Fig 5 step 1: the out-edges
	// map is tagged as it is created — while still being filled — so
	// premature movement (no hint, high pressure) hits mutable data.
	for _, pt := range e.partitions {
		if err := e.buildEdges(pt); err != nil {
			return nil, err
		}
		va, err := e.RT.AllocPrimArray(e.clsData, pt.hi-pt.lo)
		if err != nil {
			return nil, err
		}
		pt.values = e.RT.NewHandle(va)
		pt.inMsgs = e.newEmptyStore()
		pt.cur = e.newEmptyStore()
		pt.curData = make([][]msgPair, parts)
		if e.ooc != nil {
			e.ooc.maybeOffload()
		}
	}
	if e.Conf.Mode == ModeTH {
		// Fig 5 step 2: at the end of the input superstep, advise moving
		// the (now immutable) edges to H2.
		e.RT.MoveHint(edgesLabel)
	}
	return e, nil
}

// buildEdges materializes partition pt's out-edge arrays, tagging the
// root at creation in TeraHeap mode (Fig 5 step 1).
func (e *Engine) buildEdges(pt *partition) error {
	st := &store{}
	st.rebuild = func() error { return e.materializeEdges(pt, st) }
	pt.edges = st
	return st.rebuild()
}

// materializeEdges (re)builds the out-edge arrays of pt into st. Each
// edge entry is two words — target vertex and edge weight — matching the
// Graphalytics datagen graphs, whose edges carry values.
func (e *Engine) materializeEdges(pt *partition, st *store) error {
	v := pt.hi - pt.lo
	root, err := e.RT.AllocRefArray(e.clsPart, v)
	if err != nil {
		return err
	}
	st.h = e.RT.NewHandle(root)
	st.objects = 1
	st.words = int64(vm.HeaderWords + v)
	if e.Conf.Mode == ModeTH {
		e.RT.TagRoot(st.h, edgesLabel)
	}
	for i := 0; i < v; i++ {
		edges := e.Graph.Adj[pt.lo+i]
		ea, err := e.RT.AllocPrimArray(e.clsData, 2*len(edges))
		if err != nil {
			e.RT.Release(st.h)
			st.h = nil
			return err
		}
		e.RT.WriteRef(st.h.Addr(), i, ea)
		for j, t := range edges {
			e.RT.WritePrim(ea, 2*j, uint64(t))
			e.RT.WritePrim(ea, 2*j+1, f2b(edgeWeight(pt.lo+i, int(t))))
		}
		st.objects++
		st.words += int64(vm.HeaderWords + 2*len(edges))
	}
	e.chargeElements(st.words / 2)
	return nil
}

// edgeWeight derives a deterministic weight for edge (u,v).
func edgeWeight(u, v int) float64 {
	return 1.0 + float64((u+v)%7)/7.0
}

// materializeMsgStore (re)builds a message store from mirrored chunk data.
func (e *Engine) materializeMsgStore(data [][]msgPair, st *store) error {
	root, err := e.RT.AllocRefArray(e.clsPart, e.Parts)
	if err != nil {
		return err
	}
	st.h = e.RT.NewHandle(root)
	st.objects = 1
	st.words = int64(vm.HeaderWords + e.Parts)
	for sp, pairs := range data {
		if len(pairs) == 0 {
			continue
		}
		chunk, err := e.RT.AllocPrimArray(e.clsData, len(pairs))
		if err != nil {
			e.RT.Release(st.h)
			st.h = nil
			return err
		}
		for k, mp := range pairs {
			e.RT.WritePrim(chunk, k, packMsg(mp.local, mp.val))
		}
		e.RT.WriteRef(st.h.Addr(), sp, chunk)
		st.objects++
		st.words += int64(vm.HeaderWords + len(pairs))
	}
	return nil
}

// newEmptyStore creates a message-store root (one slot per source
// partition).
func (e *Engine) newEmptyStore() *store {
	st := &store{}
	st.rebuild = func() error { return e.materializeMsgStore(make([][]msgPair, e.Parts), st) }
	if err := st.rebuild(); err != nil {
		st.err = err
	}
	return st
}

// newDenseStore creates a dense combined message store for pt: one slot
// per local vertex, initialized to the combiner identity. The curDense
// mirror is reset alongside.
func (e *Engine) newDenseStore(pt *partition) (*store, error) {
	st := &store{}
	if err := e.materializeDenseStoreIdentity(pt.hi-pt.lo, st); err != nil {
		return nil, err
	}
	if pt.curDense == nil {
		pt.curDense = make([]float64, pt.hi-pt.lo)
	}
	id := e.comb.CombineIdentity()
	for i := range pt.curDense {
		pt.curDense[i] = id
	}
	// Non-zero identities (e.g. +Inf for min-combiners) must be written
	// out; a zero identity is covered by allocation zeroing.
	if id != 0 {
		bits := f2b(id)
		for i := 0; i < pt.hi-pt.lo; i++ {
			e.RT.WritePrim(st.h.Addr(), i, bits)
		}
	}
	return st, nil
}

// materializeDenseStoreIdentity allocates a dense store without contents.
func (e *Engine) materializeDenseStoreIdentity(n int, st *store) error {
	arr, err := e.RT.AllocPrimArray(e.clsData, n)
	if err != nil {
		return err
	}
	st.dense = true
	st.h = e.RT.NewHandle(arr)
	st.objects = 1
	st.words = int64(vm.HeaderWords + n)
	return nil
}

// materializeDenseStore (re)builds a dense store from its mirror.
func (e *Engine) materializeDenseStore(data []float64, st *store) error {
	if err := e.materializeDenseStoreIdentity(len(data), st); err != nil {
		return err
	}
	for i, v := range data {
		if v != 0 {
			e.RT.WritePrim(st.h.Addr(), i, f2b(v))
		}
	}
	return nil
}

func (e *Engine) chargeElements(n int64) {
	e.RT.Clock().Charge(simclock.Other,
		time.Duration(n)*e.Conf.ComputePerElem/time.Duration(e.Conf.Threads))
}

// Run executes prog until convergence or its superstep cap, returning the
// final vertex values.
func (e *Engine) Run(prog Program) ([]float64, error) {
	e.comb, _ = prog.(Combiner)
	// Initialize values.
	for _, pt := range e.partitions {
		for i := range pt.vals {
			v, active := prog.Init(pt.lo+i, len(e.Graph.Adj[pt.lo+i]), e.Graph.N)
			pt.vals[i] = v
			pt.active[i] = active
			e.RT.WritePrim(pt.values.Addr(), i, f2b(v))
		}
	}
	maxS := prog.MaxSupersteps()
	for s := 0; s < maxS; s++ {
		e.superstep = s
		sent, err := e.runSuperstep(prog, s)
		if err != nil {
			return nil, err
		}
		e.Stats.Supersteps++
		if sent == 0 && !e.anyActive() {
			break
		}
	}
	out := make([]float64, e.Graph.N)
	for _, pt := range e.partitions {
		copy(out[pt.lo:pt.hi], pt.vals)
	}
	e.Stats.ActiveAtEnd = e.countActive()
	return out, nil
}

func (e *Engine) anyActive() bool { return e.countActive() > 0 }

func (e *Engine) countActive() int {
	n := 0
	for _, pt := range e.partitions {
		for _, a := range pt.active {
			if a {
				n++
			}
		}
	}
	return n
}

// runSuperstep runs one BSP superstep, returning messages sent.
func (e *Engine) runSuperstep(prog Program, s int) (int64, error) {
	label := msgLabelBase + uint64(s)
	// Fig 5 step 4: at the beginning of the superstep, advise moving the
	// previous superstep's (now immutable) messages to H2.
	if e.Conf.Mode == ModeTH && s > 0 {
		e.RT.MoveHint(msgLabelBase + uint64(s-1))
	}

	// Fresh current stores, tagged with this superstep's label as they
	// are created (Fig 5 step 3).
	for _, pt := range e.partitions {
		if e.comb != nil {
			st, err := e.newDenseStore(pt)
			if err != nil {
				return 0, err
			}
			pt.cur = st
		} else {
			pt.cur = e.newEmptyStore()
			if pt.cur.err != nil {
				return 0, pt.cur.err
			}
			for i := range pt.curData {
				pt.curData[i] = nil
			}
		}
		if e.Conf.Mode == ModeTH {
			e.RT.TagRoot(pt.cur.h, label)
		}
	}

	var sent int64
	threads := e.Conf.Threads
	for base := 0; base < e.Parts; base += threads {
		hi := base + threads
		if hi > e.Parts {
			hi = e.Parts
		}
		for p := base; p < hi; p++ {
			n, err := e.computePartition(prog, s, e.partitions[p])
			if err != nil {
				return 0, err
			}
			sent += n
			if e.ooc != nil {
				e.ooc.maybeOffload()
			}
		}
	}
	e.Stats.MessagesSent += sent

	// Synchronization barrier: current stores become the next incoming
	// stores (immutable from here on) and gain a rebuild closure from the
	// mirrored data so the OOC scheduler can round-trip them.
	for _, pt := range e.partitions {
		e.releaseStore(pt.inMsgs)
		pt.inMsgs = pt.cur
		pt.cur = nil
		st := pt.inMsgs
		if e.comb != nil {
			data := append([]float64(nil), pt.curDense...)
			st.rebuild = func() error { return e.materializeDenseStore(data, st) }
		} else {
			data := make([][]msgPair, len(pt.curData))
			copy(data, pt.curData)
			st.rebuild = func() error { return e.materializeMsgStore(data, st) }
		}
	}
	return sent, nil
}

// f2b and b2f convert message values to heap words.
func f2b(f float64) uint64 { return math.Float64bits(f) }
func b2f(b uint64) float64 { return math.Float64frombits(b) }

// computePartition runs prog over one partition's vertices.
func (e *Engine) computePartition(prog Program, s int, pt *partition) (int64, error) {
	if err := e.ensureResident(pt.edges); err != nil {
		return 0, err
	}
	if err := e.ensureResident(pt.inMsgs); err != nil {
		return 0, err
	}
	if e.ooc != nil {
		e.ooc.touch(pt.edges)
		e.ooc.touch(pt.inMsgs)
	}

	// Gather incoming messages for this partition (reads charge device
	// cost if the store lives in H2).
	msgs := e.gatherMessages(pt)

	// Outgoing buffers per target partition (uncombined programs only).
	var out [][]msgPair
	if e.comb == nil {
		out = make([][]msgPair, e.Parts)
	}
	_, weighted := prog.(EdgeWeightUser)
	var sent int64
	var elems int64
	per := (e.Graph.N + e.Parts - 1) / e.Parts

	edgesRoot := pt.edges.h.Addr()
	for i := 0; i < pt.hi-pt.lo; i++ {
		v := pt.lo + i
		if !pt.active[i] && len(msgs[i]) == 0 {
			continue
		}
		ea := e.RT.ReadRef(edgesRoot, i)
		deg := e.RT.Mem().NumPrims(ea) / 2
		nv, send, msgVal := prog.Compute(s, v, pt.vals[i], msgs[i], deg)
		if nv != pt.vals[i] {
			pt.vals[i] = nv
			// Vertex values are mutable and unmarked: they stay in H1.
			e.RT.WritePrim(pt.values.Addr(), i, f2b(nv))
		}
		pt.active[i] = send
		if send && deg > 0 {
			for j := 0; j < deg; j++ {
				t := int(e.RT.ReadPrim(ea, 2*j))
				tp := t / per
				l := t - tp*per
				msgVal := msgVal
				if weighted {
					msgVal += b2f(e.RT.ReadPrim(ea, 2*j+1))
				}
				if e.comb != nil {
					// Combine straight into the target's dense store —
					// Giraph's combiner path. Updates to a store that
					// already moved to H2 pay the device
					// read-modify-write the paper describes (§7.2).
					tgt := e.partitions[tp]
					acc := tgt.curDense[l]
					if merged := e.comb.Combine(acc, msgVal); merged != acc {
						tgt.curDense[l] = merged
						e.RT.WritePrim(tgt.cur.h.Addr(), l, f2b(merged))
					}
				} else {
					out[tp] = append(out[tp], msgPair{local: int32(l), val: msgVal})
				}
				sent++
			}
		}
		elems += int64(deg) + 1
	}
	e.chargeElements(elems)
	if e.comb != nil {
		return sent, nil
	}

	// Materialize outgoing chunks into the target partitions' current
	// message stores: one packed word per message, one chunk array per
	// (source, target) pair, written through the write barrier (updates
	// to an H2-resident store pay the read-modify-write the paper
	// describes, §7.2).
	for tp, pairs := range out {
		if len(pairs) == 0 {
			continue
		}
		tgt := e.partitions[tp]
		chunk, err := e.RT.AllocPrimArray(e.clsData, len(pairs))
		if err != nil {
			return 0, err
		}
		for k, mp := range pairs {
			e.RT.WritePrim(chunk, k, packMsg(mp.local, mp.val))
		}
		e.RT.WriteRef(tgt.cur.h.Addr(), pt.id, chunk)
		tgt.cur.objects++
		tgt.cur.words += int64(vm.HeaderWords + len(pairs))
		tgt.curData[pt.id] = pairs
	}
	return sent, nil
}

// gatherMessages reads partition pt's incoming store into per-vertex
// message slices.
func (e *Engine) gatherMessages(pt *partition) [][]float64 {
	msgs := make([][]float64, pt.hi-pt.lo)
	var reads int64
	if pt.inMsgs.dense {
		id := e.comb.CombineIdentity()
		addr := pt.inMsgs.h.Addr()
		n := e.RT.Mem().NumPrims(addr)
		for i := 0; i < n && i < len(msgs); i++ {
			v := b2f(e.RT.ReadPrim(addr, i))
			if v != id {
				msgs[i] = append(msgs[i], v)
			}
		}
		reads = int64(n)
	} else {
		root := pt.inMsgs.h.Addr()
		for sp := 0; sp < e.Parts; sp++ {
			chunk := e.RT.ReadRef(root, sp)
			if chunk.IsNull() {
				continue
			}
			n := e.RT.Mem().NumPrims(chunk)
			for k := 0; k < n; k++ {
				local, val := unpackMsg(e.RT.ReadPrim(chunk, k))
				if int(local) >= 0 && int(local) < len(msgs) {
					msgs[local] = append(msgs[local], val)
				}
			}
			reads += int64(n)
		}
	}
	e.chargeElements(reads)
	return msgs
}

// ensureResident reloads an offloaded store (OOC mode).
func (e *Engine) ensureResident(st *store) error {
	if st == nil || !st.offloaded {
		return nil
	}
	if e.ooc == nil {
		return fmt.Errorf("giraph: store offloaded without OOC scheduler")
	}
	return e.ooc.reload(st)
}

// releaseStore drops a store's heap root.
func (e *Engine) releaseStore(st *store) {
	if st == nil {
		return
	}
	if st.h != nil && !st.offloaded {
		e.RT.Release(st.h)
	}
	if e.ooc != nil {
		e.ooc.forget(st)
	}
}

// Breakdown snapshots the execution-time breakdown.
func (e *Engine) Breakdown() simclock.Breakdown { return e.RT.Breakdown() }
