package giraph_test

import (
	"math"
	"testing"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/giraph"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/workloads"
)

func newEngine(t *testing.T, mode giraph.Mode, h1Size int64, g *workloads.Graph, parts int) *giraph.Engine {
	t.Helper()
	clock := simclock.New()
	var jvm *rt.JVM
	if mode == giraph.ModeTH {
		cfg := core.DefaultConfig(256 * storage.MB)
		cfg.RegionSize = 256 * storage.KB
		cfg.CacheBytes = 4 * storage.MB
		jvm = rt.NewJVM(rt.Options{H1Size: h1Size, TH: &cfg}, nil, clock)
	} else {
		jvm = rt.NewJVM(rt.Options{H1Size: h1Size}, nil, clock)
	}
	e, err := giraph.NewEngine(giraph.Conf{
		RT: jvm, Mode: mode, Threads: 4, OOCCacheBytes: 2 * storage.MB,
	}, g, parts)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e
}

// refWCC computes connected components Go-side for verification.
func refWCC(g *workloads.Graph, iters int) []float64 {
	labels := make([]float64, g.N)
	for i := range labels {
		labels[i] = float64(i)
	}
	for it := 0; it < iters; it++ {
		changed := false
		for v, es := range g.Adj {
			for _, t := range es {
				if labels[v] < labels[t] {
					labels[t] = labels[v]
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return labels
}

func TestWCCMatchesReference(t *testing.T) {
	g := workloads.GenGraph(7, 500, 4, 0.8)
	e := newEngine(t, giraph.ModeOOC, 16*storage.MB, g, 4)
	got, err := e.Run(&giraph.WCC{MaxIters: 40})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// BSP min-propagation converges to the same fixpoint as the
	// sequential reference on the same (directed) graph when run to
	// convergence: same label within every weakly-reachable directed
	// closure. Compare against a long sequential run.
	want := refWCC(g, 200)
	mismatch := 0
	for v := range got {
		if got[v] != want[v] {
			mismatch++
		}
	}
	// Directed propagation orders can differ; allow tiny disagreement.
	if mismatch > g.N/100 {
		t.Fatalf("WCC mismatches: %d of %d", mismatch, g.N)
	}
}

func TestBFSDistances(t *testing.T) {
	g := workloads.GenGraph(11, 400, 5, 0.7)
	e := newEngine(t, giraph.ModeOOC, 16*storage.MB, g, 4)
	got, err := e.Run(&giraph.BFS{Source: 0, MaxIters: 30})
	if err != nil {
		t.Fatal(err)
	}
	// Reference BFS.
	want := make([]float64, g.N)
	for i := range want {
		want[i] = math.Inf(1)
	}
	want[0] = 0
	frontier := []int{0}
	for len(frontier) > 0 {
		var next []int
		for _, v := range frontier {
			for _, tgt := range g.Adj[v] {
				if want[tgt] > want[v]+1 {
					want[tgt] = want[v] + 1
					next = append(next, int(tgt))
				}
			}
		}
		frontier = next
	}
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("BFS dist[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := workloads.GenGraph(13, 300, 6, 0.8)
	e := newEngine(t, giraph.ModeOOC, 16*storage.MB, g, 4)
	ranks, err := e.Run(&giraph.PageRank{Iterations: 10, N: g.N})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range ranks {
		if r < 0 {
			t.Fatal("negative rank")
		}
		sum += r
	}
	// Every vertex has out-edges, so mass is conserved up to numerics.
	if sum <= 0.9 || sum > 1.001 {
		t.Fatalf("rank sum = %v", sum)
	}
}

func TestOOCOffloadsUnderPressure(t *testing.T) {
	g := workloads.GenGraph(17, 4000, 10, 0.8)
	// Small heap so the partitions exceed the high-water mark. CDLP has
	// no message combiner, so its stores are large.
	e := newEngine(t, giraph.ModeOOC, 1200*storage.KB, g, 8)
	if _, err := e.Run(&giraph.CDLP{Iterations: 6}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if e.Stats.OOCOffloads == 0 {
		t.Fatal("no OOC offloads despite pressure")
	}
	if e.Stats.OOCReloads == 0 {
		t.Fatal("no OOC reloads")
	}
	if e.Breakdown().Get(simclock.SerDesIO) <= 0 {
		t.Fatal("OOC charged no S/D time")
	}
}

func TestTHMovesEdgesAndMessages(t *testing.T) {
	g := workloads.GenGraph(19, 2000, 8, 0.8)
	e := newEngine(t, giraph.ModeTH, 8*storage.MB, g, 4)
	if _, err := e.Run(&giraph.PageRank{Iterations: 6, N: g.N}); err != nil {
		t.Fatalf("run: %v", err)
	}
	// A small run may never trigger a natural collection; force one so
	// the advised moves execute.
	if err := e.RT.FullGC(); err != nil {
		t.Fatal(err)
	}
	jvm := e.RT.(*rt.JVM)
	st := jvm.TeraHeap().Stats()
	if st.ObjectsMoved == 0 {
		t.Fatal("TeraHeap moved nothing")
	}
	if st.MoveHints < 2 {
		t.Fatalf("move hints = %d, want >= 2 (edges + messages)", st.MoveHints)
	}
	if e.Stats.OOCOffloads != 0 {
		t.Fatal("TH mode must not use the OOC scheduler")
	}
}

func TestTHAndOOCAgreeOnResults(t *testing.T) {
	g := workloads.GenGraph(23, 800, 5, 0.8)
	e1 := newEngine(t, giraph.ModeOOC, 16*storage.MB, g, 4)
	r1, err := e1.Run(&giraph.WCC{MaxIters: 30})
	if err != nil {
		t.Fatal(err)
	}
	e2 := newEngine(t, giraph.ModeTH, 8*storage.MB, g, 4)
	r2, err := e2.Run(&giraph.WCC{MaxIters: 30})
	if err != nil {
		t.Fatal(err)
	}
	for v := range r1 {
		if r1[v] != r2[v] {
			t.Fatalf("mode divergence at vertex %d: %v vs %v", v, r1[v], r2[v])
		}
	}
}

func TestCDLPMatchesReferenceLabelPropagation(t *testing.T) {
	g := workloads.GenGraph(29, 400, 5, 0.8)
	e := newEngine(t, giraph.ModeOOC, 16*storage.MB, g, 4)
	got, err := e.Run(&giraph.CDLP{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Reference synchronous label propagation with the same most-frequent
	// tie-break (smallest label wins).
	labels := make([]float64, g.N)
	for i := range labels {
		labels[i] = float64(i)
	}
	// Incoming messages: label of u sent along u->v.
	for it := 1; it < 5; it++ {
		in := make([]map[float64]int, g.N)
		for v, es := range g.Adj {
			for _, tgt := range es {
				if in[tgt] == nil {
					in[tgt] = make(map[float64]int)
				}
				in[tgt][labels[v]]++
			}
		}
		next := make([]float64, g.N)
		copy(next, labels)
		for v := range labels {
			if len(in[v]) == 0 {
				continue
			}
			best, bestN := labels[v], 0
			for m, n := range in[v] {
				if n > bestN || (n == bestN && m < best) {
					best, bestN = m, n
				}
			}
			next[v] = best
		}
		labels = next
	}
	mism := 0
	for v := range got {
		if got[v] != labels[v] {
			mism++
		}
	}
	// Message float32 rounding cannot affect labels < 2^24, so exact.
	if mism != 0 {
		t.Fatalf("CDLP mismatches: %d of %d", mism, g.N)
	}
}

func TestSSSPUsesEdgeWeights(t *testing.T) {
	g := workloads.GenGraph(31, 300, 5, 0.8)
	e := newEngine(t, giraph.ModeOOC, 16*storage.MB, g, 4)
	got, err := e.Run(&giraph.SSSP{Source: 0, MaxIters: 40})
	if err != nil {
		t.Fatal(err)
	}
	// Reference Bellman-Ford with the engine's edge weights.
	w := func(u, v int) float64 { return 1.0 + float64((u+v)%7)/7.0 }
	dist := make([]float64, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[0] = 0
	for it := 0; it < g.N; it++ {
		changed := false
		for u, es := range g.Adj {
			if math.IsInf(dist[u], 1) {
				continue
			}
			for _, v := range es {
				if d := dist[u] + w(u, int(v)); d < dist[v] {
					dist[v] = d
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	for v := range got {
		// Messages carry float32 precision; allow tiny error.
		if math.IsInf(dist[v], 1) != math.IsInf(got[v], 1) {
			t.Fatalf("reachability differs at %d", v)
		}
		if !math.IsInf(dist[v], 1) && math.Abs(got[v]-dist[v]) > 1e-3 {
			t.Fatalf("dist[%d] = %v, want %v", v, got[v], dist[v])
		}
	}
}

func TestOOCRoundTripPreservesResults(t *testing.T) {
	g := workloads.GenGraph(37, 2000, 8, 0.8)
	// Tight heap: heavy offload/reload churn during the run.
	small := newEngine(t, giraph.ModeOOC, 1200*storage.KB, g, 8)
	r1, err := small.Run(&giraph.CDLP{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if small.Stats.OOCReloads == 0 {
		t.Fatal("expected reload churn")
	}
	// Roomy heap: no offloading at all.
	big := newEngine(t, giraph.ModeOOC, 32*storage.MB, g, 8)
	r2, err := big.Run(&giraph.CDLP{Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	for v := range r1 {
		if r1[v] != r2[v] {
			t.Fatalf("offloading changed results at vertex %d: %v vs %v", v, r1[v], r2[v])
		}
	}
}

func TestCombinerEquivalence(t *testing.T) {
	// PR computed with the dense combined store must equal the golden
	// single-threaded PageRank on the same graph (float32 message
	// rounding notwithstanding).
	g := workloads.GenGraph(41, 250, 5, 0.8)
	e := newEngine(t, giraph.ModeOOC, 16*storage.MB, g, 4)
	got, err := e.Run(&giraph.PageRank{Iterations: 6, N: g.N})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, g.N)
	for i := range want {
		want[i] = 1.0 / float64(g.N)
	}
	for it := 1; it < 6; it++ {
		sum := make([]float64, g.N)
		for v, es := range g.Adj {
			if len(es) == 0 {
				continue
			}
			share := want[v] / float64(len(es))
			for _, tgt := range es {
				// Engine messages round through float32.
				sum[tgt] += float64(float32(share))
			}
		}
		for v := range want {
			want[v] = 0.15/float64(g.N) + 0.85*sum[v]
		}
	}
	for v := range got {
		if math.Abs(got[v]-want[v]) > 1e-6 {
			t.Fatalf("rank[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}
