// Package graphx implements the paper's five Spark graph workloads —
// PageRank (PR), Connected Components (CC), Single-Source Shortest Paths
// (SSSP), SVD++ (SVD), and Triangle Counting (TR) — over cached adjacency
// RDDs (Table 3).
//
// The adjacency data is the cached dataset: one partition is a single-
// entry-root object group (a ref array holding a vertex-id array and one
// out-edge array per vertex), exactly the partition shape TeraHeap's hint
// interface targets. Per-iteration state (ranks, labels, distances) is
// produced as unpersisted temporary RDD data, pressuring the young
// generation the way Spark's intermediate RDDs do.
package graphx

import (
	"fmt"
	"math"
	"time"

	"github.com/carv-repro/teraheap-go/internal/spark"
	"github.com/carv-repro/teraheap-go/internal/vm"
	"github.com/carv-repro/teraheap-go/internal/workloads"
)

// Graph couples a Go-side dataset with its cached adjacency RDD.
type Graph struct {
	Ctx   *spark.Context
	Data  *workloads.Graph
	Parts int
	Edges *spark.RDD
}

// partRange returns the [lo, hi) vertex range of partition p.
func (g *Graph) partRange(p int) (int, int) {
	per := (g.Data.N + g.Parts - 1) / g.Parts
	lo := p * per
	hi := lo + per
	if hi > g.Data.N {
		hi = g.Data.N
	}
	return lo, hi
}

// Load builds the cached adjacency RDD over g with the given partition
// count and persists it.
func Load(ctx *spark.Context, data *workloads.Graph, parts int) *Graph {
	g := &Graph{Ctx: ctx, Data: data, Parts: parts}
	g.Edges = spark.NewRDD(ctx, parts, g.buildPartition).Persist()
	return g
}

// buildPartition materializes the adjacency of partition p:
//
//	root (ref array, 1+V slots)
//	  [0] vertex-id prim array (V words)
//	  [1+i] out-edge prim array of vertex lo+i
func (g *Graph) buildPartition(ctx *spark.Context, p int) (*vm.Handle, spark.PartStats, error) {
	lo, hi := g.partRange(p)
	v := hi - lo
	var st spark.PartStats
	root, err := ctx.RT.AllocRefArray(ctx.ClsPartition, 1+v)
	if err != nil {
		return nil, st, err
	}
	h := ctx.RT.NewHandle(root)
	st.Objects = 1
	st.Words = int64(vm.HeaderWords + 1 + v)

	vids, err := ctx.RT.AllocPrimArray(ctx.ClsData, v)
	if err != nil {
		ctx.RT.Release(h)
		return nil, st, err
	}
	ctx.RT.WriteRef(h.Addr(), 0, vids)
	st.Objects++
	st.Words += int64(vm.HeaderWords + v)
	for i := 0; i < v; i++ {
		ctx.RT.WritePrim(ctx.RT.ReadRef(h.Addr(), 0), i, uint64(lo+i))
	}

	for i := 0; i < v; i++ {
		edges := g.Data.Adj[lo+i]
		ea, err := ctx.RT.AllocPrimArray(ctx.ClsData, len(edges))
		if err != nil {
			ctx.RT.Release(h)
			return nil, st, err
		}
		ctx.RT.WriteRef(h.Addr(), 1+i, ea)
		for j, t := range edges {
			ctx.RT.WritePrim(ea, j, uint64(t))
		}
		st.Objects++
		st.Words += int64(vm.HeaderWords + len(edges))
		st.Elements += len(edges)
	}
	ctx.ChargeElements(int64(v + st.Elements))
	return h, st, nil
}

// forEachAdjacency iterates the cached adjacency, calling fn(v, edges
// prim-array address, degree) for every vertex, charging per-element
// compute.
func (g *Graph) forEachAdjacency(fn func(v int, edges vm.Addr, deg int)) error {
	ctx := g.Ctx
	return g.Edges.ForEachPartition(func(p int, root vm.Addr) error {
		lo, hi := g.partRange(p)
		var elems int64
		for i := 0; i < hi-lo; i++ {
			ea := ctx.RT.ReadRef(root, 1+i)
			deg := ctx.RT.Mem().NumPrims(ea)
			fn(lo+i, ea, deg)
			elems += int64(deg) + 1
		}
		ctx.ChargeElements(elems)
		return nil
	})
}

// allocIterationTemps models the unpersisted per-iteration RDD a stage
// produces for one partition (e.g. a new ranks partition): allocated,
// touched, and abandoned.
func (g *Graph) allocIterationTemps(wordsPerVertex int) error {
	ctx := g.Ctx
	for p := 0; p < g.Parts; p++ {
		lo, hi := g.partRange(p)
		n := (hi - lo) * wordsPerVertex
		if n == 0 {
			continue
		}
		if _, err := ctx.RT.AllocPrimArray(ctx.ClsData, n); err != nil {
			return err
		}
	}
	return nil
}

// PageRank runs iters synchronous PageRank iterations and returns the
// final ranks.
func (g *Graph) PageRank(iters int) ([]float64, error) {
	n := g.Data.N
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1.0 / float64(n)
	}
	for it := 0; it < iters; it++ {
		contribs := make([]float64, n)
		err := g.forEachAdjacency(func(v int, edges vm.Addr, deg int) {
			if deg == 0 {
				return
			}
			share := ranks[v] / float64(deg)
			for j := 0; j < deg; j++ {
				t := int(g.Ctx.RT.ReadPrim(edges, j))
				contribs[t] += share
			}
		})
		if err != nil {
			return nil, err
		}
		// Contributions are shuffled to their target partitions.
		if err := g.Ctx.Shuffle(g.Data.M); err != nil {
			return nil, err
		}
		// The new ranks RDD is an unpersisted intermediate.
		if err := g.allocIterationTemps(2); err != nil {
			return nil, err
		}
		for v := 0; v < n; v++ {
			ranks[v] = 0.15/float64(n) + 0.85*contribs[v]
		}
	}
	return ranks, nil
}

// ConnectedComponents runs label propagation until convergence (or
// maxIters) and returns per-vertex component labels.
func (g *Graph) ConnectedComponents(maxIters int) ([]int32, error) {
	n := g.Data.N
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(i)
	}
	for it := 0; it < maxIters; it++ {
		changed := int64(0)
		next := make([]int32, n)
		copy(next, labels)
		err := g.forEachAdjacency(func(v int, edges vm.Addr, deg int) {
			for j := 0; j < deg; j++ {
				t := int(g.Ctx.RT.ReadPrim(edges, j))
				if labels[v] < next[t] {
					next[t] = labels[v]
					changed++
				}
				if labels[t] < next[v] {
					next[v] = labels[t]
					changed++
				}
			}
		})
		if err != nil {
			return nil, err
		}
		if err := g.Ctx.Shuffle(changed + 1); err != nil {
			return nil, err
		}
		if err := g.allocIterationTemps(1); err != nil {
			return nil, err
		}
		labels = next
		if changed == 0 {
			break
		}
	}
	return labels, nil
}

// SSSP computes hop-weighted shortest path distances from src by
// iterative relaxation.
func (g *Graph) SSSP(src int, maxIters int) ([]float64, error) {
	if src < 0 || src >= g.Data.N {
		return nil, fmt.Errorf("graphx: source %d out of range", src)
	}
	n := g.Data.N
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for it := 0; it < maxIters; it++ {
		relaxed := int64(0)
		err := g.forEachAdjacency(func(v int, edges vm.Addr, deg int) {
			if math.IsInf(dist[v], 1) {
				return
			}
			for j := 0; j < deg; j++ {
				t := int(g.Ctx.RT.ReadPrim(edges, j))
				// Edge weight derived deterministically from endpoints.
				w := 1.0 + float64((v+t)%7)/7.0
				if d := dist[v] + w; d < dist[t] {
					dist[t] = d
					relaxed++
				}
			}
		})
		if err != nil {
			return nil, err
		}
		if err := g.Ctx.Shuffle(relaxed + 1); err != nil {
			return nil, err
		}
		if err := g.allocIterationTemps(1); err != nil {
			return nil, err
		}
		if relaxed == 0 {
			break
		}
	}
	return dist, nil
}

// SVDPlusPlus runs iters rounds of latent-factor updates over the edges
// (rank-dim factors), the access/compute pattern of GraphX's SVD++.
func (g *Graph) SVDPlusPlus(iters, dim int) (float64, error) {
	n := g.Data.N
	rnd := workloads.NewRand(12345)
	factors := make([][]float64, n)
	for i := range factors {
		f := make([]float64, dim)
		for j := range f {
			f[j] = rnd.Float64()*0.1 - 0.05
		}
		factors[i] = f
	}
	var lastErr float64
	for it := 0; it < iters; it++ {
		var sumErr float64
		var samples int64
		err := g.forEachAdjacency(func(v int, edges vm.Addr, deg int) {
			for j := 0; j < deg; j++ {
				t := int(g.Ctx.RT.ReadPrim(edges, j))
				rating := 1.0 + float64((v*31+t)%5) // deterministic pseudo-rating
				var dot float64
				for k := 0; k < dim; k++ {
					dot += factors[v][k] * factors[t][k]
				}
				e := rating - dot
				sumErr += e * e
				samples++
				for k := 0; k < dim; k++ {
					fv, ft := factors[v][k], factors[t][k]
					factors[v][k] = fv + 0.005*(e*ft-0.02*fv)
					factors[t][k] = ft + 0.005*(e*fv-0.02*ft)
				}
			}
			// Factor math is ~dim ops per edge beyond the base charge.
			g.Ctx.ChargeCompute(time.Duration(int64(deg)*int64(dim)) * 4 * time.Nanosecond)
		})
		if err != nil {
			return 0, err
		}
		if err := g.Ctx.Shuffle(g.Data.M * int64(dim) / 4); err != nil {
			return 0, err
		}
		if err := g.allocIterationTemps(dim); err != nil {
			return 0, err
		}
		if samples > 0 {
			lastErr = math.Sqrt(sumErr / float64(samples))
		}
	}
	return lastErr, nil
}

// TriangleCount counts triangles via per-edge neighbour-set intersection.
func (g *Graph) TriangleCount() (int64, error) {
	// Build undirected neighbour sets Go-side from the cached adjacency
	// (reading through the heap so device costs apply).
	n := g.Data.N
	nbr := make([]map[int32]struct{}, n)
	for i := range nbr {
		nbr[i] = make(map[int32]struct{})
	}
	err := g.forEachAdjacency(func(v int, edges vm.Addr, deg int) {
		for j := 0; j < deg; j++ {
			t := int32(g.Ctx.RT.ReadPrim(edges, j))
			if int(t) != v {
				nbr[v][t] = struct{}{}
				nbr[t][int32(v)] = struct{}{}
			}
		}
	})
	if err != nil {
		return 0, err
	}
	// The triplet construction materializes sizable temporaries.
	if err := g.allocIterationTemps(8); err != nil {
		return 0, err
	}
	var count int64
	var ops int64
	for v := 0; v < n; v++ {
		for t := range nbr[v] {
			if int(t) < v {
				continue
			}
			// Intersect smaller set against larger.
			a, b := nbr[v], nbr[int(t)]
			if len(b) < len(a) {
				a, b = b, a
			}
			for w := range a {
				ops++
				if _, ok := b[w]; ok && int(w) > int(t) {
					count++
				}
			}
		}
	}
	g.Ctx.ChargeCompute(time.Duration(ops) * 6 * time.Nanosecond)
	if err := g.Ctx.Shuffle(ops / 8); err != nil {
		return 0, err
	}
	return count, nil
}
