package graphx_test

import (
	"math"
	"testing"

	"github.com/carv-repro/teraheap-go/internal/graphx"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/serde"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/spark"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/workloads"
)

func newCtx(t *testing.T) *spark.Context {
	t.Helper()
	jvm := rt.NewJVM(rt.Options{H1Size: 16 * storage.MB}, nil, simclock.New())
	return spark.NewContext(spark.Conf{
		RT: jvm, Mode: spark.ModeMO, Threads: 4, SerKind: serde.Kryo,
	})
}

func TestPageRankMatchesReference(t *testing.T) {
	g := workloads.GenGraph(3, 400, 5, 0.8)
	ctx := newCtx(t)
	gr := graphx.Load(ctx, g, 8)
	got, err := gr.PageRank(8)
	if err != nil {
		t.Fatal(err)
	}
	// Reference PageRank in plain Go.
	n := g.N
	want := make([]float64, n)
	for i := range want {
		want[i] = 1.0 / float64(n)
	}
	for it := 0; it < 8; it++ {
		contrib := make([]float64, n)
		for v, es := range g.Adj {
			if len(es) == 0 {
				continue
			}
			share := want[v] / float64(len(es))
			for _, e := range es {
				contrib[e] += share
			}
		}
		for v := range want {
			want[v] = 0.15/float64(n) + 0.85*contrib[v]
		}
	}
	for v := range got {
		if math.Abs(got[v]-want[v]) > 1e-12 {
			t.Fatalf("rank[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestConnectedComponentsLabels(t *testing.T) {
	g := workloads.GenGraph(5, 300, 4, 0.8)
	ctx := newCtx(t)
	gr := graphx.Load(ctx, g, 8)
	labels, err := gr.ConnectedComponents(50)
	if err != nil {
		t.Fatal(err)
	}
	// Every edge's endpoints must share a label at convergence.
	for v, es := range g.Adj {
		for _, e := range es {
			if labels[v] != labels[e] {
				t.Fatalf("edge (%d,%d) crosses components %d/%d", v, e, labels[v], labels[e])
			}
		}
	}
}

func TestSSSPTriangleInequality(t *testing.T) {
	g := workloads.GenGraph(7, 300, 5, 0.8)
	ctx := newCtx(t)
	gr := graphx.Load(ctx, g, 8)
	dist, err := gr.SSSP(0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if dist[0] != 0 {
		t.Fatalf("dist[src] = %v", dist[0])
	}
	// Relaxation fixpoint: no edge can improve any distance.
	for v, es := range g.Adj {
		if math.IsInf(dist[v], 1) {
			continue
		}
		for _, e := range es {
			w := 1.0 + float64((v+int(e))%7)/7.0
			if dist[v]+w < dist[e]-1e-9 {
				t.Fatalf("edge (%d,%d) not relaxed: %v + %v < %v", v, e, dist[v], w, dist[e])
			}
		}
	}
}

func TestTriangleCountMatchesBruteForce(t *testing.T) {
	g := workloads.GenGraph(9, 60, 4, 0.8)
	ctx := newCtx(t)
	gr := graphx.Load(ctx, g, 4)
	got, err := gr.TriangleCount()
	if err != nil {
		t.Fatal(err)
	}
	// Brute force over the undirected closure.
	adj := make([]map[int]bool, g.N)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	for v, es := range g.Adj {
		for _, e := range es {
			if int(e) != v {
				adj[v][int(e)] = true
				adj[int(e)][v] = true
			}
		}
	}
	var want int64
	for a := 0; a < g.N; a++ {
		for b := range adj[a] {
			if b <= a {
				continue
			}
			for c := range adj[b] {
				if c <= b {
					continue
				}
				if adj[a][c] {
					want++
				}
			}
		}
	}
	if got != want {
		t.Fatalf("triangles = %d, want %d", got, want)
	}
}

func TestSVDErrorDecreases(t *testing.T) {
	g := workloads.GenGraph(11, 200, 5, 0.8)
	ctx := newCtx(t)
	gr := graphx.Load(ctx, g, 4)
	e1, err := gr.SVDPlusPlus(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx2 := newCtx(t)
	gr2 := graphx.Load(ctx2, g, 4)
	e8, err := gr2.SVDPlusPlus(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if e8 >= e1 {
		t.Fatalf("SVD error did not decrease: %v -> %v", e1, e8)
	}
}
