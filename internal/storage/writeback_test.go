package storage

import (
	"testing"
	"time"

	"github.com/carv-repro/teraheap-go/internal/simclock"
)

// Account-only paths must guard n <= 0 exactly like every charged path,
// so stats parity holds between a charged write and an account-only write
// for any n.
func TestAccountPathsGuardNonPositive(t *testing.T) {
	clock := simclock.New()
	charged := NewDevice(NVMeSSD, clock)
	acct := NewDevice(NVMeSSD, clock)

	for _, n := range []int64{-4096, -1, 0, 1, 4096} {
		charged.Read(n)
		charged.Write(n)
		acct.AccountRead(n)
		acct.AccountWrite(n)
	}
	if charged.Stats() != acct.Stats() {
		t.Fatalf("stats parity broken: charged=%+v account=%+v", charged.Stats(), acct.Stats())
	}
	want := Stats{ReadOps: 2, WriteOps: 2, BytesRead: 4097, BytesWritten: 4097}
	if acct.Stats() != want {
		t.Fatalf("account stats = %+v, want %+v", acct.Stats(), want)
	}
}

// Depth 0 keeps WriteAsync on the legacy flat-discount path, byte-identical
// in cost and stats to a device that never heard of the queue.
func TestWritebackDepthZeroIsLegacy(t *testing.T) {
	clockA, clockB := simclock.New(), simclock.New()
	legacy := NewDevice(NVMeSSD, clockA)
	gated := NewDevice(NVMeSSD, clockB)
	gated.SetWritebackDepth(0)
	gated.SetWritebackDepth(-3) // negative clamps to disabled

	for i := 0; i < 10; i++ {
		legacy.WriteAsync(8192, DefaultPageSize)
		gated.WriteAsync(8192, DefaultPageSize)
	}
	if clockA.Now() != clockB.Now() {
		t.Fatalf("depth 0 diverged from legacy: %v vs %v", clockA.Now(), clockB.Now())
	}
	if legacy.Stats() != gated.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", legacy.Stats(), gated.Stats())
	}
	if gated.DrainWriteback() != 0 {
		t.Fatal("drain of a disabled queue charged time")
	}
}

// A submission charges nothing up front; the drain charges exactly the
// service time not hidden by intervening mutator compute.
func TestWritebackOverlapSemantics(t *testing.T) {
	clock := simclock.New()
	dev := NewDevice(NVMeSSD, clock)
	dev.SetWritebackDepth(8)

	serviceCost := dev.Model().seqWriteCost(64*KB, DefaultPageSize)

	dev.WriteAsync(64*KB, DefaultPageSize)
	if clock.Now() != 0 {
		t.Fatalf("async submit charged %v up front", clock.Now())
	}
	if dev.WritebackPending() != 1 {
		t.Fatalf("pending = %d, want 1", dev.WritebackPending())
	}

	// Immediate drain: nothing overlapped, full service time charged.
	if got := dev.DrainWriteback(); got != serviceCost {
		t.Fatalf("immediate drain charged %v, want %v", got, serviceCost)
	}

	// Submit, overlap half the service time with compute, drain: only the
	// residual half is charged.
	before := clock.Now()
	dev.WriteAsync(64*KB, DefaultPageSize)
	clock.ChargeAmbient(serviceCost / 2)
	if got := dev.DrainWriteback(); got != serviceCost-serviceCost/2 {
		t.Fatalf("half-overlapped drain charged %v, want %v", got, serviceCost-serviceCost/2)
	}

	// Submit, burn more than the service time, drain: fully hidden.
	dev.WriteAsync(64*KB, DefaultPageSize)
	clock.ChargeAmbient(2 * serviceCost)
	if got := dev.DrainWriteback(); got != 0 {
		t.Fatalf("fully overlapped drain charged %v, want 0", got)
	}
	_ = before

	st := dev.WritebackStats()
	if st.Batches != 3 || st.Drains != 3 || st.Stalls != 0 {
		t.Fatalf("stats = %+v, want 3 batches, 3 drains, 0 stalls", st)
	}
}

// Batches serialize on the single writeback channel: two back-to-back
// submissions drain for two service times, not one.
func TestWritebackChannelSerializes(t *testing.T) {
	clock := simclock.New()
	dev := NewDevice(NVMeSSD, clock)
	dev.SetWritebackDepth(8)
	serviceCost := dev.Model().seqWriteCost(64*KB, DefaultPageSize)

	dev.WriteAsync(64*KB, DefaultPageSize)
	dev.WriteAsync(64*KB, DefaultPageSize)
	if got := dev.DrainWriteback(); got != 2*serviceCost {
		t.Fatalf("drain charged %v, want %v", got, 2*serviceCost)
	}
}

// The depth cap blocks the submitter until the oldest batch completes.
func TestWritebackDepthCapStalls(t *testing.T) {
	clock := simclock.New()
	dev := NewDevice(NVMeSSD, clock)
	dev.SetWritebackDepth(2)
	serviceCost := dev.Model().seqWriteCost(64*KB, DefaultPageSize)

	dev.WriteAsync(64*KB, DefaultPageSize)
	dev.WriteAsync(64*KB, DefaultPageSize)
	if dev.WritebackPending() != 2 {
		t.Fatalf("pending = %d, want 2", dev.WritebackPending())
	}
	// Third submission must wait for batch 1 (completes at serviceCost).
	dev.WriteAsync(64*KB, DefaultPageSize)
	if clock.Now() != serviceCost {
		t.Fatalf("stalled submit advanced clock to %v, want %v", clock.Now(), serviceCost)
	}
	st := dev.WritebackStats()
	if st.Stalls != 1 || time.Duration(st.StallNS) != serviceCost {
		t.Fatalf("stall stats = %+v, want 1 stall of %v", st, serviceCost)
	}
	// Remaining backlog: batches 2 and 3 finish at 2x and 3x service time.
	if got := dev.DrainWriteback(); got != 2*serviceCost {
		t.Fatalf("drain charged %v, want %v", got, 2*serviceCost)
	}
}

// Concurrent sessions each own a device; the writeback queue must keep
// all its state per-device so parallel submit/drain schedules never share
// anything. Run under -race in CI.
func TestWritebackConcurrentSessionsRace(t *testing.T) {
	results := make([]time.Duration, 8)
	done := make(chan int, len(results))
	for g := range results {
		go func(g int) {
			clock := simclock.New()
			dev := NewDevice(NVMeSSD, clock)
			dev.SetWritebackDepth(2 + g%3)
			for i := 0; i < 64; i++ {
				dev.WriteAsync(int64(1+(g+i)%8)*KB, DefaultPageSize)
				if i%7 == 0 {
					clock.ChargeAmbient(time.Duration(i) * 100 * time.Nanosecond)
				}
				if i%13 == 0 {
					dev.DrainWriteback()
				}
			}
			dev.DrainWriteback()
			results[g] = clock.Now()
			done <- g
		}(g)
	}
	for range results {
		<-done
	}
	// Same-depth goroutines ran the same schedule modulo g: every slot
	// must have charged something.
	for g, d := range results {
		if d <= 0 {
			t.Fatalf("goroutine %d charged nothing", g)
		}
	}
}

// Same submission schedule, two processes' worth of devices: identical
// charges and stats (determinism pin for the queue bookkeeping).
func TestWritebackDeterministic(t *testing.T) {
	run := func() (time.Duration, WritebackStats, Stats) {
		clock := simclock.New()
		dev := NewDevice(NVMeSSD, clock)
		dev.SetWritebackDepth(3)
		for i := 0; i < 32; i++ {
			dev.WriteAsync(int64(4+i)*KB, DefaultPageSize)
			if i%5 == 0 {
				clock.ChargeAmbient(time.Duration(i) * time.Microsecond)
			}
			if i%11 == 0 {
				dev.DrainWriteback()
			}
		}
		dev.DrainWriteback()
		return clock.Now(), dev.WritebackStats(), dev.Stats()
	}
	t1, w1, s1 := run()
	t2, w2, s2 := run()
	if t1 != t2 || w1 != w2 || s1 != s2 {
		t.Fatalf("writeback bookkeeping not deterministic:\n%v %+v %+v\n%v %+v %+v", t1, w1, s1, t2, w2, s2)
	}
}
