package storage_test

import (
	"testing"

	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
)

// TestInvalidateRangeResetsStreams is the regression test for the
// readahead-stream bug: invalidating a range used to drop the pages but
// leave a sequential stream whose expected next page pointed into the
// invalidated range, so the first unrelated fault there was misclassified
// as sequential (readahead-batched) traffic.
func TestInvalidateRangeResetsStreams(t *testing.T) {
	clock := simclock.New()
	dev := storage.NewDevice(storage.NVMeSSD, clock)
	pc := storage.NewPageCache(dev, 4096, 16)

	// Establish a sequential stream: run reaches 3 on the third fault.
	pc.Touch(10, false)
	pc.Touch(11, false)
	pc.Touch(12, false)
	if pc.SeqFaults != 1 {
		t.Fatalf("SeqFaults = %d after 3 sequential touches, want 1", pc.SeqFaults)
	}

	// The region containing the stream's continuation is reclaimed.
	pc.InvalidateRange(13, 30)

	// A fault at the old continuation point is NOT a continuation of the
	// dead stream; it must be classified as a fresh random fault.
	pc.Touch(13, false)
	if pc.SeqFaults != 1 {
		t.Fatalf("SeqFaults = %d after invalidation, want 1 (stale stream not reset)", pc.SeqFaults)
	}
	if err := pc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestInvalidateRangeHugeRange exercises the map-iteration path taken when
// the range is wider than the resident set.
func TestInvalidateRangeHugeRange(t *testing.T) {
	clock := simclock.New()
	dev := storage.NewDevice(storage.NVMeSSD, clock)
	pc := storage.NewPageCache(dev, 4096, 16)

	for p := int64(0); p < 8; p++ {
		pc.Touch(p*100, true) // sparse, dirty pages
	}
	if pc.Len() != 8 {
		t.Fatalf("Len = %d, want 8", pc.Len())
	}
	wb := pc.Writebacks
	pc.InvalidateRange(0, 1<<40)
	if pc.Len() != 0 {
		t.Fatalf("Len = %d after full-range invalidation, want 0", pc.Len())
	}
	if pc.Writebacks != wb {
		t.Fatalf("invalidation wrote back %d dirty pages; reclaimed data must not reach the device", pc.Writebacks-wb)
	}
	for p := int64(0); p < 8; p++ {
		if pc.Resident(p * 100) {
			t.Fatalf("page %d still resident", p*100)
		}
	}
	if err := pc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckConsistencyAfterWorkout runs a mixed touch/evict/invalidate
// workload and asserts the LRU list and map stay in lock step.
func TestCheckConsistencyAfterWorkout(t *testing.T) {
	clock := simclock.New()
	dev := storage.NewDevice(storage.NVMeSSD, clock)
	pc := storage.NewPageCache(dev, 4096, 4)

	for i := 0; i < 200; i++ {
		pc.Touch(int64(i*7%23), i%3 == 0)
		if i%17 == 0 {
			pc.InvalidateRange(int64(i%23), int64(i%23+3))
		}
		if err := pc.CheckConsistency(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	pc.DropAll()
	if err := pc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if pc.Len() != 0 {
		t.Fatalf("Len = %d after DropAll", pc.Len())
	}
}
