package storage_test

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
)

func TestDeviceChargesReadAndWrite(t *testing.T) {
	clock := simclock.New()
	dev := storage.NewDevice(storage.NVMeSSD, clock)
	dev.Read(4096)
	if clock.Now() <= 0 {
		t.Fatal("read charged no time")
	}
	readTime := clock.Now()
	dev.Write(4096)
	if clock.Now() <= readTime {
		t.Fatal("write charged no time")
	}
	st := dev.Stats()
	if st.ReadOps != 1 || st.WriteOps != 1 || st.BytesRead != 4096 || st.BytesWritten != 4096 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

func TestNVMeFasterSequentialThanRandom(t *testing.T) {
	mkClock := func(seq bool) time.Duration {
		clock := simclock.New()
		dev := storage.NewDevice(storage.NVMeSSD, clock)
		const pages = 256
		for i := 0; i < pages; i++ {
			if seq {
				dev.ReadSeqBatched(4096)
			} else {
				dev.Read(4096)
			}
		}
		return clock.Now()
	}
	if seq, rnd := mkClock(true), mkClock(false); seq >= rnd {
		t.Fatalf("sequential (%v) not faster than random (%v)", seq, rnd)
	}
}

func TestNVMFasterThanNVMe(t *testing.T) {
	run := func(kind storage.Kind) time.Duration {
		clock := simclock.New()
		dev := storage.NewDevice(kind, clock)
		for i := 0; i < 64; i++ {
			dev.Read(4096)
		}
		return clock.Now()
	}
	if nvm, nvme := run(storage.NVM), run(storage.NVMeSSD); nvm >= nvme {
		t.Fatalf("NVM (%v) not faster than NVMe (%v)", nvm, nvme)
	}
}

func TestPageCacheHitsAreFree(t *testing.T) {
	clock := simclock.New()
	dev := storage.NewDevice(storage.NVMeSSD, clock)
	pc := storage.NewPageCache(dev, 4096, 16)
	pc.Touch(0, false)
	cold := clock.Now()
	pc.Touch(0, false)
	if clock.Now() != cold {
		t.Fatal("cache hit charged time")
	}
	if pc.Hits != 1 || pc.Faults != 1 {
		t.Fatalf("hits=%d faults=%d", pc.Hits, pc.Faults)
	}
}

func TestPageCacheEvictsLRU(t *testing.T) {
	clock := simclock.New()
	dev := storage.NewDevice(storage.NVMeSSD, clock)
	pc := storage.NewPageCache(dev, 4096, 2)
	pc.Touch(1, false)
	pc.Touch(2, false)
	pc.Touch(1, false) // 1 is now MRU
	pc.Touch(3, false) // evicts 2
	if !pc.Resident(1) || pc.Resident(2) || !pc.Resident(3) {
		t.Fatalf("LRU wrong: 1=%v 2=%v 3=%v", pc.Resident(1), pc.Resident(2), pc.Resident(3))
	}
	if pc.Evictions != 1 {
		t.Fatalf("evictions = %d", pc.Evictions)
	}
}

func TestPageCacheDirtyEvictionWritesBack(t *testing.T) {
	clock := simclock.New()
	dev := storage.NewDevice(storage.NVMeSSD, clock)
	pc := storage.NewPageCache(dev, 4096, 1)
	pc.WritebackWindow = 0 // rely on eviction writeback only
	pc.Touch(1, true)      // dirty
	w0 := dev.Stats().WriteOps
	pc.Touch(2, false) // evicts dirty page 1
	if dev.Stats().WriteOps != w0+1 {
		t.Fatal("dirty eviction did not write back")
	}
}

func TestPageCacheWritebackWindow(t *testing.T) {
	clock := simclock.New()
	dev := storage.NewDevice(storage.NVMeSSD, clock)
	pc := storage.NewPageCache(dev, 4096, 8)
	pc.WritebackWindow = time.Microsecond
	pc.Touch(1, true)
	// Advance virtual time past the window, then re-touch: the dirty page
	// is written back.
	clock.Charge(simclock.Other, time.Millisecond)
	w0 := pc.Writebacks
	pc.Touch(1, true)
	if pc.Writebacks != w0+1 {
		t.Fatal("no windowed writeback")
	}
}

func TestMappedFileRoundTrip(t *testing.T) {
	clock := simclock.New()
	dev := storage.NewDevice(storage.NVMeSSD, clock)
	m := storage.NewMappedFile(dev, 1<<20, 4096, 64*1024)
	roundTrip := func(w int64, v uint64) bool {
		w = w % m.SizeWords()
		if w < 0 {
			w = -w
		}
		m.Store(w, v)
		return m.Load(w) == v && m.PeekWord(w) == v
	}
	if err := quick.Check(roundTrip, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMappedFileBulkStoreIsCheaperThanWordStores(t *testing.T) {
	run := func(bulk bool) time.Duration {
		clock := simclock.New()
		dev := storage.NewDevice(storage.NVMeSSD, clock)
		m := storage.NewMappedFile(dev, 1<<20, 4096, 8*1024)
		data := make([]uint64, 4096)
		if bulk {
			m.BulkStore(0, data)
		} else {
			for i := range data {
				m.Store(int64(i), 7)
			}
		}
		return clock.Now()
	}
	if b, w := run(true), run(false); b >= w {
		t.Fatalf("bulk store (%v) not cheaper than word stores (%v)", b, w)
	}
}

func TestByteStoreCacheAndDelete(t *testing.T) {
	clock := simclock.New()
	dev := storage.NewDevice(storage.NVMeSSD, clock)
	s := storage.NewByteStore(dev, 10_000)
	id := s.Put(5000)
	if got := s.Get(id); got != 5000 {
		t.Fatalf("size = %d", got)
	}
	if s.Hits != 1 {
		t.Fatalf("first Get should hit the cache (fresh Put): hits=%d", s.Hits)
	}
	// A second blob exceeding the cache budget evicts the first.
	id2 := s.Put(8000)
	t0 := clock.Now()
	s.Get(id)
	if clock.Now() == t0 {
		t.Fatal("evicted blob read cost nothing")
	}
	s.Delete(id)
	s.Delete(id2)
	if s.TotalBytes() != 0 {
		t.Fatalf("bytes after delete: %d", s.TotalBytes())
	}
}

func TestZeroWords(t *testing.T) {
	clock := simclock.New()
	dev := storage.NewDevice(storage.NVMeSSD, clock)
	m := storage.NewMappedFile(dev, 1<<16, 4096, 0)
	m.Store(10, 42)
	m.ZeroWords(0, 32)
	if m.PeekWord(10) != 0 {
		t.Fatal("ZeroWords did not clear")
	}
}

func TestStripedDeviceScalesBandwidth(t *testing.T) {
	run := func(stripes int) time.Duration {
		clock := simclock.New()
		dev := storage.NewStripedDevice(storage.NVMeSSD, stripes, clock)
		dev.ReadSeq(64*storage.MB, 4096)
		return clock.Now()
	}
	one, four := run(1), run(4)
	if four*3 > one {
		t.Fatalf("4-way striping too slow: %v vs %v", four, one)
	}
}

func TestAsyncOverlapReducesWriteCost(t *testing.T) {
	cost := func(overlap float64) time.Duration {
		clock := simclock.New()
		dev := storage.NewDevice(storage.NVMeSSD, clock)
		dev.SetAsyncOverlap(overlap)
		dev.WriteAsync(2*storage.MB, 4096)
		return clock.Now()
	}
	if full, none := cost(0.9), cost(0.0); full >= none {
		t.Fatalf("overlap did not reduce cost: %v vs %v", full, none)
	}
}
