package storage

import (
	"fmt"
	"time"
)

// PageCache is an LRU cache of fixed-size pages standing in for the kernel
// page cache (the DR2 DRAM share in the paper's configurations). Misses
// charge a device read; evicting a dirty page charges a device write, and
// pages that stay dirty past the writeback window are flushed the way the
// kernel's dirty-page writeback does — so mutating device-resident data
// keeps paying device writes (the paper's read-modify-write cost, §7.2).
//
// Residency is tracked in a dense page-slot table indexed by page number
// (mapping pages are dense from 0, bounded by the mapped-file size) with an
// intrusive LRU list threaded through the slots. Touch is the hottest call
// in the simulator — every simulated H2 load and store lands here — so the
// slot table replaces the old map[int64]*cacheEntry to avoid hashing and
// per-fault node allocation.
type PageCache struct {
	dev      *Device
	pageSize int
	capacity int // in pages; 0 means unbounded

	// WritebackWindow is the simulated dirty-page lifetime before
	// writeback (0 disables windowed writeback).
	WritebackWindow time.Duration

	slots      []pageSlot // indexed by page number, grown on demand
	head, tail int32      // LRU list ends; nilPage when empty
	resident   int

	// Persistent writeback thunks so the hot eviction and windowed-flush
	// paths never allocate a closure.
	writePage      func()
	writeAsyncPage func()

	// Readahead state: sequential fault streams amortize device latency
	// over SeqBatch pages, the way OS readahead turns page faults on a
	// streaming mmap into large device reads (the paper's ML workloads
	// reach the device's full 2.9 GB/s this way, §7.1). Several concurrent
	// streams are tracked, as the kernel does per file region: an object
	// walk that alternates between an index array and data arrays forms
	// two interleaved sequential streams.
	streams [8]raStream
	raClock int64

	// Counters.
	Hits             int64
	Faults           int64
	SeqFaults        int64
	Writebacks       int64
	WritebackRetries int64 // injected writeback failures recovered by retry
	Evictions        int64
}

// nilPage terminates the intrusive LRU list.
const nilPage int32 = -1

// Page residency states. The zero value means absent so a freshly grown
// slot table is correct without initialization.
const (
	pageAbsent uint8 = iota
	pageClean
	pageDirty
)

// pageSlot is one entry of the dense residency table. prev/next thread the
// intrusive LRU list (slot indices, nilPage-terminated) and are only
// meaningful while state != pageAbsent.
type pageSlot struct {
	prev, next int32
	state      uint8
	dirtySince time.Duration
}

// NewPageCache builds a cache of capacityPages pages of pageSize bytes over
// dev. A capacity of 0 means the cache never evicts.
func NewPageCache(dev *Device, pageSize, capacityPages int) *PageCache {
	c := &PageCache{
		dev:             dev,
		pageSize:        pageSize,
		capacity:        capacityPages,
		WritebackWindow: 200 * time.Microsecond,
		head:            nilPage,
		tail:            nilPage,
	}
	c.writePage = func() { c.dev.Write(int64(c.pageSize)) }
	c.writeAsyncPage = func() { c.dev.WriteAsync(int64(c.pageSize), c.pageSize) }
	return c
}

// PageSize returns the page size in bytes.
func (c *PageCache) PageSize() int { return c.pageSize }

// Len returns the number of resident pages.
func (c *PageCache) Len() int { return c.resident }

// Capacity returns the capacity in pages (0 = unbounded).
func (c *PageCache) Capacity() int { return c.capacity }

// slot returns the table entry for page, growing the table if needed.
func (c *PageCache) slot(page int64) *pageSlot {
	if page >= int64(len(c.slots)) {
		c.growTo(page)
	}
	return &c.slots[page]
}

// growTo extends the slot table to cover page (amortized doubling).
func (c *PageCache) growTo(page int64) {
	need := page + 1
	if min := int64(2 * len(c.slots)); need < min {
		need = min
	}
	ns := make([]pageSlot, need)
	copy(ns, c.slots)
	c.slots = ns
}

// Touch faults the page in if needed and marks it most-recently-used.
// If write is true the page is marked dirty.
func (c *PageCache) Touch(page int64, write bool) {
	s := c.slot(page)
	if s.state != pageAbsent {
		c.Hits++
		c.moveToFront(int32(page))
		// Windowed writeback: a page that has been dirty longer than the
		// writeback window is flushed; further writes re-dirty it and pay
		// again.
		if s.state == pageDirty && c.WritebackWindow > 0 {
			if now := c.dev.clock.Now(); now-s.dirtySince >= c.WritebackWindow {
				c.Writebacks++
				c.chargeWriteback(c.writeAsyncPage)
				s.state = pageClean
			}
		}
	} else {
		c.Faults++
		if c.noteFault(page) {
			// Established sequential stream: readahead amortizes the
			// device latency across a batched read.
			c.SeqFaults++
			c.dev.ReadSeqBatched(int64(c.pageSize))
		} else {
			c.dev.Read(int64(c.pageSize))
		}
		s.state = pageClean
		c.pushFront(int32(page))
		c.resident++
		c.evictIfNeeded()
	}
	if write && s.state != pageDirty {
		s.state = pageDirty
		s.dirtySince = c.dev.clock.Now()
	}
}

// Resident reports whether the page is currently cached.
func (c *PageCache) Resident(page int64) bool {
	return page >= 0 && page < int64(len(c.slots)) && c.slots[page].state != pageAbsent
}

// FlushAll writes back every dirty page (msync-style) without evicting.
func (c *PageCache) FlushAll() {
	var dirtyBytes int64
	for p := c.head; p != nilPage; p = c.slots[p].next {
		s := &c.slots[p]
		if s.state == pageDirty {
			s.state = pageClean
			c.Writebacks++
			dirtyBytes += int64(c.pageSize)
		}
	}
	if dirtyBytes > 0 {
		c.chargeWriteback(func() { c.dev.WriteSeq(dirtyBytes, c.pageSize) })
	}
}

// chargeWriteback charges one writeback, paying it a second time if the
// fault plane fails the first attempt (the kernel's writeback path retries
// failed dirty-page I/O; the data is still in the cache, so recovery is a
// repeat of the write).
func (c *PageCache) chargeWriteback(charge func()) {
	charge()
	if c.dev.inj.WritebackFailed() {
		c.WritebackRetries++
		charge()
	}
}

// DropAll empties the cache, writing back dirty pages first.
func (c *PageCache) DropAll() {
	c.FlushAll()
	for p := c.head; p != nilPage; {
		s := &c.slots[p]
		next := s.next
		s.state = pageAbsent
		s.prev, s.next = nilPage, nilPage
		p = next
	}
	c.head, c.tail = nilPage, nilPage
	c.resident = 0
}

// InvalidateRange drops any cached pages in [firstPage, lastPage] without
// writeback; used when whole H2 regions are reclaimed (their contents are
// dead, so dirty data need not reach the device). Readahead streams whose
// expected next page falls in the range are reset: the stream's run ended
// with the reclaimed region, and letting it linger would misclassify the
// next unrelated fault nearby as sequential.
func (c *PageCache) InvalidateRange(firstPage, lastPage int64) {
	if lastPage-firstPage+1 > int64(c.resident) {
		// Region reclaims cover far more pages than are resident; walk the
		// LRU list instead of probing every page in the range.
		for p := c.head; p != nilPage; {
			next := c.slots[p].next
			if int64(p) >= firstPage && int64(p) <= lastPage {
				c.remove(p)
			}
			p = next
		}
	} else {
		lo := firstPage
		if lo < 0 {
			lo = 0
		}
		hi := lastPage
		if max := int64(len(c.slots)) - 1; hi > max {
			hi = max
		}
		for p := lo; p <= hi; p++ {
			if c.slots[p].state != pageAbsent {
				c.remove(int32(p))
			}
		}
	}
	for i := range c.streams {
		s := &c.streams[i]
		if s.run > 0 && s.next >= firstPage && s.next <= lastPage {
			*s = raStream{}
		}
	}
}

// remove unlinks a resident page and marks its slot absent.
func (c *PageCache) remove(p int32) {
	c.unlink(p)
	c.slots[p].state = pageAbsent
	c.resident--
}

func (c *PageCache) evictIfNeeded() {
	if c.capacity <= 0 {
		return
	}
	for c.resident > c.capacity {
		victim := c.tail
		if victim == nilPage {
			return
		}
		if c.slots[victim].state == pageDirty {
			c.Writebacks++
			c.chargeWriteback(c.writePage)
		}
		c.Evictions++
		c.remove(victim)
	}
}

func (c *PageCache) pushFront(p int32) {
	s := &c.slots[p]
	s.prev = nilPage
	s.next = c.head
	if c.head != nilPage {
		c.slots[c.head].prev = p
	}
	c.head = p
	if c.tail == nilPage {
		c.tail = p
	}
}

func (c *PageCache) unlink(p int32) {
	s := &c.slots[p]
	if s.prev != nilPage {
		c.slots[s.prev].next = s.next
	} else {
		c.head = s.next
	}
	if s.next != nilPage {
		c.slots[s.next].prev = s.prev
	} else {
		c.tail = s.prev
	}
	s.prev, s.next = nilPage, nilPage
}

func (c *PageCache) moveToFront(p int32) {
	if c.head == p {
		return
	}
	c.unlink(p)
	c.pushFront(p)
}

// CheckConsistency validates the cache's internal structure: the LRU list
// and the slot table must describe the same set of resident pages, the list
// links must be well formed, and the capacity bound must hold. It returns
// the first inconsistency found, or nil. Invariant checks and tests only.
func (c *PageCache) CheckConsistency() error {
	n := 0
	prev := nilPage
	for p := c.head; p != nilPage; p = c.slots[p].next {
		s := &c.slots[p]
		if s.prev != prev {
			return fmt.Errorf("pagecache: page %d has prev %d, want %d", p, s.prev, prev)
		}
		if s.state == pageAbsent {
			return fmt.Errorf("pagecache: page %d on LRU list but its slot is absent", p)
		}
		n++
		if n > c.resident {
			return fmt.Errorf("pagecache: LRU list longer than resident count (%d) — cycle or leaked node", c.resident)
		}
		prev = p
	}
	if prev != c.tail {
		return fmt.Errorf("pagecache: tail %d does not terminate the LRU list (last node %d)", c.tail, prev)
	}
	if n != c.resident {
		return fmt.Errorf("pagecache: LRU list has %d entries, resident count is %d", n, c.resident)
	}
	total := 0
	for i := range c.slots {
		if c.slots[i].state != pageAbsent {
			total++
		}
	}
	if total != c.resident {
		return fmt.Errorf("pagecache: %d resident slots in table, resident count is %d", total, c.resident)
	}
	if c.capacity > 0 && n > c.capacity {
		return fmt.Errorf("pagecache: %d resident pages exceed capacity %d", n, c.capacity)
	}
	return nil
}

// raStream is one tracked sequential fault stream.
type raStream struct {
	next     int64 // expected next faulting page
	run      int   // consecutive sequential faults observed
	lastUsed int64
}

// noteFault classifies a fault against the tracked streams and reports
// whether readahead covers it (an established stream).
func (c *PageCache) noteFault(page int64) bool {
	c.raClock++
	// Match an existing stream. Gaps up to a readahead window (16 pages,
	// 64 KB at the default page size) stay inside the already-prefetched
	// range, so they continue the stream: kernel readahead windows grow
	// to 128 KB and larger on streaming access.
	for i := range c.streams {
		s := &c.streams[i]
		if s.run > 0 && page >= s.next && page <= s.next+16 {
			s.next = page + 1
			s.run++
			s.lastUsed = c.raClock
			return s.run >= 3
		}
	}
	// Start a new stream in the least recently used slot.
	victim := 0
	for i := range c.streams {
		if c.streams[i].lastUsed < c.streams[victim].lastUsed {
			victim = i
		}
	}
	c.streams[victim] = raStream{next: page + 1, run: 1, lastUsed: c.raClock}
	return false
}
