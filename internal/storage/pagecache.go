package storage

import (
	"fmt"
	"time"
)

// PageCache is an LRU cache of fixed-size pages standing in for the kernel
// page cache (the DR2 DRAM share in the paper's configurations). Misses
// charge a device read; evicting a dirty page charges a device write, and
// pages that stay dirty past the writeback window are flushed the way the
// kernel's dirty-page writeback does — so mutating device-resident data
// keeps paying device writes (the paper's read-modify-write cost, §7.2).
type PageCache struct {
	dev      *Device
	pageSize int
	capacity int // in pages; 0 means unbounded

	// WritebackWindow is the simulated dirty-page lifetime before
	// writeback (0 disables windowed writeback).
	WritebackWindow time.Duration

	entries map[int64]*cacheEntry
	head    *cacheEntry // most recently used
	tail    *cacheEntry // least recently used

	// Readahead state: sequential fault streams amortize device latency
	// over SeqBatch pages, the way OS readahead turns page faults on a
	// streaming mmap into large device reads (the paper's ML workloads
	// reach the device's full 2.9 GB/s this way, §7.1). Several concurrent
	// streams are tracked, as the kernel does per file region: an object
	// walk that alternates between an index array and data arrays forms
	// two interleaved sequential streams.
	streams [8]raStream
	raClock int64

	// Counters.
	Hits             int64
	Faults           int64
	SeqFaults        int64
	Writebacks       int64
	WritebackRetries int64 // injected writeback failures recovered by retry
	Evictions        int64
}

type cacheEntry struct {
	page       int64
	dirty      bool
	dirtySince time.Duration
	prev, next *cacheEntry
}

// NewPageCache builds a cache of capacityPages pages of pageSize bytes over
// dev. A capacity of 0 means the cache never evicts.
func NewPageCache(dev *Device, pageSize, capacityPages int) *PageCache {
	return &PageCache{
		dev:             dev,
		pageSize:        pageSize,
		capacity:        capacityPages,
		WritebackWindow: 200 * time.Microsecond,
		entries:         make(map[int64]*cacheEntry),
	}
}

// PageSize returns the page size in bytes.
func (c *PageCache) PageSize() int { return c.pageSize }

// Len returns the number of resident pages.
func (c *PageCache) Len() int { return len(c.entries) }

// Capacity returns the capacity in pages (0 = unbounded).
func (c *PageCache) Capacity() int { return c.capacity }

// Touch faults the page in if needed and marks it most-recently-used.
// If write is true the page is marked dirty.
func (c *PageCache) Touch(page int64, write bool) {
	e, ok := c.entries[page]
	if ok {
		c.Hits++
		c.moveToFront(e)
		// Windowed writeback: a page that has been dirty longer than the
		// writeback window is flushed; further writes re-dirty it and pay
		// again.
		if e.dirty && c.WritebackWindow > 0 {
			if now := c.dev.clock.Now(); now-e.dirtySince >= c.WritebackWindow {
				c.Writebacks++
				c.chargeWriteback(func() { c.dev.WriteAsync(int64(c.pageSize), c.pageSize) })
				e.dirty = false
			}
		}
	} else {
		c.Faults++
		if c.noteFault(page) {
			// Established sequential stream: readahead amortizes the
			// device latency across a batched read.
			c.SeqFaults++
			c.dev.ReadSeqBatched(int64(c.pageSize))
		} else {
			c.dev.Read(int64(c.pageSize))
		}
		e = &cacheEntry{page: page}
		c.entries[page] = e
		c.pushFront(e)
		c.evictIfNeeded()
	}
	if write && !e.dirty {
		e.dirty = true
		e.dirtySince = c.dev.clock.Now()
	}
}

// Resident reports whether the page is currently cached.
func (c *PageCache) Resident(page int64) bool {
	_, ok := c.entries[page]
	return ok
}

// FlushAll writes back every dirty page (msync-style) without evicting.
func (c *PageCache) FlushAll() {
	var dirtyBytes int64
	for _, e := range c.entries {
		if e.dirty {
			e.dirty = false
			c.Writebacks++
			dirtyBytes += int64(c.pageSize)
		}
	}
	if dirtyBytes > 0 {
		c.chargeWriteback(func() { c.dev.WriteSeq(dirtyBytes, c.pageSize) })
	}
}

// chargeWriteback charges one writeback, paying it a second time if the
// fault plane fails the first attempt (the kernel's writeback path retries
// failed dirty-page I/O; the data is still in the cache, so recovery is a
// repeat of the write).
func (c *PageCache) chargeWriteback(charge func()) {
	charge()
	if c.dev.inj.WritebackFailed() {
		c.WritebackRetries++
		charge()
	}
}

// DropAll empties the cache, writing back dirty pages first.
func (c *PageCache) DropAll() {
	c.FlushAll()
	c.entries = make(map[int64]*cacheEntry)
	c.head, c.tail = nil, nil
}

// InvalidateRange drops any cached pages in [firstPage, lastPage] without
// writeback; used when whole H2 regions are reclaimed (their contents are
// dead, so dirty data need not reach the device). Readahead streams whose
// expected next page falls in the range are reset: the stream's run ended
// with the reclaimed region, and letting it linger would misclassify the
// next unrelated fault nearby as sequential.
func (c *PageCache) InvalidateRange(firstPage, lastPage int64) {
	if lastPage-firstPage+1 > int64(len(c.entries)) {
		// Region reclaims cover far more pages than are resident; iterate
		// the map instead of probing every page in the range.
		for p, e := range c.entries {
			if p >= firstPage && p <= lastPage {
				c.unlink(e)
				delete(c.entries, p)
			}
		}
	} else {
		for p := firstPage; p <= lastPage; p++ {
			if e, ok := c.entries[p]; ok {
				c.unlink(e)
				delete(c.entries, p)
			}
		}
	}
	for i := range c.streams {
		s := &c.streams[i]
		if s.run > 0 && s.next >= firstPage && s.next <= lastPage {
			*s = raStream{}
		}
	}
}

func (c *PageCache) evictIfNeeded() {
	if c.capacity <= 0 {
		return
	}
	for len(c.entries) > c.capacity {
		victim := c.tail
		if victim == nil {
			return
		}
		if victim.dirty {
			c.Writebacks++
			c.chargeWriteback(func() { c.dev.Write(int64(c.pageSize)) })
		}
		c.Evictions++
		c.unlink(victim)
		delete(c.entries, victim.page)
	}
}

func (c *PageCache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *PageCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *PageCache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// CheckConsistency validates the cache's internal structure: the LRU list
// and the page map must describe the same set of entries, the list links
// must be well formed, and the capacity bound must hold. It returns the
// first inconsistency found, or nil. Invariant checks and tests only.
func (c *PageCache) CheckConsistency() error {
	n := 0
	var prev *cacheEntry
	for e := c.head; e != nil; e = e.next {
		if e.prev != prev {
			return fmt.Errorf("pagecache: entry for page %d has prev %p, want %p", e.page, e.prev, prev)
		}
		got, ok := c.entries[e.page]
		if !ok {
			return fmt.Errorf("pagecache: page %d on LRU list but not in map", e.page)
		}
		if got != e {
			return fmt.Errorf("pagecache: page %d maps to a different entry than the LRU node", e.page)
		}
		n++
		if n > len(c.entries) {
			return fmt.Errorf("pagecache: LRU list longer than map (%d entries) — cycle or leaked node", len(c.entries))
		}
		prev = e
	}
	if prev != c.tail {
		return fmt.Errorf("pagecache: tail %p does not terminate the LRU list (last node %p)", c.tail, prev)
	}
	if n != len(c.entries) {
		return fmt.Errorf("pagecache: LRU list has %d entries, map has %d", n, len(c.entries))
	}
	if c.capacity > 0 && n > c.capacity {
		return fmt.Errorf("pagecache: %d resident pages exceed capacity %d", n, c.capacity)
	}
	return nil
}

// raStream is one tracked sequential fault stream.
type raStream struct {
	next     int64 // expected next faulting page
	run      int   // consecutive sequential faults observed
	lastUsed int64
}

// noteFault classifies a fault against the tracked streams and reports
// whether readahead covers it (an established stream).
func (c *PageCache) noteFault(page int64) bool {
	c.raClock++
	// Match an existing stream. Gaps up to a readahead window (16 pages,
	// 64 KB at the default page size) stay inside the already-prefetched
	// range, so they continue the stream: kernel readahead windows grow
	// to 128 KB and larger on streaming access.
	for i := range c.streams {
		s := &c.streams[i]
		if s.run > 0 && page >= s.next && page <= s.next+16 {
			s.next = page + 1
			s.run++
			s.lastUsed = c.raClock
			return s.run >= 3
		}
	}
	// Start a new stream in the least recently used slot.
	victim := 0
	for i := range c.streams {
		if c.streams[i].lastUsed < c.streams[victim].lastUsed {
			victim = i
		}
	}
	c.streams[victim] = raStream{next: page + 1, run: 1, lastUsed: c.raClock}
	return false
}
