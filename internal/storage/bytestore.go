package storage

// ByteStore is an off-heap blob store over a device: the destination of
// serialized partitions in the Spark-SD and Giraph-OOC baselines. Blobs are
// written sequentially; reads go through a byte-budgeted LRU standing in
// for the share of the kernel page cache the blobs enjoy.
type ByteStore struct {
	dev        *Device
	pageSize   int
	cacheBytes int64 // 0 = unbounded

	blobs  map[BlobID]*blob
	nextID BlobID

	// LRU of cached blobs.
	head, tail  *blob
	cachedBytes int64

	// Counters.
	Hits   int64
	Misses int64
	Puts   int64
}

// BlobID names a stored blob.
type BlobID int64

type blob struct {
	id         BlobID
	size       int64
	cached     bool
	prev, next *blob
}

// NewByteStore builds a store over dev whose reads are cached in up to
// cacheBytes of DRAM (0 = unbounded).
func NewByteStore(dev *Device, cacheBytes int64) *ByteStore {
	return &ByteStore{
		dev:        dev,
		pageSize:   DefaultPageSize,
		cacheBytes: cacheBytes,
		blobs:      make(map[BlobID]*blob),
		nextID:     1,
	}
}

// Put stores a blob of size bytes, charging a sequential device write, and
// returns its id. The freshly written blob is cached.
func (s *ByteStore) Put(size int64) BlobID {
	s.Puts++
	s.dev.WriteSeq(size, s.pageSize)
	b := &blob{id: s.nextID, size: size}
	s.nextID++
	s.blobs[b.id] = b
	s.insertCached(b)
	return b.id
}

// Get charges for reading the blob; a cached blob costs nothing extra.
// It returns the blob size.
func (s *ByteStore) Get(id BlobID) int64 {
	b, ok := s.blobs[id]
	if !ok {
		return 0
	}
	if b.cached {
		s.Hits++
		s.moveToFront(b)
		return b.size
	}
	s.Misses++
	s.dev.ReadSeq(b.size, s.pageSize)
	s.insertCached(b)
	return b.size
}

// Delete removes a blob (space reclaimed instantly; SSD TRIM is free).
func (s *ByteStore) Delete(id BlobID) {
	b, ok := s.blobs[id]
	if !ok {
		return
	}
	if b.cached {
		s.unlink(b)
		s.cachedBytes -= b.size
	}
	delete(s.blobs, id)
}

// Size returns the stored size of blob id (0 if unknown).
func (s *ByteStore) Size(id BlobID) int64 {
	if b, ok := s.blobs[id]; ok {
		return b.size
	}
	return 0
}

// TotalBytes returns the total bytes stored across all blobs.
func (s *ByteStore) TotalBytes() int64 {
	var t int64
	for _, b := range s.blobs {
		t += b.size
	}
	return t
}

func (s *ByteStore) insertCached(b *blob) {
	if b.cached {
		s.moveToFront(b)
		return
	}
	b.cached = true
	s.cachedBytes += b.size
	s.pushFront(b)
	if s.cacheBytes > 0 {
		for s.cachedBytes > s.cacheBytes && s.tail != nil && s.tail != b {
			victim := s.tail
			victim.cached = false
			s.cachedBytes -= victim.size
			s.unlink(victim)
		}
	}
}

func (s *ByteStore) pushFront(b *blob) {
	b.prev = nil
	b.next = s.head
	if s.head != nil {
		s.head.prev = b
	}
	s.head = b
	if s.tail == nil {
		s.tail = b
	}
}

func (s *ByteStore) unlink(b *blob) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		s.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		s.tail = b.prev
	}
	b.prev, b.next = nil, nil
}

func (s *ByteStore) moveToFront(b *blob) {
	if s.head == b {
		return
	}
	s.unlink(b)
	s.pushFront(b)
}
