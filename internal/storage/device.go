package storage

import (
	"time"

	"github.com/carv-repro/teraheap-go/internal/fault"
	"github.com/carv-repro/teraheap-go/internal/simclock"
)

// Stats counts device traffic. The paper reports read/write operation and
// byte counts when comparing TeraHeap against Spark-MO and Panthera (§7.5).
type Stats struct {
	ReadOps      int64
	WriteOps     int64
	BytesRead    int64
	BytesWritten int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.ReadOps += other.ReadOps
	s.WriteOps += other.WriteOps
	s.BytesRead += other.BytesRead
	s.BytesWritten += other.BytesWritten
}

// Device is a simulated storage or memory device. All accesses charge
// virtual time to the clock's ambient category, so a page fault taken
// during major GC bills Major GC while one taken by a mutator thread
// bills Other — exactly how the paper attributes I/O wait.
type Device struct {
	kind  Kind
	model CostModel
	clock *simclock.Clock
	stats Stats

	// asyncOverlap in [0,1] is the fraction of write cost hidden by
	// explicit asynchronous I/O (used by TeraHeap's promotion buffers).
	asyncOverlap float64

	// inj, when non-nil, degrades and fails operations per a fault plan.
	// Every charge is routed through it; a nil injector passes costs
	// through unchanged, so fault-free runs stay byte-identical.
	inj *fault.Injector

	// wb is the asynchronous writeback queue (see writeback.go). Depth 0
	// (the default) disables it, keeping the flat asyncOverlap model.
	wb writebackQueue
}

// NewDevice builds a device of the given kind with its default cost model.
func NewDevice(kind Kind, clock *simclock.Clock) *Device {
	var m CostModel
	switch kind {
	case NVMeSSD:
		m = PM983Model()
	case NVM:
		m = OptaneModel()
	default:
		m = DRAMModel()
	}
	return &Device{kind: kind, model: m, clock: clock, asyncOverlap: 0.6}
}

// NewStripedDevice builds a device whose bandwidth scales with the number
// of striped units (e.g. several NVMe SSDs behind software RAID-0), the
// configuration §7.1 suggests for the bandwidth-bound ML workloads.
func NewStripedDevice(kind Kind, stripes int, clock *simclock.Clock) *Device {
	if stripes < 1 {
		stripes = 1
	}
	d := NewDevice(kind, clock)
	d.model.ReadBandwidth *= int64(stripes)
	d.model.WriteBandwidth *= int64(stripes)
	// Requests spread across units; per-unit queues shorten a little.
	d.model.SeqBatch *= stripes
	return d
}

// NewDeviceWithModel builds a device with an explicit cost model.
func NewDeviceWithModel(kind Kind, model CostModel, clock *simclock.Clock) *Device {
	return &Device{kind: kind, model: model, clock: clock, asyncOverlap: 0.6}
}

// Kind returns the device technology.
func (d *Device) Kind() Kind { return d.kind }

// Model returns the device cost model.
func (d *Device) Model() CostModel { return d.model }

// Stats returns a copy of the traffic counters.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats zeroes the traffic counters.
func (d *Device) ResetStats() { d.stats = Stats{} }

// Read charges a random read of n bytes.
func (d *Device) Read(n int64) {
	if n <= 0 {
		return
	}
	d.stats.ReadOps++
	d.stats.BytesRead += n
	d.clock.ChargeAmbient(d.inj.DeviceOp(false, d.model.readCost(n)))
}

// Write charges a random write of n bytes.
func (d *Device) Write(n int64) {
	if n <= 0 {
		return
	}
	d.stats.WriteOps++
	d.stats.BytesWritten += n
	d.clock.ChargeAmbient(d.inj.DeviceOp(true, d.model.writeCost(n)))
}

// ReadSeqBatched charges one page of an established sequential stream:
// the operation latency is amortized over the readahead window while the
// bandwidth cost stays per byte.
func (d *Device) ReadSeqBatched(n int64) {
	if n <= 0 {
		return
	}
	d.stats.ReadOps++
	d.stats.BytesRead += n
	batch := d.model.SeqBatch
	if batch < 1 {
		batch = 1
	}
	cost := d.model.ReadLatency/time.Duration(batch) + bwCost(n, d.model.ReadBandwidth)
	d.clock.ChargeAmbient(d.inj.DeviceOp(false, cost))
}

// ReadSeq charges a sequential streaming read of n bytes.
func (d *Device) ReadSeq(n int64, pageSize int) {
	if n <= 0 {
		return
	}
	d.stats.ReadOps++
	d.stats.BytesRead += n
	d.clock.ChargeAmbient(d.inj.DeviceOp(false, d.model.seqReadCost(n, pageSize)))
}

// WriteSeq charges a sequential streaming write of n bytes.
func (d *Device) WriteSeq(n int64, pageSize int) {
	if n <= 0 {
		return
	}
	d.stats.WriteOps++
	d.stats.BytesWritten += n
	d.clock.ChargeAmbient(d.inj.DeviceOp(true, d.model.seqWriteCost(n, pageSize)))
}

// WriteAsync charges a batched asynchronous write. With the writeback
// queue disabled (WritebackDepth 0, the default) the overlap fraction of
// the cost is hidden behind computation via the flat asyncOverlap discount
// (the paper's explicit async I/O for H2 promotion buffers, §3.2). With a
// queue depth set, the write is instead submitted to the writeback queue
// and its completion is charged when the queue drains at the next
// safepoint — overlap then emerges from how much virtual time the mutator
// burns before that drain, not from a fixed discount.
func (d *Device) WriteAsync(n int64, pageSize int) {
	if n <= 0 {
		return
	}
	d.stats.WriteOps++
	d.stats.BytesWritten += n
	cost := d.model.seqWriteCost(n, pageSize)
	if d.wb.depth > 0 {
		d.submitWriteback(d.inj.DeviceOp(true, cost))
		return
	}
	cost = time.Duration(float64(cost) * (1 - d.asyncOverlap))
	d.clock.ChargeAmbient(d.inj.DeviceOp(true, cost))
}

// AccountRead records read traffic without charging time; used by callers
// that price access themselves (e.g. amortized byte-addressable NVM).
// Like every charged path, n <= 0 records nothing.
func (d *Device) AccountRead(n int64) {
	if n <= 0 {
		return
	}
	d.stats.ReadOps++
	d.stats.BytesRead += n
}

// AccountWrite records write traffic without charging time.
// Like every charged path, n <= 0 records nothing.
func (d *Device) AccountWrite(n int64) {
	if n <= 0 {
		return
	}
	d.stats.WriteOps++
	d.stats.BytesWritten += n
}

// SetFaultInjector attaches a fault injector to the device; all subsequent
// operation costs route through it. A nil injector restores fault-free
// behavior.
func (d *Device) SetFaultInjector(in *fault.Injector) { d.inj = in }

// FaultInjector returns the attached fault injector (nil when fault-free).
func (d *Device) FaultInjector() *fault.Injector { return d.inj }

// SetAsyncOverlap adjusts the fraction of asynchronous write cost hidden by
// overlap; values outside [0,1] are clamped.
func (d *Device) SetAsyncOverlap(f float64) {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	d.asyncOverlap = f
}
