package storage

// MappedFile simulates a file-backed memory mapping: a word-addressable
// array whose pages live on a device and are cached in DRAM by a PageCache.
// TeraHeap maps H2 through this (the paper uses mmap or HugeMap), and the
// Spark-MO baseline maps its entire heap through one (NVM memory mode).
type MappedFile struct {
	dev   *Device
	cache *PageCache
	words []uint64
	// pageWords is the page size in 8-byte words.
	pageWords int64
}

// DefaultPageSize is the base page size (4 KB).
const DefaultPageSize = 4 * KB

// HugePageSize is the optional huge-page size (2 MB), used by TeraHeap for
// Spark ML workloads to reduce page-fault frequency (§6, HugeMap).
const HugePageSize = 2 * MB

// NewMappedFile maps sizeBytes of device-backed memory with the given page
// size and DRAM cache budget (in bytes; 0 = unbounded).
func NewMappedFile(dev *Device, sizeBytes int64, pageSize int, cacheBytes int64) *MappedFile {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	capacityPages := 0
	if cacheBytes > 0 {
		capacityPages = int(cacheBytes / int64(pageSize))
		if capacityPages < 1 {
			capacityPages = 1
		}
	}
	return &MappedFile{
		dev:       dev,
		cache:     NewPageCache(dev, pageSize, capacityPages),
		words:     make([]uint64, sizeBytes/8),
		pageWords: int64(pageSize) / 8,
	}
}

// SizeWords returns the mapping size in 8-byte words.
func (m *MappedFile) SizeWords() int64 { return int64(len(m.words)) }

// Device returns the backing device.
func (m *MappedFile) Device() *Device { return m.dev }

// Cache returns the simulated page cache.
func (m *MappedFile) Cache() *PageCache { return m.cache }

// Load reads the word at index w, faulting its page in if necessary.
func (m *MappedFile) Load(w int64) uint64 {
	m.cache.Touch(w/m.pageWords, false)
	return m.words[w]
}

// Store writes the word at index w, dirtying its page.
func (m *MappedFile) Store(w int64, v uint64) {
	m.cache.Touch(w/m.pageWords, true)
	m.words[w] = v
}

// StageWords copies src into the mapping at word index w without any
// device charge, marking the touched pages resident and clean. It is the
// staging half of TeraHeap's promotion buffers: the cost is charged once
// per buffer flush via ChargeAsyncWrite.
func (m *MappedFile) StageWords(w int64, src []uint64) {
	copy(m.words[w:], src)
	first := w / m.pageWords
	last := (w + int64(len(src)) - 1) / m.pageWords
	for p := first; p <= last; p++ {
		if !m.cache.Resident(p) {
			m.cache.insertClean(p)
		}
	}
}

// ChargeAsyncWrite bills one batched asynchronous device write of n bytes
// (a promotion-buffer flush).
func (m *MappedFile) ChargeAsyncWrite(n int64) {
	m.dev.WriteAsync(n, m.cache.PageSize())
}

// BulkStore stages src at word index w and charges its asynchronous write
// immediately; convenience for single-shot batched writes.
func (m *MappedFile) BulkStore(w int64, src []uint64) {
	m.StageWords(w, src)
	m.ChargeAsyncWrite(int64(len(src)) * 8)
}

// insertClean adds a page as resident and clean without device traffic.
func (c *PageCache) insertClean(page int64) {
	s := c.slot(page)
	if s.state != pageAbsent {
		return
	}
	s.state = pageClean
	c.pushFront(int32(page))
	c.resident++
	c.evictIfNeeded()
}

// InvalidateWords drops cached pages covering [w, w+n) without writeback;
// used when whole regions are reclaimed.
func (m *MappedFile) InvalidateWords(w, n int64) {
	if n <= 0 {
		return
	}
	m.cache.InvalidateRange(w/m.pageWords, (w+n-1)/m.pageWords)
}

// PeekWord reads the word without any fault simulation or cost; for use by
// invariant checks and tests only.
func (m *MappedFile) PeekWord(w int64) uint64 { return m.words[w] }

// SumWords folds mix over the stored words [w, w+n) and returns the XOR of
// the results, without touching the page cache or charging simulated time.
// This is the scrubber's read path: it models the background media scan a
// real device performs off the host's clock, so enabling scrubbing cannot
// perturb a run's simulated results.
func (m *MappedFile) SumWords(w, n int64, mix func(word int64, v uint64) uint64) uint64 {
	var sum uint64
	for i, v := range m.words[w : w+n] {
		sum ^= mix(w+int64(i), v)
	}
	return sum
}

// ZeroWords clears [w, w+n) without device cost: used when whole regions
// are reclaimed, so that stale bytes from a region's previous life are
// never mistaken for object headers after reuse.
func (m *MappedFile) ZeroWords(w, n int64) {
	clear(m.words[w : w+n])
}
