package storage

import "time"

// writebackQueue models a device's asynchronous writeback channel in
// virtual time. Submissions (promotion-buffer flushes, page-cache
// writeback) enqueue a batch whose service starts when the channel goes
// idle and costs its full sequential-write time; nothing is charged to the
// submitter unless the queue is saturated. The charge lands later, when
// the queue drains at a safepoint: whatever service time extends past the
// drain point is the part the mutator failed to overlap, and only that is
// billed. A deep backlog behind a fast mutator costs nothing; a backlog
// hitting an immediate safepoint costs its full service time — exactly the
// overlap behavior the flat asyncOverlap discount approximated with a
// constant.
//
// The queue is virtual-completion-time bookkeeping over the session's
// single-threaded clock: no goroutines, so same-seed runs stay
// byte-identical at every depth.
type writebackQueue struct {
	// depth caps in-flight batches; 0 disables the queue.
	depth int
	// freeAt is the virtual time the writeback channel goes idle.
	freeAt time.Duration
	// done holds the completion times of in-flight batches, ascending;
	// head indexes the oldest so retiring batches never re-slices the
	// front of the backing array.
	done []time.Duration
	head int

	stats WritebackStats
}

// WritebackStats counts writeback-queue activity.
type WritebackStats struct {
	// Batches is the number of submissions accepted by the queue.
	Batches int64
	// Stalls counts submissions that found the queue full and had to wait
	// for the oldest in-flight batch; StallNS is the total wait charged to
	// the submitters.
	Stalls  int64
	StallNS int64
	// Drains counts safepoint drains; DrainNS is the total residual
	// service time they charged (the unhidden part of the async writes).
	Drains  int64
	DrainNS int64
}

// pending returns the number of in-flight batches.
func (q *writebackQueue) pending() int { return len(q.done) - q.head }

// SetWritebackDepth sets the in-flight batch cap of the device's
// asynchronous writeback queue. Depth 0 (the default) disables the queue,
// restoring the flat asyncOverlap discount for WriteAsync; negative values
// are treated as 0. Changing the depth mid-run with batches in flight is
// not supported — callers configure it at session construction.
func (d *Device) SetWritebackDepth(depth int) {
	if depth < 0 {
		depth = 0
	}
	d.wb.depth = depth
}

// WritebackDepth returns the configured in-flight batch cap (0 = queue
// disabled).
func (d *Device) WritebackDepth() int { return d.wb.depth }

// WritebackPending returns the number of in-flight writeback batches.
func (d *Device) WritebackPending() int { return d.wb.pending() }

// WritebackStats returns a copy of the writeback-queue counters.
func (d *Device) WritebackStats() WritebackStats { return d.wb.stats }

// submitWriteback enqueues one batch of already fault-adjusted service
// cost. When the queue is at its depth cap the submitter blocks (ambient
// charge) until the oldest batch completes, modeling the bounded
// request-queue backpressure of a real device.
func (d *Device) submitWriteback(cost time.Duration) {
	q := &d.wb
	now := d.clock.Now()
	for q.pending() >= q.depth {
		oldest := q.done[q.head]
		q.head++
		if oldest > now {
			wait := oldest - now
			d.clock.ChargeAmbient(wait)
			q.stats.Stalls++
			q.stats.StallNS += int64(wait)
			now = oldest
		}
	}
	if q.head == len(q.done) {
		// Queue empty: recycle the backing array.
		q.done = q.done[:0]
		q.head = 0
	}
	start := now
	if q.freeAt > start {
		start = q.freeAt
	}
	q.freeAt = start + cost
	q.done = append(q.done, q.freeAt)
	q.stats.Batches++
}

// DrainWriteback retires every in-flight writeback batch, charging the
// residual service time — the part not hidden behind virtual time already
// elapsed since submission — to the clock's ambient category. Collectors
// call it at safepoints (GC entry, end of run) so async writes complete
// before a pause begins. It returns the charged wait (0 when the queue is
// empty or fully overlapped), and is a no-op when the queue is disabled.
func (d *Device) DrainWriteback() time.Duration {
	q := &d.wb
	if q.pending() == 0 {
		return 0
	}
	q.done = q.done[:0]
	q.head = 0
	now := d.clock.Now()
	q.stats.Drains++
	if q.freeAt <= now {
		return 0
	}
	wait := q.freeAt - now
	d.clock.ChargeAmbient(wait)
	q.stats.DrainNS += int64(wait)
	return wait
}
