package storage_test

import (
	"testing"

	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
)

func benchCache(capacity int) *storage.PageCache {
	clock := simclock.New()
	dev := storage.NewDevice(storage.NVMeSSD, clock)
	return storage.NewPageCache(dev, storage.DefaultPageSize, capacity)
}

func BenchmarkPageCacheTouchHit(b *testing.B) {
	c := benchCache(64)
	for p := int64(0); p < 64; p++ {
		c.Touch(p, false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Touch(int64(i)&63, false)
	}
}

func BenchmarkPageCacheTouchMissEvict(b *testing.B) {
	c := benchCache(32)
	for p := int64(0); p < 64; p++ {
		c.Touch(p, false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	p := int64(0)
	for i := 0; i < b.N; i++ {
		c.Touch(p&63, false)
		p += 33
	}
}

func BenchmarkPageCacheInvalidateRange(b *testing.B) {
	c := benchCache(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := int64(0); p < 8; p++ {
			c.Touch(p, true)
		}
		c.InvalidateRange(0, 7)
	}
}

// TestPageCacheSteadyStateAllocFree pins the page-slot table design: once
// the slot table has grown to cover the touched page range, hits, misses
// with eviction, and range invalidation all run without allocating.
func TestPageCacheSteadyStateAllocFree(t *testing.T) {
	hit := benchCache(64)
	for p := int64(0); p < 64; p++ {
		hit.Touch(p, false)
	}
	i := int64(0)
	if got := testing.AllocsPerRun(100, func() {
		hit.Touch(i&63, false)
		i++
	}); got != 0 {
		t.Errorf("touch hit: %v allocs/op, want 0", got)
	}

	miss := benchCache(32)
	for p := int64(0); p < 64; p++ {
		miss.Touch(p, false)
	}
	p := int64(0)
	if got := testing.AllocsPerRun(100, func() {
		miss.Touch(p&63, false)
		p += 33
	}); got != 0 {
		t.Errorf("touch miss+evict: %v allocs/op, want 0", got)
	}

	inv := benchCache(64)
	if got := testing.AllocsPerRun(100, func() {
		for q := int64(0); q < 8; q++ {
			inv.Touch(q, true)
		}
		inv.InvalidateRange(0, 7)
	}); got != 0 {
		t.Errorf("touch+invalidate: %v allocs/op, want 0", got)
	}
}
