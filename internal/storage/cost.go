// Package storage simulates the memory/storage hierarchy underneath the
// TeraHeap runtime: DRAM, block-addressable NVMe SSDs, and byte-addressable
// NVM. Devices charge virtual time to the simulation clock using simple
// latency+bandwidth cost models, and MappedFile reproduces the behaviour of
// file-backed mmap (page faults, an LRU page cache standing in for the
// kernel page cache, dirty-page writeback, optional huge pages).
//
// The absolute constants are derived from the devices in the paper's
// Table 1 (Samsung PM983 NVMe SSD, Intel Optane DC Persistent Memory); the
// experiments only depend on their relative ordering (DRAM << NVM << NVMe).
package storage

import "time"

// Kind identifies a device technology.
type Kind int

// Supported device technologies.
const (
	DRAM Kind = iota
	NVMeSSD
	NVM
)

// String returns a short device-kind name.
func (k Kind) String() string {
	switch k {
	case DRAM:
		return "DRAM"
	case NVMeSSD:
		return "NVMe SSD"
	case NVM:
		return "NVM"
	}
	return "unknown"
}

// CostModel prices device accesses. An access of n bytes costs
// latency + n/bandwidth. Sequential streaming accesses of many pages
// amortize the latency over SeqBatch pages.
type CostModel struct {
	ReadLatency    time.Duration // fixed per read operation
	WriteLatency   time.Duration // fixed per write operation
	ReadBandwidth  int64         // bytes per second
	WriteBandwidth int64         // bytes per second
	SeqBatch       int           // pages per amortized sequential op (>=1)
}

// Common byte-size units.
const (
	KB = 1 << 10
	MB = 1 << 20
	GB = 1 << 30
	TB = 1 << 40
)

// PM983Model approximates a Samsung PM983 PCIe NVMe SSD (Table 1):
// ~80us 4KB random read, ~30us write, ~2.9GB/s peak read (the number the
// paper measures for the ML streaming workloads), ~1.4GB/s write.
func PM983Model() CostModel {
	return CostModel{
		ReadLatency:    80 * time.Microsecond,
		WriteLatency:   30 * time.Microsecond,
		ReadBandwidth:  2_900 * MB,
		WriteBandwidth: 1_400 * MB,
		SeqBatch:       32,
	}
}

// OptaneModel approximates Intel Optane DC Persistent Memory in App Direct
// mode: ~300ns load latency, ~100ns store (write-buffered), ~6.6GB/s read
// and ~2.3GB/s write per interleaved set.
func OptaneModel() CostModel {
	return CostModel{
		ReadLatency:    300 * time.Nanosecond,
		WriteLatency:   100 * time.Nanosecond,
		ReadBandwidth:  6_600 * MB,
		WriteBandwidth: 2_300 * MB,
		SeqBatch:       8,
	}
}

// DRAMModel approximates DDR4 DRAM. DRAM access cost is folded into the
// mutator compute constants elsewhere, so the model is only used when DRAM
// is explicitly modelled as a device (e.g. as the cache in memory mode).
func DRAMModel() CostModel {
	return CostModel{
		ReadLatency:    80 * time.Nanosecond,
		WriteLatency:   80 * time.Nanosecond,
		ReadBandwidth:  90 * GB,
		WriteBandwidth: 90 * GB,
		SeqBatch:       1,
	}
}

// readCost prices a single read of n bytes.
func (m CostModel) readCost(n int64) time.Duration {
	return m.ReadLatency + bwCost(n, m.ReadBandwidth)
}

// writeCost prices a single write of n bytes.
func (m CostModel) writeCost(n int64) time.Duration {
	return m.WriteLatency + bwCost(n, m.WriteBandwidth)
}

// seqReadCost prices a streaming read of n bytes issued in large requests:
// one latency per SeqBatch pages of pageSize bytes plus bandwidth time.
func (m CostModel) seqReadCost(n int64, pageSize int) time.Duration {
	return seqCost(n, pageSize, m.SeqBatch, m.ReadLatency, m.ReadBandwidth)
}

// seqWriteCost is the write-side analogue of seqReadCost.
func (m CostModel) seqWriteCost(n int64, pageSize int) time.Duration {
	return seqCost(n, pageSize, m.SeqBatch, m.WriteLatency, m.WriteBandwidth)
}

func seqCost(n int64, pageSize, batch int, lat time.Duration, bw int64) time.Duration {
	if n <= 0 {
		return 0
	}
	if batch < 1 {
		batch = 1
	}
	pages := (n + int64(pageSize) - 1) / int64(pageSize)
	ops := (pages + int64(batch) - 1) / int64(batch)
	return time.Duration(ops)*lat + bwCost(n, bw)
}

func bwCost(n, bw int64) time.Duration {
	if bw <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / float64(bw) * float64(time.Second))
}
