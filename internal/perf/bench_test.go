package perf

import (
	"testing"
)

// BenchmarkMicros runs every BENCH microbenchmark as a sub-benchmark, so
// `go test -bench . ./internal/perf/` reproduces the numbers the bench
// subcommand records.
func BenchmarkMicros(b *testing.B) {
	for _, m := range Micros() {
		b.Run(m.Name, func(b *testing.B) {
			op := m.Setup()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op()
			}
		})
	}
}

// TestMicroAllocPins locks in the steady-state allocation counts of every
// hot loop. The scavenge and card-scan zeros are acceptance criteria: a
// regression here means a per-cycle allocation crept back into the
// collector's inner loops.
func TestMicroAllocPins(t *testing.T) {
	pins := map[string]float64{
		"pagecache_touch_hit":        0,
		"pagecache_touch_miss_evict": 0,
		"pagecache_invalidate":       0,
		"rootset_create_release":     1, // the Handle object itself
		"minor_gc_scavenge":          0,
		"minor_gc_scavenge_gang4":    0,
		"minor_gc_scavenge_ng2c":     0,
		"card_table_scan":            0,
		"writeback_submit_drain":     0,
	}
	for _, m := range Micros() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			want, ok := pins[m.Name]
			if !ok {
				t.Fatalf("no alloc pin registered for %q", m.Name)
			}
			op := m.Setup()
			if got := testing.AllocsPerRun(100, op); got > want {
				t.Errorf("%s: %v allocs/op, pinned at %v", m.Name, got, want)
			}
		})
	}
}

// TestMicrosHaveUniqueStableNames guards the BENCH schema key space.
func TestMicrosHaveUniqueStableNames(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range Micros() {
		if m.Name == "" || seen[m.Name] {
			t.Fatalf("duplicate or empty micro name %q", m.Name)
		}
		seen[m.Name] = true
	}
	if want := 9; len(seen) != want {
		t.Fatalf("expected %d micros, got %d", want, len(seen))
	}
}
