// Package perf defines the persistent performance trajectory of the
// simulator: the BENCH_<rev>.json schema written by the `teraheap-bench
// bench` subcommand, and the diff mode that compares two reports and
// flags regressions.
//
// Everything recorded here is host-side speed — wall-clock per figure,
// ns/op and allocs/op for the hot-loop microbenchmarks. Simulated time is
// deliberately absent: simulated costs are part of the model's output
// (byte-identical across host-speed PRs), not of its performance.
//
// JSON field order is the struct declaration order below; tests pin it so
// checked-in baselines diff cleanly line-by-line.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Schema is the current BENCH file schema version.
const Schema = 1

// Figure is the wall-clock time of one experiment of the `all` suite.
type Figure struct {
	Name   string `json:"name"`
	WallNS int64  `json:"wall_ns"`
}

// Benchmark is one hot-loop microbenchmark result.
type Benchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is one BENCH_<rev>.json file: the performance of one revision on
// one host.
type Report struct {
	Schema     int         `json:"schema"`
	Rev        string      `json:"rev"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Jobs       int         `json:"jobs"`
	TotalNS    int64       `json:"total_ns"`
	Figures    []Figure    `json:"figures"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Encode renders the report as indented JSON with a trailing newline.
func (r *Report) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Decode parses a BENCH report and validates its schema version.
func Decode(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("perf: unsupported schema %d (want %d)", r.Schema, Schema)
	}
	return &r, nil
}

// ReadFile loads a BENCH_<rev>.json file.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// WriteFile writes the report to path.
func (r *Report) WriteFile(path string) error {
	b, err := r.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Regression is one metric of the new report that got worse than the old
// one past the comparison's threshold.
type Regression struct {
	Kind  string  `json:"kind"` // "total-wall", "figure-wall", "bench-ns", "bench-allocs"
	Name  string  `json:"name"`
	Old   float64 `json:"old"`
	New   float64 `json:"new"`
	Ratio float64 `json:"ratio"` // new/old
}

// Diff compares cur against old and returns every regression. Wall-clock
// and ns/op metrics regress when new > old*(1+threshold) — they are noisy,
// so small increases are tolerated. allocs/op regresses on ANY increase:
// allocation counts are deterministic, and the zero-alloc steady state of
// the scavenge and card-scan loops must stay locked in. Metrics present
// in only one report are ignored (benchmarks come and go across PRs).
func Diff(old, cur *Report, threshold float64) []Regression {
	var regs []Regression
	worse := func(o, n float64) bool { return o > 0 && n > o*(1+threshold) }

	if worse(float64(old.TotalNS), float64(cur.TotalNS)) {
		regs = append(regs, Regression{Kind: "total-wall", Name: "all",
			Old: float64(old.TotalNS), New: float64(cur.TotalNS),
			Ratio: float64(cur.TotalNS) / float64(old.TotalNS)})
	}

	oldFig := make(map[string]Figure, len(old.Figures))
	for _, f := range old.Figures {
		oldFig[f.Name] = f
	}
	for _, f := range cur.Figures {
		of, ok := oldFig[f.Name]
		if !ok {
			continue
		}
		if worse(float64(of.WallNS), float64(f.WallNS)) {
			regs = append(regs, Regression{Kind: "figure-wall", Name: f.Name,
				Old: float64(of.WallNS), New: float64(f.WallNS),
				Ratio: float64(f.WallNS) / float64(of.WallNS)})
		}
	}

	oldBench := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldBench[b.Name] = b
	}
	for _, b := range cur.Benchmarks {
		ob, ok := oldBench[b.Name]
		if !ok {
			continue
		}
		if worse(ob.NsPerOp, b.NsPerOp) {
			regs = append(regs, Regression{Kind: "bench-ns", Name: b.Name,
				Old: ob.NsPerOp, New: b.NsPerOp, Ratio: b.NsPerOp / ob.NsPerOp})
		}
		if b.AllocsPerOp > ob.AllocsPerOp {
			ratio := 0.0
			if ob.AllocsPerOp > 0 {
				ratio = b.AllocsPerOp / ob.AllocsPerOp
			}
			regs = append(regs, Regression{Kind: "bench-allocs", Name: b.Name,
				Old: ob.AllocsPerOp, New: b.AllocsPerOp, Ratio: ratio})
		}
	}
	return regs
}

// FormatRegressions renders a diff result for humans; empty input yields a
// single "no regressions" line.
func FormatRegressions(regs []Regression, threshold float64) string {
	if len(regs) == 0 {
		return fmt.Sprintf("perf diff: no regressions (threshold %.0f%%)\n", threshold*100)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "perf diff: %d regression(s) past %.0f%% threshold\n", len(regs), threshold*100)
	for _, r := range regs {
		fmt.Fprintf(&b, "  %-12s %-28s %14.1f -> %14.1f (%.2fx)\n", r.Kind, r.Name, r.Old, r.New, r.Ratio)
	}
	return b.String()
}
