package perf

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A trajectory directory is the persisted per-SHA performance history:
// one BENCH report per append, named NNNN_<rev>.json with a zero-padded
// monotone sequence number, so lexicographic filename order is append
// order and the latest point is always discoverable without an index
// file. CI restores the directory from a cache keyed by commit, appends
// the current run's point, and diffs it against the previous one.

// trajectoryEntries returns the trajectory files in append order.
func trajectoryEntries(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		// Only sequence-numbered points participate; stray files (README,
		// hand-copied baselines) are ignored.
		if len(e.Name()) < 6 || e.Name()[4] != '_' {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// sanitizeRev keeps revision labels filename-safe.
func sanitizeRev(rev string) string {
	var sb strings.Builder
	for _, r := range rev {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '.':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "unknown"
	}
	return sb.String()
}

// AppendToTrajectory persists r as the next point of the trajectory in
// dir (created if missing) and returns the written path.
func AppendToTrajectory(dir string, r *Report) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("perf: trajectory: %w", err)
	}
	names, err := trajectoryEntries(dir)
	if err != nil {
		return "", fmt.Errorf("perf: trajectory: %w", err)
	}
	seq := 1
	if len(names) > 0 {
		last := names[len(names)-1]
		if _, err := fmt.Sscanf(last[:4], "%d", &seq); err == nil {
			seq++
		} else {
			seq = len(names) + 1
		}
	}
	if seq > 9999 {
		return "", fmt.Errorf("perf: trajectory: sequence space exhausted (%d points)", len(names))
	}
	path := filepath.Join(dir, fmt.Sprintf("%04d_%s.json", seq, sanitizeRev(r.Rev)))
	if err := r.WriteFile(path); err != nil {
		return "", fmt.Errorf("perf: trajectory: %w", err)
	}
	return path, nil
}

// LatestReport loads the most recent trajectory point in dir, returning
// (nil, "", nil) for an empty or missing trajectory.
func LatestReport(dir string) (*Report, string, error) {
	names, err := trajectoryEntries(dir)
	if err != nil {
		return nil, "", fmt.Errorf("perf: trajectory: %w", err)
	}
	if len(names) == 0 {
		return nil, "", nil
	}
	path := filepath.Join(dir, names[len(names)-1])
	r, err := ReadFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("perf: trajectory: %w", err)
	}
	return r, path, nil
}
