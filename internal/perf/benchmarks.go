package perf

import (
	"testing"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/placement"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// Micro is one hot-loop microbenchmark: Setup builds the scenario once
// and returns the steady-state operation. The op must be safe to call
// any number of times (AllocsPerRun and testing.Benchmark both drive it).
type Micro struct {
	Name  string
	Setup func() func()
}

// Micros returns the hot-loop microbenchmarks recorded in every BENCH
// report, in stable order. The scavenge and card-scan entries are the
// zero-alloc pins of the acceptance criteria; their ops include the
// stats-history reset so the measured loop is pure steady state.
func Micros() []Micro {
	return []Micro{
		{Name: "pagecache_touch_hit", Setup: setupPageCacheHit},
		{Name: "pagecache_touch_miss_evict", Setup: setupPageCacheMiss},
		{Name: "pagecache_invalidate", Setup: setupPageCacheInvalidate},
		{Name: "rootset_create_release", Setup: setupRootSet},
		{Name: "minor_gc_scavenge", Setup: setupScavenge},
		{Name: "minor_gc_scavenge_gang4", Setup: setupScavengeGang4},
		{Name: "minor_gc_scavenge_ng2c", Setup: setupScavengeNG2C},
		{Name: "card_table_scan", Setup: setupCardScan},
		{Name: "writeback_submit_drain", Setup: setupWriteback},
	}
}

// RunMicros measures every microbenchmark: ns/op via testing.Benchmark,
// allocs/op via testing.AllocsPerRun (exact, not sampled).
func RunMicros() []Benchmark {
	out := make([]Benchmark, 0, len(Micros()))
	for _, m := range Micros() {
		op := m.Setup()
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				op()
			}
		})
		allocs := testing.AllocsPerRun(100, op)
		out = append(out, Benchmark{
			Name:        m.Name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: allocs,
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
	}
	return out
}

// setupPageCacheHit: a warm cache touched round-robin, every access a hit.
func setupPageCacheHit() func() {
	clock := simclock.New()
	dev := storage.NewDevice(storage.NVMeSSD, clock)
	c := storage.NewPageCache(dev, storage.DefaultPageSize, 64)
	for p := int64(0); p < 64; p++ {
		c.Touch(p, false)
	}
	i := int64(0)
	return func() {
		c.Touch(i&63, false)
		i++
	}
}

// setupPageCacheMiss: a 32-page cache walked over 64 pages, so every
// access misses, inserts, and evicts the LRU page.
func setupPageCacheMiss() func() {
	clock := simclock.New()
	dev := storage.NewDevice(storage.NVMeSSD, clock)
	c := storage.NewPageCache(dev, storage.DefaultPageSize, 32)
	for p := int64(0); p < 64; p++ { // pre-grow the slot table
		c.Touch(p, false)
	}
	i := int64(0)
	return func() {
		c.Touch(i&63, false)
		i += 33 // stride coprime to 64, always outside the resident window
	}
}

// setupPageCacheInvalidate: touch a run of pages, then invalidate it.
func setupPageCacheInvalidate() func() {
	clock := simclock.New()
	dev := storage.NewDevice(storage.NVMeSSD, clock)
	c := storage.NewPageCache(dev, storage.DefaultPageSize, 64)
	return func() {
		for p := int64(0); p < 8; p++ {
			c.Touch(p, true)
		}
		c.InvalidateRange(0, 7)
	}
}

// setupRootSet: create and release one handle per op against a root set
// holding a stable population (exercises the slot append and tombstone
// compaction paths).
func setupRootSet() func() {
	rs := vm.NewRootSet()
	for i := 0; i < 64; i++ {
		rs.Create(vm.Addr(uint64(i+1) * 8))
	}
	return func() {
		h := rs.Create(vm.Addr(8))
		rs.Release(h)
	}
}

// setupScavenge: a PS JVM with a tenured working set; each op allocates
// young garbage and runs one minor GC. Steady state must be 0 allocs/op.
func setupScavenge() func() {
	clock := simclock.New()
	j := rt.NewJVM(rt.Options{H1Size: 8 * storage.MB}, nil, clock)
	node := j.Classes().MustFixed("Node", 1, 1)
	h := j.NewHandle(vm.NullAddr)
	for i := 0; i < 64; i++ {
		a, err := j.Alloc(node)
		if err != nil {
			panic(err)
		}
		j.WriteRef(a, 0, h.Addr())
		h.Set(a)
	}
	col := j.Collector()
	// Micros measure the scavenge path itself: force the env-triggered
	// verifier off so allocs/op is identical with or without TH_VERIFY=1.
	col.SetVerify(false)
	op := func() {
		for i := 0; i < 32; i++ {
			if _, err := j.Alloc(node); err != nil {
				panic(err)
			}
		}
		if err := col.MinorGC(); err != nil {
			panic(err)
		}
		col.Stats().ResetCycles()
	}
	// Warm up: tenure the working set and grow every reusable buffer.
	for i := 0; i < 32; i++ {
		op()
	}
	return op
}

// setupScavengeGang4: the scavenge scenario with a 4-worker gang, so the
// per-item dealing and span bookkeeping on the minor-GC hot path is
// measured against the serial baseline. Steady state must stay 0
// allocs/op: the gang reuses its span backing across phases.
func setupScavengeGang4() func() {
	clock := simclock.New()
	j := rt.NewJVM(rt.Options{H1Size: 8 * storage.MB}, nil, clock)
	node := j.Classes().MustFixed("Node", 1, 1)
	h := j.NewHandle(vm.NullAddr)
	for i := 0; i < 64; i++ {
		a, err := j.Alloc(node)
		if err != nil {
			panic(err)
		}
		j.WriteRef(a, 0, h.Addr())
		h.Set(a)
	}
	col := j.Collector()
	col.SetVerify(false)
	col.Costs.Workers = 4
	op := func() {
		for i := 0; i < 32; i++ {
			if _, err := j.Alloc(node); err != nil {
				panic(err)
			}
		}
		if err := col.MinorGC(); err != nil {
			panic(err)
		}
		col.Stats().ResetCycles()
	}
	for i := 0; i < 32; i++ {
		op()
	}
	return op
}

// setupScavengeNG2C: the scavenge scenario with the NG2C profiling policy
// installed, so every measured minor GC runs the full placement decision
// path (AllocTarget on each allocation, Promote and NoteScavenge on each
// surviving object). The delta against minor_gc_scavenge prices the
// policy seam; steady state must stay 0 allocs/op — the profiler's site
// slab is grown during warm-up and never reallocated after.
func setupScavengeNG2C() func() {
	clock := simclock.New()
	j := rt.NewJVM(rt.Options{H1Size: 8 * storage.MB}, nil, clock)
	j.SetPlacementPolicy(placement.NewNG2C(placement.DefaultNG2CConfig()))
	node := j.Classes().MustFixed("Node", 1, 1)
	h := j.NewHandle(vm.NullAddr)
	for i := 0; i < 64; i++ {
		a, err := j.Alloc(node)
		if err != nil {
			panic(err)
		}
		j.WriteRef(a, 0, h.Addr())
		h.Set(a)
	}
	col := j.Collector()
	col.SetVerify(false)
	op := func() {
		for i := 0; i < 32; i++ {
			if _, err := j.Alloc(node); err != nil {
				panic(err)
			}
		}
		if err := col.MinorGC(); err != nil {
			panic(err)
		}
		col.Stats().ResetCycles()
	}
	for i := 0; i < 32; i++ {
		op()
	}
	return op
}

// setupWriteback: one op submits a burst of async batches against a
// depth-capped queue and drains it at a simulated safepoint. Steady state
// must be 0 allocs/op: the queue recycles its completion ring.
func setupWriteback() func() {
	clock := simclock.New()
	dev := storage.NewDevice(storage.NVMeSSD, clock)
	dev.SetWritebackDepth(4)
	op := func() {
		for i := 0; i < 8; i++ {
			dev.WriteAsync(64*storage.KB, storage.DefaultPageSize)
		}
		dev.DrainWriteback()
	}
	op() // warm: grow the completion ring once
	return op
}

// setupCardScan: a TeraHeap JVM with an H2 object holding backward
// references into H1; each op scans the H2 card table with pre-built
// visitors. Steady state must be 0 allocs/op.
func setupCardScan() func() {
	clock := simclock.New()
	thcfg := core.DefaultConfig(64 * storage.MB)
	j := rt.NewJVM(rt.Options{H1Size: 8 * storage.MB, TH: &thcfg}, nil, clock)
	th := j.TeraHeap()
	j.Collector().SetVerify(false) // env-independent, as in setupScavenge
	node := j.Classes().MustFixed("Node", 4, 1)

	root, err := j.Alloc(node)
	if err != nil {
		panic(err)
	}
	h := j.NewHandle(root)
	j.TagRoot(h, 7)
	j.MoveHint(7)
	if err := j.Collector().MinorGC(); err != nil {
		panic(err)
	}
	if !th.Contains(h.Addr()) {
		panic("perf: card-scan root did not move to H2")
	}
	// Young H1 targets written through the post-write barrier dirty the
	// H2 card; claiming they stay young keeps the segment in the youngGen
	// state, so every scan revisits it.
	for f := 0; f < 4; f++ {
		y, err := j.Alloc(node)
		if err != nil {
			panic(err)
		}
		j.WriteRef(h.Addr(), f, y)
	}
	visit := func(_ uint64, t vm.Addr) vm.Addr { return t }
	isYoung := func(vm.Addr) bool { return true }
	op := func() {
		th.ScanBackwardRefs(false, visit, isYoung)
	}
	op() // warm: recompute card states once
	return op
}
