package perf

import (
	"os"
	"path/filepath"
	"testing"
)

func trajReport(rev string, total int64) *Report {
	return &Report{Schema: Schema, Rev: rev, TotalNS: total,
		Figures: []Figure{{Name: "fig7", WallNS: total / 2}}}
}

func TestTrajectoryAppendAndLatest(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "trajectory")

	// Empty (and missing) trajectory: no latest point, no error.
	if r, _, err := LatestReport(dir); err != nil || r != nil {
		t.Fatalf("empty trajectory: report=%v err=%v", r, err)
	}

	for i, rev := range []string{"aaa111", "bbb222", "ccc333"} {
		p, err := AppendToTrajectory(dir, trajReport(rev, int64(i+1)*1000))
		if err != nil {
			t.Fatalf("append %s: %v", rev, err)
		}
		if filepath.Dir(p) != dir {
			t.Fatalf("point written outside trajectory: %s", p)
		}
	}

	r, path, err := LatestReport(dir)
	if err != nil {
		t.Fatalf("latest: %v", err)
	}
	if r.Rev != "ccc333" || r.TotalNS != 3000 {
		t.Fatalf("latest = %s/%d, want ccc333/3000", r.Rev, r.TotalNS)
	}
	if filepath.Base(path) != "0003_ccc333.json" {
		t.Fatalf("latest path = %s, want 0003_ccc333.json", filepath.Base(path))
	}

	// Every run appends exactly one point per invocation.
	names, err := trajectoryEntries(dir)
	if err != nil || len(names) != 3 {
		t.Fatalf("entries = %v (err=%v), want 3", names, err)
	}
}

// Stray files in the directory (a README, a hand-copied baseline) never
// corrupt the sequence.
func TestTrajectoryIgnoresStrayFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := AppendToTrajectory(dir, trajReport("first", 1)); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, "README.md"), []byte("notes"), 0o644)
	os.WriteFile(filepath.Join(dir, "zzz-baseline.json"), []byte("{}"), 0o644)
	if _, err := AppendToTrajectory(dir, trajReport("second", 2)); err != nil {
		t.Fatal(err)
	}
	r, _, err := LatestReport(dir)
	if err != nil || r.Rev != "second" {
		t.Fatalf("latest = %v (err=%v), want second", r, err)
	}
}

// Revision labels with path-hostile characters are sanitized into the
// filename but preserved in the report.
func TestTrajectorySanitizesRev(t *testing.T) {
	dir := t.TempDir()
	p, err := AppendToTrajectory(dir, trajReport("feat/x y", 1))
	if err != nil {
		t.Fatal(err)
	}
	if base := filepath.Base(p); base != "0001_feat_x_y.json" {
		t.Fatalf("path = %s", base)
	}
	r, _, err := LatestReport(dir)
	if err != nil || r.Rev != "feat/x y" {
		t.Fatalf("latest rev = %v (err=%v)", r, err)
	}
}
