package perf

import (
	"path/filepath"
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		Schema:    Schema,
		Rev:       "abc1234",
		GoVersion: "go1.22.0",
		GOOS:      "linux",
		GOARCH:    "amd64",
		Jobs:      4,
		TotalNS:   100_000_000_000,
		Figures: []Figure{
			{Name: "fig7", WallNS: 9_000_000_000},
			{Name: "table5", WallNS: 2_000_000_000},
		},
		Benchmarks: []Benchmark{
			{Name: "minor_gc_scavenge", NsPerOp: 10500, AllocsPerOp: 0, BytesPerOp: 0},
			{Name: "rootset_create_release", NsPerOp: 32, AllocsPerOp: 1, BytesPerOp: 16},
		},
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := sampleReport()
	path := filepath.Join(t.TempDir(), "BENCH_abc1234.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rev != r.Rev || got.TotalNS != r.TotalNS || got.Jobs != r.Jobs {
		t.Fatalf("round trip mangled header: %+v", got)
	}
	if len(got.Figures) != 2 || got.Figures[0] != r.Figures[0] {
		t.Fatalf("round trip mangled figures: %+v", got.Figures)
	}
	if len(got.Benchmarks) != 2 || got.Benchmarks[1] != r.Benchmarks[1] {
		t.Fatalf("round trip mangled benchmarks: %+v", got.Benchmarks)
	}
}

func TestDecodeRejectsWrongSchema(t *testing.T) {
	if _, err := Decode([]byte(`{"schema": 99}`)); err == nil {
		t.Fatal("schema 99 accepted")
	}
	if _, err := Decode([]byte(`{not json`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

// TestEncodeFieldOrderStable pins the JSON key order to the struct
// declaration order, so checked-in BENCH baselines diff line-by-line.
func TestEncodeFieldOrderStable(t *testing.T) {
	b, err := sampleReport().Encode()
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	topLevel := []string{`"schema"`, `"rev"`, `"go_version"`, `"goos"`, `"goarch"`,
		`"jobs"`, `"total_ns"`, `"figures"`, `"benchmarks"`}
	last := -1
	for _, key := range topLevel {
		i := strings.Index(s, key)
		if i < 0 {
			t.Fatalf("key %s missing from encoding", key)
		}
		if i < last {
			t.Fatalf("key %s out of declaration order", key)
		}
		last = i
	}
	benchKeys := []string{`"name"`, `"ns_per_op"`, `"allocs_per_op"`, `"bytes_per_op"`}
	bench := s[strings.Index(s, `"benchmarks"`):]
	last = -1
	for _, key := range benchKeys {
		i := strings.Index(bench, key)
		if i < 0 {
			t.Fatalf("benchmark key %s missing", key)
		}
		if i < last {
			t.Fatalf("benchmark key %s out of declaration order", key)
		}
		last = i
	}
	if !strings.HasSuffix(s, "}\n") {
		t.Fatal("encoding must end with a newline")
	}
}

func TestDiffFlagsRegressionsPastThreshold(t *testing.T) {
	old := sampleReport()
	cur := sampleReport()

	// 10% under a 25% threshold: no regression.
	cur.Figures[0].WallNS = old.Figures[0].WallNS * 110 / 100
	if regs := Diff(old, cur, 0.25); len(regs) != 0 {
		t.Fatalf("10%% slower flagged at 25%% threshold: %+v", regs)
	}

	// 50% over threshold: figure-wall regression.
	cur.Figures[0].WallNS = old.Figures[0].WallNS * 150 / 100
	regs := Diff(old, cur, 0.25)
	if len(regs) != 1 || regs[0].Kind != "figure-wall" || regs[0].Name != "fig7" {
		t.Fatalf("want one figure-wall regression for fig7, got %+v", regs)
	}
	if regs[0].Ratio < 1.49 || regs[0].Ratio > 1.51 {
		t.Fatalf("ratio %v, want ~1.5", regs[0].Ratio)
	}

	// Total wall-clock past threshold.
	cur = sampleReport()
	cur.TotalNS = old.TotalNS * 2
	regs = Diff(old, cur, 0.25)
	if len(regs) != 1 || regs[0].Kind != "total-wall" {
		t.Fatalf("want total-wall regression, got %+v", regs)
	}

	// ns/op past threshold.
	cur = sampleReport()
	cur.Benchmarks[0].NsPerOp = old.Benchmarks[0].NsPerOp * 1.3
	regs = Diff(old, cur, 0.25)
	if len(regs) != 1 || regs[0].Kind != "bench-ns" || regs[0].Name != "minor_gc_scavenge" {
		t.Fatalf("want bench-ns regression, got %+v", regs)
	}
}

// TestDiffAllocsAreExact: allocation counts are deterministic, so ANY
// increase regresses regardless of threshold — the zero-alloc pins must
// not drift even fractionally.
func TestDiffAllocsAreExact(t *testing.T) {
	old := sampleReport()
	cur := sampleReport()
	cur.Benchmarks[0].AllocsPerOp = 1 // was 0
	regs := Diff(old, cur, 10.0)      // huge threshold must not matter
	if len(regs) != 1 || regs[0].Kind != "bench-allocs" || regs[0].Name != "minor_gc_scavenge" {
		t.Fatalf("want bench-allocs regression, got %+v", regs)
	}
	// Equal or lower allocs: clean.
	cur.Benchmarks[0].AllocsPerOp = 0
	cur.Benchmarks[1].AllocsPerOp = 0 // improvement
	if regs := Diff(old, cur, 0.25); len(regs) != 0 {
		t.Fatalf("improvement flagged: %+v", regs)
	}
}

// TestDiffIgnoresUnmatchedEntries: benchmarks and figures present in only
// one report are skipped, so adding or retiring a micro never fails CI.
func TestDiffIgnoresUnmatchedEntries(t *testing.T) {
	old := sampleReport()
	cur := sampleReport()
	cur.Figures = append(cur.Figures, Figure{Name: "fig99", WallNS: 1 << 40})
	cur.Benchmarks = append(cur.Benchmarks, Benchmark{Name: "brand_new", NsPerOp: 1e12})
	old.Figures = append(old.Figures, Figure{Name: "retired", WallNS: 1})
	if regs := Diff(old, cur, 0.25); len(regs) != 0 {
		t.Fatalf("unmatched entries flagged: %+v", regs)
	}
}

func TestFormatRegressions(t *testing.T) {
	if s := FormatRegressions(nil, 0.25); !strings.Contains(s, "no regressions") {
		t.Fatalf("empty diff rendered %q", s)
	}
	s := FormatRegressions([]Regression{
		{Kind: "bench-ns", Name: "minor_gc_scavenge", Old: 100, New: 200, Ratio: 2},
	}, 0.25)
	if !strings.Contains(s, "1 regression(s)") || !strings.Contains(s, "minor_gc_scavenge") {
		t.Fatalf("diff rendered %q", s)
	}
}
