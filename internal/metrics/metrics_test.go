package metrics_test

import (
	"strings"
	"testing"
	"time"

	"github.com/carv-repro/teraheap-go/internal/metrics"
	"github.com/carv-repro/teraheap-go/internal/simclock"
)

func mkBreakdown(other, sd, minor, major time.Duration) simclock.Breakdown {
	c := simclock.New()
	c.Charge(simclock.Other, other)
	c.Charge(simclock.SerDesIO, sd)
	c.Charge(simclock.MinorGC, minor)
	c.Charge(simclock.MajorGC, major)
	return c.Breakdown()
}

func TestFormatBreakdownNormalizes(t *testing.T) {
	rows := []metrics.Row{
		{Name: "base", B: mkBreakdown(100*time.Millisecond, 0, 0, 0)},
		{Name: "half", B: mkBreakdown(50*time.Millisecond, 0, 0, 0)},
	}
	out := metrics.FormatBreakdown("t", rows, true)
	if !strings.Contains(out, "1.000") || !strings.Contains(out, "0.500") {
		t.Fatalf("normalization missing:\n%s", out)
	}
}

func TestFormatBreakdownOOM(t *testing.T) {
	rows := []metrics.Row{
		{Name: "dead", OOM: true},
		{Name: "live", B: mkBreakdown(time.Millisecond, 0, 0, 0)},
	}
	out := metrics.FormatBreakdown("t", rows, true)
	if !strings.Contains(out, "OOM") {
		t.Fatalf("no OOM marker:\n%s", out)
	}
	// Normalization base must skip the OOM row.
	if !strings.Contains(out, "1.000") {
		t.Fatalf("live row not normalized to itself:\n%s", out)
	}
}

func TestCSVBreakdown(t *testing.T) {
	rows := []metrics.Row{{Name: "a", B: mkBreakdown(1, 2, 3, 4)}}
	out := metrics.CSVBreakdown(rows)
	if !strings.HasPrefix(out, "name,total_ns") {
		t.Fatalf("missing header: %s", out)
	}
	if !strings.Contains(out, "a,10,1,2,3,4,0") {
		t.Fatalf("row wrong: %s", out)
	}
}

func TestCDF(t *testing.T) {
	pts := metrics.CDF([]float64{3, 1, 2, 4})
	if len(pts) != 4 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].Value != 1 || pts[3].Value != 4 {
		t.Fatalf("not sorted: %+v", pts)
	}
	if pts[3].Pct != 100 {
		t.Fatalf("last pct = %v", pts[3].Pct)
	}
	if got := metrics.CDFAt([]float64{1, 2, 3, 4}, 2); got != 50 {
		t.Fatalf("CDFAt = %v", got)
	}
	if metrics.CDF(nil) != nil {
		t.Fatal("empty CDF not nil")
	}
}

func TestFormatCDFQuantiles(t *testing.T) {
	vals := make([]float64, 101)
	for i := range vals {
		vals[i] = float64(i)
	}
	out := metrics.FormatCDF("x", vals)
	if !strings.Contains(out, "p50=50.0") {
		t.Fatalf("median wrong: %s", out)
	}
}

func TestSpeedup(t *testing.T) {
	if s := metrics.Speedup(100, 27); s < 72.9 || s > 73.1 {
		t.Fatalf("speedup = %v", s)
	}
	if metrics.Speedup(0, 10) != 0 {
		t.Fatal("zero baseline not handled")
	}
}
