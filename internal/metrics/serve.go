package metrics

import (
	"fmt"
	"strings"
	"time"
)

// ServeRow is one configuration of the serve figure: a runtime kind at
// one offered arrival rate, with its SLO report.
type ServeRow struct {
	Name    string
	Rate    float64 // offered arrival rate, req/s
	Served  int64
	Shed    int64
	Retries int64
	P50     time.Duration
	P99     time.Duration
	P999    time.Duration
	SLOViol int64 // replies served past the deadline
	PauseV  int64 // SLO violations overlapping a GC pause
	RPS     float64
	OOM     bool
	Fault   bool
	Note    string
}

// FormatServeTable renders serve rows as an aligned table.
func FormatServeTable(title string, rows []ServeRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", title)
	fmt.Fprintf(&sb, "%-24s %8s %8s %6s %7s %9s %9s %9s %8s %8s %s\n",
		"config", "rate", "served", "shed", "retries", "p50", "p99", "p999", "sloViol", "rps", "")
	for _, r := range rows {
		if r.OOM {
			fmt.Fprintf(&sb, "%-24s %8.0f %8s %s\n", r.Name, r.Rate, "OOM", r.Note)
			continue
		}
		if r.Fault {
			fmt.Fprintf(&sb, "%-24s %8.0f %8s %s\n", r.Name, r.Rate, "FAULT", r.Note)
			continue
		}
		fmt.Fprintf(&sb, "%-24s %8.0f %8d %6d %7d %9s %9s %9s %8d %8.0f %s\n",
			r.Name, r.Rate, r.Served, r.Shed, r.Retries,
			fmtDur(r.P50), fmtDur(r.P99), fmtDur(r.P999), r.SLOViol, r.RPS, r.Note)
	}
	return sb.String()
}

// CSVServe renders serve rows as CSV with columns name,rate,served,shed,
// retries,p50_ns,p99_ns,p999_ns,slo_viol,pause_viol,rps,oom,fault.
func CSVServe(rows []ServeRow) string {
	var sb strings.Builder
	sb.WriteString("name,rate,served,shed,retries,p50_ns,p99_ns,p999_ns,slo_viol,pause_viol,rps,oom,fault\n")
	for _, r := range rows {
		oom, flt := 0, 0
		if r.OOM {
			oom = 1
		}
		if r.Fault {
			flt = 1
		}
		fmt.Fprintf(&sb, "%s,%g,%d,%d,%d,%d,%d,%d,%d,%d,%.1f,%d,%d\n",
			r.Name, r.Rate, r.Served, r.Shed, r.Retries,
			int64(r.P50), int64(r.P99), int64(r.P999), r.SLOViol, r.PauseV, r.RPS, oom, flt)
	}
	return sb.String()
}
