// Package metrics formats experiment results: execution-time breakdown
// tables in the style of the paper's figures, CSV emission for plotting,
// and CDF helpers for the region-liveness distributions.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/carv-repro/teraheap-go/internal/simclock"
)

// Row is one bar of a breakdown figure.
type Row struct {
	Name  string
	B     simclock.Breakdown
	OOM   bool
	Fault bool // the run ended on a latched storage fault (fault plane)
	// Recovered marks a run the self-healing layer repaired (region
	// salvage, quarantine, or breaker trip) that still finished with a
	// correct result; its timings are valid and rendered normally.
	Recovered bool
	Note      string
}

// FormatBreakdown renders rows as an aligned table with one column per
// breakdown category plus the total, normalized to the first non-OOM row
// when normalize is set (the paper normalizes to the first bar).
func FormatBreakdown(title string, rows []Row, normalize bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", title)
	var base time.Duration
	if normalize {
		for _, r := range rows {
			if !r.OOM && !r.Fault {
				base = r.B.Total()
				break
			}
		}
	}
	fmt.Fprintf(&sb, "%-28s %10s %10s %10s %10s %10s %8s %s\n",
		"config", "total", "other", "s/d+io", "minorGC", "majorGC", "norm", "")
	for _, r := range rows {
		if r.OOM {
			fmt.Fprintf(&sb, "%-28s %10s %s\n", r.Name, "OOM", r.Note)
			continue
		}
		if r.Fault {
			fmt.Fprintf(&sb, "%-28s %10s %s\n", r.Name, "FAULT", r.Note)
			continue
		}
		norm := "-"
		if normalize && base > 0 {
			norm = fmt.Sprintf("%.3f", float64(r.B.Total())/float64(base))
		}
		note := r.Note
		if r.Recovered {
			note = strings.TrimSpace("RECOVERED " + note)
		}
		fmt.Fprintf(&sb, "%-28s %10s %10s %10s %10s %10s %8s %s\n",
			r.Name,
			fmtDur(r.B.Total()),
			fmtDur(r.B.Get(simclock.Other)),
			fmtDur(r.B.Get(simclock.SerDesIO)),
			fmtDur(r.B.Get(simclock.MinorGC)),
			fmtDur(r.B.Get(simclock.MajorGC)),
			norm, note)
	}
	return sb.String()
}

// CSVBreakdown renders rows as CSV with columns name,total_ns,other_ns,
// sdio_ns,minor_ns,major_ns,oom,fault,recovered.
func CSVBreakdown(rows []Row) string {
	var sb strings.Builder
	sb.WriteString("name,total_ns,other_ns,sdio_ns,minor_ns,major_ns,oom,fault,recovered\n")
	for _, r := range rows {
		oom, flt, rec := 0, 0, 0
		if r.OOM {
			oom = 1
		}
		if r.Fault {
			flt = 1
		}
		if r.Recovered {
			rec = 1
		}
		fmt.Fprintf(&sb, "%s,%d,%d,%d,%d,%d,%d,%d,%d\n", r.Name,
			int64(r.B.Total()), r.B.NS[simclock.Other], r.B.NS[simclock.SerDesIO],
			r.B.NS[simclock.MinorGC], r.B.NS[simclock.MajorGC], oom, flt, rec)
	}
	return sb.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fus", float64(d)/float64(time.Microsecond))
	}
	return d.String()
}

// PauseRow is one point of a GC worker-scaling table: one configuration
// run at one simulated gang size.
type PauseRow struct {
	Name    string
	Workers int
	MinorGC time.Duration // total minor-GC pause time
	MajorGC time.Duration // total major-GC pause time
	Total   time.Duration // run total (all categories)
}

// FormatPauseScaling renders worker-scaling rows as an aligned table with
// per-row speedup of total GC time relative to the same configuration at
// the smallest gang size.
func FormatPauseScaling(title string, rows []PauseRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", title)
	fmt.Fprintf(&sb, "%-28s %8s %12s %12s %12s %8s\n",
		"config", "workers", "minorGC", "majorGC", "total", "gcNorm")
	base := map[string]time.Duration{}
	for _, r := range rows {
		gcTotal := r.MinorGC + r.MajorGC
		if _, ok := base[r.Name]; !ok {
			base[r.Name] = gcTotal
		}
		norm := "-"
		if b := base[r.Name]; b > 0 {
			norm = fmt.Sprintf("%.3f", float64(gcTotal)/float64(b))
		}
		fmt.Fprintf(&sb, "%-28s %8d %12s %12s %12s %8s\n",
			r.Name, r.Workers, fmtDur(r.MinorGC), fmtDur(r.MajorGC),
			fmtDur(r.Total), norm)
	}
	return sb.String()
}

// CSVPauseScaling renders worker-scaling rows as CSV with columns
// name,workers,minor_ns,major_ns,total_ns.
func CSVPauseScaling(rows []PauseRow) string {
	var sb strings.Builder
	sb.WriteString("name,workers,minor_ns,major_ns,total_ns\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s,%d,%d,%d,%d\n",
			r.Name, r.Workers, int64(r.MinorGC), int64(r.MajorGC), int64(r.Total))
	}
	return sb.String()
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value float64 // x
	Pct   float64 // cumulative fraction in [0,100]
}

// CDF computes the empirical CDF of values.
func CDF(values []float64) []CDFPoint {
	if len(values) == 0 {
		return nil
	}
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	pts := make([]CDFPoint, len(v))
	for i, x := range v {
		pts[i] = CDFPoint{Value: x, Pct: 100 * float64(i+1) / float64(len(v))}
	}
	return pts
}

// CDFAt returns the fraction (0-100) of values <= x.
func CDFAt(values []float64, x float64) float64 {
	n := 0
	for _, v := range values {
		if v <= x {
			n++
		}
	}
	if len(values) == 0 {
		return 0
	}
	return 100 * float64(n) / float64(len(values))
}

// FormatCDF renders a CDF as a compact quantile table.
func FormatCDF(name string, values []float64) string {
	if len(values) == 0 {
		return fmt.Sprintf("%s: (no samples)\n", name)
	}
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	q := func(p float64) float64 {
		i := int(p * float64(len(v)-1))
		return v[i]
	}
	return fmt.Sprintf("%s: n=%d p10=%.1f p25=%.1f p50=%.1f p75=%.1f p90=%.1f p100=%.1f\n",
		name, len(v), q(0.10), q(0.25), q(0.50), q(0.75), q(0.90), v[len(v)-1])
}

// Speedup returns 1 - new/old as a percentage (the paper's "reduces
// execution time by X%").
func Speedup(baseline, improved time.Duration) float64 {
	if baseline <= 0 {
		return 0
	}
	return 100 * (1 - float64(improved)/float64(baseline))
}
