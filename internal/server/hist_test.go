package server

import (
	"testing"
	"time"
)

func TestHistPercentiles(t *testing.T) {
	var h Hist
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", h.Count())
	}
	if got := h.Max(); got != 1000*time.Microsecond {
		t.Errorf("Max = %v, want 1ms", got)
	}
	p50, p99, p999 := h.Percentile(0.50), h.Percentile(0.99), h.Percentile(0.999)
	if !(p50 <= p99 && p99 <= p999 && p999 <= h.Max()) {
		t.Errorf("percentiles not monotone: p50=%v p99=%v p999=%v max=%v", p50, p99, p999, h.Max())
	}
	// Log-linear buckets with 32 sub-buckets per octave are within ~3.2%
	// below the true value; allow 5%.
	if true50 := 500 * time.Microsecond; p50 > true50 || p50 < true50*95/100 {
		t.Errorf("p50 = %v, want within 5%% below %v", p50, true50)
	}
	if h.Percentile(1) != h.Max() {
		t.Errorf("Percentile(1) = %v, want exact max %v", h.Percentile(1), h.Max())
	}
}

func TestHistEdgeCases(t *testing.T) {
	var h Hist
	if got := h.Percentile(0.99); got != 0 {
		t.Errorf("empty histogram Percentile = %v, want 0", got)
	}
	h.Record(-5 * time.Second) // clamps, never a negative bucket
	h.Record(0)
	h.Record(200 * time.Hour) // far past the top octave: clamps to last bucket
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
	if h.Percentile(0.999) > h.Max() {
		t.Errorf("percentile exceeds max: %v > %v", h.Percentile(0.999), h.Max())
	}
}
