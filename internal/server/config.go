// Package server is the simulator's long-running-service workload plane:
// an open-loop key-value/analytics request stream served by one rt.Session
// of any runtime kind, with the latency-SLO machinery a real service would
// carry — per-request deadlines, a bounded admission queue that sheds load
// when the projected queue delay exceeds the deadline, retry with
// exponential backoff on degraded responses, and GC-pause-aware latency
// accounting. The whole plane runs on the simulated clock: arrivals,
// backoffs, and deadlines are virtual time, so two runs under the same
// seed are byte-identical.
package server

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// Config describes one serve run. The zero value is not runnable; start
// from DefaultConfig (what ParseConfig does) and override via the DSL.
type Config struct {
	// Seed keys every workload decision (key popularity, op mix, churn).
	Seed uint64
	// RatePerSec is the open-loop arrival rate in requests per simulated
	// second. Arrivals do not wait for responses: when the server falls
	// behind (a GC pause, a device brownout), the backlog grows and the
	// admission queue starts shedding.
	RatePerSec float64
	// Requests is the number of primary arrivals (retries ride on top).
	Requests int
	// Clients is the client-ID population; session state churns over it.
	Clients int
	// Keys is the keyspace size of the KV store.
	Keys int
	// ZipfS is the key-popularity skew (P(k) ∝ 1/(k+1)^s).
	ZipfS float64
	// ValueWords is the payload size of one value, in heap words.
	ValueWords int
	// Deadline is the per-request latency SLO.
	Deadline time.Duration
	// QueueDepth bounds the admission queue: a request arriving behind
	// more than QueueDepth waiting requests is shed.
	QueueDepth int
	// MaxRetries bounds client retries of a degraded response; Backoff is
	// the first retry's delay, doubling per attempt.
	MaxRetries int
	Backoff    time.Duration
	// ReadFrac and ScanFrac split the op mix (the remainder are writes);
	// ScanLen is the keys touched per scan.
	ReadFrac float64
	ScanFrac float64
	ScanLen  int
	// ChurnProb is the per-request probability that the client's session
	// is torn down and rebuilt (allocation pressure from session state).
	ChurnProb float64
	// HotFrac is the fraction of store shards kept hot in H1; the rest
	// are tagged and advised to H2 (no-op on runtimes without one).
	HotFrac float64
	// Kinds restricts a serve sweep to a subset of runtime kinds, by
	// registry name (rt.KindNames). Empty means every registered kind.
	// The DSL form is colon-separated — kinds=ps:th:g1+th — because "+"
	// is itself part of the g1+th name.
	Kinds []string
}

// DefaultConfig is the base serve configuration: a 4096-key store with
// Zipf-0.99 popularity over 1.2M clients, 80/10/10 read/scan/write, a 2ms
// deadline, and a 64-deep admission queue.
func DefaultConfig() Config {
	return Config{
		Seed:       1,
		RatePerSec: 60000,
		Requests:   20000,
		Clients:    1200000,
		Keys:       4096,
		ZipfS:      0.99,
		ValueWords: 64,
		Deadline:   2 * time.Millisecond,
		QueueDepth: 64,
		MaxRetries: 3,
		Backoff:    200 * time.Microsecond,
		ReadFrac:   0.8,
		ScanFrac:   0.1,
		ScanLen:    16,
		ChurnProb:  0.002,
		HotFrac:    0.25,
	}
}

// keysPerShard fixes the store's shard fan-out: each shard is one ref
// array of this many value slots.
const keysPerShard = 64

// Shards returns the store's shard count.
func (c Config) Shards() int {
	n := (c.Keys + keysPerShard - 1) / keysPerShard
	if n < 1 {
		n = 1
	}
	return n
}

// StoreBytes estimates the store's resident size (shard directories plus
// values), used by experiment sizing to place the working set relative to
// the heap.
func (c Config) StoreBytes() int64 {
	const headerBytes = int64(vm.HeaderWords * vm.WordSize)
	valBytes := int64(c.ValueWords)*vm.WordSize + headerBytes
	shardBytes := int64(keysPerShard)*vm.WordSize + headerBytes
	return int64(c.Keys)*valBytes + int64(c.Shards())*shardBytes
}

// Interarrival converts the arrival rate into the open-loop interarrival
// gap, going through the simclock guard so a malformed rate can never
// produce a negative or NaN-derived duration.
func (c Config) Interarrival() (time.Duration, error) {
	d, err := simclock.DurationFromSeconds(1 / c.RatePerSec)
	if err != nil {
		return 0, fmt.Errorf("server: rate=%g: %w", c.RatePerSec, err)
	}
	return d, nil
}

// Validate checks every knob's range. It is called by ParseConfig and
// again by Run, so a hand-built Config cannot bypass the guards.
func (c Config) Validate() error {
	if _, err := c.Interarrival(); err != nil {
		return err
	}
	if c.Requests < 1 || c.Requests > 50_000_000 {
		return fmt.Errorf("server: reqs=%d: want 1..50000000", c.Requests)
	}
	if c.Clients < 1 {
		return fmt.Errorf("server: clients=%d: want >= 1", c.Clients)
	}
	if c.Keys < 1 || c.Keys > 1<<22 {
		return fmt.Errorf("server: keys=%d: want 1..%d", c.Keys, 1<<22)
	}
	// NaN fails every comparison, so test validity, not invalidity.
	if !(c.ZipfS > 0 && c.ZipfS <= 8) {
		return fmt.Errorf("server: zipf=%g: want a finite skew in (0,8]", c.ZipfS)
	}
	if c.ValueWords < 1 || c.ValueWords > 1<<16 {
		return fmt.Errorf("server: vwords=%d: want 1..%d", c.ValueWords, 1<<16)
	}
	if c.Deadline <= 0 {
		return fmt.Errorf("server: deadline=%v: want > 0", c.Deadline)
	}
	if c.QueueDepth < 1 || c.QueueDepth > 1<<20 {
		return fmt.Errorf("server: queue=%d: want 1..%d", c.QueueDepth, 1<<20)
	}
	if c.MaxRetries < 0 || c.MaxRetries > 16 {
		return fmt.Errorf("server: retries=%d: want 0..16", c.MaxRetries)
	}
	if c.Backoff <= 0 {
		return fmt.Errorf("server: backoff=%v: want > 0", c.Backoff)
	}
	if !(c.ReadFrac >= 0 && c.ReadFrac <= 1) {
		return fmt.Errorf("server: reads=%g: want a fraction in [0,1]", c.ReadFrac)
	}
	if !(c.ScanFrac >= 0 && c.ScanFrac <= 1) {
		return fmt.Errorf("server: scan=%g: want a fraction in [0,1]", c.ScanFrac)
	}
	if c.ReadFrac+c.ScanFrac > 1 {
		return fmt.Errorf("server: reads=%g scan=%g: fractions sum past 1", c.ReadFrac, c.ScanFrac)
	}
	if c.ScanLen < 1 || c.ScanLen > keysPerShard {
		return fmt.Errorf("server: scanlen=%d: want 1..%d", c.ScanLen, keysPerShard)
	}
	if !(c.ChurnProb >= 0 && c.ChurnProb <= 1) {
		return fmt.Errorf("server: churn=%g: want a probability in [0,1]", c.ChurnProb)
	}
	if !(c.HotFrac >= 0 && c.HotFrac <= 1) {
		return fmt.Errorf("server: hot=%g: want a fraction in [0,1]", c.HotFrac)
	}
	seenKind := make(map[string]bool)
	for _, n := range c.Kinds {
		if _, ok := rt.KindByName(n); !ok {
			return fmt.Errorf("server: kinds=%s: unknown kind %q (valid: %s)",
				strings.Join(c.Kinds, ":"), n, strings.Join(rt.KindNames(), " "))
		}
		if seenKind[n] {
			return fmt.Errorf("server: kinds=%s: duplicate kind %q",
				strings.Join(c.Kinds, ":"), n)
		}
		seenKind[n] = true
	}
	return nil
}

// String renders the config in the DSL accepted by ParseConfig, every key
// in fixed order — the canonical form, so ParseConfig(c.String()) round
// trips exactly.
func (c Config) String() string {
	s := fmt.Sprintf(
		"seed=%d,rate=%g,reqs=%d,clients=%d,keys=%d,zipf=%g,vwords=%d,deadline=%s,queue=%d,retries=%d,backoff=%s,reads=%g,scan=%g,scanlen=%d,churn=%g,hot=%g",
		c.Seed, c.RatePerSec, c.Requests, c.Clients, c.Keys, c.ZipfS, c.ValueWords,
		c.Deadline, c.QueueDepth, c.MaxRetries, c.Backoff,
		c.ReadFrac, c.ScanFrac, c.ScanLen, c.ChurnProb, c.HotFrac)
	// kinds is rendered only when set, so legacy configs round trip to the
	// exact legacy canonical string.
	if len(c.Kinds) > 0 {
		s += ",kinds=" + strings.Join(c.Kinds, ":")
	}
	return s
}

// ParseConfig parses the comma-separated key=value serve-config DSL used
// by teraheap-bench's serve subcommand:
//
//	seed=N        workload PRNG seed (default 1)
//	rate=R        open-loop arrival rate, requests per simulated second
//	reqs=N        primary request count
//	clients=N     client-ID population
//	keys=N        KV keyspace size
//	zipf=S        key-popularity skew in (0,8]
//	vwords=N      value payload, heap words
//	deadline=DUR  per-request latency SLO (e.g. 2ms)
//	queue=N       admission queue depth
//	retries=N     client retry budget per request (0 disables retries)
//	backoff=DUR   first retry backoff, doubling per attempt
//	reads=F       read fraction of the op mix
//	scan=F        scan fraction (remainder are writes)
//	scanlen=N     keys touched per scan (1..64)
//	churn=F       per-request session-churn probability
//	hot=F         fraction of store shards kept hot in H1
//	kinds=A:B:C   restrict the sweep to these runtime kinds (colon
//	              separated registry names, e.g. kinds=ps:th:g1+th)
//
// Unknown keys, duplicate keys, malformed values, and out-of-range knobs
// are errors, mirroring fault.ParsePlan: a sweep that silently ignored a
// typo would measure something other than what was written.
func ParseConfig(s string) (Config, error) {
	c := DefaultConfig()
	seen := make(map[string]bool)
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return c, fmt.Errorf("server: %q is not key=value", kv)
		}
		if seen[key] {
			return c, fmt.Errorf("server: duplicate config key %q (in token %q)", key, kv)
		}
		seen[key] = true
		var err error
		switch key {
		case "seed":
			c.Seed, err = strconv.ParseUint(val, 10, 64)
		case "rate":
			c.RatePerSec, err = parseFinite(val)
		case "reqs":
			c.Requests, err = strconv.Atoi(val)
		case "clients":
			c.Clients, err = strconv.Atoi(val)
		case "keys":
			c.Keys, err = strconv.Atoi(val)
		case "zipf":
			c.ZipfS, err = parseFinite(val)
		case "vwords":
			c.ValueWords, err = strconv.Atoi(val)
		case "deadline":
			c.Deadline, err = time.ParseDuration(val)
		case "queue":
			c.QueueDepth, err = strconv.Atoi(val)
		case "retries":
			c.MaxRetries, err = strconv.Atoi(val)
		case "backoff":
			c.Backoff, err = time.ParseDuration(val)
		case "reads":
			c.ReadFrac, err = parseFinite(val)
		case "scan":
			c.ScanFrac, err = parseFinite(val)
		case "scanlen":
			c.ScanLen, err = strconv.Atoi(val)
		case "churn":
			c.ChurnProb, err = parseFinite(val)
		case "hot":
			c.HotFrac, err = parseFinite(val)
		case "kinds":
			c.Kinds = strings.Split(val, ":")
		default:
			return c, fmt.Errorf("server: unknown config key %q (valid: seed, rate, reqs, clients, keys, zipf, vwords, deadline, queue, retries, backoff, reads, scan, scanlen, churn, hot, kinds)", key)
		}
		if err != nil {
			return c, fmt.Errorf("server: bad %s=%s: %w", key, val, err)
		}
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

func parseFinite(val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("want a finite number")
	}
	return f, nil
}
