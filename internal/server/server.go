package server

import (
	"errors"
	"fmt"
	"time"

	"github.com/carv-repro/teraheap-go/internal/gc"
	"github.com/carv-repro/teraheap-go/internal/recovery"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/vm"
	"github.com/carv-repro/teraheap-go/internal/workloads"
)

// Per-operation mutator CPU costs. These price the request handler
// itself; heap and device costs (H2 page faults, GC pauses, brownouts)
// are charged by the layers underneath, which is exactly what makes tail
// latency interesting.
const (
	baseCost   = 300 * time.Nanosecond // request parse + dispatch
	wordCost   = 2 * time.Nanosecond   // per value word touched
	writeCost  = 120 * time.Nanosecond // index update on the write path
	churnCost  = 150 * time.Nanosecond // session teardown + rebuild
	rejectCost = 40 * time.Nanosecond  // shed: admission check + error reply
)

// sessionSlots bounds live session state: clients map onto this many
// slots, so the session table's footprint is stable while churn still
// allocates at the configured rate.
const sessionSlots = 4096

// scratchWords sizes the per-request temporary allocation (decode buffer,
// response scaffolding) — pure young-generation garbage.
const scratchWords = 16

// Request ops.
const (
	opRead = iota
	opScan
	opWrite
)

// Window is one throughput-measurement segment of the serve phase (the
// run is cut into eight equal spans of offered primaries). A fault or
// breaker trip shows up as a low-served window; re-admission shows up as
// the tail windows climbing back — the "throughput recovers" signal the
// chaos schedule asserts on.
type Window struct {
	Served  int64
	Shed    int64
	Elapsed time.Duration
}

// RPS returns the window's served throughput in requests per simulated
// second.
func (w Window) RPS() float64 {
	if w.Elapsed <= 0 {
		return 0
	}
	return float64(w.Served) / w.Elapsed.Seconds()
}

// Stats is one serve run's report card.
type Stats struct {
	Cfg Config

	Offered int64 // primary arrivals
	Served  int64 // completed replies (primaries + retries)
	Shed    int64 // rejected by admission control
	Retries int64 // retry attempts scheduled by degraded replies

	Degraded     int64 // replies served degraded (salvage, breaker open, tombstone)
	FaultReplies int64 // replies that surfaced a latched FaultError
	Tombstones   int64 // reads that hit a salvage tombstone and were repaired

	SLOViolations   int64 // served past the deadline
	PauseViolations int64 // SLO violations overlapping a GC pause
	GCPauses        int64 // serve-phase collections
	PauseTime       time.Duration

	P50, P99, P999, MaxLatency time.Duration

	WarmupTime    time.Duration // store build + pre-serve full GCs
	Elapsed       time.Duration // serve-phase simulated time
	ThroughputRPS float64       // Served / Elapsed
	Windows       []Window
}

// String renders the one-line summary used by reports and tests.
func (s *Stats) String() string {
	return fmt.Sprintf("offered=%d served=%d shed=%d retries=%d degraded=%d slo-viol=%d pause-viol=%d p50=%v p99=%v p999=%v rps=%.0f",
		s.Offered, s.Served, s.Shed, s.Retries, s.Degraded,
		s.SLOViolations, s.PauseViolations, s.P50, s.P99, s.P999, s.ThroughputRPS)
}

// pauseSpan is one GC pause in simulated time.
type pauseSpan struct {
	start, end time.Duration
}

// PauseLatencyCollector is the serve plane's gc.Hooks layer: it snapshots
// the clock around every collection and owns the latency histogram, so a
// request's recorded latency can be attributed to the pause it straddled.
// Observation only — it never mutates the heap and charges no time.
type PauseLatencyCollector struct {
	gc.BaseHook
	clock *simclock.Clock

	Hist  Hist
	Count int64
	Total time.Duration

	depth  int
	start  time.Duration
	spans  []pauseSpan
	cursor int
}

// BeforeGC opens a pause span (nested collections extend the outermost).
func (p *PauseLatencyCollector) BeforeGC(gc.Phase) {
	if p.depth == 0 {
		p.start = p.clock.Now()
	}
	p.depth++
}

// AfterGC closes the span and records it.
func (p *PauseLatencyCollector) AfterGC(gc.Phase) {
	if p.depth > 0 {
		p.depth--
	}
	if p.depth != 0 {
		return
	}
	end := p.clock.Now()
	if end > p.start {
		p.spans = append(p.spans, pauseSpan{p.start, end})
		p.Total += end - p.start
	}
	p.Count++
}

// Observe records one served request's latency and reports whether a GC
// pause overlapped its [arrival, completion) span. Requests are observed
// in arrival order, so the span cursor only moves forward.
func (p *PauseLatencyCollector) Observe(arrival, completion time.Duration) bool {
	p.Hist.Record(completion - arrival)
	for p.cursor < len(p.spans) && p.spans[p.cursor].end <= arrival {
		p.cursor++
	}
	for i := p.cursor; i < len(p.spans); i++ {
		if p.spans[i].start >= completion {
			return false
		}
		if p.spans[i].end > arrival {
			return true
		}
	}
	return false
}

// request is one unit of admission: a primary arrival or a scheduled
// retry. seq breaks retry-heap ties so ordering is total.
type request struct {
	at      time.Duration
	seq     int64
	key     int
	op      int
	attempt int
	client  uint64
}

// retryHeap is a min-heap on (at, seq).
type retryHeap []request

func (h retryHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *retryHeap) push(r request) {
	*h = append(*h, r)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *retryHeap) pop() request {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && (*h).less(l, min) {
			min = l
		}
		if r < n && (*h).less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		(*h)[i], (*h)[min] = (*h)[min], (*h)[i]
		i = min
	}
	return top
}

// ready counts queued retries whose scheduled time has passed.
func (h retryHeap) ready(now time.Duration) int64 {
	var n int64
	for _, r := range h {
		if r.at <= now {
			n++
		}
	}
	return n
}

// engine is one serve run's state.
type engine struct {
	cfg   Config
	sess  *rt.Session
	rtm   rt.Runtime
	clock *simclock.Clock
	srv   *workloads.Rand

	valCls     *vm.Class
	sessCls    *vm.Class
	scratchCls *vm.Class
	shards     []*vm.Handle
	sessions   []*vm.Handle

	collector *PauseLatencyCollector
	st        *Stats
}

// outcome classifies one reply.
type outcome struct {
	degraded  bool
	retryable bool
	fatal     error
}

// Run serves cfg's request stream on the session's runtime and returns
// the stats. The session should be freshly built: Run installs its own
// pause collector on the hook plane and owns the store it allocates. A
// non-nil error is fatal (OOM, or a fault latched during warmup) — the
// stats returned alongside cover what was served before the abort.
func Run(sess *rt.Session, cfg Config) (*Stats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ia, err := cfg.Interarrival()
	if err != nil {
		return nil, err
	}
	e := &engine{
		cfg:   cfg,
		sess:  sess,
		rtm:   sess.Runtime,
		clock: sess.Clock,
		srv:   workloads.NewRand(cfg.Seed ^ 0x9E3779B97F4A7C15),
		st:    &Stats{Cfg: cfg},
	}
	warmStart := e.clock.Now()
	if err := e.warmup(); err != nil {
		return e.st, err
	}
	e.st.WarmupTime = e.clock.Now() - warmStart

	// The pause collector registers after warmup, so the histogram and
	// pause spans cover the serve phase only.
	e.collector = &PauseLatencyCollector{clock: e.clock}
	e.rtm.Hooks().Register(e.collector)
	defer e.rtm.Hooks().Remove(e.collector)

	err = e.serveLoop(ia)
	e.finalize()
	return e.st, err
}

// class returns the named class, registering it on first use (shared
// class tables across sessions stay valid).
func class(t *vm.ClassTable, name string, reg func() *vm.Class) *vm.Class {
	if c := t.ByName(name); c != nil {
		return c
	}
	return reg()
}

// warmup builds the KV store — shard directories of value arrays — and
// advises the cold shards to H2 (no-op on runtimes without one), then
// runs two full collections so the store reaches its steady-state
// placement before the first request arrives.
func (e *engine) warmup() error {
	t := e.rtm.Classes()
	shardCls := class(t, "server.Shard", func() *vm.Class { return t.MustRefArray("server.Shard") })
	e.valCls = class(t, "server.Value", func() *vm.Class { return t.MustPrimArray("server.Value") })
	e.sessCls = class(t, "server.Session", func() *vm.Class { return t.MustFixed("server.Session", 1, 4) })
	e.scratchCls = class(t, "server.Scratch", func() *vm.Class { return t.MustPrimArray("server.Scratch") })
	e.sessions = make([]*vm.Handle, sessionSlots)

	nShards := e.cfg.Shards()
	e.shards = make([]*vm.Handle, nShards)
	for s := 0; s < nShards; s++ {
		a, err := e.rtm.AllocColdRefArray(shardCls, keysPerShard)
		if err != nil {
			return fmt.Errorf("server: warmup shard %d: %w", s, err)
		}
		e.shards[s] = e.rtm.NewHandle(a)
	}
	for k := 0; k < e.cfg.Keys; k++ {
		if err := e.writeValue(k); err != nil {
			return fmt.Errorf("server: warmup key %d: %w", k, err)
		}
	}

	// The Zipf head lands on the low shards; keep those hot in H1 and
	// advise the tail to H2 (TagRoot/MoveHint, the Fig 4 idiom).
	hot := int(e.cfg.HotFrac * float64(nShards))
	for s := hot; s < nShards; s++ {
		label := uint64(0x53560000) + uint64(s)
		e.rtm.TagRoot(e.shards[s], label)
		e.rtm.MoveHint(label)
	}
	for i := 0; i < 2; i++ {
		if err := e.rtm.FullGC(); err != nil {
			return fmt.Errorf("server: warmup GC: %w", err)
		}
	}
	return nil
}

// keySig is the value fingerprint written to and validated on every key.
func keySig(key int) uint64 { return uint64(key)*0x9E3779B97F4A7C15 + 1 }

// touchWords bounds per-op payload traffic: a handler touches the value's
// header words, not the whole payload.
func (e *engine) touchWords() int {
	w := e.cfg.ValueWords
	if w > 8 {
		w = 8
	}
	return w
}

// writeValue allocates a fresh value for key and installs it in its
// shard slot, replacing (and garbaging) any previous version.
func (e *engine) writeValue(key int) error {
	a, err := e.rtm.AllocColdPrimArray(e.valCls, e.cfg.ValueWords)
	if err != nil {
		return err
	}
	sig := keySig(key)
	for i := 0; i < e.touchWords(); i++ {
		e.rtm.WritePrim(a, i, sig+uint64(i))
	}
	e.rtm.WriteRef(e.shards[key/keysPerShard].Addr(), key%keysPerShard, a)
	e.clock.Charge(simclock.Other, writeCost+time.Duration(e.touchWords())*wordCost)
	return nil
}

// readValue serves one key. A null slot is a salvage tombstone (the
// device lost the object image and recovery nulled the holder instead of
// returning a wrong answer): the read degrades to a miss and the value is
// re-created through the write path — the self-healing store.
func (e *engine) readValue(key int, out *outcome) {
	a := e.rtm.ReadRef(e.shards[key/keysPerShard].Addr(), key%keysPerShard)
	if a.IsNull() {
		e.st.Tombstones++
		out.degraded = true
		out.retryable = true
		e.failOp(e.writeValue(key), out)
		return
	}
	sig := keySig(key)
	for i := 0; i < e.touchWords(); i++ {
		if v := e.rtm.ReadPrim(a, i); v != sig+uint64(i) {
			panic(fmt.Sprintf("server: key %d word %d: got %#x want %#x", key, i, v, sig+uint64(i)))
		}
	}
	e.clock.Charge(simclock.Other, time.Duration(e.touchWords())*wordCost)
}

// failOp folds an allocation-path error into the outcome: a latched
// FaultError degrades the reply (the store keeps serving reads while the
// device heals or stays H1-only); OOM and anything else is fatal.
func (e *engine) failOp(err error, out *outcome) {
	if err == nil {
		return
	}
	var flt *gc.FaultError
	if errors.As(err, &flt) {
		e.st.FaultReplies++
		out.degraded = true
		out.retryable = true
		return
	}
	out.fatal = err
}

// churn tears down and rebuilds the client's session state.
func (e *engine) churn(client uint64, out *outcome) {
	slot := int(client % sessionSlots)
	if h := e.sessions[slot]; h != nil {
		e.rtm.Release(h)
		e.sessions[slot] = nil
	}
	a, err := e.rtm.Alloc(e.sessCls)
	if err != nil {
		e.failOp(err, out)
		return
	}
	e.rtm.WritePrim(a, 0, client)
	e.rtm.WritePrim(a, 1, uint64(e.clock.Now()))
	e.sessions[slot] = e.rtm.NewHandle(a)
	e.clock.Charge(simclock.Other, churnCost)
}

// serve executes one admitted request and classifies the reply.
func (e *engine) serve(req request) outcome {
	var out outcome
	var rec0 recovery.Stats
	if e.sess.Recovery != nil {
		rec0 = e.sess.Recovery.Stats()
	}
	e.clock.Charge(simclock.Other, baseCost)
	// Every handler invocation allocates short-lived temporaries (request
	// decode, response buffer): the young-generation pressure that makes a
	// service's tail latency a GC story in the first place.
	if a, err := e.rtm.AllocPrimArray(e.scratchCls, scratchWords); err != nil {
		e.failOp(err, &out)
	} else {
		e.rtm.WritePrim(a, 0, uint64(req.key))
	}
	switch req.op {
	case opRead:
		e.readValue(req.key, &out)
	case opScan:
		shard := req.key / keysPerShard
		idx := req.key % keysPerShard
		for j := 0; j < e.cfg.ScanLen && out.fatal == nil; j++ {
			e.readValue(shard*keysPerShard+(idx+j)%keysPerShard, &out)
		}
	case opWrite:
		e.failOp(e.writeValue(req.key), &out)
	}
	if out.fatal == nil && e.srv.Float64() < e.cfg.ChurnProb {
		e.churn(req.client, &out)
	}
	if e.sess.Recovery != nil {
		rec1 := e.sess.Recovery.Stats()
		// A salvage or breaker transition inside this request's span means
		// the reply was produced while the heap was being repaired: served,
		// but degraded, and worth a client retry once the dust settles.
		if rec1.RecoveredFaults != rec0.RecoveredFaults ||
			rec1.RegionsQuarantined != rec0.RegionsQuarantined ||
			rec1.BreakerTrips != rec0.BreakerTrips {
			out.degraded = true
			out.retryable = true
		}
		// H1-only mode (breaker open or probing): degraded service by
		// definition, but not retry-worthy — a retry would land on the same
		// closed device and only amplify load.
		if rec1.State != recovery.Closed {
			out.degraded = true
		}
	}
	return out
}

// serveLoop is the open-loop core: primaries arrive on the interarrival
// grid, retries from the backoff heap interleave in time order, and the
// single simulated server thread processes them serially — idle gaps
// charge to Other, and every queueing delay (GC pauses included) is the
// difference between arrival and service start.
func (e *engine) serveLoop(ia time.Duration) error {
	serveStart := e.clock.Now()
	var (
		rq                 retryHeap
		nextIdx            int
		seq                int64
		winEvery           = (e.cfg.Requests + 7) / 8
		winAt              = serveStart
		winServed, winShed int64
		primaries          int
	)
	primaryAt := func(i int) time.Duration { return serveStart + time.Duration(i+1)*ia }
	arr := workloads.NewRand(e.cfg.Seed)

	closeWindow := func() {
		e.st.Windows = append(e.st.Windows, Window{
			Served:  e.st.Served - winServed,
			Shed:    e.st.Shed - winShed,
			Elapsed: e.clock.Now() - winAt,
		})
		winServed, winShed, winAt = e.st.Served, e.st.Shed, e.clock.Now()
	}

	for nextIdx < e.cfg.Requests || len(rq) > 0 {
		var req request
		primary := false
		if len(rq) > 0 && (nextIdx >= e.cfg.Requests || rq[0].at <= primaryAt(nextIdx)) {
			req = rq.pop()
		} else {
			primary = true
			u := arr.Float64()
			op := opWrite
			switch {
			case u < e.cfg.ReadFrac:
				op = opRead
			case u < e.cfg.ReadFrac+e.cfg.ScanFrac:
				op = opScan
			}
			req = request{
				at:     primaryAt(nextIdx),
				key:    arr.Zipf(e.cfg.Keys, e.cfg.ZipfS),
				client: arr.Uint64() % uint64(e.cfg.Clients),
				op:     op,
			}
			nextIdx++
			e.st.Offered++
		}

		now := e.clock.Now()
		if now < req.at {
			e.clock.Charge(simclock.Other, req.at-now)
			now = req.at
		}

		// Admission control: shed when the request has already burned its
		// deadline in the queue (it cannot possibly answer in time) or when
		// the backlog exceeds the queue bound. Shed replies are final —
		// retrying into an overloaded server amplifies the overload.
		wait := now - req.at
		backlog := queuedPrimaries(now, serveStart, ia, nextIdx, e.cfg.Requests) + rq.ready(now)
		if wait >= e.cfg.Deadline || backlog > int64(e.cfg.QueueDepth) {
			e.st.Shed++
			e.clock.Charge(simclock.Other, rejectCost)
		} else {
			out := e.serve(req)
			if out.fatal != nil {
				return out.fatal
			}
			e.st.Served++
			completion := e.clock.Now()
			pauseHit := e.collector.Observe(req.at, completion)
			if completion-req.at > e.cfg.Deadline {
				e.st.SLOViolations++
				if pauseHit {
					e.st.PauseViolations++
				}
			}
			if out.degraded {
				e.st.Degraded++
			}
			if out.retryable && req.attempt < e.cfg.MaxRetries {
				e.st.Retries++
				seq++
				rq.push(request{
					at:      completion + e.cfg.Backoff<<uint(req.attempt),
					seq:     seq,
					key:     req.key,
					op:      req.op,
					attempt: req.attempt + 1,
					client:  req.client,
				})
			}
		}

		if primary {
			primaries++
			if primaries%winEvery == 0 && primaries < e.cfg.Requests {
				closeWindow()
			}
		}
	}
	closeWindow()
	e.st.Elapsed = e.clock.Now() - serveStart
	return nil
}

// queuedPrimaries counts primaries that have arrived by now but not yet
// been dispatched — the open-loop backlog.
func queuedPrimaries(now, serveStart time.Duration, ia time.Duration, nextIdx, total int) int64 {
	if now <= serveStart {
		return 0
	}
	arrived := int64((now - serveStart) / ia)
	if arrived > int64(total) {
		arrived = int64(total)
	}
	q := arrived - int64(nextIdx)
	if q < 0 {
		q = 0
	}
	return q
}

// finalize folds the collector into the stats.
func (e *engine) finalize() {
	e.st.P50 = e.collector.Hist.Percentile(0.50)
	e.st.P99 = e.collector.Hist.Percentile(0.99)
	e.st.P999 = e.collector.Hist.Percentile(0.999)
	e.st.MaxLatency = e.collector.Hist.Max()
	e.st.GCPauses = e.collector.Count
	e.st.PauseTime = e.collector.Total
	if e.st.Elapsed > 0 {
		e.st.ThroughputRPS = float64(e.st.Served) / e.st.Elapsed.Seconds()
	}
}
