package server

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseConfigDefaults(t *testing.T) {
	got, err := ParseConfig("")
	if err != nil {
		t.Fatalf("ParseConfig(\"\"): %v", err)
	}
	if !reflect.DeepEqual(got, DefaultConfig()) {
		t.Errorf("empty DSL diverges from DefaultConfig:\n got %+v\nwant %+v", got, DefaultConfig())
	}
}

func TestParseConfigOverrides(t *testing.T) {
	c, err := ParseConfig("seed=9,rate=180000,deadline=500us,queue=32,retries=0,reads=0.5,scan=0.25")
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if c.Seed != 9 || c.RatePerSec != 180000 || c.Deadline != 500*time.Microsecond ||
		c.QueueDepth != 32 || c.MaxRetries != 0 || c.ReadFrac != 0.5 || c.ScanFrac != 0.25 {
		t.Errorf("overrides not applied: %+v", c)
	}
	if c.Keys != DefaultConfig().Keys {
		t.Errorf("untouched knob changed: keys = %d", c.Keys)
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []struct {
		dsl  string
		want string // substring of the error
	}{
		{"rate=60000,rate=20000", "duplicate config key"},
		{"speed=1", "unknown config key"},
		{"rate", "not key=value"},
		{"rate=NaN", "finite"},
		{"rate=-5", "rate=-5"},
		{"rate=1e30", "rate=1e+30"}, // interarrival truncates below 1ns
		{"reqs=0", "reqs=0"},
		{"reqs=2000000000000", "reqs="},
		{"zipf=0", "zipf=0"},
		{"zipf=9", "zipf=9"},
		{"deadline=abc", "bad deadline"},
		{"deadline=-1ms", "deadline=-1ms"},
		{"queue=0", "queue=0"},
		{"retries=17", "retries=17"},
		{"reads=0.8,scan=0.3", "sum past 1"},
		{"scanlen=0", "scanlen=0"},
		{"scanlen=65", "scanlen=65"},
		{"churn=1.5", "churn=1.5"},
		{"hot=-0.1", "hot=-0.1"},
		{"vwords=0", "vwords=0"},
		{"keys=0", "keys=0"},
		{"clients=0", "clients=0"},
		{"backoff=0s", "backoff=0s"},
		{"kinds=ps:bogus", `unknown kind "bogus"`},
		{"kinds=warp", "valid: ps th g1 mo panthera g1+th ng2c deca"},
		{"kinds=th:th", `duplicate kind "th"`},
		{"kinds=", `unknown kind ""`},
	}
	for _, tc := range cases {
		_, err := ParseConfig(tc.dsl)
		if err == nil {
			t.Errorf("ParseConfig(%q): want error containing %q, got nil", tc.dsl, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseConfig(%q) = %v, want error containing %q", tc.dsl, err, tc.want)
		}
	}
}

func TestConfigStringRoundTrip(t *testing.T) {
	for _, dsl := range []string{
		"",
		"rate=60000,deadline=2ms,queue=64",
		"seed=7,rate=180000,reqs=30000,deadline=1ms,retries=5,backoff=100us",
		"keys=65536,vwords=256,zipf=1.2,hot=0.1,churn=0.05,scan=0.2,scanlen=8",
		"kinds=ps:th:g1+th",
		"rate=20000,kinds=deca",
	} {
		c, err := ParseConfig(dsl)
		if err != nil {
			t.Fatalf("ParseConfig(%q): %v", dsl, err)
		}
		again, err := ParseConfig(c.String())
		if err != nil {
			t.Fatalf("ParseConfig(String(%q)) = ParseConfig(%q): %v", dsl, c.String(), err)
		}
		if !reflect.DeepEqual(again, c) {
			t.Errorf("round trip of %q diverged:\n  canon %q\n  got   %+v\n  want  %+v", dsl, c.String(), again, c)
		}
	}
}

// FuzzParseConfig is the parser's robustness harness: no input may panic
// it, any accepted config must validate, and the canonical String() form
// must round trip to an identical config — the property the CLI's
// determinism contract rests on (a config that re-parses differently
// would make `serve` runs irreproducible from their own headers).
func FuzzParseConfig(f *testing.F) {
	// Corpus: the README/usage examples plus edge-shaped inputs.
	for _, seed := range []string{
		"",
		"rate=60000,deadline=2ms,queue=64",
		"seed=7,rate=180000,reqs=30000,deadline=1ms",
		"keys=65536,vwords=256,zipf=1.2,hot=0.1",
		"reads=0.5,scan=0.5,scanlen=64,churn=1,retries=0",
		DefaultConfig().String(),
		"rate=1e30",
		"rate=-0,zipf=0x1p-3",
		"deadline=2ms,deadline=2ms",
		"  rate = 5 ,,",
		"seed=18446744073709551615",
		"rate=NaN,scan=Inf",
		"kinds=ps:th:g1+th:ng2c",
		"kinds=g1+th:g1",
		"kinds=:",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, dsl string) {
		c, err := ParseConfig(dsl) // must not panic
		if err != nil {
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("accepted config fails Validate: %v (input %q)", verr, dsl)
		}
		if _, ierr := c.Interarrival(); ierr != nil {
			t.Fatalf("accepted config has invalid interarrival: %v (input %q)", ierr, dsl)
		}
		again, rerr := ParseConfig(c.String())
		if rerr != nil {
			t.Fatalf("canonical form rejected: %v (canon %q, input %q)", rerr, c.String(), dsl)
		}
		if !reflect.DeepEqual(again, c) {
			t.Fatalf("canonical round trip diverged (input %q):\n canon %q\n got   %+v\n want  %+v",
				dsl, c.String(), again, c)
		}
	})
}
