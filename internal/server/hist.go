package server

import (
	"math/bits"
	"time"
)

// histSubBits gives 32 sub-buckets per power-of-two octave: ~3% relative
// resolution, enough for p50/p99/p999 on µs..s latencies while keeping
// the histogram a fixed small array (no allocation per sample).
const (
	histSubBits = 5
	histSub     = 1 << histSubBits
	histBuckets = histSub + (63-histSubBits)*histSub
)

// Hist is a deterministic log-linear latency histogram. Values below one
// octave record exactly; above, each octave splits into 32 linear
// sub-buckets and quantiles report the bucket's lower bound — a stable
// underestimate, so two runs with identical samples always print
// identical percentiles.
type Hist struct {
	counts [histBuckets]int64
	n      int64
	max    time.Duration
}

func histIndex(v int64) int {
	if v < histSub {
		return int(v)
	}
	hi := bits.Len64(uint64(v)) - 1
	sub := int((v >> (uint(hi) - histSubBits)) & (histSub - 1))
	return histSub + (hi-histSubBits)*histSub + sub
}

func histLowerBound(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	oct := (idx-histSub)/histSub + histSubBits
	sub := int64((idx - histSub) % histSub)
	return int64(1)<<uint(oct) + sub<<(uint(oct)-histSubBits)
}

// Record adds one latency sample (negative samples clamp to zero).
func (h *Hist) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[histIndex(int64(d))]++
	h.n++
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 { return h.n }

// Max returns the exact largest sample.
func (h *Hist) Max() time.Duration { return h.max }

// Percentile returns the p-quantile (p in [0,1]) as the lower bound of
// the bucket holding the target sample; p >= 1 returns the exact max.
func (h *Hist) Percentile(p float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	if p >= 1 {
		return h.max
	}
	if p < 0 {
		p = 0
	}
	target := int64(p*float64(h.n)) + 1
	if target > h.n {
		target = h.n
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			lb := histLowerBound(i)
			if time.Duration(lb) > h.max {
				return h.max
			}
			return time.Duration(lb)
		}
	}
	return h.max
}
