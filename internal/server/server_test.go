package server

import (
	"reflect"
	"testing"
	"time"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/fault"
	"github.com/carv-repro/teraheap-go/internal/recovery"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/storage"
)

// testSession builds a small session of the given kind, mirroring the
// sizing used by the rt package's own factory tests.
func testSession(kind rt.Kind, plan *fault.Plan, pol *recovery.Policy) *rt.Session {
	spec := rt.Spec{Kind: kind, H1Size: 4 * storage.MB, Verify: true}
	if kind == rt.KindTH || kind == rt.KindG1TH {
		cfg := core.DefaultConfig(16 * storage.MB)
		cfg.RegionSize = 64 * storage.KB
		spec.TH = &cfg
	}
	spec.FaultPlan = plan
	spec.Recovery = pol
	return rt.NewSession(spec)
}

// testConfig shrinks the default workload so one run stays fast.
func testConfig() Config {
	c := DefaultConfig()
	c.Requests = 3000
	c.Keys = 1024
	c.Clients = 50000
	return c
}

// TestRunDeterminism: two fresh sessions under the same seed produce
// deeply equal Stats — the in-process half of the CLI's two-process
// byte-identical contract.
func TestRunDeterminism(t *testing.T) {
	for _, kind := range []rt.Kind{rt.KindPS, rt.KindTH, rt.KindG1} {
		t.Run(kind.String(), func(t *testing.T) {
			run := func() *Stats {
				s, err := Run(testSession(kind, nil, nil), testConfig())
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				return s
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a, b) {
				t.Errorf("same-seed runs diverged:\n a: %v\n b: %v", a, b)
			}
		})
	}
}

// TestRunAccounting checks the conservation laws every run must satisfy:
// offered splits exactly into served + shed, percentiles are monotone,
// and elapsed time covers the full arrival grid.
func TestRunAccounting(t *testing.T) {
	cfg := testConfig()
	s, err := Run(testSession(rt.KindTH, nil, nil), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Offered != int64(cfg.Requests) {
		t.Errorf("Offered = %d, want %d", s.Offered, cfg.Requests)
	}
	if s.Served+s.Shed != s.Offered+s.Retries {
		t.Errorf("served(%d) + shed(%d) != offered(%d) + retries(%d)", s.Served, s.Shed, s.Offered, s.Retries)
	}
	if !(s.P50 <= s.P99 && s.P99 <= s.P999 && s.P999 <= s.MaxLatency) {
		t.Errorf("percentiles not monotone: %v %v %v max=%v", s.P50, s.P99, s.P999, s.MaxLatency)
	}
	ia, _ := cfg.Interarrival()
	if minElapsed := time.Duration(cfg.Requests) * ia; s.Elapsed < minElapsed {
		t.Errorf("Elapsed = %v shorter than the arrival grid %v", s.Elapsed, minElapsed)
	}
	var winServed, winShed int64
	for _, w := range s.Windows {
		winServed += w.Served
		winShed += w.Shed
	}
	if winServed != s.Served || winShed != s.Shed {
		t.Errorf("windows sum served=%d shed=%d, totals served=%d shed=%d", winServed, winShed, s.Served, s.Shed)
	}
}

// TestRunShedsUnderOverload: at an arrival rate far past the service
// capacity with a tight deadline, the bounded admission queue must shed
// rather than queue without bound, and every shed is final (no retry).
func TestRunShedsUnderOverload(t *testing.T) {
	cfg := testConfig()
	cfg.RatePerSec = 5_000_000 // ~200ns interarrival, below the base service cost
	cfg.Deadline = 20 * time.Microsecond
	cfg.QueueDepth = 8
	s, err := Run(testSession(rt.KindPS, nil, nil), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Shed == 0 {
		t.Errorf("no sheds under a 5M req/s open loop with a 20µs deadline: %v", s)
	}
	if s.Retries != 0 {
		t.Errorf("sheds must be final on a healthy run, got retries=%d", s.Retries)
	}
}

// TestRunDegradedUnderFaults: a TeraHeap session under an aggressive
// fault plan with recovery enabled completes without a fatal error, and
// the SLO report shows the degradation: recovered faults surface as
// degraded replies and client retries, never as a crash.
func TestRunDegradedUnderFaults(t *testing.T) {
	plan, err := fault.ParsePlan("seed=1,region-fail=0.1,wb-fail=0.1,torn=0.1,corrupt=0.1,brownout=500:200x8")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	pol := &recovery.Policy{Enabled: true, BreakerK: 2, WindowOps: 400000, CooldownOps: 30000, ScrubRegionsPerGC: 1, ValidateRepair: true}
	ses := testSession(rt.KindTH, plan, pol)
	cfg := testConfig()
	cfg.Requests = 20000 // fault injection rides on device traffic; give it a full serve phase
	s, err := Run(ses, cfg)
	if err != nil {
		t.Fatalf("Run under faults: %v", err)
	}
	if ses.Fault() != nil {
		t.Fatalf("session latched a fatal fault: %v", ses.Fault())
	}
	if s.Degraded == 0 {
		t.Errorf("no degraded replies under a 10%% fault plan: %v", s)
	}
	if s.Retries == 0 {
		t.Errorf("no retries under a 10%% fault plan: %v", s)
	}
	if ses.Recovery == nil {
		t.Fatalf("no recovery manager on a KindTH session with a policy")
	}
	rs := ses.Recovery.Stats()
	if rs.RecoveredFaults+rs.RegionsQuarantined+rs.SalvagedObjects+rs.BreakerTrips == 0 {
		t.Errorf("recovery manager saw no activity; degradation signal untested: %v", rs.String())
	}
}

// TestPauseCollectorAttribution: the pause-latency collector must observe
// GC pauses during the serve phase and attribute overlapping requests,
// and its histogram must only cover the serve phase (warmup pauses are
// excluded by registration order).
func TestPauseCollectorAttribution(t *testing.T) {
	cfg := testConfig()
	cfg.Requests = 20000
	s, err := Run(testSession(rt.KindPS, nil, nil), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.GCPauses == 0 {
		t.Errorf("no GC pauses observed during a 20k-request serve phase")
	}
	if s.PauseTime <= 0 {
		t.Errorf("PauseTime = %v, want > 0", s.PauseTime)
	}
}
