package gc_test

import (
	"testing"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/heap"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// TestShadowModelVerified runs the shadow-model property test with the
// heap invariant verifier enabled: every GC of the run is bracketed by a
// full-heap, full-metadata verification pass that panics on the first
// violation.
func TestShadowModelVerified(t *testing.T) {
	for _, withTH := range []bool{false, true} {
		m := newShadowModel(t, withTH, 99)
		m.jvm.SetVerify(true)
		m.run(1500)
	}
}

// verifyEnv builds a small PS JVM (no TeraHeap) with an already-tenured
// object holding a young reference, the setup the H1 card rules are about.
func verifyEnv(t *testing.T) (jvm *rt.JVM, old, young vm.Addr) {
	t.Helper()
	classes := vm.NewClassTable()
	node := classes.MustFixed("Node", 2, 1)
	jvm = rt.NewJVM(rt.Options{H1Size: 1 * storage.MB}, classes, simclock.New())
	a, err := jvm.Alloc(node)
	if err != nil {
		t.Fatal(err)
	}
	h := jvm.NewHandle(a)
	c := jvm.Collector()
	for i := 0; i < c.H1.Cfg.TenureAge+1; i++ {
		if err := c.MinorGC(); err != nil {
			t.Fatal(err)
		}
	}
	old = h.Addr()
	if !c.H1.InOld(old) {
		t.Fatalf("object %v not tenured after %d minor GCs", old, c.H1.Cfg.TenureAge+1)
	}
	y, err := jvm.Alloc(node)
	if err != nil {
		t.Fatal(err)
	}
	jvm.WriteRef(old, 0, y)
	return jvm, old, y
}

// TestVerifyCatchesCardCorruption pins the structured failure the verifier
// must produce when an old-to-young card is lost: the violation names the
// holder object and the card.
func TestVerifyCatchesCardCorruption(t *testing.T) {
	jvm, old, _ := verifyEnv(t)
	c := jvm.Collector()
	if fails := c.VerifyNow(); len(fails) != 0 {
		t.Fatalf("clean heap reported violations: %v", fails)
	}
	ci := c.H1.Cards.Index(old)
	c.H1.Cards.Set(ci, heap.CardClean)
	fails := c.VerifyNow()
	if len(fails) == 0 {
		t.Fatal("cleared old-to-young card not detected")
	}
	f := fails[0]
	if f.Rule != "h1-card-missing-dirty" || f.Holder != old || f.Card != ci {
		t.Fatalf("wrong diagnosis: %+v (want rule=h1-card-missing-dirty holder=%v card=%d)", f, old, ci)
	}
}

// TestVerifyCatchesDanglingRef pins the failure for a reference targeting
// a non-object address.
func TestVerifyCatchesDanglingRef(t *testing.T) {
	jvm, old, young := verifyEnv(t)
	c := jvm.Collector()
	// Point the old object's second field one word past the young object's
	// header — inside the heap but not an object start.
	jvm.Mem().SetRefAt(old, 1, young+vm.WordSize)
	fails := c.VerifyNow()
	found := false
	for _, f := range fails {
		if f.Rule == "ref-dangling" && f.Holder == old && f.Field == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("dangling reference not diagnosed: %v", fails)
	}
}

// TestCardWalkPromotionKeepsSharing is the regression test for the
// dirty-card-walk bound: the walk used to read the old generation's live
// top, so an object promoted earlier in the same scavenge — landing in a
// card that was dirty at scavenge start — was scanned by the card walk
// before drain() got to it. The card walk resolved its young references
// to to-space copies, and the later worklist scan then re-copied those
// to-space copies, splitting shared structure and leaving a forwarding
// husk behind in a survivor space.
func TestCardWalkPromotionKeepsSharing(t *testing.T) {
	classes := vm.NewClassTable()
	node := classes.MustFixed("Node", 2, 1)
	jvm := rt.NewJVM(rt.Options{H1Size: 1 * storage.MB}, classes, simclock.New())
	c := jvm.Collector()

	// X: tenured, the last (only) old-generation object, so the next
	// promotion lands in X's card.
	x, err := jvm.Alloc(node)
	if err != nil {
		t.Fatal(err)
	}
	hx := jvm.NewHandle(x)
	for i := 0; i < c.H1.Cfg.TenureAge+1; i++ {
		if err := c.MinorGC(); err != nil {
			t.Fatal(err)
		}
	}
	if !c.H1.InOld(hx.Addr()) {
		t.Fatal("X not tenured")
	}

	// Y: aged to the brink, promoted by the NEXT scavenge.
	y, err := jvm.Alloc(node)
	if err != nil {
		t.Fatal(err)
	}
	hy := jvm.NewHandle(y)
	for i := 0; i < c.H1.Cfg.TenureAge-1; i++ {
		if err := c.MinorGC(); err != nil {
			t.Fatal(err)
		}
	}

	// S: fresh young object shared by X (dirtying X's card) and Y.
	s, err := jvm.Alloc(node)
	if err != nil {
		t.Fatal(err)
	}
	jvm.WriteRef(hx.Addr(), 0, s)
	jvm.WriteRef(hy.Addr(), 0, s)

	if err := c.MinorGC(); err != nil {
		t.Fatal(err)
	}
	if !c.H1.InOld(hy.Addr()) {
		t.Fatal("Y not promoted")
	}
	sx, sy := jvm.ReadRef(hx.Addr(), 0), jvm.ReadRef(hy.Addr(), 0)
	if sx != sy {
		t.Fatalf("shared child split by scavenge: X sees %v, Y sees %v", sx, sy)
	}
	if fails := c.VerifyNow(); len(fails) != 0 {
		t.Fatalf("post-scavenge heap invalid: %v", fails)
	}
}

// TestH2ImageStatusMinorVsMajor pins the status word an object carries
// into H2 to be identical whether it travels the minor-GC direct-promotion
// path or the major-GC closure move, even when a stale mark or closure bit
// is set on the original (as an aborted prior marking cycle would leave
// it). The minor path used to clear only the mark bit, leaking the
// closure bit into the H2 image.
func TestH2ImageStatusMinorVsMajor(t *testing.T) {
	build := func(viaMinor bool) uint64 {
		classes := vm.NewClassTable()
		node := classes.MustFixed("Node", 2, 1)
		cfg := core.DefaultConfig(64 * storage.MB)
		cfg.RegionSize = 32 * storage.KB
		jvm := rt.NewJVM(rt.Options{H1Size: 1 * storage.MB, TH: &cfg}, classes, simclock.New())
		// The heap deliberately holds stale GC bits mid-test; disable the
		// env-triggered verifier so the run is deterministic under TH_VERIFY.
		jvm.SetVerify(false)
		a, err := jvm.Alloc(node)
		if err != nil {
			t.Fatal(err)
		}
		h := jvm.NewHandle(a)
		jvm.TagRoot(h, 7)
		jvm.MoveHint(7)
		m := jvm.Mem()
		m.SetMarked(h.Addr(), true)
		m.SetInClosure(h.Addr(), true)
		if viaMinor {
			if err := jvm.Collector().MinorGC(); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := jvm.FullGC(); err != nil {
				t.Fatal(err)
			}
		}
		dst := h.Addr()
		if !jvm.InSecondHeap(dst) {
			t.Fatalf("tagged object not moved to H2 (viaMinor=%v)", viaMinor)
		}
		return m.Status(dst)
	}
	minor, major := build(true), build(false)
	if minor&(vm.FlagMark|vm.FlagClosure) != 0 {
		t.Fatalf("minor-path H2 image carries stale GC bits: status=0x%x", minor)
	}
	if major&(vm.FlagMark|vm.FlagClosure) != 0 {
		t.Fatalf("major-path H2 image carries stale GC bits: status=0x%x", major)
	}
	if minor != major {
		t.Fatalf("H2 image status differs by path: minor=0x%x major=0x%x", minor, major)
	}
}
