package gc

import (
	"time"

	"github.com/carv-repro/teraheap-go/internal/heap"
	"github.com/carv-repro/teraheap-go/internal/placement"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// pendingH2Move records a young object reserved for direct promotion to H2
// during scavenge (the paper's young-generation-to-H2 fast path, §7.1).
// The original's status word is captured before it is overwritten by the
// forwarding pointer.
type pendingH2Move struct {
	src    vm.Addr
	dst    vm.Addr
	status uint64
}

// scavenger holds the per-cycle state of one minor GC. One instance lives
// on the collector: its worklist and h2moves backing arrays are grown once
// and reused every cycle, so a steady-state scavenge never allocates.
// h2head marks the FIFO consumption point into h2moves so draining never
// re-slices the array front.
type scavenger struct {
	c        *Collector
	worklist []vm.Addr
	h2moves  []pendingH2Move
	h2head   int

	// oldTop snapshots the old generation's top at scavenge start. The
	// dirty-card walk is bounded by it so that objects promoted mid-scan
	// into a not-yet-visited dirty card are scanned only once, via the
	// worklist in drain(), not a second time by the card walk.
	oldTop vm.Addr

	bytesCopied   int64
	bytesPromoted int64
	bytesToH2     int64
	objectsToH2   int64
	refsScanned   int64
	cardsScanned  int64
	cardObjects   int64
}

// scavengeAbort carries a latched allocation failure out of the scavenge
// via panic/recover: the only non-local exit from the depth-first copy.
type scavengeAbort struct{ err *OOMError }

// MinorGC runs one scavenge of the young generation.
func (c *Collector) MinorGC() (err error) {
	if c.oom != nil {
		return c.oom
	}
	if flt := c.pollFault(); flt != nil {
		return flt
	}
	c.hooks.BeforeGC(PhaseMinor)
	prevCat := c.Clock.SetContext(simclock.MinorGC)
	defer c.Clock.SetContext(prevCat)
	defer func() {
		// A promotion failure mid-scavenge (possible only when MinorGC is
		// invoked directly, bypassing ensureMinorHeadroom's guarantee)
		// latches as OOM and fails the run instead of killing the process.
		// The heap is wedged — partially evacuated — but every subsequent
		// allocation and GC fails fast on the latched error, so the
		// inconsistent state is never touched again.
		if r := recover(); r != nil {
			sa, ok := r.(scavengeAbort)
			if !ok {
				panic(r)
			}
			c.gng = nil // the aborted phase never reaches endGangPhase
			err = c.latchOOM(sa.err)
		}
	}()
	before := c.Clock.Breakdown()

	s := &c.scav
	s.begin(c.H1.Old.Top)
	gangOn := c.beginGangPhase()

	// Roots 1: handles. Iterated directly (nil slots are released handles)
	// rather than through ForEach, which would allocate a closure per cycle.
	for _, h := range c.Roots.Handles() {
		if h == nil {
			continue
		}
		c.gangBegin()
		a := h.Addr()
		if !a.IsNull() && c.H1.InYoung(a) {
			h.Set(s.copyYoung(a))
		}
	}

	// Roots 2: old-to-young references via the H1 card table.
	s.scanDirtyCards()

	// Roots 3: backward references from H2 (dirty and youngGen segments),
	// via the collector's pre-built visitor.
	c.TH.ScanBackwardRefs(false, c.scavBackVisit, c.isYoungFn)

	s.drain()

	// The young generation is now empty: survivors moved to to-space, the
	// tenured to the old generation, the tagged to H2.
	c.H1.Eden.Reset()
	c.H1.From.Reset()
	c.H1.SwapSurvivors()
	c.TH.FlushBuffers()

	// Bill CPU work. The scavenge is one barrier: a single gang phase from
	// roots through drain, charged max-over-workers when the gang is on,
	// or the legacy serial aggregate otherwise.
	if gangOn {
		c.endGangPhase(simclock.MinorGC, c.Costs.MinorGCThreads)
	} else {
		cpu := time.Duration(s.bytesCopied+s.bytesPromoted)*c.Costs.CopyPerByte +
			time.Duration(s.refsScanned)*c.Costs.ScanPerRef +
			time.Duration(s.cardsScanned)*c.Costs.PerCard +
			time.Duration(s.cardObjects)*c.Costs.PerCardObject
		c.chargeGC(simclock.MinorGC, cpu, c.Costs.MinorGCThreads)
	}
	c.Clock.Charge(simclock.MinorGC, c.Costs.PausePerGC)

	delta := c.Clock.Breakdown().Sub(before)
	c.stats.record(Cycle{
		Kind:              Minor,
		At:                c.Clock.Now(),
		Duration:          delta.Get(simclock.MinorGC),
		BytesCopied:       s.bytesCopied,
		BytesPromoted:     s.bytesPromoted,
		BytesMovedToH2:    s.bytesToH2,
		ObjectsMovedH2:    s.objectsToH2,
		OldOccupancyAfter: c.H1.OldOccupancy(),
		CardsScanned:      s.cardsScanned,
	})
	c.hooks.AfterGC(PhaseMinor)
	if flt := c.pollFault(); flt != nil {
		return flt
	}
	return nil
}

// begin resets the scavenger for a new cycle, keeping the grown backing
// arrays.
func (s *scavenger) begin(oldTop vm.Addr) {
	s.worklist = s.worklist[:0]
	s.h2moves = s.h2moves[:0]
	s.h2head = 0
	s.oldTop = oldTop
	s.bytesCopied = 0
	s.bytesPromoted = 0
	s.bytesToH2 = 0
	s.objectsToH2 = 0
	s.refsScanned = 0
	s.cardsScanned = 0
	s.cardObjects = 0
}

// copyYoung evacuates the young object at a, returning its new address.
func (s *scavenger) copyYoung(a vm.Addr) vm.Addr {
	c := s.c
	m := c.Mem
	if m.Forwarded(a) {
		return m.Forwardee(a)
	}
	size := m.SizeWords(a)
	status := m.Status(a)

	// Direct young-to-H2 promotion for move-advised labels.
	if label := m.Label(a); label != 0 && c.TH.MoveOnMinor(label) {
		if dst, ok := c.TH.PrepareMove(label, size); ok {
			m.SetForwardee(a, dst)
			s.h2moves = append(s.h2moves, pendingH2Move{src: a, dst: dst, status: status})
			s.objectsToH2++
			s.bytesToH2 += int64(size) * vm.WordSize
			return dst
		}
	}

	age := m.Age(a) + 1
	site := placement.SiteFromStatus(status)
	var dst vm.Addr
	var ok bool
	promoted := false
	legacyTenure := age >= c.H1.Cfg.TenureAge
	polTenure := c.policy.Promote(site, age, c.H1.Cfg.TenureAge)
	if polTenure {
		dst, ok = c.allocOld(size)
		promoted = ok
	}
	if !ok {
		dst, ok = c.H1.To.Alloc(size)
	}
	if !ok {
		dst, ok = c.allocOld(size)
		promoted = ok
	}
	if !ok {
		// ensureMinorHeadroom makes this unreachable on the allocation slow
		// path; a direct MinorGC call against a full old generation can
		// still get here, and that is a capacity condition, not a bug.
		panic(scavengeAbort{&OOMError{Requested: int64(size) * vm.WordSize, Where: "scavenge promotion"}})
	}
	m.CopyObject(dst, a, size)
	m.SetAge(dst, age)
	if promoted && polTenure && !legacyTenure {
		// Survivor-free promotion forced by the placement policy (the age
		// threshold alone would have kept the object young): tag it so a
		// later death in the old generation is attributed to the
		// pretenuring decision. Never reached under the default policy,
		// where polTenure equals legacyTenure — in particular a survivor-
		// overflow promotion must not be tagged.
		m.SetStatus(dst, m.Status(dst)|vm.FlagPretenured)
	}
	m.SetForwardee(a, dst)
	if promoted {
		s.bytesPromoted += int64(size) * vm.WordSize
	} else {
		s.bytesCopied += int64(size) * vm.WordSize
	}
	c.gangCharge(time.Duration(int64(size)*vm.WordSize) * c.Costs.CopyPerByte)
	s.worklist = append(s.worklist, dst)
	c.policy.NoteScavenge(site, age, promoted)
	return dst
}

// drain processes the scavenge worklist and any pending H2 moves until
// both are empty.
func (s *scavenger) drain() {
	for len(s.worklist) > 0 || s.h2head < len(s.h2moves) {
		for len(s.worklist) > 0 {
			dst := s.worklist[len(s.worklist)-1]
			s.worklist = s.worklist[:len(s.worklist)-1]
			s.c.gangBegin()
			s.scanCopied(dst)
		}
		for s.h2head < len(s.h2moves) {
			// FIFO so commits reach each region's promotion buffer in
			// ascending address order.
			mv := s.h2moves[s.h2head]
			s.h2head++
			s.c.gangBegin()
			s.commitH2Move(mv)
		}
	}
}

// scanCopied visits the reference fields of a freshly copied object,
// evacuating any young targets.
func (s *scavenger) scanCopied(dst vm.Addr) {
	c := s.c
	m := c.Mem
	n := m.NumRefs(dst)
	anyYoung := false
	for i := 0; i < n; i++ {
		t := m.RefAt(dst, i)
		s.refsScanned++
		c.gangCharge(c.Costs.ScanPerRef)
		if t.IsNull() || c.TH.Contains(t) {
			continue // fence: never cross into H2
		}
		if c.H1.InYoung(t) {
			nt := s.copyYoung(t)
			m.SetRefAt(dst, i, nt)
			if c.H1.InYoung(nt) {
				anyYoung = true
			}
		}
	}
	if anyYoung && c.H1.InOld(dst) {
		c.H1.Cards.MarkDirty(dst)
	}
}

// commitH2Move builds the final object image for a young object bound for
// H2 and writes it through the promotion buffer. References to young
// objects are resolved (evacuating them if necessary); remaining H1
// references become backward references, H2 references become cross-region
// dependencies.
func (s *scavenger) commitH2Move(mv pendingH2Move) {
	c := s.c
	m := c.Mem
	shape := m.Shape(mv.src)
	size := int(uint32(shape))
	numRefs := int(shape >> 32)
	label := m.Label(mv.src)

	image := c.imageBuf
	if cap(image) < size {
		image = make([]uint64, size)
	} else {
		image = image[:size]
	}
	// Clear mark AND closure bits, matching majorCompact: a young object
	// selected into a closure by a prior major mark and then
	// direct-promoted must not carry a stale closure bit into H2. The
	// pretenured bit is stripped too — placement attribution ends once
	// the object reaches H2.
	image[0] = mv.status &^ (vm.FlagMark | vm.FlagClosure | vm.FlagPretenured)
	image[1] = shape
	image[2] = label
	for i := 0; i < numRefs; i++ {
		t := vm.Addr(m.AS.Load(mv.src + vm.Addr((vm.HeaderWords+i)*vm.WordSize)))
		s.refsScanned++
		c.gangCharge(c.Costs.ScanPerRef)
		switch {
		case t.IsNull():
		case c.TH.Contains(t):
			c.TH.NoteCrossRegionRef(mv.dst, t)
		case c.H1.InYoung(t):
			// The transitive closure travels with the root: young
			// children inherit the label (unless excluded) so they
			// promote to H2 in the same scavenge rather than being
			// stranded in H1 once the root's registry entry is pruned.
			if label != 0 && !m.Forwarded(t) && m.Label(t) == 0 &&
				!c.TH.ExcludeClass(m.ClassOf(t)) {
				m.SetLabel(t, label)
			}
			nt := s.copyYoung(t)
			t = nt
			if c.TH.Contains(nt) {
				c.TH.NoteCrossRegionRef(mv.dst, nt)
			} else {
				c.TH.NoteBackwardRef(mv.dst, c.H1.InYoung(nt))
			}
		default: // old generation
			c.TH.NoteBackwardRef(mv.dst, false)
		}
		image[vm.HeaderWords+i] = uint64(t)
	}
	// Primitive words.
	for i := vm.HeaderWords + numRefs; i < size; i++ {
		image[i] = m.AS.Load(mv.src + vm.Addr(i*vm.WordSize))
	}
	c.TH.CommitMove(mv.dst, image) // copies image; safe to reuse
	c.imageBuf = image
}

// scanDirtyCards walks old-generation objects in dirty cards, evacuating
// their young targets and re-dirtying cards that still reference survivors.
func (s *scavenger) scanDirtyCards() {
	c := s.c
	cards := c.H1.Cards
	n := cards.NumCards()
	// The sweep examines every card, almost all clean: dealing each as an
	// individual work item would put two gang calls on the hottest loop in
	// the collector. Instead the whole sweep is dealt in one bulk step —
	// charge-equivalent to per-card dealing — and only dirty cards (the
	// expensive path) touch the gang, rebinding the cursor to the worker
	// the bulk deal assigned their index.
	if gng := c.gng; gng != nil {
		sweepStart := gng.next
		gng.sweepUniform(n, c.Costs.PerCard)
		for i := 0; i < n; i++ {
			s.cardsScanned++
			if cards.Get(i) != heap.CardDirty {
				continue
			}
			gng.cur = (sweepStart + i) % gng.spans.Workers()
			s.scanCard(i)
		}
		return
	}
	// Serial sweep: a separate loop keeps register pressure off the
	// clean-card fast path (the gang cursor state would otherwise spill
	// the receiver to the stack on every iteration).
	for i := 0; i < n; i++ {
		s.cardsScanned++
		if cards.Get(i) != heap.CardDirty {
			continue
		}
		s.scanCard(i)
	}
}

// scanCard walks the old-generation objects spanning one dirty card,
// evacuating their young targets and re-dirtying the card if it still
// references survivors.
func (s *scavenger) scanCard(i int) {
	c := s.c
	m := c.Mem
	cards := c.H1.Cards
	cards.Set(i, heap.CardClean)
	_, hi := cards.CardBounds(i)
	obj := c.startArray[i]
	anyYoung := false
	for !obj.IsNull() && obj < hi && obj < s.oldTop {
		s.cardObjects++
		c.gangCharge(c.Costs.PerCardObject)
		nrefs := m.NumRefs(obj)
		for f := 0; f < nrefs; f++ {
			t := m.RefAt(obj, f)
			s.refsScanned++
			c.gangCharge(c.Costs.ScanPerRef)
			if t.IsNull() || c.TH.Contains(t) {
				continue
			}
			if c.H1.InYoung(t) {
				nt := s.copyYoung(t)
				m.SetRefAt(obj, f, nt)
				if c.H1.InYoung(nt) {
					anyYoung = true
				}
			}
		}
		obj += vm.Addr(m.SizeWords(obj) * vm.WordSize)
	}
	if anyYoung {
		cards.Set(i, heap.CardDirty)
	}
}
