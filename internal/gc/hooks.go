package gc

// Collector lifecycle hooks: the one extension point for cross-cutting
// layers (invariant verification, fault/event accounting, tracing, memory
// profiling). Both collectors — Parallel Scavenge here and the G1 baseline
// in internal/baselines/g1 — fire the same events, so a layer registers
// one Hook and observes every runtime kind without editing any collector.
//
// Hooks observe; they must not mutate the heap, allocate in it, or charge
// simulated time, so a run's results are byte-identical with any set of
// hooks registered. (The verifier hook enforces its findings by panicking
// with a structured report, which is an abort, not a mutation.) Two
// sanctioned exceptions exist. The recovery layer (internal/recovery):
// its OnFault fires only at collector safepoints and only after a fault
// has already perturbed the run, so the byte-identity contract — which is
// quantified over fault-free runs — is preserved. And the writeback drain
// hook (internal/rt): its BeforeGC charges the device writeback queue's
// residual service time as mutator wait, which is exactly the queue's
// purpose; the hook only exists on sessions that opted into the queue, so
// default-configuration runs stay byte-identical.

// Phase identifies the collection type a lifecycle event belongs to.
type Phase int

// Collection phases. PS maps minor→PhaseMinor and major→PhaseMajor; G1
// maps young→PhaseMinor, concurrent-mark+mixed→PhaseMixed, and full
// compaction→PhaseMajor.
const (
	PhaseMinor Phase = iota
	PhaseMajor
	PhaseMixed
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseMinor:
		return "minor"
	case PhaseMajor:
		return "major"
	case PhaseMixed:
		return "mixed"
	}
	return "unknown"
}

// Hook observes collector lifecycle events.
type Hook interface {
	// BeforeGC fires at the start of a collection pause, before any object
	// moves; AfterGC fires after the pause's bookkeeping completes.
	BeforeGC(p Phase)
	AfterGC(p Phase)
	// OnFault fires once, when a persistent device failure latches on the
	// collector.
	OnFault(err error)
	// OnOOM fires once, when an out-of-memory condition latches.
	OnOOM(err error)
}

// BaseHook is a no-op Hook for embedding: implementations override only
// the events they care about.
type BaseHook struct{}

// BeforeGC is a no-op.
func (BaseHook) BeforeGC(Phase) {}

// AfterGC is a no-op.
func (BaseHook) AfterGC(Phase) {}

// OnFault is a no-op.
func (BaseHook) OnFault(error) {}

// OnOOM is a no-op.
func (BaseHook) OnOOM(error) {}

// Hooks is an ordered hook list; registration order is invocation order.
// The zero value is an empty, usable list. Like the collector itself it is
// not safe for concurrent mutation: a run is single-threaded by
// construction.
//
// Mutation during dispatch is allowed: each fan-out iterates the list as
// registered when the event fired, so a hook that registers, removes, or
// removes *itself* from inside a callback never perturbs the in-flight
// event — a hook added during dispatch first sees the next event, and a
// hook removed during dispatch still sees the current one. The recovery
// layer relies on this to retire itself from inside OnFault.
type Hooks struct {
	list []Hook
}

// Register appends h to the list.
func (hs *Hooks) Register(h Hook) {
	hs.list = append(hs.list, h)
}

// RegisterFirst prepends h, so it observes every event before the hooks
// already registered (the verifier uses this: it must see the heap before
// any other layer reacts to the event).
func (hs *Hooks) RegisterFirst(h Hook) {
	hs.list = append([]Hook{h}, hs.list...)
}

// Remove deletes the first registered hook equal to h, preserving order.
// It reports whether a hook was removed. The removal is copy-on-write so
// an in-flight fan-out (which holds the old slice header) is never
// perturbed — required for hooks that remove themselves from inside a
// callback.
func (hs *Hooks) Remove(h Hook) bool {
	for i, x := range hs.list {
		if x == h {
			next := make([]Hook, 0, len(hs.list)-1)
			next = append(next, hs.list[:i]...)
			next = append(next, hs.list[i+1:]...)
			hs.list = next
			return true
		}
	}
	return false
}

// Len returns the number of registered hooks.
func (hs *Hooks) Len() int { return len(hs.list) }

// BeforeGC fans the event out in registration order.
func (hs *Hooks) BeforeGC(p Phase) {
	for _, h := range hs.list {
		h.BeforeGC(p)
	}
}

// AfterGC fans the event out in registration order.
func (hs *Hooks) AfterGC(p Phase) {
	for _, h := range hs.list {
		h.AfterGC(p)
	}
}

// OnFault fans the event out in registration order.
func (hs *Hooks) OnFault(err error) {
	for _, h := range hs.list {
		h.OnFault(err)
	}
}

// OnOOM fans the event out in registration order.
func (hs *Hooks) OnOOM(err error) {
	for _, h := range hs.list {
		h.OnOOM(err)
	}
}

// verifyHook runs the full-heap invariant verifier around every pause: the
// first stock implementation of the hook plane (the VerifyBeforeGC/
// VerifyAfterGC analog). It panics with a structured report on the first
// violation.
type verifyHook struct {
	BaseHook
	c *Collector
}

// psPhaseName keeps the verifier's report labels identical to the
// pre-hook-plane call sites.
func psPhaseName(p Phase) string {
	if p == PhaseMajor {
		return "major GC"
	}
	return "minor GC"
}

func (h *verifyHook) BeforeGC(p Phase) { h.c.runVerify("before " + psPhaseName(p)) }
func (h *verifyHook) AfterGC(p Phase)  { h.c.runVerify("after " + psPhaseName(p)) }
