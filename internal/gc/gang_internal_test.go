package gc

import (
	"testing"
	"time"
)

// TestSweepUniformMatchesPerItemDealing pins the bulk-deal fast path to
// the per-item semantics it replaces: for every (workers, offset, n)
// combination, sweepUniform must leave the same per-worker charges and
// the same cursor state as dealing each item individually.
func TestSweepUniformMatchesPerItemDealing(t *testing.T) {
	const per = 3 * time.Microsecond
	for _, workers := range []int{1, 2, 3, 4, 7, 8} {
		for offset := 0; offset < workers; offset++ {
			for _, n := range []int{0, 1, 2, workers - 1, workers, workers + 1, 3*workers + 2, 1000} {
				if n < 0 {
					continue
				}
				var bulk, serial gang
				bulk.reset(workers)
				serial.reset(workers)
				// Advance both cursors to the same mid-phase offset.
				for j := 0; j < offset; j++ {
					bulk.beginItem()
					serial.beginItem()
				}

				bulk.sweepUniform(n, per)
				for j := 0; j < n; j++ {
					serial.beginItem()
					serial.charge(per)
				}

				for w := 0; w < workers; w++ {
					if got, want := bulk.spans.Get(w), serial.spans.Get(w); got != want {
						t.Fatalf("workers=%d offset=%d n=%d: worker %d charged %v, per-item dealing charges %v",
							workers, offset, n, w, got, want)
					}
				}
				if n > 0 {
					if bulk.cur != serial.cur {
						t.Fatalf("workers=%d offset=%d n=%d: cur=%d, per-item dealing leaves %d",
							workers, offset, n, bulk.cur, serial.cur)
					}
				}
				if bulk.next != serial.next {
					t.Fatalf("workers=%d offset=%d n=%d: next=%d, per-item dealing leaves %d",
						workers, offset, n, bulk.next, serial.next)
				}
			}
		}
	}
}
