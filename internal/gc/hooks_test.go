package gc

import (
	"errors"
	"testing"
)

// recHook records the events it sees and optionally runs a side effect
// inside OnFault — the mutation-during-dispatch surface the recovery
// layer depends on.
type recHook struct {
	BaseHook
	name    string
	events  *[]string
	onFault func()
}

func (h *recHook) BeforeGC(p Phase) { *h.events = append(*h.events, h.name+":before") }
func (h *recHook) AfterGC(p Phase)  { *h.events = append(*h.events, h.name+":after") }
func (h *recHook) OnFault(error) {
	*h.events = append(*h.events, h.name+":fault")
	if h.onFault != nil {
		h.onFault()
	}
}

// TestHooksOrdering checks Register/RegisterFirst invocation order for
// every event kind.
func TestHooksOrdering(t *testing.T) {
	var events []string
	hs := &Hooks{}
	hs.Register(&recHook{name: "a", events: &events})
	hs.Register(&recHook{name: "b", events: &events})
	hs.RegisterFirst(&recHook{name: "v", events: &events})

	hs.BeforeGC(PhaseMinor)
	hs.OnFault(errors.New("x"))
	hs.AfterGC(PhaseMinor)

	want := []string{"v:before", "a:before", "b:before",
		"v:fault", "a:fault", "b:fault",
		"v:after", "a:after", "b:after"}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events[%d] = %q, want %q (full: %v)", i, events[i], want[i], events)
		}
	}
}

// TestHooksRemove checks removal semantics: first match only, order
// preserved, and a miss reports false.
func TestHooksRemove(t *testing.T) {
	var events []string
	hs := &Hooks{}
	a := &recHook{name: "a", events: &events}
	b := &recHook{name: "b", events: &events}
	c := &recHook{name: "c", events: &events}
	hs.Register(a)
	hs.Register(b)
	hs.Register(c)

	if !hs.Remove(b) {
		t.Fatal("Remove(b) = false, want true")
	}
	if hs.Remove(b) {
		t.Fatal("second Remove(b) = true, want false")
	}
	if hs.Len() != 2 {
		t.Fatalf("Len = %d, want 2", hs.Len())
	}
	hs.BeforeGC(PhaseMajor)
	if len(events) != 2 || events[0] != "a:before" || events[1] != "c:before" {
		t.Fatalf("after removal events = %v, want [a:before c:before]", events)
	}
}

// TestHookRegistersHookDuringDispatch: a hook registered from inside
// OnFault must not see the in-flight event, but must see the next one.
func TestHookRegistersHookDuringDispatch(t *testing.T) {
	var events []string
	hs := &Hooks{}
	late := &recHook{name: "late", events: &events}
	hs.Register(&recHook{name: "a", events: &events, onFault: func() {
		hs.Register(late)
	}})

	hs.OnFault(errors.New("x"))
	if len(events) != 1 || events[0] != "a:fault" {
		t.Fatalf("in-flight events = %v, want [a:fault]: hook registered during dispatch leaked into the current event", events)
	}
	events = events[:0]
	hs.OnFault(errors.New("y"))
	if len(events) != 2 || events[1] != "late:fault" {
		t.Fatalf("next-event fan-out = %v, want [a:fault late:fault]", events)
	}
}

// TestHookRemovesItselfDuringDispatch: self-removal inside OnFault (the
// recovery layer's Uninstall-from-callback path) must complete the
// in-flight event and drop the hook from subsequent ones.
func TestHookRemovesItselfDuringDispatch(t *testing.T) {
	var events []string
	hs := &Hooks{}
	var self *recHook
	self = &recHook{name: "self", events: &events, onFault: func() {
		if !hs.Remove(self) {
			t.Error("self-removal failed")
		}
	}}
	hs.Register(self)
	after := &recHook{name: "after", events: &events}
	hs.Register(after)

	hs.OnFault(errors.New("x"))
	if len(events) != 2 || events[0] != "self:fault" || events[1] != "after:fault" {
		t.Fatalf("in-flight events = %v, want [self:fault after:fault]: removal during dispatch perturbed the fan-out", events)
	}
	if hs.Len() != 1 {
		t.Fatalf("Len = %d after self-removal, want 1", hs.Len())
	}
	events = events[:0]
	hs.OnFault(errors.New("y"))
	if len(events) != 1 || events[0] != "after:fault" {
		t.Fatalf("next-event fan-out = %v, want [after:fault]", events)
	}
}

// TestHookRemovesLaterHookDuringDispatch: removing a not-yet-visited hook
// mid-dispatch must still deliver the in-flight event to it (the fan-out
// iterates the list as it stood when the event fired), while excluding it
// from subsequent events.
func TestHookRemovesLaterHookDuringDispatch(t *testing.T) {
	var events []string
	hs := &Hooks{}
	victim := &recHook{name: "victim", events: &events}
	hs.Register(&recHook{name: "a", events: &events, onFault: func() {
		hs.Remove(victim)
	}})
	hs.Register(victim)

	hs.OnFault(errors.New("x"))
	if len(events) != 2 || events[1] != "victim:fault" {
		t.Fatalf("in-flight events = %v, want [a:fault victim:fault]: COW removal must not hide the hook from the current event", events)
	}
	events = events[:0]
	hs.OnFault(errors.New("y"))
	if len(events) != 1 || events[0] != "a:fault" {
		t.Fatalf("next-event fan-out = %v, want [a:fault]", events)
	}
}
