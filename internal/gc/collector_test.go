package gc_test

import (
	"testing"

	"github.com/carv-repro/teraheap-go/internal/gc"
	"github.com/carv-repro/teraheap-go/internal/heap"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// testEnv bundles a small vanilla-JVM collector for tests.
type testEnv struct {
	clock   *simclock.Clock
	classes *vm.ClassTable
	col     *gc.Collector
	node    *vm.Class // 2 refs, 1 prim
	cell    *vm.Class // 0 refs, 1 prim
	arr     *vm.Class // ref array
	parr    *vm.Class // prim array
}

func newTestEnv(t *testing.T, h1Size int64) *testEnv {
	t.Helper()
	clock := simclock.New()
	classes := vm.NewClassTable()
	e := &testEnv{
		clock:   clock,
		classes: classes,
		node:    classes.MustFixed("Node", 2, 1),
		cell:    classes.MustFixed("Cell", 0, 1),
		arr:     classes.MustRefArray("Object[]"),
		parr:    classes.MustPrimArray("long[]"),
	}
	as := &vm.AddressSpace{}
	e.col = gc.New(gc.Config{Heap: heap.DefaultConfig(h1Size), Costs: gc.DefaultCostParams()}, as, classes, clock, nil)
	return e
}

// allocNode builds a Node{left, right, value}.
func (e *testEnv) allocNode(t *testing.T, left, right vm.Addr, value uint64) vm.Addr {
	t.Helper()
	a, err := e.col.Alloc(e.node)
	if err != nil {
		t.Fatalf("alloc node: %v", err)
	}
	e.col.WriteRef(a, 0, left)
	e.col.WriteRef(a, 1, right)
	e.col.WritePrim(a, 0, value)
	return a
}

// buildList builds a linked list of n nodes (next in ref 0), values 0..n-1,
// returning a rooted handle to the head.
func (e *testEnv) buildList(t *testing.T, n int) *vm.Handle {
	t.Helper()
	head := e.col.NewHandle(vm.NullAddr)
	for i := n - 1; i >= 0; i-- {
		a := e.allocNode(t, head.Addr(), vm.NullAddr, uint64(i))
		head.Set(a)
	}
	return head
}

// checkList verifies the list under h holds values 0..n-1.
func (e *testEnv) checkList(t *testing.T, h *vm.Handle, n int) {
	t.Helper()
	a := h.Addr()
	for i := 0; i < n; i++ {
		if a.IsNull() {
			t.Fatalf("list truncated at %d/%d", i, n)
		}
		if got := e.col.ReadPrim(a, 0); got != uint64(i) {
			t.Fatalf("node %d: value %d, want %d", i, got, i)
		}
		a = e.col.ReadRef(a, 0)
	}
	if !a.IsNull() {
		t.Fatalf("list longer than %d nodes", n)
	}
}

func TestAllocAndRead(t *testing.T) {
	e := newTestEnv(t, 1<<20)
	a := e.allocNode(t, vm.NullAddr, vm.NullAddr, 42)
	if got := e.col.ReadPrim(a, 0); got != 42 {
		t.Fatalf("prim = %d, want 42", got)
	}
	if got := e.col.ReadRef(a, 0); !got.IsNull() {
		t.Fatalf("fresh ref field = %v, want null", got)
	}
	if e.col.Mem.ClassOf(a).Name != "Node" {
		t.Fatalf("class = %q", e.col.Mem.ClassOf(a).Name)
	}
}

func TestMinorGCPreservesGraph(t *testing.T) {
	e := newTestEnv(t, 1<<20)
	h := e.buildList(t, 50)
	if err := e.col.MinorGC(); err != nil {
		t.Fatalf("minor GC: %v", err)
	}
	e.checkList(t, h, 50)
	if e.col.Stats().MinorCount != 1 {
		t.Fatalf("minor count = %d", e.col.Stats().MinorCount)
	}
}

func TestMinorGCDropsGarbage(t *testing.T) {
	e := newTestEnv(t, 1<<20)
	h := e.buildList(t, 10)
	g := e.buildList(t, 1000) // garbage after release
	e.col.Release(g)
	usedBefore := e.col.H1.YoungUsed()
	if err := e.col.MinorGC(); err != nil {
		t.Fatalf("minor GC: %v", err)
	}
	e.checkList(t, h, 10)
	usedAfter := e.col.H1.YoungUsed() + e.col.H1.Old.Used()
	if usedAfter >= usedBefore {
		t.Fatalf("no reclamation: before=%d after=%d", usedBefore, usedAfter)
	}
}

func TestTenuringPromotesToOld(t *testing.T) {
	e := newTestEnv(t, 1<<20)
	h := e.buildList(t, 20)
	for i := 0; i < e.col.H1.Cfg.TenureAge+1; i++ {
		if err := e.col.MinorGC(); err != nil {
			t.Fatalf("minor GC %d: %v", i, err)
		}
	}
	if !e.col.H1.InOld(h.Addr()) {
		t.Fatalf("head not tenured: %v", h.Addr())
	}
	e.checkList(t, h, 20)
}

func TestCardTableTracksOldToYoung(t *testing.T) {
	e := newTestEnv(t, 1<<20)
	// Tenure a node into the old generation.
	h := e.buildList(t, 1)
	for i := 0; i < e.col.H1.Cfg.TenureAge+1; i++ {
		if err := e.col.MinorGC(); err != nil {
			t.Fatal(err)
		}
	}
	old := h.Addr()
	if !e.col.H1.InOld(old) {
		t.Fatalf("setup: node not in old gen")
	}
	// Point the old node at a fresh young node; the ONLY reference to the
	// young node is the old->young edge, so survival proves the card
	// table works.
	young := e.allocNode(t, vm.NullAddr, vm.NullAddr, 777)
	e.col.WriteRef(old, 1, young)
	if err := e.col.MinorGC(); err != nil {
		t.Fatal(err)
	}
	got := e.col.ReadRef(old, 1)
	if got.IsNull() {
		t.Fatal("young target lost")
	}
	if v := e.col.ReadPrim(got, 0); v != 777 {
		t.Fatalf("young target value = %d, want 777", v)
	}
}

func TestMajorGCCompactsAndPreserves(t *testing.T) {
	e := newTestEnv(t, 1<<21)
	h := e.buildList(t, 200)
	g := e.buildList(t, 2000)
	// Push everything into the old generation.
	for i := 0; i < 5; i++ {
		if err := e.col.MinorGC(); err != nil {
			t.Fatal(err)
		}
	}
	e.col.Release(g)
	oldUsedBefore := e.col.H1.Old.Used()
	if err := e.col.MajorGC(); err != nil {
		t.Fatalf("major GC: %v", err)
	}
	e.checkList(t, h, 200)
	if got := e.col.H1.Old.Used(); got >= oldUsedBefore {
		t.Fatalf("compaction reclaimed nothing: before=%d after=%d", oldUsedBefore, got)
	}
	if e.col.H1.YoungUsed() != 0 {
		t.Fatalf("young not empty after major GC: %d", e.col.H1.YoungUsed())
	}
}

func TestRefArrayAndPrimArray(t *testing.T) {
	e := newTestEnv(t, 1<<20)
	arr, err := e.col.AllocRefArray(e.arr, 16)
	if err != nil {
		t.Fatal(err)
	}
	ah := e.col.NewHandle(arr)
	for i := 0; i < 16; i++ {
		n := e.allocNode(t, vm.NullAddr, vm.NullAddr, uint64(i*i))
		e.col.WriteRef(ah.Addr(), i, n)
	}
	p, err := e.col.AllocPrimArray(e.parr, 8)
	if err != nil {
		t.Fatal(err)
	}
	ph := e.col.NewHandle(p)
	for i := 0; i < 8; i++ {
		e.col.WritePrim(ph.Addr(), i, uint64(100+i))
	}
	if err := e.col.MinorGC(); err != nil {
		t.Fatal(err)
	}
	if err := e.col.MajorGC(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		n := e.col.ReadRef(ah.Addr(), i)
		if v := e.col.ReadPrim(n, 0); v != uint64(i*i) {
			t.Fatalf("arr[%d] = %d, want %d", i, v, i*i)
		}
	}
	for i := 0; i < 8; i++ {
		if v := e.col.ReadPrim(ph.Addr(), i); v != uint64(100+i) {
			t.Fatalf("prim[%d] = %d, want %d", i, v, 100+i)
		}
	}
}

func TestOOMOnHeapExhaustion(t *testing.T) {
	e := newTestEnv(t, 1<<17) // 128 KB heap
	h := e.col.NewHandle(vm.NullAddr)
	var err error
	for i := 0; i < 1_000_000; i++ {
		var a vm.Addr
		a, err = e.col.Alloc(e.node)
		if err != nil {
			break
		}
		e.col.WriteRef(a, 0, h.Addr())
		h.Set(a) // keep everything live
	}
	if err == nil {
		t.Fatal("expected OOM, got none")
	}
	if _, ok := err.(*gc.OOMError); !ok {
		t.Fatalf("error type %T, want *gc.OOMError", err)
	}
	if e.col.OOM() == nil {
		t.Fatal("OOM not latched")
	}
}

func TestSharedStructurePreservedAcrossGC(t *testing.T) {
	e := newTestEnv(t, 1<<20)
	shared := e.allocNode(t, vm.NullAddr, vm.NullAddr, 9)
	a := e.allocNode(t, shared, vm.NullAddr, 1)
	b := e.allocNode(t, shared, vm.NullAddr, 2)
	ha, hb := e.col.NewHandle(a), e.col.NewHandle(b)
	if err := e.col.MinorGC(); err != nil {
		t.Fatal(err)
	}
	if err := e.col.MajorGC(); err != nil {
		t.Fatal(err)
	}
	sa := e.col.ReadRef(ha.Addr(), 0)
	sb := e.col.ReadRef(hb.Addr(), 0)
	if sa != sb {
		t.Fatalf("shared object duplicated: %v vs %v", sa, sb)
	}
	if v := e.col.ReadPrim(sa, 0); v != 9 {
		t.Fatalf("shared value = %d", v)
	}
}

func TestGCTimeIsCharged(t *testing.T) {
	e := newTestEnv(t, 1<<20)
	_ = e.buildList(t, 500)
	if err := e.col.MinorGC(); err != nil {
		t.Fatal(err)
	}
	if err := e.col.MajorGC(); err != nil {
		t.Fatal(err)
	}
	b := e.clock.Breakdown()
	if b.Get(simclock.MinorGC) <= 0 {
		t.Fatal("no minor GC time charged")
	}
	if b.Get(simclock.MajorGC) <= 0 {
		t.Fatal("no major GC time charged")
	}
	cys := e.col.Stats().Cycles
	if len(cys) != 2 {
		t.Fatalf("cycles = %d, want 2", len(cys))
	}
	var phases int
	for p := 0; p < int(gc.NumMajorPhases); p++ {
		if cys[1].Phases[p] > 0 {
			phases++
		}
	}
	if phases == 0 {
		t.Fatal("no major GC phase durations recorded")
	}
}

func TestMajorGCOOMWhenLiveExceedsOld(t *testing.T) {
	e := newTestEnv(t, 1<<17)
	// Keep everything live until compaction cannot fit it.
	h := e.col.NewHandle(vm.NullAddr)
	var err error
	for i := 0; i < 100000; i++ {
		var a vm.Addr
		a, err = e.col.Alloc(e.node)
		if err != nil {
			break
		}
		e.col.WriteRef(a, 0, h.Addr())
		h.Set(a)
	}
	var oom *gc.OOMError
	if err == nil {
		t.Fatal("no OOM")
	}
	if !errorsAs(err, &oom) {
		t.Fatalf("error %T", err)
	}
	// Latched: all further allocations fail fast.
	if _, err2 := e.col.Alloc(e.node); err2 == nil {
		t.Fatal("allocation succeeded after OOM")
	}
}

func errorsAs(err error, target **gc.OOMError) bool {
	o, ok := err.(*gc.OOMError)
	if ok {
		*target = o
	}
	return ok
}

func TestLargeObjectGoesDirectlyOld(t *testing.T) {
	e := newTestEnv(t, 1<<20)
	// Bigger than half of eden: bypasses the young generation.
	edenCap := e.col.H1.Eden.Capacity()
	n := int(edenCap/8/2) + 64
	a, err := e.col.AllocPrimArray(e.parr, n)
	if err != nil {
		t.Fatal(err)
	}
	if !e.col.H1.InOld(a) {
		t.Fatalf("large object in young gen: %v", a)
	}
}

func TestBarrierCountsExecutions(t *testing.T) {
	e := newTestEnv(t, 1<<20)
	a := e.allocNode(t, vm.NullAddr, vm.NullAddr, 1)
	n0 := e.col.Stats().BarrierExecutions
	e.col.WriteRef(a, 0, vm.NullAddr)
	e.col.WriteRef(a, 1, vm.NullAddr)
	if got := e.col.Stats().BarrierExecutions - n0; got != 2 {
		t.Fatalf("barriers = %d", got)
	}
}

func TestHandleReleasedMidGraphIsCollected(t *testing.T) {
	e := newTestEnv(t, 1<<20)
	keep := e.buildList(t, 10)
	drop := e.buildList(t, 500)
	usedBefore := e.col.H1.Used()
	e.col.Release(drop)
	if !drop.IsNull() {
		t.Fatal("release did not null the handle")
	}
	if err := e.col.MajorGC(); err != nil {
		t.Fatal(err)
	}
	if e.col.H1.Used() >= usedBefore {
		t.Fatal("garbage survived")
	}
	e.checkList(t, keep, 10)
}
