package gc

import "github.com/carv-repro/teraheap-go/internal/vm"

// SecondHeap is the contract between the Parallel Scavenge collector and
// TeraHeap's H2 (implemented by internal/core). It captures exactly the
// paper's PS extensions (§4): the post-write barrier range check, fencing,
// backward-reference card scanning, transitive-closure movement, and the
// per-phase bookkeeping for regions.
//
// A nil SecondHeap (or NoSecondHeap) yields vanilla Parallel Scavenge.
type SecondHeap interface {
	// Contains is the reference range check: does a point into H2?
	Contains(a vm.Addr) bool

	// DirtyCard is invoked by the post-write barrier when a mutator
	// updates a reference field of an H2 object.
	DirtyCard(a vm.Addr)

	// MoveOnMinor reports whether objects tagged with label should be
	// promoted directly from the young generation to H2 during minor GC
	// (the label's move hint has been issued).
	MoveOnMinor(label uint64) bool

	// ScanBackwardRefs walks the H2 card table. For minor GC (major ==
	// false) it scans segments in the dirty or youngGen states; for major
	// GC it also scans oldGen segments. For every reference field of every
	// H2 object in a scanned segment that points into H1, visit is called
	// with the holder region's label and the target, and must return the
	// (possibly moved) new target, which is stored back. Afterwards each
	// scanned segment's card state is recomputed using isYoung to
	// classify remaining backward refs. The label lets the major GC pull
	// H1 stragglers referenced by an advised-label region into that
	// group's closure.
	ScanBackwardRefs(major bool, visit func(regionLabel uint64, target vm.Addr) vm.Addr, isYoung func(vm.Addr) bool)

	// PrepareMove reserves sizeWords of H2 space in the region set of
	// label, returning the destination address. It fails (false) when H2
	// is exhausted; the collector then keeps the object in H1.
	PrepareMove(label uint64, sizeWords int) (vm.Addr, bool)

	// CommitMove writes the fully adjusted object image to dst through
	// the per-region promotion buffer (batched asynchronous device I/O).
	// Implementations must not retain words after returning: the collector
	// reuses the backing buffer for the next image.
	CommitMove(dst vm.Addr, words []uint64)

	// FlushBuffers drains all promotion buffers to the device.
	FlushBuffers()

	// NoteCrossRegionRef records a reference from the H2 object at fromH2
	// to the H2 object at toH2, updating dependency lists (or region
	// groups in Union-Find mode).
	NoteCrossRegionRef(fromH2, toH2 vm.Addr)

	// NoteBackwardRef records that the H2 object at h2obj holds a
	// reference into H1, dirtying the corresponding H2 card.
	NoteBackwardRef(h2obj vm.Addr, youngTarget bool)

	// BeginMajorMark resets all region live bits at the start of the
	// marking phase and evaluates the high/low threshold policy against
	// the old generation's current usage, so a collection that starts
	// under pressure moves marked objects within the same cycle (§3.2).
	BeginMajorMark(oldUsedBytes, oldCapacity int64)

	// EvaluatePressure re-arms the threshold policy with an exact live
	// measurement (called after marking, when the live volume is known).
	EvaluatePressure(liveBytes, oldCapacity int64)

	// TaggedRoots returns the registered root key-objects in registration
	// order (dead handles are pruned).
	TaggedRoots() []TaggedRoot

	// Advised reports whether label's h2_move hint has been issued (its
	// object group is immutable and cheap to move).
	Advised(label uint64) bool

	// ShouldMoveLabel decides whether the closure of label moves to H2 in
	// this major GC: true when the label's h2_move hint was issued, or
	// when the high-threshold mechanism forces movement (bounded by the
	// low threshold, expressed through selectedWords).
	ShouldMoveLabel(label uint64, selectedWords int64) bool

	// ExcludeClass reports classes excluded from transitive closures
	// (JVM metadata and Reference-like classes, §3.2).
	ExcludeClass(c *vm.Class) bool

	// NoteForwardRef marks the H2 region containing target as live and
	// propagates liveness through its dependency list (§3.3).
	NoteForwardRef(target vm.Addr)

	// FinishMajor frees dead H2 regions in bulk and evaluates the
	// high/low threshold policy given the old generation's live bytes.
	FinishMajor(oldLiveBytes, oldCapacity int64)
}

// TaggedRoot pairs a rooted handle with the label it was tagged with.
type TaggedRoot struct {
	Handle *vm.Handle
	Label  uint64
}

// NoSecondHeap is the vanilla-JVM configuration: every method is inert.
type NoSecondHeap struct{}

// Contains always reports false.
func (NoSecondHeap) Contains(vm.Addr) bool { return false }

// DirtyCard is a no-op.
func (NoSecondHeap) DirtyCard(vm.Addr) {}

// MoveOnMinor always reports false.
func (NoSecondHeap) MoveOnMinor(uint64) bool { return false }

// ScanBackwardRefs is a no-op.
func (NoSecondHeap) ScanBackwardRefs(bool, func(uint64, vm.Addr) vm.Addr, func(vm.Addr) bool) {}

// PrepareMove always fails.
func (NoSecondHeap) PrepareMove(uint64, int) (vm.Addr, bool) { return vm.NullAddr, false }

// CommitMove is a no-op.
func (NoSecondHeap) CommitMove(vm.Addr, []uint64) {}

// FlushBuffers is a no-op.
func (NoSecondHeap) FlushBuffers() {}

// NoteCrossRegionRef is a no-op.
func (NoSecondHeap) NoteCrossRegionRef(vm.Addr, vm.Addr) {}

// NoteBackwardRef is a no-op.
func (NoSecondHeap) NoteBackwardRef(vm.Addr, bool) {}

// BeginMajorMark is a no-op.
func (NoSecondHeap) BeginMajorMark(int64, int64) {}

// EvaluatePressure is a no-op.
func (NoSecondHeap) EvaluatePressure(int64, int64) {}

// TaggedRoots returns nil.
func (NoSecondHeap) TaggedRoots() []TaggedRoot { return nil }

// Advised always reports false.
func (NoSecondHeap) Advised(uint64) bool { return false }

// ShouldMoveLabel always reports false.
func (NoSecondHeap) ShouldMoveLabel(uint64, int64) bool { return false }

// ExcludeClass always reports false.
func (NoSecondHeap) ExcludeClass(*vm.Class) bool { return false }

// NoteForwardRef is a no-op.
func (NoSecondHeap) NoteForwardRef(vm.Addr) {}

// FinishMajor is a no-op.
func (NoSecondHeap) FinishMajor(int64, int64) {}

var _ SecondHeap = NoSecondHeap{}
