package gc_test

import (
	"testing"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/fault"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// fallbackEnv builds a TH JVM with the verifier on, a tagged+advised
// closure of count 1024-word arrays hanging off one root, and returns the
// pieces the exhaustion tests inspect.
func fallbackEnv(t *testing.T, h2Size int64, count int) (*rt.JVM, *core.TeraHeap, *vm.Handle, []*vm.Handle) {
	t.Helper()
	classes := vm.NewClassTable()
	classes.MustRefArray("root[]")
	classes.MustPrimArray("big[]")
	cfg := core.DefaultConfig(h2Size)
	cfg.RegionSize = 32 * storage.KB
	jvm := rt.NewJVM(rt.Options{H1Size: 2 * storage.MB, TH: &cfg}, classes, simclock.New())
	jvm.SetVerify(true)

	rootArr := classes.ByName("root[]")
	bigArr := classes.ByName("big[]")
	root, err := jvm.AllocRefArray(rootArr, count)
	if err != nil {
		t.Fatal(err)
	}
	h := jvm.NewHandle(root)
	const label = 7
	jvm.TagRoot(h, label)
	var members []*vm.Handle
	for i := 0; i < count; i++ {
		b, err := jvm.AllocPrimArray(bigArr, 1024) // 8 KB each
		if err != nil {
			t.Fatal(err)
		}
		jvm.WriteRef(h.Addr(), i, b)
		members = append(members, jvm.NewHandle(b))
	}
	jvm.MoveHint(label)
	return jvm, jvm.TeraHeap(), h, members
}

// TestForcedH2ExhaustionKeepsClosureInH1 drives the fault plane's forced
// exhaustion at rate 1: every PrepareMove fails, so after a major GC the
// whole advised closure must still be in H1 with consistent metadata (the
// verifier brackets the GC) and no leaked reservations.
func TestForcedH2ExhaustionKeepsClosureInH1(t *testing.T) {
	jvm, th, h, members := fallbackEnv(t, 64*storage.MB, 16)
	inj := fault.NewInjector(&fault.Plan{Seed: 7, H2ExhaustRate: 1})
	jvm.SetFaultInjector(inj)

	if err := jvm.FullGC(); err != nil {
		t.Fatalf("FullGC under forced exhaustion: %v", err)
	}
	if jvm.InSecondHeap(h.Addr()) {
		t.Errorf("root moved to H2 despite forced exhaustion")
	}
	for i, m := range members {
		if jvm.InSecondHeap(m.Addr()) {
			t.Errorf("member %d moved to H2 despite forced exhaustion", i)
		}
	}
	if used := th.UsedBytes(); used != 0 {
		t.Errorf("H2 used %d bytes, want 0", used)
	}
	if got := th.Stats().ForcedExhaustions; got == 0 {
		t.Error("ForcedExhaustions stat not incremented")
	}
	if n := th.PendingReservations(); n != 0 {
		t.Errorf("%d PrepareMove reservations leaked", n)
	}
	// The heap must stay fully functional: a second verified major GC with
	// the injector removed moves the closure out.
	jvm.SetFaultInjector(nil)
	if err := jvm.FullGC(); err != nil {
		t.Fatalf("FullGC after removing injector: %v", err)
	}
	if !jvm.InSecondHeap(h.Addr()) {
		t.Error("root not moved to H2 once exhaustion cleared")
	}
	if n := th.PendingReservations(); n != 0 {
		t.Errorf("%d reservations leaked after recovery GC", n)
	}
}

// TestNaturalH2ExhaustionPartialMove fills a genuinely tiny H2 (4 regions)
// with a closure twice its size: the move must stop at capacity, the
// overflow must stay in H1, the verifier must pass, and reservations must
// not leak. This is §4's PrepareMove failure path without any injection.
func TestNaturalH2ExhaustionPartialMove(t *testing.T) {
	jvm, th, h, members := fallbackEnv(t, 4*32*storage.KB, 32) // 128 KB H2, ~256 KB closure
	if err := jvm.FullGC(); err != nil {
		t.Fatalf("FullGC with tiny H2: %v", err)
	}
	inH2 := 0
	if jvm.InSecondHeap(h.Addr()) {
		inH2++
	}
	for _, m := range members {
		if jvm.InSecondHeap(m.Addr()) {
			inH2++
		}
	}
	if inH2 == 0 {
		t.Error("nothing moved to H2: exhaustion should be partial, not total")
	}
	if inH2 == len(members)+1 {
		t.Error("entire closure fit in H2: test did not exercise exhaustion")
	}
	if n := th.PendingReservations(); n != 0 {
		t.Errorf("%d PrepareMove reservations leaked", n)
	}
	// Subsequent verified GCs must keep working with the split closure.
	if err := jvm.FullGC(); err != nil {
		t.Fatalf("second FullGC with split closure: %v", err)
	}
	if n := th.PendingReservations(); n != 0 {
		t.Errorf("%d reservations leaked after second GC", n)
	}
}
