package gc

import (
	"time"

	"github.com/carv-repro/teraheap-go/internal/simclock"
)

// gang attributes GC work items to simulated workers. Work items arrive in
// the phase's stable traversal order (worklist pops, examined cards, live
// objects, ...) and are dealt round-robin onto N per-worker simclock
// spans; nested costs (a copy triggered while scanning an item) accrue to
// the item's worker. The phase then charges max-over-workers instead of
// the serial sum.
//
// This is cost attribution only: the heap mutation order is identical at
// every gang size, so final heap state, device traffic, and checksums do
// not depend on Workers — only pause accounting does. No goroutines are
// involved, which is what keeps same-seed runs byte-identical across
// processes at every worker count.
type gang struct {
	spans simclock.Spans
	cur   int // worker owning the current work item
	next  int // round-robin cursor
}

// reset prepares the gang for a phase of n workers.
func (g *gang) reset(n int) {
	g.spans.Reset(n)
	g.cur = 0
	g.next = 0
}

// beginItem deals the next work item to a worker.
func (g *gang) beginItem() {
	g.cur = g.next
	g.next++
	if g.next == g.spans.Workers() {
		g.next = 0
	}
}

// charge bills d to the current item's worker.
func (g *gang) charge(d time.Duration) { g.spans.Add(g.cur, d) }

// sweepUniform deals n uniform-cost items in one step: each worker
// receives exactly the share per-item dealing would have given it, and
// the cursors advance as if the items had been dealt one by one — so a
// caller can rebind cur to (start+i) mod workers for any item i that
// turns out to need nested charges.
func (g *gang) sweepUniform(n int, per time.Duration) {
	if n <= 0 {
		return
	}
	w := g.spans.Workers()
	base, rem := n/w, n%w
	for i := 0; i < w; i++ {
		cnt := base
		if (i-g.next+w)%w < rem {
			cnt++
		}
		g.spans.Add(i, time.Duration(cnt)*per)
	}
	g.next = (g.next + n) % w
	g.cur = (g.next - 1 + w) % w
}

// gangActive reports whether per-worker attribution is on for the current
// phase.
func (c *Collector) gangActive() bool { return c.gng != nil }

// gangBegin marks the start of one work item (no-op outside a gang phase).
func (c *Collector) gangBegin() {
	if c.gng != nil {
		c.gng.beginItem()
	}
}

// gangCharge attributes d to the current work item's worker (no-op outside
// a gang phase).
func (c *Collector) gangCharge(d time.Duration) {
	if c.gng != nil {
		c.gng.charge(d)
	}
}

// beginGangPhase arms per-worker attribution for one barrier-delimited
// phase when the configured gang has more than one worker; endGangPhase
// (via the returned flag) charges the phase.
func (c *Collector) beginGangPhase() bool {
	if c.Costs.Workers <= 1 {
		return false
	}
	c.gangScratch.reset(c.Costs.Workers)
	c.gng = &c.gangScratch
	return true
}

// endGangPhase closes a phase opened by beginGangPhase: the pause charge
// is the longest worker span divided by the phase's legacy thread count
// (so one gang worker reproduces the serial charge exactly), plus one
// barrier's steal/sync overhead.
func (c *Collector) endGangPhase(cat simclock.Category, threads int) {
	c.chargeGC(cat, c.gangScratch.spans.Max(), threads)
	c.Clock.Charge(cat, c.Costs.StealSyncCost)
	c.gng = nil
}
