package gc_test

import (
	"testing"
	"time"

	"github.com/carv-repro/teraheap-go/internal/gc"
	"github.com/carv-repro/teraheap-go/internal/heap"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// gangRun drives a fixed workload — allocation churn, surviving lists,
// several minor GCs, one major GC — under the given gang size and returns
// the GC time charged plus the collector stats.
func gangRun(t *testing.T, workers int) (minor, major time.Duration, st *gc.Stats, h *vm.Handle, e *testEnv) {
	t.Helper()
	e = newTestEnv(t, 1<<23)
	e.col.Costs.Workers = workers
	h = e.buildList(t, 4000)
	for round := 0; round < 4; round++ {
		g := e.buildList(t, 2000) // garbage
		e.col.Release(g)
		if err := e.col.MinorGC(); err != nil {
			t.Fatalf("minor GC (workers=%d): %v", workers, err)
		}
	}
	if err := e.col.MajorGC(); err != nil {
		t.Fatalf("major GC (workers=%d): %v", workers, err)
	}
	st = e.col.Stats()
	return st.MinorTime, st.MajorTime, st, h, e
}

// The gang never changes what the collector does — only how the pause is
// charged. Heap state, cycle counts, and allocation stats must be
// identical at every worker count.
func TestGangHeapStateInvariantAcrossWorkers(t *testing.T) {
	_, _, base, h1, e1 := gangRun(t, 1)
	for _, w := range []int{2, 4, 8} {
		_, _, st, h, e := gangRun(t, w)
		e.checkList(t, h, 4000)
		e1.checkList(t, h1, 4000)
		if st.MinorCount != base.MinorCount || st.MajorCount != base.MajorCount {
			t.Fatalf("workers=%d cycle counts diverged: %d/%d vs %d/%d",
				w, st.MinorCount, st.MajorCount, base.MinorCount, base.MajorCount)
		}
		if st.BytesAllocated != base.BytesAllocated || st.ObjectsAllocated != base.ObjectsAllocated {
			t.Fatalf("workers=%d allocation stats diverged", w)
		}
		if len(st.Cycles) != len(base.Cycles) {
			t.Fatalf("workers=%d cycle log length diverged", w)
		}
		for i := range st.Cycles {
			if st.Cycles[i].ReclaimedBytes != base.Cycles[i].ReclaimedBytes ||
				st.Cycles[i].BytesCopied != base.Cycles[i].BytesCopied {
				t.Fatalf("workers=%d cycle %d moved different bytes", w, i)
			}
		}
	}
}

// More gang workers never make a pause longer. Worker counts are chosen
// so each divides the next: the round-robin shards at 2w refine the
// shards at w, which pins max-over-workers to be non-increasing.
func TestGangPauseMonotoneNonIncreasing(t *testing.T) {
	counts := []int{1, 2, 4, 8}
	var prevMinor, prevMajor time.Duration
	for i, w := range counts {
		minor, major, _, _, _ := gangRun(t, w)
		if i > 0 {
			if minor > prevMinor {
				t.Fatalf("minor GC time grew from workers=%d to %d: %v -> %v",
					counts[i-1], w, prevMinor, minor)
			}
			if major > prevMajor {
				t.Fatalf("major GC time grew from workers=%d to %d: %v -> %v",
					counts[i-1], w, prevMajor, major)
			}
		}
		prevMinor, prevMajor = minor, major
	}
}

// Workers <= 1 takes the legacy aggregate path: a collector configured
// with Workers: 1 charges exactly what one configured with the zero value
// (and what the pre-gang code) charges.
func TestGangSingleWorkerIsLegacy(t *testing.T) {
	minor1, major1, _, _, _ := gangRun(t, 1)
	minor0, major0, _, _, _ := gangRun(t, 0)
	if minor1 != minor0 || major1 != major0 {
		t.Fatalf("workers=1 diverged from legacy: minor %v vs %v, major %v vs %v",
			minor1, minor0, major1, major0)
	}
}

// Same workload, same worker count, two independent runs: byte-identical
// charges (in-process determinism pin for the gang bookkeeping).
func TestGangDeterministic(t *testing.T) {
	for _, w := range []int{2, 8} {
		minorA, majorA, _, _, _ := gangRun(t, w)
		minorB, majorB, _, _, _ := gangRun(t, w)
		if minorA != minorB || majorA != majorB {
			t.Fatalf("workers=%d not deterministic: minor %v/%v major %v/%v",
				w, minorA, minorB, majorA, majorB)
		}
	}
}

// A failed scavenge (promotion fallback) mid-phase must not leave the
// collector stuck in a gang phase: the next GC still works and charges.
func TestGangSurvivesScavengeFallback(t *testing.T) {
	clock := simclock.New()
	classes := vm.NewClassTable()
	node := classes.MustFixed("Node", 2, 1)
	as := &vm.AddressSpace{}
	costs := gc.DefaultCostParams()
	costs.Workers = 4
	col := gc.New(gc.Config{Heap: heap.DefaultConfig(1 << 19), Costs: costs}, as, classes, clock, nil)

	h := col.NewHandle(vm.NullAddr)
	for i := 0; ; i++ {
		a, err := col.Alloc(node)
		if err != nil {
			break // heap exhausted; fallback paths exercised
		}
		col.WriteRef(a, 0, h.Addr())
		h.Set(a)
		if i > 1<<16 {
			t.Fatal("tiny heap never filled")
		}
	}
	// Whatever state the fallback left, a fresh major GC must run cleanly.
	if err := col.MajorGC(); err == nil {
		if col.Stats().MajorCount == 0 {
			t.Fatal("major GC recorded no cycle")
		}
	}
}
