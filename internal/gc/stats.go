package gc

import (
	"time"

	"github.com/carv-repro/teraheap-go/internal/simclock"
)

// CycleKind distinguishes minor from major collections.
type CycleKind int

// Collection kinds.
const (
	Minor CycleKind = iota
	Major
)

// String names the cycle kind.
func (k CycleKind) String() string {
	if k == Minor {
		return "minor"
	}
	return "major"
}

// MajorPhase indexes the four phases of a full collection (§4).
type MajorPhase int

// Major GC phases.
const (
	PhaseMark MajorPhase = iota
	PhasePrecompact
	PhaseAdjust
	PhaseCompact
	NumMajorPhases
)

// String names the major GC phase using the paper's Fig 11(b) labels.
func (p MajorPhase) String() string {
	switch p {
	case PhaseMark:
		return "Marking"
	case PhasePrecompact:
		return "Precompact"
	case PhaseAdjust:
		return "Adjust"
	case PhaseCompact:
		return "Compact"
	}
	return "?"
}

// Cycle records one collection, feeding the paper's Fig 7 timeline and
// Fig 11(b) phase breakdown.
type Cycle struct {
	Kind     CycleKind
	At       time.Duration // simulated time at cycle end
	Duration time.Duration
	// Phases holds per-phase durations for major cycles.
	Phases [NumMajorPhases]time.Duration

	BytesCopied       int64 // scavenge copies or compaction moves within H1
	BytesPromoted     int64 // young -> old
	BytesMovedToH2    int64
	ObjectsMovedH2    int64
	OldOccupancyAfter float64
	ReclaimedBytes    int64 // old-gen bytes freed (major only)
	ForwardRefs       int64 // H1 -> H2 references fenced (major only)
	CardsScanned      int64
}

// Stats aggregates collector activity.
type Stats struct {
	Cycles []Cycle

	MinorCount int
	MajorCount int

	MinorTime time.Duration
	MajorTime time.Duration

	BytesAllocated    int64
	ObjectsAllocated  int64
	BarrierExecutions int64

	TotalBytesMovedH2   int64
	TotalObjectsMovedH2 int64
}

func (s *Stats) record(cy Cycle) {
	s.Cycles = append(s.Cycles, cy)
	if cy.Kind == Minor {
		s.MinorCount++
		s.MinorTime += cy.Duration
	} else {
		s.MajorCount++
		s.MajorTime += cy.Duration
	}
	s.TotalBytesMovedH2 += cy.BytesMovedToH2
	s.TotalObjectsMovedH2 += cy.ObjectsMovedH2
}

// ResetCycles drops the recorded per-cycle history while keeping its
// backing array and the aggregate counters. Benchmarks use it so a
// steady-state GC loop never grows the history slice between operations.
func (s *Stats) ResetCycles() { s.Cycles = s.Cycles[:0] }

// PhaseTotals sums per-phase major GC time across all cycles.
func (s *Stats) PhaseTotals() [NumMajorPhases]time.Duration {
	var t [NumMajorPhases]time.Duration
	for _, cy := range s.Cycles {
		if cy.Kind != Major {
			continue
		}
		for p := 0; p < int(NumMajorPhases); p++ {
			t[p] += cy.Phases[p]
		}
	}
	return t
}

// categoryFor maps a cycle kind to its clock category.
func categoryFor(k CycleKind) simclock.Category {
	if k == Minor {
		return simclock.MinorGC
	}
	return simclock.MajorGC
}
