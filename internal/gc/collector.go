// Package gc implements the Parallel Scavenge-style generational collector
// the paper extends (§2, §4): a copying minor GC over eden and two survivor
// spaces with tenuring, and a four-phase (mark, precompact, adjust,
// compact) major GC over the whole of H1. TeraHeap's extensions plug in
// through the SecondHeap interface so the identical collector runs both the
// native-JVM baselines and the TeraHeap configurations.
package gc

import (
	"fmt"
	"os"
	"time"

	"github.com/carv-repro/teraheap-go/internal/check"
	"github.com/carv-repro/teraheap-go/internal/fault"
	"github.com/carv-repro/teraheap-go/internal/heap"
	"github.com/carv-repro/teraheap-go/internal/placement"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// CostParams prices GC and barrier CPU work in virtual time. Device I/O is
// priced separately by internal/storage. Defaults approximate a 2.4 GHz
// server core.
type CostParams struct {
	CopyPerByte    time.Duration // memcpy during scavenge/compaction
	ScanPerRef     time.Duration // following one reference
	MarkPerObject  time.Duration // visiting one object in mark phase
	PerCard        time.Duration // examining one card table entry
	PerCardObject  time.Duration // scanning one object found in a dirty card
	BarrierCost    time.Duration // one post-write barrier execution
	PausePerGC     time.Duration // fixed safepoint/start/stop overhead
	MinorGCThreads int           // parallel scavenge threads (paper: 16)
	MajorGCThreads int           // old generation threads (paper: 1)

	// Workers is the simulated GC gang size. At 0 or 1 (the default) each
	// pause charges the serial sum of its CPU work divided by the phase's
	// thread count — the legacy aggregate model, byte-identical to before
	// the gang existed. At N > 1 the work items of each phase are
	// partitioned round-robin into N per-worker shards and the pause
	// charges max-over-workers of the shard spans (still divided by the
	// phase thread count), plus StealSyncCost per barrier.
	Workers int
	// StealSyncCost models the work-stealing and termination-barrier
	// overhead of one gang synchronization point; charged once per barrier
	// (minor GC: 1; major GC: one per phase) only when Workers > 1.
	StealSyncCost time.Duration
}

// DefaultCostParams returns the calibrated defaults.
func DefaultCostParams() CostParams {
	return CostParams{
		CopyPerByte:    time.Nanosecond / 4, // ~4 GB/s effective copy per thread
		ScanPerRef:     12 * time.Nanosecond,
		MarkPerObject:  18 * time.Nanosecond,
		PerCard:        2 * time.Nanosecond,
		PerCardObject:  10 * time.Nanosecond,
		BarrierCost:    1 * time.Nanosecond,
		PausePerGC:     200 * time.Microsecond,
		MinorGCThreads: 16,
		MajorGCThreads: 1,
		Workers:        1,
		StealSyncCost:  time.Microsecond,
	}
}

// Config configures a collector instance.
type Config struct {
	Heap  heap.Config
	Costs CostParams

	// Verify runs the internal/check invariant verifier before and after
	// every minor and major GC (the VerifyBeforeGC/VerifyAfterGC analog).
	// Also enabled by the TH_VERIFY=1 environment variable.
	Verify bool
}

// OOMError reports that the heap could not satisfy an allocation even
// after a full collection — the paper's missing "OOM" bars.
type OOMError struct {
	Requested int64 // bytes
	Where     string
}

// Error describes the failure.
func (e *OOMError) Error() string {
	return fmt.Sprintf("gc: out of memory (%s, requested %d bytes)", e.Where, e.Requested)
}

// FaultError reports that the storage backing the heap failed persistently
// — a device operation exhausted its retry budget (fault.DeviceFailure) or
// an H2 region's backing blocks went bad (fault.RegionFailure). Like
// OOMError it latches on the collector: the run ends as a structured
// failure, never a panic — unless a recovery hook absorbs the fault from
// inside OnFault (see AbsorbFault), in which case the run continues.
type FaultError struct {
	Cause error
}

// Error describes the failure.
func (e *FaultError) Error() string {
	return "gc: storage fault: " + e.Cause.Error()
}

// Unwrap exposes the underlying device failure to errors.As.
func (e *FaultError) Unwrap() error { return e.Cause }

// ClassKindError reports an allocation call that does not match the
// class's layout kind (e.g. Alloc of an array class) — an API-misuse
// error returned to the caller rather than a process-killing panic.
type ClassKindError struct {
	Call  string
	Class string
}

// Error describes the mismatch.
func (e *ClassKindError) Error() string {
	return fmt.Sprintf("gc: %s of incompatible class %q", e.Call, e.Class)
}

// Collector is the Parallel Scavenge collector over H1 with optional
// TeraHeap (H2) extensions.
type Collector struct {
	Mem   *vm.Mem
	H1    *heap.H1
	Roots *vm.RootSet
	TH    SecondHeap
	Clock *simclock.Clock
	Costs CostParams

	stats Stats

	// startArray maps old-generation card index to the first object
	// starting in that card (PS's object start array), enabling dirty-card
	// scanning without walking the whole old generation.
	startArray []vm.Addr

	// oom latches after an OOMError so subsequent allocations fail fast.
	oom *OOMError

	// inj is the run's fault injector (nil when fault-free); flt latches
	// once the injector reports a persistent device failure, mirroring oom.
	inj *fault.Injector
	flt *FaultError

	// scav is the persistent scavenger: its worklist and move-queue
	// backing arrays are grown once and reused, so a steady-state minor GC
	// performs no heap allocation. scavBackVisit and isYoungFn are the
	// pre-built closures handed to the backward-reference scan (building
	// them per cycle would allocate), and imageBuf is the reusable staging
	// buffer for H2-bound object images (CommitMove copies it into the
	// promotion-buffer arena, so it is safe to reuse per object).
	scav          scavenger
	scavBackVisit func(uint64, vm.Addr) vm.Addr
	isYoungFn     func(vm.Addr) bool
	imageBuf      []uint64

	// Major-GC scratch, reused across cycles: mark-phase buffers, the
	// precompaction live-object and destination arrays, and the forwarding
	// table backing arrays.
	majBacks   []backRef
	majClosure []vm.Addr
	majStack   []vm.Addr
	preYoung   []vm.Addr
	preOld     []vm.Addr
	youngDst   []vm.Addr
	oldDst     []vm.Addr
	fwState    forwarding

	// gng points at gangScratch while a gang-charged phase is in flight
	// (Costs.Workers > 1), routing per-work-item costs onto per-worker
	// spans; nil otherwise, making the attribution hooks no-ops on the
	// legacy path.
	gng         *gang
	gangScratch gang

	// verifier holds the invariant verifier's reusable scratch (maps,
	// queues, parsed-object arrays) so TH_VERIFY=1 runs do not rebuild
	// them around every GC.
	verifier *check.Verifier

	// barrierEnabled mirrors the paper's EnableTeraHeap flag: when false,
	// the extra H2 range check in the post-write barrier is compiled out.
	barrierEnabled bool

	// hooks is the ordered lifecycle-hook plane: cross-cutting layers
	// (verification, event accounting, tracing) register here instead of
	// patching the collection phases. vhook is the registered verifier
	// hook, if any (the SetVerify shim toggles it).
	hooks Hooks
	vhook *verifyHook

	// policy is the placement-policy seam consulted at every target-space
	// decision (alloc-time pretenuring, scavenge-time promotion) and fed
	// survival/misprediction feedback. placement.Default reproduces the
	// legacy hardcoded behavior exactly.
	policy placement.Policy
}

// New builds a collector over a DRAM-backed H1. th may be nil for a
// vanilla JVM (no H2).
func New(cfg Config, as *vm.AddressSpace, classes *vm.ClassTable, clock *simclock.Clock, th SecondHeap) *Collector {
	c := NewWithHeap(heap.New(cfg.Heap, as), cfg.Costs, as, classes, clock, th)
	if cfg.Verify {
		c.SetVerify(true)
	}
	return c
}

// NewWithHeap builds a collector over an already laid-out (and mapped) H1;
// used by baselines that back H1 with NVM.
func NewWithHeap(h1 *heap.H1, costs CostParams, as *vm.AddressSpace, classes *vm.ClassTable, clock *simclock.Clock, th SecondHeap) *Collector {
	if th == nil {
		th = NoSecondHeap{}
	}
	_, noTH := th.(NoSecondHeap)
	c := &Collector{
		Mem:            vm.NewMem(as, classes),
		H1:             h1,
		Roots:          vm.NewRootSet(),
		TH:             th,
		Clock:          clock,
		Costs:          costs,
		startArray:     make([]vm.Addr, h1.Cards.NumCards()),
		barrierEnabled: !noTH,
		policy:         placement.Default{},
	}
	c.scav.c = c
	c.scavBackVisit = func(_ uint64, t vm.Addr) vm.Addr {
		c.gangBegin() // each backward reference is one scavenge work item
		if c.H1.InYoung(t) {
			return c.scav.copyYoung(t)
		}
		return t
	}
	c.isYoungFn = c.H1.InYoung
	if os.Getenv("TH_VERIFY") == "1" {
		c.SetVerify(true)
	}
	return c
}

// Hooks returns the collector's lifecycle-hook plane. Cross-cutting layers
// register here; the verifier and the session event counters are the stock
// implementations.
func (c *Collector) Hooks() *Hooks { return &c.hooks }

// SetPlacementPolicy installs a placement policy; nil restores the
// default (legacy) policy. Must be called before any allocation.
func (c *Collector) SetPlacementPolicy(p placement.Policy) {
	if p == nil {
		p = placement.Default{}
	}
	c.policy = p
}

// PlacementPolicy returns the installed placement policy.
func (c *Collector) PlacementPolicy() placement.Policy { return c.policy }

// SetVerify enables or disables invariant verification around every GC: a
// shim that registers (or removes) the verifier hook as the first entry of
// the hook plane.
func (c *Collector) SetVerify(v bool) {
	if v == (c.vhook != nil) {
		return
	}
	if v {
		c.vhook = &verifyHook{c: c}
		c.hooks.RegisterFirst(c.vhook)
		return
	}
	c.hooks.Remove(c.vhook)
	c.vhook = nil
}

// VerifyEnabled reports whether the verifier hook is registered.
func (c *Collector) VerifyEnabled() bool { return c.vhook != nil }

// SetFaultInjector attaches the run's fault injector so persistent device
// failures latch on the collector at the next allocation or GC boundary.
func (c *Collector) SetFaultInjector(in *fault.Injector) { c.inj = in }

// Fault returns the latched persistent storage fault, if any.
func (c *Collector) Fault() *FaultError { return c.flt }

// pollFault latches (and returns) a FaultError once the injector reports a
// persistent device or region failure. Checked at allocation and GC
// boundaries so a device that died mid-phase surfaces as a structured
// error on the next safepoint rather than a panic inside the phase. These
// poll sites are also the recovery layer's safepoints: promotion buffers
// are flushed and the heap is parse-consistent here, so an OnFault hook
// may salvage the damage and absorb the fault (the post-dispatch re-read
// of c.flt picks that up and the run continues fault-free).
func (c *Collector) pollFault() *FaultError {
	if c.flt != nil {
		return c.flt
	}
	var cause error
	if f := c.inj.Failure(); f != nil {
		cause = f
	} else if rf := c.inj.RegionFault(); rf != nil {
		cause = rf
	}
	if cause != nil {
		c.flt = &FaultError{Cause: cause}
		c.hooks.OnFault(c.flt)
	}
	return c.flt
}

// AbsorbFault clears the latched fault. For recovery hooks only: legal
// exclusively from inside OnFault, after the damage the fault describes
// has been repaired (failed regions salvaged, injector latches cleared) —
// otherwise the next pollFault re-latches the same fault immediately.
func (c *Collector) AbsorbFault() { c.flt = nil }

// latchOOM records the out-of-memory condition (subsequent allocations
// fail fast on it) and fires the on-OOM lifecycle event exactly once.
func (c *Collector) latchOOM(e *OOMError) *OOMError {
	c.oom = e
	c.hooks.OnOOM(e)
	return e
}

// VerifyNow runs the full invariant verifier immediately and returns the
// violations found (empty when the heap is consistent). It never charges
// simulated time.
func (c *Collector) VerifyNow() []check.Failure {
	v := check.PSView{
		AS:         c.Mem.AS,
		Classes:    c.Mem.Classes,
		H1:         c.H1,
		Roots:      c.Roots,
		StartArray: c.startArray,
		Clock:      c.Clock,
	}
	if h2, ok := c.TH.(check.H2); ok {
		v.H2 = h2
	}
	if c.verifier == nil {
		c.verifier = check.NewVerifier()
	}
	return c.verifier.VerifyPS(v)
}

// runVerify panics with a structured report if any invariant is violated;
// called before and after each GC pause when verification is enabled.
func (c *Collector) runVerify(when string) {
	if failures := c.VerifyNow(); len(failures) > 0 {
		panic(check.Report(when, failures))
	}
}

// AllocPretenured places an object directly in the old generation (the
// Panthera allocation policy for long-lived data), falling back to a major
// GC and then OOM.
func (c *Collector) AllocPretenured(class *vm.Class, numRefs, sizeWords int) (vm.Addr, error) {
	if c.oom != nil {
		return vm.NullAddr, c.oom
	}
	if flt := c.pollFault(); flt != nil {
		return vm.NullAddr, flt
	}
	a, ok := c.allocOld(sizeWords)
	if !ok {
		if err := c.MajorGC(); err != nil {
			return vm.NullAddr, err
		}
		a, ok = c.allocOld(sizeWords)
	}
	if !ok {
		return vm.NullAddr, c.latchOOM(&OOMError{Requested: int64(sizeWords) * vm.WordSize, Where: "pretenured allocation"})
	}
	c.Mem.InitObject(a, class, numRefs, sizeWords)
	c.stats.BytesAllocated += int64(sizeWords) * vm.WordSize
	c.stats.ObjectsAllocated++
	return a, nil
}

// Stats returns the accumulated GC statistics.
func (c *Collector) Stats() *Stats { return &c.stats }

// OOM returns the latched out-of-memory error, if any.
func (c *Collector) OOM() *OOMError { return c.oom }

// NewHandle roots a fresh handle holding a.
func (c *Collector) NewHandle(a vm.Addr) *vm.Handle { return c.Roots.Create(a) }

// Release unroots h.
func (c *Collector) Release(h *vm.Handle) { c.Roots.Release(h) }

// Alloc allocates a fixed-layout instance of class.
func (c *Collector) Alloc(class *vm.Class) (vm.Addr, error) {
	if class.Kind != vm.KindFixed {
		return vm.NullAddr, &ClassKindError{Call: "Alloc", Class: class.Name}
	}
	return c.allocObject(class, class.NumRefs, class.InstanceWords(), false)
}

// AllocRefArray allocates a reference array of n elements.
func (c *Collector) AllocRefArray(class *vm.Class, n int) (vm.Addr, error) {
	if class.Kind != vm.KindRefArray {
		return vm.NullAddr, &ClassKindError{Call: "AllocRefArray", Class: class.Name}
	}
	return c.allocObject(class, n, vm.HeaderWords+n, false)
}

// AllocPrimArray allocates a primitive array of n words.
func (c *Collector) AllocPrimArray(class *vm.Class, n int) (vm.Addr, error) {
	if class.Kind != vm.KindPrimArray {
		return vm.NullAddr, &ClassKindError{Call: "AllocPrimArray", Class: class.Name}
	}
	return c.allocObject(class, 0, vm.HeaderWords+n, false)
}

// AllocCold, AllocColdRefArray, and AllocColdPrimArray are the framework's
// cold-allocation hint: identical to the plain variants, except the cold
// bit reaches the placement policy's alloc-time decision.
func (c *Collector) AllocCold(class *vm.Class) (vm.Addr, error) {
	if class.Kind != vm.KindFixed {
		return vm.NullAddr, &ClassKindError{Call: "Alloc", Class: class.Name}
	}
	return c.allocObject(class, class.NumRefs, class.InstanceWords(), true)
}

// AllocColdRefArray allocates a reference array flagged cold.
func (c *Collector) AllocColdRefArray(class *vm.Class, n int) (vm.Addr, error) {
	if class.Kind != vm.KindRefArray {
		return vm.NullAddr, &ClassKindError{Call: "AllocRefArray", Class: class.Name}
	}
	return c.allocObject(class, n, vm.HeaderWords+n, true)
}

// AllocColdPrimArray allocates a primitive array flagged cold.
func (c *Collector) AllocColdPrimArray(class *vm.Class, n int) (vm.Addr, error) {
	if class.Kind != vm.KindPrimArray {
		return vm.NullAddr, &ClassKindError{Call: "AllocPrimArray", Class: class.Name}
	}
	return c.allocObject(class, 0, vm.HeaderWords+n, true)
}

func (c *Collector) allocObject(class *vm.Class, numRefs, sizeWords int, cold bool) (vm.Addr, error) {
	if c.oom != nil {
		return vm.NullAddr, c.oom
	}
	if flt := c.pollFault(); flt != nil {
		return vm.NullAddr, flt
	}
	if c.policy.AllocTarget(placement.Site(class.ID), sizeWords, cold) == placement.AllocOld {
		// Policy-directed pretenuring: place straight in the old
		// generation when it has room; otherwise fall through to the
		// legacy eden path rather than forcing a full collection.
		if a, ok := c.allocOld(sizeWords); ok {
			c.Mem.InitObject(a, class, numRefs, sizeWords)
			c.Mem.SetStatus(a, c.Mem.Status(a)|vm.FlagPretenured)
			c.stats.BytesAllocated += int64(sizeWords) * vm.WordSize
			c.stats.ObjectsAllocated++
			c.policy.NotePretenured(placement.Site(class.ID))
			return a, nil
		}
	}
	a, err := c.allocWords(sizeWords)
	if err != nil {
		return vm.NullAddr, err
	}
	c.Mem.InitObject(a, class, numRefs, sizeWords)
	c.stats.BytesAllocated += int64(sizeWords) * vm.WordSize
	c.stats.ObjectsAllocated++
	return a, nil
}

// allocWords is the allocation slow path: eden, then minor GC (with a major
// first if promotion could not be absorbed), then direct old-generation
// placement for large objects, then major GC, then OOM.
func (c *Collector) allocWords(sizeWords int) (vm.Addr, error) {
	sizeBytes := int64(sizeWords) * vm.WordSize
	large := sizeBytes > c.H1.Eden.Capacity()/2

	if !large {
		if a, ok := c.H1.Eden.Alloc(sizeWords); ok {
			return a, nil
		}
		if err := c.ensureMinorHeadroom(); err != nil {
			return vm.NullAddr, err
		}
		if err := c.MinorGC(); err != nil {
			return vm.NullAddr, err
		}
		if a, ok := c.H1.Eden.Alloc(sizeWords); ok {
			return a, nil
		}
	}
	// Large object, or eden still cannot fit: old generation.
	if a, ok := c.allocOld(sizeWords); ok {
		return a, nil
	}
	if err := c.MajorGC(); err != nil {
		return vm.NullAddr, err
	}
	if a, ok := c.allocOld(sizeWords); ok {
		return a, nil
	}
	return vm.NullAddr, c.latchOOM(&OOMError{Requested: sizeBytes, Where: "allocation"})
}

// ensureMinorHeadroom guarantees a minor GC cannot fail mid-scavenge: in
// the worst case every live young byte is promoted, so the old generation
// must have room for the entire used young generation. When it does not,
// a major GC runs first — exactly the frequent, low-yield full collections
// the paper observes under memory pressure (§7.1, Fig 7).
func (c *Collector) ensureMinorHeadroom() error {
	if c.H1.Old.Free() >= c.H1.YoungUsed() {
		return nil
	}
	return c.MajorGC()
}

func (c *Collector) allocOld(sizeWords int) (vm.Addr, bool) {
	a, ok := c.H1.Old.Alloc(sizeWords)
	if ok {
		c.noteOldAlloc(a)
	}
	return a, ok
}

// SalvageAllocOld carves old-gen space for one object image re-materialized
// from a quarantined H2 region (the §4 fallback direction, driven by the
// recovery layer instead of a failed PrepareMove). It maintains the object
// start array like every other old allocation but never triggers a GC:
// salvage runs at a safepoint where a nested collection would be unsound,
// so the recovery layer pre-checks capacity and treats false as
// salvage-failed (the fault stays latched).
func (c *Collector) SalvageAllocOld(sizeWords int) (vm.Addr, bool) {
	return c.allocOld(sizeWords)
}

// noteOldAlloc maintains the object start array for dirty-card scanning.
func (c *Collector) noteOldAlloc(a vm.Addr) {
	i := c.H1.Cards.Index(a)
	if c.startArray[i].IsNull() || a < c.startArray[i] {
		c.startArray[i] = a
	}
}

func (c *Collector) rebuildStartArray() {
	for i := range c.startArray {
		c.startArray[i] = vm.NullAddr
	}
	c.H1.Old.Walk(c.Mem, func(a vm.Addr) { c.noteOldAlloc(a) })
}

// WriteRef performs a mutator reference-field store with the post-write
// barrier (§4): a reference range check selects the H1 or H2 card table.
func (c *Collector) WriteRef(obj vm.Addr, field int, val vm.Addr) {
	c.Clock.Charge(simclock.Other, c.Costs.BarrierCost)
	c.stats.BarrierExecutions++
	if c.barrierEnabled {
		// The extra reference range check EnableTeraHeap compiles in;
		// the paper measures its overhead at <3% on DaCapo (§4).
		c.Clock.Charge(simclock.Other, c.Costs.BarrierCost)
	}
	if c.TH.Contains(obj) {
		// Updating an H2 object: the store itself is a device
		// read-modify-write through the mapped file.
		c.Mem.SetRefAt(obj, field, val)
		c.TH.DirtyCard(obj)
		return
	}
	c.Mem.SetRefAt(obj, field, val)
	if c.H1.InOld(obj) && !val.IsNull() {
		c.H1.Cards.MarkDirty(obj)
	}
}

// WritePrim performs a mutator primitive-word store (no card needed, but
// H2 stores still pay device cost through the mapped file).
func (c *Collector) WritePrim(obj vm.Addr, i int, v uint64) {
	c.Mem.SetPrimAt(obj, i, v)
}

// ReadRef loads a reference field (H2 loads charge page faults).
func (c *Collector) ReadRef(obj vm.Addr, field int) vm.Addr {
	return c.Mem.RefAt(obj, field)
}

// ReadPrim loads a primitive word.
func (c *Collector) ReadPrim(obj vm.Addr, i int) uint64 {
	return c.Mem.PrimAt(obj, i)
}

// chargeGC divides CPU work across GC threads and bills the category.
func (c *Collector) chargeGC(cat simclock.Category, d time.Duration, threads int) {
	if threads < 1 {
		threads = 1
	}
	c.Clock.Charge(cat, d/time.Duration(threads))
}

// adjustRef computes the post-compaction address for ref using the sorted
// forwarding tables built in the precompaction phase. The binary search is
// hand-rolled: sort.Search would force the comparison through a closure on
// the hottest loop of the adjust phase.
func adjustRef(src, dst []vm.Addr, ref vm.Addr) (vm.Addr, bool) {
	lo, hi := 0, len(src)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if src[mid] < ref {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(src) && src[lo] == ref {
		return dst[lo], true
	}
	return vm.NullAddr, false
}
