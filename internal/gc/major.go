package gc

import (
	"fmt"
	"time"

	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// MajorGC runs one full collection: mark, precompact, adjust, compact,
// with the paper's TeraHeap extensions in each phase (§4).
func (c *Collector) MajorGC() error {
	if c.oom != nil {
		return c.oom
	}
	if flt := c.pollFault(); flt != nil {
		return flt
	}
	c.hooks.BeforeGC(PhaseMajor)
	prevCat := c.Clock.SetContext(simclock.MajorGC)
	defer c.Clock.SetContext(prevCat)
	before := c.Clock.Breakdown()
	usedBefore := c.H1.Used()

	var cy Cycle
	cy.Kind = Major

	// Each of the four phases is one gang barrier: with Workers > 1 its
	// work items are dealt round-robin onto per-worker spans and the phase
	// charges max-over-workers plus one steal/sync overhead; otherwise the
	// legacy serial aggregate is charged, byte-identical to before.
	phaseStart := c.Clock.Breakdown()
	gangOn := c.beginGangPhase()
	mk := c.majorMark(&cy)
	if gangOn {
		c.endGangPhase(simclock.MajorGC, c.Costs.MajorGCThreads)
	} else {
		c.chargeGC(simclock.MajorGC, mk.cpu(c.Costs), c.Costs.MajorGCThreads)
	}
	cy.Phases[PhaseMark] = c.Clock.Breakdown().Sub(phaseStart).Get(simclock.MajorGC)

	phaseStart = c.Clock.Breakdown()
	gangOn = c.beginGangPhase()
	fw, err := c.majorPrecompact(mk, &cy)
	if err != nil {
		c.gng = nil // the aborted phase never reaches endGangPhase
		return err
	}
	if gangOn {
		c.endGangPhase(simclock.MajorGC, c.Costs.MajorGCThreads)
	} else {
		c.chargeGC(simclock.MajorGC,
			time.Duration(len(fw.src))*c.Costs.PerCardObject, c.Costs.MajorGCThreads)
	}
	cy.Phases[PhasePrecompact] = c.Clock.Breakdown().Sub(phaseStart).Get(simclock.MajorGC)

	phaseStart = c.Clock.Breakdown()
	gangOn = c.beginGangPhase()
	adjRefs := c.majorAdjust(fw)
	if gangOn {
		c.endGangPhase(simclock.MajorGC, c.Costs.MajorGCThreads)
	} else {
		c.chargeGC(simclock.MajorGC,
			time.Duration(adjRefs)*c.Costs.ScanPerRef, c.Costs.MajorGCThreads)
	}
	cy.Phases[PhaseAdjust] = c.Clock.Breakdown().Sub(phaseStart).Get(simclock.MajorGC)

	phaseStart = c.Clock.Breakdown()
	gangOn = c.beginGangPhase()
	c.majorCompact(fw, &cy)
	if gangOn {
		c.endGangPhase(simclock.MajorGC, c.Costs.MajorGCThreads)
	}
	cy.Phases[PhaseCompact] = c.Clock.Breakdown().Sub(phaseStart).Get(simclock.MajorGC)

	c.Clock.Charge(simclock.MajorGC, c.Costs.PausePerGC)

	liveOld := c.H1.Old.Used()
	c.TH.FinishMajor(liveOld, c.H1.Old.Capacity())

	delta := c.Clock.Breakdown().Sub(before)
	cy.At = c.Clock.Now()
	cy.Duration = delta.Get(simclock.MajorGC)
	cy.OldOccupancyAfter = c.H1.OldOccupancy()
	cy.ReclaimedBytes = usedBefore - c.H1.Used()
	c.stats.record(cy)
	c.hooks.AfterGC(PhaseMajor)
	// A device that died during the cycle surfaces here: the heap is
	// consistent (the phase completed against the simulated mapping), but
	// the run must end as a structured failure.
	if flt := c.pollFault(); flt != nil {
		return flt
	}
	return nil
}

// backRef records one H2-to-H1 backward reference gathered at the start
// of marking: the holder region's label and the H1 target.
type backRef struct {
	label  uint64
	target vm.Addr
}

// markState carries mark-phase results into precompaction.
type markState struct {
	objectsMarked int64
	refsTraversed int64
	closureWords  int64
	liveBytes     int64
}

func (m *markState) cpu(costs CostParams) time.Duration {
	return time.Duration(m.objectsMarked)*costs.MarkPerObject +
		time.Duration(m.refsTraversed)*costs.ScanPerRef
}

// majorMark performs the extended marking phase: reset H2 live bits, mark
// H1 objects referenced from H2 (backward refs), select and label the
// transitive closures of tagged root key-objects, then mark from roots
// while fencing H2 and recording forward references.
func (c *Collector) majorMark(cy *Cycle) *markState {
	m := c.Mem
	st := &markState{}
	// Pressure is judged on the data that will survive this collection —
	// the old generation plus the survivor space (eden is mostly garbage)
	// — against the old generation that must hold it.
	c.TH.BeginMajorMark(c.H1.Old.Used()+c.H1.From.Used(), c.H1.Old.Capacity())

	// Gather backward references first: their targets are both GC roots
	// and, when the holder region's label is move-advised, stragglers
	// that belong to an already-moved object group.
	backs := c.majBacks[:0]
	c.TH.ScanBackwardRefs(true, func(label uint64, t vm.Addr) vm.Addr {
		backs = append(backs, backRef{label: label, target: t})
		return t
	}, c.H1.InYoung)
	c.majBacks = backs[:0]

	// Closure selection: BFS setting the closure bit and label.
	closureStack := c.majClosure
	selectClosure := func(root vm.Addr, label uint64) {
		closureStack = append(closureStack[:0], root)
		for len(closureStack) > 0 {
			o := closureStack[len(closureStack)-1]
			closureStack = closureStack[:len(closureStack)-1]
			c.gangBegin()
			if o.IsNull() || c.TH.Contains(o) || m.InClosure(o) {
				continue
			}
			if c.TH.ExcludeClass(m.ClassOf(o)) {
				continue
			}
			m.SetInClosure(o, true)
			m.SetLabel(o, label)
			st.closureWords += int64(m.SizeWords(o))
			st.objectsMarked++
			c.gangCharge(c.Costs.MarkPerObject)
			n := m.NumRefs(o)
			for i := 0; i < n; i++ {
				if t := m.RefAt(o, i); !t.IsNull() && c.H1.Contains(t) {
					closureStack = append(closureStack, t)
					st.refsTraversed++
					c.gangCharge(c.Costs.ScanPerRef)
				}
			}
		}
	}

	// Closure-select from tagged root key-objects (§3.2) and from H1
	// objects referenced by advised-label H2 regions (the remainder of a
	// group whose root already moved via the minor-GC path). Advised
	// (immutable) labels go first; forced movement under pressure fills
	// the remaining low-threshold budget — never ahead of advised groups,
	// which are the cheap, update-free candidates.
	selectCandidates := func(advisedPass bool) {
		for _, tr := range c.TH.TaggedRoots() {
			a := tr.Handle.Addr()
			if a.IsNull() || c.TH.Contains(a) || !c.H1.Contains(a) || m.InClosure(a) {
				continue
			}
			if c.TH.Advised(tr.Label) != advisedPass {
				continue
			}
			if !c.TH.ShouldMoveLabel(tr.Label, st.closureWords) {
				continue
			}
			selectClosure(a, tr.Label)
		}
		for _, b := range backs {
			if b.label == 0 || !c.H1.Contains(b.target) || m.InClosure(b.target) {
				continue
			}
			if c.TH.Advised(b.label) != advisedPass {
				continue
			}
			if !c.TH.ShouldMoveLabel(b.label, st.closureWords) {
				continue
			}
			selectClosure(b.target, b.label)
		}
	}
	selectCandidates(true)

	// Mark from roots. Direct iteration and an inline stack keep the mark
	// loop free of per-cycle closure allocations.
	stack := c.majStack[:0]
	for _, h := range c.Roots.Handles() {
		if h == nil {
			continue
		}
		if a := h.Addr(); !a.IsNull() {
			stack = append(stack, a)
		}
	}
	for _, b := range backs {
		if !b.target.IsNull() {
			stack = append(stack, b.target)
		}
	}

	for len(stack) > 0 {
		o := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c.gangBegin()
		if c.TH.Contains(o) {
			// Fence: record the forward reference, never scan H2.
			cy.ForwardRefs++
			c.TH.NoteForwardRef(o)
			continue
		}
		if !c.H1.Contains(o) {
			panic(fmt.Sprintf("gc: mark reached unmapped address %v", o))
		}
		if m.Marked(o) {
			continue
		}
		m.SetMarked(o, true)
		st.objectsMarked++
		c.gangCharge(c.Costs.MarkPerObject)
		st.liveBytes += int64(m.SizeWords(o)) * vm.WordSize
		n := m.NumRefs(o)
		for i := 0; i < n; i++ {
			if t := m.RefAt(o, i); !t.IsNull() {
				st.refsTraversed++
				c.gangCharge(c.Costs.ScanPerRef)
				stack = append(stack, t)
			}
		}
	}
	c.majStack = stack[:0]

	// With the exact live volume known — minus what the advised closures
	// already take to H2 — evaluate the threshold policy and run the
	// forced round, so a collection that discovers residual pressure
	// relieves it in the same cycle (the paper's loading-phase rescue,
	// §7.2) without forcing groups the hints would have handled.
	residual := st.liveBytes - st.closureWords*vm.WordSize
	c.TH.EvaluatePressure(residual, c.H1.Old.Capacity())
	selectCandidates(true)
	selectCandidates(false)
	c.majClosure = closureStack[:0]
	return st
}

// forwarding holds the precompaction result: parallel arrays of live
// source addresses (ascending) and their destinations, plus the partition
// point between young-space and old-space sources.
type forwarding struct {
	src []vm.Addr
	dst []vm.Addr
	// oldStartIdx is the index in src of the first old-generation object.
	oldStartIdx int
	// oldTop is the post-compaction old-generation allocation top.
	oldTop vm.Addr
}

// inH2 reports whether the destination of entry i is in the second heap.
func (f *forwarding) inH2(i int) bool { return vm.InH2(f.dst[i]) }

// majorPrecompact assigns every marked object its new address: H2 regions
// for closure objects (by label), the compacted old generation otherwise.
// Old-generation objects are assigned first so in-place compaction copies
// never overwrite unprocessed sources.
func (c *Collector) majorPrecompact(mk *markState, cy *Cycle) (*forwarding, error) {
	m := c.Mem
	fw := &c.fwState
	fw.src = fw.src[:0]
	fw.dst = fw.dst[:0]
	fw.oldStartIdx = 0
	fw.oldTop = vm.NullAddr

	// Collect live objects in address order: young spaces then old. The
	// three young spaces are ordered by a fixed sorting network instead of
	// sort.Slice (which allocates its closure and interface header).
	youngSpaces := [3]*vm.Space{c.H1.Eden, c.H1.From, c.H1.To}
	if youngSpaces[0].Start > youngSpaces[1].Start {
		youngSpaces[0], youngSpaces[1] = youngSpaces[1], youngSpaces[0]
	}
	if youngSpaces[1].Start > youngSpaces[2].Start {
		youngSpaces[1], youngSpaces[2] = youngSpaces[2], youngSpaces[1]
	}
	if youngSpaces[0].Start > youngSpaces[1].Start {
		youngSpaces[0], youngSpaces[1] = youngSpaces[1], youngSpaces[0]
	}
	youngLive := c.preYoung[:0]
	oldLive := c.preOld[:0]
	for _, sp := range youngSpaces {
		sp.Walk(m, func(a vm.Addr) {
			if m.Marked(a) {
				youngLive = append(youngLive, a)
			}
		})
	}
	c.H1.Old.Walk(m, func(a vm.Addr) {
		// One status load either way (Marked would do the same load); the
		// dead branch hands the word to the placement policy so
		// pretenuring mispredictions (dead policy-placed objects) are
		// counted. A no-op under the default policy.
		st := m.Status(a)
		if st&vm.FlagMark != 0 {
			oldLive = append(oldLive, a)
		} else {
			c.policy.NoteDeadOld(st)
		}
	})
	c.preYoung = youngLive[:0]
	c.preOld = oldLive[:0]

	oldTop := c.H1.Old.Start
	assign := func(a vm.Addr) (vm.Addr, error) {
		size := m.SizeWords(a)
		if m.InClosure(a) {
			if dst, ok := c.TH.PrepareMove(m.Label(a), size); ok {
				return dst, nil
			}
			// H2 exhausted: keep the object in H1.
		}
		dst := oldTop
		oldTop += vm.Addr(size * vm.WordSize)
		if oldTop > c.H1.Old.End {
			byLabel := map[uint64]int64{}
			for _, o := range append(append([]vm.Addr{}, youngLive...), oldLive...) {
				byLabel[m.Label(o)] += int64(m.SizeWords(o)) * vm.WordSize
			}
			return vm.NullAddr, c.latchOOM(&OOMError{
				Requested: int64(size) * vm.WordSize,
				Where: fmt.Sprintf("major GC compaction (live young=%d old=%d objs, closure=%dw, old cap=%d, liveByLabel=%v)",
					len(youngLive), len(oldLive), mk.closureWords, c.H1.Old.Capacity(), byLabel),
			})
		}
		return dst, nil
	}

	// Old first (dst <= src within the old space), then young. Each live
	// object is one precompaction work item.
	oldDst := growAddrs(c.oldDst, len(oldLive))
	for i, a := range oldLive {
		c.gangBegin()
		c.gangCharge(c.Costs.PerCardObject)
		d, err := assign(a)
		if err != nil {
			return nil, err
		}
		oldDst[i] = d
	}
	youngDst := growAddrs(c.youngDst, len(youngLive))
	for i, a := range youngLive {
		c.gangBegin()
		c.gangCharge(c.Costs.PerCardObject)
		d, err := assign(a)
		if err != nil {
			return nil, err
		}
		youngDst[i] = d
	}
	c.oldDst = oldDst[:0]
	c.youngDst = youngDst[:0]

	fw.src = append(append(fw.src, youngLive...), oldLive...)
	fw.dst = append(append(fw.dst, youngDst...), oldDst...)
	fw.oldStartIdx = len(youngLive)
	fw.oldTop = oldTop
	return fw, nil
}

// growAddrs returns a slice of exactly n addresses, reusing buf's backing
// array when it is large enough.
func growAddrs(buf []vm.Addr, n int) []vm.Addr {
	if cap(buf) < n {
		return make([]vm.Addr, n)
	}
	return buf[:n]
}

// majorAdjust rewrites every reference in live H1 objects, in the root
// set, and in H2 backward-reference card segments to the new locations,
// recording new cross-region and backward references for objects bound
// for H2.
func (c *Collector) majorAdjust(fw *forwarding) int64 {
	m := c.Mem
	var refs int64

	// Backward references held by existing H2 objects. This must run
	// before the forwarding loop below: the scan recomputes each
	// segment's card state from the objects it can see, and the images of
	// objects bound for H2 this cycle are not committed until the compact
	// phase — so card-state raises recorded for them by the forwarding
	// loop would be clobbered if the scan ran afterwards, leaving their
	// backward references invisible to the next major GC.
	c.TH.ScanBackwardRefs(true, func(_ uint64, t vm.Addr) vm.Addr {
		c.gangBegin() // each backward reference is one adjust work item
		nt, ok := adjustRef(fw.src, fw.dst, t)
		if !ok {
			panic(fmt.Sprintf("gc: H2 backward reference to unmarked %v", t))
		}
		refs++
		c.gangCharge(c.Costs.ScanPerRef)
		return nt
	}, func(vm.Addr) bool { return false })

	for i, a := range fw.src {
		c.gangBegin() // each live object is one adjust work item
		n := m.NumRefs(a)
		toH2 := fw.inH2(i)
		for f := 0; f < n; f++ {
			t := m.RefAt(a, f)
			if t.IsNull() {
				continue
			}
			refs++
			c.gangCharge(c.Costs.ScanPerRef)
			if c.TH.Contains(t) {
				if toH2 {
					c.TH.NoteCrossRegionRef(fw.dst[i], t)
				}
				continue
			}
			nt, ok := adjustRef(fw.src, fw.dst, t)
			if !ok {
				panic(fmt.Sprintf("gc: live object %v references unmarked %v", a, t))
			}
			m.SetRefAt(a, f, nt)
			if toH2 {
				if vm.InH2(nt) {
					c.TH.NoteCrossRegionRef(fw.dst[i], nt)
				} else {
					// After compaction every H1 survivor is in the old
					// generation.
					c.TH.NoteBackwardRef(fw.dst[i], false)
				}
			}
		}
	}

	// Roots.
	for _, h := range c.Roots.Handles() {
		if h == nil {
			continue
		}
		a := h.Addr()
		if a.IsNull() || c.TH.Contains(a) {
			continue
		}
		nt, ok := adjustRef(fw.src, fw.dst, a)
		if !ok {
			panic(fmt.Sprintf("gc: rooted handle references unmarked %v", a))
		}
		h.Set(nt)
	}

	return refs
}

// majorCompact moves every live object to its assigned destination: old
// generation objects first (sliding compaction), then young survivors,
// with H2-bound objects written through the promotion buffers.
func (c *Collector) majorCompact(fw *forwarding, cy *Cycle) {
	m := c.Mem

	moveOne := func(i int) {
		c.gangBegin() // each live object is one compaction work item
		src, dst := fw.src[i], fw.dst[i]
		size := m.SizeWords(src)
		if fw.inH2(i) {
			image := c.imageBuf
			if cap(image) < size {
				image = make([]uint64, size)
			} else {
				image = image[:size]
			}
			for w := 0; w < size; w++ {
				image[w] = m.AS.Load(src + vm.Addr(w*vm.WordSize))
			}
			image[0] &^= vm.FlagMark | vm.FlagClosure | vm.FlagPretenured
			c.TH.CommitMove(dst, image) // copies image; safe to reuse
			c.imageBuf = image
			cy.BytesMovedToH2 += int64(size) * vm.WordSize
			cy.ObjectsMovedH2++
			return
		}
		if dst != src {
			m.CopyObject(dst, src, size)
		}
		st := m.Status(dst)
		m.SetStatus(dst, st&^uint64(vm.FlagMark|vm.FlagClosure))
		cy.BytesCopied += int64(size) * vm.WordSize
		c.gangCharge(time.Duration(int64(size)*vm.WordSize) * c.Costs.CopyPerByte)
	}

	for i := fw.oldStartIdx; i < len(fw.src); i++ {
		moveOne(i)
	}
	for i := 0; i < fw.oldStartIdx; i++ {
		moveOne(i)
	}
	if !c.gangActive() {
		c.chargeGC(simclock.MajorGC,
			time.Duration(cy.BytesCopied)*c.Costs.CopyPerByte, c.Costs.MajorGCThreads)
	}

	// Reset spaces: everything live is now in the old generation or H2.
	c.H1.Old.Top = fw.oldTop
	c.H1.Eden.Reset()
	c.H1.From.Reset()
	c.H1.To.Reset()
	c.H1.Cards.ClearAll()
	c.rebuildStartArray()
	c.TH.FlushBuffers()
}
