package gc_test

import (
	"testing"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
	"github.com/carv-repro/teraheap-go/internal/workloads"
)

// shadowNode mirrors one simulated heap object in plain Go.
type shadowNode struct {
	id    uint64
	left  *shadowNode
	right *shadowNode
}

// shadowModel drives random mutations against both the simulated heap and
// a plain Go object graph, then verifies they agree — across minor GCs,
// major GCs, tenuring, and TeraHeap movement.
type shadowModel struct {
	t    *testing.T
	jvm  *rt.JVM
	node *vm.Class
	rnd  *workloads.Rand

	roots  []*vm.Handle
	shadow []*shadowNode
	nextID uint64
}

func newShadowModel(t *testing.T, withTH bool, seed uint64) *shadowModel {
	classes := vm.NewClassTable()
	m := &shadowModel{
		t:    t,
		node: classes.MustFixed("Node", 2, 1),
		rnd:  workloads.NewRand(seed),
	}
	var opts rt.Options
	opts.H1Size = 1 * storage.MB
	if withTH {
		cfg := core.DefaultConfig(64 * storage.MB)
		cfg.RegionSize = 32 * storage.KB
		opts.TH = &cfg
	}
	m.jvm = rt.NewJVM(opts, classes, simclock.New())
	return m
}

func (m *shadowModel) alloc(left, right int) {
	var l, r *shadowNode
	if left >= 0 && left < len(m.shadow) {
		l = m.shadow[left]
	}
	if right >= 0 && right < len(m.shadow) {
		r = m.shadow[right]
	}
	a, err := m.jvm.Alloc(m.node)
	if err != nil {
		m.t.Fatalf("alloc: %v", err)
	}
	// Read the handles only after the allocation: it may trigger a GC that
	// moves the targets, and a raw address captured before it would be
	// stale.
	var la, ra vm.Addr
	if l != nil {
		la = m.roots[left].Addr()
	}
	if r != nil {
		ra = m.roots[right].Addr()
	}
	m.nextID++
	m.jvm.WritePrim(a, 0, m.nextID)
	m.jvm.WriteRef(a, 0, la)
	m.jvm.WriteRef(a, 1, ra)
	m.roots = append(m.roots, m.jvm.NewHandle(a))
	m.shadow = append(m.shadow, &shadowNode{id: m.nextID, left: l, right: r})
}

func (m *shadowModel) mutate(target, child int) {
	if len(m.shadow) == 0 {
		return
	}
	target %= len(m.shadow)
	var c *shadowNode
	var ca vm.Addr
	if child >= 0 && child < len(m.shadow) {
		c, ca = m.shadow[child], m.roots[child].Addr()
	}
	m.jvm.WriteRef(m.roots[target].Addr(), 0, ca)
	m.shadow[target].left = c
}

func (m *shadowModel) drop(i int) {
	if len(m.shadow) < 2 {
		return
	}
	i %= len(m.shadow)
	m.jvm.Release(m.roots[i])
	last := len(m.shadow) - 1
	m.roots[i], m.roots[last] = m.roots[last], m.roots[i]
	m.shadow[i], m.shadow[last] = m.shadow[last], m.shadow[i]
	m.roots = m.roots[:last]
	m.shadow = m.shadow[:last]
}

// verify walks each rooted graph in both worlds simultaneously.
func (m *shadowModel) verify() {
	seen := make(map[*shadowNode]vm.Addr)
	var walk func(s *shadowNode, a vm.Addr)
	walk = func(s *shadowNode, a vm.Addr) {
		if s == nil {
			if !a.IsNull() {
				m.t.Fatalf("shadow nil but heap has %v", a)
			}
			return
		}
		if a.IsNull() {
			m.t.Fatalf("heap nil but shadow has node %d", s.id)
		}
		if prev, ok := seen[s]; ok {
			if prev != a {
				m.t.Fatalf("node %d aliased at %v and %v (sharing broken)", s.id, prev, a)
			}
			return
		}
		seen[s] = a
		if got := m.jvm.ReadPrim(a, 0); got != s.id {
			m.t.Fatalf("node id mismatch: heap %d shadow %d", got, s.id)
		}
		walk(s.left, m.jvm.ReadRef(a, 0))
		walk(s.right, m.jvm.ReadRef(a, 1))
	}
	for i := range m.shadow {
		walk(m.shadow[i], m.roots[i].Addr())
	}
}

func runShadow(t *testing.T, withTH bool, seed uint64, steps int) {
	newShadowModel(t, withTH, seed).run(steps)
}

func (m *shadowModel) run(steps int) {
	t, withTH := m.t, m.jvm.TeraHeap() != nil
	for step := 0; step < steps; step++ {
		switch m.rnd.Intn(10) {
		case 0, 1, 2, 3, 4: // allocate, linking random existing nodes
			m.alloc(m.rnd.Intn(len(m.shadow)+1)-1, m.rnd.Intn(len(m.shadow)+1)-1)
		case 5, 6: // mutate a reference
			m.mutate(m.rnd.Intn(1<<20), m.rnd.Intn(len(m.shadow)+1)-1)
		case 7: // drop a root (its subgraph may become garbage)
			m.drop(m.rnd.Intn(1 << 20))
		case 8: // force a minor GC
			if err := m.jvm.Collector().MinorGC(); err != nil {
				t.Fatal(err)
			}
		case 9: // occasionally a major GC, with TH tagging beforehand
			if withTH && len(m.roots) > 0 && m.rnd.Intn(2) == 0 {
				i := m.rnd.Intn(len(m.roots))
				label := uint64(1 + m.rnd.Intn(5))
				m.jvm.TagRoot(m.roots[i], label)
				m.jvm.MoveHint(label)
			}
			if err := m.jvm.FullGC(); err != nil {
				t.Fatal(err)
			}
		}
		if step%200 == 199 {
			m.verify()
		}
	}
	m.verify()
}

func TestShadowModelVanilla(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		runShadow(t, false, seed, 3000)
	}
}

func TestShadowModelTeraHeap(t *testing.T) {
	for seed := uint64(11); seed <= 14; seed++ {
		runShadow(t, true, seed, 3000)
	}
}
