// Package vm defines the simulated managed-runtime object model the
// TeraHeap reproduction is built on: a word-addressed virtual address
// space, Java-style object headers extended with the paper's 8-byte label
// field (§3.2), class descriptors, bump-pointer spaces, and handle-based
// GC roots.
//
// Everything is expressed in terms of 8-byte words and byte addresses so
// that the garbage collector, card tables, and TeraHeap's region machinery
// operate exactly the way the paper describes them over OpenJDK.
package vm

import "fmt"

// Addr is a byte address in the simulated virtual address space. The zero
// value is the null reference. All object addresses are 8-byte aligned.
type Addr uint64

// NullAddr is the null reference.
const NullAddr Addr = 0

// WordSize is the size of a heap word in bytes.
const WordSize = 8

// IsNull reports whether a is the null reference.
func (a Addr) IsNull() bool { return a == NullAddr }

// Word returns the word index of a relative to base. Addresses are always
// word-aligned and at or above their base, so the divide compiles to an
// unsigned shift (signed division by 8 costs extra sign-fixup instructions
// on this hot path).
func (a Addr) Word(base Addr) int64 { return int64((a - base) >> 3) }

// String renders the address in hex.
func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// Canonical base addresses for the two heaps. H2 sits far above H1 so a
// single comparison implements the paper's "reference range check" used by
// the post-write barriers and the GC fencing (§4).
const (
	H1Base Addr = 0x0000_0001_0000_0000 // 4 GB
	H2Base Addr = 0x0000_0100_0000_0000 // 1 TB
)

// InH2 is the reference range check: it reports whether a points into the
// second heap. It is the single branch the paper adds to the interpreter
// and JIT post-write barriers.
func InH2(a Addr) bool { return a >= H2Base }

// Memory is word-granularity access to a range of the address space.
type Memory interface {
	Load(a Addr) uint64
	Store(a Addr, v uint64)
}

// RAM is DRAM-backed memory: a plain Go slice with no simulated access
// cost (DRAM latency is folded into the mutator compute constants).
type RAM struct {
	base  Addr
	words []uint64
}

// NewRAM allocates sizeBytes of DRAM at base.
func NewRAM(base Addr, sizeBytes int64) *RAM {
	return &RAM{base: base, words: make([]uint64, sizeBytes/WordSize)}
}

// Base returns the first mapped address.
func (r *RAM) Base() Addr { return r.base }

// SizeBytes returns the mapped size.
func (r *RAM) SizeBytes() int64 { return int64(len(r.words)) * WordSize }

// Load reads the word at a.
func (r *RAM) Load(a Addr) uint64 { return r.words[(a-r.base)>>3] }

// Store writes the word at a.
func (r *RAM) Store(a Addr, v uint64) { r.words[(a-r.base)>>3] = v }

// Peeker is optionally implemented by Memory backends that can read a
// word without charging simulated cost. The invariant verifier reads the
// whole heap through Peek so that enabling verification never perturbs
// the deterministic clock.
type Peeker interface {
	Peek(a Addr) uint64
}

// Mapping binds an address range to a Memory implementation.
type Mapping struct {
	Start, End Addr // [Start, End)
	Mem        Memory
}

// AddressSpace routes loads and stores to the mapping covering each
// address. It holds few mappings (H1 and H2), so lookup is a linear scan.
type AddressSpace struct {
	mappings []Mapping
}

// Map registers a mapping. Ranges must not overlap.
func (as *AddressSpace) Map(start, end Addr, mem Memory) {
	as.mappings = append(as.mappings, Mapping{Start: start, End: end, Mem: mem})
}

// Resolve returns the memory covering a, or nil.
func (as *AddressSpace) Resolve(a Addr) Memory {
	for i := range as.mappings {
		m := &as.mappings[i]
		if a >= m.Start && a < m.End {
			return m.Mem
		}
	}
	return nil
}

// Load reads the word at a. It panics on unmapped addresses: an unmapped
// access is a simulator bug, not a recoverable condition.
func (as *AddressSpace) Load(a Addr) uint64 {
	m := as.Resolve(a)
	if m == nil {
		panic(fmt.Sprintf("vm: load from unmapped address %v", a))
	}
	return m.Load(a)
}

// Peek reads the word at a without charging simulated cost: backends
// implementing Peeker are read directly, anything else falls back to Load
// (RAM loads are already free). Invariant checks and tests only.
func (as *AddressSpace) Peek(a Addr) uint64 {
	m := as.Resolve(a)
	if m == nil {
		panic(fmt.Sprintf("vm: peek of unmapped address %v", a))
	}
	if p, ok := m.(Peeker); ok {
		return p.Peek(a)
	}
	return m.Load(a)
}

// Store writes the word at a.
func (as *AddressSpace) Store(a Addr, v uint64) {
	m := as.Resolve(a)
	if m == nil {
		panic(fmt.Sprintf("vm: store to unmapped address %v", a))
	}
	m.Store(a, v)
}
