package vm

import "fmt"

// Space is a contiguous bump-pointer allocation space (eden, a survivor
// space, the old generation, or an H2 region).
type Space struct {
	Name  string
	Start Addr
	End   Addr // exclusive
	Top   Addr // next free address
}

// NewSpace builds a space over [start, start+sizeBytes).
func NewSpace(name string, start Addr, sizeBytes int64) *Space {
	return &Space{Name: name, Start: start, End: start + Addr(sizeBytes), Top: start}
}

// Alloc bumps the pointer by words*WordSize. It returns the address and
// whether the allocation fit.
func (s *Space) Alloc(words int) (Addr, bool) {
	need := Addr(words * WordSize)
	if s.Top+need > s.End {
		return NullAddr, false
	}
	a := s.Top
	s.Top += need
	return a, true
}

// Contains reports whether a falls inside the space bounds.
func (s *Space) Contains(a Addr) bool { return a >= s.Start && a < s.End }

// Used returns the allocated bytes.
func (s *Space) Used() int64 { return int64(s.Top - s.Start) }

// Capacity returns the total bytes.
func (s *Space) Capacity() int64 { return int64(s.End - s.Start) }

// Free returns the remaining bytes.
func (s *Space) Free() int64 { return int64(s.End - s.Top) }

// Reset empties the space.
func (s *Space) Reset() { s.Top = s.Start }

// String summarizes the space.
func (s *Space) String() string {
	return fmt.Sprintf("%s[%v,%v) used=%d/%d", s.Name, s.Start, s.End, s.Used(), s.Capacity())
}

// Walk iterates objects in [Start, Top) in address order, calling fn with
// each object address. fn must not allocate into the space.
func (s *Space) Walk(m *Mem, fn func(a Addr)) {
	for a := s.Start; a < s.Top; {
		size := m.SizeWords(a)
		if size < HeaderWords {
			panic(fmt.Sprintf("vm: corrupt object at %v in %s (size %d)", a, s.Name, size))
		}
		fn(a)
		a += Addr(size * WordSize)
	}
}
