package vm

import "fmt"

// Object header layout (3 words, mirroring the paper's extended header):
//
//	word 0: status word — class id, age, GC flags; or a forwarding pointer
//	word 1: size in words (low 32) | number of reference fields (high 32)
//	word 2: TeraHeap label (the paper's extra 8-byte header field, §3.2)
//	word 3..3+numRefs-1:   reference fields
//	word 3+numRefs..size-1: primitive words
const HeaderWords = 3

// Header word offsets.
const (
	hdrStatus = 0
	hdrShape  = 1
	hdrLabel  = 2
)

// Status-word encoding. The masks are exported because GC image builders
// (minor direct promotion, major compaction, G1 closure moves) and the
// invariant verifier all need to strip or test the transient GC bits.
const (
	ClassMask      = 0xFFFF // bits 0-15
	ageShift       = 16     // bits 16-19
	ageMask        = 0xF
	FlagMark       = 1 << 24 // live, set by major GC marking
	FlagClosure    = 1 << 25 // selected for H2 movement this major GC
	FlagPretenured = 1 << 26 // placed in old gen by a placement policy
	FlagFwd        = 1 << 63 // word 0 holds a forwarding pointer
	FwdAddrMask    = (1 << 48) - 1
)

// MaxAge is the tenuring ceiling representable in the header.
const MaxAge = ageMask

// Mem wraps an address space with object-level accessors. All GC and
// framework code manipulates objects exclusively through Mem so that H2
// accesses route through the simulated mapped file and charge I/O.
type Mem struct {
	AS      *AddressSpace
	Classes *ClassTable
}

// NewMem builds an object accessor over as and classes.
func NewMem(as *AddressSpace, classes *ClassTable) *Mem {
	return &Mem{AS: as, Classes: classes}
}

// InitObject writes a fresh header at a for an object of class c with the
// given reference-field count and total size in words, and zeroes the
// fields. The object starts unmarked, age 0, label 0.
func (m *Mem) InitObject(a Addr, c *Class, numRefs, sizeWords int) {
	m.AS.Store(a+hdrStatus*WordSize, uint64(c.ID))
	m.AS.Store(a+hdrShape*WordSize, uint64(sizeWords)|uint64(numRefs)<<32)
	m.AS.Store(a+hdrLabel*WordSize, 0)
	for i := HeaderWords; i < sizeWords; i++ {
		m.AS.Store(a+Addr(i*WordSize), 0)
	}
}

// InitObjectHeaderOnly writes the header without zeroing the body; used by
// GC when copying (the body is copied explicitly).
func (m *Mem) InitObjectHeaderOnly(a Addr, status, shape, label uint64) {
	m.AS.Store(a+hdrStatus*WordSize, status)
	m.AS.Store(a+hdrShape*WordSize, shape)
	m.AS.Store(a+hdrLabel*WordSize, label)
}

// Status returns the raw status word.
func (m *Mem) Status(a Addr) uint64 { return m.AS.Load(a + hdrStatus*WordSize) }

// SetStatus writes the raw status word.
func (m *Mem) SetStatus(a Addr, v uint64) { m.AS.Store(a+hdrStatus*WordSize, v) }

// Shape returns the raw shape word (size | numRefs<<32).
func (m *Mem) Shape(a Addr) uint64 { return m.AS.Load(a + hdrShape*WordSize) }

// ClassOf returns the class of the object at a.
func (m *Mem) ClassOf(a Addr) *Class {
	return m.Classes.Get(ClassID(m.Status(a) & ClassMask))
}

// SizeWords returns the total object size in words including the header.
func (m *Mem) SizeWords(a Addr) int { return int(uint32(m.Shape(a))) }

// SizeBytes returns the total object size in bytes.
func (m *Mem) SizeBytes(a Addr) int64 { return int64(m.SizeWords(a)) * WordSize }

// NumRefs returns the number of reference fields of the object at a.
func (m *Mem) NumRefs(a Addr) int { return int(m.Shape(a) >> 32) }

// Age returns the object's tenuring age.
func (m *Mem) Age(a Addr) int { return int(m.Status(a) >> ageShift & ageMask) }

// SetAge sets the tenuring age, clamped to MaxAge.
func (m *Mem) SetAge(a Addr, age int) {
	if age > MaxAge {
		age = MaxAge
	}
	s := m.Status(a)
	s &^= uint64(ageMask) << ageShift
	s |= uint64(age) << ageShift
	m.SetStatus(a, s)
}

// Marked reports the major-GC mark bit.
func (m *Mem) Marked(a Addr) bool { return m.Status(a)&FlagMark != 0 }

// SetMarked sets or clears the major-GC mark bit.
func (m *Mem) SetMarked(a Addr, v bool) { m.setFlag(a, FlagMark, v) }

// InClosure reports whether the object was selected for H2 movement.
func (m *Mem) InClosure(a Addr) bool { return m.Status(a)&FlagClosure != 0 }

// SetInClosure sets or clears the H2-closure bit.
func (m *Mem) SetInClosure(a Addr, v bool) { m.setFlag(a, FlagClosure, v) }

func (m *Mem) setFlag(a Addr, flag uint64, v bool) {
	s := m.Status(a)
	if v {
		s |= flag
	} else {
		s &^= flag
	}
	m.SetStatus(a, s)
}

// Forwarded reports whether the object has been forwarded (scavenged).
func (m *Mem) Forwarded(a Addr) bool { return m.Status(a)&FlagFwd != 0 }

// Forwardee returns the forwarding pointer; only valid when Forwarded.
func (m *Mem) Forwardee(a Addr) Addr { return Addr(m.Status(a) & FwdAddrMask) }

// SetForwardee overwrites the status word with a forwarding pointer.
func (m *Mem) SetForwardee(a, to Addr) {
	m.SetStatus(a, FlagFwd|uint64(to)&FwdAddrMask)
}

// Label returns the TeraHeap label (0 = untagged).
func (m *Mem) Label(a Addr) uint64 { return m.AS.Load(a + hdrLabel*WordSize) }

// SetLabel tags the object with a TeraHeap label.
func (m *Mem) SetLabel(a Addr, label uint64) { m.AS.Store(a+hdrLabel*WordSize, label) }

// RefAt returns reference field i.
func (m *Mem) RefAt(a Addr, i int) Addr {
	return Addr(m.AS.Load(a + Addr((HeaderWords+i)*WordSize)))
}

// SetRefAt writes reference field i WITHOUT a write barrier. GC interior
// use only: mutators must go through gc.Collector.WriteRef.
func (m *Mem) SetRefAt(a Addr, i int, v Addr) {
	m.AS.Store(a+Addr((HeaderWords+i)*WordSize), uint64(v))
}

// PrimAt returns primitive word i (i counts from the first primitive word).
func (m *Mem) PrimAt(a Addr, i int) uint64 {
	return m.AS.Load(a + Addr((HeaderWords+m.NumRefs(a)+i)*WordSize))
}

// SetPrimAt writes primitive word i.
func (m *Mem) SetPrimAt(a Addr, i int, v uint64) {
	m.AS.Store(a+Addr((HeaderWords+m.NumRefs(a)+i)*WordSize), uint64(v))
}

// NumPrims returns the number of primitive words of the object at a.
func (m *Mem) NumPrims(a Addr) int {
	return m.SizeWords(a) - HeaderWords - m.NumRefs(a)
}

// CopyObject copies the sizeWords-long object at src to dst word by word.
func (m *Mem) CopyObject(dst, src Addr, sizeWords int) {
	for i := 0; i < sizeWords; i++ {
		m.AS.Store(dst+Addr(i*WordSize), m.AS.Load(src+Addr(i*WordSize)))
	}
}

// Pure decoders over raw header words, for code (the invariant verifier,
// analyses) that reads headers through a cost-free peek path rather than
// the charging Load path. They mirror the Mem accessors above exactly.

// StatusForwarded reports whether a raw status word is a forwarding pointer.
func StatusForwarded(status uint64) bool { return status&FlagFwd != 0 }

// StatusForwardee decodes the forwarding target of a raw status word.
func StatusForwardee(status uint64) Addr { return Addr(status & FwdAddrMask) }

// StatusClassID decodes the class id of a raw status word.
func StatusClassID(status uint64) ClassID { return ClassID(status & ClassMask) }

// StatusAge decodes the tenuring age of a raw status word.
func StatusAge(status uint64) int { return int(status >> ageShift & ageMask) }

// StatusPretenured reports whether a raw status word carries the
// policy-pretenured bit.
func StatusPretenured(status uint64) bool { return status&FlagPretenured != 0 }

// ShapeSizeWords decodes the total object size (in words) of a raw shape word.
func ShapeSizeWords(shape uint64) int { return int(uint32(shape)) }

// ShapeNumRefs decodes the reference-field count of a raw shape word.
func ShapeNumRefs(shape uint64) int { return int(shape >> 32) }

// Describe renders a short debugging description of the object at a.
func (m *Mem) Describe(a Addr) string {
	if a.IsNull() {
		return "null"
	}
	c := m.ClassOf(a)
	return fmt.Sprintf("%s@%v[size=%dw refs=%d label=%d age=%d]",
		c.Name, a, m.SizeWords(a), m.NumRefs(a), m.Label(a), m.Age(a))
}
