package vm_test

import (
	"testing"
	"testing/quick"

	"github.com/carv-repro/teraheap-go/internal/vm"
)

func newMem(size int64) (*vm.Mem, *vm.ClassTable) {
	classes := vm.NewClassTable()
	as := &vm.AddressSpace{}
	as.Map(vm.H1Base, vm.H1Base+vm.Addr(size), vm.NewRAM(vm.H1Base, size))
	return vm.NewMem(as, classes), classes
}

func TestHeaderRoundTrip(t *testing.T) {
	m, classes := newMem(1 << 16)
	c := classes.MustFixed("T", 2, 3)
	a := vm.H1Base
	m.InitObject(a, c, 2, c.InstanceWords())

	if m.ClassOf(a) != c {
		t.Fatal("class mismatch")
	}
	if m.SizeWords(a) != vm.HeaderWords+5 {
		t.Fatalf("size = %d", m.SizeWords(a))
	}
	if m.NumRefs(a) != 2 || m.NumPrims(a) != 3 {
		t.Fatalf("refs=%d prims=%d", m.NumRefs(a), m.NumPrims(a))
	}
	if m.Marked(a) || m.InClosure(a) || m.Forwarded(a) || m.Age(a) != 0 || m.Label(a) != 0 {
		t.Fatal("fresh object has dirty flags")
	}
}

func TestFlagIndependence(t *testing.T) {
	m, classes := newMem(1 << 16)
	c := classes.MustFixed("T", 1, 1)
	a := vm.H1Base
	m.InitObject(a, c, 1, c.InstanceWords())

	m.SetMarked(a, true)
	m.SetInClosure(a, true)
	m.SetAge(a, 7)
	m.SetLabel(a, 99)
	if !m.Marked(a) || !m.InClosure(a) || m.Age(a) != 7 || m.Label(a) != 99 {
		t.Fatal("flag set lost")
	}
	if m.ClassOf(a) != c {
		t.Fatal("flags clobbered the class id")
	}
	m.SetMarked(a, false)
	if m.Marked(a) || !m.InClosure(a) {
		t.Fatal("clearing mark affected closure bit")
	}
}

func TestAgeClampsAtMax(t *testing.T) {
	m, classes := newMem(1 << 16)
	c := classes.MustFixed("T", 0, 1)
	a := vm.H1Base
	m.InitObject(a, c, 0, c.InstanceWords())
	m.SetAge(a, 1000)
	if m.Age(a) != vm.MaxAge {
		t.Fatalf("age = %d, want %d", m.Age(a), vm.MaxAge)
	}
}

func TestForwardingPointer(t *testing.T) {
	m, classes := newMem(1 << 16)
	c := classes.MustFixed("T", 0, 1)
	a := vm.H1Base
	m.InitObject(a, c, 0, c.InstanceWords())
	to := vm.H1Base + 4096
	m.SetForwardee(a, to)
	if !m.Forwarded(a) {
		t.Fatal("not forwarded")
	}
	if m.Forwardee(a) != to {
		t.Fatalf("forwardee = %v", m.Forwardee(a))
	}
}

func TestPrimAndRefFieldsDoNotOverlap(t *testing.T) {
	m, classes := newMem(1 << 16)
	c := classes.MustFixed("T", 3, 3)
	a := vm.H1Base
	m.InitObject(a, c, 3, c.InstanceWords())
	for i := 0; i < 3; i++ {
		m.SetRefAt(a, i, vm.H1Base+vm.Addr(8*(i+100)))
		m.SetPrimAt(a, i, uint64(1000+i))
	}
	for i := 0; i < 3; i++ {
		if m.RefAt(a, i) != vm.H1Base+vm.Addr(8*(i+100)) {
			t.Fatalf("ref %d corrupted", i)
		}
		if m.PrimAt(a, i) != uint64(1000+i) {
			t.Fatalf("prim %d corrupted", i)
		}
	}
}

func TestPropertyPrimRoundTrip(t *testing.T) {
	m, classes := newMem(1 << 20)
	c := classes.MustPrimArray("long[]")
	a := vm.H1Base
	const n = 64
	m.InitObject(a, c, 0, vm.HeaderWords+n)
	f := func(i uint8, v uint64) bool {
		idx := int(i) % n
		m.SetPrimAt(a, idx, v)
		return m.PrimAt(a, idx) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceAllocBounds(t *testing.T) {
	s := vm.NewSpace("t", vm.H1Base, 64)
	a, ok := s.Alloc(4) // 32 bytes
	if !ok || a != vm.H1Base {
		t.Fatalf("first alloc: %v %v", a, ok)
	}
	b, ok := s.Alloc(4)
	if !ok || b != vm.H1Base+32 {
		t.Fatalf("second alloc: %v %v", b, ok)
	}
	if _, ok := s.Alloc(1); ok {
		t.Fatal("overflow alloc succeeded")
	}
	if s.Used() != 64 || s.Free() != 0 {
		t.Fatalf("used=%d free=%d", s.Used(), s.Free())
	}
	s.Reset()
	if s.Used() != 0 {
		t.Fatal("reset failed")
	}
}

func TestRootSetCreateReleaseCompact(t *testing.T) {
	r := vm.NewRootSet()
	var hs []*vm.Handle
	for i := 0; i < 200; i++ {
		hs = append(hs, r.Create(vm.H1Base+vm.Addr(i*8)))
	}
	for i := 0; i < 150; i++ {
		r.Release(hs[i])
	}
	if r.Len() != 50 {
		t.Fatalf("len = %d", r.Len())
	}
	seen := 0
	r.ForEach(func(h *vm.Handle) { seen++ })
	if seen != 50 {
		t.Fatalf("forEach visited %d", seen)
	}
	// Released handles are nulled.
	if !hs[0].IsNull() {
		t.Fatal("released handle not nulled")
	}
	// Double release is harmless.
	r.Release(hs[0])
	if r.Len() != 50 {
		t.Fatal("double release changed len")
	}
}

func TestInH2RangeCheck(t *testing.T) {
	if vm.InH2(vm.H1Base) {
		t.Fatal("H1 address classified as H2")
	}
	if !vm.InH2(vm.H2Base) {
		t.Fatal("H2 base not classified as H2")
	}
}

func TestClassTableRegistration(t *testing.T) {
	ct := vm.NewClassTable()
	c := ct.MustFixed("a.B", 1, 2)
	if ct.ByName("a.B") != c || ct.Get(c.ID) != c {
		t.Fatal("lookup failed")
	}
	if ct.ByName("missing") != nil {
		t.Fatal("phantom class")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	ct.MustFixed("a.B", 0, 0)
}

func TestAddressSpaceUnmappedPanics(t *testing.T) {
	as := &vm.AddressSpace{}
	as.Map(vm.H1Base, vm.H1Base+4096, vm.NewRAM(vm.H1Base, 4096))
	defer func() {
		if recover() == nil {
			t.Fatal("unmapped load did not panic")
		}
	}()
	as.Load(vm.H1Base + 8192)
}
