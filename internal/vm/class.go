package vm

import "fmt"

// ClassID indexes a class in the ClassTable. It must fit the 16-bit class
// field of the object header.
type ClassID uint16

// ClassKind distinguishes object layouts.
type ClassKind int

// Object layout kinds.
const (
	// KindFixed objects have NumRefs reference fields followed by NumPrims
	// primitive words, both fixed by the class.
	KindFixed ClassKind = iota
	// KindRefArray objects are arrays of references; length is per object.
	KindRefArray
	// KindPrimArray objects are arrays of primitive words; length is per
	// object.
	KindPrimArray
)

// Class describes an object layout.
type Class struct {
	ID   ClassID
	Name string
	Kind ClassKind

	// NumRefs/NumPrims apply to KindFixed only.
	NumRefs  int
	NumPrims int

	// Excluded classes are never pulled into an H2 transitive closure:
	// the paper excludes JVM metadata (class objects, class loaders) and
	// java.lang.ref.Reference subclasses (§3.2).
	Excluded bool
}

// InstanceWords returns the allocation size in words for a fixed-layout
// instance, including the header.
func (c *Class) InstanceWords() int {
	if c.Kind != KindFixed {
		panic(fmt.Sprintf("vm: InstanceWords on non-fixed class %q", c.Name))
	}
	return HeaderWords + c.NumRefs + c.NumPrims
}

// ClassTable registers classes. ID 0 is reserved so that a zeroed header
// word is never a valid object.
type ClassTable struct {
	classes []*Class
	byName  map[string]*Class
}

// NewClassTable returns a table with the reserved class 0.
func NewClassTable() *ClassTable {
	t := &ClassTable{byName: make(map[string]*Class)}
	t.classes = append(t.classes, &Class{ID: 0, Name: "<reserved>"})
	return t
}

// Register adds a class and assigns its ID.
func (t *ClassTable) Register(c *Class) *Class {
	if _, dup := t.byName[c.Name]; dup {
		panic(fmt.Sprintf("vm: duplicate class %q", c.Name))
	}
	if len(t.classes) >= 1<<16 {
		panic("vm: class table full")
	}
	c.ID = ClassID(len(t.classes))
	t.classes = append(t.classes, c)
	t.byName[c.Name] = c
	return c
}

// MustFixed registers a fixed-layout class.
func (t *ClassTable) MustFixed(name string, numRefs, numPrims int) *Class {
	return t.Register(&Class{Name: name, Kind: KindFixed, NumRefs: numRefs, NumPrims: numPrims})
}

// MustRefArray registers a reference-array class.
func (t *ClassTable) MustRefArray(name string) *Class {
	return t.Register(&Class{Name: name, Kind: KindRefArray})
}

// MustPrimArray registers a primitive-array class.
func (t *ClassTable) MustPrimArray(name string) *Class {
	return t.Register(&Class{Name: name, Kind: KindPrimArray})
}

// Get returns the class with the given id.
func (t *ClassTable) Get(id ClassID) *Class {
	if int(id) >= len(t.classes) {
		panic(fmt.Sprintf("vm: unknown class id %d", id))
	}
	return t.classes[id]
}

// ByName returns the class with the given name, or nil.
func (t *ClassTable) ByName(name string) *Class { return t.byName[name] }

// Len returns the number of registered classes (including reserved 0).
func (t *ClassTable) Len() int { return len(t.classes) }
