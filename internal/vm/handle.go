package vm

// Handle is a GC root: a stable box holding an object address that the
// collector updates when the object moves. Framework code (the simulated
// Spark block manager, Giraph partition store, task-local temporaries)
// holds Handles rather than raw addresses across allocation points.
type Handle struct {
	addr Addr
	// slot is the back-index into RootSet.handles, kept by the root set so
	// Release is O(1) without a side map. -1 once released.
	slot int32
}

// Addr returns the current object address (possibly null).
func (h *Handle) Addr() Addr { return h.addr }

// Set stores a new address into the handle. No write barrier is needed:
// handles are roots, scanned fully at every collection.
func (h *Handle) Set(a Addr) { h.addr = a }

// IsNull reports whether the handle holds the null reference.
func (h *Handle) IsNull() bool { return h.addr.IsNull() }

// RootSet tracks all live handles. Registration order is preserved so GC
// traversal order, and therefore the whole simulation, is deterministic.
// Each handle carries its slot index, so membership needs no map.
type RootSet struct {
	handles []*Handle
	live    int
}

// NewRootSet returns an empty root set.
func NewRootSet() *RootSet {
	return &RootSet{}
}

// Create allocates a new rooted handle holding a.
func (r *RootSet) Create(a Addr) *Handle {
	h := &Handle{addr: a, slot: int32(len(r.handles))}
	r.handles = append(r.handles, h)
	r.live++
	return h
}

// Release unroots the handle and nulls it: a released handle's address is
// no longer maintained by the collector, so keeping it would leave a
// dangling pointer in anything (such as TeraHeap's tagged-root registry)
// that still sees the handle. The slot is tombstoned (nil) and compacted
// lazily to keep Create/Release O(1).
func (r *RootSet) Release(h *Handle) {
	h.Set(NullAddr)
	i := h.slot
	if i < 0 || int(i) >= len(r.handles) || r.handles[i] != h {
		return
	}
	r.handles[i] = nil
	h.slot = -1
	r.live--
	if r.live*2 < len(r.handles) && len(r.handles) > 64 {
		r.compact()
	}
}

func (r *RootSet) compact() {
	live := r.handles[:0]
	for _, h := range r.handles {
		if h != nil {
			h.slot = int32(len(live))
			live = append(live, h)
		}
	}
	// Clear the tail so released handles do not linger.
	for i := len(live); i < len(r.handles); i++ {
		r.handles[i] = nil
	}
	r.handles = live
}

// Len returns the number of live handles.
func (r *RootSet) Len() int { return r.live }

// ForEach visits every live handle in registration order.
func (r *RootSet) ForEach(fn func(h *Handle)) {
	for _, h := range r.handles {
		if h != nil {
			fn(h)
		}
	}
}

// Handles exposes the underlying slot slice, nil tombstones included, in
// registration order. Callers must treat it as read-only and skip nils; it
// exists so per-GC root scans can iterate without a closure allocation.
func (r *RootSet) Handles() []*Handle { return r.handles }
