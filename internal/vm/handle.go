package vm

// Handle is a GC root: a stable box holding an object address that the
// collector updates when the object moves. Framework code (the simulated
// Spark block manager, Giraph partition store, task-local temporaries)
// holds Handles rather than raw addresses across allocation points.
type Handle struct {
	addr Addr
}

// Addr returns the current object address (possibly null).
func (h *Handle) Addr() Addr { return h.addr }

// Set stores a new address into the handle. No write barrier is needed:
// handles are roots, scanned fully at every collection.
func (h *Handle) Set(a Addr) { h.addr = a }

// IsNull reports whether the handle holds the null reference.
func (h *Handle) IsNull() bool { return h.addr.IsNull() }

// RootSet tracks all live handles. Registration order is preserved so GC
// traversal order, and therefore the whole simulation, is deterministic.
type RootSet struct {
	handles []*Handle
	index   map[*Handle]int
}

// NewRootSet returns an empty root set.
func NewRootSet() *RootSet {
	return &RootSet{index: make(map[*Handle]int)}
}

// Create allocates a new rooted handle holding a.
func (r *RootSet) Create(a Addr) *Handle {
	h := &Handle{addr: a}
	r.index[h] = len(r.handles)
	r.handles = append(r.handles, h)
	return h
}

// Release unroots the handle and nulls it: a released handle's address is
// no longer maintained by the collector, so keeping it would leave a
// dangling pointer in anything (such as TeraHeap's tagged-root registry)
// that still sees the handle. The slot is tombstoned (nil) and compacted
// lazily to keep Create/Release O(1).
func (r *RootSet) Release(h *Handle) {
	h.Set(NullAddr)
	i, ok := r.index[h]
	if !ok {
		return
	}
	r.handles[i] = nil
	delete(r.index, h)
	if len(r.index)*2 < len(r.handles) && len(r.handles) > 64 {
		r.compact()
	}
}

func (r *RootSet) compact() {
	live := r.handles[:0]
	for _, h := range r.handles {
		if h != nil {
			r.index[h] = len(live)
			live = append(live, h)
		}
	}
	// Clear the tail so released handles do not linger.
	for i := len(live); i < len(r.handles); i++ {
		r.handles[i] = nil
	}
	r.handles = live
}

// Len returns the number of live handles.
func (r *RootSet) Len() int { return len(r.index) }

// ForEach visits every live handle in registration order.
func (r *RootSet) ForEach(fn func(h *Handle)) {
	for _, h := range r.handles {
		if h != nil {
			fn(h)
		}
	}
}
