package vm_test

import (
	"testing"

	"github.com/carv-repro/teraheap-go/internal/vm"
)

func BenchmarkRootSetCreateRelease(b *testing.B) {
	rs := vm.NewRootSet()
	for i := 0; i < 64; i++ {
		rs.Create(vm.Addr(uint64(i+1) * 8))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := rs.Create(vm.Addr(8))
		rs.Release(h)
	}
}

// TestRootSetCreateReleaseAllocPin pins the slice+back-index root set:
// the only allocation per create/release pair is the Handle object itself
// (the map the old design consulted on every Release is gone).
func TestRootSetCreateReleaseAllocPin(t *testing.T) {
	rs := vm.NewRootSet()
	for i := 0; i < 64; i++ {
		rs.Create(vm.Addr(uint64(i+1) * 8))
	}
	got := testing.AllocsPerRun(100, func() {
		h := rs.Create(vm.Addr(8))
		rs.Release(h)
	})
	if got > 1 {
		t.Errorf("create/release: %v allocs/op, want <= 1 (the Handle)", got)
	}
}
