package runner_test

import (
	"sync/atomic"
	"testing"

	"github.com/carv-repro/teraheap-go/internal/runner"
)

func TestDoReturnsResultsInSubmissionOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		got := runner.Do(100, workers, func(i int) int { return i * i })
		if len(got) != 100 {
			t.Fatalf("workers=%d: got %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestDoRunsEveryJobExactlyOnce(t *testing.T) {
	var calls [64]atomic.Int64
	runner.Do(64, 8, func(i int) struct{} {
		calls[i].Add(1)
		return struct{}{}
	})
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Fatalf("job %d ran %d times", i, n)
		}
	}
}

func TestDoEmptyAndSingle(t *testing.T) {
	if got := runner.Do(0, 4, func(i int) int { return i }); got != nil {
		t.Fatalf("n=0: got %v, want nil", got)
	}
	if got := runner.Do(1, 4, func(i int) int { return 7 }); len(got) != 1 || got[0] != 7 {
		t.Fatalf("n=1: got %v", got)
	}
}

func TestDoPropagatesLowestIndexPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r != "boom-2" {
			t.Fatalf("recovered %v, want boom-2", r)
		}
	}()
	runner.Do(8, 4, func(i int) int {
		if i == 2 || i == 5 {
			// Both panic; the lowest submitted index must win so the
			// failure surfaced matches serial execution.
			panic("boom-" + string(rune('0'+i)))
		}
		return i
	})
	t.Fatal("expected panic")
}

func TestDoSafeConvertsPanicToResult(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		got := runner.DoSafe(8, workers, func(i int) string {
			if i == 3 {
				panic("job-3 exploded")
			}
			return "ok"
		}, func(i int, v any) string {
			return "failed: " + v.(string)
		})
		if len(got) != 8 {
			t.Fatalf("workers=%d: got %d results", workers, len(got))
		}
		for i, v := range got {
			want := "ok"
			if i == 3 {
				want = "failed: job-3 exploded"
			}
			if v != want {
				t.Fatalf("workers=%d: result[%d] = %q, want %q", workers, i, v, want)
			}
		}
	}
}

func TestDoSafeKeepsDeterministicOrderAcrossPanics(t *testing.T) {
	// Several panicking jobs interleaved with healthy ones: every slot must
	// hold its own job's outcome regardless of worker scheduling.
	mk := func(workers int) []int {
		return runner.DoSafe(50, workers, func(i int) int {
			if i%7 == 0 {
				panic(i)
			}
			return i * 10
		}, func(i int, v any) int {
			return -v.(int)
		})
	}
	want := mk(1)
	for _, workers := range []int{2, 8} {
		got := mk(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestDefaultWorkers(t *testing.T) {
	prev := runner.SetDefaultWorkers(3)
	defer runner.SetDefaultWorkers(prev)
	if got := runner.DefaultWorkers(); got != 3 {
		t.Fatalf("DefaultWorkers = %d, want 3", got)
	}
	runner.SetDefaultWorkers(0)
	if got := runner.DefaultWorkers(); got < 1 {
		t.Fatalf("DefaultWorkers = %d, want >= 1", got)
	}
	got := runner.Map(10, func(i int) int { return i + 1 })
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("Map result[%d] = %d", i, v)
		}
	}
}

// TestSetDefaultWorkersNormalizesNegative pins the input validation:
// negative counts are stored as 0 (= GOMAXPROCS), never as-is, and the
// returned previous value is the normalized one.
func TestSetDefaultWorkersNormalizesNegative(t *testing.T) {
	prev := runner.SetDefaultWorkers(-5)
	defer runner.SetDefaultWorkers(prev)
	if got := runner.DefaultWorkers(); got < 1 {
		t.Fatalf("DefaultWorkers after SetDefaultWorkers(-5) = %d, want >= 1", got)
	}
	if back := runner.SetDefaultWorkers(2); back != 0 {
		t.Fatalf("previous setting = %d, want 0 (normalized)", back)
	}
	// A negative count must not wedge Map either.
	runner.SetDefaultWorkers(-1)
	got := runner.Map(4, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map result[%d] = %d", i, v)
		}
	}
}
