// Package runner provides the deterministic parallel executor for the
// experiment suite. Every simulated run is a fully self-contained
// instance (its own simclock, heap, collector, and device models), so
// the §6-§7 figure suite is embarrassingly parallel: the executor fans
// an ordered slice of independent jobs out across worker goroutines and
// merges results back in submission order, making all formatted figure
// output byte-identical to serial execution.
//
// The design is deliberately work-stealing-free: workers claim the next
// unclaimed index from a shared atomic cursor and write the result into
// that index's slot. Which worker runs which job varies between
// executions; the result slice never does. This is the same "one
// deterministic task per worker, merge in a fixed order" discipline
// Parallel Scavenge applies to its GC worker threads.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the process-wide worker count used by Map. Zero (the
// initial value) means GOMAXPROCS. The CLI's -j flag and tests set it via
// SetDefaultWorkers.
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the worker count used by Map. j <= 0 resets to
// GOMAXPROCS: negative values are normalized to 0 rather than stored, so
// a bad -j can never leak a nonsense count into later reads. It returns
// the previous setting so callers can restore it.
func SetDefaultWorkers(j int) int {
	if j < 0 {
		j = 0
	}
	prev := int(defaultWorkers.Swap(int64(j)))
	return prev
}

// DefaultWorkers returns the effective default worker count (never < 1).
func DefaultWorkers() int {
	j := int(defaultWorkers.Load())
	if j <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return j
}

// Map runs fn(0..n-1) across DefaultWorkers() goroutines and returns the
// results in index order.
func Map[T any](n int, fn func(i int) T) []T {
	return Do(n, DefaultWorkers(), fn)
}

// DoSafe runs fn(0..n-1) like Do, but a panicking job is converted into a
// result by onPanic(i, panicValue) instead of re-panicking: one failed run
// fills its own slot with a failed-run result and the rest of the suite
// completes. Result ordering is identical to Do — onPanic's value lands at
// the panicking job's index, so merged output stays deterministic.
func DoSafe[T any](n, workers int, fn func(i int) T, onPanic func(i int, v any) T) []T {
	return Do(n, workers, func(i int) (out T) {
		defer func() {
			if r := recover(); r != nil {
				out = onPanic(i, r)
			}
		}()
		return fn(i)
	})
}

// panicValue carries a worker panic back to the submitting goroutine.
type panicValue struct {
	idx int
	val any
}

// Do runs fn(0..n-1) across at most workers goroutines and returns the
// results in index order. workers <= 0 means GOMAXPROCS; a single worker
// (or a single job) runs inline with no goroutines at all, so serial
// execution is exactly the plain loop it replaces.
//
// If any job panics, Do re-panics on the calling goroutine with the
// panic value of the lowest submitted index that failed — again matching
// what a serial loop would have surfaced first.
func Do[T any](n, workers int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			results[i] = fn(i)
		}
		return results
	}

	var (
		next    atomic.Int64 // shared claim cursor
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panics  []panicValue
	)
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				panics = append(panics, panicValue{idx: i, val: r})
				panicMu.Unlock()
			}
		}()
		results[i] = fn(i)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	if len(panics) > 0 {
		first := panics[0]
		for _, p := range panics[1:] {
			if p.idx < first.idx {
				first = p
			}
		}
		panic(first.val)
	}
	return results
}
