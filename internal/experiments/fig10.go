package experiments

import (
	"fmt"
	"strings"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/giraph"
	"github.com/carv-repro/teraheap-go/internal/metrics"
	"github.com/carv-repro/teraheap-go/internal/storage"
)

// Fig10 reproduces the region-liveness CDFs (Figure 10): for each Giraph
// workload and two region sizes (the paper's 16 MB and 256 MB, scaled),
// the distribution of live objects per region and of space occupied by
// live objects, over all allocated regions (reclaimed regions count as 0%
// live).
func Fig10() string {
	regionSizes := []struct {
		label string
		size  int64
	}{
		{"16MB", 16 * storage.KB},
		{"256MB", 256 * storage.KB},
	}
	workloads := GiraphWorkloads()
	var specs []Spec
	for _, rs := range regionSizes {
		size := rs.size
		for _, w := range workloads {
			spec := giraphSpecs[w]
			dram := spec.dramGB[len(spec.dramGB)-1]
			specs = append(specs, GiraphSpec(GiraphRun{
				Workload: w, Mode: giraph.ModeTH, DramGB: dram, AnalyzeRegions: true,
				THConfig: func(c *core.Config) { c.RegionSize = size },
			}))
		}
	}
	runs := RunAll(specs)
	var sb strings.Builder
	for ri, rs := range regionSizes {
		fmt.Fprintf(&sb, "== Fig 10: region liveness (region size = %s paper-scale) ==\n", rs.label)
		for wi, w := range workloads {
			r := runs[ri*len(workloads)+wi]
			if r.OOM || r.THStats == nil {
				fmt.Fprintf(&sb, "%-6s OOM\n", w)
				continue
			}
			var liveObjPct, liveSpacePct []float64
			reclaimed := 0
			for _, snap := range r.THStats.RegionSnapshots {
				liveObjPct = append(liveObjPct, snap.LiveObjectsPct)
				liveSpacePct = append(liveSpacePct, snap.LiveSpacePct)
				if snap.Reclaimed {
					reclaimed++
				}
			}
			total := len(r.THStats.RegionSnapshots)
			reclPct := 0.0
			if total > 0 {
				reclPct = 100 * float64(reclaimed) / float64(total)
			}
			fmt.Fprintf(&sb, "%-6s regions=%d reclaimed=%.0f%%\n", w, total, reclPct)
			sb.WriteString("  live-objects% " + metrics.FormatCDF("cdf", liveObjPct))
			sb.WriteString("  live-space%   " + metrics.FormatCDF("cdf", liveSpacePct))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
