package experiments

import (
	"strings"
	"testing"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/rt"
)

// TestPretenureKindsRegistry: nil resolves to every registered kind in
// registry order; unknown names fail with the full valid set.
func TestPretenureKindsRegistry(t *testing.T) {
	all, err := PretenureKinds(nil)
	if err != nil {
		t.Fatalf("PretenureKinds(nil): %v", err)
	}
	if len(all) != len(rt.Kinds()) {
		t.Fatalf("got %d kinds, registry has %d", len(all), len(rt.Kinds()))
	}
	for i, e := range rt.Kinds() {
		if all[i] != e.Kind {
			t.Errorf("kind %d: got %v want %v (registry order)", i, all[i], e.Kind)
		}
	}
	some, err := PretenureKinds([]string{"ng2c", "g1+th", "sd"})
	if err != nil {
		t.Fatalf("PretenureKinds(names): %v", err)
	}
	if some[0] != rt.KindNG2C || some[1] != rt.KindG1TH || some[2] != rt.KindPS {
		t.Errorf("name resolution: %v", some)
	}
	if _, err := PretenureKinds([]string{"bogus"}); err == nil ||
		!strings.Contains(err.Error(), `unknown runtime kind "bogus"`) ||
		!strings.Contains(err.Error(), strings.Join(rt.KindNames(), " ")) {
		t.Errorf("unknown kind error must name the valid set: %v", err)
	}
}

// TestNewKindsVerifiedRuns pushes both new runtime kinds through a full
// (scaled-down) Spark run with the internal/check heap verifier enabled
// around every collection, and requires their placement policies to have
// actually fired: NG2C must profile allocation sites, Deca must move
// labelled epochs eagerly. Hints are disabled on the NG2C run so the
// profiler, not the h2_move advisory, decides placement.
func TestNewKindsVerifiedRuns(t *testing.T) {
	defer ResetBadRuns()
	ctx := &RunContext{Verify: true}
	for _, tc := range []struct {
		kind rt.Kind
		cfg  func(*core.Config)
	}{
		{rt.KindNG2C, func(c *core.Config) { c.EnableMoveHint = false }},
		{rt.KindDeca, nil},
	} {
		t.Run(tc.kind.String(), func(t *testing.T) {
			res := RunSpark(SparkRun{Workload: "PR", Runtime: tc.kind, DramGB: 44,
				DatasetScale: 0.1, Ctx: ctx, THConfig: tc.cfg})
			if res.OOM || res.Faulted || res.Failed {
				t.Fatalf("verified run unhealthy: %+v err=%s", res, res.FailErr)
			}
			p := res.Placement
			if p == nil {
				t.Fatal("run returned no placement stats")
			}
			switch tc.kind {
			case rt.KindNG2C:
				if p.Policy != "ng2c" || p.SitesProfiled == 0 {
					t.Errorf("NG2C policy idle under verification: %+v", p)
				}
			case rt.KindDeca:
				if p.Policy != "deca" || p.EagerLabels == 0 || p.EagerMinorMoves == 0 {
					t.Errorf("Deca policy idle under verification: %+v", p)
				}
			}
		})
	}
}
