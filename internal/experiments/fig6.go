package experiments

import (
	"strings"

	"github.com/carv-repro/teraheap-go/internal/giraph"
	"github.com/carv-repro/teraheap-go/internal/metrics"
)

// Fig6SparkResult holds one workload's bars.
type Fig6SparkResult struct {
	Workload string
	Rows     []metrics.Row
	Runs     []RunResult
}

// Fig6Spark reproduces the Spark half of Figure 6: for each workload,
// Spark-SD across its DRAM ladder and TeraHeap at the reduced and full
// DRAM points, with execution-time breakdowns and OOM markers.
func Fig6Spark(workload string) Fig6SparkResult {
	spec := sparkSpecs[workload]
	res := Fig6SparkResult{Workload: workload}
	for _, d := range spec.sdDramGB {
		r := RunSpark(SparkRun{Workload: workload, Runtime: RuntimePS, DramGB: d})
		res.Runs = append(res.Runs, r)
		res.Rows = append(res.Rows, r.Row())
	}
	for _, d := range spec.thDramGB {
		r := RunSpark(SparkRun{Workload: workload, Runtime: RuntimeTH, DramGB: d})
		res.Runs = append(res.Runs, r)
		res.Rows = append(res.Rows, r.Row())
	}
	return res
}

// Fig6Giraph reproduces the Giraph half of Figure 6.
func Fig6Giraph(workload string) Fig6SparkResult {
	spec := giraphSpecs[workload]
	res := Fig6SparkResult{Workload: workload}
	for _, d := range spec.dramGB {
		r := RunGiraph(GiraphRun{Workload: workload, Mode: giraph.ModeOOC, DramGB: d})
		res.Runs = append(res.Runs, r)
		res.Rows = append(res.Rows, r.Row())
	}
	for _, d := range spec.dramGB {
		r := RunGiraph(GiraphRun{Workload: workload, Mode: giraph.ModeTH, DramGB: d})
		res.Runs = append(res.Runs, r)
		res.Rows = append(res.Rows, r.Row())
	}
	return res
}

// Fig6SparkAll runs every Spark workload and formats the figure.
func Fig6SparkAll() string {
	var sb strings.Builder
	for _, w := range SparkWorkloads() {
		r := Fig6Spark(w)
		sb.WriteString(metrics.FormatBreakdown("Fig 6 Spark-"+w, r.Rows, true))
		sb.WriteString("\n")
	}
	return sb.String()
}

// Fig6GiraphAll runs every Giraph workload and formats the figure.
func Fig6GiraphAll() string {
	var sb strings.Builder
	for _, w := range GiraphWorkloads() {
		r := Fig6Giraph(w)
		sb.WriteString(metrics.FormatBreakdown("Fig 6 Giraph-"+w, r.Rows, true))
		sb.WriteString("\n")
	}
	return sb.String()
}
