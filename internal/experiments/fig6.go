package experiments

import (
	"fmt"
	"strings"

	"github.com/carv-repro/teraheap-go/internal/giraph"
	"github.com/carv-repro/teraheap-go/internal/metrics"
	"github.com/carv-repro/teraheap-go/internal/rt"
)

// Fig6SparkResult holds one workload's bars.
type Fig6SparkResult struct {
	Workload string
	Rows     []metrics.Row
	Runs     []RunResult
}

// Fig6SparkSpecs enumerates one workload's Figure 6 runs: Spark-SD across
// its DRAM ladder, then TeraHeap at the reduced and full DRAM points.
func Fig6SparkSpecs(workload string) []Spec {
	spec, ok := sparkSpecs[workload]
	if !ok {
		panic(fmt.Sprintf("experiments: unknown Spark workload %q", workload))
	}
	var specs []Spec
	for _, d := range spec.sdDramGB {
		specs = append(specs, SparkSpec(SparkRun{Workload: workload, Runtime: rt.KindPS, DramGB: d}))
	}
	for _, d := range spec.thDramGB {
		specs = append(specs, SparkSpec(SparkRun{Workload: workload, Runtime: rt.KindTH, DramGB: d}))
	}
	return specs
}

// Fig6GiraphSpecs enumerates one workload's Giraph runs: OOC then
// TeraHeap across the Fig 6 DRAM points.
func Fig6GiraphSpecs(workload string) []Spec {
	spec, ok := giraphSpecs[workload]
	if !ok {
		panic(fmt.Sprintf("experiments: unknown Giraph workload %q", workload))
	}
	var specs []Spec
	for _, d := range spec.dramGB {
		specs = append(specs, GiraphSpec(GiraphRun{Workload: workload, Mode: giraph.ModeOOC, DramGB: d}))
	}
	for _, d := range spec.dramGB {
		specs = append(specs, GiraphSpec(GiraphRun{Workload: workload, Mode: giraph.ModeTH, DramGB: d}))
	}
	return specs
}

// fig6Collect folds executor results into the figure result.
func fig6Collect(workload string, runs []RunResult) Fig6SparkResult {
	res := Fig6SparkResult{Workload: workload, Runs: runs}
	for _, r := range runs {
		res.Rows = append(res.Rows, r.Row())
	}
	return res
}

// Fig6Spark reproduces the Spark half of Figure 6: for each workload,
// Spark-SD across its DRAM ladder and TeraHeap at the reduced and full
// DRAM points, with execution-time breakdowns and OOM markers.
func Fig6Spark(workload string) Fig6SparkResult {
	return fig6Collect(workload, RunAll(Fig6SparkSpecs(workload)))
}

// Fig6Giraph reproduces the Giraph half of Figure 6.
func Fig6Giraph(workload string) Fig6SparkResult {
	return fig6Collect(workload, RunAll(Fig6GiraphSpecs(workload)))
}

// fig6All runs every workload's specs through one executor submission
// (so parallelism spans workloads, not just DRAM points) and formats the
// figure in workload order.
func fig6All(workloads []string, enum func(string) []Spec, title string) string {
	var all []Spec
	offsets := make([]int, 0, len(workloads)+1)
	for _, w := range workloads {
		offsets = append(offsets, len(all))
		all = append(all, enum(w)...)
	}
	offsets = append(offsets, len(all))
	runs := RunAll(all)
	var sb strings.Builder
	for i, w := range workloads {
		r := fig6Collect(w, runs[offsets[i]:offsets[i+1]])
		sb.WriteString(metrics.FormatBreakdown(title+w, r.Rows, true))
		sb.WriteString("\n")
	}
	return sb.String()
}

// Fig6SparkAll runs every Spark workload and formats the figure.
func Fig6SparkAll() string {
	return fig6All(SparkWorkloads(), Fig6SparkSpecs, "Fig 6 Spark-")
}

// Fig6GiraphAll runs every Giraph workload and formats the figure.
func Fig6GiraphAll() string {
	return fig6All(GiraphWorkloads(), Fig6GiraphSpecs, "Fig 6 Giraph-")
}
