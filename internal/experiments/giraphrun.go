package experiments

import (
	"errors"
	"fmt"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/gc"
	"github.com/carv-repro/teraheap-go/internal/giraph"
	"github.com/carv-repro/teraheap-go/internal/heap"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/vm"
	"github.com/carv-repro/teraheap-go/internal/workloads"
)

// giraphSpec describes one Table 4 workload.
type giraphSpec struct {
	name      string
	datasetGB float64
	// Table 4 shares: heap (or H1) as a fraction of DRAM.
	oocHeapFrac float64
	thH1Frac    float64
	// Fig 6 DRAM points: [reduced, full].
	dramGB []float64
	parts  int
	prog   func(g *workloads.Graph) giraph.Program
}

var giraphSpecs = map[string]*giraphSpec{
	"PR": {name: "PR", datasetGB: 85, oocHeapFrac: 70.0 / 85, thH1Frac: 50.0 / 85, dramGB: []float64{74, 85}, parts: 64,
		prog: func(g *workloads.Graph) giraph.Program { return &giraph.PageRank{Iterations: 10, N: g.N} }},
	"CDLP": {name: "CDLP", datasetGB: 85, oocHeapFrac: 70.0 / 85, thH1Frac: 60.0 / 85, dramGB: []float64{74, 85}, parts: 64,
		prog: func(g *workloads.Graph) giraph.Program { return &giraph.CDLP{Iterations: 10} }},
	"WCC": {name: "WCC", datasetGB: 85, oocHeapFrac: 70.0 / 85, thH1Frac: 60.0 / 85, dramGB: []float64{74, 85}, parts: 64,
		prog: func(g *workloads.Graph) giraph.Program { return &giraph.WCC{MaxIters: 20} }},
	"BFS": {name: "BFS", datasetGB: 65, oocHeapFrac: 48.0 / 65, thH1Frac: 35.0 / 65, dramGB: []float64{57, 65}, parts: 64,
		prog: func(g *workloads.Graph) giraph.Program { return &giraph.BFS{Source: 0, MaxIters: 20} }},
	"SSSP": {name: "SSSP", datasetGB: 90, oocHeapFrac: 75.0 / 90, thH1Frac: 50.0 / 90, dramGB: []float64{78, 90}, parts: 64,
		prog: func(g *workloads.Graph) giraph.Program { return &giraph.SSSP{Source: 0, MaxIters: 20} }},
}

// GiraphWorkloads lists the Graphalytics workloads in Table 4 order.
func GiraphWorkloads() []string { return []string{"PR", "CDLP", "WCC", "BFS", "SSSP"} }

// GiraphRun configures one Giraph experiment run.
type GiraphRun struct {
	Workload     string
	Mode         giraph.Mode
	DramGB       float64
	Threads      int
	DatasetScale float64
	THConfig     func(*core.Config)
	// AnalyzeRegions runs the Fig 10 region-liveness analysis at the end.
	AnalyzeRegions bool
	// Ctx scopes the run's cross-cutting configuration (verification,
	// fault injection); nil uses the process default.
	Ctx *RunContext
}

// RunGiraph executes one Giraph configuration.
func RunGiraph(cfg GiraphRun) RunResult {
	spec, ok := giraphSpecs[cfg.Workload]
	if !ok {
		panic(fmt.Sprintf("experiments: unknown Giraph workload %q", cfg.Workload))
	}
	if cfg.Threads == 0 {
		cfg.Threads = 8
	}
	if cfg.DatasetScale == 0 {
		cfg.DatasetScale = 1
	}
	datasetBytes := int64(float64(GB(spec.datasetGB)) * cfg.DatasetScale)
	g := giraphGraphFromBytes(200+uint64(len(spec.name)), datasetBytes)

	// Giraph runs use NewRatio=3 (young = 1/4 of the heap): message
	// stores are bulky long-lived data, so production deployments shrink
	// the young generation.
	giraphHeapCfg := func(size int64) *heap.Config {
		hc := heap.DefaultConfig(size)
		hc.YoungFraction = 0.25
		// Slow tenuring keeps current-superstep message chunks young until
		// their store becomes immutable and move-advised.
		hc.TenureAge = 7
		return &hc
	}

	rctx := cfg.Ctx.orDefault()
	sspec := rt.Spec{
		Clock:          simclock.New(),
		Verify:         rctx.Verify,
		FaultPlan:      rctx.FaultPlan,
		GCWorkers:      rctx.GCWorkers,
		WritebackDepth: rctx.WritebackDepth,
	}
	var name string
	switch cfg.Mode {
	case giraph.ModeTH:
		h1, thCfg := giraphTHSizing(spec, cfg).Resolve()
		if cfg.THConfig != nil {
			cfg.THConfig(&thCfg)
		}
		sspec.Kind = rt.KindTH
		sspec.H1Size = h1
		sspec.HeapCfg = giraphHeapCfg(h1)
		sspec.TH = &thCfg
		name = fmt.Sprintf("%s/th/%.0fGB", spec.name, cfg.DramGB)
	default:
		heapGB := cfg.DramGB * spec.oocHeapFrac
		sspec.Kind = rt.KindPS
		sspec.H1Size = GB(heapGB)
		sspec.HeapCfg = giraphHeapCfg(GB(heapGB))
		name = fmt.Sprintf("%s/ooc/%.0fGB", spec.name, cfg.DramGB)
	}
	ses := rt.NewSession(sspec)
	jvm := ses.Runtime.(*rt.JVM)
	th, dev, clock := ses.TH, ses.Device, ses.Clock

	res := RunResult{Name: name}
	finish := func(err error) RunResult {
		// Settle the writeback queue before snapshotting (no-op when
		// disabled).
		dev.DrainWriteback()
		res.B = clock.Breakdown()
		res.GCStats = *jvm.GCStats()
		res.DevStats = dev.Stats()
		if th != nil {
			s := th.Stats()
			res.THStats = &s
			res.PageFaults = th.Mapped().Cache().Faults
			res.FinalLowThreshold = th.LowThresholdNow()
			res.H2UsedBytes = th.UsedBytes()
		}
		res.FaultStats = ses.Injector.Stats()
		res.Recovery = ses.RecoveryStats()
		if err != nil {
			var oom *gc.OOMError
			var flt *gc.FaultError
			switch {
			case errors.As(err, &flt):
				res.Faulted = true
				res.FailErr = flt.Error()
			case errors.As(err, &oom) || jvm.OOM() != nil:
				res.OOM = true
			default:
				panic(fmt.Sprintf("experiments: %s failed: %v", name, err))
			}
			noteOutcome(res)
			return res
		}
		if f := ses.Fault(); f != nil && !res.Faulted {
			res.Faulted = true
			res.FailErr = f.Error()
		}
		noteOutcome(res)
		return res
	}

	eng, err := giraph.NewEngine(giraph.Conf{
		RT:            jvm,
		Mode:          cfg.Mode,
		Threads:       cfg.Threads,
		OOCDev:        dev,
		OOCCacheBytes: GB(cfg.DramGB * (1 - spec.oocHeapFrac)),
		// Giraph's OOC keeps data on-heap as long as it can; the old
		// generation is 3/4 of the heap under NewRatio=3.
		OOCHighWater: 0.62,
	}, g, spec.parts)
	if err != nil {
		return finish(err)
	}
	vals, err := eng.Run(spec.prog(g))
	if err == nil {
		res.Checksum = sum64(vals)
		if cfg.AnalyzeRegions && th != nil {
			// Shutdown collections: the first moves any still-advised
			// groups (receiving regions are pinned for their cycle), the
			// second reclaims everything that died; then measure.
			if jvm.FullGC() == nil && jvm.FullGC() == nil {
				th.AnalyzeLiveRegions(collectH2Roots(jvm))
			}
			s := th.Stats()
			res.THStats = &s
		}
	}
	return finish(err)
}

// giraphTHSizing maps a Table 4 workload onto the shared TeraHeap sizing
// rule: the Giraph H1 fraction applies directly to DRAM, and the H2 page
// cache gets whatever DRAM remains after H1.
func giraphTHSizing(spec *giraphSpec, cfg GiraphRun) rt.THSizing {
	return rt.THSizing{
		BudgetGB:   cfg.DramGB,
		H1Frac:     spec.thH1Frac,
		DatasetGB:  spec.datasetGB * cfg.DatasetScale,
		BytesPerGB: Scale,
	}
}

// collectH2Roots gathers every H1→H2 forward reference plus every rooted
// handle pointing into H2 — the root set for the offline Fig 10 analysis.
func collectH2Roots(jvm *rt.JVM) []vm.Addr {
	col := jvm.Collector()
	m := col.Mem
	var roots []vm.Addr
	col.Roots.ForEach(func(h *vm.Handle) {
		if a := h.Addr(); !a.IsNull() && jvm.InSecondHeap(a) {
			roots = append(roots, a)
		}
	})
	scan := func(a vm.Addr) {
		n := m.NumRefs(a)
		for i := 0; i < n; i++ {
			if t := m.RefAt(a, i); !t.IsNull() && jvm.InSecondHeap(t) {
				roots = append(roots, t)
			}
		}
	}
	col.H1.Eden.Walk(m, scan)
	col.H1.From.Walk(m, scan)
	col.H1.Old.Walk(m, scan)
	return roots
}
