package experiments

import (
	"errors"
	"fmt"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/gc"
	"github.com/carv-repro/teraheap-go/internal/giraph"
	"github.com/carv-repro/teraheap-go/internal/heap"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
	"github.com/carv-repro/teraheap-go/internal/workloads"
)

// giraphSpec describes one Table 4 workload.
type giraphSpec struct {
	name      string
	datasetGB float64
	// Table 4 shares: heap (or H1) as a fraction of DRAM.
	oocHeapFrac float64
	thH1Frac    float64
	// Fig 6 DRAM points: [reduced, full].
	dramGB []float64
	parts  int
	prog   func(g *workloads.Graph) giraph.Program
}

var giraphSpecs = map[string]*giraphSpec{
	"PR": {name: "PR", datasetGB: 85, oocHeapFrac: 70.0 / 85, thH1Frac: 50.0 / 85, dramGB: []float64{74, 85}, parts: 64,
		prog: func(g *workloads.Graph) giraph.Program { return &giraph.PageRank{Iterations: 10, N: g.N} }},
	"CDLP": {name: "CDLP", datasetGB: 85, oocHeapFrac: 70.0 / 85, thH1Frac: 60.0 / 85, dramGB: []float64{74, 85}, parts: 64,
		prog: func(g *workloads.Graph) giraph.Program { return &giraph.CDLP{Iterations: 10} }},
	"WCC": {name: "WCC", datasetGB: 85, oocHeapFrac: 70.0 / 85, thH1Frac: 60.0 / 85, dramGB: []float64{74, 85}, parts: 64,
		prog: func(g *workloads.Graph) giraph.Program { return &giraph.WCC{MaxIters: 20} }},
	"BFS": {name: "BFS", datasetGB: 65, oocHeapFrac: 48.0 / 65, thH1Frac: 35.0 / 65, dramGB: []float64{57, 65}, parts: 64,
		prog: func(g *workloads.Graph) giraph.Program { return &giraph.BFS{Source: 0, MaxIters: 20} }},
	"SSSP": {name: "SSSP", datasetGB: 90, oocHeapFrac: 75.0 / 90, thH1Frac: 50.0 / 90, dramGB: []float64{78, 90}, parts: 64,
		prog: func(g *workloads.Graph) giraph.Program { return &giraph.SSSP{Source: 0, MaxIters: 20} }},
}

// GiraphWorkloads lists the Graphalytics workloads in Table 4 order.
func GiraphWorkloads() []string { return []string{"PR", "CDLP", "WCC", "BFS", "SSSP"} }

// GiraphRun configures one Giraph experiment run.
type GiraphRun struct {
	Workload     string
	Mode         giraph.Mode
	DramGB       float64
	Threads      int
	DatasetScale float64
	THConfig     func(*core.Config)
	// AnalyzeRegions runs the Fig 10 region-liveness analysis at the end.
	AnalyzeRegions bool
}

// RunGiraph executes one Giraph configuration.
func RunGiraph(cfg GiraphRun) RunResult {
	spec, ok := giraphSpecs[cfg.Workload]
	if !ok {
		panic(fmt.Sprintf("experiments: unknown Giraph workload %q", cfg.Workload))
	}
	if cfg.Threads == 0 {
		cfg.Threads = 8
	}
	if cfg.DatasetScale == 0 {
		cfg.DatasetScale = 1
	}
	datasetBytes := int64(float64(GB(spec.datasetGB)) * cfg.DatasetScale)
	g := giraphGraphFromBytes(200+uint64(len(spec.name)), datasetBytes)

	clock := simclock.New()
	dev := storage.NewDevice(storage.NVMeSSD, clock)

	// Giraph runs use NewRatio=3 (young = 1/4 of the heap): message
	// stores are bulky long-lived data, so production deployments shrink
	// the young generation.
	giraphHeapCfg := func(size int64) *heap.Config {
		hc := heap.DefaultConfig(size)
		hc.YoungFraction = 0.25
		// Slow tenuring keeps current-superstep message chunks young until
		// their store becomes immutable and move-advised.
		hc.TenureAge = 7
		return &hc
	}

	var jvm *rt.JVM
	var name string
	var th *core.TeraHeap
	switch cfg.Mode {
	case giraph.ModeTH:
		h1 := cfg.DramGB * spec.thH1Frac
		thCfg := core.DefaultConfig(GB(spec.datasetGB*cfg.DatasetScale*3 + 64))
		thCfg.RegionSize = 64 * storage.KB
		thCfg.CacheBytes = GB(cfg.DramGB - h1)
		if cfg.THConfig != nil {
			cfg.THConfig(&thCfg)
		}
		jvm = rt.NewJVM(rt.Options{H1Size: GB(h1), HeapCfg: giraphHeapCfg(GB(h1)),
			TH: &thCfg, H2Device: dev}, nil, clock)
		th = jvm.TeraHeap()
		name = fmt.Sprintf("%s/th/%.0fGB", spec.name, cfg.DramGB)
	default:
		heapGB := cfg.DramGB * spec.oocHeapFrac
		jvm = rt.NewJVM(rt.Options{H1Size: GB(heapGB), HeapCfg: giraphHeapCfg(GB(heapGB))}, nil, clock)
		name = fmt.Sprintf("%s/ooc/%.0fGB", spec.name, cfg.DramGB)
	}
	applyVerify(jvm)
	inj := newRunInjector()
	dev.SetFaultInjector(inj)
	applyFault(jvm, inj)

	res := RunResult{Name: name}
	finish := func(err error) RunResult {
		res.B = clock.Breakdown()
		res.GCStats = *jvm.GCStats()
		res.DevStats = dev.Stats()
		if th != nil {
			s := th.Stats()
			res.THStats = &s
			res.PageFaults = th.Mapped().Cache().Faults
			res.FinalLowThreshold = th.LowThresholdNow()
			res.H2UsedBytes = th.UsedBytes()
		}
		res.FaultStats = inj.Stats()
		if err != nil {
			var oom *gc.OOMError
			var flt *gc.FaultError
			switch {
			case errors.As(err, &flt):
				res.Faulted = true
				res.FailErr = flt.Error()
			case errors.As(err, &oom) || jvm.OOM() != nil:
				res.OOM = true
			default:
				panic(fmt.Sprintf("experiments: %s failed: %v", name, err))
			}
			noteOutcome(res)
			return res
		}
		if f := inj.Failure(); f != nil && !res.Faulted {
			res.Faulted = true
			res.FailErr = f.Error()
		}
		noteOutcome(res)
		return res
	}

	eng, err := giraph.NewEngine(giraph.Conf{
		RT:            jvm,
		Mode:          cfg.Mode,
		Threads:       cfg.Threads,
		OOCDev:        dev,
		OOCCacheBytes: GB(cfg.DramGB * (1 - spec.oocHeapFrac)),
		// Giraph's OOC keeps data on-heap as long as it can; the old
		// generation is 3/4 of the heap under NewRatio=3.
		OOCHighWater: 0.62,
	}, g, spec.parts)
	if err != nil {
		return finish(err)
	}
	vals, err := eng.Run(spec.prog(g))
	if err == nil {
		res.Checksum = sum64(vals)
		if cfg.AnalyzeRegions && th != nil {
			// Shutdown collections: the first moves any still-advised
			// groups (receiving regions are pinned for their cycle), the
			// second reclaims everything that died; then measure.
			if jvm.FullGC() == nil && jvm.FullGC() == nil {
				th.AnalyzeLiveRegions(collectH2Roots(jvm))
			}
			s := th.Stats()
			res.THStats = &s
		}
	}
	return finish(err)
}

// collectH2Roots gathers every H1→H2 forward reference plus every rooted
// handle pointing into H2 — the root set for the offline Fig 10 analysis.
func collectH2Roots(jvm *rt.JVM) []vm.Addr {
	col := jvm.Collector()
	m := col.Mem
	var roots []vm.Addr
	col.Roots.ForEach(func(h *vm.Handle) {
		if a := h.Addr(); !a.IsNull() && jvm.InSecondHeap(a) {
			roots = append(roots, a)
		}
	})
	scan := func(a vm.Addr) {
		n := m.NumRefs(a)
		for i := 0; i < n; i++ {
			if t := m.RefAt(a, i); !t.IsNull() && jvm.InSecondHeap(t) {
				roots = append(roots, t)
			}
		}
	}
	col.H1.Eden.Walk(m, scan)
	col.H1.From.Walk(m, scan)
	col.H1.Old.Walk(m, scan)
	return roots
}
