package experiments

import "sync/atomic"

// badRuns counts runs in this process that ended OOM, faulted, or
// panicked. The CLI polls it to turn degraded results into a nonzero exit
// code while still printing the full (partial) results table.
var badRuns atomic.Int64

func noteOutcome(r RunResult) {
	if r.OOM || r.Faulted || r.Failed {
		badRuns.Add(1)
	}
}

// BadRuns returns the number of runs so far that ended OOM, faulted, or
// panicked.
func BadRuns() int64 { return badRuns.Load() }

// ResetBadRuns clears the bad-run counter and returns the old value
// (tests; reruns within one process).
func ResetBadRuns() int64 { return badRuns.Swap(0) }
