package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/gc"
	"github.com/carv-repro/teraheap-go/internal/giraph"
	"github.com/carv-repro/teraheap-go/internal/storage"
)

// Fig11a measures minor-GC H2 card-scanning time for card segment sizes
// from 512 B to 16 KB, normalized to 512 B (Figure 11a). Larger segments
// mean fewer cards to examine but more objects scanned per dirty card.
func Fig11a() string {
	segs := []struct {
		label string
		size  int64
	}{
		{"512B", 512},
		{"1KB", 1 * storage.KB},
		{"4KB", 4 * storage.KB},
		{"8KB", 8 * storage.KB},
		{"16KB", 16 * storage.KB},
	}
	workloads := GiraphWorkloads()
	var specs []Spec
	for _, w := range workloads {
		// The scanning-heavy configuration: reduced DRAM and forced
		// movement without the hint, so mutable stores sit in H2 and
		// their updates dirty cards that minor GC must scan — the
		// behaviour whose cost the card-segment size trades off.
		dram := giraphSpecs[w].dramGB[0]
		for _, s := range segs {
			size := s.size
			specs = append(specs, GiraphSpec(GiraphRun{Workload: w, Mode: giraph.ModeTH, DramGB: dram,
				THConfig: func(c *core.Config) {
					c.CardSegmentSize = size
					// Stripe size equals region size (256 MB paper-scale).
					c.RegionSize = 256 * storage.KB
					c.EnableMoveHint = false
					c.LowThreshold = 0
				}}))
		}
	}
	runs := RunAll(specs)
	var sb strings.Builder
	sb.WriteString("== Fig 11a: H2 minor-GC scan time vs card segment size (norm. to 512B) ==\n")
	fmt.Fprintf(&sb, "%-6s", "wl")
	for _, s := range segs {
		fmt.Fprintf(&sb, " %8s", s.label)
	}
	sb.WriteString("\n")
	for wi, w := range workloads {
		var base time.Duration
		fmt.Fprintf(&sb, "%-6s", w)
		for i := range segs {
			r := runs[wi*len(segs)+i]
			t := time.Duration(0)
			if r.THStats != nil {
				t = r.THStats.MinorScanTime
			}
			if i == 0 {
				base = t
				if base == 0 {
					base = 1
				}
			}
			fmt.Fprintf(&sb, " %8.3f", float64(t)/float64(base))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Fig11b compares the four major-GC phases between Giraph-OOC and
// TeraHeap (Figure 11b).
func Fig11b() string {
	workloads := GiraphWorkloads()
	var specs []Spec
	for _, w := range workloads {
		dram := giraphSpecs[w].dramGB[len(giraphSpecs[w].dramGB)-1]
		specs = append(specs,
			GiraphSpec(GiraphRun{Workload: w, Mode: giraph.ModeOOC, DramGB: dram}),
			GiraphSpec(GiraphRun{Workload: w, Mode: giraph.ModeTH, DramGB: dram}))
	}
	runs := RunAll(specs)
	var sb strings.Builder
	sb.WriteString("== Fig 11b: major GC phase breakdown (Giraph-OOC vs TeraHeap) ==\n")
	fmt.Fprintf(&sb, "%-6s %-4s %12s %12s %12s %12s %12s\n",
		"wl", "cfg", "Marking", "Precompact", "Adjust", "Compact", "total")
	for wi, w := range workloads {
		write := func(cfg string, r RunResult) {
			if r.OOM {
				fmt.Fprintf(&sb, "%-6s %-4s OOM\n", w, cfg)
				return
			}
			ph := r.GCStats.PhaseTotals()
			var total time.Duration
			for _, p := range ph {
				total += p
			}
			fmt.Fprintf(&sb, "%-6s %-4s %12v %12v %12v %12v %12v\n", w, cfg,
				ph[gc.PhaseMark].Round(time.Microsecond),
				ph[gc.PhasePrecompact].Round(time.Microsecond),
				ph[gc.PhaseAdjust].Round(time.Microsecond),
				ph[gc.PhaseCompact].Round(time.Microsecond),
				total.Round(time.Microsecond))
		}
		write("OC", runs[2*wi])
		write("TH", runs[2*wi+1])
	}
	return sb.String()
}
