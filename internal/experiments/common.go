// Package experiments reproduces every table and figure of the paper's
// evaluation (§6-§7). Each figure has a runner returning formatted results
// plus raw data; the CLI (cmd/teraheap-bench) and the benchmark suite
// (bench_test.go) both drive these runners.
//
// Scaling: 1 paper-GB is simulated as 100 KB (Scale), preserving every
// dataset:heap:DRAM ratio of Tables 3 and 4 while keeping runs fast. The
// Spark system reserve (DR2) is the paper's fixed 16 GB.
package experiments

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/fault"
	"github.com/carv-repro/teraheap-go/internal/gc"
	"github.com/carv-repro/teraheap-go/internal/graphx"
	"github.com/carv-repro/teraheap-go/internal/metrics"
	"github.com/carv-repro/teraheap-go/internal/mllib"
	"github.com/carv-repro/teraheap-go/internal/placement"
	"github.com/carv-repro/teraheap-go/internal/recovery"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/serde"
	"github.com/carv-repro/teraheap-go/internal/server"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/spark"
	"github.com/carv-repro/teraheap-go/internal/sparksql"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/workloads"
)

// Scale maps one paper-GB to simulator bytes.
const Scale = 100 * storage.KB

// GB converts paper gigabytes to simulator bytes (64-byte aligned).
func GB(g float64) int64 { return int64(g*float64(Scale)) &^ 63 }

// DR2GB is the Spark system reserve (driver + kernel page cache).
const DR2GB = 16.0

// SparkRun configures one Spark experiment run. Runtime is an rt.Kind:
// the rt kind registry is the single enumeration of runtimes — there is
// no experiments-local mirror to keep in sync.
type SparkRun struct {
	Workload string
	Runtime  rt.Kind
	DramGB   float64
	// Device technology backing H2 / off-heap (NVMe or NVM).
	Device storage.Kind
	// Threads (0 → 8, the paper's executor size).
	Threads int
	// DatasetScale multiplies the workload's dataset size (Fig 13b).
	DatasetScale float64
	// THConfig optionally overrides the TeraHeap configuration.
	THConfig func(*core.Config)
	// Stripes stripes the H2/off-heap device across N units (0/1 = one).
	Stripes int
	// Ctx scopes the run's cross-cutting configuration (verification,
	// fault injection); nil uses the process default.
	Ctx *RunContext
}

// RunResult captures one run's outcome.
type RunResult struct {
	Name string
	B    simclock.Breakdown
	OOM  bool

	// Faulted marks a run ended by a latched persistent storage fault;
	// Failed marks a run whose goroutine panicked (recovered by the
	// executor); FailErr carries the cause for either. FaultStats counts
	// the faults injected by the active plan, whether or not the run
	// survived them.
	Faulted    bool
	Failed     bool
	FailErr    string
	FaultStats fault.Stats

	GCStats  gc.Stats
	THStats  *core.Stats
	DevStats storage.Stats
	Checksum float64

	// PageFaults counts H2 page-cache faults (TeraHeap runs only);
	// SeqFaults is the readahead-covered subset.
	PageFaults int64
	SeqFaults  int64
	// FinalLowThreshold is the low threshold after any dynamic
	// adaptation (TeraHeap runs only).
	FinalLowThreshold float64
	// H2UsedBytes is the second heap's live allocation at run end.
	H2UsedBytes int64

	// Recovery snapshots the self-healing layer's counters (TeraHeap runs
	// with recovery installed only).
	Recovery *recovery.Stats

	// Placement snapshots the placement policy's counters (runs with a
	// non-default policy only — NG2C and Deca).
	Placement *placement.Stats

	// Serve carries the request-plane report for serve-mode runs (nil for
	// batch runs).
	Serve *server.Stats
}

// Degraded reports a run that absorbed injected faults and still completed:
// the graceful-degradation regime the fault plane exists to exercise.
func (r RunResult) Degraded() bool {
	return r.FaultStats.Any() && !r.Faulted && !r.Failed && !r.OOM
}

// Recovered reports a run the self-healing layer actively repaired — a
// salvage, quarantine, or breaker trip — that still completed with a
// correct result. It refines Degraded: every Recovered run is Degraded,
// but a run that merely absorbed transient faults is not Recovered.
func (r RunResult) Recovered() bool {
	return r.Recovery != nil && r.Recovery.Active() && !r.Faulted && !r.Failed && !r.OOM
}

// Row converts the result to a metrics row.
func (r RunResult) Row() metrics.Row {
	return r.RowNamed(r.Name)
}

// RowNamed is Row with an overridden display name (figure formatters often
// relabel configurations).
func (r RunResult) RowNamed(name string) metrics.Row {
	row := metrics.Row{Name: name, B: r.B, OOM: r.OOM, Fault: r.Faulted || r.Failed}
	if row.Fault {
		if i := strings.IndexByte(r.FailErr, '\n'); i >= 0 {
			row.Note = r.FailErr[:i]
		} else {
			row.Note = r.FailErr
		}
	}
	if r.Recovered() {
		row.Recovered = true
		row.Note = r.Recovery.String()
	}
	return row
}

// sparkSpec describes one Table 3 workload.
type sparkSpec struct {
	name      string
	datasetGB float64
	// Fig 6 DRAM ladders (paper values).
	sdDramGB []float64
	thDramGB []float64
	// thH1Frac is the hand-tuned H1 share of DRAM (§6: 50-90%).
	thH1Frac float64
	// hugePages: the paper uses 2MB mappings for the ML streamers.
	hugePages bool
	parts     int
	run       func(ctx *spark.Context, datasetBytes int64) (float64, error)
}

// The dataset constructors below go through the workloads memo cache:
// the generators are pure functions of their parameters, so every run of
// the same workload at the same scale shares one generation pass and one
// immutable in-memory dataset (the partition builders only read it).

// graph sizing: edges ≈ datasetBytes/16 (8B edge word + headers + ids),
// degree 8.
func graphFromBytes(seed uint64, datasetBytes int64) *workloads.Graph {
	edges := datasetBytes / 16
	deg := 8.0
	n := int(float64(edges) / deg)
	if n < 64 {
		n = 64
	}
	return workloads.CachedGraph(seed, n, deg, 0.8)
}

// giraphGraphFromBytes sizes Giraph graphs: each edge entry is two heap
// words (target + weight) plus per-vertex array headers, ~24 bytes/edge.
func giraphGraphFromBytes(seed uint64, datasetBytes int64) *workloads.Graph {
	edges := datasetBytes / 24
	deg := 8.0
	n := int(float64(edges) / deg)
	if n < 64 {
		n = 64
	}
	return workloads.CachedGraph(seed, n, deg, 0.8)
}

// pointsFromBytes: dim-10 points at ~112 bytes each.
func pointsFromBytes(seed uint64, datasetBytes int64) *workloads.Points {
	n := int(datasetBytes / 112)
	if n < 64 {
		n = 64
	}
	return workloads.CachedPoints(seed, n, 10)
}

// rowsFromBytes: ~56 bytes per row.
func rowsFromBytes(seed uint64, datasetBytes int64) *workloads.Rows {
	n := int(datasetBytes / 56)
	if n < 64 {
		n = 64
	}
	return workloads.CachedRows(seed, n, 512)
}

func sum64(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// sparkSpecs is the Table 3 registry. DRAM ladders follow Fig 6's x-axis
// labels; iteration counts are scaled versions of the paper's (100-epoch
// trainings run 12 epochs — the cache:compute ratio per epoch is what
// shapes the figures, not the epoch count).
var sparkSpecs = map[string]*sparkSpec{
	"PR": {name: "PR", datasetGB: 80, sdDramGB: []float64{32, 48, 80, 144}, thDramGB: []float64{32, 80}, thH1Frac: 0.8, parts: 128,
		run: func(ctx *spark.Context, ds int64) (float64, error) {
			g := graphx.Load(ctx, graphFromBytes(101, ds), 128)
			r, err := g.PageRank(10)
			return sum64(r), err
		}},
	"CC": {name: "CC", datasetGB: 84, sdDramGB: []float64{33, 50, 84, 152}, thDramGB: []float64{33, 84}, thH1Frac: 0.8, parts: 128,
		run: func(ctx *spark.Context, ds int64) (float64, error) {
			g := graphx.Load(ctx, graphFromBytes(102, ds), 128)
			r, err := g.ConnectedComponents(12)
			var s float64
			for _, l := range r {
				s += float64(l)
			}
			return s, err
		}},
	"SSSP": {name: "SSSP", datasetGB: 58, sdDramGB: []float64{27, 37, 58, 100}, thDramGB: []float64{37, 58}, thH1Frac: 0.72, parts: 128,
		run: func(ctx *spark.Context, ds int64) (float64, error) {
			g := graphx.Load(ctx, graphFromBytes(103, ds), 128)
			r, err := g.SSSP(0, 12)
			var s float64
			for _, d := range r {
				if d < 1e18 {
					s += d
				}
			}
			return s, err
		}},
	"SVD": {name: "SVD", datasetGB: 40, sdDramGB: []float64{22, 28, 40, 64}, thDramGB: []float64{28, 40}, thH1Frac: 0.85, parts: 128,
		run: func(ctx *spark.Context, ds int64) (float64, error) {
			g := graphx.Load(ctx, graphFromBytes(104, ds), 128)
			return g.SVDPlusPlus(5, 8)
		}},
	"TR": {name: "TR", datasetGB: 80, sdDramGB: []float64{47, 56, 64}, thDramGB: []float64{47, 64}, thH1Frac: 0.8, parts: 128,
		run: func(ctx *spark.Context, ds int64) (float64, error) {
			g := graphx.Load(ctx, graphFromBytes(105, ds/4), 128) // TR uses a denser, smaller graph
			c, err := g.TriangleCount()
			return float64(c), err
		}},
	"LR": {name: "LR", datasetGB: 70, sdDramGB: []float64{29, 43, 70, 124}, thDramGB: []float64{43, 70}, thH1Frac: 0.77, hugePages: true, parts: 128,
		run: func(ctx *spark.Context, ds int64) (float64, error) {
			d := mllib.Load(ctx, pointsFromBytes(106, ds), 128)
			w, err := d.LinearRegression(12)
			if err != nil {
				return 0, err
			}
			return sum64(w), nil
		}},
	"LgR": {name: "LgR", datasetGB: 70, sdDramGB: []float64{29, 43, 70, 124}, thDramGB: []float64{43, 70}, thH1Frac: 0.77, hugePages: true, parts: 128,
		run: func(ctx *spark.Context, ds int64) (float64, error) {
			d := mllib.Load(ctx, pointsFromBytes(107, ds), 128)
			w, err := d.LogisticRegression(12)
			if err != nil {
				return 0, err
			}
			return sum64(w), nil
		}},
	"SVM": {name: "SVM", datasetGB: 48, sdDramGB: []float64{28, 32, 36, 48}, thDramGB: []float64{36, 48}, thH1Frac: 0.67, hugePages: true, parts: 128,
		run: func(ctx *spark.Context, ds int64) (float64, error) {
			d := mllib.Load(ctx, pointsFromBytes(108, ds), 128)
			w, err := d.SVM(12)
			if err != nil {
				return 0, err
			}
			return sum64(w), nil
		}},
	"BC": {name: "BC", datasetGB: 98, sdDramGB: []float64{53, 57, 98, 180}, thDramGB: []float64{57, 98}, thH1Frac: 0.84, parts: 128,
		run: func(ctx *spark.Context, ds int64) (float64, error) {
			d := mllib.Load(ctx, pointsFromBytes(109, ds), 128)
			m, err := d.NaiveBayes()
			if err != nil {
				return 0, err
			}
			return m.Prior[0] + sum64(m.Mean[0]), nil
		}},
	"RL": {name: "RL", datasetGB: 63, sdDramGB: []float64{24, 37, 63}, thDramGB: []float64{37, 63}, thH1Frac: 0.75, parts: 128,
		run: func(ctx *spark.Context, ds int64) (float64, error) {
			tbl := sparksql.Load(ctx, rowsFromBytes(110, ds), 128)
			c, err := tbl.RunQueryMix(6)
			return float64(c), err
		}},
	// KM appears only in the Panthera comparison (Fig 12c).
	"KM": {name: "KM", datasetGB: 64, sdDramGB: []float64{32, 64}, thDramGB: []float64{32, 64}, thH1Frac: 0.77, hugePages: true, parts: 128,
		run: func(ctx *spark.Context, ds int64) (float64, error) {
			d := mllib.Load(ctx, pointsFromBytes(111, ds), 128)
			return d.KMeans(8, 10)
		}},
}

// SparkWorkloads lists the Spark workload names in Table 3 order.
func SparkWorkloads() []string {
	return []string{"PR", "CC", "SSSP", "SVD", "TR", "LR", "LgR", "SVM", "BC", "RL"}
}

// RunSpark executes one Spark configuration and returns its result.
func RunSpark(cfg SparkRun) RunResult {
	spec, ok := sparkSpecs[cfg.Workload]
	if !ok {
		panic(fmt.Sprintf("experiments: unknown Spark workload %q", cfg.Workload))
	}
	if cfg.Threads == 0 {
		cfg.Threads = 8
	}
	if cfg.DatasetScale == 0 {
		cfg.DatasetScale = 1
	}
	datasetBytes := int64(float64(GB(spec.datasetGB)) * cfg.DatasetScale)
	heapGB := cfg.DramGB - DR2GB
	if heapGB < 2 {
		heapGB = 2
	}

	rctx := cfg.Ctx.orDefault()
	sspec := rt.Spec{
		Clock:          simclock.New(),
		DeviceKind:     cfg.Device,
		Stripes:        cfg.Stripes,
		Verify:         rctx.Verify,
		FaultPlan:      rctx.FaultPlan,
		GCWorkers:      rctx.GCWorkers,
		WritebackDepth: rctx.WritebackDepth,
	}
	sspec.Kind = cfg.Runtime
	mode := spark.ModeSD
	switch cfg.Runtime {
	case rt.KindPS, rt.KindG1:
		sspec.H1Size = GB(heapGB)
		mode = spark.ModeSD
	case rt.KindTH, rt.KindG1TH, rt.KindNG2C, rt.KindDeca:
		h1, thCfg := sparkTHSizing(spec, cfg, heapGB).Resolve()
		if cfg.THConfig != nil {
			cfg.THConfig(&thCfg)
		}
		sspec.H1Size = h1
		sspec.TH = &thCfg
		mode = spark.ModeTH
	case rt.KindMO:
		// Spark-MO: heap sized to fit everything, NVM memory mode with
		// DRAM as hardware cache.
		sspec.H1Size = GB(spec.datasetGB*cfg.DatasetScale*3.2 + 16)
		sspec.DRAMCacheBytes = GB(cfg.DramGB - 2)
		mode = spark.ModeMO
	case rt.KindPanthera:
		// 25% DRAM / 75% NVM heap split (§7.5).
		sspec.H1Size = GB(64)
		sspec.DRAMOldBytes = GB(6)
		mode = spark.ModeMO
	default:
		panic(fmt.Sprintf("experiments: unknown runtime kind %v (valid: %s)",
			cfg.Runtime, strings.Join(rt.KindNames(), " ")))
	}
	// Row labels come from the kind registry (the six legacy labels are
	// byte-identical to the hand-written ones they replace).
	name := fmt.Sprintf("%s/%s/%.0fGB", spec.name, cfg.Runtime.SparkLabel(), cfg.DramGB)
	ses := rt.NewSession(sspec)
	runtime, th, dev := ses.Runtime, ses.TH, ses.Device
	clock := ses.Clock

	ctx := spark.NewContext(spark.Conf{
		RT:                runtime,
		Mode:              mode,
		Threads:           cfg.Threads,
		SerKind:           serde.Kryo,
		OffHeapDev:        dev,
		OffHeapCacheBytes: GB(DR2GB),
		OnHeapCacheBytes:  GB(heapGB) / 2,
	})

	checksum, err := spec.run(ctx, datasetBytes)
	// Settle the writeback queue before snapshotting: residual service
	// time belongs to the run that submitted it (no-op when disabled).
	dev.DrainWriteback()
	res := RunResult{Name: name, Checksum: checksum}
	res.B = clock.Breakdown()
	res.GCStats = *runtime.GCStats()
	res.DevStats = dev.Stats()
	if th != nil {
		s := th.Stats()
		res.THStats = &s
		res.PageFaults = th.Mapped().Cache().Faults
		res.SeqFaults = th.Mapped().Cache().SeqFaults
		res.FinalLowThreshold = th.LowThresholdNow()
		res.H2UsedBytes = th.UsedBytes()
	}
	res.FaultStats = ses.Injector.Stats()
	res.Recovery = ses.RecoveryStats()
	res.Placement = ses.PlacementStats()
	if err != nil {
		var oom *gc.OOMError
		var flt *gc.FaultError
		switch {
		case errors.As(err, &flt):
			res.Faulted = true
			res.FailErr = flt.Error()
		case errors.As(err, &oom) || runtime.OOM() != nil:
			res.OOM = true
		default:
			panic(fmt.Sprintf("experiments: %s failed: %v", name, err))
		}
	}
	// A device failure latched after the workload's last allocation (or on
	// a runtime without collector-level polling, like the G1 baseline)
	// still fails the run.
	if e := ses.Fault(); e != nil && !res.Faulted {
		res.Faulted = true
		res.FailErr = e.Error()
	}
	noteOutcome(res)
	return res
}

// sparkTHSizing maps a Table 3 workload onto the shared TeraHeap sizing
// rule: the Spark H1 fractions were hand-tuned at the DR2=16 points
// (where H1 is 0.8 of the executor budget), and the H2 page cache gets
// the fixed system reserve.
func sparkTHSizing(spec *sparkSpec, cfg SparkRun, heapGB float64) rt.THSizing {
	return rt.THSizing{
		BudgetGB:    heapGB,
		H1Frac:      spec.thH1Frac,
		TunedAtFrac: 0.8,
		DatasetGB:   spec.datasetGB * cfg.DatasetScale,
		CacheGB:     DR2GB,
		HugePages:   spec.hugePages,
		BytesPerGB:  Scale,
	}
}

// chargeableDuration is a small helper used by reports.
func pct(part, whole time.Duration) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
