package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/rt"
)

// Pretenure is the placement-policy figure: every registered runtime kind
// on one Spark PageRank configuration, comparing GC pause composition
// (minor/major counts and times), H2 traffic, and — for the kinds that
// install a non-default placement policy — the policy's own counters
// (NG2C's profiled/pretenured sites, mispredictions, demotions, and
// target-generation fill; Deca's epoch labels and eager region moves).
//
// Sizing: the fig12c dataset scale (30 GB), so Panthera's fixed 64 GB
// hybrid heap holds the whole working set and no kind OOMs — the figure
// compares placement behavior, not survival. Deca runs its lifetime
// regions on a DRAM device (its H2 is a memory region space, not a
// storage tier); every other TeraHeap kind uses the default NVMe H2.
// Like "workers" and "serve", pretenure is not part of "all".

// PretenureRow is one kind's measurements.
type PretenureRow struct {
	Result RunResult
	Kind   rt.Kind
}

// PretenureResult carries the sweep in registry order.
type PretenureResult struct {
	Rows []PretenureRow
}

// pretenureRun builds the figure's run for one kind. The h2_move
// advisory hint is disabled on every TeraHeap kind so the placement
// policy itself is the differentiator: with hints on, Spark's labelled
// long-lived data is advised to H2 before it ever ages, all placement
// policies degenerate to the default, and the figure compares nothing.
// Hints off, the legacy policy must wait for threshold-gated major-GC
// closures, NG2C pretenures aged allocation sites straight to the old
// generation, and Deca (whose epoch placement never depended on the
// hint) still moves labelled regions eagerly at minor GC.
func pretenureRun(k rt.Kind) SparkRun {
	return SparkRun{
		Workload: "PR", Runtime: k, DramGB: 44, DatasetScale: 30.0 / 80.0,
		THConfig: func(c *core.Config) { c.EnableMoveHint = false },
	}
}

// PretenureKinds resolves the figure's kind list: empty = all registered
// kinds; names are validated against the registry.
func PretenureKinds(names []string) ([]rt.Kind, error) {
	if len(names) == 0 {
		infos := rt.Kinds()
		out := make([]rt.Kind, len(infos))
		for i, e := range infos {
			out[i] = e.Kind
		}
		return out, nil
	}
	out := make([]rt.Kind, 0, len(names))
	for _, n := range names {
		k, ok := rt.KindByName(n)
		if !ok {
			return nil, fmt.Errorf("unknown runtime kind %q (valid: %s)",
				n, strings.Join(rt.KindNames(), " "))
		}
		out = append(out, k)
	}
	return out, nil
}

// Pretenure runs the placement figure over the given kinds (nil = every
// registered kind, registry order).
func Pretenure(kinds []rt.Kind) PretenureResult {
	if kinds == nil {
		kinds, _ = PretenureKinds(nil)
	}
	var specs []Spec
	for _, k := range kinds {
		specs = append(specs, SparkSpec(pretenureRun(k)))
	}
	runs := RunAll(specs)
	res := PretenureResult{}
	for i, k := range kinds {
		res.Rows = append(res.Rows, PretenureRow{Result: runs[i], Kind: k})
	}
	return res
}

// Format renders the pretenure figure: the pause-composition table, the
// H2 traffic table, and one policy line per kind with a placement policy.
func (r PretenureResult) Format() string {
	var sb strings.Builder
	sb.WriteString("== pretenure: placement policies, Spark PR 30GB, 44GB DRAM, h2_move hints off ==\n")
	fmt.Fprintf(&sb, "%-10s %12s %6s %12s %6s %12s %10s %8s\n",
		"kind", "total", "minor", "minorTime", "major", "majorTime", "H2moved", "H2objs")
	for _, row := range r.Rows {
		res := row.Result
		if res.OOM || res.Faulted || res.Failed {
			fmt.Fprintf(&sb, "%-10s %12s\n", row.Kind, "FAILED "+firstLine(res.FailErr))
			continue
		}
		var h2Bytes, h2Objs int64
		if res.THStats != nil {
			h2Bytes = res.THStats.BytesMoved
			h2Objs = res.THStats.ObjectsMoved
		}
		fmt.Fprintf(&sb, "%-10s %12v %6d %12v %6d %12v %9dK %8d\n",
			row.Kind, res.B.Total().Round(time.Microsecond),
			res.GCStats.MinorCount, res.GCStats.MinorTime.Round(time.Microsecond),
			res.GCStats.MajorCount, res.GCStats.MajorTime.Round(time.Microsecond),
			h2Bytes/1024, h2Objs)
	}
	for _, row := range r.Rows {
		p := row.Result.Placement
		if p == nil {
			continue
		}
		switch p.Policy {
		case "ng2c":
			gens := make([]string, len(p.Generations))
			for i, g := range p.Generations {
				gens[i] = fmt.Sprintf("%d", g)
			}
			fmt.Fprintf(&sb, "%s: sites=%d pretenuredSites=%d objs=%d early=%d mispred=%d demoted=%d gens=[%s]\n",
				row.Kind, p.SitesProfiled, p.SitesPretenured, p.PretenuredObjects,
				p.EarlyPromotions, p.Mispredictions, p.Demotions, strings.Join(gens, " "))
		case "deca":
			fmt.Fprintf(&sb, "%s: epochLabels=%d eagerMinorMoves=%d eagerMajorClosures=%d\n",
				row.Kind, p.EagerLabels, p.EagerMinorMoves, p.EagerMajorClosures)
		default:
			fmt.Fprintf(&sb, "%s: policy=%s\n", row.Kind, p.Policy)
		}
	}
	return sb.String()
}

// CSV renders the figure as plot-ready rows.
func (r PretenureResult) CSV() string {
	var sb strings.Builder
	sb.WriteString("kind,total_us,minor,minor_us,major,major_us,h2_bytes,h2_objs,oom,fault\n")
	for _, row := range r.Rows {
		res := row.Result
		var h2Bytes, h2Objs int64
		if res.THStats != nil {
			h2Bytes = res.THStats.BytesMoved
			h2Objs = res.THStats.ObjectsMoved
		}
		fmt.Fprintf(&sb, "%s,%d,%d,%d,%d,%d,%d,%d,%t,%t\n",
			row.Kind, res.B.Total().Microseconds(),
			res.GCStats.MinorCount, res.GCStats.MinorTime.Microseconds(),
			res.GCStats.MajorCount, res.GCStats.MajorTime.Microseconds(),
			h2Bytes, h2Objs, res.OOM, res.Faulted || res.Failed)
	}
	return sb.String()
}
