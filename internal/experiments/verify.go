package experiments

// verifyRuns enables before/after-collection heap verification on every
// runtime the experiments construct (the teraheap-bench -verify flag; the
// TH_VERIFY=1 environment variable achieves the same at the collector
// level without going through this switch).
var verifyRuns bool

// SetVerify toggles heap verification for subsequently constructed
// experiment runtimes and returns the previous setting.
func SetVerify(v bool) bool {
	prev := verifyRuns
	verifyRuns = v
	return prev
}

// applyVerify enables verification on a freshly built runtime when the
// -verify flag is set. Every runtime kind (rt.JVM in its PS, TeraHeap,
// memory-mode and Panthera configurations, and g1.G1 with or without a
// second heap) implements SetVerify.
func applyVerify(r interface{ SetVerify(bool) }) {
	if verifyRuns {
		r.SetVerify(true)
	}
}
