package experiments

import (
	"strings"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/giraph"
	"github.com/carv-repro/teraheap-go/internal/metrics"
)

// Fig9a measures the effect of the h2_move transfer hint on Giraph
// (Figure 9a): TeraHeap with the hint (H) against TeraHeap relying only
// on the high-threshold mechanism (NH). Without the hint, mutable message
// stores reach H2 early and every subsequent update is a device
// read-modify-write.
func Fig9a() string {
	workloads := GiraphWorkloads()
	var specs []Spec
	for _, w := range workloads {
		// The reduced-DRAM point: the threshold mechanism actually fires
		// there, which is what the hint comparison is about.
		dram := giraphSpecs[w].dramGB[0]
		// Fig 9a isolates the transfer hint: both configurations use only
		// the high threshold (the low threshold is Fig 9b's subject), so
		// forced movement takes every marked object — including mutable
		// stores, whose subsequent updates become device RMWs.
		specs = append(specs,
			GiraphSpec(GiraphRun{Workload: w, Mode: giraph.ModeTH, DramGB: dram,
				THConfig: func(c *core.Config) {
					c.EnableMoveHint = false
					c.LowThreshold = 0
				}}),
			GiraphSpec(GiraphRun{Workload: w, Mode: giraph.ModeTH, DramGB: dram,
				THConfig: func(c *core.Config) { c.LowThreshold = 0 }}))
	}
	runs := RunAll(specs)
	var sb strings.Builder
	for i, w := range workloads {
		nh, h := runs[2*i], runs[2*i+1]
		rows := []metrics.Row{
			nh.RowNamed(w + "/NH(no hint)"),
			h.RowNamed(w + "/H(hint)"),
		}
		sb.WriteString(metrics.FormatBreakdown("Fig 9a "+w+" (transfer hint)", rows, true))
		sb.WriteString("\n")
	}
	return sb.String()
}

// Fig9b measures the low-threshold mechanism (Figure 9b) on Giraph PR and
// SSSP with the large (91 GB) dataset: forced movement bounded by the 50%
// low threshold (L) against unbounded forced movement (NL). Both use the
// transfer hint and trip the 85% high threshold during graph loading.
func Fig9b() string {
	// DRAM sized so that graph loading crosses the high threshold before
	// the h2_move hint arrives (the paper's 170/200 GB points relative to
	// its heap representation; our representation is slightly leaner, so
	// the equivalent pressure points sit lower).
	cases := []struct {
		w      string
		dramGB float64
		scale  float64
	}{
		{"PR", 140, 91.0 / 85.0},
		{"SSSP", 155, 91.0 / 90.0},
	}
	var specs []Spec
	for _, c := range cases {
		specs = append(specs,
			GiraphSpec(GiraphRun{Workload: c.w, Mode: giraph.ModeTH, DramGB: c.dramGB,
				DatasetScale: c.scale,
				THConfig:     func(cc *core.Config) { cc.LowThreshold = 0 }}),
			GiraphSpec(GiraphRun{Workload: c.w, Mode: giraph.ModeTH, DramGB: c.dramGB,
				DatasetScale: c.scale,
				THConfig:     func(cc *core.Config) { cc.LowThreshold = 0.5 }}))
	}
	runs := RunAll(specs)
	var sb strings.Builder
	for i, c := range cases {
		nl, l := runs[2*i], runs[2*i+1]
		rows := []metrics.Row{
			nl.RowNamed(c.w + "/NL(no low)"),
			l.RowNamed(c.w + "/L(low=50%)"),
		}
		sb.WriteString(metrics.FormatBreakdown("Fig 9b "+c.w+" (low threshold, 91GB)", rows, true))
		sb.WriteString("\n")
	}
	return sb.String()
}
