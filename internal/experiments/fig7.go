package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/carv-repro/teraheap-go/internal/gc"
	"github.com/carv-repro/teraheap-go/internal/rt"
)

// Fig7Result captures the GC timelines of Spark PR for Spark-SD and
// TeraHeap at a 64 GB heap (Figure 7): per-cycle minor/major GC durations
// and old-generation occupancy over time.
type Fig7Result struct {
	SD RunResult
	TH RunResult
}

// Fig7 runs Spark PR under both configurations at the 80 GB DRAM point
// (64 GB heap).
func Fig7() Fig7Result {
	runs := RunAll([]Spec{
		SparkSpec(SparkRun{Workload: "PR", Runtime: rt.KindPS, DramGB: 80}),
		SparkSpec(SparkRun{Workload: "PR", Runtime: rt.KindTH, DramGB: 80}),
	})
	return Fig7Result{SD: runs[0], TH: runs[1]}
}

// timelineSummary condenses a GC timeline.
type timelineSummary struct {
	majors       int
	minors       int
	avgMajor     time.Duration
	avgMinor     time.Duration
	totalMinor   time.Duration
	avgOccAfter  float64
	avgReclaimed float64 // fraction of old gen reclaimed per major
}

func summarize(st *gc.Stats, oldCapacity int64) timelineSummary {
	var s timelineSummary
	var majorSum, minorSum time.Duration
	var occSum, reclSum float64
	for _, cy := range st.Cycles {
		if cy.Kind == gc.Major {
			s.majors++
			majorSum += cy.Duration
			occSum += cy.OldOccupancyAfter
			if oldCapacity > 0 {
				reclSum += float64(cy.ReclaimedBytes) / float64(oldCapacity)
			}
		} else {
			s.minors++
			minorSum += cy.Duration
		}
	}
	if s.majors > 0 {
		s.avgMajor = majorSum / time.Duration(s.majors)
		s.avgOccAfter = occSum / float64(s.majors)
		s.avgReclaimed = reclSum / float64(s.majors)
	}
	if s.minors > 0 {
		s.avgMinor = minorSum / time.Duration(s.minors)
	}
	s.totalMinor = minorSum
	return s
}

// CSV renders both timelines as plot-ready rows:
// config,kind,at_us,duration_us,old_occupancy_pct.
func (r Fig7Result) CSV() string {
	var sb strings.Builder
	sb.WriteString("config,kind,at_us,duration_us,old_occupancy_pct\n")
	emit := func(name string, res RunResult) {
		for _, cy := range res.GCStats.Cycles {
			fmt.Fprintf(&sb, "%s,%s,%d,%d,%.1f\n", name, cy.Kind,
				cy.At.Microseconds(), cy.Duration.Microseconds(),
				100*cy.OldOccupancyAfter)
		}
	}
	emit("spark-sd", r.SD)
	emit("teraheap", r.TH)
	return sb.String()
}

// Format renders the Figure 7 comparison.
func (r Fig7Result) Format() string {
	var sb strings.Builder
	sb.WriteString("== Fig 7: GC timeline, Spark PR, 64GB heap ==\n")
	write := func(label string, res RunResult) {
		s := summarize(&res.GCStats, 0)
		fmt.Fprintf(&sb, "%-10s majors=%-4d avgMajor=%-12v minors=%-4d totalMinor=%-12v\n",
			label, s.majors, s.avgMajor.Round(time.Microsecond), s.minors,
			s.totalMinor.Round(time.Microsecond))
		// Timeline samples (first/last few majors).
		n := 0
		for _, cy := range res.GCStats.Cycles {
			if cy.Kind != gc.Major {
				continue
			}
			if n < 4 {
				fmt.Fprintf(&sb, "  major@%-12v dur=%-12v oldOccAfter=%.0f%%\n",
					cy.At.Round(time.Millisecond), cy.Duration.Round(time.Microsecond),
					100*cy.OldOccupancyAfter)
			}
			n++
		}
	}
	write("Spark-SD", r.SD)
	write("TeraHeap", r.TH)
	sd := summarize(&r.SD.GCStats, 0)
	th := summarize(&r.TH.GCStats, 0)
	if sd.majors > 0 && th.majors > 0 {
		fmt.Fprintf(&sb, "ratio: SD/TH majors = %.1fx, TH minor-GC total = %.0f%% of SD\n",
			float64(sd.majors)/float64(th.majors),
			100*float64(th.totalMinor)/float64(sd.totalMinor+1))
	}
	return sb.String()
}
