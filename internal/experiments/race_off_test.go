//go:build !race

package experiments

// raceEnabled reports whether the race detector is compiled in. The
// heaviest end-to-end tests (two full chaos schedules back to back) skip
// under it: their properties are deterministic-replay ones the detector
// adds nothing to, and the ~10x slowdown would push the package past the
// default go-test timeout.
const raceEnabled = false
