package experiments

import (
	"sync/atomic"

	"github.com/carv-repro/teraheap-go/internal/fault"
)

// RunContext carries the cross-cutting per-run configuration — heap
// verification and fault injection — as an explicit, immutable value.
// Runs that leave their Ctx field nil pick up the process default (set
// by the CLI's -verify/-fault flags via SetVerify/SetFaultPlan); runs
// with an explicit context are completely scoped by it, so two runs with
// different verify/fault settings execute concurrently without bleeding
// into each other (the chaos harness relies on this).
//
// A RunContext must not be mutated after it is handed to a run.
type RunContext struct {
	// Verify registers the full-heap invariant verifier on the run's
	// runtime (the TH_VERIFY=1 environment variable achieves the same at
	// the collector level without going through a context).
	Verify bool
	// FaultPlan, when non-nil, injects faults into the run. The plan is
	// shared immutable configuration; each run builds its own
	// fault.Injector from it, so decisions depend only on that run's
	// operation stream — worker interleaving across parallel runs cannot
	// perturb them.
	FaultPlan *fault.Plan
	// GCWorkers sets the simulated GC gang size on PS-based runtimes
	// (rt.Spec.GCWorkers); 0 or 1 is the legacy serial charge.
	GCWorkers int
	// WritebackDepth enables the device's asynchronous writeback queue
	// (rt.Spec.WritebackDepth); 0 is the legacy flat discount.
	WritebackDepth int
}

// defaultCtx holds the process-default RunContext. It is the one
// sanctioned piece of package-level state (besides the badRuns counter):
// a pointer swap on flag parsing, read-only during runs.
var defaultCtx atomic.Pointer[RunContext]

func init() { defaultCtx.Store(&RunContext{}) }

// DefaultContext returns the current process-default run context (never
// nil). The returned value is shared: treat it as read-only.
func DefaultContext() *RunContext { return defaultCtx.Load() }

// orDefault resolves a run's context field.
func (c *RunContext) orDefault() *RunContext {
	if c == nil {
		return DefaultContext()
	}
	return c
}

// newInjector builds the context's per-run injector (nil when fault-free).
func (c *RunContext) newInjector() *fault.Injector { return fault.NewInjector(c.FaultPlan) }

// SetVerify toggles heap verification in the process-default context and
// returns the previous setting. It is a shim over DefaultContext for the
// teraheap-bench -verify flag; runs wanting scoped behaviour pass their
// own RunContext instead.
func SetVerify(v bool) bool {
	for {
		old := defaultCtx.Load()
		if old.Verify == v {
			return old.Verify
		}
		next := *old
		next.Verify = v
		if defaultCtx.CompareAndSwap(old, &next) {
			return old.Verify
		}
	}
}

// SetFaultPlan installs the fault plan in the process-default context
// (nil disables injection) and returns the previous plan. Like SetVerify
// it is a shim for the -fault flag.
func SetFaultPlan(p *fault.Plan) *fault.Plan {
	for {
		old := defaultCtx.Load()
		next := *old
		next.FaultPlan = p
		if defaultCtx.CompareAndSwap(old, &next) {
			return old.FaultPlan
		}
	}
}

// FaultPlan returns the process-default fault plan, or nil.
func FaultPlan() *fault.Plan { return DefaultContext().FaultPlan }

// SetGCWorkers sets the simulated GC gang size in the process-default
// context (values below 1 normalize to 1) and returns the previous
// setting. It is a shim for the -gc-workers flag.
func SetGCWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	for {
		old := defaultCtx.Load()
		if old.GCWorkers == n {
			return old.GCWorkers
		}
		next := *old
		next.GCWorkers = n
		if defaultCtx.CompareAndSwap(old, &next) {
			return old.GCWorkers
		}
	}
}

// GCWorkers returns the process-default GC gang size (0 and 1 both mean
// the legacy serial charge).
func GCWorkers() int { return DefaultContext().GCWorkers }

// SetWritebackDepth sets the device writeback queue depth in the
// process-default context (values below 0 normalize to 0 = disabled) and
// returns the previous setting. It is a shim for the -wb-depth flag.
func SetWritebackDepth(n int) int {
	if n < 0 {
		n = 0
	}
	for {
		old := defaultCtx.Load()
		if old.WritebackDepth == n {
			return old.WritebackDepth
		}
		next := *old
		next.WritebackDepth = n
		if defaultCtx.CompareAndSwap(old, &next) {
			return old.WritebackDepth
		}
	}
}

// WritebackDepth returns the process-default writeback queue depth.
func WritebackDepth() int { return DefaultContext().WritebackDepth }
