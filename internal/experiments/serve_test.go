package experiments

import (
	"strings"
	"testing"

	"github.com/carv-repro/teraheap-go/internal/server"
)

// serveTestConfig shrinks the serve workload so a full sweep stays fast
// in tests while still spanning warmup GCs and an H2-resident tail.
func serveTestConfig() server.Config {
	c := server.DefaultConfig()
	c.Requests = 4000
	c.Keys = 1024
	c.Clients = 50000
	return c
}

// TestServeSweepCoversAllKinds: the sweep produces one row per runtime
// kind × rate, none of them OOM or faulted at the default sizing, and the
// report carries the SLO columns the figure is about.
func TestServeSweepCoversAllKinds(t *testing.T) {
	res := ServeSweep(serveTestConfig(), nil)
	wantRows := len(serveKinds(serveTestConfig())) * len(DefaultServeRates())
	if len(res.Rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(res.Rows), wantRows)
	}
	for _, row := range res.Rows {
		if row.OOM || row.Fault {
			t.Errorf("row %s ended %v at default sizing", row.Name, row.Note)
		}
		if row.Served == 0 {
			t.Errorf("row %s served nothing", row.Name)
		}
	}
	for _, col := range []string{"shed", "retries", "sloViol", "p999"} {
		if !strings.Contains(res.Format(), col) {
			t.Errorf("serve report missing column %q", col)
		}
	}
	if !strings.Contains(res.CSV(), "slo_viol") {
		t.Errorf("serve CSV missing slo_viol column")
	}
}

// TestServeSweepSameSeedIsDeterministic: two sweeps under the same config
// render byte-identical reports — the property the CI two-process cmp
// job pins end to end.
func TestServeSweepSameSeedIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full serve sweeps in -short mode")
	}
	a := ServeSweep(serveTestConfig(), nil)
	b := ServeSweep(serveTestConfig(), nil)
	if a.Format() != b.Format() || a.CSV() != b.CSV() {
		t.Fatalf("same-seed sweeps diverged:\n--- a ---\n%s\n--- b ---\n%s", a.Format(), b.Format())
	}
}

// TestChaosServeDegradesGracefully is the serve plane's robustness claim:
// the chaos schedule under the default brownout + region-fail plan
// completes with zero panics, sheds and retries under pressure, reports
// SLO violations per configuration, and shows throughput recovering
// after the breaker re-admits (or fences off) H2.
func TestChaosServeDegradesGracefully(t *testing.T) {
	res := ChaosServe(nil, server.DefaultConfig())
	if res.Panicked() {
		t.Fatalf("chaos-serve panicked:\n%s", res.Format())
	}
	_, _, _, _, oom, _ := res.Counts()
	if oom != 0 {
		t.Fatalf("chaos-serve OOMed at default sizing:\n%s", res.Format())
	}
	var shed, retries int64
	for _, run := range res.Runs {
		if run.Serve == nil {
			continue
		}
		shed += run.Serve.Shed
		retries += run.Serve.Retries
	}
	if shed == 0 {
		t.Errorf("no sheds across the chaos-serve schedule:\n%s", res.Format())
	}
	if retries == 0 {
		t.Errorf("no retries across the chaos-serve schedule:\n%s", res.Format())
	}
	report := res.Format()
	if !strings.Contains(report, "slo-viol") {
		t.Errorf("report missing per-configuration SLO violations:\n%s", report)
	}
	if !strings.Contains(report, "throughput: recovered") {
		t.Errorf("report missing a recovered-throughput verdict:\n%s", report)
	}
	if strings.Contains(report, "NOT RECOVERED") {
		t.Errorf("a run's throughput never recovered:\n%s", report)
	}
}

// TestChaosServeSameSeedIsDeterministic: the chaos-serve report is
// byte-stable under the same plan and config.
func TestChaosServeSameSeedIsDeterministic(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("two full chaos-serve schedules")
	}
	a := ChaosServe(nil, server.DefaultConfig())
	b := ChaosServe(nil, server.DefaultConfig())
	if a.Format() != b.Format() {
		t.Fatalf("same-seed chaos-serve diverged:\n--- a ---\n%s\n--- b ---\n%s", a.Format(), b.Format())
	}
}
