package experiments_test

import (
	"testing"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/experiments"
	"github.com/carv-repro/teraheap-go/internal/giraph"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
)

// These integration tests pin the paper-shaped outcomes the reproduction
// is built to show. They run scaled workloads end to end.

func TestSparkTHBeatsSDAtEqualDRAM(t *testing.T) {
	// Fig 6 headline: at the same DRAM budget TeraHeap outperforms
	// Spark-SD (paper: 18-73% across workloads).
	for _, w := range []string{"PR", "SSSP", "LR", "SVM"} {
		spec := experiments.SparkWorkloads()
		_ = spec
		sd := experiments.RunSpark(experiments.SparkRun{Workload: w, Runtime: rt.KindPS, DramGB: dramFor(w)})
		th := experiments.RunSpark(experiments.SparkRun{Workload: w, Runtime: rt.KindTH, DramGB: dramFor(w)})
		if sd.OOM || th.OOM {
			t.Fatalf("%s: unexpected OOM (sd=%v th=%v)", w, sd.OOM, th.OOM)
		}
		if th.B.Total() >= sd.B.Total() {
			t.Errorf("%s: TH (%v) not faster than SD (%v)", w, th.B.Total(), sd.B.Total())
		}
		// GC collapses under TeraHeap.
		sdGC := sd.B.Get(simclock.MinorGC) + sd.B.Get(simclock.MajorGC)
		thGC := th.B.Get(simclock.MinorGC) + th.B.Get(simclock.MajorGC)
		if thGC >= sdGC {
			t.Errorf("%s: TH GC (%v) not below SD GC (%v)", w, thGC, sdGC)
		}
		// S/D collapses under TeraHeap (except shuffle).
		if th.B.Get(simclock.SerDesIO) > sd.B.Get(simclock.SerDesIO) {
			t.Errorf("%s: TH S/D above SD S/D", w)
		}
	}
}

func dramFor(w string) float64 {
	switch w {
	case "PR":
		return 80
	case "SSSP":
		return 58
	case "LR":
		return 70
	case "SVM":
		return 48
	}
	return 80
}

func TestSparkSDOOMsAtLowDRAMWhereTHRuns(t *testing.T) {
	// Fig 6: the low-DRAM Spark-SD bars are missing (OOM) while TeraHeap
	// runs at the same or lower DRAM.
	sd := experiments.RunSpark(experiments.SparkRun{Workload: "LR", Runtime: rt.KindPS, DramGB: 43})
	if !sd.OOM {
		t.Error("Spark-SD LR at 43GB should OOM")
	}
	th := experiments.RunSpark(experiments.SparkRun{Workload: "LR", Runtime: rt.KindTH, DramGB: 43})
	if th.OOM {
		t.Error("TeraHeap LR at 43GB should run")
	}
}

func TestFig7MajorGCContrast(t *testing.T) {
	r := experiments.Fig7()
	if r.SD.OOM || r.TH.OOM {
		t.Fatal("unexpected OOM")
	}
	// Spark-SD suffers frequent low-yield majors; TeraHeap needs far
	// fewer (paper: 171 vs 13).
	if r.SD.GCStats.MajorCount < 5*maxInt(r.TH.GCStats.MajorCount, 1) {
		t.Errorf("SD majors (%d) not >> TH majors (%d)",
			r.SD.GCStats.MajorCount, r.TH.GCStats.MajorCount)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestFig8G1BeatsPSAndTHBeatsG1(t *testing.T) {
	ps := experiments.RunSpark(experiments.SparkRun{Workload: "LR", Runtime: rt.KindPS, DramGB: 70})
	g1r := experiments.RunSpark(experiments.SparkRun{Workload: "LR", Runtime: rt.KindG1, DramGB: 70})
	th := experiments.RunSpark(experiments.SparkRun{Workload: "LR", Runtime: rt.KindTH, DramGB: 70})
	if g1r.B.Total() >= ps.B.Total() {
		t.Errorf("G1 (%v) not faster than PS (%v)", g1r.B.Total(), ps.B.Total())
	}
	if th.B.Total() >= g1r.B.Total() {
		t.Errorf("TH (%v) not faster than G1 (%v)", th.B.Total(), g1r.B.Total())
	}
	// G1 cannot eliminate S/D; TeraHeap does.
	if th.B.Get(simclock.SerDesIO)*10 > g1r.B.Get(simclock.SerDesIO) {
		t.Errorf("TH S/D (%v) not an order below G1 S/D (%v)",
			th.B.Get(simclock.SerDesIO), g1r.B.Get(simclock.SerDesIO))
	}
}

func TestFig9aHintHelpsMessageHeavyWorkloads(t *testing.T) {
	// WCC at reduced DRAM: without the hint, forced movement ships
	// mutable stores to H2 and pays device RMW (paper: 29-55% worse).
	nh := experiments.RunGiraph(experiments.GiraphRun{Workload: "WCC", Mode: giraph.ModeTH, DramGB: 74,
		THConfig: func(c *core.Config) { c.EnableMoveHint = false; c.LowThreshold = 0 }})
	h := experiments.RunGiraph(experiments.GiraphRun{Workload: "WCC", Mode: giraph.ModeTH, DramGB: 74,
		THConfig: func(c *core.Config) { c.LowThreshold = 0 }})
	if h.OOM || nh.OOM {
		t.Fatal("unexpected OOM")
	}
	if h.B.Total() >= nh.B.Total() {
		t.Errorf("hint (%v) not faster than no-hint (%v)", h.B.Total(), nh.B.Total())
	}
}

func TestFig9bLowThresholdHelps(t *testing.T) {
	nl := experiments.RunGiraph(experiments.GiraphRun{Workload: "PR", Mode: giraph.ModeTH, DramGB: 140,
		DatasetScale: 91.0 / 85.0,
		THConfig:     func(c *core.Config) { c.LowThreshold = 0 }})
	l := experiments.RunGiraph(experiments.GiraphRun{Workload: "PR", Mode: giraph.ModeTH, DramGB: 140,
		DatasetScale: 91.0 / 85.0,
		THConfig:     func(c *core.Config) { c.LowThreshold = 0.5 }})
	if l.B.Total() >= nl.B.Total() {
		t.Errorf("low threshold (%v) not faster than none (%v)", l.B.Total(), nl.B.Total())
	}
}

func TestGiraphTHBeatsOOC(t *testing.T) {
	for _, w := range []string{"PR", "WCC", "SSSP"} {
		ooc := experiments.RunGiraph(experiments.GiraphRun{Workload: w, Mode: giraph.ModeOOC, DramGB: giraphDram(w)})
		th := experiments.RunGiraph(experiments.GiraphRun{Workload: w, Mode: giraph.ModeTH, DramGB: giraphDram(w)})
		if ooc.OOM || th.OOM {
			t.Fatalf("%s: unexpected OOM", w)
		}
		if th.B.Total() >= ooc.B.Total() {
			t.Errorf("%s: TH (%v) not faster than OOC (%v)", w, th.B.Total(), ooc.B.Total())
		}
	}
}

func giraphDram(w string) float64 {
	switch w {
	case "BFS":
		return 65
	case "SSSP":
		return 90
	}
	return 85
}

func TestFig12PantheraLosesToTH(t *testing.T) {
	scale := 30.0 / 80.0
	p := experiments.RunSpark(experiments.SparkRun{Workload: "PR", Runtime: rt.KindPanthera,
		DramGB: 16, Device: storage.NVM, DatasetScale: scale})
	th := experiments.RunSpark(experiments.SparkRun{Workload: "PR", Runtime: rt.KindTH,
		DramGB: 32, Device: storage.NVM, DatasetScale: scale})
	if p.OOM || th.OOM {
		t.Fatal("unexpected OOM")
	}
	if th.B.Total() >= p.B.Total() {
		t.Errorf("TH (%v) not faster than Panthera (%v)", th.B.Total(), p.B.Total())
	}
}

func TestFig13THScalesWithThreads(t *testing.T) {
	t8 := experiments.RunSpark(experiments.SparkRun{Workload: "CC", Runtime: rt.KindTH, DramGB: 84, Threads: 8})
	t16 := experiments.RunSpark(experiments.SparkRun{Workload: "CC", Runtime: rt.KindTH, DramGB: 84, Threads: 16})
	if t16.B.Total() >= t8.B.Total() {
		t.Errorf("16 threads (%v) not faster than 8 (%v)", t16.B.Total(), t8.B.Total())
	}
}

func TestDeterminism(t *testing.T) {
	a := experiments.RunSpark(experiments.SparkRun{Workload: "SSSP", Runtime: rt.KindTH, DramGB: 58})
	b := experiments.RunSpark(experiments.SparkRun{Workload: "SSSP", Runtime: rt.KindTH, DramGB: 58})
	if a.B != b.B {
		t.Fatalf("same configuration produced different breakdowns:\n%v\n%v", a.B, b.B)
	}
	if a.Checksum != b.Checksum {
		t.Fatalf("checksums differ: %v vs %v", a.Checksum, b.Checksum)
	}
}

func TestChecksumsMatchAcrossRuntimes(t *testing.T) {
	// The same workload computes the same answer whichever runtime runs
	// it — the memory system must not change results.
	sd := experiments.RunSpark(experiments.SparkRun{Workload: "SSSP", Runtime: rt.KindPS, DramGB: 100})
	th := experiments.RunSpark(experiments.SparkRun{Workload: "SSSP", Runtime: rt.KindTH, DramGB: 58})
	g1r := experiments.RunSpark(experiments.SparkRun{Workload: "SSSP", Runtime: rt.KindG1, DramGB: 100})
	if sd.Checksum != th.Checksum || sd.Checksum != g1r.Checksum {
		t.Fatalf("checksum divergence: sd=%v th=%v g1=%v", sd.Checksum, th.Checksum, g1r.Checksum)
	}
}
