package experiments

import (
	"testing"

	"github.com/carv-repro/teraheap-go/internal/fault"
	"github.com/carv-repro/teraheap-go/internal/rt"
)

// bleedTestPlan injects at rates high enough that a short TeraHeap run is
// guaranteed to record injected faults if (and only if) the plan is
// actually wired into it.
func bleedTestPlan(t *testing.T) *fault.Plan {
	t.Helper()
	p, err := fault.ParsePlan("seed=5,dev-err=0.02,spike=0.05,wb-fail=0.1,torn=0.1")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	return p
}

// TestRunContextNoBleed is the config-bleed regression test: a run with a
// scoped verified+faulted context and a run on the process default
// (verification off, no plan) execute concurrently under an explicit
// 4-worker pool, and neither inherits the other's settings — the faulted
// runs record injected faults, the default runs record none, and the
// process-default context is untouched afterwards.
func TestRunContextNoBleed(t *testing.T) {
	if DefaultContext().Verify || FaultPlan() != nil {
		t.Fatal("test requires pristine process defaults")
	}
	defer ResetBadRuns()

	ctx := &RunContext{Verify: true, FaultPlan: bleedTestPlan(t)}
	mk := func(c *RunContext) Spec {
		return SparkSpec(SparkRun{Workload: "PR", Runtime: rt.KindTH, DramGB: 80,
			DatasetScale: 0.05, Ctx: c})
	}
	// Interleave scoped and default-context runs so the pool runs both
	// kinds at once.
	specs := []Spec{mk(ctx), mk(nil), mk(ctx), mk(nil)}
	runs := RunAllWorkers(specs, 4)

	for i, run := range runs {
		scoped := i%2 == 0
		if run.Failed {
			t.Fatalf("run %d (%s) panicked: %s", i, run.Name, run.FailErr)
		}
		if scoped && !run.FaultStats.Any() {
			t.Errorf("run %d (%s): scoped faulted context injected nothing: %s",
				i, run.Name, run.FaultStats.String())
		}
		if !scoped && run.FaultStats.Any() {
			t.Errorf("run %d (%s): default-context run absorbed the scoped run's fault plan: %s",
				i, run.Name, run.FaultStats.String())
		}
	}
	// Identical scoped runs must make identical fault decisions regardless
	// of worker interleaving.
	if runs[0].FaultStats != runs[2].FaultStats {
		t.Errorf("same-plan runs diverged: %s vs %s",
			runs[0].FaultStats.String(), runs[2].FaultStats.String())
	}
	if DefaultContext().Verify || FaultPlan() != nil {
		t.Error("scoped runs mutated the process-default context")
	}
}

// TestSetVerifySetFaultPlanShims: the CLI-facing setters are shims over
// the default context — they swap values atomically and report the
// previous setting, and scoped contexts never observe them.
func TestSetVerifySetFaultPlanShims(t *testing.T) {
	if prev := SetVerify(true); prev {
		t.Error("SetVerify(true): previous setting should have been false")
	}
	if !DefaultContext().Verify {
		t.Error("DefaultContext().Verify should be true after SetVerify(true)")
	}
	plan := bleedTestPlan(t)
	if prev := SetFaultPlan(plan); prev != nil {
		t.Errorf("SetFaultPlan: previous plan should have been nil, got %v", prev)
	}
	if FaultPlan() != plan {
		t.Error("FaultPlan() should return the installed plan")
	}
	// A scoped context is unaffected by the default's settings.
	scoped := &RunContext{}
	if got := scoped.orDefault(); got != scoped {
		t.Error("an explicit context must resolve to itself, not the default")
	}
	if prev := SetFaultPlan(nil); prev != plan {
		t.Errorf("SetFaultPlan(nil): previous plan should have been the installed one")
	}
	if prev := SetVerify(false); !prev {
		t.Error("SetVerify(false): previous setting should have been true")
	}
}
