package experiments

import (
	"strings"

	"github.com/carv-repro/teraheap-go/internal/metrics"
)

// Fig8 compares PS, G1, and TeraHeap on every Spark workload at equal
// DRAM (Figure 8). G1's humongous-object fragmentation OOMs SVM, BC, and
// RL in the paper.
func Fig8() string {
	var sb strings.Builder
	for _, w := range SparkWorkloads() {
		spec := sparkSpecs[w]
		dram := spec.thDramGB[len(spec.thDramGB)-1]
		rows := []metrics.Row{
			RunSpark(SparkRun{Workload: w, Runtime: RuntimePS, DramGB: dram}).Row(),
			RunSpark(SparkRun{Workload: w, Runtime: RuntimeG1, DramGB: dram}).Row(),
			RunSpark(SparkRun{Workload: w, Runtime: RuntimeTH, DramGB: dram}).Row(),
		}
		rows[0].Name = w + "/PS"
		rows[1].Name = w + "/G1"
		rows[2].Name = w + "/TH"
		sb.WriteString(metrics.FormatBreakdown("Fig 8 "+w+" (PS vs G1 vs TH)", rows, true))
		sb.WriteString("\n")
	}
	return sb.String()
}
