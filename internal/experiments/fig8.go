package experiments

import (
	"strings"

	"github.com/carv-repro/teraheap-go/internal/metrics"
	"github.com/carv-repro/teraheap-go/internal/rt"
)

// Fig8 compares PS, G1, and TeraHeap on every Spark workload at equal
// DRAM (Figure 8). G1's humongous-object fragmentation OOMs SVM, BC, and
// RL in the paper.
func Fig8() string {
	workloads := SparkWorkloads()
	var specs []Spec
	for _, w := range workloads {
		dram := sparkSpecs[w].thDramGB[len(sparkSpecs[w].thDramGB)-1]
		for _, rk := range []rt.Kind{rt.KindPS, rt.KindG1, rt.KindTH} {
			specs = append(specs, SparkSpec(SparkRun{Workload: w, Runtime: rk, DramGB: dram}))
		}
	}
	runs := RunAll(specs)
	var sb strings.Builder
	for i, w := range workloads {
		rows := []metrics.Row{
			runs[3*i+0].Row(),
			runs[3*i+1].Row(),
			runs[3*i+2].Row(),
		}
		rows[0].Name = w + "/PS"
		rows[1].Name = w + "/G1"
		rows[2].Name = w + "/TH"
		sb.WriteString(metrics.FormatBreakdown("Fig 8 "+w+" (PS vs G1 vs TH)", rows, true))
		sb.WriteString("\n")
	}
	return sb.String()
}
