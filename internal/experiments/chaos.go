package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/fault"
	"github.com/carv-repro/teraheap-go/internal/giraph"
	"github.com/carv-repro/teraheap-go/internal/rt"
)

// ChaosResult captures one chaos-harness execution: the plan it ran under
// and every run's outcome, in schedule order.
type ChaosResult struct {
	Plan *fault.Plan
	Runs []RunResult
}

// Counts buckets the runs by outcome. A run lands in exactly one bucket:
// panicked (executor-recovered), faulted (latched persistent device
// failure), oom, recovered (the self-healing layer repaired a persistent
// failure and the run finished with a correct result), degraded (absorbed
// injected faults and still finished), or healthy.
func (r ChaosResult) Counts() (healthy, recovered, degraded, faulted, oom, panicked int) {
	for _, run := range r.Runs {
		switch {
		case run.Failed:
			panicked++
		case run.Faulted:
			faulted++
		case run.OOM:
			oom++
		case run.Recovered():
			recovered++
		case run.Degraded():
			degraded++
		default:
			healthy++
		}
	}
	return
}

// Panicked reports whether any run died by panic — the one outcome the
// chaos harness treats as a bug. Faulted and OOM runs are expected under
// an aggressive plan; a panic means a fault escaped the typed-error paths.
func (r ChaosResult) Panicked() bool {
	for _, run := range r.Runs {
		if run.Failed {
			return true
		}
	}
	return false
}

// Format renders the chaos report. The output is a pure function of the
// plan and the run outcomes, so two executions under the same seed are
// byte-identical.
func (r ChaosResult) Format() string {
	plan := "(no faults)"
	if r.Plan != nil {
		plan = r.Plan.String()
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== chaos: %d runs under plan [%s], verifier on ==\n", len(r.Runs), plan)
	for _, run := range r.Runs {
		status := "ok"
		switch {
		case run.Failed:
			status = "PANIC"
		case run.Faulted:
			status = "FAULTED"
		case run.OOM:
			status = "OOM"
		case run.Recovered():
			status = "RECOVERED"
		case run.Degraded():
			status = "degraded"
		}
		fmt.Fprintf(&sb, "%-28s %-9s total=%-14v %s\n", run.Name, status,
			run.B.Total().Round(time.Microsecond), run.FaultStats.String())
		if run.Recovered() {
			fmt.Fprintf(&sb, "  recovery: %s\n", run.Recovery.String())
		}
		if run.FailErr != "" {
			line := run.FailErr
			if i := strings.IndexByte(line, '\n'); i >= 0 {
				line = line[:i]
			}
			fmt.Fprintf(&sb, "  cause: %s\n", line)
		}
	}
	healthy, recovered, degraded, faulted, oom, panicked := r.Counts()
	fmt.Fprintf(&sb, "healthy=%d recovered=%d degraded=%d faulted=%d oom=%d panicked=%d\n",
		healthy, recovered, degraded, faulted, oom, panicked)
	return sb.String()
}

// chaosSpecs is the chaos schedule: the Fig 7 pair (Spark PR under PS and
// TeraHeap — major-GC heavy, so promotion buffers and writeback are
// exercised), a streaming ML run at its reduced DRAM point (read-dominated,
// so latency spikes and brown-outs land on the page-cache fault path), and
// the Fig 9a hint pair for Giraph PR (mutable stores forced to H2, so
// device read-modify-writes absorb the injected errors). Every spec
// carries ctx explicitly, so the harness never touches the process-default
// context — chaos runs can interleave with default-context runs. The
// NG2C run uses the pretenure figure's hints-off configuration so its
// placement policy is actually exercised (pretenured allocations, policy
// promotions, demotion feedback) while faults land; Deca's epoch regions
// live on a DRAM device, so its chaos coverage is the H2 region plane
// (region-fail, corrupt) without the storage latency model.
func chaosSpecs(ctx *RunContext) []Spec {
	return []Spec{
		SparkSpec(SparkRun{Workload: "PR", Runtime: rt.KindPS, DramGB: 80, Ctx: ctx}),
		SparkSpec(SparkRun{Workload: "PR", Runtime: rt.KindTH, DramGB: 80, Ctx: ctx}),
		SparkSpec(SparkRun{Workload: "LR", Runtime: rt.KindTH, DramGB: 43, Ctx: ctx}),
		SparkSpec(SparkRun{Workload: "PR", Runtime: rt.KindNG2C, DramGB: 44, DatasetScale: 30.0 / 80.0, Ctx: ctx,
			THConfig: func(c *core.Config) { c.EnableMoveHint = false }}),
		SparkSpec(SparkRun{Workload: "PR", Runtime: rt.KindDeca, DramGB: 44, DatasetScale: 30.0 / 80.0, Ctx: ctx}),
		GiraphSpec(GiraphRun{Workload: "PR", Mode: giraph.ModeTH, DramGB: 74, Ctx: ctx,
			THConfig: func(c *core.Config) {
				c.EnableMoveHint = false
				c.LowThreshold = 0
			}}),
		GiraphSpec(GiraphRun{Workload: "PR", Mode: giraph.ModeTH, DramGB: 74, Ctx: ctx,
			THConfig: func(c *core.Config) { c.LowThreshold = 0 }}),
	}
}

// RunChaos executes the chaos schedule under the given fault plan with the
// full-heap invariant verifier enabled for every run. The plan and the
// verifier ride a scoped RunContext — the process-default context is
// never modified. A nil plan runs the schedule fault-free (the baseline
// the determinism CI job compares against).
func RunChaos(plan *fault.Plan) ChaosResult {
	ctx := &RunContext{Verify: true, FaultPlan: plan}
	return ChaosResult{Plan: plan, Runs: RunAll(chaosSpecs(ctx))}
}
