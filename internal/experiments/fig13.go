package experiments

import (
	"fmt"
	"strings"

	"github.com/carv-repro/teraheap-go/internal/giraph"
)

// Fig13a measures scaling with 4, 8, and 16 mutator threads for Spark CC
// and LR and Giraph CDLP, each normalized to its own 8-thread run
// (Figure 13a).
func Fig13a() string {
	var sb strings.Builder
	sb.WriteString("== Fig 13a: scaling with mutator threads (normalized to 8 threads) ==\n")
	fmt.Fprintf(&sb, "%-22s %8s %8s %8s\n", "config", "4", "8", "16")

	type runner func(threads int) RunResult
	do := func(name string, fn runner) {
		r4, r8, r16 := fn(4), fn(8), fn(16)
		base := float64(r8.B.Total())
		cell := func(r RunResult) string {
			if r.OOM {
				return "OOM"
			}
			return fmt.Sprintf("%.3f", float64(r.B.Total())/base)
		}
		fmt.Fprintf(&sb, "%-22s %8s %8s %8s\n", name, cell(r4), cell(r8), cell(r16))
	}

	ccDram := sparkSpecs["CC"].thDramGB[len(sparkSpecs["CC"].thDramGB)-1]
	lrDram := sparkSpecs["LR"].thDramGB[len(sparkSpecs["LR"].thDramGB)-1]
	cdlpDram := giraphSpecs["CDLP"].dramGB[len(giraphSpecs["CDLP"].dramGB)-1]

	do("Spark-CC/SD", func(t int) RunResult {
		return RunSpark(SparkRun{Workload: "CC", Runtime: RuntimePS, DramGB: ccDram, Threads: t})
	})
	do("Spark-CC/TH", func(t int) RunResult {
		return RunSpark(SparkRun{Workload: "CC", Runtime: RuntimeTH, DramGB: ccDram, Threads: t})
	})
	do("Spark-LR/SD", func(t int) RunResult {
		return RunSpark(SparkRun{Workload: "LR", Runtime: RuntimePS, DramGB: lrDram, Threads: t})
	})
	do("Spark-LR/TH", func(t int) RunResult {
		return RunSpark(SparkRun{Workload: "LR", Runtime: RuntimeTH, DramGB: lrDram, Threads: t})
	})
	do("Giraph-CDLP/OOC", func(t int) RunResult {
		return RunGiraph(GiraphRun{Workload: "CDLP", Mode: giraph.ModeOOC, DramGB: cdlpDram, Threads: t})
	})
	do("Giraph-CDLP/TH", func(t int) RunResult {
		return RunGiraph(GiraphRun{Workload: "CDLP", Mode: giraph.ModeTH, DramGB: cdlpDram, Threads: t})
	})
	return sb.String()
}

// Fig13b measures robustness to dataset size (Figure 13b): native vs
// TeraHeap at the base and enlarged datasets, reporting TH/native time.
func Fig13b() string {
	var sb strings.Builder
	sb.WriteString("== Fig 13b: scaling with dataset size (TH time / native time) ==\n")
	fmt.Fprintf(&sb, "%-16s %10s %10s\n", "workload", "base", "large")

	type cfg struct {
		name    string
		baseGB  float64
		largeGB float64
		spark   bool
		w       string
	}
	cases := []cfg{
		{"Spark-CC", 32, 73, true, "CC"},
		{"Spark-LR", 64, 256, true, "LR"},
		{"Giraph-CDLP", 25, 91, false, "CDLP"},
	}
	for _, c := range cases {
		cell := func(scaleTo float64) string {
			var nat, th RunResult
			if c.spark {
				spec := sparkSpecs[c.w]
				scale := scaleTo / spec.datasetGB
				dram := spec.thDramGB[len(spec.thDramGB)-1] * scale
				nat = RunSpark(SparkRun{Workload: c.w, Runtime: RuntimePS, DramGB: dram, DatasetScale: scale})
				th = RunSpark(SparkRun{Workload: c.w, Runtime: RuntimeTH, DramGB: dram, DatasetScale: scale})
			} else {
				spec := giraphSpecs[c.w]
				scale := scaleTo / spec.datasetGB
				dram := spec.dramGB[len(spec.dramGB)-1] * scale
				nat = RunGiraph(GiraphRun{Workload: c.w, Mode: giraph.ModeOOC, DramGB: dram, DatasetScale: scale})
				th = RunGiraph(GiraphRun{Workload: c.w, Mode: giraph.ModeTH, DramGB: dram, DatasetScale: scale})
			}
			if nat.OOM {
				return "nat-OOM"
			}
			if th.OOM {
				return "th-OOM"
			}
			return fmt.Sprintf("%.3f", float64(th.B.Total())/float64(nat.B.Total()))
		}
		fmt.Fprintf(&sb, "%-16s %10s %10s\n", c.name, cell(c.baseGB), cell(c.largeGB))
	}
	return sb.String()
}
