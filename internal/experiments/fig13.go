package experiments

import (
	"fmt"
	"strings"

	"github.com/carv-repro/teraheap-go/internal/giraph"
	"github.com/carv-repro/teraheap-go/internal/rt"
)

// Fig13a measures scaling with 4, 8, and 16 mutator threads for Spark CC
// and LR and Giraph CDLP, each normalized to its own 8-thread run
// (Figure 13a).
func Fig13a() string {
	ccDram := sparkSpecs["CC"].thDramGB[len(sparkSpecs["CC"].thDramGB)-1]
	lrDram := sparkSpecs["LR"].thDramGB[len(sparkSpecs["LR"].thDramGB)-1]
	cdlpDram := giraphSpecs["CDLP"].dramGB[len(giraphSpecs["CDLP"].dramGB)-1]

	configs := []struct {
		name string
		spec func(threads int) Spec
	}{
		{"Spark-CC/SD", func(t int) Spec {
			return SparkSpec(SparkRun{Workload: "CC", Runtime: rt.KindPS, DramGB: ccDram, Threads: t})
		}},
		{"Spark-CC/TH", func(t int) Spec {
			return SparkSpec(SparkRun{Workload: "CC", Runtime: rt.KindTH, DramGB: ccDram, Threads: t})
		}},
		{"Spark-LR/SD", func(t int) Spec {
			return SparkSpec(SparkRun{Workload: "LR", Runtime: rt.KindPS, DramGB: lrDram, Threads: t})
		}},
		{"Spark-LR/TH", func(t int) Spec {
			return SparkSpec(SparkRun{Workload: "LR", Runtime: rt.KindTH, DramGB: lrDram, Threads: t})
		}},
		{"Giraph-CDLP/OOC", func(t int) Spec {
			return GiraphSpec(GiraphRun{Workload: "CDLP", Mode: giraph.ModeOOC, DramGB: cdlpDram, Threads: t})
		}},
		{"Giraph-CDLP/TH", func(t int) Spec {
			return GiraphSpec(GiraphRun{Workload: "CDLP", Mode: giraph.ModeTH, DramGB: cdlpDram, Threads: t})
		}},
	}
	threads := []int{4, 8, 16}
	var specs []Spec
	for _, c := range configs {
		for _, t := range threads {
			specs = append(specs, c.spec(t))
		}
	}
	runs := RunAll(specs)

	var sb strings.Builder
	sb.WriteString("== Fig 13a: scaling with mutator threads (normalized to 8 threads) ==\n")
	fmt.Fprintf(&sb, "%-22s %8s %8s %8s\n", "config", "4", "8", "16")
	for ci, c := range configs {
		r4, r8, r16 := runs[3*ci], runs[3*ci+1], runs[3*ci+2]
		base := float64(r8.B.Total())
		cell := func(r RunResult) string {
			if r.OOM {
				return "OOM"
			}
			return fmt.Sprintf("%.3f", float64(r.B.Total())/base)
		}
		fmt.Fprintf(&sb, "%-22s %8s %8s %8s\n", c.name, cell(r4), cell(r8), cell(r16))
	}
	return sb.String()
}

// Fig13b measures robustness to dataset size (Figure 13b): native vs
// TeraHeap at the base and enlarged datasets, reporting TH/native time.
func Fig13b() string {
	type cfg struct {
		name    string
		baseGB  float64
		largeGB float64
		spark   bool
		w       string
	}
	cases := []cfg{
		{"Spark-CC", 32, 73, true, "CC"},
		{"Spark-LR", 64, 256, true, "LR"},
		{"Giraph-CDLP", 25, 91, false, "CDLP"},
	}
	// Per case and dataset size: the native run then the TeraHeap run.
	var specs []Spec
	for _, c := range cases {
		for _, scaleTo := range []float64{c.baseGB, c.largeGB} {
			if c.spark {
				spec := sparkSpecs[c.w]
				scale := scaleTo / spec.datasetGB
				dram := spec.thDramGB[len(spec.thDramGB)-1] * scale
				specs = append(specs,
					SparkSpec(SparkRun{Workload: c.w, Runtime: rt.KindPS, DramGB: dram, DatasetScale: scale}),
					SparkSpec(SparkRun{Workload: c.w, Runtime: rt.KindTH, DramGB: dram, DatasetScale: scale}))
			} else {
				spec := giraphSpecs[c.w]
				scale := scaleTo / spec.datasetGB
				dram := spec.dramGB[len(spec.dramGB)-1] * scale
				specs = append(specs,
					GiraphSpec(GiraphRun{Workload: c.w, Mode: giraph.ModeOOC, DramGB: dram, DatasetScale: scale}),
					GiraphSpec(GiraphRun{Workload: c.w, Mode: giraph.ModeTH, DramGB: dram, DatasetScale: scale}))
			}
		}
	}
	runs := RunAll(specs)

	var sb strings.Builder
	sb.WriteString("== Fig 13b: scaling with dataset size (TH time / native time) ==\n")
	fmt.Fprintf(&sb, "%-16s %10s %10s\n", "workload", "base", "large")
	for ci, c := range cases {
		cell := func(sizeIdx int) string {
			nat := runs[4*ci+2*sizeIdx]
			th := runs[4*ci+2*sizeIdx+1]
			if nat.OOM {
				return "nat-OOM"
			}
			if th.OOM {
				return "th-OOM"
			}
			return fmt.Sprintf("%.3f", float64(th.B.Total())/float64(nat.B.Total()))
		}
		fmt.Fprintf(&sb, "%-16s %10s %10s\n", c.name, cell(0), cell(1))
	}
	return sb.String()
}
