package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/giraph"
	"github.com/carv-repro/teraheap-go/internal/metrics"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/runner"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// vmHandle aliases the handle type for the synthetic ablations.
type vmHandle = vm.Handle

// vmClassesForSizeSeg builds the class table for the size-segregation
// ablation.
func vmClassesForSizeSeg() *vm.ClassTable {
	classes := vm.NewClassTable()
	classes.MustFixed("small", 1, 2)
	classes.MustPrimArray("big[]")
	classes.MustRefArray("root[]")
	return classes
}

// rtNewJVM builds a TeraHeap JVM for the synthetic ablations through the
// session factory (verification follows the process default; the
// ablations are fault-free by design).
func rtNewJVM(thCfg core.Config, classes *vm.ClassTable, clock *simclock.Clock) *rt.JVM {
	ses := rt.NewSession(rt.Spec{Kind: rt.KindTH, H1Size: 4 * storage.MB, TH: &thCfg,
		Classes: classes, Clock: clock, Verify: DefaultContext().Verify})
	return ses.Runtime.(*rt.JVM)
}

// AblationStriping quantifies §7.1's remark that "using more NVMe SSDs
// can reduce other time for LR, LgR and SVM": the ML streamers run at the
// device's read bandwidth, so striping H2 across devices shrinks the
// mutator's I/O wait.
func AblationStriping() string {
	stripes := []int{1, 2, 4}
	var specs []Spec
	for _, n := range stripes {
		specs = append(specs, SparkSpec(SparkRun{Workload: "LR", Runtime: rt.KindTH, DramGB: 70, Stripes: n}))
	}
	runs := RunAll(specs)
	var sb strings.Builder
	sb.WriteString("== ablation: H2 striped across N NVMe SSDs (Spark LR) ==\n")
	fmt.Fprintf(&sb, "%-8s %12s %12s\n", "devices", "total", "other")
	for i, n := range stripes {
		r := runs[i]
		fmt.Fprintf(&sb, "%-8d %12v %12v\n", n,
			r.B.Total().Round(time.Microsecond),
			r.B.Get(simclock.Other).Round(time.Microsecond))
	}
	return sb.String()
}

// AblationHugePages quantifies the HugeMap configuration (§6): 2 MB
// mappings for the streaming ML workloads reduce page-fault frequency.
func AblationHugePages() string {
	pageSizes := []struct {
		label string
		size  int
	}{
		{"4KB", 4 * storage.KB},
		{"64KB", 64 * storage.KB},
		{"256KB", 256 * storage.KB},
	}
	var specs []Spec
	for _, ps := range pageSizes {
		size := ps.size
		specs = append(specs, SparkSpec(SparkRun{Workload: "LR", Runtime: rt.KindTH, DramGB: 70,
			THConfig: func(c *core.Config) { c.PageSize = size }}))
	}
	runs := RunAll(specs)
	var sb strings.Builder
	sb.WriteString("== ablation: H2 page size (Spark LR, streaming reads) ==\n")
	fmt.Fprintf(&sb, "%-10s %12s %12s %10s\n", "pagesize", "total", "other", "faults")
	for i, ps := range pageSizes {
		r := runs[i]
		fmt.Fprintf(&sb, "%-10s %12v %12v %10d\n", ps.label,
			r.B.Total().Round(time.Microsecond),
			r.B.Get(simclock.Other).Round(time.Microsecond),
			r.PageFaults)
	}
	return sb.String()
}

// AblationDynamicThresholds compares static high/low thresholds against
// the adaptive controller (the paper's proposed future work, §7.2) on a
// workload under sustained pressure (CDLP at the reduced DRAM point,
// without the move hint): repeated high-threshold trips teach the
// controller to evacuate deeper, cutting the trip count.
func AblationDynamicThresholds() string {
	spec := func(dynamic bool) Spec {
		return GiraphSpec(GiraphRun{Workload: "CDLP", Mode: giraph.ModeTH, DramGB: 74,
			THConfig: func(c *core.Config) {
				c.EnableMoveHint = false
				c.LowThreshold = 0.75 // deliberately conservative start
				c.Ext.DynamicThresholds = dynamic
			}})
	}
	runs := RunAll([]Spec{spec(false), spec(true)})
	static, dynamic := runs[0], runs[1]
	var adj int64
	var low float64
	if dynamic.THStats != nil {
		adj = dynamic.THStats.DynamicAdjustments
	}
	low = dynamic.FinalLowThreshold
	return fmt.Sprintf("== ablation: dynamic thresholds (Giraph CDLP, no hint, 74GB) ==\n"+
		"%-10s total=%-14v trips=%d\n%-10s total=%-14v trips=%d adjustments=%d finalLow=%.2f\n"+
		"the controller halves threshold trips by evacuating deeper; whether that\n"+
		"pays off depends on how mutable the extra evacuated data is — the\n"+
		"trade-off the paper defers to future work (§7.2)\n",
		"static", static.B.Total().Round(time.Microsecond), trips(static),
		"dynamic", dynamic.B.Total().Round(time.Microsecond), trips(dynamic), adj, low)
}

// AblationG1TeraHeap compares plain G1 against G1 with an attached
// TeraHeap (§7.1's suggested integration): the second heap removes the
// S/D of the off-heap cache and takes the long-lived (and humongous)
// cached data out of G1's regions.
func AblationG1TeraHeap() string {
	workloads := []string{"LR", "RL"}
	var specs []Spec
	for _, w := range workloads {
		dram := sparkSpecs[w].thDramGB[len(sparkSpecs[w].thDramGB)-1]
		specs = append(specs,
			SparkSpec(SparkRun{Workload: w, Runtime: rt.KindG1, DramGB: dram}),
			SparkSpec(SparkRun{Workload: w, Runtime: rt.KindG1TH, DramGB: dram}))
	}
	runs := RunAll(specs)
	var sb strings.Builder
	sb.WriteString("== ablation: G1 vs G1+TeraHeap (§7.1 integration) ==\n")
	var rows []metrics.Row
	for i, w := range workloads {
		plain, combo := runs[2*i], runs[2*i+1]
		rows = append(rows,
			plain.RowNamed(w+"/G1"),
			combo.RowNamed(w+"/G1+TH"))
	}
	sb.WriteString(metrics.FormatBreakdown("G1 vs G1+TH", rows, true))
	return sb.String()
}

func trips(r RunResult) int64 {
	if r.THStats == nil {
		return 0
	}
	return r.THStats.HighThresholdTrips
}

// AblationSizeSegregation demonstrates the size-segregated placement
// policy (the paper's §7.3 future work) on the access pattern §7.3
// describes for SSSP: object groups that mix long-lived small objects
// with large arrays that die early. Default placement interleaves them,
// so a region's surviving small objects pin the space of its dead big
// arrays; segregation gives the big arrays their own regions, which die
// clean and are reclaimed in bulk.
func AblationSizeSegregation() string {
	type segResult struct{ reclaimed, liveKB int64 }
	run := func(seg bool) (reclaimed int64, liveKB int64) {
		clock := simclock.New()
		classes := vmClassesForSizeSeg()
		thCfg := core.DefaultConfig(128 * storage.MB)
		thCfg.RegionSize = 32 * storage.KB
		thCfg.Ext.SizeSegregatedRegions = seg
		thCfg.Ext.BigObjectWords = 512
		jvm := rtNewJVM(thCfg, classes, clock)

		small := classes.ByName("small")
		bigArr := classes.ByName("big[]")
		arr := classes.ByName("root[]")

		// Per group: a root of small long-lived objects plus eight big
		// arrays, all tagged with the group's label (multiple key-objects
		// per label, like Giraph's per-vertex edge maps). Allocation
		// interleaves them, so default placement interleaves them in the
		// label's regions too.
		const groups = 24
		var keepRoots []*vmHandle
		var bigHandles []*vmHandle
		for g := 0; g < groups; g++ {
			root, err := jvm.AllocRefArray(arr, 8)
			if err != nil {
				panic(err)
			}
			h := jvm.NewHandle(root)
			label := uint64(1 + g)
			jvm.TagRoot(h, label)
			for i := 0; i < 8; i++ {
				sobj, err := jvm.Alloc(small)
				if err != nil {
					panic(err)
				}
				jvm.WriteRef(h.Addr(), i, sobj)
				b, err := jvm.AllocPrimArray(bigArr, 1024) // 8 KB, "big"
				if err != nil {
					panic(err)
				}
				bh := jvm.NewHandle(b)
				jvm.TagRoot(bh, label)
				bigHandles = append(bigHandles, bh)
			}
			jvm.MoveHint(label)
			keepRoots = append(keepRoots, h)
		}
		if err := jvm.FullGC(); err != nil {
			panic(err)
		}
		// The big arrays die (the paper's "large dead arrays" in SSSP's
		// regions, §7.3); the small objects stay live.
		for _, bh := range bigHandles {
			jvm.Release(bh)
		}
		if err := jvm.FullGC(); err != nil {
			panic(err)
		}
		_ = keepRoots
		th := jvm.TeraHeap()
		return th.Stats().RegionsReclaimed, th.UsedBytes() / 1024
	}
	// Ablation-style closures go through the executor too: index 0 is the
	// default placement, index 1 the segregated one.
	rs := runner.Map(2, func(i int) segResult {
		r, live := run(i == 1)
		return segResult{reclaimed: r, liveKB: live}
	})
	return fmt.Sprintf("== ablation: size-segregated H2 placement (mixed-lifetime groups) ==\n"+
		"%-12s regionsReclaimed=%-4d h2LiveKB=%d\n%-12s regionsReclaimed=%-4d h2LiveKB=%d\n",
		"default", rs[0].reclaimed, rs[0].liveKB, "segregated", rs[1].reclaimed, rs[1].liveKB)
}
