package experiments

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// globalAllowlist is the closed set of package-level variables this
// package may declare. The refactor that introduced RunContext removed
// the old mutable config globals (verifyRuns, faultPlan); any new
// top-level var must either be added here with justification or — for
// per-run configuration — live on RunContext instead.
var globalAllowlist = map[string]string{
	"defaultCtx":  "atomic holder for the process-default RunContext; mutated only through the SetVerify/SetFaultPlan shims",
	"badRuns":     "atomic counter of non-healthy runs, drives the CLI exit code",
	"sparkSpecs":  "immutable workload table (Table 3 / Fig 6-7 sizing points)",
	"giraphSpecs": "immutable workload table (Table 4 sizing points)",
}

// TestNoPackageLevelMutableConfig is the globals lint: it parses every
// non-test file in this package and fails if a package-level var exists
// outside the allowlist. This is the CI tripwire against reintroducing
// cross-run config bleed through package state.
func TestNoPackageLevelMutableConfig(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(".", name), nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, id := range vs.Names {
					if id.Name == "_" {
						continue // compile-time interface assertions
					}
					if _, ok := globalAllowlist[id.Name]; !ok {
						t.Errorf("%s: package-level var %q is not in the allowlist; "+
							"per-run configuration belongs on RunContext, not package state",
							fset.Position(id.Pos()), id.Name)
					}
				}
			}
		}
	}
}
