package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/runner"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// Table5 reports DRAM metadata per TB of H2 space for region sizes from
// 1 MB to 256 MB (the paper measures 417 MB down to 2 MB).
func Table5() string {
	var sb strings.Builder
	sb.WriteString("== Table 5: H2 metadata per TB vs region size ==\n")
	sb.WriteString("region size (MB):   ")
	sizes := []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}
	for _, s := range sizes {
		fmt.Fprintf(&sb, "%8d", s)
	}
	sb.WriteString("\nmetadata (MB/TB):   ")
	for _, s := range sizes {
		fmt.Fprintf(&sb, "%8.1f", float64(core.MetadataBytesPerTB(s*storage.MB))/float64(storage.MB))
	}
	sb.WriteString("\n")
	return sb.String()
}

// BarrierOverhead measures the post-write-barrier cost of the extra H2
// reference range check (§4): a DaCapo-like pointer-churn microworkload
// runs with EnableTeraHeap off (vanilla) and on, and the slowdown is
// reported. The paper measures <3% on average.
func BarrierOverhead() string {
	run := func(withTH bool) time.Duration {
		clock := simclock.New()
		classes := vm.NewClassTable()
		node := classes.MustFixed("dacapo.Node", 2, 2)
		sspec := rt.Spec{Kind: rt.KindPS, H1Size: 4 * storage.MB,
			Classes: classes, Clock: clock, Verify: DefaultContext().Verify}
		if withTH {
			cfg := core.DefaultConfig(16 * storage.MB)
			cfg.RegionSize = 64 * storage.KB
			sspec.Kind = rt.KindTH
			sspec.TH = &cfg
		}
		jvm := rt.NewSession(sspec).Runtime.(*rt.JVM)
		// Pointer-churn mutator: build and rewire small object graphs with
		// DaCapo-like barrier density (a few reference stores per ~100ns
		// of compute).
		h := jvm.NewHandle(vm.NullAddr)
		for i := 0; i < 40000; i++ {
			a, err := jvm.Alloc(node)
			if err != nil {
				panic(err)
			}
			jvm.WriteRef(a, 0, h.Addr())
			jvm.WritePrim(a, 0, uint64(i))
			rt.ChargeCompute(clock, 60*time.Nanosecond)
			if i%7 != 0 {
				// Short-lived: drop immediately.
				continue
			}
			h.Set(a)
			if prev := jvm.ReadRef(a, 0); !prev.IsNull() {
				jvm.WriteRef(a, 1, prev) // extra barrier traffic
			}
		}
		return clock.Breakdown().Total()
	}
	// Both microworkload instances are self-contained; run them through
	// the executor like every other pair of configurations.
	times := runner.Map(2, func(i int) time.Duration { return run(i == 1) })
	base, th := times[0], times[1]
	overhead := 100 * (float64(th)/float64(base) - 1)
	return fmt.Sprintf("== §4 barrier overhead (DaCapo-like churn) ==\n"+
		"vanilla=%v  EnableTeraHeap=%v  overhead=%.2f%% (paper: <3%% avg)\n",
		base.Round(time.Microsecond), th.Round(time.Microsecond), overhead)
}

// AblationGroupMode compares dependency lists against Union-Find region
// groups (§3.3) at scale, reproducing the paper's X→Y→Z example: chains
// of labelled object groups with directional cross-region references,
// where only each chain's tail stays referenced from H1. Dependency lists
// reclaim the chain bodies; Union-Find keeps whole groups alive.
func AblationGroupMode() string {
	run := func(mode core.GroupMode) (reclaimed int64, h2Used int64) {
		clock := simclock.New()
		classes := vm.NewClassTable()
		arr := classes.MustRefArray("Object[]")
		data := classes.MustPrimArray("long[]")
		thCfg := core.DefaultConfig(64 * storage.MB)
		thCfg.RegionSize = 16 * storage.KB
		thCfg.GroupMode = mode
		jvm := rtNewJVM(thCfg, classes, clock)

		const chains, chainLen, payload = 40, 3, 128
		type link struct {
			h     *vm.Handle
			label uint64
		}
		var all [][]link
		label := uint64(1)
		for c := 0; c < chains; c++ {
			var chain []link
			for l := 0; l < chainLen; l++ {
				root, err := jvm.AllocRefArray(arr, 4)
				if err != nil {
					panic(err)
				}
				h := jvm.NewHandle(root)
				body, err := jvm.AllocPrimArray(data, payload)
				if err != nil {
					panic(err)
				}
				jvm.WriteRef(h.Addr(), 0, body)
				jvm.TagRoot(h, label)
				jvm.MoveHint(label)
				chain = append(chain, link{h: h, label: label})
				label++
			}
			all = append(all, chain)
		}
		if err := jvm.FullGC(); err != nil {
			panic(err)
		}
		// Wire X→Y→Z inside H2 (directional cross-region references).
		for _, chain := range all {
			for l := 0; l+1 < len(chain); l++ {
				jvm.WriteRef(chain[l].h.Addr(), 1, chain[l+1].h.Addr())
			}
		}
		if err := jvm.FullGC(); err != nil {
			panic(err)
		}
		// Drop every root except each chain's tail, as in the paper's
		// example where only Z stays referenced from H1.
		for _, chain := range all {
			for l := 0; l+1 < len(chain); l++ {
				jvm.Release(chain[l].h)
			}
		}
		if err := jvm.FullGC(); err != nil {
			panic(err)
		}
		th := jvm.TeraHeap()
		return th.Stats().RegionsReclaimed, th.UsedBytes()
	}
	type groupResult struct{ reclaimed, used int64 }
	modes := []core.GroupMode{core.DependencyLists, core.UnionFind}
	rs := runner.Map(len(modes), func(i int) groupResult {
		r, used := run(modes[i])
		return groupResult{reclaimed: r, used: used}
	})
	depR, depUsed := rs[0].reclaimed, rs[0].used
	ufR, ufUsed := rs[1].reclaimed, rs[1].used
	return fmt.Sprintf("== §3.3 ablation: dependency lists vs Union-Find (X→Y→Z chains) ==\n"+
		"%-12s regionsReclaimed=%-5d h2LiveBytes=%d\n%-12s regionsReclaimed=%-5d h2LiveBytes=%d\n"+
		"dep lists reclaim the dead chain bodies; groups keep them alive\n",
		"dep-lists", depR, depUsed, "union-find", ufR, ufUsed)
}
