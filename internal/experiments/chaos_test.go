package experiments

import (
	"strings"
	"testing"

	"github.com/carv-repro/teraheap-go/internal/fault"
)

// chaosTestPlan is an aggressive-but-survivable schedule: transient errors
// well under the retry budget, plus every degradation mode at a visible
// rate.
func chaosTestPlan(t *testing.T) *fault.Plan {
	t.Helper()
	p, err := fault.ParsePlan("seed=1,dev-err=0.02,spike=0.01,brownout=4000:200,wb-fail=0.05,torn=0.05,h2-exhaust=0.02")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	return p
}

// TestChaosSurvivesFaultSchedule is the harness's core claim: under an
// aggressive fault plan with the verifier on, every run ends in a typed
// outcome — degraded, faulted, or OOM — and none panics.
func TestChaosSurvivesFaultSchedule(t *testing.T) {
	res := RunChaos(chaosTestPlan(t))
	if res.Panicked() {
		t.Fatalf("chaos run panicked:\n%s", res.Format())
	}
	if len(res.Runs) != len(chaosSpecs(nil)) {
		t.Fatalf("got %d runs, want %d", len(res.Runs), len(chaosSpecs(nil)))
	}
	healthy, recovered, degraded, faulted, oom, panicked := res.Counts()
	if healthy+recovered+degraded+faulted+oom+panicked != len(res.Runs) {
		t.Fatalf("outcome buckets don't partition the runs: %d+%d+%d+%d+%d+%d != %d",
			healthy, recovered, degraded, faulted, oom, panicked, len(res.Runs))
	}
	// The plan injects at visible rates into I/O-heavy runs: at least one
	// run must have absorbed faults (degraded or worse) or the plane is
	// not actually wired in.
	anyInjected := false
	for _, run := range res.Runs {
		if run.FaultStats.Any() {
			anyInjected = true
		}
	}
	if !anyInjected {
		t.Fatalf("no run recorded injected faults:\n%s", res.Format())
	}
	if !strings.Contains(res.Format(), "verifier on") {
		t.Fatalf("report missing verifier marker:\n%s", res.Format())
	}
}

// TestChaosSameSeedIsDeterministic runs the schedule twice under the same
// plan and requires byte-identical reports.
func TestChaosSameSeedIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full chaos schedules in -short mode")
	}
	plan := chaosTestPlan(t)
	a := RunChaos(plan).Format()
	b := RunChaos(plan).Format()
	if a != b {
		t.Fatalf("same-seed chaos reports differ:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestChaosGlobalsRestored checks RunChaos leaves the process-default
// context the way it found it (it runs on scoped contexts and never
// touches the default).
func TestChaosGlobalsRestored(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos schedule in -short mode")
	}
	prevVerify := SetVerify(false)
	defer SetVerify(prevVerify)
	prevPlan := SetFaultPlan(nil)
	defer SetFaultPlan(prevPlan)
	RunChaos(chaosTestPlan(t))
	if SetVerify(false) {
		t.Error("verify toggle left enabled after RunChaos")
	}
	if FaultPlan() != nil {
		t.Error("fault plan left installed after RunChaos")
	}
}

// TestChaosRecoversFromPersistentRegionFailure is the self-healing layer's
// end-to-end claim: a persistent-failure plan that pre-recovery ended runs
// Faulted now completes every run, marks the TeraHeap runs Recovered, and
// — because failed regions stay readable and salvage remaps every
// reference — produces exactly the checksums of a fault-free execution.
func TestChaosRecoversFromPersistentRegionFailure(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("two full chaos schedules: skipped in -short mode and under the race detector (deterministic-replay property, no concurrency; the package would exceed the default test timeout)")
	}
	plan, err := fault.ParsePlan("seed=1,region-fail=0.02")
	if err != nil {
		t.Fatal(err)
	}
	res := RunChaos(plan)
	if res.Panicked() {
		t.Fatalf("chaos run panicked:\n%s", res.Format())
	}
	_, recovered, _, faulted, oom, _ := res.Counts()
	if faulted != 0 || oom != 0 {
		t.Fatalf("faulted=%d oom=%d under a survivable plan, want 0/0:\n%s", faulted, oom, res.Format())
	}
	if recovered == 0 {
		t.Fatalf("no run recovered under a persistent region-failure plan:\n%s", res.Format())
	}
	base := RunChaos(nil)
	for i, run := range res.Runs {
		if run.Checksum != base.Runs[i].Checksum {
			t.Errorf("%s: checksum %g after salvage != fault-free %g — recovery changed the answer",
				run.Name, run.Checksum, base.Runs[i].Checksum)
		}
	}
	for _, run := range res.Runs {
		if run.Recovered() && (run.Recovery.RegionsQuarantined == 0 || run.Recovery.SalvagedObjects == 0) {
			t.Errorf("%s marked recovered without salvage activity: %s", run.Name, run.Recovery)
		}
	}
}
