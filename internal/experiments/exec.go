package experiments

import (
	"fmt"

	"github.com/carv-repro/teraheap-go/internal/runner"
)

// Spec is one submission to the parallel experiment executor: a tagged
// union over the two run kinds plus free-form closures (barrier- and
// ablation-style experiments). Exactly one field must be set.
type Spec struct {
	Spark  *SparkRun
	Giraph *GiraphRun
	// Fn covers experiments that are not a plain RunSpark/RunGiraph
	// (synthetic ablations, microbenchmarks) but still return a RunResult.
	Fn func() RunResult
}

// run executes the spec. Every run is fully self-contained (own clock,
// heap, collector, devices), so specs may execute concurrently.
func (s Spec) run() RunResult {
	switch {
	case s.Spark != nil:
		return RunSpark(*s.Spark)
	case s.Giraph != nil:
		return RunGiraph(*s.Giraph)
	case s.Fn != nil:
		return s.Fn()
	}
	panic(fmt.Sprintf("experiments: empty Spec %+v", s))
}

// label names a spec for the failed-run result when its goroutine panics
// (the run's real name is minted inside RunSpark/RunGiraph, which never
// returned).
func (s Spec) label(i int) string {
	switch {
	case s.Spark != nil:
		return fmt.Sprintf("%s/%s/%.0fGB", s.Spark.Workload, s.Spark.Runtime.SparkLabel(), s.Spark.DramGB)
	case s.Giraph != nil:
		return fmt.Sprintf("%s/%.0fGB", s.Giraph.Workload, s.Giraph.DramGB)
	}
	return fmt.Sprintf("spec-%d", i)
}

// SparkSpec wraps a SparkRun as a Spec.
func SparkSpec(r SparkRun) Spec { return Spec{Spark: &r} }

// GiraphSpec wraps a GiraphRun as a Spec.
func GiraphSpec(r GiraphRun) Spec { return Spec{Giraph: &r} }

// RunAll executes the specs across the executor's default worker pool
// and returns results in submission order, so figure formatting over the
// result slice is byte-identical to serial execution.
func RunAll(specs []Spec) []RunResult {
	return RunAllWorkers(specs, runner.DefaultWorkers())
}

// RunAllWorkers is RunAll with an explicit worker count (tests, the
// benchmark suite). workers <= 0 means GOMAXPROCS.
//
// A run that panics does not kill the suite: the executor recovers it into
// a failed-run result (name + error) in that run's slot, so the merged
// output stays deterministic and the remaining runs complete.
func RunAllWorkers(specs []Spec, workers int) []RunResult {
	return runner.DoSafe(len(specs), workers, func(i int) RunResult {
		return specs[i].run()
	}, func(i int, v any) RunResult {
		res := RunResult{Name: specs[i].label(i), Failed: true, FailErr: fmt.Sprint(v)}
		noteOutcome(res)
		return res
	})
}
