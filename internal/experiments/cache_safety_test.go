package experiments

import (
	"testing"

	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/workloads"
)

// snapshotGraph deep-copies a graph's adjacency so mutations to the
// original are detectable.
func snapshotGraph(g *workloads.Graph) *workloads.Graph {
	cp := &workloads.Graph{N: g.N, M: g.M, Adj: make([][]int32, len(g.Adj))}
	for v, es := range g.Adj {
		cp.Adj[v] = append([]int32(nil), es...)
	}
	return cp
}

func graphsEqual(a, b *workloads.Graph) bool {
	if a.N != b.N || a.M != b.M || len(a.Adj) != len(b.Adj) {
		return false
	}
	for v := range a.Adj {
		if len(a.Adj[v]) != len(b.Adj[v]) {
			return false
		}
		for j := range a.Adj[v] {
			if a.Adj[v][j] != b.Adj[v][j] {
				return false
			}
		}
	}
	return true
}

// TestCachedDatasetsSurviveRuns enforces the memo cache's sharing
// contract: a full PR run and a full SSSP run leave their cached input
// graphs bit-identical, so concurrent runs can safely share one dataset
// instance.
func TestCachedDatasetsSurviveRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload runs in -short mode")
	}
	workloads.ResetCaches()
	defer workloads.ResetCaches()

	// Materialize the inputs PR (seed 101) and SSSP (seed 103) will use,
	// through the same sizing helpers RunSpark uses.
	prGraph := graphFromBytes(101, GB(sparkSpecs["PR"].datasetGB))
	ssspGraph := graphFromBytes(103, GB(sparkSpecs["SSSP"].datasetGB))
	prSnap := snapshotGraph(prGraph)
	ssspSnap := snapshotGraph(ssspGraph)

	r1 := RunSpark(SparkRun{Workload: "PR", Runtime: rt.KindTH, DramGB: 32})
	r2 := RunSpark(SparkRun{Workload: "SSSP", Runtime: rt.KindTH, DramGB: 37})
	if r1.OOM || r2.OOM {
		t.Fatalf("unexpected OOM: PR=%v SSSP=%v", r1.OOM, r2.OOM)
	}

	// The runs must have hit the cache (shared instance)...
	if g := graphFromBytes(101, GB(sparkSpecs["PR"].datasetGB)); g != prGraph {
		t.Errorf("PR run regenerated its graph instead of sharing the cached one")
	}
	if g := graphFromBytes(103, GB(sparkSpecs["SSSP"].datasetGB)); g != ssspGraph {
		t.Errorf("SSSP run regenerated its graph instead of sharing the cached one")
	}
	// ...and left it untouched.
	if !graphsEqual(prGraph, prSnap) {
		t.Errorf("PR run mutated the shared cached graph")
	}
	if !graphsEqual(ssspGraph, ssspSnap) {
		t.Errorf("SSSP run mutated the shared cached graph")
	}
}
