package experiments

import (
	"reflect"
	"testing"

	"github.com/carv-repro/teraheap-go/internal/giraph"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/runner"
)

// withWorkers runs f with the executor's default worker count pinned to j.
func withWorkers(t *testing.T, j int, f func()) {
	t.Helper()
	prev := runner.SetDefaultWorkers(j)
	defer runner.SetDefaultWorkers(prev)
	f()
}

// TestParallelDeterminism is the determinism guard: the same figure run
// serially and at -j 4 must produce deep-equal results — identical
// simulated breakdowns, GC statistics, and formatted rows — because the
// executor merges results in submission order and every run owns its
// clock, heap, and devices.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig6 runs in -short mode")
	}
	var serialSpark, parSpark Fig6SparkResult
	withWorkers(t, 1, func() { serialSpark = Fig6Spark("PR") })
	withWorkers(t, 4, func() { parSpark = Fig6Spark("PR") })
	if !reflect.DeepEqual(serialSpark.Runs, parSpark.Runs) {
		t.Errorf("Fig6Spark(PR): serial and -j 4 runs differ")
	}
	if !reflect.DeepEqual(serialSpark.Rows, parSpark.Rows) {
		t.Errorf("Fig6Spark(PR): serial and -j 4 rows differ")
	}

	var serialGiraph, parGiraph Fig6SparkResult
	withWorkers(t, 1, func() { serialGiraph = Fig6Giraph("PR") })
	withWorkers(t, 4, func() { parGiraph = Fig6Giraph("PR") })
	if !reflect.DeepEqual(serialGiraph.Runs, parGiraph.Runs) {
		t.Errorf("Fig6Giraph(PR): serial and -j 4 runs differ")
	}
	if !reflect.DeepEqual(serialGiraph.Rows, parGiraph.Rows) {
		t.Errorf("Fig6Giraph(PR): serial and -j 4 rows differ")
	}
}

// TestG1MixedGCDeterminism pins the mixed-GC collection-set evacuation
// order fix: repeated in-process RL/G1 runs at tight DRAM (which exercise
// mixed collections) must produce identical results. Before the fix the
// evacuation loop iterated a Go map, so placement — and with it the whole
// downstream simulation — varied run to run.
func TestG1MixedGCDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload runs in -short mode")
	}
	a := RunSpark(SparkRun{Workload: "RL", Runtime: rt.KindG1, DramGB: 63})
	b := RunSpark(SparkRun{Workload: "RL", Runtime: rt.KindG1, DramGB: 63})
	if !reflect.DeepEqual(a, b) {
		t.Errorf("repeated RL/G1 runs differ: total %v vs %v, checksum %v vs %v",
			a.B.Total(), b.B.Total(), a.Checksum, b.Checksum)
	}
}

// TestRunAllWorkersOrder pins that results come back in submission order
// regardless of worker count.
func TestRunAllWorkersOrder(t *testing.T) {
	specs := []Spec{
		SparkSpec(SparkRun{Workload: "TR", Runtime: rt.KindTH, DramGB: 45}),
		SparkSpec(SparkRun{Workload: "TR", Runtime: rt.KindPS, DramGB: 45}),
		GiraphSpec(GiraphRun{Workload: "BFS", Mode: giraph.ModeTH, DramGB: 74}),
	}
	serial := RunAllWorkers(specs, 1)
	par := RunAllWorkers(specs, 4)
	if len(serial) != len(specs) || len(par) != len(specs) {
		t.Fatalf("result lengths: serial=%d par=%d want %d", len(serial), len(par), len(specs))
	}
	for i := range serial {
		if serial[i].Name != par[i].Name {
			t.Errorf("result %d: serial=%q parallel=%q", i, serial[i].Name, par[i].Name)
		}
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("RunAllWorkers: serial and parallel results differ")
	}
}
