package experiments

import (
	"strings"

	"github.com/carv-repro/teraheap-go/internal/metrics"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/storage"
)

// Fig12a compares Spark-SD and TeraHeap on the NVM server (Figure 12a):
// the off-heap cache / H2 live on Optane in App Direct mode.
func Fig12a() string {
	workloads := SparkWorkloads()
	var specs []Spec
	for _, w := range workloads {
		dram := sparkSpecs[w].thDramGB[len(sparkSpecs[w].thDramGB)-1]
		specs = append(specs,
			SparkSpec(SparkRun{Workload: w, Runtime: rt.KindPS, DramGB: dram, Device: storage.NVM}),
			SparkSpec(SparkRun{Workload: w, Runtime: rt.KindTH, DramGB: dram, Device: storage.NVM}))
	}
	runs := RunAll(specs)
	var sb strings.Builder
	for i, w := range workloads {
		sd, th := runs[2*i], runs[2*i+1]
		rows := []metrics.Row{
			sd.RowNamed(w + "/SD(nvm)"),
			th.RowNamed(w + "/TH(nvm)"),
		}
		sb.WriteString(metrics.FormatBreakdown("Fig 12a "+w+" (Spark-SD vs TH, NVM)", rows, true))
	}
	return sb.String()
}

// Fig12b compares Spark-MO (heap over NVM memory mode) and TeraHeap
// (Figure 12b).
func Fig12b() string {
	workloads := SparkWorkloads()
	var specs []Spec
	for _, w := range workloads {
		dram := sparkSpecs[w].thDramGB[len(sparkSpecs[w].thDramGB)-1]
		specs = append(specs,
			SparkSpec(SparkRun{Workload: w, Runtime: rt.KindMO, DramGB: dram, Device: storage.NVM}),
			SparkSpec(SparkRun{Workload: w, Runtime: rt.KindTH, DramGB: dram, Device: storage.NVM}))
	}
	runs := RunAll(specs)
	var sb strings.Builder
	for i, w := range workloads {
		mo, th := runs[2*i], runs[2*i+1]
		rows := []metrics.Row{
			noteRow(mo.RowNamed(w+"/MO"), devNote(mo.DevStats)),
			noteRow(th.RowNamed(w+"/TH"), devNote(th.DevStats)),
		}
		sb.WriteString(metrics.FormatBreakdown("Fig 12b "+w+" (Spark-MO vs TH, NVM)", rows, true))
	}
	return sb.String()
}

// Fig12c compares Panthera and TeraHeap (Figure 12c): both use 16 GB of
// DRAM and NVM for the rest (64 GB heap for Panthera, H2 on NVM for TH).
func Fig12c() string {
	// The paper's Fig 12c workload list (KM replaces TR and RL). Panthera
	// holds everything on its 64 GB hybrid heap, so datasets are sized to
	// fit it (the Panthera paper's own evaluation scale); TeraHeap runs
	// the same datasets with the same DRAM.
	list := []string{"PR", "CC", "SSSP", "SVD", "LR", "LgR", "KM", "SVM", "BC"}
	var specs []Spec
	for _, w := range list {
		scale := 30.0 / sparkSpecs[w].datasetGB
		if scale > 1 {
			scale = 1
		}
		specs = append(specs,
			SparkSpec(SparkRun{Workload: w, Runtime: rt.KindPanthera, DramGB: 16, Device: storage.NVM, DatasetScale: scale}),
			SparkSpec(SparkRun{Workload: w, Runtime: rt.KindTH, DramGB: 32, Device: storage.NVM, DatasetScale: scale}))
	}
	runs := RunAll(specs)
	var sb strings.Builder
	for i, w := range list {
		p, th := runs[2*i], runs[2*i+1]
		rows := []metrics.Row{
			noteRow(p.RowNamed(w+"/Panthera"), devNote(p.DevStats)),
			noteRow(th.RowNamed(w+"/TH"), devNote(th.DevStats)),
		}
		sb.WriteString(metrics.FormatBreakdown("Fig 12c "+w+" (Panthera vs TH, NVM)", rows, true))
	}
	return sb.String()
}

// noteRow attaches the device-traffic note to a healthy row; faulted
// rows keep the failure note RowNamed already set.
func noteRow(r metrics.Row, note string) metrics.Row {
	if r.Note == "" {
		r.Note = note
	}
	return r
}

func devNote(s storage.Stats) string {
	return metricsCompact(s)
}

func metricsCompact(s storage.Stats) string {
	return "devR=" + mbs(s.BytesRead) + " devW=" + mbs(s.BytesWritten)
}

func mbs(b int64) string {
	switch {
	case b >= storage.MB:
		return itoa(b/storage.MB) + "MB"
	case b >= storage.KB:
		return itoa(b/storage.KB) + "KB"
	}
	return itoa(b) + "B"
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
