package experiments

import (
	"fmt"
	"strings"

	"github.com/carv-repro/teraheap-go/internal/metrics"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/simclock"
)

// WorkerScalingResult captures the GC worker-scaling figure: the Figure 7
// configuration pair (Spark PR at the 80 GB DRAM point, Spark-SD and
// TeraHeap) run at each gang size. Results are grouped per configuration
// in ascending worker order.
type WorkerScalingResult struct {
	Workers []int
	// Rows holds one entry per (config, workers) pair, config-major,
	// workers ascending within a config.
	Rows []metrics.PauseRow
	// Results are the raw runs, parallel to Rows.
	Results []RunResult
}

// DefaultWorkerCounts are the gang sizes of the worker-scaling figure.
// Each divides the next, which pins the round-robin shards at 2w to
// refine the shards at w and therefore max-over-workers — and with it the
// modeled pause — to be monotone non-increasing left to right.
func DefaultWorkerCounts() []int { return []int{1, 2, 4, 8} }

// WorkerScaling runs the Figure 7 pair across the given gang sizes (nil
// uses DefaultWorkerCounts). Every run scopes its own RunContext: the
// process default's verification, fault, and writeback settings are
// inherited; only GCWorkers varies.
func WorkerScaling(counts []int) WorkerScalingResult {
	if len(counts) == 0 {
		counts = DefaultWorkerCounts()
	}
	configs := []struct {
		label   string
		runtime rt.Kind
	}{
		{"spark-pr/sd/80GB", rt.KindPS},
		{"spark-pr/th/80GB", rt.KindTH},
	}

	base := DefaultContext()
	var specs []Spec
	for _, cfg := range configs {
		for _, w := range counts {
			ctx := &RunContext{
				Verify:         base.Verify,
				FaultPlan:      base.FaultPlan,
				WritebackDepth: base.WritebackDepth,
				GCWorkers:      w,
			}
			specs = append(specs, SparkSpec(SparkRun{
				Workload: "PR", Runtime: cfg.runtime, DramGB: 80, Ctx: ctx,
			}))
		}
	}
	runs := RunAll(specs)

	res := WorkerScalingResult{Workers: append([]int(nil), counts...)}
	i := 0
	for _, cfg := range configs {
		for _, w := range counts {
			r := runs[i]
			i++
			res.Rows = append(res.Rows, metrics.PauseRow{
				Name:    cfg.label,
				Workers: w,
				MinorGC: r.B.Get(simclock.MinorGC),
				MajorGC: r.B.Get(simclock.MajorGC),
				Total:   r.B.Total(),
			})
			res.Results = append(res.Results, r)
		}
	}
	return res
}

// Monotone reports whether, within every configuration, total GC time is
// non-increasing as the gang grows — the figure's acceptance property.
// The first violation (if any) is returned for the report.
func (r WorkerScalingResult) Monotone() (bool, string) {
	prev := map[string]metrics.PauseRow{}
	for _, row := range r.Rows {
		if p, ok := prev[row.Name]; ok {
			if row.MinorGC+row.MajorGC > p.MinorGC+p.MajorGC {
				return false, fmt.Sprintf("%s: GC time grew from workers=%d (%v) to workers=%d (%v)",
					row.Name, p.Workers, p.MinorGC+p.MajorGC, row.Workers, row.MinorGC+row.MajorGC)
			}
		}
		prev[row.Name] = row
	}
	return true, ""
}

// CSV renders the figure as plot-ready rows.
func (r WorkerScalingResult) CSV() string { return metrics.CSVPauseScaling(r.Rows) }

// Format renders the worker-scaling table plus the monotonicity verdict.
func (r WorkerScalingResult) Format() string {
	var sb strings.Builder
	sb.WriteString(metrics.FormatPauseScaling(
		"GC worker scaling: Spark PR, 64GB heap, gang 1-8", r.Rows))
	if ok, viol := r.Monotone(); ok {
		sb.WriteString("monotone: GC time non-increasing with gang size in every config\n")
	} else {
		fmt.Fprintf(&sb, "monotone: VIOLATED — %s\n", viol)
	}
	return sb.String()
}
