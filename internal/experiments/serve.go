package experiments

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"github.com/carv-repro/teraheap-go/internal/fault"
	"github.com/carv-repro/teraheap-go/internal/gc"
	"github.com/carv-repro/teraheap-go/internal/metrics"
	"github.com/carv-repro/teraheap-go/internal/recovery"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/server"
	"github.com/carv-repro/teraheap-go/internal/simclock"
)

// DefaultServeDramGB is the serve plane's machine size: the heap after
// the DR2 reserve comfortably over-provisions the default store (~22 GB),
// so the baselines survive — slowly — instead of OOMing, which is the
// regime where tail latency, not completion, differentiates the kinds.
const DefaultServeDramGB = 56.0

// ServeRun configures one serve-mode run.
type ServeRun struct {
	Kind   rt.Kind
	DramGB float64 // 0 → DefaultServeDramGB
	Cfg    server.Config
	// Recovery overrides the self-healing policy (KindTH only; nil keeps
	// the default). The chaos serve schedule tightens the breaker so a
	// trip and re-admission both happen inside one run.
	Recovery *recovery.Policy
	// Ctx scopes the run's cross-cutting configuration; nil uses the
	// process default.
	Ctx *RunContext
}

// RunServe executes one serve configuration: it sizes a session for the
// requested kind exactly like the Spark runs do, hands it to server.Run,
// and maps the outcome onto the shared RunResult shape.
func RunServe(cfg ServeRun) RunResult {
	if cfg.DramGB == 0 {
		cfg.DramGB = DefaultServeDramGB
	}
	heapGB := cfg.DramGB - DR2GB
	if heapGB < 2 {
		heapGB = 2
	}
	storeGB := float64(cfg.Cfg.StoreBytes()) / float64(Scale)

	rctx := cfg.Ctx.orDefault()
	sspec := rt.Spec{
		Clock:          simclock.New(),
		Verify:         rctx.Verify,
		FaultPlan:      rctx.FaultPlan,
		GCWorkers:      rctx.GCWorkers,
		WritebackDepth: rctx.WritebackDepth,
		Recovery:       cfg.Recovery,
	}
	sspec.Kind = cfg.Kind
	switch cfg.Kind {
	case rt.KindPS, rt.KindG1:
		sspec.H1Size = GB(heapGB)
	case rt.KindTH, rt.KindG1TH, rt.KindNG2C, rt.KindDeca:
		h1, thCfg := rt.THSizing{
			BudgetGB:    heapGB,
			H1Frac:      0.8,
			TunedAtFrac: 0.8,
			DatasetGB:   storeGB,
			CacheGB:     DR2GB,
			BytesPerGB:  Scale,
		}.Resolve()
		sspec.H1Size = h1
		sspec.TH = &thCfg
	case rt.KindMO:
		sspec.Kind = rt.KindMO
		sspec.H1Size = GB(storeGB*3.2 + 16)
		sspec.DRAMCacheBytes = GB(cfg.DramGB - 2)
	case rt.KindPanthera:
		sspec.Kind = rt.KindPanthera
		sspec.H1Size = GB(64)
		sspec.DRAMOldBytes = GB(6)
	default:
		panic(fmt.Sprintf("experiments: unknown runtime kind %v (valid: %s)",
			cfg.Kind, strings.Join(rt.KindNames(), " ")))
	}
	name := fmt.Sprintf("serve/%s/%.0fGB/r%gk", cfg.Kind, cfg.DramGB, cfg.Cfg.RatePerSec/1000)

	ses := rt.NewSession(sspec)
	stats, err := server.Run(ses, cfg.Cfg)
	ses.Device.DrainWriteback()

	res := RunResult{Name: name, Serve: stats}
	res.B = ses.Clock.Breakdown()
	res.GCStats = *ses.Runtime.GCStats()
	res.DevStats = ses.Device.Stats()
	if ses.TH != nil {
		s := ses.TH.Stats()
		res.THStats = &s
		res.PageFaults = ses.TH.Mapped().Cache().Faults
		res.SeqFaults = ses.TH.Mapped().Cache().SeqFaults
		res.FinalLowThreshold = ses.TH.LowThresholdNow()
		res.H2UsedBytes = ses.TH.UsedBytes()
	}
	res.FaultStats = ses.Injector.Stats()
	res.Recovery = ses.RecoveryStats()
	if err != nil {
		var oom *gc.OOMError
		var flt *gc.FaultError
		switch {
		case errors.As(err, &flt):
			res.Faulted = true
			res.FailErr = flt.Error()
		case errors.As(err, &oom) || ses.Runtime.OOM() != nil:
			res.OOM = true
		default:
			panic(fmt.Sprintf("experiments: %s failed: %v", name, err))
		}
	}
	if e := ses.Fault(); e != nil && !res.Faulted {
		res.Faulted = true
		res.FailErr = e.Error()
	}
	noteOutcome(res)
	return res
}

// DefaultServeRates are the sweep's offered arrival rates: under-loaded,
// the default operating point, and 3x overload where admission control
// must shed.
func DefaultServeRates() []float64 { return []float64{20000, 60000, 180000} }

// serveKinds resolves the sweep's kind order from the config's kinds=
// subset; empty means every registered kind, in registry order (which
// begins with the paper Table 2 order). Unknown names panic — ParseConfig
// already rejects them, so reaching one here is programmer error.
func serveKinds(cfg server.Config) []rt.Kind {
	if len(cfg.Kinds) == 0 {
		infos := rt.Kinds()
		out := make([]rt.Kind, len(infos))
		for i, e := range infos {
			out[i] = e.Kind
		}
		return out
	}
	out := make([]rt.Kind, 0, len(cfg.Kinds))
	for _, n := range cfg.Kinds {
		k, ok := rt.KindByName(n)
		if !ok {
			panic(fmt.Sprintf("experiments: unknown serve kind %q (valid: %s)",
				n, strings.Join(rt.KindNames(), " ")))
		}
		out = append(out, k)
	}
	return out
}

// ServeResult is the serve figure: every runtime kind at every offered
// rate, kind-major with rates ascending within a kind.
type ServeResult struct {
	Rates   []float64
	Rows    []metrics.ServeRow
	Results []RunResult
}

// ServeSweep runs the arrival-rate x runtime-kind sweep on the base
// config (rates nil uses DefaultServeRates). The sweep inherits the
// process-default RunContext, so -verify/-fault/-gc-workers/-wb-depth
// apply; like the worker-scaling figure it is deliberately not part of
// "all".
func ServeSweep(base server.Config, rates []float64) ServeResult {
	if len(rates) == 0 {
		rates = DefaultServeRates()
	}
	kinds := serveKinds(base)
	var specs []Spec
	for _, k := range kinds {
		for _, r := range rates {
			cfg := base
			cfg.RatePerSec = r
			run := ServeRun{Kind: k, Cfg: cfg}
			specs = append(specs, Spec{Fn: func() RunResult { return RunServe(run) }})
		}
	}
	runs := RunAll(specs)

	res := ServeResult{Rates: append([]float64(nil), rates...), Results: runs}
	i := 0
	for range kinds {
		for _, rate := range rates {
			res.Rows = append(res.Rows, serveRow(runs[i], rate))
			i++
		}
	}
	return res
}

// serveRow flattens a serve run into its figure row.
func serveRow(r RunResult, rate float64) metrics.ServeRow {
	row := metrics.ServeRow{Name: r.Name, Rate: rate, OOM: r.OOM, Fault: r.Faulted || r.Failed}
	if s := r.Serve; s != nil {
		row.Served = s.Served
		row.Shed = s.Shed
		row.Retries = s.Retries
		row.P50, row.P99, row.P999 = s.P50, s.P99, s.P999
		row.SLOViol = s.SLOViolations
		row.PauseV = s.PauseViolations
		row.RPS = s.ThroughputRPS
	}
	if row.Fault {
		row.Note = firstLine(r.FailErr)
	}
	if r.Recovered() {
		row.Note = strings.TrimSpace("RECOVERED " + row.Note)
	}
	return row
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// Format renders the serve figure.
func (r ServeResult) Format() string {
	var sb strings.Builder
	sb.WriteString(metrics.FormatServeTable(
		"serve: open-loop KV/analytics plane, rate x runtime kind", r.Rows))
	sb.WriteString("sloViol counts replies served past the deadline; shed requests never enter service\n")
	return sb.String()
}

// CSV renders the serve figure as plot-ready rows.
func (r ServeResult) CSV() string { return metrics.CSVServe(r.Rows) }

// ChaosServeResult is the chaos serve schedule's report. It reuses the
// chaos outcome buckets; Format adds the serve plane's SLO counters and
// the per-window throughput trajectory.
type ChaosServeResult struct {
	ChaosResult
}

// chaosServePolicy tightens the breaker so that, under the default chaos
// serve plan, a trip AND a cooldown re-admission both land inside one
// run — the schedule's acceptance property is throughput recovering
// after H2 is re-admitted.
func chaosServePolicy() *recovery.Policy {
	return &recovery.Policy{
		Enabled:           true,
		BreakerK:          2,
		WindowOps:         400000,
		CooldownOps:       30000,
		ScrubRegionsPerGC: 1,
		ValidateRepair:    true,
	}
}

// DefaultChaosServePlan is the brownout + region-fail schedule the serve
// plane must survive: periodic device brownouts stretch service times
// into the deadline (shedding), persistent region failures force salvage
// and breaker trips (degraded replies and retries), and silent corruption
// leaves tombstones for reads to trip over.
func DefaultChaosServePlan() *fault.Plan {
	p, err := fault.ParsePlan("seed=1,brownout=2000:300x8,region-fail=0.05,wb-fail=0.05,torn=0.05,corrupt=0.05")
	if err != nil {
		panic(fmt.Sprintf("experiments: default chaos serve plan: %v", err))
	}
	return p
}

// ChaosServe runs the chaos serve schedule under the given plan (nil uses
// DefaultChaosServePlan) with the verifier forced on: the TeraHeap pair at
// the default and 3x-overload rates around the PS baseline. Like RunChaos
// it scopes everything through an explicit RunContext.
func ChaosServe(plan *fault.Plan, base server.Config) ChaosServeResult {
	if plan == nil {
		plan = DefaultChaosServePlan()
	}
	ctx := &RunContext{Verify: true, FaultPlan: plan}
	pol := chaosServePolicy()
	hi := base
	hi.RatePerSec = base.RatePerSec * 3
	runs := []ServeRun{
		{Kind: rt.KindTH, Cfg: base, Recovery: pol, Ctx: ctx},
		{Kind: rt.KindPS, Cfg: base, Ctx: ctx},
		{Kind: rt.KindTH, Cfg: hi, Recovery: pol, Ctx: ctx},
	}
	var specs []Spec
	for _, r := range runs {
		run := r
		specs = append(specs, Spec{Fn: func() RunResult { return RunServe(run) }})
	}
	return ChaosServeResult{ChaosResult{Plan: plan, Runs: RunAll(specs)}}
}

// ThroughputRecovered reports whether a run's serve windows show the
// degraded-then-recovered shape: the last window's throughput back above
// half the peak window's. Runs without windows trivially fail.
func throughputRecovered(s *server.Stats) (last, peak float64, ok bool) {
	if s == nil || len(s.Windows) == 0 {
		return 0, 0, false
	}
	for _, w := range s.Windows {
		if rps := w.RPS(); rps > peak {
			peak = rps
		}
	}
	last = s.Windows[len(s.Windows)-1].RPS()
	return last, peak, peak > 0 && last >= 0.5*peak
}

// Format renders the chaos serve report: one status line per run with the
// SLO counters, the recovery line for salvaged runs, the per-window
// throughput trajectory with its recovery verdict, and schedule totals.
func (r ChaosServeResult) Format() string {
	plan := "(no faults)"
	if r.Plan != nil {
		plan = r.Plan.String()
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== chaos-serve: %d runs under plan [%s], verifier on ==\n", len(r.Runs), plan)
	var totShed, totRetries, totSLO int64
	for _, run := range r.Runs {
		status := "ok"
		switch {
		case run.Failed:
			status = "PANIC"
		case run.Faulted:
			status = "FAULTED"
		case run.OOM:
			status = "OOM"
		case run.Recovered():
			status = "RECOVERED"
		case run.Degraded():
			status = "degraded"
		}
		if s := run.Serve; s != nil {
			totShed += s.Shed
			totRetries += s.Retries
			totSLO += s.SLOViolations
			fmt.Fprintf(&sb, "%-24s %-9s %s\n", run.Name, status, s.String())
			if run.Recovered() {
				fmt.Fprintf(&sb, "  recovery: %s\n", run.Recovery.String())
			}
			sb.WriteString("  windows(rps):")
			for _, w := range s.Windows {
				fmt.Fprintf(&sb, " %.0f", w.RPS())
			}
			if last, peak, ok := throughputRecovered(s); ok {
				fmt.Fprintf(&sb, "  throughput: recovered (last %.0f >= 50%% of peak %.0f)\n", last, peak)
			} else {
				fmt.Fprintf(&sb, "  throughput: NOT RECOVERED (last %.0f, peak %.0f)\n", last, peak)
			}
		} else {
			fmt.Fprintf(&sb, "%-24s %-9s total=%-14v %s\n", run.Name, status,
				run.B.Total().Round(time.Microsecond), run.FaultStats.String())
		}
		if run.FailErr != "" {
			fmt.Fprintf(&sb, "  cause: %s\n", firstLine(run.FailErr))
		}
	}
	fmt.Fprintf(&sb, "totals: shed=%d retries=%d slo-violations=%d\n", totShed, totRetries, totSLO)
	healthy, recovered, degraded, faulted, oom, panicked := r.Counts()
	fmt.Fprintf(&sb, "healthy=%d recovered=%d degraded=%d faulted=%d oom=%d panicked=%d\n",
		healthy, recovered, degraded, faulted, oom, panicked)
	return sb.String()
}
