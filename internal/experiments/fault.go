package experiments

import (
	"github.com/carv-repro/teraheap-go/internal/fault"
)

// faultPlan, when set, injects faults into every subsequently constructed
// run (the teraheap-bench -fault flag). The plan is shared immutable
// configuration; each run builds its own fault.Injector from it, so
// decisions depend only on that run's operation stream — worker
// interleaving across parallel runs cannot perturb them.
var faultPlan *fault.Plan

// SetFaultPlan installs the fault plan for subsequently constructed runs
// (nil disables injection) and returns the previous plan.
func SetFaultPlan(p *fault.Plan) *fault.Plan {
	prev := faultPlan
	faultPlan = p
	return prev
}

// FaultPlan returns the active fault plan, or nil.
func FaultPlan() *fault.Plan { return faultPlan }

// newRunInjector builds this run's injector (nil when fault-free).
func newRunInjector() *fault.Injector { return fault.NewInjector(faultPlan) }

// applyFault attaches the injector to runtimes that support it (rt.JVM in
// all its configurations; the G1 baseline only sees device-level faults).
func applyFault(r any, in *fault.Injector) {
	if in == nil {
		return
	}
	if fi, ok := r.(interface{ SetFaultInjector(*fault.Injector) }); ok {
		fi.SetFaultInjector(in)
	}
}

// runtimeFault reads the latched storage fault from runtimes that track one.
func runtimeFault(r any) error {
	if f, ok := r.(interface{ Fault() error }); ok {
		return f.Fault()
	}
	return nil
}
