package core

// Extensions beyond the paper's evaluated system, implementing the future
// work it proposes:
//
//   - Dynamic threshold adjustment (§7.2: "there may be benefits in
//     setting the low and high thresholds dynamically, we leave this for
//     future work").
//   - Size-aware object placement in H2 (§7.3: "future work can
//     investigate object placement policies for H2 that take into account
//     object size to further improve space efficiency"): big objects go
//     to a segregated region chain per label, so a large dead array can
//     no longer pin a region full of small live objects.

// Extension knobs (zero values disable both extensions).
type Extensions struct {
	// DynamicThresholds enables the adaptive controller: consecutive
	// high-threshold trips lower the low threshold (move more per forced
	// cycle); sustained calm raises it back (move less, keep data in H1).
	DynamicThresholds bool
	// DynamicFloor and DynamicCeil bound the adaptive low threshold.
	DynamicFloor float64
	DynamicCeil  float64

	// SizeSegregatedRegions places objects of at least BigObjectWords in
	// a separate region chain for their label.
	SizeSegregatedRegions bool
	// BigObjectWords is the size threshold (0 → a card segment's worth).
	BigObjectWords int
}

// bigLabelBit tags the segregated chain of a label. Labels are
// framework-assigned small integers; the top bit is reserved for the
// placement policy.
const bigLabelBit = uint64(1) << 63

// placementLabel maps (label, object size) to the region chain it should
// be placed in.
func (th *TeraHeap) placementLabel(label uint64, sizeWords int) uint64 {
	if !th.cfg.Ext.SizeSegregatedRegions {
		return label
	}
	big := th.cfg.Ext.BigObjectWords
	if big <= 0 {
		big = int(th.cfg.CardSegmentSize / 8)
	}
	if sizeWords >= big {
		return label | bigLabelBit
	}
	return label
}

// adaptThresholds is the dynamic controller, run once per major GC after
// the threshold decision.
func (th *TeraHeap) adaptThresholds(tripped bool) {
	if !th.cfg.Ext.DynamicThresholds {
		return
	}
	floor := th.cfg.Ext.DynamicFloor
	if floor == 0 {
		floor = 0.25
	}
	ceil := th.cfg.Ext.DynamicCeil
	if ceil == 0 {
		ceil = th.cfg.HighThreshold - 0.10
	}
	if tripped {
		th.consecTrips++
		th.calmCycles = 0
		if th.consecTrips >= 2 && th.cfg.LowThreshold > floor {
			// Sustained pressure: evacuate deeper each forced cycle.
			th.cfg.LowThreshold -= 0.05
			if th.cfg.LowThreshold < floor {
				th.cfg.LowThreshold = floor
			}
			th.stats.DynamicAdjustments++
		}
	} else {
		th.consecTrips = 0
		th.calmCycles++
		if th.calmCycles >= 4 && th.cfg.LowThreshold > 0 && th.cfg.LowThreshold < ceil {
			// Sustained calm: keep more data in H1.
			th.cfg.LowThreshold += 0.05
			if th.cfg.LowThreshold > ceil {
				th.cfg.LowThreshold = ceil
			}
			th.stats.DynamicAdjustments++
		}
	}
}

// LowThresholdNow exposes the (possibly adapted) low threshold.
func (th *TeraHeap) LowThresholdNow() float64 { return th.cfg.LowThreshold }
