package core

import (
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// Salvage support: the core-side primitives the recovery layer
// (internal/recovery) composes into a quarantine-and-salvage pass when a
// region's backing blocks fail. The split of responsibilities: core knows
// the region geometry, checksums, and metadata (this file); the recovery
// layer owns the policy, the H1 re-materialization, and root/H1-field
// remapping (it holds the collector, which core must not import).

// SalvageObject describes one object in a failed region, in address order.
type SalvageObject struct {
	Addr      vm.Addr
	SizeWords int
	// Unreadable marks objects overlapping a silently-corrupted span: the
	// device never wrote their image, so they must be tombstoned, never
	// re-materialized.
	Unreadable bool
}

// SalvageObjects parses the failed region id into its object list using
// the costless peek path (the region's data — minus any corrupt spans —
// is still readable; pricing happens when the survivors are actually
// copied out). Returns nil if id is not a failed, unsalvaged region.
func (th *TeraHeap) SalvageObjects(id int) []SalvageObject {
	if id < 0 || id >= len(th.regions) {
		return nil
	}
	r := th.regions[id]
	if r == nil || !r.failed || r.quarantined {
		return nil
	}
	var objs []SalvageObject
	for a := r.start; a < r.top; {
		size := th.peekSizeWords(a)
		if size <= 0 {
			// A zero-size header can only be the unreserved tail of the
			// region (bump allocation never leaves gaps); stop parsing.
			break
		}
		objs = append(objs, SalvageObject{
			Addr:       a,
			SizeWords:  size,
			Unreadable: r.overlapsBad(a.Word(vm.H2Base), size),
		})
		a += vm.Addr(size * vm.WordSize)
	}
	return objs
}

// RewriteH2Refs rewrites every reference held by a healthy H2 object into
// the dead region: remap returns the target's new address (possibly
// vm.NullAddr for a tombstoned object) and whether the field must change.
// Rewritten fields are charged device stores through the normal mapped
// path (which also keeps the holder region's checksum current); non-null
// new targets live in H1's old generation, so the holder's card segment is
// raised to the backward-reference state the major scan expects. The
// holder regions' dependency edges to the dead region are dropped.
// Returns the number of fields rewritten.
func (th *TeraHeap) RewriteH2Refs(dead int, remap func(vm.Addr) (vm.Addr, bool)) int {
	rewritten := 0
	for _, r := range th.regions {
		if r == nil || r.id == dead || r.empty() || r.quarantined {
			continue
		}
		for a := r.start; a < r.top; {
			size := th.peekSizeWords(a)
			if size <= 0 {
				break
			}
			nrefs := th.peekNumRefs(a)
			for i := 0; i < nrefs; i++ {
				t := th.peekRef(a, i)
				if t.IsNull() {
					continue
				}
				nt, ok := remap(t)
				if !ok {
					continue
				}
				th.mem.SetRefAt(a, i, nt)
				rewritten++
				if !nt.IsNull() {
					// The field now crosses H2→H1 (old gen): record the
					// backward reference so the next major scan finds it.
					th.NoteBackwardRef(a, false)
				}
			}
			a += vm.Addr(size * vm.WordSize)
		}
		if th.cfg.GroupMode == DependencyLists {
			if _, ok := r.deps[dead]; ok {
				delete(r.deps, dead)
				th.stats.DepNodes--
			}
		}
	}
	return rewritten
}
