package core_test

import (
	"testing"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
	"github.com/carv-repro/teraheap-go/internal/workloads"
)

type thEnv struct {
	clock *simclock.Clock
	jvm   *rt.JVM
	node  *vm.Class
	arr   *vm.Class
	meta  *vm.Class // excluded class
}

func newTHEnv(t *testing.T, h1Size int64, mutate func(*core.Config)) *thEnv {
	t.Helper()
	clock := simclock.New()
	classes := vm.NewClassTable()
	e := &thEnv{
		clock: clock,
		node:  classes.MustFixed("Node", 2, 1),
		arr:   classes.MustRefArray("Object[]"),
	}
	e.meta = classes.Register(&vm.Class{Name: "jvm.Class", Kind: vm.KindFixed, NumRefs: 1, NumPrims: 1, Excluded: true})
	cfg := core.DefaultConfig(64 * storage.MB)
	cfg.RegionSize = 64 * storage.KB
	cfg.CardSegmentSize = 4 * storage.KB
	cfg.CacheBytes = 1 * storage.MB
	if mutate != nil {
		mutate(&cfg)
	}
	e.jvm = rt.NewJVM(rt.Options{H1Size: h1Size, TH: &cfg}, classes, clock)
	return e
}

func (e *thEnv) allocNode(t *testing.T, left, right vm.Addr, v uint64) vm.Addr {
	t.Helper()
	a, err := e.jvm.Alloc(e.node)
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	e.jvm.WriteRef(a, 0, left)
	e.jvm.WriteRef(a, 1, right)
	e.jvm.WritePrim(a, 0, v)
	return a
}

// buildPartition builds an array of n nodes under a rooted handle —
// the shape of a cached Spark partition (single-entry root, §3.1).
func (e *thEnv) buildPartition(t *testing.T, n int) *vm.Handle {
	t.Helper()
	arr, err := e.jvm.AllocRefArray(e.arr, n)
	if err != nil {
		t.Fatal(err)
	}
	h := e.jvm.NewHandle(arr)
	for i := 0; i < n; i++ {
		nd := e.allocNode(t, vm.NullAddr, vm.NullAddr, uint64(i))
		e.jvm.WriteRef(h.Addr(), i, nd)
	}
	return h
}

func (e *thEnv) checkPartition(t *testing.T, h *vm.Handle, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		nd := e.jvm.ReadRef(h.Addr(), i)
		if nd.IsNull() {
			t.Fatalf("partition element %d lost", i)
		}
		if v := e.jvm.ReadPrim(nd, 0); v != uint64(i) {
			t.Fatalf("element %d = %d", i, v)
		}
	}
}

func TestTagAndMoveToH2(t *testing.T) {
	e := newTHEnv(t, 1<<20, nil)
	h := e.buildPartition(t, 64)
	e.jvm.TagRoot(h, 7)
	e.jvm.MoveHint(7)
	if err := e.jvm.FullGC(); err != nil {
		t.Fatalf("major GC: %v", err)
	}
	if !e.jvm.InSecondHeap(h.Addr()) {
		t.Fatalf("root not moved to H2: %v", h.Addr())
	}
	// Direct access to H2 objects — no deserialization.
	e.checkPartition(t, h, 64)
	st := e.jvm.TeraHeap().Stats()
	if st.ObjectsMoved < 65 {
		t.Fatalf("objects moved = %d, want >= 65", st.ObjectsMoved)
	}
	// The transitive closure went with the root.
	if e.jvm.InSecondHeap(e.jvm.ReadRef(h.Addr(), 0)) == false {
		t.Fatal("closure element not moved to H2")
	}
}

func TestNoMoveWithoutHintOrPressure(t *testing.T) {
	e := newTHEnv(t, 1<<20, nil)
	h := e.buildPartition(t, 64)
	e.jvm.TagRoot(h, 7)
	if err := e.jvm.FullGC(); err != nil {
		t.Fatal(err)
	}
	if e.jvm.InSecondHeap(h.Addr()) {
		t.Fatal("moved to H2 without h2_move and without pressure")
	}
}

func TestExcludedClassStaysInH1(t *testing.T) {
	e := newTHEnv(t, 1<<20, nil)
	// Partition whose element 0 references a jvm.Class metadata object.
	h := e.buildPartition(t, 8)
	meta, err := e.jvm.Alloc(e.meta)
	if err != nil {
		t.Fatal(err)
	}
	el0 := e.jvm.ReadRef(h.Addr(), 0)
	e.jvm.WriteRef(el0, 1, meta)
	e.jvm.TagRoot(h, 3)
	e.jvm.MoveHint(3)
	if err := e.jvm.FullGC(); err != nil {
		t.Fatal(err)
	}
	el0 = e.jvm.ReadRef(h.Addr(), 0)
	if !e.jvm.InSecondHeap(el0) {
		t.Fatal("element 0 not in H2")
	}
	metaNow := e.jvm.ReadRef(el0, 1)
	if e.jvm.InSecondHeap(metaNow) {
		t.Fatal("excluded metadata class moved to H2")
	}
	if v := e.jvm.ReadPrim(metaNow, 0); v != 0 {
		t.Fatalf("metadata corrupted: %d", v)
	}
}

func TestBackwardRefsSurviveGC(t *testing.T) {
	e := newTHEnv(t, 1<<20, nil)
	h := e.buildPartition(t, 16)
	e.jvm.TagRoot(h, 5)
	e.jvm.MoveHint(5)
	if err := e.jvm.FullGC(); err != nil {
		t.Fatal(err)
	}
	// Mutate an H2 object to reference a fresh H1 (young) object: the
	// post-write barrier must dirty the H2 card so minor GC keeps the
	// young target alive and adjusts the reference.
	el := e.jvm.ReadRef(h.Addr(), 3)
	young := e.allocNode(t, vm.NullAddr, vm.NullAddr, 4242)
	e.jvm.WriteRef(el, 0, young)
	if err := e.jvm.Collector().MinorGC(); err != nil {
		t.Fatal(err)
	}
	back := e.jvm.ReadRef(el, 0)
	if back.IsNull() || e.jvm.InSecondHeap(back) {
		t.Fatalf("backward target wrong: %v", back)
	}
	if v := e.jvm.ReadPrim(back, 0); v != 4242 {
		t.Fatalf("backward target value = %d", v)
	}
	// And across a major GC (the H1 target moves during compaction).
	if err := e.jvm.FullGC(); err != nil {
		t.Fatal(err)
	}
	back = e.jvm.ReadRef(el, 0)
	if v := e.jvm.ReadPrim(back, 0); v != 4242 {
		t.Fatalf("after major GC, backward target value = %d", v)
	}
}

func TestRegionReclamation(t *testing.T) {
	e := newTHEnv(t, 1<<20, nil)
	h := e.buildPartition(t, 128)
	e.jvm.TagRoot(h, 9)
	e.jvm.MoveHint(9)
	if err := e.jvm.FullGC(); err != nil {
		t.Fatal(err)
	}
	th := e.jvm.TeraHeap()
	if th.ActiveRegions() == 0 {
		t.Fatal("no active regions after move")
	}
	used := th.UsedBytes()
	if used == 0 {
		t.Fatal("H2 unused after move")
	}
	// Drop the only reference and collect: the regions die in bulk.
	e.jvm.Release(h)
	if err := e.jvm.FullGC(); err != nil {
		t.Fatal(err)
	}
	if th.UsedBytes() != 0 {
		t.Fatalf("H2 still holds %d bytes after reclamation", th.UsedBytes())
	}
	if th.Stats().RegionsReclaimed == 0 {
		t.Fatal("no regions reclaimed")
	}
}

func TestHighThresholdForcesMove(t *testing.T) {
	e := newTHEnv(t, 1<<19, func(c *core.Config) {
		c.HighThreshold = 0.25 // trip early
		c.LowThreshold = 0     // move all marked objects when tripped
	})
	h := e.buildPartition(t, 1800)
	e.jvm.TagRoot(h, 2)
	// NO MoveHint: rely on the threshold mechanism.
	// First major GC observes occupancy and arms forced movement; the
	// second moves the marked closure.
	if err := e.jvm.FullGC(); err != nil {
		t.Fatal(err)
	}
	if err := e.jvm.FullGC(); err != nil {
		t.Fatal(err)
	}
	if !e.jvm.InSecondHeap(h.Addr()) {
		t.Fatal("high threshold did not force movement")
	}
	if e.jvm.TeraHeap().Stats().HighThresholdTrips == 0 {
		t.Fatal("threshold trip not recorded")
	}
}

func TestDependencyListsBeatUnionFind(t *testing.T) {
	// Build the paper's X -> Y -> Z example (§3.3): after dropping X and
	// Y's external references, dependency lists reclaim X and Y while
	// Z (still referenced from H1) survives; Union-Find groups keep all
	// three alive.
	run := func(mode core.GroupMode) (reclaimed int64) {
		e := newTHEnv(t, 1<<20, func(c *core.Config) {
			c.GroupMode = mode
			c.RegionSize = 16 * storage.KB
		})
		// Three partitions with distinct labels → distinct regions.
		hx := e.buildPartition(t, 48)
		hy := e.buildPartition(t, 48)
		hz := e.buildPartition(t, 48)
		e.jvm.TagRoot(hx, 1)
		e.jvm.TagRoot(hy, 2)
		e.jvm.TagRoot(hz, 3)
		e.jvm.MoveHint(1)
		e.jvm.MoveHint(2)
		e.jvm.MoveHint(3)
		if err := e.jvm.FullGC(); err != nil {
			t.Fatal(err)
		}
		// Wire X -> Y and Y -> Z inside H2.
		e.jvm.WriteRef(e.jvm.ReadRef(hx.Addr(), 0), 0, hy.Addr())
		e.jvm.WriteRef(e.jvm.ReadRef(hy.Addr(), 0), 0, hz.Addr())
		// A minor GC records the new cross-region references via the
		// dirty H2 cards... they are H2->H2, so record them through a
		// major GC's card scan instead.
		if err := e.jvm.FullGC(); err != nil {
			t.Fatal(err)
		}
		// Drop X and Y roots; Z stays referenced.
		e.jvm.Release(hx)
		e.jvm.Release(hy)
		if err := e.jvm.FullGC(); err != nil {
			t.Fatal(err)
		}
		return e.jvm.TeraHeap().Stats().RegionsReclaimed
	}
	dep := run(core.DependencyLists)
	uf := run(core.UnionFind)
	if dep <= uf {
		t.Fatalf("dependency lists reclaimed %d regions, union-find %d; want dep > uf", dep, uf)
	}
}

func TestMinorDirectPromotionToH2(t *testing.T) {
	e := newTHEnv(t, 1<<20, nil)
	// Tag + move-advise, then allocate fresh young data under the same
	// label root and trigger a minor GC: labelled objects promote
	// straight to H2.
	h := e.buildPartition(t, 32)
	e.jvm.TagRoot(h, 11)
	e.jvm.MoveHint(11)
	if err := e.jvm.Collector().MinorGC(); err != nil {
		t.Fatal(err)
	}
	if !e.jvm.InSecondHeap(h.Addr()) {
		t.Fatal("tagged young root did not promote directly to H2")
	}
	e.checkPartition(t, h, 32)
	// Elements went along (they are reachable only through the root).
	if !e.jvm.InSecondHeap(e.jvm.ReadRef(h.Addr(), 0)) {
		// Elements without labels stay in H1 as backward refs — also
		// acceptable; verify they are alive either way.
		el := e.jvm.ReadRef(h.Addr(), 0)
		if v := e.jvm.ReadPrim(el, 0); v != 0 {
			t.Fatalf("element 0 corrupted: %d", v)
		}
	}
}

func TestH2CardStatesAfterGC(t *testing.T) {
	e := newTHEnv(t, 1<<20, nil)
	h := e.buildPartition(t, 16)
	e.jvm.TagRoot(h, 5)
	e.jvm.MoveHint(5)
	if err := e.jvm.FullGC(); err != nil {
		t.Fatal(err)
	}
	// Create a backward ref and let both GCs process it.
	el := e.jvm.ReadRef(h.Addr(), 0)
	y := e.allocNode(t, vm.NullAddr, vm.NullAddr, 1)
	e.jvm.WriteRef(el, 0, y)
	yh := e.jvm.NewHandle(y)
	if err := e.jvm.Collector().MinorGC(); err != nil {
		t.Fatal(err)
	}
	if err := e.jvm.FullGC(); err != nil {
		t.Fatal(err)
	}
	_ = yh
	st := e.jvm.TeraHeap().Stats()
	if st.MinorCardsScanned == 0 {
		t.Fatal("minor GC scanned no H2 cards")
	}
	if v := e.jvm.ReadPrim(e.jvm.ReadRef(el, 0), 0); v != 1 {
		t.Fatalf("backward ref target = %d", v)
	}
}

func TestMetadataModel(t *testing.T) {
	// Table 5 shape: metadata shrinks as regions grow; 1 MB regions cost
	// hundreds of MB per TB, 256 MB regions only a few MB.
	small := core.MetadataBytesPerTB(1 * storage.MB)
	big := core.MetadataBytesPerTB(256 * storage.MB)
	if small <= big {
		t.Fatalf("metadata model inverted: %d <= %d", small, big)
	}
	if small < 100*storage.MB || small > 1024*storage.MB {
		t.Fatalf("1MB-region metadata per TB out of range: %d", small)
	}
	if big > 8*storage.MB {
		t.Fatalf("256MB-region metadata per TB too large: %d", big)
	}
}

// TestRandomLifecycleDrainsH2 drives random tag/move/mutate/release
// cycles and checks the terminal invariant: once every group is released,
// H2 drains completely and every allocated region is eventually
// reclaimed.
func TestRandomLifecycleDrainsH2(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		e := newTHEnv(t, 1<<20, func(c *core.Config) {
			c.RegionSize = 16 * storage.KB
		})
		rnd := workloads.NewRand(seed)
		type group struct {
			h     *vm.Handle
			label uint64
			n     int
		}
		var live []group
		nextLabel := uint64(1)
		for step := 0; step < 120; step++ {
			switch rnd.Intn(5) {
			case 0, 1: // new tagged group
				n := 8 + rnd.Intn(64)
				h := e.buildPartition(t, n)
				e.jvm.TagRoot(h, nextLabel)
				if rnd.Intn(2) == 0 {
					e.jvm.MoveHint(nextLabel)
				}
				live = append(live, group{h: h, label: nextLabel, n: n})
				nextLabel++
			case 2: // mutate a group element (H1 or H2)
				if len(live) > 0 {
					g := live[rnd.Intn(len(live))]
					el := e.jvm.ReadRef(g.h.Addr(), rnd.Intn(g.n))
					if !el.IsNull() {
						e.jvm.WritePrim(el, 0, rnd.Uint64())
					}
				}
			case 3: // release a group
				if len(live) > 0 {
					i := rnd.Intn(len(live))
					e.jvm.Release(live[i].h)
					live = append(live[:i], live[i+1:]...)
				}
			case 4: // collect
				if err := e.jvm.FullGC(); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Groups still live must be intact (ids 0..n-1 in order is no
		// longer true after mutations; check reachability only).
		for _, g := range live {
			for i := 0; i < g.n; i++ {
				if e.jvm.ReadRef(g.h.Addr(), i).IsNull() {
					t.Fatalf("seed %d: group element %d lost", seed, i)
				}
			}
		}
		// Terminal drain.
		for _, g := range live {
			e.jvm.Release(g.h)
		}
		if err := e.jvm.FullGC(); err != nil {
			t.Fatal(err)
		}
		if err := e.jvm.FullGC(); err != nil {
			t.Fatal(err)
		}
		th := e.jvm.TeraHeap()
		if th.UsedBytes() != 0 {
			t.Fatalf("seed %d: H2 not drained: %d bytes in %d regions",
				seed, th.UsedBytes(), th.ActiveRegions())
		}
	}
}
