package core

import "github.com/carv-repro/teraheap-go/internal/vm"

// AnalyzeLiveRegions measures, for every region still holding objects, the
// fraction of live objects and live space, appending a snapshot per region
// to the stats. It is offline instrumentation for reproducing Fig 10 —
// TeraHeap itself never scans H2 — so it reads raw words with no simulated
// I/O cost.
//
// roots must contain every H1→H2 forward reference plus every rooted
// handle pointing into H2; liveness then propagates across H2-internal
// references.
func (th *TeraHeap) AnalyzeLiveRegions(roots []vm.Addr) {
	live := make(map[vm.Addr]bool)
	stack := make([]vm.Addr, 0, len(roots))
	for _, a := range roots {
		if th.Contains(a) {
			stack = append(stack, a)
		}
	}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if live[a] {
			continue
		}
		live[a] = true
		nrefs := th.peekNumRefs(a)
		for i := 0; i < nrefs; i++ {
			t := th.peekRef(a, i)
			if !t.IsNull() && th.Contains(t) && !live[t] {
				stack = append(stack, t)
			}
		}
	}

	for _, r := range th.regions {
		if r == nil || r.empty() {
			continue
		}
		var liveObjs, totalObjs int64
		var liveBytes int64
		for a := r.start; a < r.top; {
			size := th.peekSizeWords(a)
			totalObjs++
			if live[a] {
				liveObjs++
				liveBytes += int64(size) * vm.WordSize
			}
			a += vm.Addr(size * vm.WordSize)
		}
		snap := RegionSnapshot{RegionID: r.id}
		if totalObjs > 0 {
			snap.LiveObjectsPct = 100 * float64(liveObjs) / float64(totalObjs)
		}
		if used := r.used(); used > 0 {
			snap.LiveSpacePct = 100 * float64(liveBytes) / float64(used)
		}
		snap.UnusedPct = 100 * float64(int64(r.end-r.top)) / float64(int64(r.end-r.start))
		th.stats.RegionSnapshots = append(th.stats.RegionSnapshots, snap)
	}
}

// peek helpers read H2 words without charging simulated I/O.

func (th *TeraHeap) peekWord(a vm.Addr) uint64 {
	return th.mapped.PeekWord(a.Word(vm.H2Base))
}

func (th *TeraHeap) peekSizeWords(a vm.Addr) int {
	return int(uint32(th.peekWord(a + vm.WordSize)))
}

func (th *TeraHeap) peekNumRefs(a vm.Addr) int {
	return int(th.peekWord(a+vm.WordSize) >> 32)
}

func (th *TeraHeap) peekRef(a vm.Addr, i int) vm.Addr {
	return vm.Addr(th.peekWord(a + vm.Addr((vm.HeaderWords+i)*vm.WordSize)))
}
