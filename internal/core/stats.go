package core

import "time"

// RegionSnapshot records per-region liveness for the paper's Fig 10 CDFs:
// reclaimed regions contribute 0% live; regions active at shutdown are
// measured by AnalyzeLiveRegions.
type RegionSnapshot struct {
	RegionID       int
	Reclaimed      bool
	LiveObjectsPct float64 // % of the region's objects that are live
	LiveSpacePct   float64 // % of the region's allocated space that is live
	UnusedPct      float64 // % of region capacity never allocated
}

// Stats aggregates TeraHeap activity.
type Stats struct {
	RootsTagged int64
	MoveHints   int64

	ObjectsMoved int64
	BytesMoved   int64

	RegionsAllocated int64
	RegionsReclaimed int64
	BytesReclaimed   int64

	ForwardRefs     int64
	CrossRegionRefs int64
	DepNodes        int64

	CardsScanned          int64
	H2ObjectsScanned      int64
	MinorCardsScanned     int64
	MinorH2ObjectsScanned int64
	// MinorScanTime is the total time of minor-GC H2 card scans (Fig 11a).
	MinorScanTime time.Duration

	BufferFlushes      int64
	HighThresholdTrips int64
	DynamicAdjustments int64

	// Robustness counters: hint calls rejected for invalid labels, forced
	// PrepareMove failures injected by the fault plane, and promotion-buffer
	// flushes replayed after an injected torn write.
	InvalidHints      int64
	ForcedExhaustions int64
	TornFlushReplays  int64

	// Recovery counters: regions whose backing blocks failed persistently
	// (write failure at flush, or a scrub-detected checksum mismatch),
	// scrub passes that found a mismatch, and regions retired after
	// salvage.
	RegionsFailed      int64
	ScrubMismatches    int64
	RegionsQuarantined int64

	RegionSnapshots []RegionSnapshot
}

// Stats returns a snapshot of the accumulated counters.
func (th *TeraHeap) Stats() Stats { return th.stats }

// AvgDepNodesPerRegion returns the mean dependency-list length across
// regions currently holding objects (the paper reports ~10).
func (th *TeraHeap) AvgDepNodesPerRegion() float64 {
	n, total := 0, 0
	for _, r := range th.regions {
		if r != nil && !r.empty() {
			n++
			total += len(r.deps)
		}
	}
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

// Per-region DRAM metadata model for Table 5, mirroring Figure 2's
// metadata: a region-array entry (head/start/top pointers + live bit,
// padded), an average dependency list, and promotion-buffer bookkeeping.
const (
	regionEntryBytes = 48  // head ptr, start ptr, top ptr, live, padding
	depNodeBytes     = 24  // region ptr + next ptr + allocator header
	bufferEntryBytes = 128 // buffer descriptor
	assumedAvgDepLen = 10  // paper: ~10 nodes per region on average
)

// MetadataBytesPerRegion models the DRAM metadata cost of one region.
func MetadataBytesPerRegion(avgDeps int) int64 {
	if avgDeps < 0 {
		avgDeps = 0
	}
	return regionEntryBytes + int64(avgDeps)*depNodeBytes + bufferEntryBytes
}

// MetadataBytesPerTB reproduces Table 5: total DRAM metadata for 1 TB of
// H2 at the given region size, assuming the paper's average dependency
// list length.
func MetadataBytesPerTB(regionSizeBytes int64) int64 {
	if regionSizeBytes <= 0 {
		return 0
	}
	regions := (int64(1) << 40) / regionSizeBytes
	return regions * MetadataBytesPerRegion(assumedAvgDepLen)
}

// MetadataBytes returns the live DRAM metadata footprint of this instance
// (regions in use plus the card table).
func (th *TeraHeap) MetadataBytes() int64 {
	var t int64
	for _, r := range th.regions {
		if r == nil {
			continue
		}
		t += MetadataBytesPerRegion(len(r.deps))
	}
	return t + th.cards.SizeBytes()
}
