package core_test

import (
	"testing"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

func TestSizeSegregationSeparatesChains(t *testing.T) {
	e := newTHEnv(t, 1<<20, func(c *core.Config) {
		c.Ext.SizeSegregatedRegions = true
		c.Ext.BigObjectWords = 64
		c.RegionSize = 16 * storage.KB
	})
	th := e.jvm.TeraHeap()
	// Small and big reservations under the same label land in different
	// regions.
	small, ok := th.PrepareMove(5, 8)
	if !ok {
		t.Fatal("small reservation failed")
	}
	big, ok := th.PrepareMove(5, 128)
	if !ok {
		t.Fatal("big reservation failed")
	}
	rs := int(int64(small-vm.H2Base) / (16 * storage.KB))
	rb := int(int64(big-vm.H2Base) / (16 * storage.KB))
	if rs == rb {
		t.Fatalf("small and big share region %d", rs)
	}
	// Balance the reservation ledger.
	th.CommitMove(small, make([]uint64, 8))
	th.CommitMove(big, make([]uint64, 128))
}

func TestSizeSegregationDisabledSharesChain(t *testing.T) {
	e := newTHEnv(t, 1<<20, func(c *core.Config) {
		c.RegionSize = 16 * storage.KB
	})
	th := e.jvm.TeraHeap()
	a, _ := th.PrepareMove(5, 8)
	b, _ := th.PrepareMove(5, 128)
	ra := int(int64(a-vm.H2Base) / (16 * storage.KB))
	rb := int(int64(b-vm.H2Base) / (16 * storage.KB))
	if ra != rb {
		t.Fatalf("default placement split label 5 across regions %d and %d", ra, rb)
	}
	th.CommitMove(a, make([]uint64, 8))
	th.CommitMove(b, make([]uint64, 128))
}

func TestDynamicThresholdsAdapt(t *testing.T) {
	e := newTHEnv(t, 1<<19, func(c *core.Config) {
		c.HighThreshold = 0.15
		c.LowThreshold = 0.60 // conservative; nothing below high moves
		c.Ext.DynamicThresholds = true
		c.Ext.DynamicFloor = 0.20
	})
	th := e.jvm.TeraHeap()
	start := th.LowThresholdNow()
	// Sustained pressure: a big tagged partition kept live.
	h := e.buildPartition(t, 1800)
	e.jvm.TagRoot(h, 2)
	for i := 0; i < 6; i++ {
		if err := e.jvm.FullGC(); err != nil {
			t.Fatal(err)
		}
	}
	if th.LowThresholdNow() >= start {
		t.Fatalf("low threshold did not adapt down: %v -> %v", start, th.LowThresholdNow())
	}
	if th.Stats().DynamicAdjustments == 0 {
		t.Fatal("no adjustments recorded")
	}
}

func TestDynamicThresholdsRecoverOnCalm(t *testing.T) {
	e := newTHEnv(t, 1<<20, func(c *core.Config) {
		c.HighThreshold = 0.85
		c.LowThreshold = 0.30
		c.Ext.DynamicThresholds = true
		c.Ext.DynamicCeil = 0.60
	})
	th := e.jvm.TeraHeap()
	// No pressure at all: several calm majors raise the low threshold.
	h := e.buildPartition(t, 16)
	_ = h
	for i := 0; i < 10; i++ {
		if err := e.jvm.FullGC(); err != nil {
			t.Fatal(err)
		}
	}
	if th.LowThresholdNow() <= 0.30 {
		t.Fatalf("low threshold did not recover: %v", th.LowThresholdNow())
	}
	if th.LowThresholdNow() > 0.60 {
		t.Fatalf("low threshold exceeded ceiling: %v", th.LowThresholdNow())
	}
}
