package core

import (
	"fmt"
	"time"

	"github.com/carv-repro/teraheap-go/internal/vm"
)

// H2 card states (§3.4). Ranked so that raise() keeps the most
// conservative state: dirty > youngGen > oldGen > clean.
const (
	cardClean byte = iota
	cardOldGen
	cardYoungGen
	cardDirty
)

// cardTable is the H2 card table: one byte per card segment in DRAM,
// organized in slices and stripes (Figure 3). Stripe size equals the
// region size and objects never span regions, so no two GC threads ever
// share a boundary card — the paper's fix for permanently dirty boundary
// cards.
type cardTable struct {
	segSize    int64
	cards      []byte
	numRegions int
}

func newCardTable(cfg Config, numRegions int) *cardTable {
	n := cfg.H2Size / cfg.CardSegmentSize
	return &cardTable{segSize: cfg.CardSegmentSize, cards: make([]byte, n), numRegions: numRegions}
}

func (t *cardTable) get(seg int) byte    { return t.cards[seg] }
func (t *cardTable) set(seg int, s byte) { t.cards[seg] = s }

// raise upgrades the card state, never downgrading.
func (t *cardTable) raise(seg int, s byte) {
	if t.cards[seg] < s {
		t.cards[seg] = s
	}
}

// SizeBytes returns the DRAM footprint of the card table.
func (t *cardTable) SizeBytes() int64 { return int64(len(t.cards)) }

// ScanBackwardRefs walks allocated regions stripe by stripe, scanning the
// objects in card segments whose state requires it: dirty and youngGen
// segments in minor GC, plus oldGen segments in major GC (§3.4). Every
// H1-pointing reference field is passed to visit; the returned address is
// stored back (adjusting backward references), and the segment's state is
// recomputed from what remains.
func (th *TeraHeap) ScanBackwardRefs(major bool, visit func(uint64, vm.Addr) vm.Addr, isYoung func(vm.Addr) bool) {
	if th.mem == nil {
		panic("core: ScanBackwardRefs before AttachMem")
	}
	startBD := th.clock.Breakdown()
	var cardsExamined, objectsScanned int64
	segsPerRegion := th.segmentsPerRegion()

	for _, r := range th.regions {
		if r == nil || r.empty() {
			continue
		}
		baseSeg := th.segmentOf(r.start)
		for s := 0; s < segsPerRegion; s++ {
			segLo := r.start + vm.Addr(int64(s)*th.cfg.CardSegmentSize)
			if segLo >= r.top {
				break
			}
			cardsExamined++
			st := th.cards.get(baseSeg + s)
			if st == cardClean {
				continue
			}
			if !major && st == cardOldGen {
				// Minor GC never scans oldGen segments: the old
				// generation does not move during a scavenge.
				continue
			}
			segHi := segLo + vm.Addr(th.cfg.CardSegmentSize)
			if segHi > r.top {
				segHi = r.top
			}
			newState := cardClean
			for obj := r.segFirst[s]; !obj.IsNull() && obj < segHi; {
				if th.peekSizeWords(obj) == 0 {
					// Space reserved this cycle whose image has not been
					// committed yet (precompact reserves, compact writes):
					// everything from here to the region top is fresh and
					// its backward references were recorded at commit time.
					break
				}
				objectsScanned++
				nrefs := th.mem.NumRefs(obj)
				for f := 0; f < nrefs; f++ {
					t := th.mem.RefAt(obj, f)
					if t.IsNull() {
						continue
					}
					if th.Contains(t) {
						// A mutator created an H2→H2 edge after the move;
						// record the cross-region dependency it implies.
						th.NoteCrossRegionRef(obj, t)
						continue
					}
					if t >= vm.H1Base<<1 || t < vm.H1Base {
						var layout []string
						for a, n := r.start, 0; a < r.top && n < 400; n++ {
							sz := th.peekSizeWords(a)
							if sz == 0 {
								layout = append(layout, fmt.Sprintf("%v:ZERO", a))
								break
							}
							if a+vm.Addr(sz*vm.WordSize) > obj && a <= obj {
								layout = append(layout, fmt.Sprintf("%v:size=%d COVERS holder %v", a, sz, obj))
							}
							a += vm.Addr(sz * vm.WordSize)
						}
						panic(fmt.Sprintf("core: corrupt backward ref %v at holder %v (region %d label %d seg %d segFirst %v top %v start %v) layout: %v",
							t, obj, r.id, r.label, s, r.segFirst[s], r.top, r.start, layout))
					}
					nt := visit(r.label, t)
					if nt != t {
						th.mem.SetRefAt(obj, f, nt)
					}
					if th.Contains(nt) {
						// The target itself moved into H2 (direct
						// young-to-H2 promotion): the backward reference
						// became a cross-region reference.
						th.NoteCrossRegionRef(obj, nt)
						continue
					}
					if isYoung(nt) {
						if newState < cardYoungGen {
							newState = cardYoungGen
						}
					} else if newState < cardOldGen {
						newState = cardOldGen
					}
				}
				obj += vm.Addr(th.mem.SizeWords(obj) * vm.WordSize)
			}
			th.cards.set(baseSeg+s, newState)
		}
	}

	cpu := time.Duration(cardsExamined)*th.cfg.CardScanCost +
		time.Duration(objectsScanned)*th.cfg.ObjScanCost
	th.clock.ChargeAmbient(cpu / time.Duration(th.cfg.GCThreads))
	th.stats.CardsScanned += cardsExamined
	th.stats.H2ObjectsScanned += objectsScanned
	if !major {
		th.stats.MinorCardsScanned += cardsExamined
		th.stats.MinorH2ObjectsScanned += objectsScanned
		// Fig 11(a) metric: time spent scanning the H2 card table during
		// minor GC (CPU plus device faults).
		th.stats.MinorScanTime += th.clock.Breakdown().Sub(startBD).Total()
	}
}
