package core_test

import (
	"testing"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// h2Env moves a partition big enough to span several 64 KB H2 regions (so
// cross-region references and multi-segment metadata exist) and checks the
// verifier accepts the clean heap.
func h2Env(t *testing.T) (*thEnv, *vm.Handle) {
	t.Helper()
	e := newTHEnv(t, 1<<20, func(cfg *core.Config) { cfg.GroupMode = core.DependencyLists })
	h := e.buildPartition(t, 2048)
	e.jvm.TagRoot(h, 2)
	e.jvm.MoveHint(2)
	if err := e.jvm.FullGC(); err != nil {
		t.Fatal(err)
	}
	if !e.jvm.InSecondHeap(h.Addr()) {
		t.Fatal("partition not moved to H2")
	}
	if fails := e.jvm.Collector().VerifyNow(); len(fails) != 0 {
		t.Fatalf("clean heap reported violations: %v", fails)
	}
	return e, h
}

// TestVerifyCatchesSegFirstCorruption pins the structured failure for a
// corrupted segment-start entry: the violation names the region and the
// bogus address.
func TestVerifyCatchesSegFirstCorruption(t *testing.T) {
	e, h := h2Env(t)
	if !e.jvm.TeraHeap().CorruptSegFirstForTest(h.Addr()) {
		t.Fatal("corruption hook found no region")
	}
	fails := e.jvm.Collector().VerifyNow()
	found := false
	for _, f := range fails {
		if f.Rule == "h2-seg-first" && f.Region >= 0 && f.Holder == h.Addr()+vm.WordSize {
			found = true
		}
	}
	if !found {
		t.Fatalf("segFirst corruption not diagnosed: %v", fails)
	}
}

// TestVerifyCatchesDroppedDependency pins the failure for a lost
// cross-region liveness edge: the partition array references nodes that
// overflowed into the next region, so erasing its region's dependency
// list must surface h2-dep-missing naming the array as holder.
func TestVerifyCatchesDroppedDependency(t *testing.T) {
	e, h := h2Env(t)
	if !e.jvm.TeraHeap().DropDepsForTest(h.Addr()) {
		t.Fatal("corruption hook found no region")
	}
	fails := e.jvm.Collector().VerifyNow()
	found := false
	for _, f := range fails {
		if f.Rule == "h2-dep-missing" && f.Holder == h.Addr() && f.Field >= 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("dropped dependency not diagnosed: %v", fails)
	}
}
