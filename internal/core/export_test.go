package core

import "github.com/carv-repro/teraheap-go/internal/vm"

// Test-only corruption hooks: they damage H2 metadata in the precise ways
// the verifier's rules exist to catch, so tests can pin the diagnosis.

// CorruptSegFirstForTest overwrites the segFirst entry of the card segment
// holding a with an address that is not an object start. Returns false if
// a is not inside an allocated H2 region.
func (th *TeraHeap) CorruptSegFirstForTest(a vm.Addr) bool {
	r := th.regionOf(a)
	if r == nil {
		return false
	}
	seg := int(int64(a-r.start) / th.cfg.CardSegmentSize)
	r.segFirst[seg] = a + vm.WordSize
	return true
}

// DropDepsForTest erases the dependency list of the region holding a,
// simulating a lost cross-region liveness edge. Returns false if a is not
// inside an allocated H2 region.
func (th *TeraHeap) DropDepsForTest(a vm.Addr) bool {
	r := th.regionOf(a)
	if r == nil {
		return false
	}
	th.stats.DepNodes -= int64(len(r.deps))
	r.deps = make(map[int]struct{})
	return true
}
