package core

import (
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// Region-image checksums. Every H2 region carries a running checksum of
// the words the device acknowledged writing: the XOR of csMix(word, value)
// over the region's words. XOR folding makes the sum order-independent and
// incrementally maintainable — a store folds the old value out and the new
// value in — and csMix(w, 0) == 0 makes it consistent with bulk zeroing
// (freeRegion's ZeroWords leaves the sum at exactly 0 without a scan).
//
// The sum is stamped at promotion-buffer flush (flushRegion) and kept
// current by mutator H2 stores (noteH2Store). The scrubber (ScrubStep)
// recomputes it from the device image: an injected silent corruption —
// a flush the device acked but never wrote — was excluded from the running
// sum when injected, so the recomputation disagrees and the region is
// quarantined before a torn image can be read as a wrong answer.

// csMix hashes one (word index, value) pair through the splitmix64
// finalizer. Zero values map to zero so untouched and bulk-zeroed words
// contribute nothing to a region's XOR fold.
func csMix(word int64, v uint64) uint64 {
	if v == 0 {
		return 0
	}
	x := uint64(word)*0x9e3779b97f4a7c15 ^ v
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// noteH2Store keeps the region checksum current across a mutator store:
// fold the old value out, the new value in. Runs before the store itself
// (it peeks the old value), charges nothing, and is a no-op outside any
// region.
func (th *TeraHeap) noteH2Store(a vm.Addr, v uint64) {
	r := th.regionOf(a)
	if r == nil {
		return
	}
	w := a.Word(vm.H2Base)
	r.sum ^= csMix(w, th.mapped.PeekWord(w)) ^ csMix(w, v)
}

// ScrubStep opportunistically verifies up to n regions' checksums against
// their device images, advancing a round-robin cursor so successive calls
// cover the whole heap. It returns the ids of regions whose images did not
// match — each is marked failed (quarantine pending, exempt from
// reclamation) exactly like a region whose flush failed — and the number
// of regions scanned. The scan uses the costless peek path: it models the
// device's own background media scrub, so a fault-free run is
// byte-identical with scrubbing on or off.
func (th *TeraHeap) ScrubStep(n int) (corrupt []int, scanned int) {
	if n <= 0 || len(th.regions) == 0 {
		return nil, 0
	}
	for tried := 0; tried < len(th.regions) && scanned < n; tried++ {
		id := th.scrubCursor
		th.scrubCursor = (th.scrubCursor + 1) % len(th.regions)
		r := th.regions[id]
		if r == nil || r.empty() || r.failed || r.quarantined {
			continue
		}
		if r.buf.pendingBytes != 0 {
			// Staged-but-unflushed promotion data is not part of the stamped
			// sum yet; skip rather than false-positive. (Unreachable from the
			// GC-end scrub hook — buffers are flushed before it — but cheap
			// insurance against future callers.)
			continue
		}
		scanned++
		w0 := r.start.Word(vm.H2Base)
		if th.mapped.SumWords(w0, r.used()/vm.WordSize, csMix) != r.sum {
			r.failed = true
			th.stats.RegionsFailed++
			th.stats.ScrubMismatches++
			th.deleteOpen(r.label, r.id)
			corrupt = append(corrupt, id)
		}
	}
	return corrupt, scanned
}
