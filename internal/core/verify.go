package core

import (
	"fmt"

	"github.com/carv-repro/teraheap-go/internal/check"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// ContainsAllocated reports whether a falls inside the allocated prefix of
// a live H2 region; part of the check.H2 interface.
func (th *TeraHeap) ContainsAllocated(a vm.Addr) bool {
	r := th.regionOf(a)
	return r != nil && a >= r.start && a < r.top
}

// VerifySelf implements check.H2: it parse-walks every allocated region
// through the cost-free peek path and validates the H2-side invariants —
// object headers carry no transient GC bits, segFirst entries are exactly
// the first object starting in each card segment, segment card states are
// at least as strong as the reference kinds actually present, dependency
// lists (or union-find groups) cover every cross-region reference, and
// per-region object/byte accounting matches the walk. It also runs the
// page-cache LRU/map self-check. Only valid outside a GC pause.
func (th *TeraHeap) VerifySelf(isYoung func(vm.Addr) bool, validH1 func(vm.Addr) bool, report func(check.Failure)) {
	if th.mem == nil {
		return // not attached to a collector yet; nothing can be in H2
	}

	// No reservation or staged promotion-buffer write may survive a pause.
	for _, r := range th.regions {
		if r == nil {
			continue
		}
		for i := r.resvHead; i < len(r.resv); i++ {
			report(check.Failure{Rule: "h2-reservation-leak", Space: "h2",
				Region: r.id, Card: -1, Holder: r.resv[i].addr, Field: -1,
				Detail: fmt.Sprintf("%d-word reservation never committed", r.resv[i].words)})
		}
	}

	// Pass 1: parse every allocated region, validating headers, segFirst
	// and accounting, and collecting the set of valid object starts.
	starts := make(map[vm.Addr]struct{})
	for _, r := range th.regions {
		if r == nil {
			continue
		}
		if r.buf.pendingBytes != 0 || len(r.buf.recs) != 0 {
			report(check.Failure{Rule: "h2-promo-buffer-not-flushed", Space: "h2",
				Region: r.id, Card: -1, Field: -1,
				Detail: fmt.Sprintf("%d bytes (%d writes) staged outside a GC pause", r.buf.pendingBytes, len(r.buf.recs))})
		}
		if r.empty() {
			continue
		}
		th.verifyRegion(r, starts, report)
	}

	// Pass 2: reference fields, segment card states and dependency
	// coverage, now that every region's object starts are known.
	for _, r := range th.regions {
		if r == nil || r.empty() {
			continue
		}
		th.verifyRegionRefs(r, starts, isYoung, validH1, report)
	}

	if err := th.mapped.Cache().CheckConsistency(); err != nil {
		report(check.Failure{Rule: "pagecache", Space: "pagecache", Region: -1, Card: -1, Field: -1,
			Detail: err.Error()})
	}
}

// verifyRegion parse-walks one region, reporting header and metadata
// violations and adding each valid object start to starts.
func (th *TeraHeap) verifyRegion(r *region, starts map[vm.Addr]struct{}, report func(check.Failure)) {
	segFirstWant := make([]vm.Addr, len(r.segFirst))
	var objects, sumBytes int64
	a := r.start
	for a < r.top {
		status := th.peekWord(a)
		if vm.StatusForwarded(status) {
			report(check.Failure{Rule: "h2-forwarding", Space: "h2", Region: r.id, Card: -1,
				Holder: a, Field: -1,
				Detail: fmt.Sprintf("H2 object holds forwarding pointer to %v", vm.StatusForwardee(status))})
			return
		}
		if status&(vm.FlagMark|vm.FlagClosure) != 0 {
			report(check.Failure{Rule: "h2-stale-gc-bits", Space: "h2", Region: r.id, Card: -1,
				Holder: a, Field: -1,
				Detail: fmt.Sprintf("mark/closure bits 0x%x survived the move to H2", status&(vm.FlagMark|vm.FlagClosure))})
		}
		cid := vm.StatusClassID(status)
		if cid == 0 || int(cid) >= th.mem.Classes.Len() {
			report(check.Failure{Rule: "h2-bad-class", Space: "h2", Region: r.id, Card: -1,
				Holder: a, Field: -1,
				Detail: fmt.Sprintf("class id %d out of range [1, %d)", cid, th.mem.Classes.Len())})
			return
		}
		shape := th.peekWord(a + vm.WordSize)
		size := vm.ShapeSizeWords(shape)
		numRefs := vm.ShapeNumRefs(shape)
		if size < vm.HeaderWords || vm.HeaderWords+numRefs > size {
			report(check.Failure{Rule: "h2-bad-shape", Space: "h2", Region: r.id, Card: -1,
				Holder: a, Field: -1,
				Detail: fmt.Sprintf("size %d words, %d refs is not a valid shape", size, numRefs)})
			return
		}
		end := a + vm.Addr(size*vm.WordSize)
		if end > r.top {
			report(check.Failure{Rule: "h2-object-overruns-top", Space: "h2", Region: r.id, Card: -1,
				Holder: a, Field: -1,
				Detail: fmt.Sprintf("object end %v exceeds region top %v", end, r.top)})
			return
		}
		seg := int(int64(a-r.start) / th.cfg.CardSegmentSize)
		if segFirstWant[seg].IsNull() {
			segFirstWant[seg] = a
		}
		starts[a] = struct{}{}
		objects++
		sumBytes += int64(size) * vm.WordSize
		a = end
	}
	if objects != r.objects {
		report(check.Failure{Rule: "h2-object-count", Space: "h2", Region: r.id, Card: -1, Field: -1,
			Detail: fmt.Sprintf("walked %d objects but region metadata records %d", objects, r.objects)})
	}
	if sumBytes != r.used() {
		report(check.Failure{Rule: "h2-accounting", Space: "h2", Region: r.id, Card: -1, Field: -1,
			Detail: fmt.Sprintf("walked object bytes %d != region used() %d", sumBytes, r.used())})
	}
	for s := range r.segFirst {
		if r.segFirst[s] != segFirstWant[s] {
			report(check.Failure{Rule: "h2-seg-first", Space: "h2", Region: r.id,
				Card: th.segmentOf(r.start) + s, Holder: r.segFirst[s], Field: -1,
				Detail: fmt.Sprintf("segFirst[%d]=%v but first object starting in segment is %v", s, r.segFirst[s], segFirstWant[s])})
		}
	}
}

// verifyRegionRefs walks one region's reference fields, checking target
// validity, segment card states against the reference kinds present, and
// dependency-list / union-find coverage of cross-region references.
func (th *TeraHeap) verifyRegionRefs(r *region, starts map[vm.Addr]struct{}, isYoung func(vm.Addr) bool, validH1 func(vm.Addr) bool, report func(check.Failure)) {
	for a := r.start; a < r.top; {
		size := th.peekSizeWords(a)
		if size < vm.HeaderWords {
			return // already reported by verifyRegion
		}
		seg := th.segmentOf(a)
		st := th.cards.get(seg)
		nrefs := th.peekNumRefs(a)
		for f := 0; f < nrefs; f++ {
			t := th.peekRef(a, f)
			if t.IsNull() {
				continue
			}
			if th.Contains(t) {
				rt := th.regionOf(t)
				if rt == nil || t >= rt.top {
					report(check.Failure{Rule: "h2-ref-dangling", Space: "h2", Region: r.id, Card: seg,
						Holder: a, Field: f,
						Detail: fmt.Sprintf("reference targets unallocated H2 address %v", t)})
					continue
				}
				if _, ok := starts[t]; !ok {
					report(check.Failure{Rule: "h2-ref-dangling", Space: "h2", Region: r.id, Card: seg,
						Holder: a, Field: f,
						Detail: fmt.Sprintf("reference targets %v, not an H2 object start", t)})
					continue
				}
				if rt != r && st != cardDirty && !th.depCovers(r, rt) {
					report(check.Failure{Rule: "h2-dep-missing", Space: "h2", Region: r.id, Card: seg,
						Holder: a, Field: f,
						Detail: fmt.Sprintf("cross-region reference to region %d not covered by %s and segment not dirty", rt.id, th.groupModeName())})
				}
				continue
			}
			// Backward reference into H1.
			if !validH1(t) {
				report(check.Failure{Rule: "h2-backward-ref-dangling", Space: "h2", Region: r.id, Card: seg,
					Holder: a, Field: f,
					Detail: fmt.Sprintf("backward reference targets %v, not a valid H1 object start", t)})
				continue
			}
			need := cardOldGen
			if isYoung(t) {
				need = cardYoungGen
			}
			if st < need {
				report(check.Failure{Rule: "h2-card-state", Space: "h2", Region: r.id, Card: seg,
					Holder: a, Field: f,
					Detail: fmt.Sprintf("segment state %d weaker than backward reference to %v requires (%d)", st, t, need)})
			}
		}
		a += vm.Addr(size * vm.WordSize)
	}
}

// depCovers reports whether the liveness machinery records the
// cross-region edge from rf to rt: a dependency-list entry, or membership
// in the same union-find group.
func (th *TeraHeap) depCovers(rf, rt *region) bool {
	if th.cfg.GroupMode == UnionFind {
		return th.find(rf.id) == th.find(rt.id)
	}
	_, ok := rf.deps[rt.id]
	return ok
}

func (th *TeraHeap) groupModeName() string {
	if th.cfg.GroupMode == UnionFind {
		return "union-find group"
	}
	return "dependency list"
}
