package core

import (
	"fmt"

	"github.com/carv-repro/teraheap-go/internal/vm"
)

// region is one fixed-size H2 region plus its DRAM-resident metadata
// (Figure 2): allocation pointers, the live bit, the dependency list, and
// the promotion buffer.
type region struct {
	id    int
	start vm.Addr
	end   vm.Addr
	top   vm.Addr

	label     uint64
	live      bool
	groupLive bool // Union-Find mode: liveness of the group root
	parent    int  // Union-Find parent

	// deps lists region ids this region's objects reference (§3.3).
	deps map[int]struct{}

	// segFirst records the first object starting in each card segment of
	// the region, enabling segment-granularity backward-reference scans.
	segFirst []vm.Addr

	objects int64

	buf promoBuffer

	// resv is the FIFO queue of PrepareMove reservations not yet committed
	// (consistency checking). Commits arrive in reservation order per
	// region — the minor GC drains its H2 move queue FIFO and the major GC
	// assigns and commits destinations in the same space walk order — so
	// the head-match path is O(1); the linear fallback only runs if an
	// earlier reservation leaked. resvHead indexes the first outstanding
	// entry.
	resv     []reservation
	resvHead int

	// sum is the region image's running checksum: the XOR of
	// csMix(word, value) over every word the device acknowledged writing.
	// Maintained incrementally at flush and mutator-store time; the
	// scrubber recomputes it from the device image, so a silently lost
	// write surfaces as a mismatch instead of a wrong answer.
	sum uint64

	// bad lists word spans the device acked but never actually wrote
	// (injected silent corruption). They are excluded from sum — which is
	// exactly why the scrubber's recomputation catches them — and their
	// objects are tombstoned, never returned, when the region is salvaged.
	bad []wordSpan

	// failed marks a region whose backing blocks went bad mid-run: data
	// already written stays readable, further writes are refused, and the
	// region is exempt from reclamation until the recovery layer salvages
	// it (quarantine would otherwise race with freeRegion).
	failed bool

	// quarantined marks a region retired by the recovery layer: its
	// still-referenced objects were re-materialized into H1 and the region
	// is permanently out of service (never pushed back on the free list).
	quarantined bool
}

// wordSpan is a [word, word+n) span of H2 word indices.
type wordSpan struct {
	word int64
	n    int
}

// overlapsBad reports whether the sizeWords object at word overlaps a span
// the device silently dropped.
func (r *region) overlapsBad(word int64, sizeWords int) bool {
	for _, s := range r.bad {
		if word < s.word+int64(s.n) && s.word < word+int64(sizeWords) {
			return true
		}
	}
	return false
}

// reservation is one outstanding PrepareMove: an address and its size.
type reservation struct {
	addr  vm.Addr
	words int32
}

// takeReservation consumes the reservation for dst, returning its size.
func (r *region) takeReservation(dst vm.Addr) (int, bool) {
	q := r.resv
	if r.resvHead < len(q) && q[r.resvHead].addr == dst {
		w := int(q[r.resvHead].words)
		r.resvHead++
		if r.resvHead == len(q) {
			r.resv = q[:0]
			r.resvHead = 0
		}
		return w, true
	}
	for i := r.resvHead; i < len(q); i++ {
		if q[i].addr == dst {
			w := int(q[i].words)
			copy(q[i:], q[i+1:])
			r.resv = q[:len(q)-1]
			return w, true
		}
	}
	return 0, false
}

// pendingResv returns the number of outstanding reservations.
func (r *region) pendingResv() int { return len(r.resv) - r.resvHead }

// openLabel is one entry of the open-region-per-label table.
type openLabel struct {
	label uint64
	id    int
}

// lookupOpen returns the open region id for label.
func (th *TeraHeap) lookupOpen(label uint64) (int, bool) {
	for i := range th.openByLabel {
		if th.openByLabel[i].label == label {
			return th.openByLabel[i].id, true
		}
	}
	return 0, false
}

// setOpen records label's open region, replacing any previous entry.
func (th *TeraHeap) setOpen(label uint64, id int) {
	for i := range th.openByLabel {
		if th.openByLabel[i].label == label {
			th.openByLabel[i].id = id
			return
		}
	}
	th.openByLabel = append(th.openByLabel, openLabel{label: label, id: id})
}

// deleteOpen removes label's entry if it still points at id.
func (th *TeraHeap) deleteOpen(label uint64, id int) {
	for i := range th.openByLabel {
		if th.openByLabel[i].label == label {
			if th.openByLabel[i].id == id {
				last := len(th.openByLabel) - 1
				th.openByLabel[i] = th.openByLabel[last]
				th.openByLabel = th.openByLabel[:last]
			}
			return
		}
	}
}

func (r *region) used() int64 { return int64(r.top - r.start) }
func (r *region) empty() bool { return r.top == r.start }

// promoBuffer stages object images bound for this region until a batched
// asynchronous flush (the paper's 2 MB promotion buffer, §3.2). Images are
// copied into a flat word arena at CommitMove time, so callers may reuse
// their image buffers; both backing arrays are retained across GC cycles.
type promoBuffer struct {
	words        []uint64 // flat arena of staged image words
	recs         []bufRec
	pendingBytes int64
}

// bufRec locates one staged image: its H2 word index and its [off, off+n)
// span in the arena.
type bufRec struct {
	word   int64
	off, n int
}

// regionOf returns the region containing a, or nil.
func (th *TeraHeap) regionOf(a vm.Addr) *region {
	if !th.Contains(a) {
		return nil
	}
	i := int(int64(a-vm.H2Base) / th.cfg.RegionSize)
	if i >= len(th.regions) {
		return nil
	}
	return th.regions[i]
}

// segmentOf returns the global card-segment index of a.
func (th *TeraHeap) segmentOf(a vm.Addr) int {
	return int(int64(a-vm.H2Base) / th.cfg.CardSegmentSize)
}

// segmentsPerRegion returns the number of card segments in one region.
func (th *TeraHeap) segmentsPerRegion() int {
	return int(th.cfg.RegionSize / th.cfg.CardSegmentSize)
}

// PrepareMove reserves sizeWords of space in a region labelled label.
// With size-segregated placement enabled, big objects use a separate
// region chain for the label.
func (th *TeraHeap) PrepareMove(label uint64, sizeWords int) (vm.Addr, bool) {
	if th.admit != nil && !th.admit() {
		// The recovery layer's circuit breaker holds H2 closed: route the
		// object to the H1 path (§4's fallback, same as exhaustion) without
		// consuming an injector decision for the move itself.
		return vm.NullAddr, false
	}
	need := vm.Addr(sizeWords * vm.WordSize)
	if int64(need) > th.cfg.RegionSize {
		// Objects never span regions (§3.4).
		return vm.NullAddr, false
	}
	if th.inj.H2Exhausted() {
		// Injected exhaustion: report failure before reserving anything, as
		// if no region could be allocated. The collector's fallback keeps
		// the object in H1 (§3.2's graceful degradation).
		th.stats.ForcedExhaustions++
		return vm.NullAddr, false
	}
	label = th.placementLabel(label, sizeWords)
	r := th.openRegion(label, need)
	if r == nil {
		return vm.NullAddr, false
	}
	a := r.top
	r.top += need
	r.objects++
	seg := int(int64(a-r.start) / th.cfg.CardSegmentSize)
	if r.segFirst[seg].IsNull() {
		r.segFirst[seg] = a
	}
	r.resv = append(r.resv, reservation{addr: a, words: int32(sizeWords)})
	th.reservedCount++
	th.stats.ObjectsMoved++
	th.stats.BytesMoved += int64(need)
	return a, true
}

// openRegion returns a region labelled label with room for need bytes,
// opening a new one if necessary.
func (th *TeraHeap) openRegion(label uint64, need vm.Addr) *region {
	if id, ok := th.lookupOpen(label); ok {
		r := th.regions[id]
		if r.top+need <= r.end && !r.failed {
			return r
		}
	}
	r := th.allocRegion()
	if r == nil {
		return nil
	}
	r.label = label
	r.live = true // protect the receiving region for this cycle
	th.setOpen(label, r.id)
	return r
}

// allocRegion takes a region from the free list or extends the region
// array while H2 capacity remains.
func (th *TeraHeap) allocRegion() *region {
	if n := len(th.freeRegions); n > 0 {
		id := th.freeRegions[n-1]
		th.freeRegions = th.freeRegions[:n-1]
		th.stats.RegionsAllocated++
		return th.regions[id]
	}
	if int64(len(th.regions))*th.cfg.RegionSize >= th.cfg.H2Size {
		return nil
	}
	id := len(th.regions)
	start := vm.H2Base + vm.Addr(int64(id)*th.cfg.RegionSize)
	r := &region{
		id:       id,
		start:    start,
		end:      start + vm.Addr(th.cfg.RegionSize),
		top:      start,
		parent:   id,
		deps:     make(map[int]struct{}),
		segFirst: make([]vm.Addr, th.segmentsPerRegion()),
	}
	th.regions = append(th.regions, r)
	th.stats.RegionsAllocated++
	return r
}

// CommitMove stages the adjusted object image at dst.
func (th *TeraHeap) CommitMove(dst vm.Addr, image []uint64) {
	r := th.regionOf(dst)
	if r == nil {
		panic(fmt.Sprintf("core: CommitMove outside H2 (%v)", dst))
	}
	if want, ok := r.takeReservation(dst); !ok {
		panic(fmt.Sprintf("core: CommitMove to unreserved %v (%d words)", dst, len(image)))
	} else if want != len(image) {
		panic(fmt.Sprintf("core: CommitMove size mismatch at %v: reserved %d, image %d", dst, want, len(image)))
	}
	th.reservedCount--
	off := len(r.buf.words)
	r.buf.words = append(r.buf.words, image...)
	r.buf.recs = append(r.buf.recs, bufRec{word: dst.Word(vm.H2Base), off: off, n: len(image)})
	r.buf.pendingBytes += int64(len(image)) * vm.WordSize
	if r.buf.pendingBytes >= th.cfg.PromotionBufferBytes {
		th.flushRegion(r)
	}
}

func (th *TeraHeap) flushRegion(r *region) {
	if r.buf.pendingBytes == 0 {
		return
	}
	// Silent corruption: the device acks the whole flush but drops one
	// image. The simulator keeps the dropped words too — nothing may read
	// through injected corruption and return a wrong answer — but the
	// victim is excluded from the region checksum and its span recorded,
	// so the loss is observable exactly the way a real scrub observes it.
	victim := th.inj.CorruptFlush(len(r.buf.recs))
	for i, rec := range r.buf.recs {
		if i == victim {
			r.bad = append(r.bad, wordSpan{word: rec.word, n: rec.n})
		} else {
			// Fold the staged words into the running checksum. Commit
			// destinations are bump-allocated and regions are zeroed on
			// reclaim, so the words being overwritten are zero and
			// contribute nothing (csMix(w, 0) == 0): folding only the new
			// values keeps the incremental sum equal to a full recompute.
			sum := r.sum
			for j, v := range r.buf.words[rec.off : rec.off+rec.n] {
				sum ^= csMix(rec.word+int64(j), v)
			}
			r.sum = sum
		}
		th.mapped.StageWords(rec.word, r.buf.words[rec.off:rec.off+rec.n])
	}
	th.mapped.ChargeAsyncWrite(r.buf.pendingBytes)
	if th.inj.TornFlush() {
		// The flush tore mid-write. The staged images are still in DRAM
		// (the buffer is only released below), so recovery replays the
		// whole batch: stage the words again and pay the device a second
		// time. Idempotent on contents, visible only in time and counters.
		th.stats.TornFlushReplays++
		for _, rec := range r.buf.recs {
			th.mapped.StageWords(rec.word, r.buf.words[rec.off:rec.off+rec.n])
		}
		th.mapped.ChargeAsyncWrite(r.buf.pendingBytes)
	}
	th.stats.BufferFlushes++
	r.buf.words = r.buf.words[:0]
	r.buf.recs = r.buf.recs[:0]
	r.buf.pendingBytes = 0
	if !r.failed && th.inj.RegionFlushFailed(r.id) {
		// The device reports this region's blocks failing right after the
		// flush was acknowledged (SMART-style grown defects): everything
		// written so far stays readable, the region accepts no further
		// allocations, and the latched RegionFailure wakes the recovery
		// layer at the collector's next safepoint.
		r.failed = true
		th.stats.RegionsFailed++
		th.deleteOpen(r.label, r.id)
	}
}

// FlushBuffers drains every promotion buffer.
func (th *TeraHeap) FlushBuffers() {
	for _, r := range th.regions {
		if r != nil {
			th.flushRegion(r)
		}
	}
}

// NoteCrossRegionRef records a reference between H2 objects in different
// regions: a dependency-list edge, or a group merge in Union-Find mode.
func (th *TeraHeap) NoteCrossRegionRef(fromObj, toObj vm.Addr) {
	rf, rt := th.regionOf(fromObj), th.regionOf(toObj)
	if rf == nil || rt == nil || rf == rt {
		return
	}
	th.stats.CrossRegionRefs++
	if th.cfg.GroupMode == UnionFind {
		th.union(rf.id, rt.id)
		return
	}
	if _, ok := rf.deps[rt.id]; !ok {
		rf.deps[rt.id] = struct{}{}
		th.stats.DepNodes++
	}
}

// NoteBackwardRef records an H2→H1 reference held by the object at h2obj
// by raising the card state of its segment.
func (th *TeraHeap) NoteBackwardRef(h2obj vm.Addr, youngTarget bool) {
	st := cardOldGen
	if youngTarget {
		st = cardYoungGen
	}
	th.cards.raise(th.segmentOf(h2obj), st)
}

// --- Union-Find (§3.3 alternative) -------------------------------------------

func (th *TeraHeap) find(i int) int {
	for th.regions[i].parent != i {
		th.regions[i].parent = th.regions[th.regions[i].parent].parent
		i = th.regions[i].parent
	}
	return i
}

func (th *TeraHeap) union(a, b int) {
	ra, rb := th.find(a), th.find(b)
	if ra != rb {
		th.regions[rb].parent = ra
		// Liveness of either group survives the merge.
		if th.regions[rb].groupLive {
			th.regions[ra].groupLive = true
		}
	}
}

// --- Lazy bulk reclamation (§3.3) --------------------------------------------

// freeDeadRegions reclaims every region not reachable from a live region
// seed: regions referenced from H1 this cycle (live bit), propagated along
// dependency edges. In Union-Find mode a region survives iff its group's
// root is live.
func (th *TeraHeap) freeDeadRegions() {
	if th.cfg.GroupMode == UnionFind {
		for _, r := range th.regions {
			// Failed regions are exempt: the recovery layer owns them until
			// salvage retires them (freeing one here would push it on the
			// free list while a quarantine is pending).
			if r == nil || r.empty() || r.failed {
				continue
			}
			// r.live protects regions that received objects this cycle.
			if !r.live && !th.regions[th.find(r.id)].groupLive {
				th.freeRegion(r)
			}
		}
		// Reset parents of freed regions (whole groups die together).
		for _, r := range th.regions {
			if r != nil && r.empty() {
				r.parent = r.id
			}
		}
		return
	}

	// Propagate liveness along dependency edges. The scratch slices live on
	// th so the per-major-GC reachability pass does not allocate once the
	// region array stops growing.
	if cap(th.reachScratch) < len(th.regions) {
		th.reachScratch = make([]bool, len(th.regions))
	}
	reached := th.reachScratch[:len(th.regions)]
	clear(reached)
	stack := th.stackScratch[:0]
	for _, r := range th.regions {
		if r != nil && r.live && !r.empty() {
			stack = append(stack, r.id)
			reached[r.id] = true
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for dep := range th.regions[id].deps {
			if !reached[dep] {
				reached[dep] = true
				stack = append(stack, dep)
			}
		}
	}
	th.stackScratch = stack
	for _, r := range th.regions {
		if r == nil || r.empty() || r.failed {
			continue
		}
		if !reached[r.id] {
			th.freeRegion(r)
		}
	}
}

// freeRegion reclaims a whole region in bulk: reset the allocation
// pointer, delete the dependency list, drop its page-cache pages, and
// clear its card segments. No object is ever compacted on the device.
func (th *TeraHeap) freeRegion(r *region) {
	th.stats.RegionsReclaimed++
	th.stats.BytesReclaimed += r.used()
	th.stats.RegionSnapshots = append(th.stats.RegionSnapshots, RegionSnapshot{
		RegionID: r.id, Reclaimed: true, LiveObjectsPct: 0, LiveSpacePct: 0,
	})
	th.deleteOpen(r.label, r.id)
	th.mapped.InvalidateWords(r.start.Word(vm.H2Base), r.used()/vm.WordSize)
	th.mapped.ZeroWords(r.start.Word(vm.H2Base), r.used()/vm.WordSize)
	firstSeg := th.segmentOf(r.start)
	for i := 0; i < th.segmentsPerRegion(); i++ {
		th.cards.set(firstSeg+i, cardClean)
	}
	for i := range r.segFirst {
		r.segFirst[i] = vm.NullAddr
	}
	th.stats.DepNodes -= int64(len(r.deps))
	r.top = r.start
	r.label = 0
	r.live = false
	r.groupLive = false
	r.objects = 0
	r.deps = make(map[int]struct{})
	r.buf.words = r.buf.words[:0]
	r.buf.recs = r.buf.recs[:0]
	r.buf.pendingBytes = 0
	th.reservedCount -= r.pendingResv()
	r.resv = r.resv[:0]
	r.resvHead = 0
	r.sum = 0
	r.bad = nil
	th.freeRegions = append(th.freeRegions, r.id)
}

// RetireRegion takes a salvaged region permanently out of service: the
// same metadata reset as freeRegion — the recovery layer has already moved
// every live object out, so the region is logically empty — except the id
// never returns to the free list (its backing blocks are bad) and no
// reclamation snapshot is recorded (Fig 10 measures the paper's lazy
// reclamation, not injected failures).
func (th *TeraHeap) RetireRegion(id int) {
	if id < 0 || id >= len(th.regions) || th.regions[id] == nil {
		return
	}
	r := th.regions[id]
	th.stats.RegionsQuarantined++
	th.deleteOpen(r.label, r.id)
	th.mapped.InvalidateWords(r.start.Word(vm.H2Base), r.used()/vm.WordSize)
	th.mapped.ZeroWords(r.start.Word(vm.H2Base), r.used()/vm.WordSize)
	firstSeg := th.segmentOf(r.start)
	for i := 0; i < th.segmentsPerRegion(); i++ {
		th.cards.set(firstSeg+i, cardClean)
	}
	for i := range r.segFirst {
		r.segFirst[i] = vm.NullAddr
	}
	th.stats.DepNodes -= int64(len(r.deps))
	r.top = r.start
	r.label = 0
	r.live = false
	r.groupLive = false
	r.objects = 0
	r.deps = make(map[int]struct{})
	r.buf.words = r.buf.words[:0]
	r.buf.recs = r.buf.recs[:0]
	r.buf.pendingBytes = 0
	th.reservedCount -= r.pendingResv()
	r.resv = r.resv[:0]
	r.resvHead = 0
	r.sum = 0
	r.bad = nil
	r.failed = false
	r.quarantined = true
}

// QuarantinedRegions returns the number of regions retired by the
// recovery layer.
func (th *TeraHeap) QuarantinedRegions() int {
	n := 0
	for _, r := range th.regions {
		if r != nil && r.quarantined {
			n++
		}
	}
	return n
}

// FailedRegions returns the ids of regions marked failed and not yet
// salvaged, in region order (deterministic: the salvage pass iterates this
// slice, never a map).
func (th *TeraHeap) FailedRegions() []int {
	var ids []int
	for _, r := range th.regions {
		if r != nil && r.failed && !r.quarantined {
			ids = append(ids, r.id)
		}
	}
	return ids
}

// PendingReservations returns the number of PrepareMove reservations not
// yet committed. Outside a GC cycle it must be zero: a nonzero value means
// a reservation leaked (tests and the H2-exhaustion fallback coverage).
func (th *TeraHeap) PendingReservations() int { return th.reservedCount }

// UsedBytes returns the bytes currently allocated in H2.
func (th *TeraHeap) UsedBytes() int64 {
	var t int64
	for _, r := range th.regions {
		if r != nil {
			t += r.used()
		}
	}
	return t
}

// ActiveRegions returns the number of regions currently holding objects.
func (th *TeraHeap) ActiveRegions() int {
	n := 0
	for _, r := range th.regions {
		if r != nil && !r.empty() {
			n++
		}
	}
	return n
}
