// Package core implements TeraHeap, the paper's primary contribution: a
// second, high-capacity managed heap (H2) memory-mapped over a fast
// storage device that coexists with the regular DRAM heap (H1).
//
// TeraHeap eliminates serialization/deserialization by giving the runtime
// direct access to H2 objects, and eliminates GC scans over H2 by
//
//   - a hint-based interface (TagRoot / Move) based on key-object
//     opportunism (§3.2),
//   - a region-based H2 organized by object lifetime with lazy bulk
//     reclamation, dependency lists for cross-region references, and an
//     optional Union-Find region-group mode (§3.3),
//   - a four-state card table, organized in slices and stripes aligned to
//     regions, tracking backward (H2→H1) references (§3.4),
//   - high/low occupancy thresholds that force movement under memory
//     pressure before a move hint arrives (§3.2), and
//   - per-region 2 MB promotion buffers writing objects to the device with
//     batched asynchronous I/O (§3.2).
//
// It plugs into the Parallel Scavenge collector through gc.SecondHeap.
package core

import (
	"fmt"
	"time"

	"github.com/carv-repro/teraheap-go/internal/fault"
	"github.com/carv-repro/teraheap-go/internal/gc"
	"github.com/carv-repro/teraheap-go/internal/placement"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// GroupMode selects how cross-region references are tracked (§3.3).
type GroupMode int

// Cross-region tracking modes.
const (
	// DependencyLists tracks the direction of cross-region references in
	// per-region dependency lists (the paper's chosen design).
	DependencyLists GroupMode = iota
	// UnionFind merges referencing regions into groups, losing direction
	// (the simpler alternative the paper evaluates and rejects).
	UnionFind
)

// Config configures an H2 instance.
type Config struct {
	// H2Size is the capacity of the second heap in bytes.
	H2Size int64
	// RegionSize is the fixed region size in bytes.
	RegionSize int64
	// CardSegmentSize is the H2 card segment size in bytes.
	CardSegmentSize int64
	// HighThreshold is the H1 old-generation occupancy above which marked
	// objects are moved without waiting for a move hint (paper: 0.85).
	HighThreshold float64
	// LowThreshold, when >0, bounds forced movement: enough labels move to
	// bring H1 occupancy down to this fraction (paper experiment: 0.5).
	LowThreshold float64
	// EnableMoveHint honours h2_move; when false only the threshold
	// mechanism moves objects (the paper's "NH" configuration, Fig 9a).
	EnableMoveHint bool
	// GroupMode selects dependency lists or Union-Find groups.
	GroupMode GroupMode
	// PromotionBufferBytes is the per-region staging buffer (paper: 2 MB).
	PromotionBufferBytes int64
	// PageSize for the H2 mapping (4 KB, or 2 MB huge pages for the Spark
	// ML workloads).
	PageSize int
	// CacheBytes is the DRAM page-cache budget for H2 (the DR2 share).
	CacheBytes int64
	// GCThreads parallelize card scanning CPU cost.
	GCThreads int
	// CardScanCost and ObjScanCost price card-table work.
	CardScanCost time.Duration
	ObjScanCost  time.Duration

	// Ext enables the future-work extensions (dynamic thresholds,
	// size-segregated placement); zero value disables both.
	Ext Extensions
}

// DefaultConfig returns a TeraHeap configuration for an H2 of h2Size bytes
// on the given device-independent defaults.
func DefaultConfig(h2Size int64) Config {
	return Config{
		H2Size:               h2Size,
		RegionSize:           16 * storage.KB * 1024, // 16 MB
		CardSegmentSize:      4 * storage.KB,
		HighThreshold:        0.85,
		LowThreshold:         0.50,
		EnableMoveHint:       true,
		GroupMode:            DependencyLists,
		PromotionBufferBytes: 2 * storage.MB,
		PageSize:             storage.DefaultPageSize,
		CacheBytes:           0,
		GCThreads:            16,
		CardScanCost:         2 * time.Nanosecond,
		ObjScanCost:          10 * time.Nanosecond,
	}
}

// TeraHeap is the second heap. It implements gc.SecondHeap.
type TeraHeap struct {
	cfg    Config
	clock  *simclock.Clock
	mapped *storage.MappedFile
	mem    *vm.Mem // object accessors; set by AttachMem after wiring

	regions     []*region
	freeRegions []int
	// openByLabel maps a label to its currently open region. Only a handful
	// of label chains are ever open at once, so a linear-scan slice beats a
	// map on the per-promoted-object openRegion path (and tolerates the
	// placement-policy bit in the label domain).
	openByLabel []openLabel

	cards *cardTable

	tagged []gc.TaggedRoot
	// moveAdvised is a dense bitset indexed by label: frameworks assign
	// small sequential labels (RDD ids, superstep counters), and MoveOnMinor
	// is consulted once per scavenged object, so the lookup must not hash.
	// moveAdvisedBig catches the (unused in practice) huge-label tail.
	moveAdvised    []bool
	moveAdvisedBig map[uint64]bool

	// Threshold policy state.
	forceMove    bool
	pressureLive int64 // live-byte estimate backing the current arming
	pressureCap  int64 // old-generation capacity at arming time

	// reservedCount tracks outstanding PrepareMove reservations across all
	// regions (each region holds its own FIFO reservation queue).
	reservedCount int

	// Reusable scratch for freeDeadRegions' reachability pass.
	reachScratch []bool
	stackScratch []int

	// Dynamic-threshold controller state.
	consecTrips int
	calmCycles  int

	// inj, when non-nil, forces PrepareMove exhaustion and tears promotion
	// buffer flushes per the run's fault plan.
	inj *fault.Injector

	// admit, when non-nil, gates PrepareMove: the recovery layer's circuit
	// breaker returns false while H2 is held closed, routing promotions to
	// the §4 H1 fallback.
	admit func() bool

	// scrubCursor is the round-robin position of the opportunistic
	// checksum scrubber (ScrubStep).
	scrubCursor int

	// placement, when non-nil, overrides the H2 movement decisions
	// (young->H2 on minor GC, closure moves at major GC). Nil keeps the
	// legacy hint/threshold logic bit-for-bit.
	placement placement.Policy

	stats Stats
}

// mappedMemory adapts a MappedFile to vm.Memory at vm.H2Base. It holds the
// TeraHeap rather than the file so mutator stores can keep the per-region
// checksum current (noteH2Store).
type mappedMemory struct {
	th *TeraHeap
}

func (m mappedMemory) Load(a vm.Addr) uint64 { return m.th.mapped.Load(a.Word(vm.H2Base)) }
func (m mappedMemory) Store(a vm.Addr, v uint64) {
	m.th.noteH2Store(a, v)
	m.th.mapped.Store(a.Word(vm.H2Base), v)
}
func (m mappedMemory) Peek(a vm.Addr) uint64 { return m.th.mapped.PeekWord(a.Word(vm.H2Base)) }

// ConfigError is the typed error for an invalid TeraHeap configuration.
// Bad configurations come from user input (experiment sweeps, CLI flags),
// so they are reported as errors, not panics.
type ConfigError struct{ Reason string }

// Error describes the invalid configuration.
func (e *ConfigError) Error() string { return "core: invalid config: " + e.Reason }

// Validate checks the configuration for user-correctable mistakes.
func (cfg *Config) Validate() error {
	switch {
	case cfg.RegionSize <= 0 || cfg.H2Size < cfg.RegionSize:
		return &ConfigError{Reason: fmt.Sprintf("bad H2 geometry (size %d, region %d)", cfg.H2Size, cfg.RegionSize)}
	case cfg.CardSegmentSize <= 0:
		return &ConfigError{Reason: fmt.Sprintf("non-positive card segment size %d", cfg.CardSegmentSize)}
	case cfg.RegionSize%cfg.CardSegmentSize != 0:
		return &ConfigError{Reason: fmt.Sprintf("region size %d not a multiple of card segment size %d", cfg.RegionSize, cfg.CardSegmentSize)}
	case cfg.HighThreshold < 0 || cfg.HighThreshold > 1:
		return &ConfigError{Reason: fmt.Sprintf("high threshold %g outside [0,1]", cfg.HighThreshold)}
	case cfg.LowThreshold < 0 || cfg.LowThreshold > 1:
		return &ConfigError{Reason: fmt.Sprintf("low threshold %g outside [0,1]", cfg.LowThreshold)}
	case cfg.PageSize <= 0:
		return &ConfigError{Reason: fmt.Sprintf("non-positive page size %d", cfg.PageSize)}
	}
	return nil
}

// New builds a TeraHeap over dev and maps H2 into as at vm.H2Base. It
// panics on an invalid configuration; use NewChecked where bad configs
// must surface as a failed run rather than kill the process.
func New(cfg Config, dev *storage.Device, as *vm.AddressSpace, clock *simclock.Clock) *TeraHeap {
	th, err := NewChecked(cfg, dev, as, clock)
	if err != nil {
		panic(err.Error())
	}
	return th
}

// NewChecked builds a TeraHeap, returning a *ConfigError instead of
// panicking when the configuration is invalid.
func NewChecked(cfg Config, dev *storage.Device, as *vm.AddressSpace, clock *simclock.Clock) (*TeraHeap, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.GCThreads < 1 {
		cfg.GCThreads = 1
	}
	// Objects must not span regions, so region size bounds object size;
	// cap H2Size to a whole number of regions.
	numRegions := cfg.H2Size / cfg.RegionSize
	cfg.H2Size = numRegions * cfg.RegionSize

	th := &TeraHeap{
		cfg:    cfg,
		clock:  clock,
		mapped: storage.NewMappedFile(dev, cfg.H2Size, cfg.PageSize, cfg.CacheBytes),
	}
	as.Map(vm.H2Base, vm.H2Base+vm.Addr(cfg.H2Size), mappedMemory{th: th})
	th.cards = newCardTable(cfg, int(numRegions))
	return th, nil
}

// SetFaultInjector attaches the run's fault injector: forced PrepareMove
// exhaustion and torn promotion-buffer flushes. The same injector should
// be attached to the backing device so all decisions share one counter.
func (th *TeraHeap) SetFaultInjector(in *fault.Injector) { th.inj = in }

// SetAdmission installs (or, with nil, removes) the PrepareMove admission
// gate. The recovery layer's circuit breaker uses it to hold H2 closed
// after repeated persistent failures: a false return routes the promotion
// to the §4 keep-it-in-H1 fallback.
func (th *TeraHeap) SetAdmission(f func() bool) { th.admit = f }

// AttachMem wires the object accessors (built after the collector) into
// the card-table scanner.
func (th *TeraHeap) AttachMem(m *vm.Mem) { th.mem = m }

// SetPlacementPolicy installs a placement policy over the H2 movement
// decisions; nil restores the legacy hint/threshold logic.
func (th *TeraHeap) SetPlacementPolicy(p placement.Policy) { th.placement = p }

// Mapped exposes the underlying mapping (examples, tests, experiments).
func (th *TeraHeap) Mapped() *storage.MappedFile { return th.mapped }

// Config returns the active configuration.
func (th *TeraHeap) Config() Config { return th.cfg }

// --- Hint interface (§3.2) -------------------------------------------------

// TagRoot tags the root key-object held by h with a label, marking it (and
// later its transitive closure) as a candidate for H2 placement. This is
// the h2_tag_root(obj, label) call of the paper. Label 0 is reserved for
// untagged objects; a hint with label 0 is counted and ignored, the way
// the JVM ignores a malformed hint from application code rather than
// crashing the process.
func (th *TeraHeap) TagRoot(h *vm.Handle, label uint64) {
	if label == 0 {
		th.stats.InvalidHints++
		return
	}
	a := h.Addr()
	if a.IsNull() || vm.InH2(a) {
		return
	}
	th.mem.SetLabel(a, label)
	th.tagged = append(th.tagged, gc.TaggedRoot{Handle: h, Label: label})
	th.stats.RootsTagged++
	th.clock.Charge(simclock.Other, 50*time.Nanosecond) // native call
}

// Move advises TeraHeap to move all objects tagged with label to H2 during
// the next major GC. This is the h2_move(label) call of the paper. When
// move hints are disabled (Fig 9a's NH configuration) the call is a no-op
// and movement relies on the threshold mechanism alone.
func (th *TeraHeap) Move(label uint64) {
	if label == 0 {
		th.stats.InvalidHints++
		return
	}
	th.clock.Charge(simclock.Other, 50*time.Nanosecond)
	if !th.cfg.EnableMoveHint {
		return
	}
	th.setAdvised(label)
	th.stats.MoveHints++
}

// denseLabelLimit bounds the dense advised bitset; labels above it (never
// produced by the in-tree frameworks) spill to the overflow map.
const denseLabelLimit = 1 << 20

// setAdvised records label's move hint.
func (th *TeraHeap) setAdvised(label uint64) {
	if label < denseLabelLimit {
		if label >= uint64(len(th.moveAdvised)) {
			grown := make([]bool, label+1)
			copy(grown, th.moveAdvised)
			th.moveAdvised = grown
		}
		th.moveAdvised[label] = true
		return
	}
	if th.moveAdvisedBig == nil {
		th.moveAdvisedBig = make(map[uint64]bool)
	}
	th.moveAdvisedBig[label] = true
}

// advised reports whether label's move hint was recorded.
func (th *TeraHeap) advised(label uint64) bool {
	if label < uint64(len(th.moveAdvised)) {
		return th.moveAdvised[label]
	}
	return th.moveAdvisedBig != nil && th.moveAdvisedBig[label]
}

// --- gc.SecondHeap: mutator-side --------------------------------------------

// Contains is the reference range check.
func (th *TeraHeap) Contains(a vm.Addr) bool {
	return a >= vm.H2Base && a < vm.H2Base+vm.Addr(th.cfg.H2Size)
}

// DirtyCard marks the card of an updated H2 object dirty (post-write
// barrier).
func (th *TeraHeap) DirtyCard(a vm.Addr) {
	th.cards.set(th.segmentOf(a), cardDirty)
}

// --- gc.SecondHeap: movement -------------------------------------------------

// MoveOnMinor reports whether label's objects promote straight from the
// young generation to H2 (the label's move hint has been issued; forced
// movement under pressure runs through the major-GC closure instead,
// where advised groups go first and the budget applies).
func (th *TeraHeap) MoveOnMinor(label uint64) bool {
	advised := th.cfg.EnableMoveHint && th.advised(label)
	if th.placement != nil {
		return th.placement.MoveToH2OnMinor(label, advised)
	}
	return advised
}

// Advised reports whether label's move hint was issued.
func (th *TeraHeap) Advised(label uint64) bool {
	return th.cfg.EnableMoveHint && th.advised(label)
}

// ShouldMoveLabel implements the hint + high/low threshold policy: an
// advised label always moves; under pressure, unadvised (possibly still
// mutable) labels move only while the projected H1 live volume remains
// above the relief target — the low threshold when set, otherwise the
// high threshold.
func (th *TeraHeap) ShouldMoveLabel(label uint64, selectedWords int64) bool {
	legacy := th.shouldMoveLabelLegacy(label, selectedWords)
	if th.placement != nil {
		return th.placement.MoveClosureAtMajor(label, legacy)
	}
	return legacy
}

// shouldMoveLabelLegacy is the pre-policy-plane decision, verbatim.
func (th *TeraHeap) shouldMoveLabelLegacy(label uint64, selectedWords int64) bool {
	if th.cfg.EnableMoveHint && th.advised(label) {
		return true
	}
	if !th.forceMove {
		return false
	}
	if th.cfg.LowThreshold <= 0 {
		// No low threshold: every marked object moves (§3.2 / Fig 9b NL).
		return true
	}
	// Bounded forced movement: move until the projected live volume is
	// back at the low threshold.
	remaining := th.pressureLive - selectedWords*vm.WordSize
	return float64(remaining) > th.cfg.LowThreshold*float64(th.pressureCap)
}

// ExcludeClass excludes runtime metadata and Reference-like classes from
// transitive closures.
func (th *TeraHeap) ExcludeClass(c *vm.Class) bool { return c.Excluded }

// TaggedRoots returns live tagged roots, pruning entries whose key object
// has already moved to H2 or been released.
func (th *TeraHeap) TaggedRoots() []gc.TaggedRoot {
	live := th.tagged[:0]
	for _, tr := range th.tagged {
		a := tr.Handle.Addr()
		if a.IsNull() || th.Contains(a) {
			continue
		}
		live = append(live, tr)
	}
	th.tagged = live
	return th.tagged
}

// BeginMajorMark resets region live bits and disarms forced movement for
// the cycle: the threshold decision is re-made by EvaluatePressure once
// marking has measured the live volume that would REMAIN in H1 after the
// advised (hinted) groups leave — so pressure that the hints already
// relieve never forces still-mutable groups out (§3.2).
func (th *TeraHeap) BeginMajorMark(oldUsedBytes, oldCapacity int64) {
	for _, r := range th.regions {
		if r != nil {
			r.live = false
			r.groupLive = false
		}
	}
	th.forceMove = false
	th.pressureLive = 0
	th.pressureCap = 0
	_ = oldUsedBytes
	_ = oldCapacity
}

// EvaluatePressure implements gc.SecondHeap: re-arm the threshold policy
// with the exact live volume measured by marking.
func (th *TeraHeap) EvaluatePressure(liveBytes, oldCapacity int64) {
	th.evaluateThreshold(liveBytes, oldCapacity)
}

// evaluateThreshold arms or disarms forced movement given H1 pressure.
func (th *TeraHeap) evaluateThreshold(liveBytes, oldCapacity int64) {
	occ := 0.0
	if oldCapacity > 0 {
		occ = float64(liveBytes) / float64(oldCapacity)
	}
	if occ > th.cfg.HighThreshold {
		if !th.forceMove {
			th.stats.HighThresholdTrips++
		}
		th.forceMove = true
		th.pressureLive = liveBytes
		th.pressureCap = oldCapacity
	} else {
		th.forceMove = false
		th.pressureLive = 0
		th.pressureCap = 0
	}
	th.adaptThresholds(th.forceMove)
}

// NoteForwardRef marks the region containing target live.
func (th *TeraHeap) NoteForwardRef(target vm.Addr) {
	r := th.regionOf(target)
	if r == nil {
		return
	}
	th.stats.ForwardRefs++
	if th.cfg.GroupMode == UnionFind {
		th.regions[th.find(r.id)].groupLive = true
		return
	}
	r.live = true
}

// FinishMajor frees dead regions in bulk (§3.3). Threshold arming lives
// entirely within the marking phase (EvaluatePressure).
func (th *TeraHeap) FinishMajor(oldLiveBytes, oldCapacity int64) {
	th.freeDeadRegions()
	_ = oldLiveBytes
	_ = oldCapacity
}
