package rt_test

import (
	"testing"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

func buildAndCheckList(t *testing.T, r rt.Runtime, n int) {
	t.Helper()
	classes := r.Classes()
	node := classes.ByName("Node")
	if node == nil {
		node = classes.MustFixed("Node", 1, 1)
	}
	h := r.NewHandle(vm.NullAddr)
	for i := n - 1; i >= 0; i-- {
		a, err := r.Alloc(node)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		r.WriteRef(a, 0, h.Addr())
		r.WritePrim(a, 0, uint64(i))
		h.Set(a)
	}
	if err := r.FullGC(); err != nil {
		t.Fatal(err)
	}
	a := h.Addr()
	for i := 0; i < n; i++ {
		if v := r.ReadPrim(a, 0); v != uint64(i) {
			t.Fatalf("node %d = %d", i, v)
		}
		a = r.ReadRef(a, 0)
	}
}

func TestMemoryModeJVMWorksAndChargesNVM(t *testing.T) {
	clock := simclock.New()
	nvm := storage.NewDevice(storage.NVM, clock)
	j := rt.NewMemoryModeJVM(2*storage.MB, 256*storage.KB, nvm, nil, clock)
	buildAndCheckList(t, j, 2000)
	st := nvm.Stats()
	if st.BytesRead == 0 {
		t.Fatal("memory mode charged no NVM reads (DRAM cache smaller than heap)")
	}
}

func TestPantheraPretenuresCold(t *testing.T) {
	clock := simclock.New()
	nvm := storage.NewDevice(storage.NVM, clock)
	j := rt.NewPantheraJVM(2*storage.MB, 256*storage.KB, nvm, nil, clock)
	cls := j.Classes().MustPrimArray("cold[]")
	a, err := j.AllocColdPrimArray(cls, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Collector().H1.InOld(a) {
		t.Fatalf("cold allocation not pretenured: %v", a)
	}
	// Writing deep into the old generation touches the NVM part.
	for i := 0; i < 64; i++ {
		j.WritePrim(a, i, uint64(i))
	}
	buildAndCheckList(t, j, 500)
}

func TestPantheraNVMPartChargesTime(t *testing.T) {
	clock := simclock.New()
	nvm := storage.NewDevice(storage.NVM, clock)
	// Tiny DRAM share: almost all of the old generation lives on NVM.
	j := rt.NewPantheraJVM(2*storage.MB, 32*storage.KB, nvm, nil, clock)
	cls := j.Classes().MustPrimArray("cold[]")
	for i := 0; i < 64; i++ {
		if _, err := j.AllocColdPrimArray(cls, 256); err != nil {
			t.Fatal(err)
		}
	}
	if nvm.Stats().BytesWritten == 0 {
		t.Fatal("no NVM write traffic recorded")
	}
	if clock.Now() == 0 {
		t.Fatal("no time charged for NVM access")
	}
}

func TestVanillaVsTHSameResults(t *testing.T) {
	run := func(withTH bool) uint64 {
		classes := vm.NewClassTable()
		node := classes.MustFixed("Node", 1, 1)
		var opts rt.Options
		opts.H1Size = 1 * storage.MB
		if withTH {
			cfg := core.DefaultConfig(32 * storage.MB)
			cfg.RegionSize = 32 * storage.KB
			opts.TH = &cfg
		}
		j := rt.NewJVM(opts, classes, simclock.New())
		h := j.NewHandle(vm.NullAddr)
		var sum uint64
		for i := 0; i < 5000; i++ {
			a, err := j.Alloc(node)
			if err != nil {
				t.Fatal(err)
			}
			j.WritePrim(a, 0, uint64(i*i))
			j.WriteRef(a, 0, h.Addr())
			h.Set(a)
			if i == 1000 && withTH {
				j.TagRoot(h, 1)
				j.MoveHint(1)
			}
		}
		if err := j.FullGC(); err != nil {
			t.Fatal(err)
		}
		for a := h.Addr(); !a.IsNull(); a = j.ReadRef(a, 0) {
			sum += j.ReadPrim(a, 0)
		}
		return sum
	}
	if v, th := run(false), run(true); v != th {
		t.Fatalf("results diverge: vanilla=%d teraheap=%d", v, th)
	}
}

func TestHeapUsedReporting(t *testing.T) {
	j := rt.NewJVM(rt.Options{H1Size: storage.MB}, nil, simclock.New())
	used0, cap0 := j.HeapUsed()
	if cap0 != storage.MB&^63 {
		t.Fatalf("capacity = %d", cap0)
	}
	cls := j.Classes().MustPrimArray("x[]")
	if _, err := j.AllocPrimArray(cls, 1000); err != nil {
		t.Fatal(err)
	}
	used1, _ := j.HeapUsed()
	if used1 <= used0 {
		t.Fatal("usage did not grow")
	}
}
