// Package rt wires the simulator's pieces (clock, devices, H1, collector,
// TeraHeap) into runnable managed runtimes and defines the Runtime
// interface the Spark and Giraph framework simulations program against.
//
// Four runtime flavours reproduce the paper's configurations:
//
//   - NewJVM with Options.TH == nil  → native JVM (Spark-SD, Giraph-OOC)
//   - NewJVM with Options.TH != nil  → TeraHeap
//   - NewMemoryModeJVM               → Spark-MO (heap over NVM memory mode)
//   - NewPantheraJVM                 → Panthera (old gen split DRAM+NVM)
//
// The G1 baseline lives in internal/baselines/g1 and implements the same
// Runtime interface.
package rt

import (
	"time"

	"github.com/carv-repro/teraheap-go/internal/gc"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// Runtime is the managed-runtime surface the framework simulations use.
type Runtime interface {
	Classes() *vm.ClassTable
	Mem() *vm.Mem
	Clock() *simclock.Clock

	// Allocation. AllocCold* place long-lived framework data: ordinary
	// young allocation everywhere except Panthera, which pretenures such
	// objects straight into the (NVM-backed) old generation.
	Alloc(c *vm.Class) (vm.Addr, error)
	AllocRefArray(c *vm.Class, n int) (vm.Addr, error)
	AllocPrimArray(c *vm.Class, n int) (vm.Addr, error)
	AllocCold(c *vm.Class) (vm.Addr, error)
	AllocColdRefArray(c *vm.Class, n int) (vm.Addr, error)
	AllocColdPrimArray(c *vm.Class, n int) (vm.Addr, error)

	// Mutator accesses (write barriers included).
	WriteRef(obj vm.Addr, field int, val vm.Addr)
	ReadRef(obj vm.Addr, field int) vm.Addr
	WritePrim(obj vm.Addr, i int, v uint64)
	ReadPrim(obj vm.Addr, i int) uint64

	// Roots.
	NewHandle(a vm.Addr) *vm.Handle
	Release(h *vm.Handle)

	// TeraHeap hints (no-ops on runtimes without H2).
	TagRoot(h *vm.Handle, label uint64)
	MoveHint(label uint64)

	// InSecondHeap reports whether a resides in H2.
	InSecondHeap(a vm.Addr) bool

	// HeapUsed returns the bytes in use and the capacity of H1 (used by
	// Giraph's out-of-core scheduler to gauge memory pressure).
	HeapUsed() (used, capacity int64)

	// FullGC forces a major collection.
	FullGC() error
	// OOM returns the latched out-of-memory error, if any.
	OOM() error

	// Hooks exposes the collector lifecycle-hook plane: the registration
	// point for cross-cutting observers (verification, event accounting,
	// tracing). Both collectors fire the same events.
	Hooks() *gc.Hooks
	// SetVerify toggles the stock full-heap verifier hook.
	SetVerify(v bool)

	GCStats() *gc.Stats
	Breakdown() simclock.Breakdown
}

// ChargeCompute bills mutator CPU work to the Other category; frameworks
// use it to price per-element computation.
func ChargeCompute(clock *simclock.Clock, d time.Duration) {
	clock.Charge(simclock.Other, d)
}

// mappedVMMemory adapts a storage.MappedFile to vm.Memory at base.
type mappedVMMemory struct {
	f    *storage.MappedFile
	base vm.Addr
}

func (m mappedVMMemory) Load(a vm.Addr) uint64     { return m.f.Load(a.Word(m.base)) }
func (m mappedVMMemory) Store(a vm.Addr, v uint64) { m.f.Store(a.Word(m.base), v) }
func (m mappedVMMemory) Peek(a vm.Addr) uint64     { return m.f.PeekWord(a.Word(m.base)) }

// nvmDirectMemory models byte-addressable NVM accessed with load/store
// instructions (App Direct mode): every word access charges an amortized
// cacheline-granularity cost and counts device traffic. Used by the
// Panthera baseline for the NVM-resident part of the old generation.
type nvmDirectMemory struct {
	base  vm.Addr
	words []uint64
	dev   *storage.Device
	clock *simclock.Clock

	readCost  time.Duration
	writeCost time.Duration
}

func newNVMDirectMemory(base vm.Addr, sizeBytes int64, dev *storage.Device, clock *simclock.Clock) *nvmDirectMemory {
	return &nvmDirectMemory{
		base:  base,
		words: make([]uint64, sizeBytes/vm.WordSize),
		dev:   dev,
		clock: clock,
		// Amortized per-word costs: Optane load ~300ns per 64B line with
		// ~8 words per line plus partial caching.
		readCost:  35 * time.Nanosecond,
		writeCost: 70 * time.Nanosecond,
	}
}

func (m *nvmDirectMemory) Load(a vm.Addr) uint64 {
	m.clock.ChargeAmbient(m.readCost)
	m.dev.AccountRead(vm.WordSize)
	return m.words[a.Word(m.base)]
}

func (m *nvmDirectMemory) Store(a vm.Addr, v uint64) {
	m.clock.ChargeAmbient(m.writeCost)
	m.dev.AccountWrite(vm.WordSize)
	m.words[a.Word(m.base)] = v
}

// Peek reads a word without charging NVM access cost or device traffic;
// invariant checks only.
func (m *nvmDirectMemory) Peek(a vm.Addr) uint64 { return m.words[a.Word(m.base)] }
