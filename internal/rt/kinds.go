package rt

import "fmt"

// KindInfo describes one runtime kind in the single registry that the
// CLI, serve-config parsing, metrics row labels, and the experiment
// runners all read. Adding a kind means adding one table entry (plus its
// NewSession construction arm) — there are no parallel enums or mapping
// switches to keep in sync.
type KindInfo struct {
	Kind Kind
	// Name is the canonical name: CLI arguments, serve `kinds=` config,
	// and serve metrics rows all use it.
	Name string
	// SparkLabel is the row-label component the Spark figure tables use
	// (historically distinct from Name for PS and MO).
	SparkLabel string
	// Aliases are accepted alternate spellings for CLI/config parsing.
	Aliases []string
	// TeraHeap reports whether the kind carries an H2 second heap.
	TeraHeap bool
	// Desc is a one-line description for usage text.
	Desc string
}

// kindTable is the registry. Table order is display and sweep order:
// the six paper configurations first, then the pretenuring/lifetime
// additions.
var kindTable = []KindInfo{
	{Kind: KindPS, Name: "ps", SparkLabel: "spark-sd", Aliases: []string{"sd"}, Desc: "native Parallel Scavenge JVM (Spark-SD, Giraph-OOC)"},
	{Kind: KindTH, Name: "th", SparkLabel: "th", TeraHeap: true, Desc: "PS + TeraHeap"},
	{Kind: KindG1, Name: "g1", SparkLabel: "g1", Desc: "Garbage-First baseline"},
	{Kind: KindMO, Name: "mo", SparkLabel: "spark-mo", Aliases: []string{"spark-mo"}, Desc: "PS over NVM memory mode (Spark-MO)"},
	{Kind: KindPanthera, Name: "panthera", SparkLabel: "panthera", Desc: "DRAM+NVM split old generation"},
	{Kind: KindG1TH, Name: "g1+th", SparkLabel: "g1+th", Aliases: []string{"g1th"}, TeraHeap: true, Desc: "G1 with an attached TeraHeap"},
	{Kind: KindNG2C, Name: "ng2c", SparkLabel: "ng2c", TeraHeap: true, Desc: "PS + TeraHeap + NG2C allocation-site pretenuring"},
	{Kind: KindDeca, Name: "deca", SparkLabel: "deca", TeraHeap: true, Desc: "PS + Deca lifetime regions in DRAM"},
}

// Kinds returns the registered kinds in registry order. The slice is a
// copy; callers may not mutate registry state.
func Kinds() []KindInfo {
	out := make([]KindInfo, len(kindTable))
	copy(out, kindTable)
	return out
}

// Info returns the registry entry for k. Unregistered values get a
// synthetic entry whose Name is Kind(N), so diagnostics never panic.
func (k Kind) Info() KindInfo {
	for _, e := range kindTable {
		if e.Kind == k {
			return e
		}
	}
	return KindInfo{Kind: k, Name: fmt.Sprintf("Kind(%d)", int(k)), SparkLabel: fmt.Sprintf("Kind(%d)", int(k))}
}

// String names the kind (the registry's canonical name).
func (k Kind) String() string { return k.Info().Name }

// SparkLabel returns the Spark-figure row label component for k.
func (k Kind) SparkLabel() string { return k.Info().SparkLabel }

// KindByName resolves a canonical name or alias to its kind.
func KindByName(s string) (Kind, bool) {
	for _, e := range kindTable {
		if e.Name == s {
			return e.Kind, true
		}
		for _, a := range e.Aliases {
			if a == s {
				return e.Kind, true
			}
		}
	}
	return 0, false
}

// KindNames returns the canonical kind names in registry order; error
// messages for unknown kinds name this set.
func KindNames() []string {
	out := make([]string, len(kindTable))
	for i, e := range kindTable {
		out[i] = e.Name
	}
	return out
}
