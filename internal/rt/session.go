package rt

import (
	"fmt"

	"github.com/carv-repro/teraheap-go/internal/baselines/g1"
	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/fault"
	"github.com/carv-repro/teraheap-go/internal/gc"
	"github.com/carv-repro/teraheap-go/internal/heap"
	"github.com/carv-repro/teraheap-go/internal/placement"
	"github.com/carv-repro/teraheap-go/internal/recovery"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// Kind selects a runtime configuration. The registry in kinds.go maps
// kinds to their names, labels, and aliases; String/SparkLabel/KindByName
// all read it.
type Kind int

// Runtime kinds: the paper's six configurations (§6 Table 2) plus the
// NG2C pretenuring and Deca lifetime-region runtimes.
const (
	KindPS       Kind = iota // native Parallel Scavenge JVM (Spark-SD, Giraph-OOC)
	KindTH                   // PS + TeraHeap
	KindG1                   // Garbage First baseline
	KindMO                   // PS over NVM memory mode (Spark-MO)
	KindPanthera             // DRAM+NVM split old generation
	KindG1TH                 // G1 with an attached TeraHeap (§7.1)
	KindNG2C                 // PS + TeraHeap + NG2C allocation-site pretenuring
	KindDeca                 // PS + Deca lifetime regions in DRAM
)

// Spec declares one run's runtime: which configuration to build, how to
// size it, and which cross-cutting layers (verification, fault injection)
// to wire in. NewSession resolves a Spec into a Session; it is the single
// construction path for every runtime kind, replacing the per-experiment
// switch statements that used to duplicate this wiring.
//
// All sizes are simulator bytes (experiment code converts paper GB with
// its Scale; see THSizing for the TeraHeap derivation).
type Spec struct {
	Kind Kind

	// H1Size is the managed heap size (for KindMO/KindPanthera, the whole
	// NVM-backed heap).
	H1Size int64
	// HeapCfg optionally overrides the PS heap geometry (Giraph runs
	// shrink the young generation); nil derives defaults from H1Size.
	HeapCfg *heap.Config
	// Costs optionally overrides the GC cost parameters.
	Costs *gc.CostParams

	// TH is the TeraHeap configuration; required for KindTH and KindG1TH.
	TH *core.Config

	// Device optionally provides a pre-built H2/off-heap device. When nil
	// the session builds one from DeviceKind and Stripes.
	Device *storage.Device
	// DeviceKind is the technology backing H2/off-heap; the zero value
	// (DRAM) defaults to NVMe SSD, the paper's base configuration.
	DeviceKind storage.Kind
	// Stripes stripes the device across N units (0/1 = one).
	Stripes int

	// DRAMCacheBytes sizes the hardware-managed DRAM cache in front of
	// the NVM heap (KindMO).
	DRAMCacheBytes int64
	// DRAMOldBytes is the DRAM share of the old generation (KindPanthera).
	DRAMOldBytes int64

	// G1 optionally overrides the G1 configuration (KindG1/KindG1TH);
	// nil derives g1.DefaultConfig from H1Size.
	G1 *g1.Config

	// Classes and Clock are shared when non-nil (microbenchmarks build
	// their class tables up front); nil builds fresh per-session ones.
	Classes *vm.ClassTable
	Clock   *simclock.Clock

	// GCWorkers sets the simulated GC gang size on PS-based kinds (PS, TH,
	// MO, Panthera): N > 1 deals each pause's work items round-robin onto N
	// per-worker spans and charges max-over-workers plus a per-barrier
	// steal/sync overhead. 0 or 1 keeps the legacy serial aggregate,
	// byte-identical to before the knob existed. G1-based kinds model
	// their own pause pipeline and ignore it.
	GCWorkers int
	// WritebackDepth enables the device's asynchronous writeback queue
	// with the given in-flight batch cap: H2 promotion buffers and
	// page-cache writeback submit to the queue and the residual service
	// time is charged when the queue drains at safepoints. 0 keeps the
	// legacy flat async-overlap discount.
	WritebackDepth int

	// Verify registers the full-heap invariant verifier hook.
	Verify bool
	// FaultPlan, when non-nil, builds this run's fault injector and
	// attaches it to the device and runtime. Each session gets its own
	// injector, so concurrent sessions never share fault state.
	FaultPlan *fault.Plan
	// Recovery configures the self-healing layer (PS-based TeraHeap
	// kinds: TH, NG2C, Deca). Nil installs recovery.DefaultPolicy; a
	// policy with Enabled=false opts out, restoring the latch-and-degrade
	// behavior.
	Recovery *recovery.Policy
}

// Session is a fully wired runtime instance: the runtime itself plus the
// per-run resources it was built from. Every run is self-contained — its
// own clock, class table, device, injector, and hook registrations — so
// sessions with different Verify/FaultPlan settings execute concurrently
// without observing each other.
type Session struct {
	Spec    Spec
	Clock   *simclock.Clock
	Classes *vm.ClassTable
	Runtime Runtime
	// Device is the H2/off-heap device (always built: PS/G1 runs use it
	// for the off-heap shuffle/cache files).
	Device *storage.Device
	// TH is the second heap, or nil for kinds without one.
	TH *core.TeraHeap
	// Injector is the run's fault injector (nil when Spec.FaultPlan is).
	Injector *fault.Injector
	// Events is the stock lifecycle-event accounting hook, registered on
	// every session after the verifier (the verifier must observe the
	// heap first).
	Events *EventStats
	// Recovery is the self-healing layer, installed last on the hook
	// plane for PS-based TeraHeap sessions with an enabled policy; nil
	// otherwise.
	Recovery *recovery.Manager
	// Placement is the session's placement policy when the kind installs
	// a non-default one (NG2C, Deca); nil for legacy-placement kinds.
	Placement placement.Policy
}

// EventStats counts collector lifecycle events: the second stock hook of
// the plane (after the verifier). Counting is observation only — it never
// mutates the heap or charges simulated time.
type EventStats struct {
	gc.BaseHook
	MinorGCs int64
	MajorGCs int64
	MixedGCs int64
	Faults   int64
	OOMs     int64
}

// AfterGC counts the completed collection.
func (e *EventStats) AfterGC(p gc.Phase) {
	switch p {
	case gc.PhaseMinor:
		e.MinorGCs++
	case gc.PhaseMajor:
		e.MajorGCs++
	case gc.PhaseMixed:
		e.MixedGCs++
	}
}

// OnFault counts a latched persistent device failure.
func (e *EventStats) OnFault(error) { e.Faults++ }

// OnOOM counts a latched out-of-memory condition.
func (e *EventStats) OnOOM(error) { e.OOMs++ }

// writebackHook drains the device's asynchronous writeback queue at every
// safepoint. BeforeGC fires while the clock is still in mutator context,
// so the residual service time lands in Other: the mutator waits for its
// dirty data to reach the device before the pause begins.
type writebackHook struct {
	gc.BaseHook
	dev *storage.Device
}

func (w *writebackHook) BeforeGC(gc.Phase) { w.dev.DrainWriteback() }

// NewSession resolves spec into a wired runtime. It panics on an invalid
// spec (unknown kind, missing TH config), matching the constructors it
// wraps; experiment code validates sizes beforehand where it needs
// soft failure.
func NewSession(spec Spec) *Session {
	clock := spec.Clock
	if clock == nil {
		clock = simclock.New()
	}
	classes := spec.Classes
	if classes == nil {
		classes = vm.NewClassTable()
	}

	dev := spec.Device
	if dev == nil {
		kind := spec.DeviceKind
		if kind == storage.DRAM && spec.Kind != KindDeca {
			// The zero value defaults to the paper's NVMe base
			// configuration — except for Deca, whose lifetime regions
			// live in memory (a DRAM-cost device).
			kind = storage.NVMeSSD
		}
		if spec.Stripes > 1 {
			dev = storage.NewStripedDevice(kind, spec.Stripes, clock)
		} else {
			dev = storage.NewDevice(kind, clock)
		}
	}

	s := &Session{Spec: spec, Clock: clock, Classes: classes, Device: dev}
	switch spec.Kind {
	case KindPS:
		s.Runtime = NewJVM(Options{H1Size: spec.H1Size, HeapCfg: spec.HeapCfg, Costs: spec.Costs}, classes, clock)
	case KindTH:
		if spec.TH == nil {
			panic("rt: Spec.TH is required for KindTH")
		}
		jvm := NewJVM(Options{H1Size: spec.H1Size, HeapCfg: spec.HeapCfg, Costs: spec.Costs,
			TH: spec.TH, H2Device: dev}, classes, clock)
		s.Runtime = jvm
		s.TH = jvm.TeraHeap()
	case KindG1:
		s.Runtime = g1.New(s.g1Config(), classes, clock)
	case KindG1TH:
		if spec.TH == nil {
			panic("rt: Spec.TH is required for KindG1TH")
		}
		g, th := g1.NewWithTeraHeap(s.g1Config(), *spec.TH, dev, classes, clock)
		s.Runtime = g
		s.TH = th
	case KindMO:
		s.Runtime = NewMemoryModeJVM(spec.H1Size, spec.DRAMCacheBytes, dev, classes, clock)
	case KindPanthera:
		s.Runtime = NewPantheraJVM(spec.H1Size, spec.DRAMOldBytes, dev, classes, clock)
	case KindNG2C:
		if spec.TH == nil {
			panic("rt: Spec.TH is required for KindNG2C")
		}
		jvm := NewJVM(Options{H1Size: spec.H1Size, HeapCfg: spec.HeapCfg, Costs: spec.Costs,
			TH: spec.TH, H2Device: dev}, classes, clock)
		pol := placement.NewNG2C(placement.DefaultNG2CConfig())
		jvm.SetPlacementPolicy(pol)
		s.Runtime = jvm
		s.TH = jvm.TeraHeap()
		s.Placement = pol
	case KindDeca:
		if spec.TH == nil {
			panic("rt: Spec.TH is required for KindDeca")
		}
		jvm := NewJVM(Options{H1Size: spec.H1Size, HeapCfg: spec.HeapCfg, Costs: spec.Costs,
			TH: spec.TH, H2Device: dev}, classes, clock)
		pol := placement.NewDeca()
		jvm.SetPlacementPolicy(pol)
		s.Runtime = jvm
		s.TH = jvm.TeraHeap()
		s.Placement = pol
	default:
		panic(fmt.Sprintf("rt: unknown runtime kind %d", int(spec.Kind)))
	}

	// Gang size: cost attribution only, so it is set post-construction on
	// the collector the PS-based kinds share. G1 kinds model their own
	// pause pipeline and take no gang.
	if spec.GCWorkers > 1 {
		if jvm, ok := s.Runtime.(*JVM); ok {
			jvm.Collector().Costs.Workers = spec.GCWorkers
		}
	}

	// Cross-cutting layers ride the hook plane, in fixed order: the
	// verifier first (it must see the heap before any layer reacts),
	// event accounting second.
	if spec.Verify {
		s.Runtime.SetVerify(true)
	}
	s.Events = &EventStats{}
	s.Runtime.Hooks().Register(s.Events)

	// The writeback queue drains at safepoints: a hook charges the
	// residual service time as mutator (ambient) wait just before each
	// pause — the documented second exception to the hook plane's
	// "never charge simulated time" rule.
	if spec.WritebackDepth > 0 {
		dev.SetWritebackDepth(spec.WritebackDepth)
		s.Runtime.Hooks().Register(&writebackHook{dev: dev})
	}

	s.Injector = fault.NewInjector(spec.FaultPlan)
	dev.SetFaultInjector(s.Injector)
	if s.Injector != nil {
		if fi, ok := s.Runtime.(interface{ SetFaultInjector(*fault.Injector) }); ok {
			fi.SetFaultInjector(s.Injector)
		}
	}

	// The recovery layer registers last, so the verifier and event counters
	// observe a fault before any repair runs. It needs the PS collector
	// (salvage re-materializes into H1's old generation), so only the
	// PS-based TeraHeap kinds get one.
	if spec.Kind == KindTH || spec.Kind == KindNG2C || spec.Kind == KindDeca {
		pol := recovery.DefaultPolicy()
		if spec.Recovery != nil {
			pol = *spec.Recovery
		}
		if pol.Enabled {
			jvm := s.Runtime.(*JVM)
			s.Recovery = recovery.NewManager(pol, jvm.Collector(), s.TH, s.Injector, clock)
			s.Recovery.Install()
		}
	}
	return s
}

// PlacementStats returns a snapshot of the session's placement-policy
// counters, or nil for legacy-placement kinds.
func (s *Session) PlacementStats() *placement.Stats {
	if s.Placement == nil {
		return nil
	}
	st := s.Placement.Stats()
	return &st
}

// RecoveryStats returns a snapshot of the recovery layer's counters, or
// nil when the session has no recovery layer installed.
func (s *Session) RecoveryStats() *recovery.Stats {
	if s.Recovery == nil {
		return nil
	}
	st := s.Recovery.Stats()
	return &st
}

// g1Config resolves the G1 configuration for G1-based kinds.
func (s *Session) g1Config() g1.Config {
	if s.Spec.G1 != nil {
		return *s.Spec.G1
	}
	return g1.DefaultConfig(s.Spec.H1Size)
}

// Fault returns the run's latched persistent storage failure, checking
// the injector first (device-level failures latch there even on runtimes
// without collector-level polling, like the G1 baseline) and then the
// runtime. Nil when the run is healthy.
func (s *Session) Fault() error {
	if f := s.Injector.Failure(); f != nil {
		return f
	}
	if rf := s.Injector.RegionFault(); rf != nil {
		return rf
	}
	if fr, ok := s.Runtime.(interface{ Fault() error }); ok {
		return fr.Fault()
	}
	return nil
}
