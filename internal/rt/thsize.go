package rt

import (
	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/storage"
)

// THSizing derives a TeraHeap run's H1 size and core.Config from the
// paper's DRAM budgets — the one place the hand-tuned H1-fraction
// arithmetic of §6 lives. Spark and Giraph runs differ only in their
// field values:
//
//   - Spark: BudgetGB is DRAM minus the 16 GB system reserve, the H1
//     fraction was tuned at TunedAtFrac = 0.8, and the H2 page cache gets
//     the fixed reserve (CacheGB = 16).
//   - Giraph: BudgetGB is all of DRAM, the Table 4 fraction applies
//     directly (TunedAtFrac = 0), and the cache gets whatever DRAM is
//     left (CacheGB = 0).
//
// All arithmetic stays in paper-GB floats with the exact operation order
// of the original per-runner code, so the derived byte values — and
// therefore every figure — are bit-identical to the pre-refactor ones.
type THSizing struct {
	// BudgetGB is the DRAM budget H1 is carved from.
	BudgetGB float64
	// H1Frac is the hand-tuned H1 share of the budget (§6: 50-90%).
	H1Frac float64
	// TunedAtFrac, when nonzero, renormalises H1Frac: the Spark fractions
	// were tuned at the DR2=16 points where H1 was 0.8 of the budget.
	TunedAtFrac float64
	// DatasetGB is the effective dataset size (workload size × scale);
	// H2 is provisioned at 3× dataset plus 64 GB slack.
	DatasetGB float64
	// CacheGB is the H2 page-cache budget; 0 means "the rest of the
	// budget after H1" (the Giraph layout).
	CacheGB float64
	// HugePages selects the scaled 2 MB mappings (§6 HugeMap) used by the
	// streaming ML workloads.
	HugePages bool
	// BytesPerGB maps one paper-GB to simulator bytes (the experiment
	// suite's Scale constant).
	BytesPerGB int64
}

// gb converts paper gigabytes to simulator bytes, 64-byte aligned —
// operation-for-operation the experiments.GB conversion.
func (s THSizing) gb(g float64) int64 {
	return int64(g*float64(s.BytesPerGB)) &^ 63
}

// H1GB returns the H1 size in paper GB, clamped to the budget.
func (s THSizing) H1GB() float64 {
	h1 := s.BudgetGB * s.H1Frac
	if s.TunedAtFrac > 0 {
		h1 = s.BudgetGB * s.H1Frac / s.TunedAtFrac
	}
	if h1 > s.BudgetGB {
		h1 = s.BudgetGB
	}
	return h1
}

// Resolve returns the H1 size in simulator bytes and the derived TeraHeap
// configuration (64 KB regions; callers layer workload-specific overrides
// on top).
func (s THSizing) Resolve() (h1Bytes int64, thCfg core.Config) {
	h1 := s.H1GB()
	thCfg = core.DefaultConfig(s.gb(s.DatasetGB*3 + 64))
	thCfg.RegionSize = 64 * storage.KB
	cache := s.CacheGB
	if cache == 0 {
		cache = s.BudgetGB - h1
	}
	thCfg.CacheBytes = s.gb(cache)
	if s.HugePages {
		thCfg.PageSize = 64 * storage.KB // scaled huge pages
	}
	return s.gb(h1), thCfg
}
