package rt

import (
	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/fault"
	"github.com/carv-repro/teraheap-go/internal/gc"
	"github.com/carv-repro/teraheap-go/internal/heap"
	"github.com/carv-repro/teraheap-go/internal/placement"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// Options configures a JVM instance.
type Options struct {
	// H1Size is the regular heap size in bytes.
	H1Size int64
	// HeapCfg optionally overrides the derived heap configuration.
	HeapCfg *heap.Config
	// Costs optionally overrides the GC cost parameters.
	Costs *gc.CostParams
	// TH enables TeraHeap with the given configuration (nil = vanilla).
	TH *core.Config
	// H2Device backs H2; required when TH is set. Defaults to NVMe SSD.
	H2Device *storage.Device
	// Pretenure routes AllocCold* allocations directly into the old
	// generation (the Panthera allocation policy).
	Pretenure bool
}

// JVM is the Parallel Scavenge-based runtime (native and TeraHeap modes).
type JVM struct {
	clock     *simclock.Clock
	classes   *vm.ClassTable
	as        *vm.AddressSpace
	collector *gc.Collector
	th        *core.TeraHeap
	pretenure bool

	// Devices for traffic accounting in experiments.
	H2Dev *storage.Device
}

var _ Runtime = (*JVM)(nil)

// NewJVM builds a PS-based runtime. With opts.TH set it is the TeraHeap
// configuration; otherwise it is the native JVM.
func NewJVM(opts Options, classes *vm.ClassTable, clock *simclock.Clock) *JVM {
	if clock == nil {
		clock = simclock.New()
	}
	if classes == nil {
		classes = vm.NewClassTable()
	}
	as := &vm.AddressSpace{}

	var th *core.TeraHeap
	var sh gc.SecondHeap
	var h2dev *storage.Device
	if opts.TH != nil {
		h2dev = opts.H2Device
		if h2dev == nil {
			h2dev = storage.NewDevice(storage.NVMeSSD, clock)
		}
		th = core.New(*opts.TH, h2dev, as, clock)
		sh = th
	}

	hc := heap.DefaultConfig(opts.H1Size)
	if opts.HeapCfg != nil {
		hc = *opts.HeapCfg
	}
	costs := gc.DefaultCostParams()
	if opts.Costs != nil {
		costs = *opts.Costs
	}
	col := gc.New(gc.Config{Heap: hc, Costs: costs}, as, classes, clock, sh)
	if th != nil {
		th.AttachMem(col.Mem)
	}
	return &JVM{
		clock:     clock,
		classes:   classes,
		as:        as,
		collector: col,
		th:        th,
		pretenure: opts.Pretenure,
		H2Dev:     h2dev,
	}
}

// NewJVMChecked builds a PS-based runtime like NewJVM but returns an error
// instead of panicking when the heap or TeraHeap configuration is invalid;
// experiment sweeps use it so a bad config fails one run, not the process.
func NewJVMChecked(opts Options, classes *vm.ClassTable, clock *simclock.Clock) (*JVM, error) {
	hc := heap.DefaultConfig(opts.H1Size)
	if opts.HeapCfg != nil {
		hc = *opts.HeapCfg
	}
	if err := hc.Validate(); err != nil {
		return nil, err
	}
	if opts.TH != nil {
		if err := opts.TH.Validate(); err != nil {
			return nil, err
		}
	}
	return NewJVM(opts, classes, clock), nil
}

// NewMemoryModeJVM builds the Spark-MO baseline: the whole of H1 lives on
// NVM in memory mode, with dramCacheBytes of DRAM acting as a hardware-
// managed cache in front of it.
func NewMemoryModeJVM(h1Size, dramCacheBytes int64, nvm *storage.Device, classes *vm.ClassTable, clock *simclock.Clock) *JVM {
	if clock == nil {
		clock = simclock.New()
	}
	if classes == nil {
		classes = vm.NewClassTable()
	}
	if nvm == nil {
		nvm = storage.NewDevice(storage.NVM, clock)
	}
	as := &vm.AddressSpace{}
	mapped := storage.NewMappedFile(nvm, h1Size, storage.DefaultPageSize, dramCacheBytes)
	as.Map(vm.H1Base, vm.H1Base+vm.Addr(h1Size), mappedVMMemory{f: mapped, base: vm.H1Base})

	hc := heap.DefaultConfig(h1Size)
	col := gc.NewWithHeap(heap.NewUnmapped(hc), gc.DefaultCostParams(), as, classes, clock, nil)
	return &JVM{clock: clock, classes: classes, as: as, collector: col, H2Dev: nvm}
}

// NewPantheraJVM builds the Panthera baseline: the young generation and
// dramOldBytes of the old generation in DRAM, the rest of the old
// generation directly on NVM (App Direct), with cold framework data
// pretenured into the old generation. Major GC scans the entire heap,
// including the NVM part — Panthera's fundamental cost (§7.5).
func NewPantheraJVM(h1Size, dramOldBytes int64, nvm *storage.Device, classes *vm.ClassTable, clock *simclock.Clock) *JVM {
	if clock == nil {
		clock = simclock.New()
	}
	if classes == nil {
		classes = vm.NewClassTable()
	}
	if nvm == nil {
		nvm = storage.NewDevice(storage.NVM, clock)
	}
	as := &vm.AddressSpace{}
	hc := heap.DefaultConfig(h1Size)
	h1 := heap.NewUnmapped(hc)

	// DRAM covers young generation plus the DRAM share of the old gen.
	dramEnd := h1.Old.Start + vm.Addr(dramOldBytes)
	if dramEnd > h1.Old.End {
		dramEnd = h1.Old.End
	}
	ram := vm.NewRAM(vm.H1Base, int64(dramEnd-vm.H1Base))
	as.Map(vm.H1Base, dramEnd, ram)
	if dramEnd < h1.Old.End {
		nvmPart := newNVMDirectMemory(dramEnd, int64(h1.Old.End-dramEnd), nvm, clock)
		as.Map(dramEnd, h1.Old.End, nvmPart)
	}

	col := gc.NewWithHeap(h1, gc.DefaultCostParams(), as, classes, clock, nil)
	return &JVM{clock: clock, classes: classes, as: as, collector: col, pretenure: true, H2Dev: nvm}
}

// Classes returns the class table.
func (j *JVM) Classes() *vm.ClassTable { return j.classes }

// Mem returns the object accessors.
func (j *JVM) Mem() *vm.Mem { return j.collector.Mem }

// Clock returns the simulation clock.
func (j *JVM) Clock() *simclock.Clock { return j.clock }

// Collector exposes the underlying collector (experiments, tests).
func (j *JVM) Collector() *gc.Collector { return j.collector }

// SetPlacementPolicy installs a placement policy on the collector and,
// when TeraHeap is attached, on its H2 movement decisions. Must be
// called before any allocation.
func (j *JVM) SetPlacementPolicy(p placement.Policy) {
	j.collector.SetPlacementPolicy(p)
	if j.th != nil {
		j.th.SetPlacementPolicy(p)
	}
}

// SetVerify toggles before/after-collection heap verification.
func (j *JVM) SetVerify(v bool) { j.collector.SetVerify(v) }

// Hooks exposes the collector's lifecycle-hook plane.
func (j *JVM) Hooks() *gc.Hooks { return j.collector.Hooks() }

// VerifyEnabled reports whether the verifier hook is registered.
func (j *JVM) VerifyEnabled() bool { return j.collector.VerifyEnabled() }

// SetFaultInjector attaches the run's fault injector to the collector, the
// H2 allocator, and the H2 device. One injector per run: all fault
// decisions draw from a single monotonic counter, which is what makes a
// faulty run reproducible from its seed.
func (j *JVM) SetFaultInjector(in *fault.Injector) {
	j.collector.SetFaultInjector(in)
	if j.th != nil {
		j.th.SetFaultInjector(in)
	}
	if j.H2Dev != nil {
		j.H2Dev.SetFaultInjector(in)
	}
}

// Fault returns the latched persistent storage fault (nil-safe for
// interface use), mirroring OOM.
func (j *JVM) Fault() error {
	if e := j.collector.Fault(); e != nil {
		return e
	}
	return nil
}

// TeraHeap returns the H2 instance, or nil.
func (j *JVM) TeraHeap() *core.TeraHeap { return j.th }

// Alloc allocates a fixed-layout instance.
func (j *JVM) Alloc(c *vm.Class) (vm.Addr, error) { return j.collector.Alloc(c) }

// AllocRefArray allocates a reference array of n elements.
func (j *JVM) AllocRefArray(c *vm.Class, n int) (vm.Addr, error) {
	return j.collector.AllocRefArray(c, n)
}

// AllocPrimArray allocates a primitive array of n words.
func (j *JVM) AllocPrimArray(c *vm.Class, n int) (vm.Addr, error) {
	return j.collector.AllocPrimArray(c, n)
}

// AllocCold allocates long-lived framework data (pretenured on Panthera;
// otherwise the cold bit reaches the placement policy's alloc decision).
func (j *JVM) AllocCold(c *vm.Class) (vm.Addr, error) {
	if j.pretenure {
		return j.collector.AllocPretenured(c, c.NumRefs, c.InstanceWords())
	}
	return j.collector.AllocCold(c)
}

// AllocColdRefArray allocates a long-lived reference array.
func (j *JVM) AllocColdRefArray(c *vm.Class, n int) (vm.Addr, error) {
	if j.pretenure {
		return j.collector.AllocPretenured(c, n, vm.HeaderWords+n)
	}
	return j.collector.AllocColdRefArray(c, n)
}

// AllocColdPrimArray allocates a long-lived primitive array.
func (j *JVM) AllocColdPrimArray(c *vm.Class, n int) (vm.Addr, error) {
	if j.pretenure {
		return j.collector.AllocPretenured(c, 0, vm.HeaderWords+n)
	}
	return j.collector.AllocColdPrimArray(c, n)
}

// WriteRef stores a reference field through the post-write barrier.
func (j *JVM) WriteRef(obj vm.Addr, field int, val vm.Addr) { j.collector.WriteRef(obj, field, val) }

// ReadRef loads a reference field.
func (j *JVM) ReadRef(obj vm.Addr, field int) vm.Addr { return j.collector.ReadRef(obj, field) }

// WritePrim stores a primitive word.
func (j *JVM) WritePrim(obj vm.Addr, i int, v uint64) { j.collector.WritePrim(obj, i, v) }

// ReadPrim loads a primitive word.
func (j *JVM) ReadPrim(obj vm.Addr, i int) uint64 { return j.collector.ReadPrim(obj, i) }

// NewHandle roots a handle.
func (j *JVM) NewHandle(a vm.Addr) *vm.Handle { return j.collector.NewHandle(a) }

// Release unroots a handle.
func (j *JVM) Release(h *vm.Handle) { j.collector.Release(h) }

// TagRoot applies h2_tag_root (no-op without TeraHeap).
func (j *JVM) TagRoot(h *vm.Handle, label uint64) {
	if j.th != nil {
		j.th.TagRoot(h, label)
	}
}

// MoveHint applies h2_move (no-op without TeraHeap).
func (j *JVM) MoveHint(label uint64) {
	if j.th != nil {
		j.th.Move(label)
	}
}

// InSecondHeap reports whether a is in H2.
func (j *JVM) InSecondHeap(a vm.Addr) bool { return j.th != nil && j.th.Contains(a) }

// HeapUsed returns H1 usage and capacity.
func (j *JVM) HeapUsed() (int64, int64) {
	return j.collector.H1.Used(), j.collector.H1.Cfg.H1Size
}

// FullGC forces a major collection.
func (j *JVM) FullGC() error { return j.collector.MajorGC() }

// OOM returns the latched out-of-memory error (nil-safe for interface use).
func (j *JVM) OOM() error {
	if e := j.collector.OOM(); e != nil {
		return e
	}
	return nil
}

// GCStats returns collector statistics.
func (j *JVM) GCStats() *gc.Stats { return j.collector.Stats() }

// Breakdown snapshots the execution-time breakdown.
func (j *JVM) Breakdown() simclock.Breakdown { return j.clock.Breakdown() }
