package rt

import (
	"testing"

	"github.com/carv-repro/teraheap-go/internal/storage"
)

// testScale mirrors the experiment suite's paper-GB → simulator-bytes
// mapping (1 GB = 100 KB).
const testScale = 100 * storage.KB

func testGB(g float64) int64 { return int64(g*float64(testScale)) &^ 63 }

// TestTHSizingSparkPoints pins the Spark derivation to the legacy
// per-runner formula at the Fig 6/7 sizing points: h1 = budget·frac/0.8
// clamped to the budget, H2 at 3× dataset + 64 GB, cache at the fixed
// 16 GB reserve. The expected values are the pre-refactor expressions,
// evaluated verbatim, so any float reordering in THSizing fails here.
func TestTHSizingSparkPoints(t *testing.T) {
	cases := []struct {
		name      string
		dramGB    float64
		frac      float64
		datasetGB float64
		huge      bool
	}{
		{"PR/80GB", 80, 0.8, 80, false},    // Fig 7 full point
		{"PR/32GB", 32, 0.8, 80, false},    // Fig 6 reduced point
		{"SSSP/37GB", 37, 0.72, 58, false}, // non-0.8 fraction
		{"SVM/36GB", 36, 0.67, 48, true},   // huge pages
		{"BC/57GB", 57, 0.84, 98, false},   // frac > 0.8 → clamp territory
		{"LR/43GB", 43, 0.77, 70, true},    // Fig 7 reduced ML point
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			heapGB := c.dramGB - 16.0
			if heapGB < 2 {
				heapGB = 2
			}
			// Legacy formula, exactly as the pre-refactor runner wrote it.
			h1 := heapGB * c.frac / 0.8
			if h1 > heapGB {
				h1 = heapGB
			}
			wantH1 := testGB(h1)
			wantH2 := testGB(c.datasetGB*3 + 64)
			wantCache := testGB(16.0)

			siz := THSizing{
				BudgetGB:    heapGB,
				H1Frac:      c.frac,
				TunedAtFrac: 0.8,
				DatasetGB:   c.datasetGB,
				CacheGB:     16.0,
				HugePages:   c.huge,
				BytesPerGB:  testScale,
			}
			gotH1, cfg := siz.Resolve()
			if gotH1 != wantH1 {
				t.Errorf("h1: got %d want %d", gotH1, wantH1)
			}
			if cfg.H2Size != wantH2 {
				t.Errorf("h2: got %d want %d", cfg.H2Size, wantH2)
			}
			if cfg.CacheBytes != wantCache {
				t.Errorf("cache: got %d want %d", cfg.CacheBytes, wantCache)
			}
			if cfg.RegionSize != 64*storage.KB {
				t.Errorf("region size: got %d want %d", cfg.RegionSize, 64*storage.KB)
			}
			wantPage := int64(storage.DefaultPageSize)
			if c.huge {
				wantPage = 64 * storage.KB
			}
			if int64(cfg.PageSize) != wantPage {
				t.Errorf("page size: got %d want %d", cfg.PageSize, wantPage)
			}
		})
	}
}

// TestTHSizingGiraphPoints pins the Giraph derivation: h1 = DRAM·frac
// with no renormalisation, and the page cache gets the remaining DRAM.
func TestTHSizingGiraphPoints(t *testing.T) {
	cases := []struct {
		name      string
		dramGB    float64
		frac      float64
		datasetGB float64
	}{
		{"PR/74GB", 74, 50.0 / 85, 85}, // Fig 9a reduced point
		{"PR/85GB", 85, 50.0 / 85, 85}, // Table 4 full point
		{"CDLP/74GB", 74, 60.0 / 85, 85},
		{"BFS/57GB", 57, 35.0 / 65, 65},
		{"SSSP/90GB", 90, 50.0 / 90, 90},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// Legacy formula from the pre-refactor Giraph runner.
			h1 := c.dramGB * c.frac
			wantH1 := testGB(h1)
			wantH2 := testGB(c.datasetGB*3 + 64)
			wantCache := testGB(c.dramGB - h1)

			siz := THSizing{
				BudgetGB:   c.dramGB,
				H1Frac:     c.frac,
				DatasetGB:  c.datasetGB,
				BytesPerGB: testScale,
			}
			gotH1, cfg := siz.Resolve()
			if gotH1 != wantH1 {
				t.Errorf("h1: got %d want %d", gotH1, wantH1)
			}
			if cfg.H2Size != wantH2 {
				t.Errorf("h2: got %d want %d", cfg.H2Size, wantH2)
			}
			if cfg.CacheBytes != wantCache {
				t.Errorf("cache: got %d want %d", cfg.CacheBytes, wantCache)
			}
		})
	}
}

// TestTHSizingClampsToBudget: a renormalised fraction above 1 clamps H1
// to the whole budget (the PR/CC full points, where frac = tuned-at).
func TestTHSizingClampsToBudget(t *testing.T) {
	siz := THSizing{BudgetGB: 64, H1Frac: 0.9, TunedAtFrac: 0.8, DatasetGB: 80, CacheGB: 16, BytesPerGB: testScale}
	if got, want := siz.H1GB(), 64.0; got != want {
		t.Fatalf("H1GB: got %v want %v (must clamp 0.9/0.8 = 1.125× to the budget)", got, want)
	}
	h1, _ := siz.Resolve()
	if h1 != testGB(64) {
		t.Fatalf("h1 bytes: got %d want %d", h1, testGB(64))
	}
}
