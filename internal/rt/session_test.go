package rt

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"github.com/carv-repro/teraheap-go/internal/baselines/g1"
	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/fault"
	"github.com/carv-repro/teraheap-go/internal/placement"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// allKinds lists every runtime kind the factory must construct.
var allKinds = []Kind{KindPS, KindTH, KindG1, KindMO, KindPanthera, KindG1TH, KindNG2C, KindDeca}

// testSpec builds a small-but-valid Spec for the kind.
func testSpec(k Kind) Spec {
	spec := Spec{Kind: k, H1Size: 4 * storage.MB}
	switch k {
	case KindTH, KindG1TH, KindNG2C, KindDeca:
		cfg := core.DefaultConfig(16 * storage.MB)
		cfg.RegionSize = 64 * storage.KB
		spec.TH = &cfg
	case KindMO:
		spec.DRAMCacheBytes = 1 * storage.MB
	case KindPanthera:
		spec.DRAMOldBytes = 1 * storage.MB
	}
	return spec
}

// driveMutator runs a small allocation/barrier workload ending in a
// forced major collection — enough to exercise allocation, barriers, and
// the hook plane on every runtime kind.
func driveMutator(tb testing.TB, r Runtime) {
	tb.Helper()
	node := r.Classes().MustFixed("sess.Node", 1, 2)
	h := r.NewHandle(vm.NullAddr)
	for i := 0; i < 400; i++ {
		a, err := r.Alloc(node)
		if err != nil {
			tb.Fatalf("Alloc %d: %v", i, err)
		}
		r.WriteRef(a, 0, h.Addr())
		if i%3 == 0 {
			h.Set(a)
		}
	}
	if err := r.FullGC(); err != nil {
		tb.Fatalf("FullGC: %v", err)
	}
}

// TestNewSessionAllKinds is the factory's acceptance table: every runtime
// kind × verify on/off × fault plan nil/non-nil builds a wired session
// whose hook plane, injector, and second heap match the spec, and which
// survives a smoke workload.
func TestNewSessionAllKinds(t *testing.T) {
	// The CI verify job exports TH_VERIFY=1, which force-registers the
	// verifier at the collector level regardless of the spec.
	envVerify := os.Getenv("TH_VERIFY") == "1"
	for _, kind := range allKinds {
		for _, verify := range []bool{false, true} {
			for _, withPlan := range []bool{false, true} {
				name := fmt.Sprintf("%v/verify=%v/fault=%v", kind, verify, withPlan)
				t.Run(name, func(t *testing.T) {
					spec := testSpec(kind)
					spec.Verify = verify
					if withPlan {
						spec.FaultPlan = &fault.Plan{Seed: 7} // zero rates: injector wired, no injections
					}
					ses := NewSession(spec)
					if ses.Runtime == nil || ses.Clock == nil || ses.Classes == nil || ses.Device == nil {
						t.Fatalf("session has nil core resources: %+v", ses)
					}
					wantTH := kind == KindTH || kind == KindG1TH || kind == KindNG2C || kind == KindDeca
					if (ses.TH != nil) != wantTH {
						t.Errorf("TH presence: got %v want %v", ses.TH != nil, wantTH)
					}
					if (ses.Injector != nil) != withPlan {
						t.Errorf("injector presence: got %v want %v", ses.Injector != nil, withPlan)
					}
					wantVerify := verify || envVerify
					ve, ok := ses.Runtime.(interface{ VerifyEnabled() bool })
					if !ok {
						t.Fatalf("runtime %T does not expose VerifyEnabled", ses.Runtime)
					}
					if ve.VerifyEnabled() != wantVerify {
						t.Errorf("VerifyEnabled: got %v want %v", ve.VerifyEnabled(), wantVerify)
					}
					wantHooks := 1 // EventStats
					if wantVerify {
						wantHooks++
					}
					if kind == KindTH || kind == KindNG2C || kind == KindDeca {
						wantHooks++ // recovery.Manager (default policy)
					}
					if got := ses.Runtime.Hooks().Len(); got != wantHooks {
						t.Errorf("hook count: got %d want %d", got, wantHooks)
					}
					wantRec := kind == KindTH || kind == KindNG2C || kind == KindDeca
					if (ses.Recovery != nil) != wantRec {
						t.Errorf("recovery presence: got %v want %v", ses.Recovery != nil, wantRec)
					}
					driveMutator(t, ses.Runtime)
					if ses.Events.MajorGCs < 1 {
						t.Errorf("EventStats.MajorGCs = %d after FullGC, want >= 1", ses.Events.MajorGCs)
					}
					if ses.Events.Faults != 0 || ses.Events.OOMs != 0 {
						t.Errorf("unexpected fault/OOM events: %+v", ses.Events)
					}
					if ses.Fault() != nil {
						t.Errorf("Fault() = %v on a healthy run", ses.Fault())
					}
				})
			}
		}
	}
}

// legacyRuntime constructs the kind the way the experiment runners did
// before the session factory existed.
func legacyRuntime(spec Spec) Runtime {
	clock := simclock.New()
	dev := storage.NewDevice(storage.NVMeSSD, clock)
	switch spec.Kind {
	case KindPS:
		return NewJVM(Options{H1Size: spec.H1Size}, nil, clock)
	case KindTH:
		return NewJVM(Options{H1Size: spec.H1Size, TH: spec.TH, H2Device: dev}, nil, clock)
	case KindG1:
		return g1.New(g1.DefaultConfig(spec.H1Size), nil, clock)
	case KindG1TH:
		g, _ := g1.NewWithTeraHeap(g1.DefaultConfig(spec.H1Size), *spec.TH, dev, nil, clock)
		return g
	case KindMO:
		return NewMemoryModeJVM(spec.H1Size, spec.DRAMCacheBytes, dev, nil, clock)
	case KindPanthera:
		return NewPantheraJVM(spec.H1Size, spec.DRAMOldBytes, dev, nil, clock)
	case KindNG2C:
		j := NewJVM(Options{H1Size: spec.H1Size, TH: spec.TH, H2Device: dev}, nil, clock)
		j.SetPlacementPolicy(placement.NewNG2C(placement.DefaultNG2CConfig()))
		return j
	case KindDeca:
		// Deca's lifetime regions live on a DRAM-cost device.
		j := NewJVM(Options{H1Size: spec.H1Size, TH: spec.TH,
			H2Device: storage.NewDevice(storage.DRAM, clock)}, nil, clock)
		j.SetPlacementPolicy(placement.NewDeca())
		return j
	}
	panic("unknown kind")
}

// TestSessionMatchesLegacyConstruction: the factory is a pure refactor of
// the old per-runner construction code, so a session-built runtime and a
// legacy-built one must produce identical simulated time and GC activity
// on the same workload.
func TestSessionMatchesLegacyConstruction(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			run := func(build func(Spec) Runtime) (time.Duration, int, int) {
				spec := testSpec(kind)
				r := build(spec)
				driveMutator(t, r)
				st := r.GCStats()
				return r.Breakdown().Total(), st.MinorCount, st.MajorCount
			}
			lt, lminor, lmajor := run(legacyRuntime)
			st, sminor, smajor := run(func(s Spec) Runtime { return NewSession(s).Runtime })
			if lt != st || lminor != sminor || lmajor != smajor {
				t.Errorf("session diverges from legacy construction: legacy(total=%v minor=%d major=%d) session(total=%v minor=%d major=%d)",
					lt, lminor, lmajor, st, sminor, smajor)
			}
		})
	}
}

// TestConcurrentSessionsDoNotShareConfig: two sessions with opposite
// verify/fault settings, driven concurrently, each keep their own
// configuration — the property that lets verified chaos runs interleave
// with unverified baseline runs in one process.
func TestConcurrentSessionsDoNotShareConfig(t *testing.T) {
	if os.Getenv("TH_VERIFY") == "1" {
		t.Skip("TH_VERIFY=1 force-enables the verifier on every collector")
	}
	var wg sync.WaitGroup
	check := func(verify, withPlan bool) {
		defer wg.Done()
		spec := testSpec(KindTH)
		spec.Verify = verify
		if withPlan {
			spec.FaultPlan = &fault.Plan{Seed: 11}
		}
		ses := NewSession(spec)
		driveMutator(t, ses.Runtime)
		if got := ses.Runtime.(interface{ VerifyEnabled() bool }).VerifyEnabled(); got != verify {
			t.Errorf("verify=%v session observed VerifyEnabled=%v", verify, got)
		}
		if (ses.Injector != nil) != withPlan {
			t.Errorf("withPlan=%v session observed injector=%v", withPlan, ses.Injector != nil)
		}
	}
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go check(true, true)
		go check(false, false)
	}
	wg.Wait()
}
