package rt

import (
	"fmt"
	"testing"

	"github.com/carv-repro/teraheap-go/internal/baselines/g1"
	"github.com/carv-repro/teraheap-go/internal/placement"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// legacyDouble is an independently-written reimplementation of the
// legacy placement behavior. It deliberately does not reuse
// placement.Default: the equivalence test below pins that a run with the
// policy seam actively exercised (a non-Default dynamic type at every
// call site) is byte-identical to the stock run, i.e. the seam itself
// adds no behavior and Default's semantics are exactly the hardcoded
// logic the collectors had before the refactor.
type legacyDouble struct{ calls int64 }

func (p *legacyDouble) Name() string { return "legacy-double" }
func (p *legacyDouble) AllocTarget(placement.Site, int, bool) placement.AllocDecision {
	p.calls++
	return placement.AllocDefault
}
func (p *legacyDouble) Promote(_ placement.Site, age, tenureAge int) bool {
	p.calls++
	return age >= tenureAge
}
func (p *legacyDouble) MoveToH2OnMinor(_ uint64, advised bool) bool {
	p.calls++
	return advised
}
func (p *legacyDouble) MoveClosureAtMajor(_ uint64, legacy bool) bool {
	p.calls++
	return legacy
}
func (p *legacyDouble) NoteScavenge(placement.Site, int, bool) { p.calls++ }
func (p *legacyDouble) NoteDeadOld(uint64)                     { p.calls++ }
func (p *legacyDouble) NotePretenured(placement.Site)          { p.calls++ }
func (p *legacyDouble) Stats() placement.Stats {
	return placement.Stats{Policy: "legacy-double"}
}

// installPolicy reaches the policy seam on whichever runtime flavour the
// session built.
func installPolicy(tb testing.TB, r Runtime, p placement.Policy) {
	tb.Helper()
	switch rt := r.(type) {
	case *JVM:
		rt.SetPlacementPolicy(p)
	case *g1.G1:
		rt.SetPlacementPolicy(p)
	default:
		tb.Fatalf("runtime %T has no placement seam", r)
	}
}

// driveEquivWorkload is a deterministic mutator that exercises every
// policy call site: allocation-driven scavenges with a retained set (so
// survivors age and Promote fires with both outcomes), cold allocations
// (Panthera's pretenure path), labelled roots with move hints (TeraHeap's
// minor-move path), and forced major collections (closure moves and
// dead-old sweeps).
func driveEquivWorkload(tb testing.TB, r Runtime) {
	tb.Helper()
	node := r.Classes().MustFixed("equiv.Node", 2, 2)
	cold := r.Classes().MustFixed("equiv.Cold", 1, 4)
	const label = 9
	root := r.NewHandle(vm.NullAddr)
	r.TagRoot(root, label)
	r.MoveHint(label)
	retained := r.NewHandle(vm.NullAddr)
	for i := 0; i < 40000; i++ {
		a, err := r.Alloc(node)
		if err != nil {
			tb.Fatalf("Alloc %d: %v", i, err)
		}
		if i%7 == 0 {
			// Chain into the retained list so survivors accumulate age.
			r.WriteRef(a, 0, retained.Addr())
			retained.Set(a)
		}
		if i%19 == 0 {
			// Grow the labelled structure the move hint targets.
			r.WriteRef(a, 1, root.Addr())
			root.Set(a)
		}
		if i%53 == 0 {
			if _, err := r.AllocCold(cold); err != nil {
				tb.Fatalf("AllocCold %d: %v", i, err)
			}
		}
	}
	if err := r.FullGC(); err != nil {
		tb.Fatalf("final FullGC: %v", err)
	}
}

// equivFingerprint reduces a finished session to the byte-comparable
// run fingerprint: virtual-time breakdown, GC statistics, device
// counters, and (when a second heap exists) H2 movement statistics.
func equivFingerprint(ses *Session) string {
	fp := fmt.Sprintf("breakdown=%+v\ngc=%+v\ndev=%+v\n",
		ses.Clock.Breakdown(), *ses.Runtime.GCStats(), ses.Device.Stats())
	if ses.TH != nil {
		fp += fmt.Sprintf("th=%+v\n", ses.TH.Stats())
	}
	return fp
}

// TestDefaultPolicyEquivalence pins the policy plane's zero-cost
// contract on the legacy kinds: an identical workload run stock (the
// built-in Default policy) and with the seam exercised by an external
// legacy-double policy produces byte-identical clock breakdowns, GC
// stats, and device/H2 counters for PS, TeraHeap, G1, and Panthera.
func TestDefaultPolicyEquivalence(t *testing.T) {
	for _, kind := range []Kind{KindPS, KindTH, KindG1, KindPanthera} {
		t.Run(kind.String(), func(t *testing.T) {
			stock := NewSession(testSpec(kind))
			driveEquivWorkload(t, stock.Runtime)

			seamed := NewSession(testSpec(kind))
			double := &legacyDouble{}
			installPolicy(t, seamed.Runtime, double)
			driveEquivWorkload(t, seamed.Runtime)

			a, b := equivFingerprint(stock), equivFingerprint(seamed)
			if a != b {
				t.Fatalf("seam changed run behavior:\nstock:\n%s\nseamed:\n%s", a, b)
			}
			if double.calls == 0 {
				t.Fatal("legacy double was never consulted (equivalence is vacuous)")
			}
		})
	}
}
