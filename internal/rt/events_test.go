package rt

import (
	"testing"

	"github.com/carv-repro/teraheap-go/internal/vm"
)

// marker is the optional interface G1-family runtimes expose for forcing
// a concurrent-mark + mixed-collection cycle.
type marker interface{ MarkingCycle() error }

// churnAlloc allocates n linked nodes, retaining every k-th one, so the
// young generation fills and triggers allocation-driven minor GCs.
func churnAlloc(tb testing.TB, r Runtime, cls *vm.Class, h *vm.Handle, n, k int) {
	tb.Helper()
	for i := 0; i < n; i++ {
		a, err := r.Alloc(cls)
		if err != nil {
			tb.Fatalf("Alloc %d: %v", i, err)
		}
		r.WriteRef(a, 0, h.Addr())
		if i%k == 0 {
			h.Set(a)
		}
	}
}

// TestEventStatsMixedPhases drives a G1 session through interleaved
// young, concurrent-mark+mixed, and full collections and checks that the
// EventStats collector attributes each pause to the right phase counter:
// young evacuations count as MinorGCs, mixed cycles as MixedGCs, and
// full compactions as MajorGCs. This is the contract pause-latency
// collectors (the serve plane's histogram, chaos triage) rely on when
// they bucket pauses by phase.
func TestEventStatsMixedPhases(t *testing.T) {
	ses := NewSession(testSpec(KindG1))
	r := ses.Runtime
	cls := r.Classes().MustFixed("events.Node", 1, 6)
	h := r.NewHandle(vm.NullAddr)

	m, ok := r.(marker)
	if !ok {
		t.Fatalf("G1 runtime %T does not expose MarkingCycle", r)
	}

	// Interleave the three collection shapes several times so counts
	// accumulate across phase changes, not just once per phase.
	for round := 0; round < 3; round++ {
		churnAlloc(t, r, cls, h, 3000, 7)
		if err := m.MarkingCycle(); err != nil {
			t.Fatalf("round %d MarkingCycle: %v", round, err)
		}
		churnAlloc(t, r, cls, h, 1500, 5)
		if err := r.FullGC(); err != nil {
			t.Fatalf("round %d FullGC: %v", round, err)
		}
	}

	ev := ses.Events
	if ev.MinorGCs == 0 {
		t.Errorf("MinorGCs = 0, want > 0 from allocation-driven young GCs")
	}
	if ev.MixedGCs < 3 {
		t.Errorf("MixedGCs = %d, want >= 3 (one per MarkingCycle)", ev.MixedGCs)
	}
	if ev.MajorGCs < 3 {
		t.Errorf("MajorGCs = %d, want >= 3 (one per FullGC)", ev.MajorGCs)
	}
	if ev.Faults != 0 || ev.OOMs != 0 {
		t.Errorf("unexpected fault/OOM events on a healthy run: %+v", ev)
	}

	// Cross-check phase attribution against the collector's own ledger.
	// G1 books both full compactions and mark+mixed cycles under
	// GCStats.MajorCount; the hook plane is what distinguishes them, so
	// EventStats must split that total as MajorGCs + MixedGCs exactly.
	st := r.GCStats()
	if int(ev.MinorGCs) != st.MinorCount {
		t.Errorf("MinorGCs = %d disagrees with GCStats.MinorCount = %d", ev.MinorGCs, st.MinorCount)
	}
	if int(ev.MajorGCs+ev.MixedGCs) != st.MajorCount {
		t.Errorf("MajorGCs+MixedGCs = %d+%d disagrees with GCStats.MajorCount = %d",
			ev.MajorGCs, ev.MixedGCs, st.MajorCount)
	}

	// A stop-the-world-only runtime must never report mixed pauses: the
	// parallel-scavenge session sees the same workload minus the marking
	// cycles and keeps MixedGCs at zero.
	ps := NewSession(testSpec(KindPS))
	pcls := ps.Runtime.Classes().MustFixed("events.Node", 1, 6)
	ph := ps.Runtime.NewHandle(vm.NullAddr)
	for round := 0; round < 3; round++ {
		churnAlloc(t, ps.Runtime, pcls, ph, 20000, 7)
		if err := ps.Runtime.FullGC(); err != nil {
			t.Fatalf("PS round %d FullGC: %v", round, err)
		}
	}
	if ps.Events.MixedGCs != 0 {
		t.Errorf("PS MixedGCs = %d, want 0 (no mixed phase exists)", ps.Events.MixedGCs)
	}
	if ps.Events.MinorGCs == 0 || ps.Events.MajorGCs < 3 {
		t.Errorf("PS events: %+v, want minor > 0 and major >= 3", ps.Events)
	}
}
