package rt

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// globalAllowlist is the closed set of package-level variables this
// package may declare. The kind registry is the single enumeration of
// runtime kinds (names, figure labels, aliases) read by the CLI, the
// serve config, and the experiment figures; it is append-only and never
// mutated after init. Anything else belongs on Spec/Session, not
// package state.
var globalAllowlist = map[string]string{
	"kindTable": "immutable runtime-kind registry (the one enumeration of kinds)",
}

// TestNoPackageLevelMutableState is the globals lint for the rt package,
// mirroring the experiments one: any non-allowlisted package-level var
// in a non-test file fails, so cross-session state cannot creep into the
// runtime factory.
func TestNoPackageLevelMutableState(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(".", name), nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, id := range vs.Names {
					if id.Name == "_" {
						continue // compile-time interface assertions
					}
					if _, ok := globalAllowlist[id.Name]; !ok {
						t.Errorf("%s: package-level var %q is not in the allowlist; "+
							"per-session state belongs on Spec/Session, not package state",
							fset.Position(id.Pos()), id.Name)
					}
				}
			}
		}
	}
}
