// Package check is the simulator's analog of OpenJDK's
// -XX:+VerifyBeforeGC/-XX:+VerifyAfterGC: a full-heap, full-metadata
// invariant verifier. It walks H1 (eden, survivors, old generation) and —
// through the H2 interface — every second-heap region, and validates
//
//	(a) object-graph closure: every reference field of every reachable
//	    object targets a mapped address holding a valid class id and a
//	    sane size/numRefs, and no forwarding pointers survive outside a
//	    GC pause;
//	(b) H1 card-table/start-array consistency: every old-generation
//	    object holding a young reference lies in a dirty card, and
//	    startArray[i] is exactly the lowest object header in card i;
//	(c) H2 card-table and region-metadata consistency (delegated to the
//	    H2 implementation, which owns the region internals);
//	(d) accounting conservation: space Used() equals the sum of walked
//	    object sizes, and simclock category breakdowns sum to Total().
//
// All heap reads go through the cost-free Peek path so that enabling
// verification never perturbs the deterministic simulated clock.
package check

import (
	"fmt"
	"strings"
	"time"

	"github.com/carv-repro/teraheap-go/internal/heap"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// Failure is one invariant violation, located as precisely as the rule
// allows: which space, which region, which card, which holder object and
// which of its reference fields. Unset positional fields are -1 (or the
// null address for Holder).
type Failure struct {
	Rule   string  // short rule identifier, e.g. "h1-card-missing-dirty"
	Space  string  // heap space or subsystem name ("eden", "old", "h2", "clock", ...)
	Region int     // H2/G1 region id, or -1
	Card   int     // card index, or -1
	Holder vm.Addr // object whose metadata or field is at fault, or null
	Field  int     // reference-field index within Holder, or -1
	Detail string  // human-readable diagnosis
}

// New returns a Failure for rule with every positional field unset;
// callers fill in what they know.
func New(rule, detail string) Failure {
	return Failure{Rule: rule, Region: -1, Card: -1, Field: -1, Detail: detail}
}

// String renders the failure with only the fields that are set.
func (f Failure) String() string {
	var b strings.Builder
	b.WriteString(f.Rule)
	if f.Space != "" {
		fmt.Fprintf(&b, " space=%s", f.Space)
	}
	if f.Region >= 0 {
		fmt.Fprintf(&b, " region=%d", f.Region)
	}
	if f.Card >= 0 {
		fmt.Fprintf(&b, " card=%d", f.Card)
	}
	if !f.Holder.IsNull() {
		fmt.Fprintf(&b, " holder=%v", f.Holder)
	}
	if f.Field >= 0 {
		fmt.Fprintf(&b, " field=%d", f.Field)
	}
	fmt.Fprintf(&b, ": %s", f.Detail)
	return b.String()
}

// Error makes a Failure usable as an error value.
func (f Failure) Error() string { return "check: " + f.String() }

// Report renders a bounded multi-line summary of failures, suitable for a
// panic message.
func Report(when string, failures []Failure) string {
	const maxShown = 12
	var b strings.Builder
	fmt.Fprintf(&b, "heap verification failed (%s): %d violation(s)\n", when, len(failures))
	for i, f := range failures {
		if i == maxShown {
			fmt.Fprintf(&b, "  ... %d more\n", len(failures)-maxShown)
			break
		}
		fmt.Fprintf(&b, "  %s\n", f.String())
	}
	return strings.TrimRight(b.String(), "\n")
}

// H2 is the verifier's view of a second heap. Region internals (segment
// cards, segFirst arrays, dependency lists, promotion buffers) are private
// to the implementing package, so the H2 side verifies itself and reports
// through the shared Failure type.
type H2 interface {
	// Contains reports whether a falls inside the H2 address range.
	Contains(a vm.Addr) bool
	// ContainsAllocated reports whether a falls inside the allocated
	// prefix of a live H2 region (i.e. is a plausible H2 object address).
	ContainsAllocated(a vm.Addr) bool
	// VerifySelf checks every H2 region's objects and metadata.
	// isYoung classifies H1 addresses for backward-reference card states;
	// validH1 reports whether an address is a valid H1 object start.
	VerifySelf(isYoung func(vm.Addr) bool, validH1 func(vm.Addr) bool, report func(Failure))
}

// PSView is everything the verifier needs to check a Parallel
// Scavenge-style collector (the gc.Collector used by the PS, TeraHeap,
// memory-mode and Panthera configurations).
type PSView struct {
	AS         *vm.AddressSpace
	Classes    *vm.ClassTable
	H1         *heap.H1
	Roots      *vm.RootSet
	StartArray []vm.Addr // collector's old-gen start array, indexed like H1.Cards
	Clock      *simclock.Clock
	H2         H2 // nil when no second heap is attached
}

// object is one parsed heap object.
type object struct {
	addr    vm.Addr
	size    int // words
	numRefs int
}

// Verifier runs the PS invariant rules with reusable scratch state, so a
// collector that verifies after every cycle (TH_VERIFY=1) amortizes the
// maps, object lists and BFS queue across runs instead of reallocating
// them each pause.
type Verifier struct {
	starts  map[vm.Addr]object
	objs    []object // arena for per-space object lists
	visited map[vm.Addr]bool
	queue   []vm.Addr
	want    []vm.Addr
	isStart func(vm.Addr) bool // pre-built closure over starts
}

// NewVerifier returns a Verifier with empty scratch state.
func NewVerifier() *Verifier {
	vr := &Verifier{
		starts:  make(map[vm.Addr]object),
		visited: make(map[vm.Addr]bool),
	}
	vr.isStart = func(a vm.Addr) bool {
		_, ok := vr.starts[a]
		return ok
	}
	return vr
}

// VerifyPS runs every invariant rule against a quiescent (outside-pause)
// PS heap and returns all violations found. One-shot convenience over
// (*Verifier).VerifyPS.
func VerifyPS(v PSView) []Failure { return NewVerifier().VerifyPS(v) }

// VerifyPS runs every invariant rule against a quiescent (outside-pause)
// PS heap and returns all violations found.
func (vr *Verifier) VerifyPS(v PSView) []Failure {
	var failures []Failure
	report := func(f Failure) { failures = append(failures, f) }

	clear(vr.starts)
	vr.objs = vr.objs[:0]
	vr.walkSpace(v, v.H1.Eden, "eden", report)
	vr.walkSpace(v, v.H1.From, "from", report)
	oldStart := len(vr.objs)
	vr.walkSpace(v, v.H1.Old, "old", report)
	old := vr.objs[oldStart:]

	// To-space must be empty between pauses: scavenge swaps survivors
	// after copying, major GC empties the young generation entirely.
	if v.H1.To.Used() != 0 {
		report(Failure{Rule: "h1-to-space-not-empty", Space: "to", Region: -1, Card: -1, Field: -1,
			Detail: fmt.Sprintf("to-space holds %d bytes outside a GC pause", v.H1.To.Used())})
	}

	vr.verifyReachable(v, report)
	verifyOldCards(v, old, report)
	vr.verifyStartArray(v, old, report)

	if v.H2 != nil {
		v.H2.VerifySelf(v.H1.InYoung, vr.isStart, report)
	}

	VerifyClock(v.Clock, report)

	return failures
}

// VerifyClock checks rule (d) for the simulated clock: the per-category
// breakdown must sum exactly to the total (conservation of simulated
// time). A nil clock is skipped.
func VerifyClock(clock *simclock.Clock, report func(Failure)) {
	if clock == nil {
		return
	}
	b := clock.Breakdown()
	var sum time.Duration
	for c := simclock.Category(0); int(c) < len(b.NS); c++ {
		sum += b.Get(c)
	}
	if sum != b.Total() {
		report(Failure{Rule: "clock-breakdown-sum", Space: "clock", Region: -1, Card: -1, Field: -1,
			Detail: fmt.Sprintf("category sum %v != total %v", sum, b.Total())})
	}
}

// walkSpace parse-walks [sp.Start, sp.Top), validating every header and
// checking that the walked sizes sum exactly to sp.Used(). Each valid
// object is recorded in vr.starts and appended to the vr.objs arena.
func (vr *Verifier) walkSpace(v PSView, sp *vm.Space, name string, report func(Failure)) {
	var sumWords int64
	a := sp.Start
	for a < sp.Top {
		status := v.AS.Peek(a)
		if vm.StatusForwarded(status) {
			report(Failure{Rule: "h1-forwarding-outside-pause", Space: name, Region: -1, Card: -1,
				Holder: a, Field: -1,
				Detail: fmt.Sprintf("forwarding pointer to %v survives outside a GC pause", vm.StatusForwardee(status))})
			return // cannot parse past a clobbered header
		}
		if status&(vm.FlagMark|vm.FlagClosure) != 0 {
			report(Failure{Rule: "h1-stale-gc-bits", Space: name, Region: -1, Card: -1,
				Holder: a, Field: -1,
				Detail: fmt.Sprintf("mark/closure bits 0x%x set outside a GC pause", status&(vm.FlagMark|vm.FlagClosure))})
		}
		cid := vm.StatusClassID(status)
		if cid == 0 || int(cid) >= v.Classes.Len() {
			report(Failure{Rule: "h1-bad-class", Space: name, Region: -1, Card: -1,
				Holder: a, Field: -1,
				Detail: fmt.Sprintf("class id %d out of range [1, %d)", cid, v.Classes.Len())})
			return
		}
		shape := v.AS.Peek(a + vm.WordSize)
		size := vm.ShapeSizeWords(shape)
		numRefs := vm.ShapeNumRefs(shape)
		if size < vm.HeaderWords || vm.HeaderWords+numRefs > size {
			report(Failure{Rule: "h1-bad-shape", Space: name, Region: -1, Card: -1,
				Holder: a, Field: -1,
				Detail: fmt.Sprintf("size %d words, %d refs is not a valid shape", size, numRefs)})
			return
		}
		end := a + vm.Addr(size*vm.WordSize)
		if end > sp.Top {
			report(Failure{Rule: "h1-object-overruns-top", Space: name, Region: -1, Card: -1,
				Holder: a, Field: -1,
				Detail: fmt.Sprintf("object end %v exceeds space top %v", end, sp.Top)})
			return
		}
		o := object{addr: a, size: size, numRefs: numRefs}
		vr.objs = append(vr.objs, o)
		vr.starts[a] = o
		sumWords += int64(size)
		a = end
	}
	if got, want := sumWords*vm.WordSize, sp.Used(); got != want {
		report(Failure{Rule: "h1-accounting", Space: name, Region: -1, Card: -1, Field: -1,
			Detail: fmt.Sprintf("walked object bytes %d != Used() %d", got, want)})
	}
}

// verifyReachable BFS-walks the object graph from the root set, checking
// that every reference field of every reachable H1 object targets null, a
// valid H1 object start, or an allocated H2 address.
func (vr *Verifier) verifyReachable(v PSView, report func(Failure)) {
	clear(vr.visited)
	visited := vr.visited
	queue := vr.queue[:0]
	push := func(a vm.Addr) {
		if !visited[a] {
			visited[a] = true
			queue = append(queue, a)
		}
	}
	rootIdx := 0
	v.Roots.ForEach(func(h *vm.Handle) {
		a := h.Addr()
		if a.IsNull() {
			rootIdx++
			return
		}
		if v.H2 != nil && v.H2.Contains(a) {
			if !v.H2.ContainsAllocated(a) {
				report(Failure{Rule: "root-dangling-h2", Space: "roots", Region: -1, Card: -1, Field: rootIdx,
					Detail: fmt.Sprintf("root handle %d targets unallocated H2 address %v", rootIdx, a)})
			}
		} else if _, ok := vr.starts[a]; !ok {
			report(Failure{Rule: "root-dangling", Space: "roots", Region: -1, Card: -1, Field: rootIdx,
				Detail: fmt.Sprintf("root handle %d targets %v, not a valid H1 object start", rootIdx, a)})
		} else {
			push(a)
		}
		rootIdx++
	})
	for len(queue) > 0 {
		a := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		o := vr.starts[a]
		for i := 0; i < o.numRefs; i++ {
			t := vm.Addr(v.AS.Peek(a + vm.Addr((vm.HeaderWords+i)*vm.WordSize)))
			if t.IsNull() {
				continue
			}
			if v.H2 != nil && v.H2.Contains(t) {
				if !v.H2.ContainsAllocated(t) {
					report(Failure{Rule: "ref-dangling-h2", Space: spaceName(v, a), Region: -1, Card: -1,
						Holder: a, Field: i,
						Detail: fmt.Sprintf("reference targets unallocated H2 address %v", t)})
				}
				continue // H2 interiors are verified by H2.VerifySelf
			}
			if _, ok := vr.starts[t]; !ok {
				rule := "ref-dangling"
				detail := fmt.Sprintf("reference targets %v, not a valid object start", t)
				if v.AS.Resolve(t) == nil {
					rule = "ref-unmapped"
					detail = fmt.Sprintf("reference targets unmapped address %v", t)
				}
				report(Failure{Rule: rule, Space: spaceName(v, a), Region: -1, Card: -1,
					Holder: a, Field: i, Detail: detail})
				continue
			}
			push(t)
		}
	}
	vr.queue = queue[:0]
}

// verifyOldCards checks that every old-generation object holding a young
// reference lies in a dirty card (rule (b), first half).
func verifyOldCards(v PSView, old []object, report func(Failure)) {
	cards := v.H1.Cards
	for i := range old {
		o := &old[i]
		for f := 0; f < o.numRefs; f++ {
			t := vm.Addr(v.AS.Peek(o.addr + vm.Addr((vm.HeaderWords+f)*vm.WordSize)))
			if t.IsNull() || !v.H1.InYoung(t) {
				continue
			}
			ci := cards.Index(o.addr)
			if cards.Get(ci) != heap.CardDirty {
				report(Failure{Rule: "h1-card-missing-dirty", Space: "old", Region: -1, Card: ci,
					Holder: o.addr, Field: f,
					Detail: fmt.Sprintf("old object holds young reference %v but its card is clean", t)})
			}
			break // one young ref suffices to require the card
		}
	}
}

// verifyStartArray checks that startArray[i] is exactly the lowest object
// header starting in card i, and null for cards where no object starts
// (rule (b), second half).
func (vr *Verifier) verifyStartArray(v PSView, old []object, report func(Failure)) {
	if v.StartArray == nil {
		return
	}
	cards := v.H1.Cards
	n := cards.NumCards()
	want := vr.want
	if cap(want) < n {
		want = make([]vm.Addr, n)
	} else {
		want = want[:n]
		clear(want)
	}
	vr.want = want
	for i := range old {
		a := old[i].addr
		ci := cards.Index(a)
		if ci < 0 || ci >= n {
			continue
		}
		if want[ci].IsNull() || a < want[ci] {
			want[ci] = a
		}
	}
	for i := 0; i < n && i < len(v.StartArray); i++ {
		if v.StartArray[i] != want[i] {
			report(Failure{Rule: "h1-start-array", Space: "old", Region: -1, Card: i,
				Holder: v.StartArray[i], Field: -1,
				Detail: fmt.Sprintf("startArray[%d]=%v but lowest object header in card is %v", i, v.StartArray[i], want[i])})
		}
	}
}

// spaceName classifies an H1 address for failure reports.
func spaceName(v PSView, a vm.Addr) string {
	switch {
	case v.H1.Eden.Contains(a):
		return "eden"
	case v.H1.From.Contains(a):
		return "from"
	case v.H1.To.Contains(a):
		return "to"
	case v.H1.Old.Contains(a):
		return "old"
	}
	return "?"
}
