// Package mllib implements the paper's Spark ML workloads — Linear
// Regression (LR), Logistic Regression (LgR), Support Vector Machine
// (SVM), and the Naive Bayes Classifier (BC) — over a cached labeled-point
// RDD (Table 3).
//
// Training performs streaming passes over the cached points each epoch:
// under TeraHeap the pass streams from the H2 device (the paper's
// "other time increases ... fetching data from the storage device" effect
// for LR/LgR/SVM, §7.1), while under Spark-SD it pays per-epoch
// deserialization.
package mllib

import (
	"math"
	"time"

	"github.com/carv-repro/teraheap-go/internal/spark"
	"github.com/carv-repro/teraheap-go/internal/vm"
	"github.com/carv-repro/teraheap-go/internal/workloads"
)

// Dataset couples a Go-side point set with its cached RDD.
type Dataset struct {
	Ctx   *spark.Context
	Data  *workloads.Points
	Parts int
	RDD   *spark.RDD
}

func (d *Dataset) partRange(p int) (int, int) {
	per := (d.Data.N + d.Parts - 1) / d.Parts
	lo := p * per
	hi := lo + per
	if hi > d.Data.N {
		hi = d.Data.N
	}
	return lo, hi
}

// Load materializes and persists the labeled-point RDD: one partition is
// a ref array of per-point prim arrays [label, x0..x(dim-1)] (float bits).
func Load(ctx *spark.Context, data *workloads.Points, parts int) *Dataset {
	d := &Dataset{Ctx: ctx, Data: data, Parts: parts}
	d.RDD = spark.NewRDD(ctx, parts, d.buildPartition).Persist()
	return d
}

func (d *Dataset) buildPartition(ctx *spark.Context, p int) (*vm.Handle, spark.PartStats, error) {
	lo, hi := d.partRange(p)
	n := hi - lo
	var st spark.PartStats
	root, err := ctx.RT.AllocRefArray(ctx.ClsPartition, n)
	if err != nil {
		return nil, st, err
	}
	h := ctx.RT.NewHandle(root)
	st.Objects = 1
	st.Words = int64(vm.HeaderWords + n)
	dim := d.Data.Dim
	for i := 0; i < n; i++ {
		pt, err := ctx.RT.AllocPrimArray(ctx.ClsData, dim+1)
		if err != nil {
			ctx.RT.Release(h)
			return nil, st, err
		}
		ctx.RT.WritePrim(pt, 0, math.Float64bits(d.Data.Labels[lo+i]))
		for j := 0; j < dim; j++ {
			ctx.RT.WritePrim(pt, 1+j, math.Float64bits(d.Data.X[lo+i][j]))
		}
		ctx.RT.WriteRef(h.Addr(), i, pt)
		st.Objects++
		st.Words += int64(vm.HeaderWords + dim + 1)
		st.Elements++
	}
	ctx.ChargeElements(int64(n * (dim + 1)))
	return h, st, nil
}

// forEachPoint streams the cached points, calling fn(label, pt address).
func (d *Dataset) forEachPoint(fn func(label float64, pt vm.Addr)) error {
	ctx := d.Ctx
	dim := d.Data.Dim
	return d.RDD.ForEachPartition(func(p int, root vm.Addr) error {
		lo, hi := d.partRange(p)
		for i := 0; i < hi-lo; i++ {
			pt := ctx.RT.ReadRef(root, i)
			label := math.Float64frombits(ctx.RT.ReadPrim(pt, 0))
			fn(label, pt)
		}
		ctx.ChargeElements(int64((hi - lo) * dim))
		return nil
	})
}

// feature reads feature j of the point at pt.
func (d *Dataset) feature(pt vm.Addr, j int) float64 {
	return math.Float64frombits(d.Ctx.RT.ReadPrim(pt, 1+j))
}

// gradientDescent runs epochs of full-batch gradient descent with the
// given per-sample gradient contribution.
func (d *Dataset) gradientDescent(epochs int, lr float64,
	grad func(label float64, pred float64) float64,
	pred func(w []float64, pt vm.Addr) float64) ([]float64, error) {

	dim := d.Data.Dim
	w := make([]float64, dim)
	for e := 0; e < epochs; e++ {
		g := make([]float64, dim)
		err := d.forEachPoint(func(label float64, pt vm.Addr) {
			p := pred(w, pt)
			c := grad(label, p)
			if c == 0 {
				return
			}
			for j := 0; j < dim; j++ {
				g[j] += c * d.feature(pt, j)
			}
		})
		if err != nil {
			return nil, err
		}
		// Gradient aggregation is a (small) shuffle; the per-epoch
		// gradient buffers are heap temporaries.
		if err := d.Ctx.Shuffle(int64(dim * d.Parts)); err != nil {
			return nil, err
		}
		for p := 0; p < d.Parts; p++ {
			if _, err := d.Ctx.RT.AllocPrimArray(d.Ctx.ClsData, dim+8); err != nil {
				return nil, err
			}
		}
		for j := 0; j < dim; j++ {
			w[j] -= lr * g[j] / float64(d.Data.N)
		}
		d.Ctx.ChargeCompute(time.Duration(int64(d.Data.N)*int64(dim)) * 3 * time.Nanosecond)
	}
	return w, nil
}

func (d *Dataset) dot(w []float64, pt vm.Addr) float64 {
	var s float64
	for j := range w {
		s += w[j] * d.feature(pt, j)
	}
	return s
}

// LinearRegression (LR) trains least-squares weights.
func (d *Dataset) LinearRegression(epochs int) ([]float64, error) {
	return d.gradientDescent(epochs, 0.1,
		func(label, pred float64) float64 { return 2 * (pred - label) },
		d.dot)
}

// LogisticRegression (LgR) trains a logistic classifier.
func (d *Dataset) LogisticRegression(epochs int) ([]float64, error) {
	return d.gradientDescent(epochs, 0.5,
		func(label, pred float64) float64 {
			// label in {-1,+1}; gradient of log-loss.
			return -label / (1 + math.Exp(label*pred))
		},
		d.dot)
}

// SVM trains a linear SVM with hinge loss.
func (d *Dataset) SVM(epochs int) ([]float64, error) {
	return d.gradientDescent(epochs, 0.2,
		func(label, pred float64) float64 {
			if label*pred < 1 {
				return -label
			}
			return 0
		},
		d.dot)
}

// Accuracy evaluates classification accuracy of weights w on the cached
// points.
func (d *Dataset) Accuracy(w []float64) (float64, error) {
	var correct, total int64
	err := d.forEachPoint(func(label float64, pt vm.Addr) {
		total++
		if d.dot(w, pt)*label > 0 {
			correct++
		}
	})
	if err != nil || total == 0 {
		return 0, err
	}
	return float64(correct) / float64(total), nil
}

// NaiveBayes (BC) fits per-class Gaussian feature statistics in a single
// pass and returns the resulting model.
type NBModel struct {
	Mean  [2][]float64
	Var   [2][]float64
	Prior [2]float64
}

// NaiveBayes trains the BC workload model.
func (d *Dataset) NaiveBayes() (*NBModel, error) {
	dim := d.Data.Dim
	var count [2]int64
	sum := [2][]float64{make([]float64, dim), make([]float64, dim)}
	sq := [2][]float64{make([]float64, dim), make([]float64, dim)}
	err := d.forEachPoint(func(label float64, pt vm.Addr) {
		c := 0
		if label > 0 {
			c = 1
		}
		count[c]++
		for j := 0; j < dim; j++ {
			x := d.feature(pt, j)
			sum[c][j] += x
			sq[c][j] += x * x
		}
	})
	if err != nil {
		return nil, err
	}
	// Aggregation temporaries per partition.
	for p := 0; p < d.Parts; p++ {
		if _, err := d.Ctx.RT.AllocPrimArray(d.Ctx.ClsData, 4*dim+8); err != nil {
			return nil, err
		}
	}
	if err := d.Ctx.Shuffle(int64(4 * dim * d.Parts)); err != nil {
		return nil, err
	}
	m := &NBModel{}
	total := count[0] + count[1]
	for c := 0; c < 2; c++ {
		m.Mean[c] = make([]float64, dim)
		m.Var[c] = make([]float64, dim)
		if count[c] == 0 {
			continue
		}
		m.Prior[c] = float64(count[c]) / float64(total)
		for j := 0; j < dim; j++ {
			mu := sum[c][j] / float64(count[c])
			m.Mean[c][j] = mu
			m.Var[c][j] = sq[c][j]/float64(count[c]) - mu*mu + 1e-9
		}
	}
	return m, nil
}

// KMeans clusters the cached points into k clusters with Lloyd's
// algorithm (the KM workload of the paper's Panthera comparison, Fig 12c).
// It returns the final within-cluster sum of squares.
func (d *Dataset) KMeans(k, iters int) (float64, error) {
	dim := d.Data.Dim
	centroids := make([][]float64, k)
	for c := 0; c < k; c++ {
		centroids[c] = make([]float64, dim)
		copy(centroids[c], d.Data.X[(c*d.Data.N)/k])
	}
	var wcss float64
	for it := 0; it < iters; it++ {
		sums := make([][]float64, k)
		counts := make([]int64, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		wcss = 0
		err := d.forEachPoint(func(label float64, pt vm.Addr) {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				var dist float64
				for j := 0; j < dim; j++ {
					diff := d.feature(pt, j) - centroids[c][j]
					dist += diff * diff
				}
				if dist < bestD {
					best, bestD = c, dist
				}
			}
			wcss += bestD
			counts[best]++
			for j := 0; j < dim; j++ {
				sums[best][j] += d.feature(pt, j)
			}
		})
		if err != nil {
			return 0, err
		}
		// Centroid aggregation shuffle + per-partition temporaries.
		if err := d.Ctx.Shuffle(int64(k * dim * d.Parts)); err != nil {
			return 0, err
		}
		for p := 0; p < d.Parts; p++ {
			if _, err := d.Ctx.RT.AllocPrimArray(d.Ctx.ClsData, k*dim+8); err != nil {
				return 0, err
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue
			}
			for j := 0; j < dim; j++ {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
		}
		d.Ctx.ChargeCompute(time.Duration(int64(d.Data.N)*int64(k*dim)) * 2 * time.Nanosecond)
	}
	return wcss, nil
}
