package mllib_test

import (
	"testing"

	"github.com/carv-repro/teraheap-go/internal/mllib"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/serde"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/spark"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/workloads"
)

func newCtx(t *testing.T) *spark.Context {
	t.Helper()
	jvm := rt.NewJVM(rt.Options{H1Size: 16 * storage.MB}, nil, simclock.New())
	return spark.NewContext(spark.Conf{
		RT: jvm, Mode: spark.ModeMO, Threads: 4, SerKind: serde.Kryo,
	})
}

func load(t *testing.T, n int) *mllib.Dataset {
	t.Helper()
	return mllib.Load(newCtx(t), workloads.GenPoints(17, n, 6), 8)
}

func TestLogisticRegressionLearns(t *testing.T) {
	d := load(t, 2000)
	w, err := d.LogisticRegression(15)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := d.Accuracy(w)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.80 {
		t.Fatalf("LgR accuracy %.3f < 0.80", acc)
	}
}

func TestSVMLearns(t *testing.T) {
	d := load(t, 2000)
	w, err := d.SVM(15)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := d.Accuracy(w)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.80 {
		t.Fatalf("SVM accuracy %.3f < 0.80", acc)
	}
}

func TestLinearRegressionReducesLoss(t *testing.T) {
	d := load(t, 1500)
	w1, err := d.LinearRegression(1)
	if err != nil {
		t.Fatal(err)
	}
	d2 := load(t, 1500)
	w15, err := d2.LinearRegression(15)
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := d.Accuracy(w1)
	a15, _ := d2.Accuracy(w15)
	if a15 < a1-0.02 { // allow convergence plateau jitter
		t.Fatalf("more epochs hurt: %.3f -> %.3f", a1, a15)
	}
	if a15 < 0.75 {
		t.Fatalf("LR accuracy %.3f", a15)
	}
}

func TestNaiveBayesModelIsSane(t *testing.T) {
	d := load(t, 3000)
	m, err := d.NaiveBayes()
	if err != nil {
		t.Fatal(err)
	}
	if p := m.Prior[0] + m.Prior[1]; p < 0.999 || p > 1.001 {
		t.Fatalf("priors sum to %v", p)
	}
	// Cluster means are separated by ~1.6 per dimension (labels at ±0.8).
	for j := 0; j < 6; j++ {
		sep := m.Mean[1][j] - m.Mean[0][j]
		if sep < 0.8 {
			t.Fatalf("dimension %d means not separated: %v vs %v", j, m.Mean[0][j], m.Mean[1][j])
		}
		if m.Var[0][j] <= 0 || m.Var[1][j] <= 0 {
			t.Fatalf("non-positive variance at %d", j)
		}
	}
}

func TestKMeansReducesWCSS(t *testing.T) {
	d := load(t, 2000)
	w1, err := d.KMeans(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	d2 := load(t, 2000)
	w10, err := d2.KMeans(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if w10 > w1 {
		t.Fatalf("k-means WCSS grew: %v -> %v", w1, w10)
	}
}

func TestTrainingChargesComputeAndCacheReads(t *testing.T) {
	ctx := newCtx(t)
	d := mllib.Load(ctx, workloads.GenPoints(19, 1000, 6), 8)
	if _, err := d.SVM(5); err != nil {
		t.Fatal(err)
	}
	b := ctx.Breakdown()
	if b.Get(simclock.Other) <= 0 {
		t.Fatal("no compute charged")
	}
	if b.Get(simclock.SerDesIO) <= 0 {
		t.Fatal("no shuffle S/D charged")
	}
}
