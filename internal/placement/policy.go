// Package placement centralizes every "where does this object go"
// decision the runtimes make: eden vs old generation at allocation time,
// promotion at scavenge time, and young->H2 / closure->H2 movement for
// TeraHeap-backed kinds. The collectors (gc.Collector, the G1 young
// collector) and core.TeraHeap consult a single Policy at each decision
// point; Default reproduces the legacy hardcoded behavior exactly, so a
// run with the default policy is byte-identical to one predating the
// seam. New runtime kinds (NG2C pretenuring, Deca lifetime regions) are
// one policy implementation each — no collector changes required.
package placement

import "github.com/carv-repro/teraheap-go/internal/vm"

// Site identifies an allocation site. Sites are class IDs: the simulated
// frameworks allocate each logical site through a distinct vm.Class, and
// class IDs are assigned in registration order, so site numbering is
// deterministic across processes for the same workload.
type Site uint32

// siteMask bounds site indices to the class-ID range; it keeps dense
// per-site tables small and makes degenerate inputs (fuzzed site values)
// safe by construction.
const siteMask = vm.ClassMask

// SiteFromStatus extracts the allocation site from a raw object status
// word (the class-ID bits, already loaded on every GC copy path).
func SiteFromStatus(status uint64) Site { return Site(status & vm.ClassMask) }

// AllocDecision is a policy's answer for where a new object should be
// placed at allocation time.
type AllocDecision uint8

const (
	// AllocDefault leaves the target space to the collector's legacy
	// logic (eden, or the old generation for pretenuring runtimes like
	// Panthera that request it out-of-band).
	AllocDefault AllocDecision = iota
	// AllocOld asks the collector to place the object directly in the
	// old generation. The collector falls back to the legacy path if old
	// space cannot take the object without a full collection.
	AllocOld
)

// Policy is the placement-decision seam. Decision methods are called on
// GC and allocation hot paths: implementations must be deterministic
// (state driven only by the call stream), must never panic on degenerate
// inputs, and must not allocate in steady state.
type Policy interface {
	// Name is the policy's diagnostic name.
	Name() string

	// AllocTarget decides the target space for a new object of
	// sizeWords words allocated at site. cold marks AllocCold* calls
	// (the framework's cold-allocation hint).
	AllocTarget(site Site, sizeWords int, cold bool) AllocDecision

	// Promote decides, during a scavenge, whether the surviving object
	// (now at the given age) should be tenured into the old generation.
	// tenureAge is the collector's configured threshold; the default
	// policy returns age >= tenureAge.
	Promote(site Site, age, tenureAge int) bool

	// MoveToH2OnMinor decides whether a labelled young object moves
	// directly to H2 during a scavenge. advised is the legacy decision
	// (move-hint issued for the label and hints enabled).
	MoveToH2OnMinor(label uint64, advised bool) bool

	// MoveClosureAtMajor decides whether a label's transitive closure
	// moves to H2 at major GC. legacy is the hardcoded decision
	// (advised, or forced under H1 pressure thresholds).
	MoveClosureAtMajor(label uint64, legacy bool) bool

	// NoteScavenge feeds per-site survival feedback after each scavenge
	// copy: the object's post-copy age and whether it was tenured.
	NoteScavenge(site Site, age int, promoted bool)

	// NoteDeadOld feeds the raw status word of each dead old-generation
	// object observed during major-GC precompaction; pretenuring
	// policies use the vm.FlagPretenured bit to count mispredictions.
	NoteDeadOld(status uint64)

	// NotePretenured records a successful direct old-generation
	// placement requested by AllocTarget.
	NotePretenured(site Site)

	// Stats returns a snapshot of the policy's counters.
	Stats() Stats
}

// Stats is a policy-counter snapshot; fields not meaningful for a given
// policy stay zero.
type Stats struct {
	Policy string

	// NG2C-style pretenuring counters.
	SitesProfiled     int     // sites with any observed activity
	SitesPretenured   int     // sites currently in the pretenure state
	PretenuredObjects int64   // direct old-generation placements
	EarlyPromotions   int64   // survivor-free promotions at scavenge time
	Mispredictions    int64   // dead pretenured objects seen at major GC
	Demotions         int64   // sites demoted back to young allocation
	Generations       []int64 // pretenured placements per target generation

	// Deca-style lifetime-region counters.
	EagerLabels        int   // distinct labels (epochs) placed eagerly
	EagerMinorMoves    int64 // young objects moved to H2 regions at minor GC
	EagerMajorClosures int64 // closure moves forced beyond the legacy decision
}

// Default is the legacy placement policy: every decision reproduces the
// collectors' pre-seam hardcoded behavior verbatim, and every feedback
// hook is a no-op. Runs under Default are byte-identical to runs
// predating the policy plane.
type Default struct{}

// Name implements Policy.
func (Default) Name() string { return "default" }

// AllocTarget implements Policy: the collector's legacy logic decides.
func (Default) AllocTarget(Site, int, bool) AllocDecision { return AllocDefault }

// Promote implements Policy: the classic age threshold.
func (Default) Promote(_ Site, age, tenureAge int) bool { return age >= tenureAge }

// MoveToH2OnMinor implements Policy: exactly the move-hint decision.
func (Default) MoveToH2OnMinor(_ uint64, advised bool) bool { return advised }

// MoveClosureAtMajor implements Policy: exactly the legacy decision.
func (Default) MoveClosureAtMajor(_ uint64, legacy bool) bool { return legacy }

// NoteScavenge implements Policy (no-op).
func (Default) NoteScavenge(Site, int, bool) {}

// NoteDeadOld implements Policy (no-op).
func (Default) NoteDeadOld(uint64) {}

// NotePretenured implements Policy (no-op).
func (Default) NotePretenured(Site) {}

// Stats implements Policy.
func (Default) Stats() Stats { return Stats{Policy: "default"} }
