package placement

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/carv-repro/teraheap-go/internal/vm"
)

// lcg is the test's deterministic event-stream generator: the same seed
// must produce the same decision/feedback stream in any process.
type lcg struct{ s uint64 }

func (r *lcg) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s
}

// drive feeds n pseudo-random policy events drawn from seed into p,
// mirroring the call mix the collectors produce.
func drive(p Policy, seed uint64, n int) {
	r := &lcg{s: seed}
	for i := 0; i < n; i++ {
		v := r.next()
		site := Site(v % 257)
		age := int(v >> 8 % 19)
		switch v >> 32 % 6 {
		case 0:
			p.AllocTarget(site, int(v%4096), v%2 == 0)
		case 1:
			if p.Promote(site, age, 3) {
				p.NoteScavenge(site, age, true)
			} else {
				p.NoteScavenge(site, age, false)
			}
		case 2:
			status := uint64(site) | vm.FlagPretenured
			p.NoteDeadOld(status)
		case 3:
			p.NoteDeadOld(uint64(site)) // dead but not pretenured
		case 4:
			p.NotePretenured(site)
		case 5:
			p.MoveToH2OnMinor(v%64, v%2 == 0)
			p.MoveClosureAtMajor(v%64, v%3 == 0)
		}
	}
}

// TestDefaultIsLegacy pins the default policy to the collectors'
// pre-seam behavior: pure pass-through decisions, no-op feedback.
func TestDefaultIsLegacy(t *testing.T) {
	var d Default
	if d.AllocTarget(7, 100, true) != AllocDefault {
		t.Error("Default.AllocTarget must leave placement to the collector")
	}
	for age := 0; age < 6; age++ {
		if got, want := d.Promote(1, age, 3), age >= 3; got != want {
			t.Errorf("Promote(age=%d, tenure=3) = %v, want %v", age, got, want)
		}
	}
	for _, adv := range []bool{true, false} {
		if d.MoveToH2OnMinor(5, adv) != adv {
			t.Errorf("MoveToH2OnMinor must return advised=%v verbatim", adv)
		}
		if d.MoveClosureAtMajor(5, adv) != adv {
			t.Errorf("MoveClosureAtMajor must return legacy=%v verbatim", adv)
		}
	}
	if s := d.Stats(); s.Policy != "default" {
		t.Errorf("Stats().Policy = %q", s.Policy)
	}
}

// TestNG2CDeterministicProfile is the classification determinism
// property: two independent profilers fed the identical event stream
// end with byte-identical profiles (the cross-process half of the
// property is CI's two-process pretenure cmp).
func TestNG2CDeterministicProfile(t *testing.T) {
	for _, seed := range []uint64{1, 7, 0xDEADBEEF} {
		a := NewNG2C(DefaultNG2CConfig())
		b := NewNG2C(DefaultNG2CConfig())
		drive(a, seed, 50000)
		drive(b, seed, 50000)
		sa, sb := a.Stats(), b.Stats()
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("seed %d: profiles diverged:\n a %+v\n b %+v", seed, sa, sb)
		}
		if fmt.Sprintf("%+v", sa) != fmt.Sprintf("%+v", sb) {
			t.Fatalf("seed %d: rendered profiles diverged", seed)
		}
		if sa.SitesProfiled == 0 {
			t.Fatalf("seed %d: stream profiled no sites (test is vacuous)", seed)
		}
	}
}

// TestNG2CFlipAndDemote walks one site through the full lifecycle:
// young, flipped to pretenure at the promote threshold, demoted at the
// misprediction threshold.
func TestNG2CFlipAndDemote(t *testing.T) {
	p := NewNG2C(NG2CConfig{PromoteThreshold: 4, DemoteThreshold: 3, Generations: 2})
	const site = Site(42)
	if p.AllocTarget(site, 8, false) != AllocDefault {
		t.Fatal("unflipped site must allocate young")
	}
	for i := 0; i < 4; i++ {
		if got := p.Promote(site, 3, 3); !got {
			t.Fatalf("age=tenure must promote (i=%d)", i)
		}
		p.NoteScavenge(site, 3, true)
	}
	if p.AllocTarget(site, 8, false) != AllocOld {
		t.Fatal("site must flip to pretenure after 4 promotions")
	}
	if !p.Promote(site, 1, 3) {
		t.Fatal("pretenured site must be survivor-free (promote below tenure age)")
	}
	p.NotePretenured(site)
	s := p.Stats()
	if s.SitesPretenured != 1 || s.PretenuredObjects != 1 {
		t.Fatalf("after flip: %+v", s)
	}
	if len(s.Generations) != 2 || s.Generations[0]+s.Generations[1] != 1 {
		t.Fatalf("generation accounting: %+v", s.Generations)
	}
	status := uint64(site) | vm.FlagPretenured
	for i := 0; i < 3; i++ {
		p.NoteDeadOld(status)
	}
	if p.AllocTarget(site, 8, false) != AllocDefault {
		t.Fatal("site must demote after 3 dead pretenured objects")
	}
	s = p.Stats()
	if s.Demotions != 1 || s.Mispredictions != 3 || s.SitesPretenured != 0 {
		t.Fatalf("after demotion: %+v", s)
	}
	// Non-pretenured dead objects are not mispredictions.
	p.NoteDeadOld(uint64(site))
	if got := p.Stats().Mispredictions; got != 3 {
		t.Fatalf("unflagged dead old object counted as misprediction: %d", got)
	}
}

// TestNG2CDegenerateConfigs: zero/negative/huge config fields are
// sanitized, never panic.
func TestNG2CDegenerateConfigs(t *testing.T) {
	for _, cfg := range []NG2CConfig{
		{},
		{PromoteThreshold: -1, DemoteThreshold: -1, Generations: -5},
		{Generations: 1 << 30},
		{PromoteThreshold: 1, DemoteThreshold: 1, Generations: 1},
	} {
		p := NewNG2C(cfg)
		drive(p, 99, 10000)
		s := p.Stats()
		if len(s.Generations) < 1 || len(s.Generations) > maxNG2CGenerations {
			t.Errorf("config %+v: %d generations", cfg, len(s.Generations))
		}
	}
}

// TestNG2CZeroAllocSteadyState pins the minor-GC hot path: once a site's
// slab slot exists, policy decisions and feedback perform zero heap
// allocations per operation.
func TestNG2CZeroAllocSteadyState(t *testing.T) {
	p := NewNG2C(DefaultNG2CConfig())
	// Warm-up: touch the full site range so the slab is grown.
	for s := Site(0); s < 1024; s++ {
		p.AllocTarget(s, 8, false)
	}
	p.site(Site(siteMask)) // worst-case slab size
	allocs := testing.AllocsPerRun(1000, func() {
		p.AllocTarget(7, 64, false)
		p.Promote(7, 2, 3)
		p.NoteScavenge(7, 2, false)
		p.NoteScavenge(7, 3, true)
		p.NoteDeadOld(uint64(7) | vm.FlagPretenured)
		p.NotePretenured(7)
	})
	if allocs != 0 {
		t.Fatalf("steady-state policy decisions allocate: %g allocs/op", allocs)
	}
}

// TestDecaEpochs pins the lifetime-region policy: label 0 keeps legacy
// behavior, labelled data always moves, epochs count distinct labels.
func TestDecaEpochs(t *testing.T) {
	p := NewDeca()
	if p.MoveToH2OnMinor(0, false) || !p.MoveToH2OnMinor(0, true) {
		t.Fatal("label 0 must keep the advised decision")
	}
	if !p.MoveToH2OnMinor(3, false) || !p.MoveToH2OnMinor(3, false) {
		t.Fatal("labelled young objects must always move")
	}
	if !p.MoveClosureAtMajor(4, false) || !p.MoveClosureAtMajor(3, true) {
		t.Fatal("label closures must always move at major GC")
	}
	if p.Promote(1, 2, 3) || !p.Promote(1, 3, 3) {
		t.Fatal("PS fallback must keep the age threshold")
	}
	s := p.Stats()
	if s.Policy != "deca" || s.EagerLabels != 2 || s.EagerMinorMoves != 2 || s.EagerMajorClosures != 1 {
		t.Fatalf("stats: %+v", s)
	}
	// A label past the dense limit exercises the map fallback.
	if !p.MoveToH2OnMinor(decaDenseLabelLimit+12345, false) {
		t.Fatal("huge labels must still move")
	}
	if got := p.Stats().EagerLabels; got != 3 {
		t.Fatalf("huge label not counted as an epoch: %d", got)
	}
}

// TestDecaZeroAllocSteadyState: known labels decide without allocating.
func TestDecaZeroAllocSteadyState(t *testing.T) {
	p := NewDeca()
	p.MoveToH2OnMinor(900, false)
	allocs := testing.AllocsPerRun(1000, func() {
		p.MoveToH2OnMinor(900, false)
		p.MoveClosureAtMajor(900, false)
		p.AllocTarget(1, 8, false)
		p.NoteScavenge(1, 1, false)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Deca decisions allocate: %g allocs/op", allocs)
	}
}

// FuzzNG2C: no event stream, however degenerate, may panic the profiler,
// and identical streams must produce identical profiles.
func FuzzNG2C(f *testing.F) {
	f.Add(uint64(1), 1000, 16, 64, 3)
	f.Add(uint64(0), 1, 0, 0, 0)
	f.Add(^uint64(0), 5000, -1, -1, 100)
	f.Add(uint64(12345), 2000, 1, 1, 8)
	f.Fuzz(func(t *testing.T, seed uint64, n, promote, demote, gens int) {
		if n < 0 {
			n = -n
		}
		n %= 20000
		cfg := NG2CConfig{PromoteThreshold: promote, DemoteThreshold: demote, Generations: gens}
		a := NewNG2C(cfg)
		b := NewNG2C(cfg)
		drive(a, seed, n)
		drive(b, seed, n)
		if !reflect.DeepEqual(a.Stats(), b.Stats()) {
			t.Fatalf("identical streams diverged: %+v vs %+v", a.Stats(), b.Stats())
		}
	})
}

// FuzzSiteFromStatus: site extraction is total over the status-word
// space, and extracted sites index the profiler safely.
func FuzzSiteFromStatus(f *testing.F) {
	f.Add(uint64(0))
	f.Add(^uint64(0))
	f.Add(uint64(vm.FlagPretenured | 0xFFFF))
	f.Fuzz(func(t *testing.T, status uint64) {
		s := SiteFromStatus(status)
		if uint64(s) > uint64(siteMask) {
			t.Fatalf("site %d out of class-ID range", s)
		}
		p := NewNG2C(DefaultNG2CConfig())
		p.AllocTarget(s, 1, false)
		p.NoteDeadOld(status)
	})
}
