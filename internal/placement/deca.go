package placement

// decaDenseLabelLimit bounds the dense seen-label table; labels beyond it
// (rare: labels are small framework-assigned epoch/RDD ids) fall back to
// a map.
const decaDenseLabelLimit = 1 << 20

// Deca is the lifetime-based region-placement policy ("Lifetime-Based
// Memory Management for Distributed Data Processing Systems", VLDB'16):
// every labelled object belongs to a data-path epoch (the label — an
// RDD/dataset id), and epochs live in bump-pointer H2 regions that are
// released wholesale when the epoch's data is dropped. The policy places
// labelled objects into their epoch's region eagerly — at the first
// scavenge for young objects, and unconditionally for label closures at
// major GC — instead of waiting for move hints or H1-pressure
// thresholds. Unclassified (unlabelled) objects keep plain PS semantics.
//
// The mechanism reuses TeraHeap's per-label region groups as the
// lifetime regions: H2 region allocation is bump-pointer and dead label
// groups are reclaimed wholesale, which is exactly Deca's epoch release.
type Deca struct {
	seenDense []bool
	seenBig   map[uint64]struct{}
	epochs    int // distinct labels placed eagerly

	minorMoves    int64
	majorClosures int64
}

// NewDeca builds the policy.
func NewDeca() *Deca {
	return &Deca{seenDense: make([]bool, 1024)}
}

// noteLabel records a distinct epoch label; steady-state calls for known
// labels touch only the dense table.
func (p *Deca) noteLabel(label uint64) {
	if label < decaDenseLabelLimit {
		i := int(label)
		if i >= len(p.seenDense) {
			n := len(p.seenDense)
			for n <= i {
				n *= 2
			}
			grown := make([]bool, n)
			copy(grown, p.seenDense)
			p.seenDense = grown
		}
		if !p.seenDense[i] {
			p.seenDense[i] = true
			p.epochs++
		}
		return
	}
	if p.seenBig == nil {
		p.seenBig = make(map[uint64]struct{})
	}
	if _, ok := p.seenBig[label]; !ok {
		p.seenBig[label] = struct{}{}
		p.epochs++
	}
}

// Name implements Policy.
func (p *Deca) Name() string { return "deca" }

// AllocTarget implements Policy: H1 allocation is plain PS (lifetime
// classification happens via labels, which attach after allocation).
func (p *Deca) AllocTarget(Site, int, bool) AllocDecision { return AllocDefault }

// Promote implements Policy (legacy age threshold for the PS fallback).
func (p *Deca) Promote(_ Site, age, tenureAge int) bool { return age >= tenureAge }

// MoveToH2OnMinor implements Policy: every labelled young object moves
// to its epoch's lifetime region at the first scavenge, hint or not.
func (p *Deca) MoveToH2OnMinor(label uint64, advised bool) bool {
	if label == 0 {
		return advised
	}
	p.noteLabel(label)
	p.minorMoves++
	return true
}

// MoveClosureAtMajor implements Policy: label closures always move to
// their epoch regions — Deca has no threshold gating.
func (p *Deca) MoveClosureAtMajor(label uint64, legacy bool) bool {
	if label == 0 {
		return legacy
	}
	p.noteLabel(label)
	if !legacy {
		p.majorClosures++
	}
	return true
}

// NoteScavenge implements Policy (no-op: no site profiling).
func (p *Deca) NoteScavenge(Site, int, bool) {}

// NoteDeadOld implements Policy (no-op).
func (p *Deca) NoteDeadOld(uint64) {}

// NotePretenured implements Policy (no-op: Deca never pretenures).
func (p *Deca) NotePretenured(Site) {}

// Stats implements Policy.
func (p *Deca) Stats() Stats {
	return Stats{
		Policy:             "deca",
		EagerLabels:        p.epochs,
		EagerMinorMoves:    p.minorMoves,
		EagerMajorClosures: p.majorClosures,
	}
}
