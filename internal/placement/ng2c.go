package placement

import "github.com/carv-repro/teraheap-go/internal/vm"

// NG2CConfig tunes the NG2C-style allocation-site pretenuring profiler
// ("NG2C: Pretenuring Garbage Collection with Dynamic Generations for
// HotSpot Big Data Applications", ISMM'17).
type NG2CConfig struct {
	// PromoteThreshold is the number of age-based tenurings a site must
	// accumulate before the profiler flips it to the pretenure state
	// (subsequent allocations go straight to the old generation and
	// survivors skip the survivor spaces).
	PromoteThreshold int
	// DemoteThreshold is the number of dead pretenured objects a site
	// may accumulate before it is demoted back to young allocation (the
	// paper's misprediction correction).
	DemoteThreshold int
	// Generations is the number of survivor-free target generations
	// pretenured sites are spread across (round-robin by flip order).
	// The simulated old space is a single physical space, so target
	// generations are an accounting dimension: per-generation placement
	// counters for the pretenure figure.
	Generations int
}

// DefaultNG2CConfig returns the profiler defaults.
func DefaultNG2CConfig() NG2CConfig {
	return NG2CConfig{PromoteThreshold: 16, DemoteThreshold: 64, Generations: 3}
}

const maxNG2CGenerations = 8

// ng2cSite is the per-allocation-site profile. Sites live in a dense
// slab indexed by class ID so hot-path decisions never hash or allocate.
type ng2cSite struct {
	survivals  int64 // scavenge copies that stayed in the young gen
	promotions int64 // age-based tenurings observed
	pretenured int64 // direct old-generation placements
	deadPret   int64 // pretenured objects found dead at major GC
	pretenure  bool  // site state: allocate straight into the old gen
	gen        uint8 // target generation index (accounting)
	seen       bool  // any activity observed
}

// NG2C is the allocation-site pretenuring policy. All state transitions
// are driven purely by the deterministic decision/feedback call stream,
// so two processes running the same workload build byte-identical
// profiles.
type NG2C struct {
	cfg   NG2CConfig
	sites []ng2cSite
	flips int // young->pretenure transitions, drives generation assignment

	early     int64
	mispred   int64
	demotions int64
	gens      [maxNG2CGenerations]int64
}

// NewNG2C builds the profiler; zero or negative config fields take the
// defaults and Generations is clamped to [1, 8].
func NewNG2C(cfg NG2CConfig) *NG2C {
	def := DefaultNG2CConfig()
	if cfg.PromoteThreshold <= 0 {
		cfg.PromoteThreshold = def.PromoteThreshold
	}
	if cfg.DemoteThreshold <= 0 {
		cfg.DemoteThreshold = def.DemoteThreshold
	}
	if cfg.Generations <= 0 {
		cfg.Generations = def.Generations
	}
	if cfg.Generations > maxNG2CGenerations {
		cfg.Generations = maxNG2CGenerations
	}
	return &NG2C{cfg: cfg, sites: make([]ng2cSite, 1024)}
}

// site returns the profile slot for s, growing the dense slab on first
// contact with a new class-ID range. Growth is bounded by the class-ID
// space (64Ki entries), so steady-state decisions never allocate.
func (p *NG2C) site(s Site) *ng2cSite {
	i := int(s) & siteMask
	if i >= len(p.sites) {
		n := len(p.sites)
		for n <= i {
			n *= 2
		}
		grown := make([]ng2cSite, n)
		copy(grown, p.sites)
		p.sites = grown
	}
	st := &p.sites[i]
	st.seen = true
	return st
}

// Name implements Policy.
func (p *NG2C) Name() string { return "ng2c" }

// AllocTarget implements Policy: sites in the pretenure state allocate
// directly into the old generation; everything else follows the legacy
// eden path.
func (p *NG2C) AllocTarget(site Site, _ int, _ bool) AllocDecision {
	if p.site(site).pretenure {
		return AllocOld
	}
	return AllocDefault
}

// Promote implements Policy: pretenured sites are survivor-free (their
// objects tenure at the first scavenge); other sites use the age
// threshold.
func (p *NG2C) Promote(site Site, age, tenureAge int) bool {
	return p.site(site).pretenure || age >= tenureAge
}

// MoveToH2OnMinor implements Policy: NG2C changes H1 placement only, so
// the H2 move-hint decision is the legacy one.
func (p *NG2C) MoveToH2OnMinor(_ uint64, advised bool) bool { return advised }

// MoveClosureAtMajor implements Policy (legacy pass-through).
func (p *NG2C) MoveClosureAtMajor(_ uint64, legacy bool) bool { return legacy }

// NoteScavenge implements Policy: accumulates per-site survival counts
// and flips a site to the pretenure state once its age-based promotions
// reach the threshold.
func (p *NG2C) NoteScavenge(site Site, _ int, promoted bool) {
	st := p.site(site)
	if !promoted {
		st.survivals++
		return
	}
	st.promotions++
	if st.pretenure {
		// Survivor-free promotion: the site profile said long-lived and
		// the object tenured at its first scavenge.
		p.early++
		return
	}
	if st.promotions >= int64(p.cfg.PromoteThreshold) {
		st.pretenure = true
		st.gen = uint8(p.flips % p.cfg.Generations)
		p.flips++
	}
}

// NoteDeadOld implements Policy: dead pretenured objects are
// mispredictions; a site accumulating enough of them demotes back to
// young allocation and its profile restarts.
func (p *NG2C) NoteDeadOld(status uint64) {
	if status&vm.FlagPretenured == 0 {
		return
	}
	st := p.site(SiteFromStatus(status))
	st.deadPret++
	p.mispred++
	if st.pretenure && st.deadPret >= int64(p.cfg.DemoteThreshold) {
		st.pretenure = false
		st.promotions = 0
		st.deadPret = 0
		p.demotions++
	}
}

// NotePretenured implements Policy.
func (p *NG2C) NotePretenured(site Site) {
	st := p.site(site)
	st.pretenured++
	p.gens[st.gen]++
}

// Stats implements Policy.
func (p *NG2C) Stats() Stats {
	s := Stats{Policy: "ng2c", Mispredictions: p.mispred, Demotions: p.demotions, EarlyPromotions: p.early}
	for i := range p.sites {
		st := &p.sites[i]
		if !st.seen {
			continue
		}
		s.SitesProfiled++
		if st.pretenure {
			s.SitesPretenured++
		}
		s.PretenuredObjects += st.pretenured
	}
	s.Generations = append(s.Generations, p.gens[:p.cfg.Generations]...)
	return s
}
