// Package fault is the deterministic fault-injection plane for the
// TeraHeap simulator. A Plan describes which faults to inject (transient
// device errors, latency spikes, bandwidth brown-outs, page-cache
// writeback failures, torn promotion-buffer flushes, forced H2 region
// exhaustion, persistent per-region failures, silent flush corruption)
// and an Injector makes the per-operation decisions.
//
// Every decision is a pure function of (seed, monotonic op counter): no
// wall clock, no shared global PRNG. Each simulated run owns exactly one
// Injector, and a run's operations execute in a deterministic order, so
// the same plan always yields byte-identical simulated results — the
// property the chaos harness asserts.
//
// The injector never performs recovery itself; it prices it. A transient
// device error costs the wasted attempt plus an exponential-backoff wait,
// returned to the caller as extra virtual time to charge to the simclock's
// ambient category, so recovery shows up in the paper's execution-time
// breakdown exactly where the stalled phase was running. When an operation
// keeps failing past the retry budget the injector latches a structured
// DeviceFailure; the collector escalates that to a latched error (never a
// panic) and the run ends as a degraded result.
package fault

import (
	"fmt"
	"time"
)

// DeviceFailure is the latched persistent-failure record: an operation
// exhausted its transient-retry budget. It is an error so it can be
// wrapped directly into the collector's latched fault.
type DeviceFailure struct {
	Op       string // "read" or "write"
	OpIndex  int64  // monotonic decision index of the failing operation
	Attempts int    // attempts made (1 initial + retries)
}

// Error describes the failure.
func (e *DeviceFailure) Error() string {
	return fmt.Sprintf("fault: persistent device %s failure at op %d after %d attempts",
		e.Op, e.OpIndex, e.Attempts)
}

// RegionFailure is the latched per-region persistent-failure record: a
// promotion-buffer flush hit a region whose backing blocks have gone bad.
// Unlike DeviceFailure the device as a whole still works — data already in
// the region stays readable and other regions accept writes — so the
// recovery layer can salvage the region instead of ending the run. It is
// an error so it can be wrapped into the collector's latched fault when no
// recovery layer absorbs it.
type RegionFailure struct {
	Region  int   // H2 region index that failed
	OpIndex int64 // monotonic decision index of the failing flush
}

// Error describes the failure.
func (e *RegionFailure) Error() string {
	return fmt.Sprintf("fault: persistent write failure in H2 region %d at op %d",
		e.Region, e.OpIndex)
}

// Stats counts injected faults and the recovery work they caused.
type Stats struct {
	Decisions       int64 // PRNG decisions consumed
	TransientErrors int64 // injected device op errors (incl. the persistent one)
	Retries         int64 // retry attempts performed
	BackoffTime     time.Duration
	LatencySpikes   int64
	BrownedOutOps   int64
	WritebackFails  int64
	TornFlushes     int64
	H2Exhaustions   int64
	RegionFailures  int64 // persistent per-region write failures
	CorruptImages   int64 // object images silently lost during a flush
}

// Any reports whether any fault was injected.
func (s Stats) Any() bool {
	return s.TransientErrors > 0 || s.LatencySpikes > 0 || s.BrownedOutOps > 0 ||
		s.WritebackFails > 0 || s.TornFlushes > 0 || s.H2Exhaustions > 0 ||
		s.RegionFailures > 0 || s.CorruptImages > 0
}

// String summarizes the injected faults in one compact line.
func (s Stats) String() string {
	return fmt.Sprintf("errs=%d retries=%d backoff=%v spikes=%d brownout=%d wbfail=%d torn=%d h2ex=%d rgnfail=%d corrupt=%d",
		s.TransientErrors, s.Retries, s.BackoffTime, s.LatencySpikes,
		s.BrownedOutOps, s.WritebackFails, s.TornFlushes, s.H2Exhaustions,
		s.RegionFailures, s.CorruptImages)
}

// Injector makes the fault decisions for one simulated run. It is NOT safe
// for concurrent use: a run is single-threaded by construction (simulated
// parallelism divides charges, it does not spawn goroutines), which is what
// keeps the op counter — and therefore every decision — deterministic.
type Injector struct {
	plan  Plan
	ops   int64 // monotonic decision counter
	stats Stats

	failure     *DeviceFailure
	regionFault *RegionFailure
}

// NewInjector builds an injector for one run of the plan. A nil plan
// yields a nil injector, which every hook treats as "no faults".
func NewInjector(p *Plan) *Injector {
	if p == nil {
		return nil
	}
	pl := *p
	pl.applyDefaults()
	return &Injector{plan: pl}
}

// Stats returns a snapshot of the injected-fault counters. Nil-safe.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return in.stats
}

// Failure returns the latched persistent device failure, if any. Nil-safe.
func (in *Injector) Failure() *DeviceFailure {
	if in == nil {
		return nil
	}
	return in.failure
}

// RegionFault returns the latched per-region failure, if any. Nil-safe.
func (in *Injector) RegionFault() *RegionFailure {
	if in == nil {
		return nil
	}
	return in.regionFault
}

// ClearFailure unlatches the persistent device failure after a recovery
// layer has absorbed it. Nil-safe.
func (in *Injector) ClearFailure() {
	if in != nil {
		in.failure = nil
	}
}

// ClearRegionFault unlatches the per-region failure after a recovery layer
// has quarantined and salvaged the region. Nil-safe.
func (in *Injector) ClearRegionFault() {
	if in != nil {
		in.regionFault = nil
	}
}

// Ops returns the monotonic decision counter — the recovery layer's only
// notion of time (breaker windows and cooldowns are measured in decisions,
// never in wall clock). Nil-safe.
func (in *Injector) Ops() int64 {
	if in == nil {
		return 0
	}
	return in.ops
}

// splitmix64 is the finalizer of the SplitMix64 generator: a bijective
// avalanche hash, so consecutive counter values produce independent-looking
// decisions from a single seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// roll consumes one decision and returns a uniform float64 in [0,1).
func (in *Injector) roll() float64 {
	in.ops++
	in.stats.Decisions++
	h := splitmix64(in.plan.Seed ^ uint64(in.ops)*0x9e3779b97f4a7c15)
	return float64(h>>11) / (1 << 53)
}

// DeviceOp prices the fault consequences of one device operation whose
// healthy cost is base: brown-out and latency-spike degradation, then a
// transient-error/retry loop with exponential backoff. The returned
// duration replaces base — the caller charges it to the clock's ambient
// category, so recovery cost lands in whatever breakdown bucket the
// stalled phase was billing. If the retry budget is exhausted the injector
// latches a DeviceFailure and returns the cost spent up to that point.
// Nil-safe: a nil injector returns base unchanged.
func (in *Injector) DeviceOp(write bool, base time.Duration) time.Duration {
	if in == nil {
		return base
	}
	op := "read"
	if write {
		op = "write"
	}
	cost := base
	// Bandwidth brown-out: operations inside the window pay a degraded
	// (multiplied) cost, modeling a device whose effective bandwidth has
	// collapsed for a stretch of operations.
	if in.plan.BrownoutEvery > 0 {
		in.ops++
		in.stats.Decisions++
		if in.ops%in.plan.BrownoutEvery < in.plan.BrownoutLen {
			cost = time.Duration(float64(cost) * in.plan.BrownoutFactor)
			in.stats.BrownedOutOps++
		}
	}
	// Latency spike: tail-latency event on this operation alone.
	if in.plan.SpikeRate > 0 && in.roll() < in.plan.SpikeRate {
		cost = time.Duration(float64(cost) * in.plan.SpikeFactor)
		in.stats.LatencySpikes++
	}
	if in.plan.DevErrRate <= 0 || in.failure != nil {
		// No error injection (or the device already failed for good: the
		// collector will latch shortly; stop injecting so the remaining
		// simulated work stays bounded).
		return cost
	}
	// Transient-error/retry loop: each failed attempt wastes the full
	// operation cost, then waits an exponentially growing backoff before
	// retrying. A fresh decision is consumed per attempt, so two retries
	// of the same logical operation can succeed or fail independently.
	total := cost
	for attempt := 0; in.roll() < in.plan.DevErrRate; attempt++ {
		in.stats.TransientErrors++
		if attempt >= in.plan.MaxRetries {
			in.failure = &DeviceFailure{Op: op, OpIndex: in.ops, Attempts: attempt + 1}
			return total
		}
		backoff := in.plan.BackoffBase << attempt
		in.stats.Retries++
		in.stats.BackoffTime += backoff
		total += backoff + cost // wait, then pay the retried attempt
	}
	return total
}

// WritebackFailed reports whether this page-cache writeback fails; the
// cache recovers by charging one retried device write. Nil-safe.
func (in *Injector) WritebackFailed() bool {
	if in == nil || in.plan.WritebackFailRate <= 0 {
		return false
	}
	if in.roll() < in.plan.WritebackFailRate {
		in.stats.WritebackFails++
		return true
	}
	return false
}

// TornFlush reports whether this promotion-buffer flush tears mid-write;
// the H2 allocator recovers by replaying the whole buffered batch (the
// staged images are still in DRAM), charging the flush a second time.
// Nil-safe.
func (in *Injector) TornFlush() bool {
	if in == nil || in.plan.TornFlushRate <= 0 {
		return false
	}
	if in.roll() < in.plan.TornFlushRate {
		in.stats.TornFlushes++
		return true
	}
	return false
}

// H2Exhausted reports whether this PrepareMove is forced to fail as if H2
// had no region to give (the paper's graceful-degradation path: the object
// simply stays in H1 and the collector keeps going). Nil-safe.
func (in *Injector) H2Exhausted() bool {
	if in == nil || in.plan.H2ExhaustRate <= 0 {
		return false
	}
	if in.roll() < in.plan.H2ExhaustRate {
		in.stats.H2Exhaustions++
		return true
	}
	return false
}

// RegionFlushFailed reports whether this promotion-buffer flush leaves its
// region persistently failed (bad blocks: existing data readable, further
// writes refused). The first hit latches a RegionFailure for the collector
// to poll; further hits on other regions still mark those regions failed
// so one salvage pass can handle them all. Nil-safe.
func (in *Injector) RegionFlushFailed(region int) bool {
	if in == nil || in.plan.RegionFailRate <= 0 {
		return false
	}
	if in.roll() < in.plan.RegionFailRate {
		in.stats.RegionFailures++
		if in.regionFault == nil {
			in.regionFault = &RegionFailure{Region: region, OpIndex: in.ops}
		}
		return true
	}
	return false
}

// CorruptFlush reports whether this flush silently loses one of its nRecs
// staged object images, returning the victim's index or -1. The device
// acks the flush, so nothing notices until the region's checksum is
// recomputed. Nil-safe.
func (in *Injector) CorruptFlush(nRecs int) int {
	if in == nil || in.plan.CorruptRate <= 0 || nRecs <= 0 {
		return -1
	}
	if in.roll() < in.plan.CorruptRate {
		in.stats.CorruptImages++
		v := int(in.roll() * float64(nRecs))
		if v >= nRecs {
			v = nRecs - 1
		}
		return v
	}
	return -1
}

// Probe prices one half-open circuit-breaker probe against the device: it
// succeeds when neither the transient-error nor the region-failure lottery
// hits. Probes consume regular decisions — breaker time is the op counter,
// not the wall clock — and charge no simulated time (the probe models an
// O(1) health check against device state the host already tracks).
// Nil-safe: with no injector there is nothing to fail, so probes succeed.
func (in *Injector) Probe() bool {
	if in == nil {
		return true
	}
	ok := true
	if in.plan.DevErrRate > 0 && in.roll() < in.plan.DevErrRate {
		ok = false
	}
	if in.plan.RegionFailRate > 0 && in.roll() < in.plan.RegionFailRate {
		ok = false
	}
	return ok
}
