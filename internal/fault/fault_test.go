package fault

import (
	"strings"
	"testing"
	"time"
)

// drive runs a fixed decision workload against a fresh injector and
// returns a compact trace of every outcome.
func drive(p *Plan) (string, Stats, *DeviceFailure) {
	in := NewInjector(p)
	var sb strings.Builder
	for i := 0; i < 500; i++ {
		switch i % 4 {
		case 0:
			d := in.DeviceOp(false, 100*time.Microsecond)
			sb.WriteString(d.String())
		case 1:
			d := in.DeviceOp(true, 250*time.Microsecond)
			sb.WriteString(d.String())
		case 2:
			if in.WritebackFailed() {
				sb.WriteString("WB")
			}
			if in.TornFlush() {
				sb.WriteString("TF")
			}
		case 3:
			if in.H2Exhausted() {
				sb.WriteString("H2")
			}
		}
		sb.WriteByte(';')
	}
	return sb.String(), in.Stats(), in.Failure()
}

func TestSameSeedIsDeterministic(t *testing.T) {
	p := &Plan{Seed: 42, DevErrRate: 0.1, SpikeRate: 0.05,
		BrownoutEvery: 64, BrownoutLen: 8, WritebackFailRate: 0.1,
		TornFlushRate: 0.1, H2ExhaustRate: 0.1}
	t1, s1, _ := drive(p)
	t2, s2, _ := drive(p)
	if t1 != t2 {
		t.Fatal("same seed produced different decision traces")
	}
	if s1 != s2 {
		t.Fatalf("same seed produced different stats: %v vs %v", s1, s2)
	}
	if !s1.Any() {
		t.Fatal("expected some faults to be injected at these rates")
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	p1 := &Plan{Seed: 1, DevErrRate: 0.2, SpikeRate: 0.2}
	p2 := &Plan{Seed: 2, DevErrRate: 0.2, SpikeRate: 0.2}
	t1, _, _ := drive(p1)
	t2, _, _ := drive(p2)
	if t1 == t2 {
		t.Fatal("different seeds produced identical decision traces")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in != NewInjector(nil) {
		t.Fatal("NewInjector(nil) should be nil")
	}
	if got := in.DeviceOp(false, 123*time.Microsecond); got != 123*time.Microsecond {
		t.Fatalf("nil injector changed device cost: %v", got)
	}
	if in.WritebackFailed() || in.TornFlush() || in.H2Exhausted() {
		t.Fatal("nil injector injected a fault")
	}
	if in.Failure() != nil || in.Stats().Any() {
		t.Fatal("nil injector reported activity")
	}
}

func TestZeroPlanIsInert(t *testing.T) {
	trace, stats, fail := drive(&Plan{Seed: 7})
	if stats.Any() || fail != nil {
		t.Fatalf("zero-rate plan injected faults: %v", stats)
	}
	// All device costs must be unmodified.
	if strings.Contains(trace, "ms") {
		t.Fatalf("zero-rate plan inflated a device cost: %q", trace[:80])
	}
}

func TestTransientErrorChargesBackoff(t *testing.T) {
	// Rate 1 within the retry budget: every attempt fails, so the failure
	// latches after MaxRetries retries, having charged the full backoff
	// ladder.
	p := &Plan{Seed: 3, DevErrRate: 1, MaxRetries: 3, BackoffBase: 10 * time.Microsecond}
	in := NewInjector(p)
	base := 100 * time.Microsecond
	got := in.DeviceOp(true, base)
	// attempt0 fails -> backoff 10 + retry 100; attempt1 -> 20+100;
	// attempt2 -> 40+100; attempt3 fails and latches.
	want := base + (10+100)*time.Microsecond + (20+100)*time.Microsecond + (40+100)*time.Microsecond
	if got != want {
		t.Fatalf("DeviceOp cost = %v, want %v", got, want)
	}
	f := in.Failure()
	if f == nil {
		t.Fatal("expected a latched persistent failure")
	}
	if f.Op != "write" || f.Attempts != 4 {
		t.Fatalf("failure = %+v, want write after 4 attempts", f)
	}
	if !strings.Contains(f.Error(), "persistent device write failure") {
		t.Fatalf("unexpected error text: %v", f)
	}
	st := in.Stats()
	if st.Retries != 3 || st.TransientErrors != 4 {
		t.Fatalf("stats = %+v, want 3 retries / 4 transient errors", st)
	}
	if st.BackoffTime != 70*time.Microsecond {
		t.Fatalf("backoff time = %v, want 70µs", st.BackoffTime)
	}
	// After the latch, injection stops: costs pass through unmodified.
	if got := in.DeviceOp(false, base); got != base {
		t.Fatalf("post-failure DeviceOp = %v, want %v", got, base)
	}
}

func TestBrownoutWindow(t *testing.T) {
	p := &Plan{Seed: 9, BrownoutEvery: 10, BrownoutLen: 3, BrownoutFactor: 4}
	in := NewInjector(p)
	base := 100 * time.Microsecond
	degraded := 0
	for i := 0; i < 100; i++ {
		if in.DeviceOp(false, base) == 4*base {
			degraded++
		}
	}
	// Of every 10 decisions, 3 land in the window.
	if degraded != 30 {
		t.Fatalf("degraded ops = %d, want 30", degraded)
	}
	if st := in.Stats(); st.BrownedOutOps != 30 {
		t.Fatalf("stats.BrownedOutOps = %d, want 30", st.BrownedOutOps)
	}
}

func TestSpikeMultipliesCost(t *testing.T) {
	p := &Plan{Seed: 11, SpikeRate: 1, SpikeFactor: 8}
	in := NewInjector(p)
	if got := in.DeviceOp(false, 10*time.Microsecond); got != 80*time.Microsecond {
		t.Fatalf("spiked cost = %v, want 80µs", got)
	}
	if in.Stats().LatencySpikes != 1 {
		t.Fatal("spike not counted")
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	src := "seed=7,dev-err=0.01,max-retries=5,backoff=25us,spike=0.02x16,brownout=1000:50x6,wb-fail=0.03,torn=0.04,h2-exhaust=0.05"
	p, err := ParsePlan(src)
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{Seed: 7, DevErrRate: 0.01, MaxRetries: 5,
		BackoffBase: 25 * time.Microsecond, SpikeRate: 0.02, SpikeFactor: 16,
		BrownoutEvery: 1000, BrownoutLen: 50, BrownoutFactor: 6,
		WritebackFailRate: 0.03, TornFlushRate: 0.04, H2ExhaustRate: 0.05}
	if *p != want {
		t.Fatalf("ParsePlan = %+v, want %+v", *p, want)
	}
	p2, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("round-trip parse of %q: %v", p.String(), err)
	}
	if *p2 != *p {
		t.Fatalf("round trip changed plan: %+v vs %+v", *p2, *p)
	}
}

func TestParsePlanDefaults(t *testing.T) {
	p, err := ParsePlan("dev-err=0.5,spike=0.1,brownout=100:10")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 1 {
		t.Fatalf("default seed = %d, want 1", p.Seed)
	}
	if p.MaxRetries != 4 || p.BackoffBase != 50*time.Microsecond {
		t.Fatalf("retry defaults = %d/%v", p.MaxRetries, p.BackoffBase)
	}
	if p.SpikeFactor != 8 || p.BrownoutFactor != 4 {
		t.Fatalf("factor defaults = %g/%g", p.SpikeFactor, p.BrownoutFactor)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, bad := range []string{
		"nonsense",
		"unknown-key=1",
		"dev-err=1.5",
		"dev-err=-0.1",
		"spike=0.1x0.5",
		"brownout=100",
		"brownout=10:20",
		"brownout=0:0",
		"max-retries=0",
		"backoff=-1ms",
		"seed=abc",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted invalid input", bad)
		}
	}
}
