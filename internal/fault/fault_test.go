package fault

import (
	"strings"
	"testing"
	"time"
)

// drive runs a fixed decision workload against a fresh injector and
// returns a compact trace of every outcome.
func drive(p *Plan) (string, Stats, *DeviceFailure) {
	in := NewInjector(p)
	var sb strings.Builder
	for i := 0; i < 500; i++ {
		switch i % 4 {
		case 0:
			d := in.DeviceOp(false, 100*time.Microsecond)
			sb.WriteString(d.String())
		case 1:
			d := in.DeviceOp(true, 250*time.Microsecond)
			sb.WriteString(d.String())
		case 2:
			if in.WritebackFailed() {
				sb.WriteString("WB")
			}
			if in.TornFlush() {
				sb.WriteString("TF")
			}
		case 3:
			if in.H2Exhausted() {
				sb.WriteString("H2")
			}
		}
		sb.WriteByte(';')
	}
	return sb.String(), in.Stats(), in.Failure()
}

func TestSameSeedIsDeterministic(t *testing.T) {
	p := &Plan{Seed: 42, DevErrRate: 0.1, SpikeRate: 0.05,
		BrownoutEvery: 64, BrownoutLen: 8, WritebackFailRate: 0.1,
		TornFlushRate: 0.1, H2ExhaustRate: 0.1}
	t1, s1, _ := drive(p)
	t2, s2, _ := drive(p)
	if t1 != t2 {
		t.Fatal("same seed produced different decision traces")
	}
	if s1 != s2 {
		t.Fatalf("same seed produced different stats: %v vs %v", s1, s2)
	}
	if !s1.Any() {
		t.Fatal("expected some faults to be injected at these rates")
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	p1 := &Plan{Seed: 1, DevErrRate: 0.2, SpikeRate: 0.2}
	p2 := &Plan{Seed: 2, DevErrRate: 0.2, SpikeRate: 0.2}
	t1, _, _ := drive(p1)
	t2, _, _ := drive(p2)
	if t1 == t2 {
		t.Fatal("different seeds produced identical decision traces")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in != NewInjector(nil) {
		t.Fatal("NewInjector(nil) should be nil")
	}
	if got := in.DeviceOp(false, 123*time.Microsecond); got != 123*time.Microsecond {
		t.Fatalf("nil injector changed device cost: %v", got)
	}
	if in.WritebackFailed() || in.TornFlush() || in.H2Exhausted() {
		t.Fatal("nil injector injected a fault")
	}
	if in.Failure() != nil || in.Stats().Any() {
		t.Fatal("nil injector reported activity")
	}
}

func TestZeroPlanIsInert(t *testing.T) {
	trace, stats, fail := drive(&Plan{Seed: 7})
	if stats.Any() || fail != nil {
		t.Fatalf("zero-rate plan injected faults: %v", stats)
	}
	// All device costs must be unmodified.
	if strings.Contains(trace, "ms") {
		t.Fatalf("zero-rate plan inflated a device cost: %q", trace[:80])
	}
}

func TestTransientErrorChargesBackoff(t *testing.T) {
	// Rate 1 within the retry budget: every attempt fails, so the failure
	// latches after MaxRetries retries, having charged the full backoff
	// ladder.
	p := &Plan{Seed: 3, DevErrRate: 1, MaxRetries: 3, BackoffBase: 10 * time.Microsecond}
	in := NewInjector(p)
	base := 100 * time.Microsecond
	got := in.DeviceOp(true, base)
	// attempt0 fails -> backoff 10 + retry 100; attempt1 -> 20+100;
	// attempt2 -> 40+100; attempt3 fails and latches.
	want := base + (10+100)*time.Microsecond + (20+100)*time.Microsecond + (40+100)*time.Microsecond
	if got != want {
		t.Fatalf("DeviceOp cost = %v, want %v", got, want)
	}
	f := in.Failure()
	if f == nil {
		t.Fatal("expected a latched persistent failure")
	}
	if f.Op != "write" || f.Attempts != 4 {
		t.Fatalf("failure = %+v, want write after 4 attempts", f)
	}
	if !strings.Contains(f.Error(), "persistent device write failure") {
		t.Fatalf("unexpected error text: %v", f)
	}
	st := in.Stats()
	if st.Retries != 3 || st.TransientErrors != 4 {
		t.Fatalf("stats = %+v, want 3 retries / 4 transient errors", st)
	}
	if st.BackoffTime != 70*time.Microsecond {
		t.Fatalf("backoff time = %v, want 70µs", st.BackoffTime)
	}
	// After the latch, injection stops: costs pass through unmodified.
	if got := in.DeviceOp(false, base); got != base {
		t.Fatalf("post-failure DeviceOp = %v, want %v", got, base)
	}
}

func TestBrownoutWindow(t *testing.T) {
	p := &Plan{Seed: 9, BrownoutEvery: 10, BrownoutLen: 3, BrownoutFactor: 4}
	in := NewInjector(p)
	base := 100 * time.Microsecond
	degraded := 0
	for i := 0; i < 100; i++ {
		if in.DeviceOp(false, base) == 4*base {
			degraded++
		}
	}
	// Of every 10 decisions, 3 land in the window.
	if degraded != 30 {
		t.Fatalf("degraded ops = %d, want 30", degraded)
	}
	if st := in.Stats(); st.BrownedOutOps != 30 {
		t.Fatalf("stats.BrownedOutOps = %d, want 30", st.BrownedOutOps)
	}
}

func TestSpikeMultipliesCost(t *testing.T) {
	p := &Plan{Seed: 11, SpikeRate: 1, SpikeFactor: 8}
	in := NewInjector(p)
	if got := in.DeviceOp(false, 10*time.Microsecond); got != 80*time.Microsecond {
		t.Fatalf("spiked cost = %v, want 80µs", got)
	}
	if in.Stats().LatencySpikes != 1 {
		t.Fatal("spike not counted")
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	src := "seed=7,dev-err=0.01,max-retries=5,backoff=25us,spike=0.02x16,brownout=1000:50x6,wb-fail=0.03,torn=0.04,h2-exhaust=0.05"
	p, err := ParsePlan(src)
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{Seed: 7, DevErrRate: 0.01, MaxRetries: 5,
		BackoffBase: 25 * time.Microsecond, SpikeRate: 0.02, SpikeFactor: 16,
		BrownoutEvery: 1000, BrownoutLen: 50, BrownoutFactor: 6,
		WritebackFailRate: 0.03, TornFlushRate: 0.04, H2ExhaustRate: 0.05}
	if *p != want {
		t.Fatalf("ParsePlan = %+v, want %+v", *p, want)
	}
	p2, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("round-trip parse of %q: %v", p.String(), err)
	}
	if *p2 != *p {
		t.Fatalf("round trip changed plan: %+v vs %+v", *p2, *p)
	}
}

func TestParsePlanDefaults(t *testing.T) {
	p, err := ParsePlan("dev-err=0.5,spike=0.1,brownout=100:10")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 1 {
		t.Fatalf("default seed = %d, want 1", p.Seed)
	}
	if p.MaxRetries != 4 || p.BackoffBase != 50*time.Microsecond {
		t.Fatalf("retry defaults = %d/%v", p.MaxRetries, p.BackoffBase)
	}
	if p.SpikeFactor != 8 || p.BrownoutFactor != 4 {
		t.Fatalf("factor defaults = %g/%g", p.SpikeFactor, p.BrownoutFactor)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, bad := range []string{
		"nonsense",
		"unknown-key=1",
		"dev-err=1.5",
		"dev-err=-0.1",
		"spike=0.1x0.5",
		"brownout=100",
		"brownout=10:20",
		"brownout=0:0",
		"max-retries=0",
		"backoff=-1ms",
		"seed=abc",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted invalid input", bad)
		}
	}
}

func TestParsePlanNewKeysRoundTrip(t *testing.T) {
	p, err := ParsePlan("seed=5,region-fail=0.25,corrupt=0.125")
	if err != nil {
		t.Fatal(err)
	}
	if p.RegionFailRate != 0.25 || p.CorruptRate != 0.125 {
		t.Fatalf("rates = %g/%g, want 0.25/0.125", p.RegionFailRate, p.CorruptRate)
	}
	p2, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("round-trip parse of %q: %v", p.String(), err)
	}
	if *p2 != *p {
		t.Fatalf("round trip changed plan: %+v vs %+v", *p2, *p)
	}
}

func TestParsePlanDuplicateKey(t *testing.T) {
	for _, src := range []string{
		"seed=1,seed=2",
		"dev-err=0.1,spike=0.2,dev-err=0.1",
		"brownout=100:10,brownout=100:10",
	} {
		_, err := ParsePlan(src)
		if err == nil {
			t.Errorf("ParsePlan(%q) accepted a duplicate key", src)
			continue
		}
		if !strings.Contains(err.Error(), "duplicate plan key") {
			t.Errorf("ParsePlan(%q) error %q does not name the duplicate", src, err)
		}
	}
	// The error must name the offending token, not just the key.
	_, err := ParsePlan("seed=1,seed=2")
	if err == nil || !strings.Contains(err.Error(), `"seed=2"`) {
		t.Errorf("duplicate-key error %v does not quote the offending token", err)
	}
}

func TestParsePlanRejectsNonFinite(t *testing.T) {
	for _, bad := range []string{
		"dev-err=NaN",
		"torn=nan",
		"region-fail=+Inf",
		"spike=0.1xNaN",
		"spike=0.1xInf",
		"brownout=100:10xInf",
		"region-fail=2",
		"corrupt=-0.1",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted a non-finite or out-of-range value", bad)
		}
	}
}

func TestRegionFlushFailedLatchesPerRegion(t *testing.T) {
	in := NewInjector(&Plan{Seed: 7, RegionFailRate: 1})
	if !in.RegionFlushFailed(3) {
		t.Fatal("rate-1 region failure did not fire")
	}
	rf := in.RegionFault()
	if rf == nil || rf.Region != 3 {
		t.Fatalf("RegionFault = %+v, want latched for region 3", rf)
	}
	if !strings.Contains(rf.Error(), "region 3") {
		t.Fatalf("error text %q does not name the region", rf.Error())
	}
	// The latch keeps the first failure; later failures still report true
	// (their regions are marked) without overwriting it.
	if !in.RegionFlushFailed(9) {
		t.Fatal("second region failure did not fire")
	}
	if got := in.RegionFault().Region; got != 3 {
		t.Fatalf("latch overwritten: region %d, want 3", got)
	}
	if got := in.Stats().RegionFailures; got != 2 {
		t.Fatalf("RegionFailures = %d, want 2", got)
	}
	in.ClearRegionFault()
	if in.RegionFault() != nil {
		t.Fatal("ClearRegionFault left the latch set")
	}
}

func TestRegionFailZeroRateConsumesNoDecisions(t *testing.T) {
	in := NewInjector(&Plan{Seed: 7})
	for i := 0; i < 10; i++ {
		if in.RegionFlushFailed(i) {
			t.Fatal("zero-rate plan failed a region")
		}
		if in.CorruptFlush(8) != -1 {
			t.Fatal("zero-rate plan corrupted a flush")
		}
	}
	if in.Ops() != 0 {
		t.Fatalf("zero-rate region/corrupt checks consumed %d decisions; inertness broken", in.Ops())
	}
}

func TestCorruptFlushPicksVictimInRange(t *testing.T) {
	in := NewInjector(&Plan{Seed: 11, CorruptRate: 1})
	for i := 0; i < 50; i++ {
		n := 1 + i%7
		v := in.CorruptFlush(n)
		if v < 0 || v >= n {
			t.Fatalf("victim %d out of range [0,%d)", v, n)
		}
	}
	if got := in.Stats().CorruptImages; got != 50 {
		t.Fatalf("CorruptImages = %d, want 50", got)
	}
	if in.CorruptFlush(0) != -1 {
		t.Fatal("empty flush reported a victim")
	}
}

func TestProbe(t *testing.T) {
	var nilInj *Injector
	if !nilInj.Probe() {
		t.Fatal("nil injector probe failed")
	}
	if NewInjector(&Plan{Seed: 1, RegionFailRate: 1}).Probe() {
		t.Fatal("probe succeeded against region-fail=1")
	}
	if NewInjector(&Plan{Seed: 1, DevErrRate: 1}).Probe() {
		t.Fatal("probe succeeded against dev-err=1")
	}
	if !NewInjector(&Plan{Seed: 1}).Probe() {
		t.Fatal("probe failed on a healthy device")
	}
}
