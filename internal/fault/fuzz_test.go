package fault

import (
	"strings"
	"testing"
)

// FuzzParsePlan fuzzes the -fault DSL parser. Properties:
//
//  1. ParsePlan never panics, whatever the input.
//  2. Accepted plans are canonical: String() re-parses to an equal Plan
//     (the determinism story depends on this — a plan echoed into a log
//     or CI matrix must mean the same schedule when pasted back).
//  3. Accepted plans carry finite rates in [0,1] and factors > 1, so no
//     NaN/Inf can reach the injector's arithmetic.
//  4. A plan with any duplicated key is always rejected.
//
// The seed corpus is the README's and CI's real plans plus each key's
// documented syntax.
func FuzzParsePlan(f *testing.F) {
	for _, seed := range []string{
		"",
		"seed=1,dev-err=0.01,wb-fail=0.05",
		"seed=1,dev-err=0.02,spike=0.01,brownout=4000:200,wb-fail=0.05,torn=0.05,h2-exhaust=0.02",
		"seed=42,dev-err=0.2,max-retries=2,backoff=10us",
		"seed=7,dev-err=0.01,max-retries=5,backoff=25us,spike=0.02x16,brownout=1000:50x6,wb-fail=0.03,torn=0.04,h2-exhaust=0.05",
		"seed=5,region-fail=0.25,corrupt=0.125",
		"region-fail=1",
		"corrupt=0.5",
		"spike=0.1x8",
		"brownout=100:10",
		"brownout=100:10x4",
		"backoff=1ms",
		"seed=18446744073709551615",
		"dev-err=1.5",
		"dev-err=NaN",
		"spike=0.1xInf",
		"seed=1,seed=2",
		"nonsense",
		"=",
		"a=b=c",
		",,,",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParsePlan(src)
		if err != nil {
			return
		}
		// Property 2: canonical round trip.
		rendered := p.String()
		p2, err := ParsePlan(rendered)
		if err != nil {
			t.Fatalf("ParsePlan(%q) accepted, but its rendering %q does not re-parse: %v", src, rendered, err)
		}
		if *p2 != *p {
			t.Fatalf("round trip changed plan: %q -> %+v -> %q -> %+v", src, *p, rendered, *p2)
		}
		// Property 3: every accepted numeric field is finite and in range.
		for name, r := range map[string]float64{
			"dev-err": p.DevErrRate, "spike": p.SpikeRate,
			"wb-fail": p.WritebackFailRate, "torn": p.TornFlushRate,
			"h2-exhaust": p.H2ExhaustRate, "region-fail": p.RegionFailRate,
			"corrupt": p.CorruptRate,
		} {
			if !(r >= 0 && r <= 1) { // also catches NaN
				t.Fatalf("accepted %s rate %g outside [0,1] (src %q)", name, r, src)
			}
		}
		for name, v := range map[string]float64{
			"spike factor": p.SpikeFactor, "brownout factor": p.BrownoutFactor,
		} {
			if v != 0 && (!(v > 1) || v > 1e308) {
				t.Fatalf("accepted %s %g (src %q)", name, v, src)
			}
		}
		// Property 4: duplicating any token of an accepted plan is an error.
		if src != "" && !strings.Contains(src, " ") {
			first, _, _ := strings.Cut(src, ",")
			if strings.Contains(first, "=") {
				if _, err := ParsePlan(src + "," + first); err == nil {
					t.Fatalf("duplicated token %q accepted after valid plan %q", first, src)
				}
			}
		}
	})
}
