package fault

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Plan describes one deterministic fault schedule. The zero value injects
// nothing; rates are probabilities in [0,1] evaluated per operation against
// the seeded counter-keyed PRNG.
type Plan struct {
	// Seed keys every decision. Two runs with equal plans (same seed, same
	// rates) make identical decisions at identical operation indices.
	Seed uint64

	// DevErrRate is the probability that a device read/write suffers a
	// transient EIO-style error; MaxRetries bounds recovery attempts before
	// the failure latches as persistent, and BackoffBase is the first
	// retry's wait (doubling per attempt).
	DevErrRate  float64
	MaxRetries  int
	BackoffBase time.Duration

	// SpikeRate/SpikeFactor inject tail-latency events: an affected
	// operation costs SpikeFactor times its healthy cost.
	SpikeRate   float64
	SpikeFactor float64

	// BrownoutEvery/BrownoutLen/BrownoutFactor carve periodic bandwidth
	// brown-out windows: of every BrownoutEvery device-op decisions, the
	// first BrownoutLen pay BrownoutFactor times their healthy cost.
	BrownoutEvery  int64
	BrownoutLen    int64
	BrownoutFactor float64

	// WritebackFailRate fails page-cache dirty-page writebacks (recovered
	// by one retried device write).
	WritebackFailRate float64

	// TornFlushRate tears promotion-buffer flushes mid-write (recovered by
	// replaying the batch, doubling the flush's device cost).
	TornFlushRate float64

	// H2ExhaustRate forces PrepareMove failures, exercising the paper's
	// keep-it-in-H1 degradation path.
	H2ExhaustRate float64

	// RegionFailRate is the probability that a promotion-buffer flush
	// leaves its H2 region persistently failed (SMART-style bad blocks:
	// already-written data stays readable, further writes are refused).
	// The failure latches per region and is survivable only through the
	// recovery layer's quarantine-and-salvage pass.
	RegionFailRate float64

	// CorruptRate is the probability that a flush silently loses one
	// staged object image (the device acks the flush but drops a write).
	// The loss is invisible until the region's checksum is recomputed —
	// the scrubber's job — and the affected objects are tombstoned during
	// salvage, never returned as wrong answers.
	CorruptRate float64
}

// applyDefaults fills the recovery knobs that must be positive.
func (p *Plan) applyDefaults() {
	if p.MaxRetries <= 0 {
		p.MaxRetries = 4
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 50 * time.Microsecond
	}
	if p.SpikeFactor <= 0 {
		p.SpikeFactor = 8
	}
	if p.BrownoutFactor <= 0 {
		p.BrownoutFactor = 4
	}
	if p.BrownoutEvery > 0 && p.BrownoutLen <= 0 {
		p.BrownoutLen = p.BrownoutEvery / 10
		if p.BrownoutLen < 1 {
			p.BrownoutLen = 1
		}
	}
}

// String renders the plan in the DSL accepted by ParsePlan.
func (p *Plan) String() string {
	var parts []string
	parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	if p.DevErrRate > 0 {
		parts = append(parts, fmt.Sprintf("dev-err=%g", p.DevErrRate))
	}
	if p.MaxRetries > 0 {
		parts = append(parts, fmt.Sprintf("max-retries=%d", p.MaxRetries))
	}
	if p.BackoffBase > 0 {
		parts = append(parts, fmt.Sprintf("backoff=%s", p.BackoffBase))
	}
	if p.SpikeRate > 0 {
		parts = append(parts, fmt.Sprintf("spike=%gx%g", p.SpikeRate, p.SpikeFactor))
	}
	if p.BrownoutEvery > 0 {
		parts = append(parts, fmt.Sprintf("brownout=%d:%dx%g", p.BrownoutEvery, p.BrownoutLen, p.BrownoutFactor))
	}
	if p.WritebackFailRate > 0 {
		parts = append(parts, fmt.Sprintf("wb-fail=%g", p.WritebackFailRate))
	}
	if p.TornFlushRate > 0 {
		parts = append(parts, fmt.Sprintf("torn=%g", p.TornFlushRate))
	}
	if p.H2ExhaustRate > 0 {
		parts = append(parts, fmt.Sprintf("h2-exhaust=%g", p.H2ExhaustRate))
	}
	if p.RegionFailRate > 0 {
		parts = append(parts, fmt.Sprintf("region-fail=%g", p.RegionFailRate))
	}
	if p.CorruptRate > 0 {
		parts = append(parts, fmt.Sprintf("corrupt=%g", p.CorruptRate))
	}
	return strings.Join(parts, ",")
}

// ParsePlan parses the comma-separated key=value fault-plan DSL used by
// teraheap-bench's -fault flag:
//
//	seed=N             PRNG seed (default 1)
//	dev-err=P          transient device error probability per op
//	max-retries=N      retries before a failure latches (default 4)
//	backoff=DUR        base retry backoff, doubling per attempt (default 50us)
//	spike=P[xF]        latency spike probability P with cost factor F (default x8)
//	brownout=E:L[xF]   every E ops, L ops cost F times as much (default x4)
//	wb-fail=P          page-cache writeback failure probability
//	torn=P             torn promotion-buffer flush probability
//	h2-exhaust=P       forced PrepareMove (H2 exhaustion) probability
//	region-fail=P      persistent per-region H2 write failure probability
//	corrupt=P          silent flush corruption (lost object image) probability
//
// Unknown keys, duplicate keys, malformed values, and out-of-range
// probabilities are errors: a chaos schedule that silently ignores a typo
// — or lets a later key override an earlier one — would "pass" while
// testing something other than what was written.
func ParsePlan(s string) (*Plan, error) {
	p := &Plan{Seed: 1}
	seen := make(map[string]bool)
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("fault: %q is not key=value", kv)
		}
		if seen[key] {
			return nil, fmt.Errorf("fault: duplicate plan key %q (in token %q)", key, kv)
		}
		seen[key] = true
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseUint(val, 10, 64)
		case "dev-err":
			p.DevErrRate, err = parseRate(key, val)
		case "max-retries":
			p.MaxRetries, err = strconv.Atoi(val)
			if err == nil && p.MaxRetries < 1 {
				err = fmt.Errorf("fault: max-retries must be >= 1")
			}
		case "backoff":
			p.BackoffBase, err = time.ParseDuration(val)
			if err == nil && p.BackoffBase <= 0 {
				err = fmt.Errorf("fault: backoff must be positive")
			}
		case "spike":
			p.SpikeRate, p.SpikeFactor, err = parseRateFactor(key, val)
		case "brownout":
			err = parseBrownout(val, p)
		case "wb-fail":
			p.WritebackFailRate, err = parseRate(key, val)
		case "torn":
			p.TornFlushRate, err = parseRate(key, val)
		case "h2-exhaust":
			p.H2ExhaustRate, err = parseRate(key, val)
		case "region-fail":
			p.RegionFailRate, err = parseRate(key, val)
		case "corrupt":
			p.CorruptRate, err = parseRate(key, val)
		default:
			return nil, fmt.Errorf("fault: unknown plan key %q (valid: seed, dev-err, max-retries, backoff, spike, brownout, wb-fail, torn, h2-exhaust, region-fail, corrupt)", key)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: bad %s=%s: %w", key, val, err)
		}
	}
	p.applyDefaults()
	return p, nil
}

func parseRate(key, val string) (float64, error) {
	r, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	// NaN fails every comparison, so test for validity, not invalidity.
	if !(r >= 0 && r <= 1) {
		return 0, fmt.Errorf("%s must be a probability in [0,1]", key)
	}
	return r, nil
}

// parseRateFactor parses "P" or "PxF".
func parseRateFactor(key, val string) (rate, factor float64, err error) {
	rs, fs, hasFactor := strings.Cut(val, "x")
	rate, err = parseRate(key, rs)
	if err != nil {
		return 0, 0, err
	}
	if hasFactor {
		factor, err = strconv.ParseFloat(fs, 64)
		if err != nil {
			return 0, 0, err
		}
		if !(factor > 1) || math.IsInf(factor, 1) {
			return 0, 0, fmt.Errorf("%s factor must be a finite number > 1", key)
		}
	}
	if rate == 0 {
		// A zero-rate knob never fires, so its factor is unobservable;
		// normalize it away so String() stays a canonical round trip.
		factor = 0
	}
	return rate, factor, nil
}

// parseBrownout parses "E:L" or "E:LxF".
func parseBrownout(val string, p *Plan) error {
	es, rest, ok := strings.Cut(val, ":")
	if !ok {
		return fmt.Errorf("want EVERY:LEN[xFACTOR]")
	}
	ls, fs, hasFactor := strings.Cut(rest, "x")
	every, err := strconv.ParseInt(es, 10, 64)
	if err != nil {
		return err
	}
	length, err := strconv.ParseInt(ls, 10, 64)
	if err != nil {
		return err
	}
	if every <= 0 || length <= 0 || length > every {
		return fmt.Errorf("want 0 < LEN <= EVERY")
	}
	p.BrownoutEvery, p.BrownoutLen = every, length
	if hasFactor {
		f, err := strconv.ParseFloat(fs, 64)
		if err != nil {
			return err
		}
		if !(f > 1) || math.IsInf(f, 1) {
			return fmt.Errorf("brownout factor must be a finite number > 1")
		}
		p.BrownoutFactor = f
	}
	return nil
}
