package simclock

import (
	"testing"
	"time"
)

func TestSpansMaxAndSum(t *testing.T) {
	var s Spans
	s.Reset(3)
	s.Add(0, 10*time.Nanosecond)
	s.Add(1, 25*time.Nanosecond)
	s.Add(2, 5*time.Nanosecond)
	s.Add(1, 5*time.Nanosecond)
	if got := s.Max(); got != 30*time.Nanosecond {
		t.Fatalf("Max = %v, want 30ns", got)
	}
	if got := s.Sum(); got != 45*time.Nanosecond {
		t.Fatalf("Sum = %v, want 45ns", got)
	}
	if got := s.Get(1); got != 30*time.Nanosecond {
		t.Fatalf("Get(1) = %v, want 30ns", got)
	}
}

// A one-worker span set must degenerate to serial charging: Max == Sum.
func TestSpansSingleWorkerEqualsSerial(t *testing.T) {
	var s Spans
	s.Reset(1)
	for i := 0; i < 100; i++ {
		s.Add(0, time.Duration(i)*time.Nanosecond)
	}
	if s.Max() != s.Sum() {
		t.Fatalf("one worker: Max %v != Sum %v", s.Max(), s.Sum())
	}
}

func TestSpansResetReusesBacking(t *testing.T) {
	var s Spans
	s.Reset(4)
	s.Add(3, time.Microsecond)
	s.Reset(2)
	if s.Workers() != 2 {
		t.Fatalf("Workers = %d, want 2", s.Workers())
	}
	if s.Max() != 0 || s.Sum() != 0 {
		t.Fatalf("Reset did not clear spans: max=%v sum=%v", s.Max(), s.Sum())
	}
	// Growing back must expose cleared slots, not the stale microsecond.
	s.Reset(4)
	if s.Get(3) != 0 {
		t.Fatalf("grow-after-shrink exposed stale span %v", s.Get(3))
	}
	s.Reset(0)
	if s.Workers() != 1 {
		t.Fatalf("Reset(0) workers = %d, want 1", s.Workers())
	}
}

func TestSpansNegativeChargeIgnored(t *testing.T) {
	var s Spans
	s.Reset(2)
	s.Add(0, -time.Second)
	if s.Sum() != 0 {
		t.Fatalf("negative charge leaked: %v", s.Sum())
	}
}
