package simclock_test

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/carv-repro/teraheap-go/internal/simclock"
)

func TestChargeAccumulates(t *testing.T) {
	c := simclock.New()
	c.Charge(simclock.Other, 5*time.Millisecond)
	c.Charge(simclock.MinorGC, 2*time.Millisecond)
	c.Charge(simclock.Other, 1*time.Millisecond)
	b := c.Breakdown()
	if b.Get(simclock.Other) != 6*time.Millisecond {
		t.Fatalf("other = %v", b.Get(simclock.Other))
	}
	if b.Get(simclock.MinorGC) != 2*time.Millisecond {
		t.Fatalf("minor = %v", b.Get(simclock.MinorGC))
	}
	if c.Now() != 8*time.Millisecond {
		t.Fatalf("now = %v", c.Now())
	}
}

func TestNegativeChargesIgnored(t *testing.T) {
	c := simclock.New()
	c.Charge(simclock.Other, -time.Second)
	if c.Now() != 0 {
		t.Fatalf("negative charge accepted: %v", c.Now())
	}
}

func TestContextRouting(t *testing.T) {
	c := simclock.New()
	prev := c.SetContext(simclock.MajorGC)
	if prev != simclock.Other {
		t.Fatalf("initial context = %v", prev)
	}
	c.ChargeAmbient(time.Millisecond)
	c.SetContext(prev)
	c.ChargeAmbient(time.Millisecond)
	b := c.Breakdown()
	if b.Get(simclock.MajorGC) != time.Millisecond || b.Get(simclock.Other) != time.Millisecond {
		t.Fatalf("routing wrong: %v", b)
	}
}

func TestBreakdownSub(t *testing.T) {
	c := simclock.New()
	c.Charge(simclock.SerDesIO, 3*time.Millisecond)
	snap := c.Breakdown()
	c.Charge(simclock.SerDesIO, 4*time.Millisecond)
	d := c.Breakdown().Sub(snap)
	if d.Get(simclock.SerDesIO) != 4*time.Millisecond {
		t.Fatalf("delta = %v", d.Get(simclock.SerDesIO))
	}
}

func TestPropertyTotalEqualsSum(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		cl := simclock.New()
		cl.Charge(simclock.Other, time.Duration(a))
		cl.Charge(simclock.SerDesIO, time.Duration(b))
		cl.Charge(simclock.MinorGC, time.Duration(c))
		cl.Charge(simclock.MajorGC, time.Duration(d))
		bd := cl.Breakdown()
		return bd.Total() == time.Duration(a)+time.Duration(b)+time.Duration(c)+time.Duration(d) &&
			cl.Now() == bd.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	c := simclock.New()
	c.Charge(simclock.Other, time.Second)
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestCategoryNames(t *testing.T) {
	want := map[simclock.Category]string{
		simclock.Other:    "Other",
		simclock.SerDesIO: "S/D + I/O",
		simclock.MinorGC:  "Minor GC",
		simclock.MajorGC:  "Major GC",
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("%d: %q", c, c.String())
		}
	}
}
