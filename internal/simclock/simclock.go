// Package simclock provides the virtual time base for the TeraHeap
// simulator. Every simulated action (mutator compute, serialization,
// device I/O, garbage collection) charges nanoseconds to one of four
// categories, matching the execution-time breakdown reported in the
// paper's evaluation: Other, S/D+I/O, Minor GC, and Major GC.
//
// The clock is single-threaded and deterministic: simulated parallelism
// is expressed by dividing charges, not by running goroutines, so two
// runs of the same experiment always produce identical breakdowns.
package simclock

import (
	"fmt"
	"time"
)

// Category identifies which breakdown bucket a charge belongs to.
type Category int

// Breakdown categories, mirroring Figure 6's legend.
const (
	Other    Category = iota // mutator compute, incl. H2 page-fault wait
	SerDesIO                 // serialization/deserialization and off-heap I/O
	MinorGC                  // young-generation collections
	MajorGC                  // full collections (incl. H2 promotion I/O)
	numCategories
)

// String returns the paper's label for the category.
func (c Category) String() string {
	switch c {
	case Other:
		return "Other"
	case SerDesIO:
		return "S/D + I/O"
	case MinorGC:
		return "Minor GC"
	case MajorGC:
		return "Major GC"
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// Breakdown is a snapshot of accumulated time per category.
type Breakdown struct {
	NS [4]int64 // indexed by Category
}

// Total returns the end-to-end simulated execution time.
func (b Breakdown) Total() time.Duration {
	var t int64
	for _, v := range b.NS {
		t += v
	}
	return time.Duration(t)
}

// Get returns the time charged to category c.
func (b Breakdown) Get(c Category) time.Duration { return time.Duration(b.NS[c]) }

// Sub returns the per-category difference b - prev.
func (b Breakdown) Sub(prev Breakdown) Breakdown {
	var d Breakdown
	for i := range b.NS {
		d.NS[i] = b.NS[i] - prev.NS[i]
	}
	return d
}

// String renders the breakdown in a compact single line.
func (b Breakdown) String() string {
	return fmt.Sprintf("total=%v other=%v sd+io=%v minor=%v major=%v",
		b.Total(), b.Get(Other), b.Get(SerDesIO), b.Get(MinorGC), b.Get(MajorGC))
}

// Clock accumulates virtual time. The zero value is ready to use and
// charges to Other until SetContext changes the ambient category.
type Clock struct {
	ns      [numCategories]int64
	context Category
}

// New returns a fresh clock charging to Other by default.
func New() *Clock { return &Clock{} }

// SetContext sets the ambient category used by ChargeAmbient and by
// components (such as storage devices) that charge without knowing which
// phase invoked them. It returns the previous context so callers can
// restore it with defer.
func (c *Clock) SetContext(cat Category) Category {
	prev := c.context
	c.context = cat
	return prev
}

// Context returns the ambient category.
func (c *Clock) Context() Category { return c.context }

// Charge adds d to category cat. Negative charges are ignored.
func (c *Clock) Charge(cat Category, d time.Duration) {
	if d > 0 {
		c.ns[cat] += int64(d)
	}
}

// ChargeAmbient adds d to the ambient category.
func (c *Clock) ChargeAmbient(d time.Duration) { c.Charge(c.context, d) }

// Now returns total elapsed virtual time.
func (c *Clock) Now() time.Duration {
	var t int64
	for _, v := range c.ns {
		t += v
	}
	return time.Duration(t)
}

// Breakdown returns a snapshot of the per-category totals.
func (c *Clock) Breakdown() Breakdown {
	var b Breakdown
	for i := 0; i < int(numCategories); i++ {
		b.NS[i] = c.ns[i]
	}
	return b
}

// Reset zeroes all accumulated time (context is preserved).
func (c *Clock) Reset() { c.ns = [numCategories]int64{} }
