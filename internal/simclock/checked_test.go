package simclock

import (
	"errors"
	"math"
	"testing"
	"time"
)

// TestCheckedChargeParity pins that the checked charging paths are
// stat-identical to the unchecked ones on valid input, and that rejected
// charges leave both the clock and span set untouched.
func TestCheckedChargeParity(t *testing.T) {
	valid := []time.Duration{1, 17 * time.Nanosecond, time.Microsecond, 3 * time.Second}
	invalid := []time.Duration{0, -1, -time.Second, math.MinInt64}

	plain, checked := New(), New()
	plain.SetContext(SerDesIO)
	checked.SetContext(SerDesIO)
	for _, d := range valid {
		plain.Charge(MinorGC, d)
		if err := checked.ChargeChecked(MinorGC, d); err != nil {
			t.Fatalf("ChargeChecked(%v): unexpected error %v", d, err)
		}
		plain.ChargeAmbient(d)
		if err := checked.ChargeAmbientChecked(d); err != nil {
			t.Fatalf("ChargeAmbientChecked(%v): unexpected error %v", d, err)
		}
	}
	for _, d := range invalid {
		plain.Charge(MinorGC, d) // silently ignored
		err := checked.ChargeChecked(MinorGC, d)
		var ce *ChargeError
		if !errors.As(err, &ce) {
			t.Fatalf("ChargeChecked(%v): want *ChargeError, got %v", d, err)
		}
		if err := checked.ChargeAmbientChecked(d); !errors.As(err, &ce) {
			t.Fatalf("ChargeAmbientChecked(%v): want *ChargeError, got %v", d, err)
		}
	}
	if plain.Breakdown() != checked.Breakdown() {
		t.Fatalf("breakdown diverged: plain=%v checked=%v", plain.Breakdown(), checked.Breakdown())
	}
	if plain.Now() != checked.Now() {
		t.Fatalf("Now diverged: plain=%v checked=%v", plain.Now(), checked.Now())
	}
}

func TestCheckedSpanParity(t *testing.T) {
	var plain, checked Spans
	plain.Reset(4)
	checked.Reset(4)
	for w := 0; w < 4; w++ {
		d := time.Duration(w+1) * time.Microsecond
		plain.Add(w, d)
		if err := checked.AddChecked(w, d); err != nil {
			t.Fatalf("AddChecked(%d, %v): unexpected error %v", w, d, err)
		}
		plain.Add(w, -d) // silently ignored
		var ce *ChargeError
		if err := checked.AddChecked(w, -d); !errors.As(err, &ce) {
			t.Fatalf("AddChecked(%d, %v): want *ChargeError, got %v", w, -d, err)
		}
	}
	if plain.Max() != checked.Max() || plain.Sum() != checked.Sum() {
		t.Fatalf("spans diverged: plain max=%v sum=%v, checked max=%v sum=%v",
			plain.Max(), plain.Sum(), checked.Max(), checked.Sum())
	}
	for w := 0; w < 4; w++ {
		if plain.Get(w) != checked.Get(w) {
			t.Fatalf("worker %d diverged: plain=%v checked=%v", w, plain.Get(w), checked.Get(w))
		}
	}
}

func TestDurationFromSeconds(t *testing.T) {
	got, err := DurationFromSeconds(0.5)
	if err != nil || got != 500*time.Millisecond {
		t.Fatalf("DurationFromSeconds(0.5) = %v, %v", got, err)
	}
	for _, sec := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1), 1e300} {
		var ce *ChargeError
		if _, err := DurationFromSeconds(sec); !errors.As(err, &ce) {
			t.Fatalf("DurationFromSeconds(%v): want *ChargeError, got %v", sec, err)
		} else if ce.Error() == "" {
			t.Fatalf("DurationFromSeconds(%v): empty error string", sec)
		}
	}
}
