package simclock

import "time"

// Spans accumulates per-worker virtual-time spans for one gang-parallel
// phase. The collector attributes each work item's CPU cost to one worker;
// the phase's pause contribution is then Max() — the longest worker span —
// instead of the serial sum, which is how a simulated gang of N workers
// shortens a pause without running goroutines (the clock stays
// single-threaded and deterministic).
//
// The backing array is reused across Reset calls, so a steady-state GC
// cycle performs no allocation once the span set has grown to its gang
// size.
type Spans struct {
	ns []int64
}

// Reset clears the spans and sizes the set for n workers (n < 1 is
// treated as 1).
func (s *Spans) Reset(n int) {
	if n < 1 {
		n = 1
	}
	if cap(s.ns) < n {
		s.ns = make([]int64, n)
		return
	}
	s.ns = s.ns[:n]
	for i := range s.ns {
		s.ns[i] = 0
	}
}

// Workers returns the number of workers in the span set.
func (s *Spans) Workers() int { return len(s.ns) }

// Add charges d to worker w's span. Negative charges are ignored,
// mirroring Clock.Charge.
func (s *Spans) Add(w int, d time.Duration) {
	if d > 0 {
		s.ns[w] += int64(d)
	}
}

// Get returns worker w's accumulated span.
func (s *Spans) Get(w int) time.Duration { return time.Duration(s.ns[w]) }

// Max returns the longest worker span: the phase's duration under
// max-over-workers charging. A one-worker span set degenerates to Sum, so
// gang charging with one worker is exactly serial charging.
func (s *Spans) Max() time.Duration {
	var m int64
	for _, v := range s.ns {
		if v > m {
			m = v
		}
	}
	return time.Duration(m)
}

// Sum returns the total CPU across all workers (the serial-equivalent
// work, used to report parallel efficiency).
func (s *Spans) Sum() time.Duration {
	var t int64
	for _, v := range s.ns {
		t += v
	}
	return time.Duration(t)
}
