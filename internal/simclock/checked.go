package simclock

import (
	"fmt"
	"math"
	"time"
)

// ChargeError reports a rejected charge: a negative or otherwise invalid
// duration handed to one of the checked charging paths. It mirrors the
// typed n<=0 guard on the device AccountRead path — the unchecked
// Charge/Add entry points keep silently ignoring bad input (so existing
// figure output is byte-identical), while callers that compute durations
// from external input (the server config parser, rate conversions) use
// the checked variants and surface the bug instead of corrupting the
// breakdown.
type ChargeError struct {
	Op string        // which charging path rejected the value
	D  time.Duration // the rejected duration (when the input was a duration)
	V  float64       // the rejected scalar (when the input was seconds)
}

func (e *ChargeError) Error() string {
	if e.V != 0 || math.IsNaN(e.V) {
		return fmt.Sprintf("simclock: %s: invalid duration from %v seconds", e.Op, e.V)
	}
	return fmt.Sprintf("simclock: %s: invalid duration %v", e.Op, e.D)
}

// ChargeChecked adds d to category cat, rejecting d <= 0 with a typed
// error. A rejected charge leaves the clock untouched.
func (c *Clock) ChargeChecked(cat Category, d time.Duration) error {
	if d <= 0 {
		return &ChargeError{Op: "ChargeChecked", D: d}
	}
	c.ns[cat] += int64(d)
	return nil
}

// ChargeAmbientChecked adds d to the ambient category, rejecting d <= 0
// with a typed error.
func (c *Clock) ChargeAmbientChecked(d time.Duration) error {
	if d <= 0 {
		return &ChargeError{Op: "ChargeAmbientChecked", D: d}
	}
	c.ns[c.context] += int64(d)
	return nil
}

// AddChecked charges d to worker w's span, rejecting d <= 0 with a typed
// error. A rejected charge leaves the span set untouched.
func (s *Spans) AddChecked(w int, d time.Duration) error {
	if d <= 0 {
		return &ChargeError{Op: "AddChecked", D: d}
	}
	s.ns[w] += int64(d)
	return nil
}

// DurationFromSeconds converts a scalar number of seconds into a
// duration, rejecting NaN, infinities, non-positive values, values that
// overflow int64 nanoseconds, and sub-nanosecond values that would
// silently truncate to a zero duration. Rate and deadline knobs parsed
// from text go through this single guard so a malformed config can never
// charge a negative, zero, or NaN-derived duration to the clock.
func DurationFromSeconds(sec float64) (time.Duration, error) {
	ns := sec * float64(time.Second)
	// NaN fails both comparisons; the bounds exclude zero, negatives,
	// infinities, overflow, and sub-nanosecond truncation in one test.
	if !(ns >= 1 && ns <= float64(math.MaxInt64)) {
		return 0, &ChargeError{Op: "DurationFromSeconds", V: sec}
	}
	return time.Duration(ns), nil
}
