// Package spark simulates the memory-management-relevant slice of Apache
// Spark over the managed runtime: RDDs materialized as heap object graphs,
// a block manager with the paper's three cache configurations (Spark-SD's
// on-heap + serialized off-heap split, Spark-MO's all-on-heap, and
// TeraHeap), shuffle serialization, and a task loop that models executor
// mutator threads (§5, Fig 4).
package spark

import (
	"time"

	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/serde"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// Mode selects the caching configuration (Table 2).
type Mode int

// Cache configurations.
const (
	// ModeSD is Spark-SD: deserialized partitions on-heap up to a budget,
	// the rest serialized to an off-heap device store.
	ModeSD Mode = iota
	// ModeTH is TeraHeap: partitions tagged and moved to H2.
	ModeTH
	// ModeMO is Spark-MO / Panthera: everything cached on-heap (the heap
	// itself may live on NVM).
	ModeMO
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeSD:
		return "spark-sd"
	case ModeTH:
		return "teraheap"
	case ModeMO:
		return "spark-mo"
	}
	return "?"
}

// Conf configures a Spark context.
type Conf struct {
	RT      rt.Runtime
	Mode    Mode
	Threads int // executor mutator threads (paper default: 8)
	SerKind serde.Kind

	// OffHeapDev backs the serialized off-heap cache in ModeSD.
	OffHeapDev *storage.Device
	// OffHeapCacheBytes is the DRAM page-cache share for off-heap blobs.
	OffHeapCacheBytes int64
	// OnHeapCacheBytes is the ModeSD on-heap cache budget (paper: 50% of
	// the heap).
	OnHeapCacheBytes int64

	// ComputePerElem is the mutator CPU cost per element visited.
	ComputePerElem time.Duration
}

// Context is a Spark session.
type Context struct {
	Conf Conf
	RT   rt.Runtime
	Ser  *serde.Serializer
	BM   *BlockManager

	// Heap classes for partition data.
	ClsPartition *vm.Class // ref array: partition root
	ClsData      *vm.Class // prim array: element payloads
	ClsElem      *vm.Class // fixed: boxed element {1 ref, 2 prims}

	nextRDD uint64
}

// NewContext builds a Spark context over the runtime in conf.
func NewContext(conf Conf) *Context {
	if conf.Threads <= 0 {
		conf.Threads = 8
	}
	if conf.ComputePerElem == 0 {
		conf.ComputePerElem = 60 * time.Nanosecond
	}
	classes := conf.RT.Classes()
	cls := func(name string, mk func() *vm.Class) *vm.Class {
		if c := classes.ByName(name); c != nil {
			return c
		}
		return mk()
	}
	ctx := &Context{
		Conf: conf,
		RT:   conf.RT,
		ClsPartition: cls("spark.Partition", func() *vm.Class {
			return classes.MustRefArray("spark.Partition")
		}),
		ClsData: cls("spark.Data", func() *vm.Class {
			return classes.MustPrimArray("spark.Data")
		}),
		ClsElem: cls("spark.Elem", func() *vm.Class {
			return classes.MustFixed("spark.Elem", 1, 2)
		}),
	}
	ctx.Ser = serde.New(conf.RT, conf.SerKind)
	ctx.Ser.Parallelism = conf.Threads
	ctx.BM = newBlockManager(ctx)
	return ctx
}

// NextRDDID hands out RDD ids (used as TeraHeap labels, so they start
// at 1).
func (ctx *Context) NextRDDID() uint64 {
	ctx.nextRDD++
	return ctx.nextRDD
}

// ChargeCompute bills mutator work divided across the executor threads.
func (ctx *Context) ChargeCompute(d time.Duration) {
	ctx.RT.Clock().Charge(simclock.Other, d/time.Duration(ctx.Conf.Threads))
}

// ChargeElements bills per-element compute for n elements.
func (ctx *Context) ChargeElements(n int64) {
	ctx.ChargeCompute(time.Duration(n) * ctx.Conf.ComputePerElem)
}

// Shuffle models one shuffle stage moving the given number of element
// payload words: serialize on the map side, deserialize on the reduce
// side, both allocating temporaries and charging S/D CPU.
func (ctx *Context) Shuffle(words int64) error {
	if words <= 0 {
		return nil
	}
	if err := ctx.Ser.ChargeSerializeStream(words); err != nil {
		return err
	}
	return ctx.Ser.ChargeDeserialize(0, words)
}

// Breakdown snapshots the execution-time breakdown.
func (ctx *Context) Breakdown() simclock.Breakdown { return ctx.RT.Breakdown() }
