package spark

import (
	"fmt"

	"github.com/carv-repro/teraheap-go/internal/vm"
)

// PartStats sizes a materialized partition for caching decisions and
// deserialization cost accounting.
type PartStats struct {
	Objects  int64
	Words    int64
	Elements int
}

// BuildFn materializes one partition as a rooted heap object graph.
// Builders must return a handle to the partition's single-entry root
// (key-object) — the shape TeraHeap's hint interface expects (§3.1).
type BuildFn func(ctx *Context, p int) (*vm.Handle, PartStats, error)

// RDD is a resilient distributed dataset: a partitioned collection that
// can be recomputed from its build function (lineage) or served from the
// block manager once persisted.
type RDD struct {
	Ctx      *Context
	ID       uint64
	NumParts int
	Build    BuildFn

	persisted bool
	stats     []PartStats
}

// NewRDD registers a dataset with the context.
func NewRDD(ctx *Context, numParts int, build BuildFn) *RDD {
	return &RDD{Ctx: ctx, ID: ctx.NextRDDID(), NumParts: numParts, Build: build,
		stats: make([]PartStats, numParts)}
}

// Persist marks the RDD for caching (the application-level persist() call,
// step 1 in Fig 4). Data is cached lazily, partition by partition, as it
// is first materialized.
func (r *RDD) Persist() *RDD {
	r.persisted = true
	return r
}

// Persisted reports whether the RDD is marked for caching.
func (r *RDD) Persisted() bool { return r.persisted }

// PartitionKey identifies a cached block.
type PartitionKey struct {
	RDD  uint64
	Part int
}

// GetPartition returns a handle to partition p's root, materializing,
// caching, or rebuilding as the mode requires. The returned release
// function must be called when the task is done with the partition.
func (r *RDD) GetPartition(p int) (*vm.Handle, func(), error) {
	if p < 0 || p >= r.NumParts {
		return nil, nil, fmt.Errorf("spark: partition %d out of range [0,%d)", p, r.NumParts)
	}
	if r.persisted {
		return r.Ctx.BM.GetOrBuild(r, p)
	}
	h, st, err := r.Build(r.Ctx, p)
	if err != nil {
		return nil, nil, err
	}
	r.stats[p] = st
	return h, func() { r.Ctx.RT.Release(h) }, nil
}

// ForEachPartition runs fn over every partition in waves of
// Conf.Threads: the partitions of one wave are materialized together
// (their temporary footprints coexist, as with real concurrent tasks)
// before any is released.
func (r *RDD) ForEachPartition(fn func(p int, root vm.Addr) error) error {
	threads := r.Ctx.Conf.Threads
	for base := 0; base < r.NumParts; base += threads {
		hi := base + threads
		if hi > r.NumParts {
			hi = r.NumParts
		}
		handles := make([]*vm.Handle, 0, hi-base)
		releases := make([]func(), 0, hi-base)
		var err error
		for p := base; p < hi; p++ {
			var h *vm.Handle
			var rel func()
			h, rel, err = r.GetPartition(p)
			if err != nil {
				break
			}
			handles = append(handles, h)
			releases = append(releases, rel)
		}
		if err == nil {
			for i, h := range handles {
				if err = fn(base+i, h.Addr()); err != nil {
					break
				}
			}
		}
		for _, rel := range releases {
			rel()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Elements returns the element count of partition p recorded at build
// time (0 before first materialization).
func (r *RDD) Elements(p int) int { return r.stats[p].Elements }
