package spark

import (
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// BlockManager caches materialized partitions according to the configured
// mode (Fig 4): a hashmap of on-heap blocks, an off-heap serialized store
// (Spark-SD), or TeraHeap tagging (TH).
type BlockManager struct {
	ctx *Context

	onHeap      map[PartitionKey]*cachedBlock
	onHeapBytes int64

	store   *storage.ByteStore
	offHeap map[PartitionKey]*offHeapBlock

	// Counters.
	OnHeapHits  int64
	OffHeapHits int64
	Builds      int64
	Spills      int64
}

type cachedBlock struct {
	h  *vm.Handle
	st PartStats
}

type offHeapBlock struct {
	blob storage.BlobID
	st   PartStats
}

func newBlockManager(ctx *Context) *BlockManager {
	bm := &BlockManager{
		ctx:     ctx,
		onHeap:  make(map[PartitionKey]*cachedBlock),
		offHeap: make(map[PartitionKey]*offHeapBlock),
	}
	if ctx.Conf.Mode == ModeSD {
		dev := ctx.Conf.OffHeapDev
		if dev == nil {
			dev = storage.NewDevice(storage.NVMeSSD, ctx.RT.Clock())
		}
		bm.store = storage.NewByteStore(dev, ctx.Conf.OffHeapCacheBytes)
	}
	return bm
}

// GetOrBuild serves a persisted partition: from the on-heap cache (which,
// under TeraHeap, transparently covers H2-resident partitions), from the
// off-heap serialized store (read + deserialize + rebuild), or by first
// materialization (which also caches it).
func (bm *BlockManager) GetOrBuild(r *RDD, p int) (*vm.Handle, func(), error) {
	key := PartitionKey{RDD: r.ID, Part: p}
	if cb, ok := bm.onHeap[key]; ok {
		bm.OnHeapHits++
		return cb.h, func() {}, nil
	}
	if ob, ok := bm.offHeap[key]; ok {
		bm.OffHeapHits++
		// Off-heap access: device read, deserialization CPU + temps, and
		// reconstruction of the object graph on the heap — all billed to
		// the S/D + I/O bucket.
		clock := bm.ctx.RT.Clock()
		prev := clock.SetContext(simclock.SerDesIO)
		bm.store.Get(ob.blob)
		err := bm.ctx.Ser.ChargeDeserialize(ob.st.Objects, ob.st.Words)
		var h *vm.Handle
		if err == nil {
			h, _, err = r.Build(bm.ctx, p)
		}
		clock.SetContext(prev)
		if err != nil {
			return nil, nil, err
		}
		return h, func() { bm.ctx.RT.Release(h) }, nil
	}

	// First materialization.
	bm.Builds++
	h, st, err := r.Build(bm.ctx, p)
	if err != nil {
		return nil, nil, err
	}
	r.stats[p] = st
	return bm.put(r, key, h, st)
}

func (bm *BlockManager) put(r *RDD, key PartitionKey, h *vm.Handle, st PartStats) (*vm.Handle, func(), error) {
	switch bm.ctx.Conf.Mode {
	case ModeTH:
		// Fig 4 steps 2-3: mark the partition descriptor as a root
		// key-object labelled with the dataset id, and advise movement.
		bm.onHeap[key] = &cachedBlock{h: h, st: st}
		bm.onHeapBytes += st.Words * vm.WordSize
		bm.ctx.RT.TagRoot(h, key.RDD)
		bm.ctx.RT.MoveHint(key.RDD)
		return h, func() {}, nil

	case ModeMO:
		bm.onHeap[key] = &cachedBlock{h: h, st: st}
		bm.onHeapBytes += st.Words * vm.WordSize
		return h, func() {}, nil

	default: // ModeSD
		bytes := st.Words * vm.WordSize
		if bm.ctx.Conf.OnHeapCacheBytes == 0 || bm.onHeapBytes+bytes <= bm.ctx.Conf.OnHeapCacheBytes {
			bm.onHeap[key] = &cachedBlock{h: h, st: st}
			bm.onHeapBytes += bytes
			return h, func() {}, nil
		}
		// On-heap cache full: serialize to the off-heap device store. The
		// heap copy survives only until the current task releases it.
		bm.Spills++
		clock := bm.ctx.RT.Clock()
		prev := clock.SetContext(simclock.SerDesIO)
		sz, err := bm.ctx.Ser.Serialize(h.Addr())
		var blob storage.BlobID
		if err == nil {
			blob = bm.store.Put(sz)
		}
		clock.SetContext(prev)
		if err != nil {
			return nil, nil, err
		}
		bm.offHeap[key] = &offHeapBlock{blob: blob, st: st}
		return h, func() { bm.ctx.RT.Release(h) }, nil
	}
}

// OnHeapBytes returns the bytes held by the on-heap cache.
func (bm *BlockManager) OnHeapBytes() int64 { return bm.onHeapBytes }

// OffHeapBlocks returns the number of serialized off-heap partitions.
func (bm *BlockManager) OffHeapBlocks() int { return len(bm.offHeap) }

// Store exposes the off-heap byte store (nil outside ModeSD).
func (bm *BlockManager) Store() *storage.ByteStore { return bm.store }
