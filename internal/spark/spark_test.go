package spark_test

import (
	"testing"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/serde"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/spark"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

func newCtx(t *testing.T, mode spark.Mode, h1Size int64) *spark.Context {
	t.Helper()
	clock := simclock.New()
	var jvm *rt.JVM
	if mode == spark.ModeTH {
		cfg := core.DefaultConfig(256 * storage.MB)
		cfg.RegionSize = 256 * storage.KB
		cfg.CacheBytes = 4 * storage.MB
		jvm = rt.NewJVM(rt.Options{H1Size: h1Size, TH: &cfg}, nil, clock)
	} else {
		jvm = rt.NewJVM(rt.Options{H1Size: h1Size}, nil, clock)
	}
	return spark.NewContext(spark.Conf{
		RT:                jvm,
		Mode:              mode,
		Threads:           4,
		SerKind:           serde.Kryo,
		OffHeapCacheBytes: 2 * storage.MB,
		OnHeapCacheBytes:  h1Size / 2,
	})
}

// buildCounting returns a BuildFn materializing numElem prim arrays of
// elemWords words, each filled with its partition-global index.
func buildCounting(numElem, elemWords int) spark.BuildFn {
	return func(ctx *spark.Context, p int) (*vm.Handle, spark.PartStats, error) {
		var st spark.PartStats
		root, err := ctx.RT.AllocRefArray(ctx.ClsPartition, numElem)
		if err != nil {
			return nil, st, err
		}
		h := ctx.RT.NewHandle(root)
		st.Objects = 1
		st.Words = int64(vm.HeaderWords + numElem)
		for i := 0; i < numElem; i++ {
			e, err := ctx.RT.AllocPrimArray(ctx.ClsData, elemWords)
			if err != nil {
				ctx.RT.Release(h)
				return nil, st, err
			}
			ctx.RT.WritePrim(e, 0, uint64(p*numElem+i))
			ctx.RT.WriteRef(h.Addr(), i, e)
			st.Objects++
			st.Words += int64(vm.HeaderWords + elemWords)
			st.Elements++
		}
		return h, st, nil
	}
}

func sumRDD(t *testing.T, r *spark.RDD, numElem int) uint64 {
	t.Helper()
	var sum uint64
	err := r.ForEachPartition(func(p int, root vm.Addr) error {
		for i := 0; i < numElem; i++ {
			e := r.Ctx.RT.ReadRef(root, i)
			sum += r.Ctx.RT.ReadPrim(e, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("iterate: %v", err)
	}
	return sum
}

func wantSum(parts, numElem int) uint64 {
	n := uint64(parts * numElem)
	return n * (n - 1) / 2
}

func TestRDDMaterializeAndIterate(t *testing.T) {
	ctx := newCtx(t, spark.ModeSD, 8*storage.MB)
	r := spark.NewRDD(ctx, 4, buildCounting(50, 4))
	if got, want := sumRDD(t, r, 50), wantSum(4, 50); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestPersistOnHeapServesFromCache(t *testing.T) {
	ctx := newCtx(t, spark.ModeMO, 16*storage.MB)
	r := spark.NewRDD(ctx, 4, buildCounting(50, 4)).Persist()
	want := wantSum(4, 50)
	for i := 0; i < 3; i++ {
		if got := sumRDD(t, r, 50); got != want {
			t.Fatalf("pass %d: sum = %d, want %d", i, got, want)
		}
	}
	if ctx.BM.Builds != 4 {
		t.Fatalf("builds = %d, want 4 (one per partition)", ctx.BM.Builds)
	}
	if ctx.BM.OnHeapHits < 8 {
		t.Fatalf("on-heap hits = %d, want >= 8", ctx.BM.OnHeapHits)
	}
}

func TestSDModeSpillsToOffHeap(t *testing.T) {
	ctx := newCtx(t, spark.ModeSD, 8*storage.MB)
	// Cap the on-heap cache tightly so most partitions spill.
	ctx.Conf.OnHeapCacheBytes = 64 * storage.KB
	r := spark.NewRDD(ctx, 8, buildCounting(200, 8)).Persist()
	want := wantSum(8, 200)
	for i := 0; i < 2; i++ {
		if got := sumRDD(t, r, 200); got != want {
			t.Fatalf("pass %d: sum = %d, want %d", i, got, want)
		}
	}
	if ctx.BM.Spills == 0 {
		t.Fatal("no partitions spilled off-heap")
	}
	if ctx.BM.OffHeapHits == 0 {
		t.Fatal("no off-heap reads")
	}
	b := ctx.Breakdown()
	if b.Get(simclock.SerDesIO) <= 0 {
		t.Fatal("no S/D time charged for off-heap caching")
	}
}

func TestTHModeMovesCachedDataToH2(t *testing.T) {
	ctx := newCtx(t, spark.ModeTH, 8*storage.MB)
	r := spark.NewRDD(ctx, 8, buildCounting(200, 8)).Persist()
	want := wantSum(8, 200)
	if got := sumRDD(t, r, 200); got != want {
		t.Fatalf("first pass: sum = %d, want %d", got, want)
	}
	// Force the move and re-read through H2.
	if err := ctx.RT.FullGC(); err != nil {
		t.Fatal(err)
	}
	if got := sumRDD(t, r, 200); got != want {
		t.Fatalf("post-move pass: sum = %d, want %d", got, want)
	}
	jvm := ctx.RT.(*rt.JVM)
	if jvm.TeraHeap().Stats().ObjectsMoved == 0 {
		t.Fatal("nothing moved to H2")
	}
	if ctx.BM.Spills != 0 {
		t.Fatal("TH mode must not spill off-heap")
	}
}

func TestShuffleChargesSD(t *testing.T) {
	ctx := newCtx(t, spark.ModeMO, 8*storage.MB)
	if err := ctx.Shuffle(10000); err != nil {
		t.Fatal(err)
	}
	if ctx.Breakdown().Get(simclock.SerDesIO) <= 0 {
		t.Fatal("shuffle charged no S/D time")
	}
}

func TestTHModeNeverRebuilds(t *testing.T) {
	ctx := newCtx(t, spark.ModeTH, 8*storage.MB)
	r := spark.NewRDD(ctx, 8, buildCounting(100, 4)).Persist()
	want := wantSum(8, 100)
	for i := 0; i < 5; i++ {
		if got := sumRDD(t, r, 100); got != want {
			t.Fatalf("pass %d: sum = %d", i, got)
		}
	}
	if ctx.BM.Builds != 8 {
		t.Fatalf("builds = %d, want exactly one per partition", ctx.BM.Builds)
	}
	if ctx.BM.OffHeapHits != 0 {
		t.Fatal("TH mode read from the off-heap store")
	}
}

func TestWaveFootprintScalesWithThreads(t *testing.T) {
	// Unpersisted RDD: each wave holds Threads partitions live at once.
	// With a tiny heap, 8 threads must OOM where 2 threads survive.
	run := func(threads int) error {
		clock := simclock.New()
		jvm := rt.NewJVM(rt.Options{H1Size: 1 * storage.MB}, nil, clock)
		ctx := spark.NewContext(spark.Conf{
			RT: jvm, Mode: spark.ModeMO, Threads: threads, SerKind: serde.Kryo,
		})
		r := spark.NewRDD(ctx, 16, buildCounting(1500, 8)) // ~100KB per partition
		return r.ForEachPartition(func(p int, root vm.Addr) error { return nil })
	}
	if err := run(2); err != nil {
		t.Fatalf("2 threads should fit: %v", err)
	}
	if err := run(8); err == nil {
		t.Fatal("8 threads should exceed the heap")
	}
}

func TestSDModeOffHeapRebuildChargesSD(t *testing.T) {
	ctx := newCtx(t, spark.ModeSD, 8*storage.MB)
	ctx.Conf.OnHeapCacheBytes = 16 * storage.KB // force spills
	r := spark.NewRDD(ctx, 4, buildCounting(300, 8)).Persist()
	want := wantSum(4, 300)
	if got := sumRDD(t, r, 300); got != want {
		t.Fatal("first pass wrong")
	}
	before := ctx.Breakdown().Get(simclock.SerDesIO)
	if got := sumRDD(t, r, 300); got != want {
		t.Fatal("second pass wrong")
	}
	if ctx.Breakdown().Get(simclock.SerDesIO) <= before {
		t.Fatal("re-reading spilled partitions charged no S/D")
	}
}

func TestPartitionOutOfRange(t *testing.T) {
	ctx := newCtx(t, spark.ModeMO, 4*storage.MB)
	r := spark.NewRDD(ctx, 4, buildCounting(10, 4))
	if _, _, err := r.GetPartition(4); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
	if _, _, err := r.GetPartition(-1); err == nil {
		t.Fatal("negative partition accepted")
	}
}
