package heap_test

import (
	"testing"
	"testing/quick"

	"github.com/carv-repro/teraheap-go/internal/heap"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

func TestLayoutGeometry(t *testing.T) {
	cfg := heap.DefaultConfig(3 << 20)
	as := &vm.AddressSpace{}
	h := heap.New(cfg, as)

	if h.Eden.Start != vm.H1Base {
		t.Fatalf("eden start %v", h.Eden.Start)
	}
	// Spaces tile the heap without gaps or overlap.
	if h.From.Start != h.Eden.End || h.To.Start != h.From.End || h.Old.Start != h.To.End {
		t.Fatal("spaces do not tile")
	}
	if h.Old.End != vm.H1Base+vm.Addr(cfg.H1Size&^63) {
		t.Fatalf("old end %v", h.Old.End)
	}
	// Young is roughly a third, survivors a tenth of young each.
	young := h.Eden.Capacity() + h.From.Capacity() + h.To.Capacity()
	if r := float64(young) / float64(cfg.H1Size); r < 0.30 || r > 0.36 {
		t.Fatalf("young fraction %v", r)
	}
	if h.From.Capacity() != h.To.Capacity() {
		t.Fatal("survivor spaces differ")
	}
	// The mapped RAM covers every space (writable end to end).
	as.Store(h.Old.End-8, 42)
	if as.Load(h.Old.End-8) != 42 {
		t.Fatal("top of heap not mapped")
	}
}

func TestClassification(t *testing.T) {
	h := heap.New(heap.DefaultConfig(1<<20), &vm.AddressSpace{})
	if !h.InYoung(h.Eden.Start) || !h.InYoung(h.From.Start) || !h.InYoung(h.To.Start) {
		t.Fatal("young classification")
	}
	if h.InYoung(h.Old.Start) || !h.InOld(h.Old.Start) {
		t.Fatal("old classification")
	}
	if h.Contains(h.Old.End) {
		t.Fatal("one-past-end contained")
	}
}

func TestSwapSurvivors(t *testing.T) {
	h := heap.New(heap.DefaultConfig(1<<20), &vm.AddressSpace{})
	f, to := h.From, h.To
	h.SwapSurvivors()
	if h.From != to || h.To != f {
		t.Fatal("swap failed")
	}
}

func TestCardTableIndexBounds(t *testing.T) {
	ct := heap.NewCardTable(vm.H1Base, vm.H1Base+10_000, 512)
	if ct.NumCards() != 20 {
		t.Fatalf("cards = %d", ct.NumCards())
	}
	f := func(off uint16) bool {
		a := vm.H1Base + vm.Addr(off)%10_000
		i := ct.Index(a)
		lo, hi := ct.CardBounds(i)
		return a >= lo && a < hi && i >= 0 && i < ct.NumCards()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Final card is clipped to the range end.
	_, hi := ct.CardBounds(19)
	if hi != vm.H1Base+10_000 {
		t.Fatalf("last card end %v", hi)
	}
}

func TestCardTableMarkAndClear(t *testing.T) {
	ct := heap.NewCardTable(vm.H1Base, vm.H1Base+1<<16, 512)
	ct.MarkDirty(vm.H1Base + 1000)
	ct.MarkDirty(vm.H1Base + 40_000)
	ct.MarkDirty(vm.H1Base - 8) // out of range: ignored
	if ct.CountDirty() != 2 {
		t.Fatalf("dirty = %d", ct.CountDirty())
	}
	var visited []int
	ct.ForEach(func(s byte) bool { return s == heap.CardDirty }, func(i int) {
		visited = append(visited, i)
	})
	if len(visited) != 2 {
		t.Fatalf("visited %v", visited)
	}
	ct.ClearAll()
	if ct.CountDirty() != 0 {
		t.Fatal("clear failed")
	}
}

func TestOldOccupancy(t *testing.T) {
	h := heap.New(heap.DefaultConfig(1<<20), &vm.AddressSpace{})
	if h.OldOccupancy() != 0 {
		t.Fatal("fresh heap occupied")
	}
	if _, ok := h.Old.Alloc(int(h.Old.Capacity() / 2 / 8)); !ok {
		t.Fatal("alloc failed")
	}
	if occ := h.OldOccupancy(); occ < 0.49 || occ > 0.51 {
		t.Fatalf("occupancy %v", occ)
	}
}
