// Package heap lays out the regular managed heap (H1): a Parallel
// Scavenge-style generational heap with an eden space, two survivor
// semispaces, an old generation, and a card table tracking old-to-young
// references.
package heap

import (
	"fmt"

	"github.com/carv-repro/teraheap-go/internal/vm"
)

// Config sizes H1. Ratios follow Parallel Scavenge defaults.
type Config struct {
	// H1Size is the total heap size in bytes.
	H1Size int64
	// YoungFraction of H1 devoted to the young generation (PS default
	// NewRatio=2 → 1/3).
	YoungFraction float64
	// SurvivorFraction of the young generation per survivor space
	// (PS default SurvivorRatio=8 → 1/10 each).
	SurvivorFraction float64
	// TenureAge is the number of minor GCs an object survives before
	// promotion to the old generation.
	TenureAge int
	// CardSize is the H1 card segment size in bytes (JVM default 512).
	CardSize int
}

// ConfigError is the typed error for an invalid H1 configuration. Heap
// geometry comes from user input (experiment sweeps, CLI flags), so bad
// values surface as errors, not panics.
type ConfigError struct{ Reason string }

// Error describes the invalid configuration.
func (e *ConfigError) Error() string { return "heap: invalid config: " + e.Reason }

// Validate checks the configuration for user-correctable mistakes.
func (cfg *Config) Validate() error {
	switch {
	case cfg.H1Size <= 0:
		return &ConfigError{Reason: fmt.Sprintf("non-positive H1 size %d", cfg.H1Size)}
	case cfg.YoungFraction <= 0 || cfg.YoungFraction >= 1:
		return &ConfigError{Reason: fmt.Sprintf("bad young fraction %v", cfg.YoungFraction)}
	case cfg.SurvivorFraction < 0 || cfg.SurvivorFraction >= 0.5:
		return &ConfigError{Reason: fmt.Sprintf("bad survivor fraction %v", cfg.SurvivorFraction)}
	}
	return nil
}

// DefaultConfig returns PS-like defaults for the given heap size.
func DefaultConfig(h1Size int64) Config {
	return Config{
		H1Size:           h1Size,
		YoungFraction:    1.0 / 3.0,
		SurvivorFraction: 0.1,
		TenureAge:        3,
		CardSize:         512,
	}
}

// H1 is the regular DRAM-backed heap.
type H1 struct {
	Cfg  Config
	Eden *vm.Space
	From *vm.Space
	To   *vm.Space
	Old  *vm.Space

	// Cards covers the old generation, tracking old-to-young references.
	Cards *CardTable

	ram *vm.RAM
}

// New lays H1 out at vm.H1Base backed by DRAM and maps it into as.
func New(cfg Config, as *vm.AddressSpace) *H1 {
	h := NewUnmapped(cfg)
	h.ram = vm.NewRAM(vm.H1Base, h.Cfg.H1Size)
	as.Map(vm.H1Base, vm.H1Base+vm.Addr(h.Cfg.H1Size), h.ram)
	return h
}

// NewUnmapped lays out the H1 spaces without binding memory; the caller
// maps [vm.H1Base, vm.H1Base+H1Size) itself. Used by the Spark-MO (NVM
// memory mode) and Panthera (hybrid DRAM+NVM old generation) baselines.
// It panics on an invalid configuration; validate first with
// Config.Validate where bad configs must not kill the process.
func NewUnmapped(cfg Config) *H1 {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	// Normalize the heap size to a 64-byte multiple so every space
	// boundary is word-aligned.
	cfg.H1Size &^= 63
	align := func(n int64) int64 { return n &^ (vm.WordSize*8 - 1) }
	youngSize := align(int64(float64(cfg.H1Size) * cfg.YoungFraction))
	survSize := align(int64(float64(youngSize) * cfg.SurvivorFraction))
	edenSize := youngSize - 2*survSize
	oldSize := cfg.H1Size - youngSize

	base := vm.H1Base
	h := &H1{Cfg: cfg}
	h.Eden = vm.NewSpace("eden", base, edenSize)
	h.From = vm.NewSpace("from", base+vm.Addr(edenSize), survSize)
	h.To = vm.NewSpace("to", base+vm.Addr(edenSize+survSize), survSize)
	h.Old = vm.NewSpace("old", base+vm.Addr(youngSize), oldSize)
	h.Cards = NewCardTable(h.Old.Start, h.Old.End, cfg.CardSize)
	return h
}

// Contains reports whether a falls anywhere in H1.
func (h *H1) Contains(a vm.Addr) bool {
	return a >= h.Eden.Start && a < h.Old.End
}

// InYoung reports whether a is in the young generation (eden or survivors).
func (h *H1) InYoung(a vm.Addr) bool {
	return a >= h.Eden.Start && a < h.Old.Start
}

// InOld reports whether a is in the old generation.
func (h *H1) InOld(a vm.Addr) bool { return h.Old.Contains(a) }

// SwapSurvivors exchanges the from and to survivor spaces after a scavenge.
func (h *H1) SwapSurvivors() { h.From, h.To = h.To, h.From }

// YoungUsed returns bytes allocated in the young generation.
func (h *H1) YoungUsed() int64 { return h.Eden.Used() + h.From.Used() }

// Used returns bytes allocated across the whole heap.
func (h *H1) Used() int64 { return h.YoungUsed() + h.Old.Used() }

// OldOccupancy returns the old generation fill fraction in [0,1].
func (h *H1) OldOccupancy() float64 {
	c := h.Old.Capacity()
	if c == 0 {
		return 0
	}
	return float64(h.Old.Used()) / float64(c)
}
