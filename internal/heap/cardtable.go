package heap

import "github.com/carv-repro/teraheap-go/internal/vm"

// Card states for the H1 card table. H1 needs only clean/dirty; the richer
// four-state encoding lives in TeraHeap's H2 card table (internal/core).
const (
	CardClean byte = iota
	CardDirty
)

// CardTable maps a contiguous address range to byte-sized card entries,
// one per CardSize-byte segment. The mutator's post-write barrier dirties
// the card covering an updated old-generation object; minor GC scans dirty
// cards to find old-to-young references.
type CardTable struct {
	Start    vm.Addr
	End      vm.Addr
	CardSize int
	cards    []byte
}

// NewCardTable covers [start, end) with cards of cardSize bytes.
func NewCardTable(start, end vm.Addr, cardSize int) *CardTable {
	if cardSize <= 0 {
		panic("heap: non-positive card size")
	}
	n := (int64(end-start) + int64(cardSize) - 1) / int64(cardSize)
	return &CardTable{Start: start, End: end, CardSize: cardSize, cards: make([]byte, n)}
}

// Covers reports whether a falls inside the table's range.
func (t *CardTable) Covers(a vm.Addr) bool { return a >= t.Start && a < t.End }

// Index returns the card index covering a.
func (t *CardTable) Index(a vm.Addr) int {
	return int(int64(a-t.Start) / int64(t.CardSize))
}

// NumCards returns the number of cards.
func (t *CardTable) NumCards() int { return len(t.cards) }

// Get returns the state of card i.
func (t *CardTable) Get(i int) byte { return t.cards[i] }

// Set writes the state of card i.
func (t *CardTable) Set(i int, v byte) { t.cards[i] = v }

// MarkDirty dirties the card covering a. Addresses outside the range are
// ignored (young-generation stores need no card).
func (t *CardTable) MarkDirty(a vm.Addr) {
	if !t.Covers(a) {
		return
	}
	t.cards[t.Index(a)] = CardDirty
}

// CardBounds returns the address range [lo, hi) covered by card i.
func (t *CardTable) CardBounds(i int) (lo, hi vm.Addr) {
	lo = t.Start + vm.Addr(i*t.CardSize)
	hi = lo + vm.Addr(t.CardSize)
	if hi > t.End {
		hi = t.End
	}
	return lo, hi
}

// ForEach visits every card index whose state matches pred.
func (t *CardTable) ForEach(pred func(state byte) bool, fn func(i int)) {
	for i, s := range t.cards {
		if pred(s) {
			fn(i)
		}
	}
}

// CountDirty returns the number of dirty cards.
func (t *CardTable) CountDirty() int {
	n := 0
	for _, s := range t.cards {
		if s == CardDirty {
			n++
		}
	}
	return n
}

// ClearAll resets every card to clean.
func (t *CardTable) ClearAll() {
	for i := range t.cards {
		t.cards[i] = CardClean
	}
}
