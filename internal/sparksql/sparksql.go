// Package sparksql implements the paper's RDD-RL workload (Table 3): a
// relational query mix — scans, filters, and hash aggregations — over a
// cached row RDD. Hash aggregation materializes sizable temporary state,
// the allocation behaviour that makes RL OOM-prone under G1's humongous
// fragmentation (§7.1).
package sparksql

import (
	"time"

	"github.com/carv-repro/teraheap-go/internal/spark"
	"github.com/carv-repro/teraheap-go/internal/vm"
	"github.com/carv-repro/teraheap-go/internal/workloads"
)

// rowWords is the heap footprint of one row (key, value, two payload
// columns).
const rowWords = 4

// Table couples a Go-side row set with its cached RDD.
type Table struct {
	Ctx   *spark.Context
	Data  *workloads.Rows
	Parts int
	RDD   *spark.RDD
}

func (t *Table) partRange(p int) (int, int) {
	per := (t.Data.N + t.Parts - 1) / t.Parts
	lo := p * per
	hi := lo + per
	if hi > t.Data.N {
		hi = t.Data.N
	}
	return lo, hi
}

// Load materializes and persists the row RDD. A partition is a ref array
// of per-row prim arrays — plus one large columnar batch buffer per
// partition, the humongous-object allocation pattern of Spark SQL.
func Load(ctx *spark.Context, data *workloads.Rows, parts int) *Table {
	t := &Table{Ctx: ctx, Data: data, Parts: parts}
	t.RDD = spark.NewRDD(ctx, parts, t.buildPartition).Persist()
	return t
}

func (t *Table) buildPartition(ctx *spark.Context, p int) (*vm.Handle, spark.PartStats, error) {
	lo, hi := t.partRange(p)
	n := hi - lo
	var st spark.PartStats
	root, err := ctx.RT.AllocRefArray(ctx.ClsPartition, n+1)
	if err != nil {
		return nil, st, err
	}
	h := ctx.RT.NewHandle(root)
	st.Objects = 1
	st.Words = int64(vm.HeaderWords + n + 1)

	// Columnar batch buffer: one large array per partition. These are the
	// long-lived humongous objects that fragment G1 (§7.1): each spans
	// multiple G1 regions and can never be moved.
	batch, err := ctx.RT.AllocPrimArray(ctx.ClsData, n*rowWords)
	if err != nil {
		ctx.RT.Release(h)
		return nil, st, err
	}
	ctx.RT.WriteRef(h.Addr(), 0, batch)
	st.Objects++
	st.Words += int64(vm.HeaderWords + n*rowWords)

	for i := 0; i < n; i++ {
		row, err := ctx.RT.AllocPrimArray(ctx.ClsData, rowWords)
		if err != nil {
			ctx.RT.Release(h)
			return nil, st, err
		}
		ctx.RT.WritePrim(row, 0, uint64(t.Data.Keys[lo+i]))
		ctx.RT.WritePrim(row, 1, uint64(t.Data.Vals[lo+i]))
		ctx.RT.WritePrim(row, 2, uint64(lo+i))
		ctx.RT.WritePrim(row, 3, uint64((lo+i)*31%997))
		ctx.RT.WriteRef(h.Addr(), 1+i, row)
		st.Objects++
		st.Words += int64(vm.HeaderWords + rowWords)
		st.Elements++
	}
	ctx.ChargeElements(int64(n * rowWords))
	return h, st, nil
}

// GroupBySum runs SELECT key, SUM(value) GROUP BY key and returns the
// aggregate map.
func (t *Table) GroupBySum() (map[int32]int64, error) {
	ctx := t.Ctx
	agg := make(map[int32]int64)
	err := t.RDD.ForEachPartition(func(p int, root vm.Addr) error {
		lo, hi := t.partRange(p)
		// Per-partition hash-aggregation buffer (temporary).
		if _, err := ctx.RT.AllocPrimArray(ctx.ClsData, (hi-lo)/2+8); err != nil {
			return err
		}
		for i := 0; i < hi-lo; i++ {
			row := ctx.RT.ReadRef(root, 1+i)
			k := int32(ctx.RT.ReadPrim(row, 0))
			v := int64(ctx.RT.ReadPrim(row, 1))
			agg[k] += v
		}
		ctx.ChargeElements(int64(hi - lo))
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := ctx.Shuffle(int64(len(agg) * 2 * t.Parts)); err != nil {
		return nil, err
	}
	return agg, nil
}

// FilterCount runs SELECT COUNT(*) WHERE value >= threshold.
func (t *Table) FilterCount(threshold int64) (int64, error) {
	ctx := t.Ctx
	var count int64
	err := t.RDD.ForEachPartition(func(p int, root vm.Addr) error {
		lo, hi := t.partRange(p)
		for i := 0; i < hi-lo; i++ {
			row := ctx.RT.ReadRef(root, 1+i)
			if int64(ctx.RT.ReadPrim(row, 1)) >= threshold {
				count++
			}
		}
		ctx.ChargeElements(int64(hi - lo))
		return nil
	})
	return count, err
}

// SelfJoinSample joins the table with itself on key over a sampled key
// range, materializing join hash tables as temporaries — the RL query
// with the heaviest intermediate state.
func (t *Table) SelfJoinSample(keyLimit int32) (int64, error) {
	ctx := t.Ctx
	// Build side: key -> count (only keys < keyLimit).
	build := make(map[int32]int64)
	err := t.RDD.ForEachPartition(func(p int, root vm.Addr) error {
		lo, hi := t.partRange(p)
		// Join hash-table temporaries.
		if _, err := ctx.RT.AllocPrimArray(ctx.ClsData, (hi-lo)+8); err != nil {
			return err
		}
		for i := 0; i < hi-lo; i++ {
			row := ctx.RT.ReadRef(root, 1+i)
			k := int32(ctx.RT.ReadPrim(row, 0))
			if k < keyLimit {
				build[k]++
			}
		}
		ctx.ChargeElements(int64(hi - lo))
		return nil
	})
	if err != nil {
		return 0, err
	}
	if err := ctx.Shuffle(int64(len(build)) * 2); err != nil {
		return 0, err
	}
	// Probe side.
	var matches int64
	err = t.RDD.ForEachPartition(func(p int, root vm.Addr) error {
		lo, hi := t.partRange(p)
		for i := 0; i < hi-lo; i++ {
			row := ctx.RT.ReadRef(root, 1+i)
			k := int32(ctx.RT.ReadPrim(row, 0))
			if c, ok := build[k]; ok {
				matches += c
			}
		}
		ctx.ChargeElements(int64(hi - lo))
		return nil
	})
	ctx.ChargeCompute(time.Duration(matches/16) * time.Nanosecond)
	return matches, err
}

// RunQueryMix runs the RL workload: rounds of the three queries.
func (t *Table) RunQueryMix(rounds int) (int64, error) {
	var checksum int64
	for i := 0; i < rounds; i++ {
		agg, err := t.GroupBySum()
		if err != nil {
			return 0, err
		}
		for k, v := range agg {
			checksum += int64(k) ^ v
		}
		c, err := t.FilterCount(500)
		if err != nil {
			return 0, err
		}
		checksum += c
		j, err := t.SelfJoinSample(64)
		if err != nil {
			return 0, err
		}
		checksum += j
	}
	return checksum, nil
}
