package sparksql_test

import (
	"testing"

	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/serde"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/spark"
	"github.com/carv-repro/teraheap-go/internal/sparksql"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/workloads"
)

func newTable(t *testing.T, n int) (*sparksql.Table, *workloads.Rows) {
	t.Helper()
	jvm := rt.NewJVM(rt.Options{H1Size: 16 * storage.MB}, nil, simclock.New())
	ctx := spark.NewContext(spark.Conf{
		RT: jvm, Mode: spark.ModeMO, Threads: 4, SerKind: serde.Kryo,
	})
	rows := workloads.GenRows(23, n, 64)
	return sparksql.Load(ctx, rows, 8), rows
}

func TestGroupBySumMatchesReference(t *testing.T) {
	tbl, rows := newTable(t, 5000)
	got, err := tbl.GroupBySum()
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[int32]int64)
	for i := 0; i < rows.N; i++ {
		want[rows.Keys[i]] += rows.Vals[i]
	}
	if len(got) != len(want) {
		t.Fatalf("groups: %d vs %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("group %d = %d, want %d", k, got[k], v)
		}
	}
}

func TestFilterCountMatchesReference(t *testing.T) {
	tbl, rows := newTable(t, 5000)
	got, err := tbl.FilterCount(500)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, v := range rows.Vals {
		if v >= 500 {
			want++
		}
	}
	if got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
}

func TestSelfJoinMatchesReference(t *testing.T) {
	tbl, rows := newTable(t, 3000)
	got, err := tbl.SelfJoinSample(16)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int32]int64)
	for _, k := range rows.Keys {
		if k < 16 {
			counts[k]++
		}
	}
	var want int64
	for _, k := range rows.Keys {
		want += counts[k]
	}
	if got != want {
		t.Fatalf("join matches = %d, want %d", got, want)
	}
}

func TestQueryMixDeterministic(t *testing.T) {
	t1, _ := newTable(t, 2000)
	c1, err := t1.RunQueryMix(3)
	if err != nil {
		t.Fatal(err)
	}
	t2, _ := newTable(t, 2000)
	c2, err := t2.RunQueryMix(3)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatalf("checksums differ: %d vs %d", c1, c2)
	}
}
