// Package serde models Java object serialization over the simulated heap
// (§2, "Object Serialization"). Serialization traverses the object graph
// from a root, charging CPU per word and allocating real temporary objects
// in the young generation — the two costs the paper identifies: traversal
// effort proportional to the transitive closure, and temporary objects
// that raise GC pressure.
//
// Two serializers are modelled: the JDK's ObjectOutputStream (Java) and
// Kryo, the optimized library Spark recommends (the paper's baseline).
package serde

import (
	"time"

	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// Kind selects a serializer implementation.
type Kind int

// Serializer implementations.
const (
	Java Kind = iota
	Kryo
)

// String names the serializer.
func (k Kind) String() string {
	if k == Java {
		return "java"
	}
	return "kryo"
}

// params per serializer kind.
type params struct {
	costPerWord time.Duration // CPU per serialized word
	tempRatio   float64       // temp-object bytes allocated per payload byte
	sizeRatio   float64       // serialized bytes per heap byte
	tempChunk   int           // temp buffer size in words
}

func paramsFor(k Kind) params {
	switch k {
	case Kryo:
		return params{costPerWord: 6 * time.Nanosecond, tempRatio: 0.35, sizeRatio: 0.7, tempChunk: 512}
	default: // Java
		return params{costPerWord: 14 * time.Nanosecond, tempRatio: 0.9, sizeRatio: 1.1, tempChunk: 512}
	}
}

// Serializer converts heap object graphs to and from byte streams.
type Serializer struct {
	rt   rt.Runtime
	kind Kind
	p    params
	buf  *vm.Class // temp byte-buffer class

	// Parallelism divides the CPU cost of S/D across executor threads
	// (Spark parallelizes S/D per partition; the paper measures up to 55%
	// S/D reduction from more threads, §7.6).
	Parallelism int

	// Stats.
	ObjectsSerialized   int64
	WordsSerialized     int64
	ObjectsDeserialized int64
	WordsDeserialized   int64
	TempBytesAllocated  int64
}

// New builds a serializer of the given kind over runtime r.
func New(r rt.Runtime, kind Kind) *Serializer {
	buf := r.Classes().ByName("serde.Buffer")
	if buf == nil {
		buf = r.Classes().MustPrimArray("serde.Buffer")
	}
	return &Serializer{rt: r, kind: kind, p: paramsFor(kind), buf: buf, Parallelism: 1}
}

// chargeCPU bills S/D CPU time divided across the parallel S/D threads.
func (s *Serializer) chargeCPU(words int64) {
	par := s.Parallelism
	if par < 1 {
		par = 1
	}
	s.rt.Clock().Charge(simclock.SerDesIO,
		time.Duration(words)*s.p.costPerWord/time.Duration(par))
}

// Kind returns the serializer kind.
func (s *Serializer) Kind() Kind { return s.kind }

// Measure walks the transitive closure of root, returning object and word
// counts without charging serialization cost (used to size blobs).
func (s *Serializer) Measure(root vm.Addr) (objects, words int64) {
	m := s.rt.Mem()
	visited := make(map[vm.Addr]bool)
	stack := []vm.Addr{root}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if a.IsNull() || visited[a] {
			continue
		}
		visited[a] = true
		objects++
		words += int64(m.SizeWords(a))
		n := m.NumRefs(a)
		for i := 0; i < n; i++ {
			if t := m.RefAt(a, i); !t.IsNull() && !visited[t] {
				stack = append(stack, t)
			}
		}
	}
	return objects, words
}

// Serialize converts the object graph under root into a byte stream,
// charging traversal CPU to S/D and allocating temporary buffers on the
// heap. It returns the serialized size in bytes.
func (s *Serializer) Serialize(root vm.Addr) (int64, error) {
	objects, words := s.Measure(root)
	s.ObjectsSerialized += objects
	s.WordsSerialized += words
	s.chargeCPU(words)
	if err := s.allocTemps(words); err != nil {
		return 0, err
	}
	return int64(float64(words*vm.WordSize) * s.p.sizeRatio), nil
}

// ChargeSerializeStream bills serialization of a stream of the given word
// count without a graph traversal (shuffle writes of freshly produced
// records).
func (s *Serializer) ChargeSerializeStream(words int64) error {
	s.WordsSerialized += words
	s.chargeCPU(words)
	return s.allocTemps(words)
}

// ChargeDeserialize bills the CPU and temp-object cost of reconstructing
// a graph of the given word count. The caller performs the actual object
// reconstruction (allocations) itself.
func (s *Serializer) ChargeDeserialize(objects, words int64) error {
	s.ObjectsDeserialized += objects
	s.WordsDeserialized += words
	s.chargeCPU(words)
	return s.allocTemps(words)
}

// allocTemps allocates (and immediately abandons) temporary buffer
// objects proportional to the payload — the serializer's real pressure on
// the young generation.
func (s *Serializer) allocTemps(payloadWords int64) error {
	tempWords := int64(float64(payloadWords) * s.p.tempRatio)
	for tempWords > 0 {
		chunk := int64(s.p.tempChunk)
		if chunk > tempWords {
			chunk = tempWords
		}
		if _, err := s.rt.AllocPrimArray(s.buf, int(chunk)); err != nil {
			return err
		}
		s.TempBytesAllocated += chunk * vm.WordSize
		tempWords -= chunk
	}
	return nil
}
