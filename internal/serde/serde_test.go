package serde_test

import (
	"testing"

	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/serde"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

func setup(t *testing.T) (*rt.JVM, *vm.Class, *vm.Class) {
	t.Helper()
	classes := vm.NewClassTable()
	node := classes.MustFixed("Node", 2, 1)
	arr := classes.MustRefArray("Object[]")
	jvm := rt.NewJVM(rt.Options{H1Size: 4 * storage.MB}, classes, simclock.New())
	return jvm, node, arr
}

// buildGraph makes a root array of n nodes, with some shared structure.
func buildGraph(t *testing.T, jvm *rt.JVM, arr, node *vm.Class, n int) *vm.Handle {
	t.Helper()
	root, err := jvm.AllocRefArray(arr, n)
	if err != nil {
		t.Fatal(err)
	}
	h := jvm.NewHandle(root)
	shared, err := jvm.Alloc(node)
	if err != nil {
		t.Fatal(err)
	}
	sh := jvm.NewHandle(shared)
	for i := 0; i < n; i++ {
		a, err := jvm.Alloc(node)
		if err != nil {
			t.Fatal(err)
		}
		jvm.WriteRef(a, 0, sh.Addr())
		jvm.WriteRef(h.Addr(), i, a)
	}
	jvm.Release(sh)
	return h
}

func TestMeasureCountsClosureOnce(t *testing.T) {
	jvm, node, arr := setup(t)
	s := serde.New(jvm, serde.Kryo)
	h := buildGraph(t, jvm, arr, node, 10)
	objects, words := s.Measure(h.Addr())
	// root + 10 nodes + 1 shared node (counted once despite 10 refs).
	if objects != 12 {
		t.Fatalf("objects = %d, want 12", objects)
	}
	wantWords := int64(vm.HeaderWords+10) + 11*int64(vm.HeaderWords+3)
	if words != wantWords {
		t.Fatalf("words = %d, want %d", words, wantWords)
	}
}

func TestSerializeChargesSDTime(t *testing.T) {
	jvm, node, arr := setup(t)
	s := serde.New(jvm, serde.Kryo)
	h := buildGraph(t, jvm, arr, node, 100)
	before := jvm.Breakdown().Get(simclock.SerDesIO)
	size, err := s.Serialize(h.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 {
		t.Fatal("zero serialized size")
	}
	if jvm.Breakdown().Get(simclock.SerDesIO) <= before {
		t.Fatal("no S/D time charged")
	}
	if s.TempBytesAllocated <= 0 {
		t.Fatal("no temp objects allocated")
	}
}

func TestJavaCostsMoreThanKryo(t *testing.T) {
	run := func(kind serde.Kind) int64 {
		jvm, node, arr := setup(t)
		s := serde.New(jvm, kind)
		h := buildGraph(t, jvm, arr, node, 200)
		if _, err := s.Serialize(h.Addr()); err != nil {
			t.Fatal(err)
		}
		return int64(jvm.Breakdown().Get(simclock.SerDesIO))
	}
	if java, kryo := run(serde.Java), run(serde.Kryo); java <= kryo {
		t.Fatalf("java (%d) not more expensive than kryo (%d)", java, kryo)
	}
}

func TestParallelismReducesCPU(t *testing.T) {
	run := func(par int) int64 {
		jvm, node, arr := setup(t)
		s := serde.New(jvm, serde.Kryo)
		s.Parallelism = par
		h := buildGraph(t, jvm, arr, node, 200)
		if _, err := s.Serialize(h.Addr()); err != nil {
			t.Fatal(err)
		}
		return int64(jvm.Breakdown().Get(simclock.SerDesIO))
	}
	if one, eight := run(1), run(8); eight >= one {
		t.Fatalf("8 threads (%d) not cheaper than 1 (%d)", eight, one)
	}
}

func TestDeserializeChargesAndAllocates(t *testing.T) {
	jvm, _, _ := setup(t)
	s := serde.New(jvm, serde.Kryo)
	alloc0 := jvm.GCStats().ObjectsAllocated
	if err := s.ChargeDeserialize(50, 5000); err != nil {
		t.Fatal(err)
	}
	if jvm.GCStats().ObjectsAllocated <= alloc0 {
		t.Fatal("deserialization allocated no temps")
	}
	if s.WordsDeserialized != 5000 {
		t.Fatalf("words = %d", s.WordsDeserialized)
	}
}
