// Package recovery is the self-healing layer over TeraHeap's H2: it turns
// latched persistent device failures from run-terminating events into
// survivable ones. Three mechanisms compose:
//
//   - Region quarantine + salvage. When a region's backing blocks fail
//     (fault.RegionFailure), the Manager — registered as a gc.Hooks layer —
//     wakes inside OnFault at a collector safepoint, re-materializes the
//     region's objects back into H1 through the §4 fallback direction,
//     repairs every reference holder (handle roots, H1 fields, H2 fields,
//     cards, dependency edges), retires the region permanently, and
//     absorbs the fault so the run continues. Objects the device lost
//     (checksum-excluded spans) are tombstoned and accounted, never
//     silently dropped or returned as wrong answers.
//
//   - H2 circuit breaker. Each salvage is a strike; K strikes inside a
//     failure window trip the breaker to Open, holding H2 closed: every
//     PrepareMove routes to the H1 path. After a cooldown the breaker
//     half-opens and probes the device. Windows, cooldowns, and probes are
//     priced through the injector's op counter — no wall clock — so the
//     breaker's trajectory is a pure function of the run.
//
//   - Checksum scrubbing. AfterGC, the Manager asks core to recompute a
//     few region checksums against their device images; a mismatch (a
//     write the device acked but dropped) becomes a quarantine instead of
//     a latent wrong answer.
//
// The layer is inert by construction on fault-free runs: the breaker's
// Closed fast path does no work, OnFault never fires, and the scrub uses
// the costless peek path — a run with recovery installed and no faults is
// byte-identical to one without.
package recovery

import (
	"fmt"
	"time"

	"github.com/carv-repro/teraheap-go/internal/check"
	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/fault"
	"github.com/carv-repro/teraheap-go/internal/gc"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// State is the circuit breaker's position.
type State int

// Breaker states: Closed admits promotions to H2, Open routes everything
// to H1, HalfOpen is the transient probing position between them.
const (
	Closed State = iota
	Open
	HalfOpen
)

// String names the state.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Policy configures the recovery layer. The zero value is disabled; use
// DefaultPolicy for the standard enabled configuration (what rt.NewSession
// installs when rt.Spec.Recovery is nil).
type Policy struct {
	// Enabled turns the layer on. Disabled preserves the pre-recovery
	// behavior: persistent failures latch and the run ends Faulted.
	Enabled bool

	// BreakerK strikes inside WindowOps trip the breaker (default 3).
	BreakerK int

	// WindowOps is the failure window, in injector decisions
	// (default 200000).
	WindowOps int64

	// CooldownOps is how many injector decisions the breaker stays Open
	// before a half-open probe (default 50000).
	CooldownOps int64

	// ScrubRegionsPerGC bounds the opportunistic checksum scrub per pause
	// (default 1; 0 disables scrubbing).
	ScrubRegionsPerGC int

	// ValidateRepair runs the full invariant verifier after every salvage
	// (default true), panicking with a structured report if the repair
	// left the heap inconsistent.
	ValidateRepair bool
}

// DefaultPolicy returns the enabled default configuration.
func DefaultPolicy() Policy {
	return Policy{
		Enabled:           true,
		BreakerK:          3,
		WindowOps:         200000,
		CooldownOps:       50000,
		ScrubRegionsPerGC: 1,
		ValidateRepair:    true,
	}
}

func (p *Policy) applyDefaults() {
	if p.BreakerK <= 0 {
		p.BreakerK = 3
	}
	if p.WindowOps <= 0 {
		p.WindowOps = 200000
	}
	if p.CooldownOps <= 0 {
		p.CooldownOps = 50000
	}
}

// Stats counts the recovery layer's activity for one run.
type Stats struct {
	RecoveredFaults    int64 // latched faults absorbed (run continued)
	RegionsQuarantined int64 // regions salvaged and retired
	SalvagedObjects    int64
	SalvagedBytes      int64
	TombstonedObjects  int64 // unreadable objects nulled out, never dropped silently
	TombstonedBytes    int64
	RewrittenH2Refs    int64 // H2-held fields repointed during salvage
	CorruptDetected    int64 // scrub-detected checksum mismatches
	RegionsScrubbed    int64
	Strikes            int64
	BreakerTrips       int64 // Closed→Open transitions
	BreakerCloses      int64 // probe-success re-admissions
	Probes             int64
	ProbeFailures      int64
	BreakerRejects     int64         // PrepareMoves routed to H1 while not Closed
	H1OnlyTime         time.Duration // simulated time spent with H2 closed
	State              State         // breaker position at snapshot time
}

// Active reports whether the layer did any recovery work (as opposed to
// sitting installed and idle on a healthy run).
func (s Stats) Active() bool {
	return s.RecoveredFaults > 0 || s.RegionsQuarantined > 0 ||
		s.CorruptDetected > 0 || s.BreakerTrips > 0
}

// String summarizes the recovery activity in one compact line.
func (s Stats) String() string {
	return fmt.Sprintf("quarantined=%d salvaged=%d/%dB tombstoned=%d/%dB scrubhits=%d trips=%d closes=%d h1only=%v breaker=%s",
		s.RegionsQuarantined, s.SalvagedObjects, s.SalvagedBytes,
		s.TombstonedObjects, s.TombstonedBytes, s.CorruptDetected,
		s.BreakerTrips, s.BreakerCloses, s.H1OnlyTime, s.State)
}

// Manager is the recovery layer for one run: a gc.Hook whose OnFault
// performs quarantine-and-salvage and whose AfterGC drives the scrubber
// and the breaker's half-open probes. One Manager per session; like the
// collector it serves, it is not safe for concurrent use.
type Manager struct {
	gc.BaseHook
	pol   Policy
	col   *gc.Collector
	th    *core.TeraHeap
	inj   *fault.Injector
	clock *simclock.Clock

	state     State
	openedOps int64         // injector op count at the Closed→Open trip
	openedAt  time.Duration // simulated time at the Closed→Open trip
	strikes   []int64       // op indices of recent strikes (window pruned)

	inRecovery bool // reentrancy guard: salvage can reach pollFault paths

	stats Stats
}

// NewManager builds the layer over one collector/TeraHeap pair. The
// injector may be nil (fault-free run: the layer stays idle; probes
// trivially succeed). Call Install to wire it in.
func NewManager(pol Policy, col *gc.Collector, th *core.TeraHeap, inj *fault.Injector, clock *simclock.Clock) *Manager {
	pol.applyDefaults()
	return &Manager{pol: pol, col: col, th: th, inj: inj, clock: clock}
}

// Install registers the Manager on the collector's hook plane — after the
// verifier, so the verifier observes the faulted heap before any repair —
// and installs the breaker's PrepareMove admission gate.
func (m *Manager) Install() {
	m.col.Hooks().Register(m)
	m.th.SetAdmission(m.admit)
}

// Uninstall removes the hook and the admission gate, restoring the
// pre-recovery behavior (subsequent faults latch for good).
func (m *Manager) Uninstall() {
	m.col.Hooks().Remove(m)
	m.th.SetAdmission(nil)
}

// State returns the breaker's position.
func (m *Manager) State() State { return m.state }

// Stats returns a snapshot of the recovery counters. An in-progress
// H1-only span is included in H1OnlyTime up to the snapshot instant.
func (m *Manager) Stats() Stats {
	s := m.stats
	s.State = m.state
	if m.state != Closed {
		s.H1OnlyTime += m.clock.Now() - m.openedAt
	}
	return s
}

// OnFault fires when the collector latches a FaultError at a safepoint:
// promotion buffers are flushed and the heap is parse-consistent, so this
// is the one place a repair is sound. If every failed region salvages
// cleanly the fault is absorbed and the run continues; otherwise (H1 lacks
// the capacity to take the survivors) the fault stays latched and the run
// ends Faulted, exactly as before this layer existed.
func (m *Manager) OnFault(err error) {
	fe, ok := err.(*gc.FaultError)
	if !ok || m.inRecovery {
		return
	}
	m.inRecovery = true
	defer func() { m.inRecovery = false }()
	m.recover(fe)
}

func (m *Manager) recover(_ *gc.FaultError) {
	recovered := true
	// Salvage every failed region, not just the one the latch names: the
	// latch is a wake-up signal, and several regions can fail inside one
	// GC cycle.
	for _, id := range m.th.FailedRegions() {
		if m.salvageRegion(id) {
			m.strike()
		} else {
			recovered = false
		}
	}
	if !recovered {
		return // leave the fault latched: honest degradation
	}
	m.inj.ClearRegionFault()
	if m.inj.Failure() != nil {
		// Whole-device persistent failure (a read/write exhausted its
		// retry budget somewhere we cannot isolate to a region). There is
		// nothing to salvage — the data is intact — but continuing to
		// drive a device in this state is what the breaker exists to stop:
		// strike it, unlatch, and let the breaker route traffic to H1.
		m.strike()
		m.inj.ClearFailure()
	}
	m.stats.RecoveredFaults++
	m.col.AbsorbFault()
}

// salvageRegion re-materializes region id's objects into H1's old
// generation and retires the region. Returns false — leaving the region
// failed and the fault latched — when H1 cannot hold the survivors.
func (m *Manager) salvageRegion(id int) bool {
	objs := m.th.SalvageObjects(id)

	// Capacity pre-check: salvage runs at a safepoint where triggering a
	// nested GC would be unsound, so the survivors must fit as-is.
	var needWords int64
	for _, o := range objs {
		if !o.Unreadable {
			needWords += int64(o.SizeWords)
		}
	}
	if m.col.H1.Old.Free() < needWords*vm.WordSize {
		return false
	}

	// Pass 1: copy survivors out (charged device reads through the normal
	// mapped path), tombstone the unreadable.
	remap := make(map[vm.Addr]vm.Addr, len(objs))
	dsts := make([]vm.Addr, 0, len(objs))
	for _, o := range objs {
		if o.Unreadable {
			remap[o.Addr] = vm.NullAddr
			m.stats.TombstonedObjects++
			m.stats.TombstonedBytes += int64(o.SizeWords) * vm.WordSize
			continue
		}
		dst, ok := m.col.SalvageAllocOld(o.SizeWords)
		if !ok {
			// The pre-check passed but the space is fragmented short; undo
			// nothing (copied objects are plain old-gen allocations the
			// next major GC treats as garbage if unreferenced) and report
			// salvage failure.
			return false
		}
		m.col.Mem.CopyObject(dst, o.Addr, o.SizeWords)
		remap[o.Addr] = dst
		dsts = append(dsts, dst)
		m.stats.SalvagedObjects++
		m.stats.SalvagedBytes += int64(o.SizeWords) * vm.WordSize
	}

	lookup := func(a vm.Addr) (vm.Addr, bool) {
		nt, ok := remap[a]
		return nt, ok
	}

	// Pass 2: repair every reference holder. Handle roots first, then
	// every H1 space (Old's walk covers the fresh dsts too, fixing
	// intra-region references), then healthy H2 regions (which also drops
	// their dependency edges to the dead region).
	m.col.Roots.ForEach(func(h *vm.Handle) {
		if nt, ok := remap[h.Addr()]; ok {
			h.Set(nt)
		}
	})
	for _, sp := range []*vm.Space{m.col.H1.Eden, m.col.H1.From, m.col.H1.Old} {
		sp.Walk(m.col.Mem, func(a vm.Addr) {
			n := m.col.Mem.NumRefs(a)
			for i := 0; i < n; i++ {
				if nt, ok := remap[m.col.Mem.RefAt(a, i)]; ok {
					m.col.Mem.SetRefAt(a, i, nt)
				}
			}
		})
	}
	m.stats.RewrittenH2Refs += int64(m.th.RewriteH2Refs(id, lookup))

	// Pass 3: card states. A salvaged object that references young H1
	// objects now holds an old→young reference H2's card plane no longer
	// tracks; dirty its H1 card so the next minor scan finds it.
	for _, dst := range dsts {
		n := m.col.Mem.NumRefs(dst)
		for i := 0; i < n; i++ {
			if t := m.col.Mem.RefAt(dst, i); !t.IsNull() && m.col.H1.InYoung(t) {
				m.col.H1.Cards.MarkDirty(dst)
				break
			}
		}
	}

	m.th.RetireRegion(id)
	m.stats.RegionsQuarantined++

	if m.pol.ValidateRepair {
		if failures := m.col.VerifyNow(); len(failures) > 0 {
			panic(check.Report("after salvage", failures))
		}
	}
	return true
}

// strike records one persistent failure at the injector's current op
// index, prunes strikes outside the window, and trips the breaker when the
// threshold is met.
func (m *Manager) strike() {
	m.stats.Strikes++
	now := m.inj.Ops()
	kept := m.strikes[:0]
	for _, s := range m.strikes {
		if now-s <= m.pol.WindowOps {
			kept = append(kept, s)
		}
	}
	m.strikes = append(kept, now)
	if m.state == Closed && len(m.strikes) >= m.pol.BreakerK {
		m.state = Open
		m.openedOps = now
		m.openedAt = m.clock.Now()
		m.stats.BreakerTrips++
	}
}

// admit is the PrepareMove admission gate. Closed admits (the fault-free
// fast path: two loads, no decisions). Open rejects until the cooldown —
// measured in injector decisions — elapses, then half-opens and probes.
func (m *Manager) admit() bool {
	if m.state == Closed {
		return true
	}
	if m.inj.Ops()-m.openedOps < m.pol.CooldownOps {
		m.stats.BreakerRejects++
		return false
	}
	if m.probe() {
		return true
	}
	m.stats.BreakerRejects++
	return false
}

// probe runs one half-open probe: on success the breaker closes (H2
// re-admitted, the H1-only span accounted); on failure it re-opens with a
// fresh cooldown, keeping the original openedAt so H1OnlyTime spans the
// whole outage.
func (m *Manager) probe() bool {
	m.state = HalfOpen
	m.stats.Probes++
	if m.inj.Probe() {
		m.state = Closed
		m.stats.BreakerCloses++
		m.stats.H1OnlyTime += m.clock.Now() - m.openedAt
		m.strikes = m.strikes[:0]
		return true
	}
	m.stats.ProbeFailures++
	m.state = Open
	m.openedOps = m.inj.Ops()
	return false
}

// AfterGC drives the opportunistic scrubber, salvages any failed region
// still awaiting quarantine, and gives an Open breaker a chance to probe
// even when no promotion traffic is arriving (an H1-only workload would
// otherwise never re-admit H2). It fires at the same safepoints pollFault
// does — promotion buffers flushed, heap parse-consistent.
func (m *Manager) AfterGC(gc.Phase) {
	if m.inRecovery {
		return
	}
	if n := m.pol.ScrubRegionsPerGC; n > 0 {
		corrupt, scanned := m.th.ScrubStep(n)
		m.stats.RegionsScrubbed += int64(scanned)
		m.stats.CorruptDetected += int64(len(corrupt))
	}
	// Salvage every failed region not yet retired: fresh scrub hits, and
	// regions an earlier pass could not place (retried now that this GC
	// may have freed H1 space). A region that still cannot salvage stays
	// failed — exempt from reclamation, never silently dropped.
	for _, id := range m.th.FailedRegions() {
		m.inRecovery = true
		ok := m.salvageRegion(id)
		m.inRecovery = false
		if ok {
			m.strike()
		}
	}
	if m.state == Open && m.inj.Ops()-m.openedOps >= m.pol.CooldownOps {
		m.probe()
	}
}
