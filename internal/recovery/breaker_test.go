package recovery

import (
	"testing"

	"github.com/carv-repro/teraheap-go/internal/fault"
	"github.com/carv-repro/teraheap-go/internal/simclock"
)

// breakerManager builds a Manager exercising only the breaker state
// machine (no collector/heap: strike, admit, and probe never touch them).
func breakerManager(pol Policy, plan *fault.Plan) *Manager {
	return NewManager(pol, nil, nil, fault.NewInjector(plan), simclock.New())
}

// advance consumes n injector decisions without injecting anything. The
// test plans carry a zero-length brown-out window (BrownoutEvery=1,
// BrownoutLen=0), which makes every DeviceOp consume exactly one decision
// while degrading none.
func advance(in *fault.Injector, n int) {
	for i := 0; i < n; i++ {
		in.DeviceOp(false, 0)
	}
}

// tickingPlan returns a plan whose only effect is that DeviceOp consumes
// decisions (see advance), plus any extra rates set by the caller.
func tickingPlan(regionFail float64) *fault.Plan {
	return &fault.Plan{Seed: 1, BrownoutEvery: 1, BrownoutLen: 0, BrownoutFactor: 1, RegionFailRate: regionFail}
}

func TestBreakerTripsAtK(t *testing.T) {
	m := breakerManager(Policy{Enabled: true, BreakerK: 3}, &fault.Plan{Seed: 1})
	for i := 0; i < 2; i++ {
		m.strike()
		if m.State() != Closed {
			t.Fatalf("state = %v after %d strikes, want closed", m.State(), i+1)
		}
		if !m.admit() {
			t.Fatalf("admit = false while closed")
		}
	}
	m.strike()
	if m.State() != Open {
		t.Fatalf("state = %v after 3 strikes, want open", m.State())
	}
	if got := m.Stats().BreakerTrips; got != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", got)
	}
	if m.admit() {
		t.Fatal("admit = true immediately after trip: cooldown not enforced")
	}
	if got := m.Stats().BreakerRejects; got != 1 {
		t.Fatalf("BreakerRejects = %d, want 1", got)
	}
}

func TestBreakerProbeClosesAfterCooldown(t *testing.T) {
	// No error rates: probes always succeed once the cooldown elapses.
	m := breakerManager(Policy{Enabled: true, BreakerK: 1, CooldownOps: 10}, tickingPlan(0))
	m.strike()
	if m.State() != Open {
		t.Fatalf("state = %v, want open", m.State())
	}
	if m.admit() {
		t.Fatal("admit = true before cooldown elapsed")
	}
	advance(m.inj, 10)
	if !m.admit() {
		t.Fatal("admit = false after cooldown: probe should have closed the breaker")
	}
	s := m.Stats()
	if m.State() != Closed || s.BreakerCloses != 1 || s.Probes != 1 {
		t.Fatalf("after successful probe: state=%v closes=%d probes=%d, want closed/1/1", m.State(), s.BreakerCloses, s.Probes)
	}
	if len(m.strikes) != 0 {
		t.Fatalf("strikes not cleared on close: %v", m.strikes)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	// region-fail=1 makes every probe fail: the breaker must re-open with a
	// fresh cooldown each time and never close.
	m := breakerManager(Policy{Enabled: true, BreakerK: 1, CooldownOps: 5}, tickingPlan(1))
	m.strike()
	for round := 0; round < 3; round++ {
		advance(m.inj, 5)
		if m.admit() {
			t.Fatalf("round %d: admit = true under a dead device", round)
		}
		if m.State() != Open {
			t.Fatalf("round %d: state = %v after failed probe, want open", round, m.State())
		}
	}
	s := m.Stats()
	if s.Probes != 3 || s.ProbeFailures != 3 || s.BreakerCloses != 0 {
		t.Fatalf("probes=%d failures=%d closes=%d, want 3/3/0", s.Probes, s.ProbeFailures, s.BreakerCloses)
	}
}

func TestBreakerWindowPrunesStrikes(t *testing.T) {
	m := breakerManager(Policy{Enabled: true, BreakerK: 2, WindowOps: 10}, tickingPlan(0))
	m.strike()
	advance(m.inj, 20) // first strike ages out of the window
	m.strike()
	if m.State() != Closed {
		t.Fatalf("state = %v: stale strike counted toward the trip threshold", m.State())
	}
	m.strike() // two strikes inside one window now
	if m.State() != Open {
		t.Fatalf("state = %v after two in-window strikes, want open", m.State())
	}
}

func TestBreakerH1OnlySpanAccounting(t *testing.T) {
	clock := simclock.New()
	m := NewManager(Policy{Enabled: true, BreakerK: 1, CooldownOps: 1},
		nil, nil, fault.NewInjector(tickingPlan(0)), clock)
	m.strike()
	clock.ChargeAmbient(100) // 100ns of simulated H1-only time
	if got := m.Stats().H1OnlyTime; got != 100 {
		t.Fatalf("open-span H1OnlyTime = %v, want 100ns (live span included in snapshots)", got)
	}
	advance(m.inj, 1)
	if !m.admit() {
		t.Fatal("probe should close the breaker")
	}
	if got := m.Stats().H1OnlyTime; got != 100 {
		t.Fatalf("closed H1OnlyTime = %v, want 100ns", got)
	}
	clock.ChargeAmbient(50)
	if got := m.Stats().H1OnlyTime; got != 100 {
		t.Fatalf("H1OnlyTime grew while closed: %v", got)
	}
}
