package recovery_test

import (
	"errors"
	"testing"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/fault"
	"github.com/carv-repro/teraheap-go/internal/gc"
	"github.com/carv-repro/teraheap-go/internal/recovery"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// salvageEnv builds a verified TH session under the given plan with a
// tagged+advised closure: one root ref-array holding count 1024-word prim
// arrays, each stamped with a distinctive pattern so post-salvage reads
// can prove the data survived the device failure.
func salvageEnv(t *testing.T, plan *fault.Plan, count int) (*rt.Session, *rt.JVM, *vm.Handle, []*vm.Handle) {
	t.Helper()
	classes := vm.NewClassTable()
	classes.MustRefArray("root[]")
	classes.MustPrimArray("big[]")
	cfg := core.DefaultConfig(64 * storage.MB)
	cfg.RegionSize = 32 * storage.KB
	ses := rt.NewSession(rt.Spec{
		Kind: rt.KindTH, H1Size: 4 * storage.MB, TH: &cfg,
		Classes: classes, Verify: true, FaultPlan: plan,
	})
	jvm := ses.Runtime.(*rt.JVM)

	root, err := jvm.AllocRefArray(classes.ByName("root[]"), count)
	if err != nil {
		t.Fatal(err)
	}
	h := jvm.NewHandle(root)
	const label = 7
	jvm.TagRoot(h, label)
	var members []*vm.Handle
	for i := 0; i < count; i++ {
		b, err := jvm.AllocPrimArray(classes.ByName("big[]"), 1024) // 8 KB each
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 8; j++ {
			jvm.WritePrim(b, j, stamp(i, j))
		}
		jvm.WriteRef(h.Addr(), i, b)
		members = append(members, jvm.NewHandle(b))
	}
	jvm.MoveHint(label)
	return ses, jvm, h, members
}

func stamp(i, j int) uint64 { return uint64(i)*1_000_003 + uint64(j) + 1 }

// TestRegionFailureSalvagesClosure is the tentpole end-to-end claim: with
// every region flush failing persistently (region-fail=1), a verified
// major GC must complete, the whole closure must be re-materialized in H1
// with its contents intact, every failed region must be quarantined, the
// latched fault must be absorbed, and the breaker must trip to H1-only.
func TestRegionFailureSalvagesClosure(t *testing.T) {
	ses, jvm, h, members := salvageEnv(t, &fault.Plan{Seed: 7, RegionFailRate: 1}, 16)
	th := ses.TH

	if err := jvm.FullGC(); err != nil {
		t.Fatalf("FullGC under region-fail=1: %v", err)
	}
	if f := ses.Fault(); f != nil {
		t.Fatalf("fault still latched after recovery: %v", f)
	}
	if jvm.InSecondHeap(h.Addr()) {
		t.Error("root left in a failed H2 region")
	}
	for i, m := range members {
		if jvm.InSecondHeap(m.Addr()) {
			t.Errorf("member %d left in a failed H2 region", i)
		}
		for j := 0; j < 8; j++ {
			if got := jvm.ReadPrim(m.Addr(), j); got != stamp(i, j) {
				t.Fatalf("member %d word %d = %d after salvage, want %d", i, j, got, stamp(i, j))
			}
		}
	}
	if used := th.UsedBytes(); used != 0 {
		t.Errorf("H2 used %d bytes after quarantining every region, want 0", used)
	}

	rs := ses.RecoveryStats()
	if rs == nil {
		t.Fatal("RecoveryStats = nil on a KindTH session")
	}
	if rs.RegionsQuarantined == 0 || rs.SalvagedObjects == 0 || rs.RecoveredFaults == 0 {
		t.Errorf("recovery did not engage: %s", rs)
	}
	if rs.TombstonedObjects != 0 {
		t.Errorf("tombstoned %d objects under a fail-after-write model, want 0 (data stays readable)", rs.TombstonedObjects)
	}
	if ths := th.Stats(); ths.RegionsFailed == 0 || ths.RegionsQuarantined != ths.RegionsFailed {
		t.Errorf("core counters: failed=%d quarantined=%d, want equal and nonzero", ths.RegionsFailed, ths.RegionsQuarantined)
	}

	// The closure spans >= 4 regions at 32 KB, so >= 4 strikes landed:
	// the breaker must have tripped, and a second verified GC must keep
	// the closure in H1 (probes cannot succeed at region-fail=1).
	if rs.BreakerTrips == 0 {
		t.Errorf("breaker did not trip after %d strikes: %s", rs.Strikes, rs)
	}
	if err := jvm.FullGC(); err != nil {
		t.Fatalf("second FullGC in H1-only mode: %v", err)
	}
	if jvm.InSecondHeap(h.Addr()) {
		t.Error("root promoted to H2 while the breaker is open")
	}
	if used := th.UsedBytes(); used != 0 {
		t.Errorf("H2 used %d bytes in H1-only mode, want 0", used)
	}
	if ses.RecoveryStats().BreakerRejects == 0 {
		t.Error("no PrepareMove was rejected while open: the admission gate is not wired")
	}
}

// TestCorruptImageScrubAndTombstone drives silent flush corruption
// (corrupt=1): the scrubber must detect the checksum mismatch, quarantine
// the region, salvage the readable objects, and tombstone — not silently
// drop, not return as wrong data — the objects whose image the device
// lost. The run must stay verifier-clean throughout.
func TestCorruptImageScrubAndTombstone(t *testing.T) {
	ses, jvm, _, _ := salvageEnv(t, &fault.Plan{Seed: 3, CorruptRate: 1}, 16)
	th := ses.TH

	// The scrub visits one region per GC; loop enough pauses to cover every
	// region the first GC created (plus re-promotions until the breaker
	// trips).
	for i := 0; i < 12; i++ {
		if err := jvm.FullGC(); err != nil {
			t.Fatalf("FullGC %d under corrupt=1: %v", i, err)
		}
	}
	if f := ses.Fault(); f != nil {
		t.Fatalf("fault latched: %v", f)
	}
	rs := ses.RecoveryStats()
	if rs.CorruptDetected == 0 {
		t.Fatalf("scrubber never detected the corrupted images: %s (scrubbed=%d)", rs, rs.RegionsScrubbed)
	}
	if rs.TombstonedObjects == 0 {
		t.Errorf("no unreadable object was tombstoned under corrupt=1: %s", rs)
	}
	if ths := th.Stats(); ths.ScrubMismatches == 0 {
		t.Errorf("core ScrubMismatches = 0, want > 0")
	}
	if got := ses.Injector.Stats().CorruptImages; got == 0 {
		t.Error("injector CorruptImages = 0: corruption was never injected")
	}
}

// TestRecoveryDisabledPreservesLatch: with the policy opted out, a
// persistent region failure must latch and end the run Faulted — the
// pre-recovery behavior, byte-for-byte.
func TestRecoveryDisabledPreservesLatch(t *testing.T) {
	classes := vm.NewClassTable()
	classes.MustRefArray("root[]")
	classes.MustPrimArray("big[]")
	cfg := core.DefaultConfig(64 * storage.MB)
	cfg.RegionSize = 32 * storage.KB
	ses := rt.NewSession(rt.Spec{
		Kind: rt.KindTH, H1Size: 4 * storage.MB, TH: &cfg,
		Classes: classes, Verify: true,
		FaultPlan: &fault.Plan{Seed: 7, RegionFailRate: 1},
		Recovery:  &recovery.Policy{Enabled: false},
	})
	if ses.Recovery != nil || ses.RecoveryStats() != nil {
		t.Fatal("recovery layer installed despite Enabled=false")
	}
	jvm := ses.Runtime.(*rt.JVM)
	root, err := jvm.AllocRefArray(classes.ByName("root[]"), 16)
	if err != nil {
		t.Fatal(err)
	}
	h := jvm.NewHandle(root)
	jvm.TagRoot(h, 7)
	for i := 0; i < 16; i++ {
		b, err := jvm.AllocPrimArray(classes.ByName("big[]"), 1024)
		if err != nil {
			t.Fatal(err)
		}
		jvm.WriteRef(h.Addr(), i, b)
	}
	jvm.MoveHint(7)
	var flt *gc.FaultError
	if err := jvm.FullGC(); !errors.As(err, &flt) {
		t.Fatalf("FullGC = %v, want a latched *gc.FaultError with recovery disabled", err)
	}
	if ses.Fault() == nil {
		t.Error("Session.Fault() = nil with a latched region failure")
	}
}
