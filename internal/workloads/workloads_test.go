package workloads_test

import (
	"testing"
	"testing/quick"

	"github.com/carv-repro/teraheap-go/internal/workloads"
)

func TestRandDeterminism(t *testing.T) {
	a, b := workloads.NewRand(42), workloads.NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := workloads.NewRand(43)
	same := 0
	a = workloads.NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide too often: %d", same)
	}
}

func TestFloat64InRange(t *testing.T) {
	r := workloads.NewRand(7)
	f := func(_ uint8) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnBounds(t *testing.T) {
	r := workloads.NewRand(9)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := workloads.NewRand(11)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[r.Zipf(100, 1.0)]++
	}
	// Rank 0 must dominate rank 50.
	if counts[0] <= counts[50]*2 {
		t.Fatalf("no skew: c0=%d c50=%d", counts[0], counts[50])
	}
}

func TestGenGraphShape(t *testing.T) {
	g := workloads.GenGraph(5, 1000, 8, 0.8)
	if g.N != 1000 {
		t.Fatalf("N = %d", g.N)
	}
	// Every vertex has at least one out-edge; total near n*avgDeg.
	var total int64
	for v, es := range g.Adj {
		if len(es) == 0 {
			t.Fatalf("vertex %d has no out-edges", v)
		}
		for _, e := range es {
			if e < 0 || int(e) >= g.N {
				t.Fatalf("edge target out of range: %d", e)
			}
			if int(e) == v {
				t.Fatalf("self-loop at %d", v)
			}
		}
		total += int64(len(es))
	}
	if total != g.M {
		t.Fatalf("M = %d, counted %d", g.M, total)
	}
	if total < 6000 || total > 12000 {
		t.Fatalf("edge total off: %d (want ~8000)", total)
	}
}

func TestGenGraphDeterministic(t *testing.T) {
	a := workloads.GenGraph(5, 500, 4, 0.8)
	b := workloads.GenGraph(5, 500, 4, 0.8)
	if a.M != b.M {
		t.Fatal("nondeterministic edge count")
	}
	for v := range a.Adj {
		for i := range a.Adj[v] {
			if a.Adj[v][i] != b.Adj[v][i] {
				t.Fatal("nondeterministic adjacency")
			}
		}
	}
}

func TestGenPointsSeparable(t *testing.T) {
	p := workloads.GenPoints(3, 5000, 8)
	if p.N != 5000 || p.Dim != 8 {
		t.Fatalf("shape: %d x %d", p.N, p.Dim)
	}
	// The clusters are offset by ±0.8 per dimension: a trivial classifier
	// (sign of coordinate sum) should beat 75%.
	correct := 0
	for i := 0; i < p.N; i++ {
		var s float64
		for _, x := range p.X[i] {
			s += x
		}
		if (s > 0) == (p.Labels[i] > 0) {
			correct++
		}
	}
	if acc := float64(correct) / float64(p.N); acc < 0.75 {
		t.Fatalf("separability too low: %.2f", acc)
	}
}

func TestGenRowsKeysSkewed(t *testing.T) {
	rows := workloads.GenRows(13, 20000, 64)
	counts := make(map[int32]int)
	for _, k := range rows.Keys {
		if k < 0 || k >= 64 {
			t.Fatalf("key out of range: %d", k)
		}
		counts[k]++
	}
	if counts[0] <= counts[40] {
		t.Fatalf("keys not skewed: c0=%d c40=%d", counts[0], counts[40])
	}
}
