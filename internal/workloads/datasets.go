package workloads

// Graph is a directed graph with power-law out-degrees, the stand-in for
// the LDBC datagen social graphs and SparkBench graph inputs.
type Graph struct {
	N   int       // vertices
	Adj [][]int32 // out-edges per vertex
	M   int64     // total edges
}

// GenGraph builds a graph of n vertices and roughly n*avgDeg edges with
// Zipf-skewed degrees (skew s) and preferential target attachment.
func GenGraph(seed uint64, n int, avgDeg float64, skew float64) *Graph {
	r := NewRand(seed)
	g := &Graph{N: n, Adj: make([][]int32, n)}
	totalEdges := int64(float64(n) * avgDeg)
	// Zipf degree sequence over all vertices, scaled so it sums close to
	// totalEdges while every vertex keeps at least one out-edge.
	maxDeg := int(avgDeg * 20)
	if maxDeg < 2 {
		maxDeg = 2
	}
	raw := make([]int, n)
	var rawSum int64
	for v := 0; v < n; v++ {
		raw[v] = 1 + r.Zipf(maxDeg, skew)
		rawSum += int64(raw[v])
	}
	scale := float64(totalEdges) / float64(rawSum)
	var placed int64
	for v := 0; v < n; v++ {
		d := int(float64(raw[v]) * scale)
		if d < 1 {
			d = 1
		}
		edges := make([]int32, 0, d)
		for i := 0; i < d; i++ {
			// Preferential attachment flavour: half the edges go to
			// low-id (high-degree) vertices, half uniform.
			var t int
			if r.Float64() < 0.5 {
				t = r.Zipf(n, 1.1)
			} else {
				t = r.Intn(n)
			}
			if t == v {
				t = (t + 1) % n
			}
			edges = append(edges, int32(t))
		}
		g.Adj[v] = edges
		placed += int64(len(edges))
	}
	g.M = placed
	return g
}

// InDegrees computes the in-degree of each vertex.
func (g *Graph) InDegrees() []int32 {
	in := make([]int32, g.N)
	for _, es := range g.Adj {
		for _, t := range es {
			in[t]++
		}
	}
	return in
}

// Points is a labeled-point dataset for the ML workloads (LR, LgR, SVM,
// BC), the stand-in for the SparkBench generators and KDD12.
type Points struct {
	N      int
	Dim    int
	X      [][]float64
	Labels []float64 // ±1 for classifiers
}

// GenPoints generates n points of dimension dim from two Gaussian
// clusters, labelled ±1 — linearly separable with noise so LR/SVM make
// real progress.
func GenPoints(seed uint64, n, dim int) *Points {
	r := NewRand(seed)
	p := &Points{N: n, Dim: dim, X: make([][]float64, n), Labels: make([]float64, n)}
	for i := 0; i < n; i++ {
		label := 1.0
		if r.Float64() < 0.5 {
			label = -1.0
		}
		x := make([]float64, dim)
		for j := 0; j < dim; j++ {
			x[j] = r.NormFloat64() + label*0.8
		}
		// 5% label noise.
		if r.Float64() < 0.05 {
			label = -label
		}
		p.X[i] = x
		p.Labels[i] = label
	}
	return p
}

// Rows is a relational dataset for the SQL RDD workload (RDD-RL).
type Rows struct {
	N    int
	Keys []int32 // grouping key, skewed
	Vals []int64
}

// GenRows generates n rows with Zipf-skewed keys over k distinct values.
func GenRows(seed uint64, n, k int) *Rows {
	r := NewRand(seed)
	rows := &Rows{N: n, Keys: make([]int32, n), Vals: make([]int64, n)}
	for i := 0; i < n; i++ {
		rows.Keys[i] = int32(r.Zipf(k, 0.9))
		rows.Vals[i] = int64(r.Intn(1000))
	}
	return rows
}
