// Package workloads generates the synthetic datasets driving the
// experiments: power-law graphs standing in for the LDBC datagen social
// graphs, labeled points standing in for the SparkBench ML generators, and
// relational rows for the SQL workload. All generation is deterministic
// given a seed.
package workloads

import "math"

// Rand is a small deterministic PRNG (splitmix64) so every experiment is
// exactly reproducible.
type Rand struct {
	state uint64
}

// NewRand seeds a generator.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("workloads: Intn on non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// NormFloat64 returns a standard normal sample (Box–Muller).
func (r *Rand) NormFloat64() float64 {
	u1 := r.Float64()
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Zipf returns a sample in [0, n) with P(k) ∝ 1/(k+1)^s using inverse
// transform over a precomputed CDF is too costly per call, so it uses the
// rejection-inversion-free approximation adequate for degree skew.
func (r *Rand) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF approximation for the continuous analogue.
	u := r.Float64()
	if s == 1 {
		k := int(math.Pow(float64(n), u)) - 1
		if k < 0 {
			k = 0
		}
		if k >= n {
			k = n - 1
		}
		return k
	}
	x := math.Pow(u*(math.Pow(float64(n), 1-s)-1)+1, 1/(1-s)) - 1
	k := int(x)
	if k < 0 {
		k = 0
	}
	if k >= n {
		k = n - 1
	}
	return k
}
