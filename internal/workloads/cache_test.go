package workloads

import (
	"sync"
	"testing"
)

func TestCacheSameKeySharesInstance(t *testing.T) {
	ResetCaches()
	defer ResetCaches()

	g1 := CachedGraph(7, 1000, 8.0, 0.8)
	g2 := CachedGraph(7, 1000, 8.0, 0.8)
	if g1 != g2 {
		t.Errorf("CachedGraph same key returned distinct instances")
	}
	p1 := CachedPoints(7, 500, 10)
	p2 := CachedPoints(7, 500, 10)
	if p1 != p2 {
		t.Errorf("CachedPoints same key returned distinct instances")
	}
	r1 := CachedRows(7, 500, 64)
	r2 := CachedRows(7, 500, 64)
	if r1 != r2 {
		t.Errorf("CachedRows same key returned distinct instances")
	}
	hits, misses := CacheStats()
	if misses != 3 {
		t.Errorf("misses = %d, want 3 (one generation per key)", misses)
	}
	if hits != 3 {
		t.Errorf("hits = %d, want 3 (one repeat per key)", hits)
	}
}

func TestCacheKeyMiss(t *testing.T) {
	ResetCaches()
	defer ResetCaches()

	base := CachedGraph(7, 1000, 8.0, 0.8)
	if CachedGraph(8, 1000, 8.0, 0.8) == base {
		t.Errorf("different seed returned the cached instance")
	}
	if CachedGraph(7, 2000, 8.0, 0.8) == base {
		t.Errorf("different size returned the cached instance")
	}
	if CachedGraph(7, 1000, 8.0, 0.9) == base {
		t.Errorf("different skew returned the cached instance")
	}
	p := CachedPoints(7, 500, 10)
	if CachedPoints(7, 500, 20) == p {
		t.Errorf("different dim returned the cached points")
	}
	_, misses := CacheStats()
	if misses != 6 {
		t.Errorf("misses = %d, want 6 (every key distinct)", misses)
	}
}

// TestCacheConcurrentSingleGeneration checks the per-key sync.Once: many
// concurrent callers of one key share a single generation pass.
func TestCacheConcurrentSingleGeneration(t *testing.T) {
	ResetCaches()
	defer ResetCaches()

	const callers = 16
	got := make([]*Graph, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i] = CachedGraph(42, 2000, 8.0, 0.8)
		}()
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d got a distinct instance", i)
		}
	}
	_, misses := CacheStats()
	if misses != 1 {
		t.Errorf("misses = %d, want 1 (single generation)", misses)
	}
}

// TestCachedEqualsGenerated pins that the cached variants return exactly
// what the underlying pure generators produce.
func TestCachedEqualsGenerated(t *testing.T) {
	ResetCaches()
	defer ResetCaches()

	cg := CachedGraph(3, 1500, 6.0, 0.8)
	gg := GenGraph(3, 1500, 6.0, 0.8)
	if cg.N != gg.N || cg.M != gg.M || len(cg.Adj) != len(gg.Adj) {
		t.Fatalf("cached graph differs from generated: N=%d/%d M=%d/%d", cg.N, gg.N, cg.M, gg.M)
	}
	for v := range cg.Adj {
		if len(cg.Adj[v]) != len(gg.Adj[v]) {
			t.Fatalf("vertex %d degree differs", v)
		}
		for j := range cg.Adj[v] {
			if cg.Adj[v][j] != gg.Adj[v][j] {
				t.Fatalf("vertex %d edge %d differs", v, j)
			}
		}
	}
}
