package workloads

import (
	"sync"
	"sync/atomic"
)

// The experiment suite regenerates the same datasets over and over: every
// DRAM point of a figure ladder re-runs the same workload, and the
// generators are pure functions of their parameters. The cached variants
// below memoise generation so concurrent runs of the same workload share
// one generation pass and one in-memory dataset.
//
// Sharing contract: cached datasets are immutable. Consumers (graphx,
// mllib, sparksql, giraph) only read Graph.Adj / Points.X / Rows slices
// when materializing heap partitions — they never write back into the
// dataset. Any future workload that needs to mutate its input must
// deep-copy it first (or call the Gen* functions directly for a private
// instance).

// memoCache is a per-key-once cache: the first caller of a key generates
// the value while later callers of the same key block on that one
// generation and then share the result.
type memoCache[K comparable, V any] struct {
	mu     sync.Mutex
	m      map[K]*memoEntry[V]
	hits   atomic.Int64
	misses atomic.Int64
}

type memoEntry[V any] struct {
	once sync.Once
	v    V
}

func (c *memoCache[K, V]) get(k K, gen func() V) V {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*memoEntry[V])
	}
	e, ok := c.m[k]
	if !ok {
		e = &memoEntry[V]{}
		c.m[k] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() { e.v = gen() })
	return e.v
}

func (c *memoCache[K, V]) reset() {
	c.mu.Lock()
	c.m = nil
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}

type graphKey struct {
	seed   uint64
	n      int
	avgDeg float64
	skew   float64
}

type pointsKey struct {
	seed uint64
	n    int
	dim  int
}

type rowsKey struct {
	seed uint64
	n    int
	k    int
}

var (
	graphCache  memoCache[graphKey, *Graph]
	pointsCache memoCache[pointsKey, *Points]
	rowsCache   memoCache[rowsKey, *Rows]
)

// CachedGraph returns the memoised graph for the given generator
// parameters, generating it on first use. The returned graph is shared:
// callers must treat it as immutable.
func CachedGraph(seed uint64, n int, avgDeg float64, skew float64) *Graph {
	k := graphKey{seed: seed, n: n, avgDeg: avgDeg, skew: skew}
	return graphCache.get(k, func() *Graph { return GenGraph(seed, n, avgDeg, skew) })
}

// CachedPoints returns the memoised labeled-point dataset for the given
// generator parameters. The returned dataset is shared and immutable.
func CachedPoints(seed uint64, n, dim int) *Points {
	k := pointsKey{seed: seed, n: n, dim: dim}
	return pointsCache.get(k, func() *Points { return GenPoints(seed, n, dim) })
}

// CachedRows returns the memoised relational dataset for the given
// generator parameters. The returned dataset is shared and immutable.
func CachedRows(seed uint64, n, k int) *Rows {
	key := rowsKey{seed: seed, n: n, k: k}
	return rowsCache.get(key, func() *Rows { return GenRows(seed, n, k) })
}

// CacheStats reports aggregate hit/miss counts across the three dataset
// caches (tests and diagnostics).
func CacheStats() (hits, misses int64) {
	hits = graphCache.hits.Load() + pointsCache.hits.Load() + rowsCache.hits.Load()
	misses = graphCache.misses.Load() + pointsCache.misses.Load() + rowsCache.misses.Load()
	return hits, misses
}

// ResetCaches drops all memoised datasets and zeroes the counters
// (tests; frees memory between unrelated suites).
func ResetCaches() {
	graphCache.reset()
	pointsCache.reset()
	rowsCache.reset()
}
