// Package teraheap is the public API of the TeraHeap reproduction: a
// managed-runtime simulator with a second, high-capacity heap (H2) over a
// fast storage device, faithful to "TeraHeap: Reducing Memory Pressure in
// Managed Big Data Frameworks" (ASPLOS 2023).
//
// The package re-exports the building blocks from the internal packages:
//
//   - New / NewNative build a TeraHeap-enabled or vanilla managed runtime;
//   - Runtime is the allocation/access surface (with post-write barriers);
//   - TagRoot / MoveHint are the paper's h2_tag_root / h2_move hints;
//   - spark-like and giraph-like framework simulations live in
//     internal/spark and internal/giraph and are re-exported via aliases.
//
// A minimal session:
//
//	rt := teraheap.New(teraheap.Options{H1Size: 8 << 20, H2Size: 256 << 20})
//	classes := rt.Classes()
//	cls := classes.MustPrimArray("data")
//	a, _ := rt.AllocPrimArray(cls, 1024)
//	h := rt.NewHandle(a)
//	rt.TagRoot(h, 1)
//	rt.MoveHint(1)
//	_ = rt.FullGC() // the group now lives in H2, still directly readable
package teraheap

import (
	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/gc"
	"github.com/carv-repro/teraheap-go/internal/giraph"
	"github.com/carv-repro/teraheap-go/internal/heap"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/serde"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/spark"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

// Re-exported core types.
type (
	// Runtime is a managed runtime: allocation, barriered access, roots,
	// TeraHeap hints, and GC control.
	Runtime = rt.Runtime
	// JVM is the Parallel Scavenge-based Runtime implementation.
	JVM = rt.JVM
	// Config configures the second heap (regions, card segments,
	// thresholds, promotion buffers).
	Config = core.Config
	// TeraHeap is the second heap itself.
	TeraHeap = core.TeraHeap
	// GroupMode selects dependency lists or Union-Find region groups.
	GroupMode = core.GroupMode
	// Addr is a simulated heap address.
	Addr = vm.Addr
	// Handle is a GC root holding an object address.
	Handle = vm.Handle
	// Class describes an object layout.
	Class = vm.Class
	// ClassTable registers classes.
	ClassTable = vm.ClassTable
	// Clock is the deterministic virtual clock.
	Clock = simclock.Clock
	// Breakdown is the Other / S/D+I/O / MinorGC / MajorGC time split.
	Breakdown = simclock.Breakdown
	// Device is a simulated storage device.
	Device = storage.Device
	// GCStats aggregates collector activity.
	GCStats = gc.Stats
	// OOMError reports heap exhaustion.
	OOMError = gc.OOMError
	// HeapConfig sizes the regular heap (H1).
	HeapConfig = heap.Config
)

// Cross-region tracking modes (§3.3).
const (
	DependencyLists = core.DependencyLists
	UnionFind       = core.UnionFind
)

// Device kinds.
const (
	DRAM    = storage.DRAM
	NVMeSSD = storage.NVMeSSD
	NVM     = storage.NVM
)

// Byte-size units.
const (
	KB = storage.KB
	MB = storage.MB
	GB = storage.GB
	TB = storage.TB
)

// Options configures New.
type Options struct {
	// H1Size is the regular (DRAM) heap size in bytes.
	H1Size int64
	// H2Size is the second heap capacity in bytes (0 disables TeraHeap).
	H2Size int64
	// H2Config optionally refines the H2 configuration; when nil, a
	// default configuration for H2Size is used.
	H2Config *Config
	// DeviceKind backs H2 (default NVMeSSD).
	DeviceKind storage.Kind
	// HeapConfig optionally overrides the H1 layout.
	HeapConfig *HeapConfig
	// Classes optionally supplies a pre-populated class table.
	Classes *ClassTable
	// Clock optionally supplies a shared virtual clock.
	Clock *Clock
}

// New builds a TeraHeap-enabled runtime (or a vanilla one when H2Size is
// zero and H2Config is nil).
func New(o Options) *JVM {
	clock := o.Clock
	if clock == nil {
		clock = simclock.New()
	}
	var thCfg *Config
	if o.H2Config != nil {
		thCfg = o.H2Config
	} else if o.H2Size > 0 {
		c := core.DefaultConfig(o.H2Size)
		thCfg = &c
	}
	var dev *Device
	if thCfg != nil {
		kind := o.DeviceKind
		if kind == storage.DRAM {
			kind = storage.NVMeSSD
		}
		dev = storage.NewDevice(kind, clock)
	}
	return rt.NewJVM(rt.Options{
		H1Size:   o.H1Size,
		HeapCfg:  o.HeapConfig,
		TH:       thCfg,
		H2Device: dev,
	}, o.Classes, clock)
}

// NewNative builds a vanilla (no-H2) runtime: the native-JVM baseline.
func NewNative(h1Size int64) *JVM {
	return rt.NewJVM(rt.Options{H1Size: h1Size}, nil, nil)
}

// DefaultH2Config returns the default second-heap configuration for the
// given capacity.
func DefaultH2Config(h2Size int64) Config { return core.DefaultConfig(h2Size) }

// NewClassTable returns a fresh class table.
func NewClassTable() *ClassTable { return vm.NewClassTable() }

// NewClock returns a fresh virtual clock.
func NewClock() *Clock { return simclock.New() }

// NewDevice builds a storage device of the given kind on clock.
func NewDevice(kind storage.Kind, clock *Clock) *Device {
	return storage.NewDevice(kind, clock)
}

// Framework simulations, re-exported.
type (
	// SparkContext is the mini-Spark session (RDDs, block manager).
	SparkContext = spark.Context
	// SparkConf configures a SparkContext.
	SparkConf = spark.Conf
	// SparkMode selects the cache configuration (SD / TH / MO).
	SparkMode = spark.Mode
	// RDD is a partitioned, recomputable, cachable dataset.
	RDD = spark.RDD
	// GiraphEngine is the mini-Giraph BSP engine.
	GiraphEngine = giraph.Engine
	// GiraphConf configures a GiraphEngine.
	GiraphConf = giraph.Conf
	// VertexProgram is a Pregel-style vertex program.
	VertexProgram = giraph.Program
	// Serializer models Kryo/Java serialization over the simulated heap.
	Serializer = serde.Serializer
)

// Spark cache modes (Table 2).
const (
	SparkSD = spark.ModeSD
	SparkTH = spark.ModeTH
	SparkMO = spark.ModeMO
)

// Giraph modes.
const (
	GiraphOOC = giraph.ModeOOC
	GiraphTH  = giraph.ModeTH
)

// NewSparkContext builds a mini-Spark session.
func NewSparkContext(conf SparkConf) *SparkContext { return spark.NewContext(conf) }

// NewGiraphEngine builds a mini-Giraph engine over graph adjacency data.
var NewGiraphEngine = giraph.NewEngine
