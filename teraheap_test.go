package teraheap_test

import (
	"testing"

	teraheap "github.com/carv-repro/teraheap-go"
)

// These tests exercise the public facade exactly as a downstream user
// would.

func TestPublicAPIRoundTrip(t *testing.T) {
	rt := teraheap.New(teraheap.Options{
		H1Size: 4 * teraheap.MB,
		H2Size: 64 * teraheap.MB,
	})
	classes := rt.Classes()
	point := classes.MustFixed("Point", 0, 2)
	arr := classes.MustRefArray("Point[]")

	const n = 500
	root, err := rt.AllocRefArray(arr, n)
	if err != nil {
		t.Fatal(err)
	}
	h := rt.NewHandle(root)
	for i := 0; i < n; i++ {
		p, err := rt.Alloc(point)
		if err != nil {
			t.Fatal(err)
		}
		rt.WritePrim(p, 0, uint64(i))
		rt.WritePrim(p, 1, uint64(i*i))
		rt.WriteRef(h.Addr(), i, p)
	}

	rt.TagRoot(h, 1)
	rt.MoveHint(1)
	if err := rt.FullGC(); err != nil {
		t.Fatal(err)
	}
	if !rt.InSecondHeap(h.Addr()) {
		t.Fatal("group not in H2")
	}
	var sum uint64
	for i := 0; i < n; i++ {
		sum += rt.ReadPrim(rt.ReadRef(h.Addr(), i), 1)
	}
	var want uint64
	for i := 0; i < n; i++ {
		want += uint64(i * i)
	}
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}

	b := rt.Breakdown()
	if b.Total() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	st := rt.TeraHeap().Stats()
	if st.ObjectsMoved < int64(n) {
		t.Fatalf("moved = %d", st.ObjectsMoved)
	}
}

func TestPublicAPINativeRuntime(t *testing.T) {
	rt := teraheap.NewNative(2 * teraheap.MB)
	if rt.TeraHeap() != nil {
		t.Fatal("native runtime has an H2")
	}
	cls := rt.Classes().MustPrimArray("x[]")
	a, err := rt.AllocPrimArray(cls, 100)
	if err != nil {
		t.Fatal(err)
	}
	h := rt.NewHandle(a)
	rt.WritePrim(a, 7, 99)
	if err := rt.FullGC(); err != nil {
		t.Fatal(err)
	}
	if rt.ReadPrim(h.Addr(), 7) != 99 {
		t.Fatal("data lost")
	}
	// Hints are harmless no-ops without H2.
	rt.TagRoot(h, 1)
	rt.MoveHint(1)
}

func TestPublicAPISparkContext(t *testing.T) {
	rt := teraheap.New(teraheap.Options{H1Size: 4 * teraheap.MB, H2Size: 64 * teraheap.MB})
	ctx := teraheap.NewSparkContext(teraheap.SparkConf{
		RT: rt, Mode: teraheap.SparkTH, Threads: 4,
	})
	if ctx == nil || ctx.BM == nil {
		t.Fatal("context not wired")
	}
}

func TestPublicConfigDefaults(t *testing.T) {
	cfg := teraheap.DefaultH2Config(1 * teraheap.GB)
	if cfg.H2Size != 1*teraheap.GB || cfg.RegionSize <= 0 || cfg.HighThreshold <= 0 {
		t.Fatalf("bad defaults: %+v", cfg)
	}
	if cfg.GroupMode != teraheap.DependencyLists {
		t.Fatal("default group mode")
	}
}
