module github.com/carv-repro/teraheap-go

go 1.22
