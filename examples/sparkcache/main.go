// sparkcache runs the paper's headline Spark scenario end to end: the
// same PageRank job over a cached graph RDD under (1) Spark-SD — native
// JVM with an on-heap/serialized-off-heap cache split — and (2) TeraHeap,
// at the same DRAM budget, printing the execution-time breakdowns side by
// side (a one-workload slice of Figure 6).
//
// Run with: go run ./examples/sparkcache
package main

import (
	"fmt"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/graphx"
	"github.com/carv-repro/teraheap-go/internal/metrics"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/serde"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/spark"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/workloads"
)

const (
	dramBudget = 4 * storage.MB // total DRAM per configuration
	reserve    = 1 * storage.MB // driver + page-cache share (DR2)
	partitions = 64
)

func main() {
	graph := workloads.GenGraph(7, 40_000, 8, 0.8)
	fmt.Printf("graph: %d vertices, %d edges\n\n", graph.N, graph.M)

	sd := run(graph, spark.ModeSD)
	th := run(graph, spark.ModeTH)

	rows := []metrics.Row{
		{Name: "Spark-SD", B: sd},
		{Name: "TeraHeap", B: th},
	}
	fmt.Print(metrics.FormatBreakdown("PageRank, equal DRAM", rows, true))
	fmt.Printf("\nTeraHeap reduces execution time by %.0f%%\n",
		metrics.Speedup(sd.Total(), th.Total()))
}

func run(graph *workloads.Graph, mode spark.Mode) simclock.Breakdown {
	clock := simclock.New()
	dev := storage.NewDevice(storage.NVMeSSD, clock)

	var runtime rt.Runtime
	switch mode {
	case spark.ModeTH:
		// TeraHeap splits the DRAM budget between H1 and the H2 page
		// cache; the cached graph lives in H2 on the device.
		thCfg := core.DefaultConfig(64 * storage.MB)
		thCfg.RegionSize = 64 * storage.KB
		thCfg.CacheBytes = reserve
		runtime = rt.NewJVM(rt.Options{
			H1Size: dramBudget - reserve, TH: &thCfg, H2Device: dev,
		}, nil, clock)
	default:
		runtime = rt.NewJVM(rt.Options{H1Size: dramBudget - reserve}, nil, clock)
	}

	ctx := spark.NewContext(spark.Conf{
		RT:                runtime,
		Mode:              mode,
		Threads:           8,
		SerKind:           serde.Kryo,
		OffHeapDev:        dev,
		OffHeapCacheBytes: reserve,
		OnHeapCacheBytes:  (dramBudget - reserve) / 2,
	})

	g := graphx.Load(ctx, graph, partitions)
	ranks, err := g.PageRank(10)
	if err != nil {
		panic(fmt.Sprintf("%s failed: %v", mode, err))
	}
	var sum float64
	for _, r := range ranks {
		sum += r
	}
	fmt.Printf("%-9s rank mass %.4f, %d minor + %d major GCs\n",
		mode, sum, runtime.GCStats().MinorCount, runtime.GCStats().MajorCount)
	return clock.Breakdown()
}
