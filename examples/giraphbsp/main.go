// giraphbsp runs a Giraph-style BSP computation (weakly connected
// components) under the out-of-core baseline and under TeraHeap with a
// smaller DRAM budget, showing the superstep-labelled tag/move flow of
// the paper's Figure 5.
//
// Run with: go run ./examples/giraphbsp
package main

import (
	"fmt"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/giraph"
	"github.com/carv-repro/teraheap-go/internal/metrics"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/workloads"
)

func main() {
	graph := workloads.GenGraph(11, 30_000, 8, 0.8)
	fmt.Printf("graph: %d vertices, %d edges\n\n", graph.N, graph.M)

	ooc, oocSum := run(graph, giraph.ModeOOC, 3*storage.MB)
	th, thSum := run(graph, giraph.ModeTH, 2*storage.MB) // 1.5x less DRAM

	if oocSum != thSum {
		panic("configurations disagree on the WCC result")
	}
	rows := []metrics.Row{
		{Name: "Giraph-OOC (3MB DRAM)", B: ooc},
		{Name: "TeraHeap   (2MB DRAM)", B: th},
	}
	fmt.Print(metrics.FormatBreakdown("WCC, TeraHeap with 1.5x less DRAM", rows, true))
}

func run(graph *workloads.Graph, mode giraph.Mode, dram int64) (simclock.Breakdown, float64) {
	clock := simclock.New()
	dev := storage.NewDevice(storage.NVMeSSD, clock)

	var jvm *rt.JVM
	switch mode {
	case giraph.ModeTH:
		thCfg := core.DefaultConfig(64 * storage.MB)
		thCfg.RegionSize = 64 * storage.KB
		thCfg.CacheBytes = dram / 3
		jvm = rt.NewJVM(rt.Options{H1Size: dram - dram/3, TH: &thCfg, H2Device: dev}, nil, clock)
	default:
		jvm = rt.NewJVM(rt.Options{H1Size: dram * 4 / 5}, nil, clock)
	}

	eng, err := giraph.NewEngine(giraph.Conf{
		RT:            jvm,
		Mode:          mode,
		Threads:       8,
		OOCDev:        dev,
		OOCCacheBytes: dram / 5,
	}, graph, 32)
	if err != nil {
		panic(err)
	}
	vals, err := eng.Run(&giraph.WCC{MaxIters: 25})
	if err != nil {
		panic(fmt.Sprintf("%v failed: %v", mode, err))
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	fmt.Printf("%-11s components checksum %.0f, supersteps %d, OOC offloads %d\n",
		mode, sum, eng.Stats.Supersteps, eng.Stats.OOCOffloads)
	return clock.Breakdown(), sum
}
