// g1teraheap demonstrates the §7.1 "TeraHeap can also be used with G1"
// integration: a Garbage-First heap with an attached second heap. A
// humongous object group is tagged and move-advised; the next marking
// cycle moves it — closure and all — to H2, freeing the contiguous
// humongous region run that would otherwise fragment G1 forever.
//
// Run with: go run ./examples/g1teraheap
package main

import (
	"fmt"

	"github.com/carv-repro/teraheap-go/internal/baselines/g1"
	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

func main() {
	clock := simclock.New()
	classes := teraClasses()
	cfg := g1.DefaultConfig(2 * storage.MB)
	thCfg := core.DefaultConfig(64 * storage.MB)
	thCfg.RegionSize = 32 * storage.KB
	g, th := g1.NewWithTeraHeap(cfg, thCfg, nil, classes, clock)

	fmt.Printf("G1 heap: %d regions of %d KB (humongous above %d KB)\n",
		cfg.H1Size/cfg.RegionSize, cfg.RegionSize/1024, cfg.RegionSize/2/1024)

	// A humongous array: 1.5 G1 regions, immovable by G1 itself.
	parr := classes.ByName("long[]")
	humWords := int(cfg.RegionSize/8) * 3 / 2
	big, err := g.AllocPrimArray(parr, humWords)
	check(err)
	h := g.NewHandle(big)
	for i := 0; i < humWords; i += 512 {
		g.WritePrim(big, i, uint64(i))
	}
	used0, _ := g.HeapUsed()
	fmt.Printf("humongous object allocated: %d KB, heap used %d KB\n",
		humWords*8/1024, used0/1024)

	// Tag, advise, and run a marking cycle: the object moves to H2 and
	// the humongous run is freed.
	g.TagRoot(h, 1)
	g.MoveHint(1)
	check(g.MarkingCycle())

	used1, _ := g.HeapUsed()
	fmt.Printf("after marking cycle: in H2? %v, heap used %d KB (freed %d KB)\n",
		g.InSecondHeap(h.Addr()), used1/1024, (used0-used1)/1024)
	fmt.Printf("H2 holds %d KB in %d region(s)\n",
		th.UsedBytes()/1024, th.ActiveRegions())

	// Direct access still works.
	if g.ReadPrim(h.Addr(), 512) != 512 {
		panic("data corrupted")
	}
	fmt.Println("H2-resident humongous data read back intact")

	// Release and reclaim in bulk.
	g.Release(h)
	check(g.MarkingCycle())
	fmt.Printf("after release: H2 used = %d bytes\n", th.UsedBytes())
	fmt.Printf("virtual time: %v\n", clock.Breakdown())
}

func teraClasses() *vm.ClassTable {
	classes := vm.NewClassTable()
	classes.MustPrimArray("long[]")
	return classes
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
