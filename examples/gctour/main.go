// gctour is a guided tour of the collector internals: it provokes minor
// collections, tenuring, a major collection, TeraHeap's high/low threshold
// mechanism, and region reclamation, narrating the heap state after each
// step. Useful for understanding how the pieces of §3 and §4 interact.
//
// Run with: go run ./examples/gctour
package main

import (
	"fmt"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

func main() {
	clock := simclock.New()
	classes := vm.NewClassTable()
	node := classes.MustFixed("Node", 1, 1)
	arr := classes.MustRefArray("Object[]")

	thCfg := core.DefaultConfig(32 * storage.MB)
	thCfg.RegionSize = 64 * storage.KB
	thCfg.HighThreshold = 0.60
	thCfg.LowThreshold = 0.40
	jvm := rt.NewJVM(rt.Options{H1Size: 1 * storage.MB, TH: &thCfg}, classes, clock)
	col := jvm.Collector()

	state := func(step string) {
		st := jvm.GCStats()
		ths := jvm.TeraHeap().Stats()
		fmt.Printf("%-34s eden=%5.0fKB old=%5.0fKB (%.0f%%) | minors=%d majors=%d | H2=%5.0fKB moved=%d trips=%d\n",
			step,
			float64(col.H1.Eden.Used())/1024, float64(col.H1.Old.Used())/1024,
			100*col.H1.OldOccupancy(), st.MinorCount, st.MajorCount,
			float64(jvm.TeraHeap().UsedBytes())/1024, ths.ObjectsMoved, ths.HighThresholdTrips)
	}

	state("start")

	// 1. Fill eden with short-lived garbage: minor GCs reclaim it all.
	for i := 0; i < 30_000; i++ {
		if _, err := jvm.Alloc(node); err != nil {
			panic(err)
		}
	}
	state("after 30k short-lived allocs")

	// 2. Build a long-lived group: survivors age, then tenure to old gen.
	root, _ := jvm.AllocRefArray(arr, 4000)
	h := jvm.NewHandle(root)
	for i := 0; i < 4000; i++ {
		a, err := jvm.Alloc(node)
		if err != nil {
			panic(err)
		}
		jvm.WritePrim(a, 0, uint64(i))
		jvm.WriteRef(h.Addr(), i, a)
	}
	for i := 0; i < 20_000; i++ { // churn to drive tenuring
		if _, err := jvm.Alloc(node); err != nil {
			panic(err)
		}
	}
	state("after building 4k-node group")

	// 3. Tag the group. No hint yet: nothing moves without pressure.
	jvm.TagRoot(h, 1)
	if err := jvm.FullGC(); err != nil {
		panic(err)
	}
	state("tagged, major GC, no hint")

	// 4. Pile on pressure: the high threshold forces the move (bounded by
	// the low threshold), even though h2_move was never called.
	var pressure []*vm.Handle
	for p := 0; p < 6; p++ {
		r, err := jvm.AllocRefArray(arr, 2000)
		if err != nil {
			panic(err)
		}
		ph := jvm.NewHandle(r)
		jvm.TagRoot(ph, uint64(2+p))
		for i := 0; i < 2000; i++ {
			a, err := jvm.Alloc(node)
			if err != nil {
				panic(err)
			}
			jvm.WriteRef(ph.Addr(), i, a)
		}
		pressure = append(pressure, ph)
	}
	state("under pressure (high threshold)")
	fmt.Printf("    root now in H2? %v (address %v)\n", jvm.InSecondHeap(h.Addr()), h.Addr())

	// 5. Now use the hint interface properly for the rest.
	for p, ph := range pressure {
		jvm.MoveHint(uint64(2 + p))
		_ = ph
	}
	if err := jvm.FullGC(); err != nil {
		panic(err)
	}
	state("after h2_move hints + major GC")

	// 6. Drop everything: regions are reclaimed in bulk, no H2 scans.
	jvm.Release(h)
	for _, ph := range pressure {
		jvm.Release(ph)
	}
	if err := jvm.FullGC(); err != nil {
		panic(err)
	}
	state("after release + major GC")
	fmt.Printf("    regions reclaimed in bulk: %d\n", jvm.TeraHeap().Stats().RegionsReclaimed)
	fmt.Printf("\nvirtual time: %v\n", clock.Breakdown())
}
