// Quickstart: build a TeraHeap-enabled managed runtime, allocate an
// object group behind a single-entry root, tag it with a label
// (h2_tag_root), advise the move (h2_move), and watch a major GC relocate
// the whole transitive closure to the storage-backed second heap — still
// directly readable, no serialization anywhere.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/simclock"
	"github.com/carv-repro/teraheap-go/internal/storage"
	"github.com/carv-repro/teraheap-go/internal/vm"
)

func main() {
	clock := simclock.New()
	classes := vm.NewClassTable()
	point := classes.MustFixed("Point", 1, 2) // next ref, x, y
	arr := classes.MustRefArray("Point[]")

	// An 8 MB H1 in DRAM, a 256 MB H2 over a simulated NVMe SSD.
	thCfg := core.DefaultConfig(256 * storage.MB)
	thCfg.RegionSize = 256 * storage.KB
	thCfg.CacheBytes = 2 * storage.MB
	jvm := rt.NewJVM(rt.Options{H1Size: 8 * storage.MB, TH: &thCfg}, classes, clock)

	// Build a partition-shaped object group: one root array holding 10k
	// Point objects.
	const n = 10_000
	root, err := jvm.AllocRefArray(arr, n)
	check(err)
	h := jvm.NewHandle(root)
	for i := 0; i < n; i++ {
		p, err := jvm.Alloc(point)
		check(err)
		jvm.WritePrim(p, 0, uint64(i))
		jvm.WritePrim(p, 1, uint64(i*i))
		jvm.WriteRef(h.Addr(), i, p)
	}
	fmt.Printf("built %d objects; root at %v (H2? %v)\n", n+1, h.Addr(), jvm.InSecondHeap(h.Addr()))

	// The hint-based interface: tag the root key-object, advise the move.
	jvm.TagRoot(h, 42)
	jvm.MoveHint(42)
	check(jvm.FullGC())

	fmt.Printf("after major GC: root at %v (H2? %v)\n", h.Addr(), jvm.InSecondHeap(h.Addr()))

	// Direct access — no deserialization. Reads fault H2 pages through the
	// simulated page cache and charge virtual I/O time.
	var sum uint64
	for i := 0; i < n; i++ {
		p := jvm.ReadRef(h.Addr(), i)
		sum += jvm.ReadPrim(p, 1)
	}
	fmt.Printf("sum of squares read straight from H2: %d\n", sum)

	st := jvm.TeraHeap().Stats()
	fmt.Printf("objects moved to H2: %d (%d bytes), regions in use: %d\n",
		st.ObjectsMoved, st.BytesMoved, jvm.TeraHeap().ActiveRegions())
	fmt.Printf("virtual time breakdown: %v\n", jvm.Breakdown())

	// Release the group: the next major GC reclaims its regions in bulk —
	// no H2 scan, no compaction on the device.
	jvm.Release(h)
	check(jvm.FullGC())
	fmt.Printf("after release: H2 used = %d bytes, regions reclaimed = %d\n",
		jvm.TeraHeap().UsedBytes(), jvm.TeraHeap().Stats().RegionsReclaimed)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
