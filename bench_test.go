// Package teraheap's benchmark suite regenerates every table and figure
// of the paper's evaluation (§7) as testing.B benchmarks. Each benchmark
// reports the simulated execution times of the configurations it compares
// as custom metrics (sim-ms), alongside the usual wall-clock numbers.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// or a single figure:
//
//	go test -bench=BenchmarkFig6SparkPR
package teraheap

import (
	"runtime"
	"testing"

	"github.com/carv-repro/teraheap-go/internal/core"
	"github.com/carv-repro/teraheap-go/internal/experiments"
	"github.com/carv-repro/teraheap-go/internal/giraph"
	"github.com/carv-repro/teraheap-go/internal/rt"
	"github.com/carv-repro/teraheap-go/internal/storage"
)

// reportRuns attaches each run's simulated total as a custom metric.
func reportRuns(b *testing.B, runs ...experiments.RunResult) {
	b.Helper()
	for _, r := range runs {
		name := "sim-ms-" + r.Name
		if r.OOM {
			b.ReportMetric(-1, name)
			continue
		}
		b.ReportMetric(float64(r.B.Total().Milliseconds()), name)
	}
}

// --- Figure 6 (Spark): TeraHeap vs Spark-SD per workload -------------------

func benchFig6Spark(b *testing.B, workload string) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6Spark(workload)
		if i == b.N-1 {
			reportRuns(b, r.Runs...)
		}
	}
}

func BenchmarkFig6SparkPR(b *testing.B)   { benchFig6Spark(b, "PR") }
func BenchmarkFig6SparkCC(b *testing.B)   { benchFig6Spark(b, "CC") }
func BenchmarkFig6SparkSSSP(b *testing.B) { benchFig6Spark(b, "SSSP") }
func BenchmarkFig6SparkSVD(b *testing.B)  { benchFig6Spark(b, "SVD") }
func BenchmarkFig6SparkTR(b *testing.B)   { benchFig6Spark(b, "TR") }
func BenchmarkFig6SparkLR(b *testing.B)   { benchFig6Spark(b, "LR") }
func BenchmarkFig6SparkLgR(b *testing.B)  { benchFig6Spark(b, "LgR") }
func BenchmarkFig6SparkSVM(b *testing.B)  { benchFig6Spark(b, "SVM") }
func BenchmarkFig6SparkBC(b *testing.B)   { benchFig6Spark(b, "BC") }
func BenchmarkFig6SparkRL(b *testing.B)   { benchFig6Spark(b, "RL") }

// --- Figure 6 (Giraph): TeraHeap vs Giraph-OOC per workload ----------------

func benchFig6Giraph(b *testing.B, workload string) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6Giraph(workload)
		if i == b.N-1 {
			reportRuns(b, r.Runs...)
		}
	}
}

func BenchmarkFig6GiraphPR(b *testing.B)   { benchFig6Giraph(b, "PR") }
func BenchmarkFig6GiraphCDLP(b *testing.B) { benchFig6Giraph(b, "CDLP") }
func BenchmarkFig6GiraphWCC(b *testing.B)  { benchFig6Giraph(b, "WCC") }
func BenchmarkFig6GiraphBFS(b *testing.B)  { benchFig6Giraph(b, "BFS") }
func BenchmarkFig6GiraphSSSP(b *testing.B) { benchFig6Giraph(b, "SSSP") }

// --- Figure 7: GC timelines -------------------------------------------------

func BenchmarkFig7Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7()
		if i == b.N-1 {
			reportRuns(b, r.SD, r.TH)
			sdMajors := 0
			for _, cy := range r.SD.GCStats.Cycles {
				if cy.Kind == 1 {
					sdMajors++
				}
			}
			b.ReportMetric(float64(r.SD.GCStats.MajorCount), "sd-majors")
			b.ReportMetric(float64(r.TH.GCStats.MajorCount), "th-majors")
		}
	}
}

// --- Figure 8: PS vs G1 vs TeraHeap (one representative workload each of
// the three G1 behaviours: wins, loses to TH, humongous-OOM) ----------------

func benchFig8(b *testing.B, workload string) {
	spec := experiments.SparkWorkloads()
	_ = spec
	for i := 0; i < b.N; i++ {
		ps := experiments.RunSpark(experiments.SparkRun{Workload: workload, Runtime: rt.KindPS, DramGB: 80})
		g1r := experiments.RunSpark(experiments.SparkRun{Workload: workload, Runtime: rt.KindG1, DramGB: 80})
		th := experiments.RunSpark(experiments.SparkRun{Workload: workload, Runtime: rt.KindTH, DramGB: 80})
		if i == b.N-1 {
			reportRuns(b, ps, g1r, th)
		}
	}
}

func BenchmarkFig8G1PR(b *testing.B) { benchFig8(b, "PR") }
func BenchmarkFig8G1RL(b *testing.B) { benchFig8(b, "RL") }

// --- Figure 9: transfer hint and low threshold ------------------------------

func BenchmarkFig9aHint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nh := experiments.RunGiraph(experiments.GiraphRun{
			Workload: "WCC", Mode: giraph.ModeTH, DramGB: 74,
			THConfig: func(c *core.Config) { c.EnableMoveHint = false; c.LowThreshold = 0 },
		})
		h := experiments.RunGiraph(experiments.GiraphRun{
			Workload: "WCC", Mode: giraph.ModeTH, DramGB: 74,
			THConfig: func(c *core.Config) { c.LowThreshold = 0 },
		})
		if i == b.N-1 {
			reportRuns(b, nh, h)
		}
	}
}

func BenchmarkFig9bLowThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nl := experiments.RunGiraph(experiments.GiraphRun{
			Workload: "PR", Mode: giraph.ModeTH, DramGB: 140, DatasetScale: 91.0 / 85.0,
			THConfig: func(c *core.Config) { c.LowThreshold = 0 },
		})
		l := experiments.RunGiraph(experiments.GiraphRun{
			Workload: "PR", Mode: giraph.ModeTH, DramGB: 140, DatasetScale: 91.0 / 85.0,
			THConfig: func(c *core.Config) { c.LowThreshold = 0.5 },
		})
		if i == b.N-1 {
			reportRuns(b, nl, l)
		}
	}
}

// --- Figure 10: region liveness CDFs ----------------------------------------

func BenchmarkFig10RegionCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunGiraph(experiments.GiraphRun{
			Workload: "PR", Mode: giraph.ModeTH, DramGB: 85, AnalyzeRegions: true,
			THConfig: func(c *core.Config) { c.RegionSize = 16 * storage.KB },
		})
		if i == b.N-1 && r.THStats != nil {
			reclaimed := 0
			for _, s := range r.THStats.RegionSnapshots {
				if s.Reclaimed {
					reclaimed++
				}
			}
			b.ReportMetric(float64(len(r.THStats.RegionSnapshots)), "regions")
			b.ReportMetric(float64(reclaimed), "reclaimed")
		}
	}
}

// --- Figure 11: card segment size and major-GC phases -----------------------

func BenchmarkFig11aCardSegment(b *testing.B) {
	for _, seg := range []int64{512, 4 * storage.KB, 16 * storage.KB} {
		seg := seg
		b.Run(segName(seg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.RunGiraph(experiments.GiraphRun{
					Workload: "CDLP", Mode: giraph.ModeTH, DramGB: 85,
					THConfig: func(c *core.Config) {
						c.CardSegmentSize = seg
						c.RegionSize = 256 * storage.KB
					},
				})
				if i == b.N-1 && r.THStats != nil {
					b.ReportMetric(float64(r.THStats.MinorScanTime.Microseconds()), "h2scan-us")
				}
			}
		})
	}
}

func segName(s int64) string {
	switch {
	case s >= storage.KB:
		return itoa(s/storage.KB) + "KB"
	default:
		return itoa(s) + "B"
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func BenchmarkFig11bPhases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		oc := experiments.RunGiraph(experiments.GiraphRun{Workload: "PR", Mode: giraph.ModeOOC, DramGB: 85})
		th := experiments.RunGiraph(experiments.GiraphRun{Workload: "PR", Mode: giraph.ModeTH, DramGB: 85})
		if i == b.N-1 {
			ocPh := oc.GCStats.PhaseTotals()
			thPh := th.GCStats.PhaseTotals()
			var ocT, thT float64
			for p := range ocPh {
				ocT += float64(ocPh[p].Microseconds())
				thT += float64(thPh[p].Microseconds())
			}
			b.ReportMetric(ocT, "ooc-major-us")
			b.ReportMetric(thT, "th-major-us")
		}
	}
}

// --- Figure 12: NVM comparisons ---------------------------------------------

func BenchmarkFig12aNVMSparkSD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sd := experiments.RunSpark(experiments.SparkRun{Workload: "PR", Runtime: rt.KindPS, DramGB: 80, Device: storage.NVM})
		th := experiments.RunSpark(experiments.SparkRun{Workload: "PR", Runtime: rt.KindTH, DramGB: 80, Device: storage.NVM})
		if i == b.N-1 {
			reportRuns(b, sd, th)
		}
	}
}

func BenchmarkFig12bNVMMemoryMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mo := experiments.RunSpark(experiments.SparkRun{Workload: "PR", Runtime: rt.KindMO, DramGB: 80, Device: storage.NVM})
		th := experiments.RunSpark(experiments.SparkRun{Workload: "PR", Runtime: rt.KindTH, DramGB: 80, Device: storage.NVM})
		if i == b.N-1 {
			reportRuns(b, mo, th)
		}
	}
}

func BenchmarkFig12cPanthera(b *testing.B) {
	const scale = 30.0 / 64.0 // size the dataset to Panthera's 64GB heap
	for i := 0; i < b.N; i++ {
		p := experiments.RunSpark(experiments.SparkRun{Workload: "KM", Runtime: rt.KindPanthera, DramGB: 16, Device: storage.NVM, DatasetScale: scale})
		th := experiments.RunSpark(experiments.SparkRun{Workload: "KM", Runtime: rt.KindTH, DramGB: 32, Device: storage.NVM, DatasetScale: scale})
		if i == b.N-1 {
			reportRuns(b, p, th)
		}
	}
}

// --- Figure 13: scaling -----------------------------------------------------

func BenchmarkFig13aThreads(b *testing.B) {
	for _, threads := range []int{4, 8, 16} {
		threads := threads
		b.Run("t"+itoa(int64(threads)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sd := experiments.RunSpark(experiments.SparkRun{Workload: "CC", Runtime: rt.KindPS, DramGB: 84, Threads: threads})
				th := experiments.RunSpark(experiments.SparkRun{Workload: "CC", Runtime: rt.KindTH, DramGB: 84, Threads: threads})
				if i == b.N-1 {
					reportRuns(b, sd, th)
				}
			}
		})
	}
}

func BenchmarkFig13bDataset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := experiments.RunSpark(experiments.SparkRun{Workload: "CC", Runtime: rt.KindTH, DramGB: 84})
		large := experiments.RunSpark(experiments.SparkRun{Workload: "CC", Runtime: rt.KindTH, DramGB: 84 * 73 / 32, DatasetScale: 73.0 / 32.0})
		if i == b.N-1 {
			reportRuns(b, base, large)
		}
	}
}

// --- Table 5 and §4 ----------------------------------------------------------

func BenchmarkTable5Metadata(b *testing.B) {
	var sink int64
	for i := 0; i < b.N; i++ {
		for _, mb := range []int64{1, 2, 4, 8, 16, 32, 64, 128, 256} {
			sink += core.MetadataBytesPerTB(mb * storage.MB)
		}
	}
	if sink == 0 {
		b.Fatal("metadata model returned zero")
	}
	b.ReportMetric(float64(core.MetadataBytesPerTB(1*storage.MB))/float64(storage.MB), "MBperTB-1MBregion")
	b.ReportMetric(float64(core.MetadataBytesPerTB(256*storage.MB))/float64(storage.MB), "MBperTB-256MBregion")
}

func BenchmarkBarrierOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.BarrierOverhead()
		if len(s) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkAblationGroupMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.AblationGroupMode()
		if len(s) == 0 {
			b.Fatal("empty result")
		}
	}
}

// --- Parallel suite execution ------------------------------------------------

// suiteSpecs is a representative slice of the full evaluation: every Fig 6
// Spark and Giraph configuration (30 runs), the kind of fan-out "all" and
// the figure enumerators hand to the executor.
func suiteSpecs() []experiments.Spec {
	var specs []experiments.Spec
	for _, w := range experiments.SparkWorkloads() {
		specs = append(specs, experiments.Fig6SparkSpecs(w)...)
	}
	for _, w := range experiments.GiraphWorkloads() {
		specs = append(specs, experiments.Fig6GiraphSpecs(w)...)
	}
	return specs
}

// BenchmarkSuiteParallel compares the executor at -j 1 against
// -j GOMAXPROCS over the Fig 6 spec list. On a multi-core machine the
// parallel variant approaches linear speedup; results are merged in
// submission order either way, so outputs are identical.
func BenchmarkSuiteParallel(b *testing.B) {
	specs := suiteSpecs()
	b.Run("j1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runs := experiments.RunAllWorkers(specs, 1)
			if len(runs) != len(specs) {
				b.Fatalf("got %d results, want %d", len(runs), len(specs))
			}
		}
	})
	b.Run("jmax", func(b *testing.B) {
		workers := runtime.GOMAXPROCS(0)
		for i := 0; i < b.N; i++ {
			runs := experiments.RunAllWorkers(specs, workers)
			if len(runs) != len(specs) {
				b.Fatalf("got %d results, want %d", len(runs), len(specs))
			}
		}
	})
}

// --- Extension ablations (the paper's future work, implemented) -------------

func BenchmarkAblationStriping(b *testing.B) {
	for _, n := range []int{1, 4} {
		n := n
		b.Run("ssd"+itoa(int64(n)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.RunSpark(experiments.SparkRun{
					Workload: "LR", Runtime: rt.KindTH, DramGB: 70, Stripes: n,
				})
				if i == b.N-1 {
					b.ReportMetric(float64(r.B.Total().Milliseconds()), "sim-ms")
				}
			}
		})
	}
}

func BenchmarkAblationHugePages(b *testing.B) {
	for _, ps := range []int{4 * storage.KB, 64 * storage.KB} {
		ps := ps
		b.Run(segName(int64(ps)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.RunSpark(experiments.SparkRun{
					Workload: "LR", Runtime: rt.KindTH, DramGB: 70,
					THConfig: func(c *core.Config) { c.PageSize = ps },
				})
				if i == b.N-1 {
					b.ReportMetric(float64(r.B.Total().Milliseconds()), "sim-ms")
					b.ReportMetric(float64(r.PageFaults), "faults")
				}
			}
		})
	}
}

func BenchmarkAblationDynamicThresholds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.AblationDynamicThresholds()
		if len(s) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkAblationSizeSegregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.AblationSizeSegregation()
		if len(s) == 0 {
			b.Fatal("empty result")
		}
	}
}
